type token =
  | KERNEL
  | ASSUME
  | VERIFY
  | FOR
  | DOWNTO
  | DOTDOT
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | EQ
  | EQEQ
  | GE
  | LE
  | GT
  | LT
  | PLUS
  | MINUS
  | STAR
  | IDENT of string
  | INT of int
  | EOF

type located = { tok : token; loc : Loc.t }

let describe = function
  | KERNEL -> "'kernel'"
  | ASSUME -> "'assume'"
  | VERIFY -> "'verify'"
  | FOR -> "'for'"
  | DOWNTO -> "'downto'"
  | DOTDOT -> "'..'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | EQ -> "'='"
  | EQEQ -> "'=='"
  | GE -> "'>='"
  | LE -> "'<='"
  | GT -> "'>'"
  | LT -> "'<'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | IDENT x -> Printf.sprintf "identifier %S" x
  | INT i -> Printf.sprintf "integer %d" i
  | EOF -> "end of input"

let keyword = function
  | "kernel" -> Some KERNEL
  | "assume" -> Some ASSUME
  | "verify" -> Some VERIFY
  | "for" -> Some FOR
  | "downto" -> Some DOWNTO
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize ~file src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let error = ref None in
  let here () = Loc.make ~file ~line:!line ~col:!col in
  let advance () =
    (if src.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  let push tok loc = toks := { tok; loc } :: !toks in
  let skip_line () =
    while !i < n && src.[!i] <> '\n' do
      advance ()
    done
  in
  while !error = None && !i < n do
    let loc = here () in
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then skip_line ()
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then skip_line ()
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let word = String.sub src start (!i - start) in
      push (match keyword word with Some k -> k | None -> IDENT word) loc
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      let digits = String.sub src start (!i - start) in
      match int_of_string_opt digits with
      | Some v -> push (INT v) loc
      | None ->
          error := Some (Diag.makef loc "integer literal %s is out of range" digits)
    end
    else begin
      let two =
        if !i + 1 < n then
          match (c, src.[!i + 1]) with
          | '.', '.' -> Some DOTDOT
          | '>', '=' -> Some GE
          | '<', '=' -> Some LE
          | '=', '=' -> Some EQEQ
          | _ -> None
        else None
      in
      match two with
      | Some tok ->
          advance ();
          advance ();
          push tok loc
      | None -> (
          let one =
            match c with
            | '{' -> Some LBRACE
            | '}' -> Some RBRACE
            | '(' -> Some LPAREN
            | ')' -> Some RPAREN
            | '[' -> Some LBRACKET
            | ']' -> Some RBRACKET
            | ',' -> Some COMMA
            | ';' -> Some SEMI
            | ':' -> Some COLON
            | '=' -> Some EQ
            | '>' -> Some GT
            | '<' -> Some LT
            | '+' -> Some PLUS
            | '-' -> Some MINUS
            | '*' -> Some STAR
            | _ -> None
          in
          match one with
          | Some tok ->
              advance ();
              push tok loc
          | None ->
              error :=
                Some
                  (Diag.makef loc "unexpected character %C"
                     c))
    end
  done;
  match !error with
  | Some d -> Error d
  | None ->
      push EOF (here ());
      Ok (Array.of_list (List.rev !toks))
