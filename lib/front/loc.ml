type t = { file : string; line : int; col : int }

let make ~file ~line ~col = { file; line; col }
let pp fmt l = Format.fprintf fmt "%s:%d:%d" l.file l.line l.col
let to_string l = Printf.sprintf "%s:%d:%d" l.file l.line l.col
