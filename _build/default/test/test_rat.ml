(* Exact rational arithmetic: field laws, canonical form, ordering. *)

module Rat = Iolb_util.Rat

let rat_gen =
  QCheck2.Gen.map2
    (fun n d -> Rat.make n (if d = 0 then 1 else d))
    (QCheck2.Gen.int_range (-1000) 1000)
    (QCheck2.Gen.int_range (-50) 50)

let rat = (rat_gen, Rat.to_string)

let prop name ?(count = 500) gen f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:(snd gen) (fst gen) f)

let prop2 name ?(count = 500) f =
  let g = QCheck2.Gen.pair rat_gen rat_gen in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count
       ~print:(fun (a, b) -> Rat.to_string a ^ ", " ^ Rat.to_string b)
       g f)

let prop3 name ?(count = 500) f =
  let g = QCheck2.Gen.triple rat_gen rat_gen rat_gen in
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count g f)

let unit_tests () =
  Alcotest.(check bool) "1/2 + 1/2 = 1" true Rat.(equal (add half half) one);
  Alcotest.(check bool) "2/4 canonical" true Rat.(equal (make 2 4) half);
  Alcotest.(check bool) "-1/-2 canonical" true Rat.(equal (make (-1) (-2)) half);
  Alcotest.(check int) "num" 1 (Rat.num (Rat.make 2 4));
  Alcotest.(check int) "den" 2 (Rat.den (Rat.make 2 4));
  Alcotest.(check int) "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
  Alcotest.(check int) "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Rat.ceil (Rat.make (-7) 2));
  Alcotest.(check bool) "pow" true
    Rat.(equal (pow (make 2 3) 3) (make 8 27));
  Alcotest.(check bool) "pow negative" true
    Rat.(equal (pow (make 2 3) (-2)) (make 9 4));
  Alcotest.(check bool) "div by zero raises" true
    (try
       ignore (Rat.div Rat.one Rat.zero);
       false
     with Rat.Division_by_zero -> true)

let suite =
  [
    Alcotest.test_case "unit identities" `Quick unit_tests;
    prop2 "addition commutes" (fun (a, b) -> Rat.(equal (add a b) (add b a)));
    prop2 "multiplication commutes" (fun (a, b) ->
        Rat.(equal (mul a b) (mul b a)));
    prop3 "addition associates" (fun (a, b, c) ->
        Rat.(equal (add a (add b c)) (add (add a b) c)));
    prop3 "multiplication distributes" (fun (a, b, c) ->
        Rat.(equal (mul a (add b c)) (add (mul a b) (mul a c))));
    prop "negation is involutive" rat (fun a -> Rat.(equal (neg (neg a)) a));
    prop "sub self is zero" rat (fun a -> Rat.(is_zero (sub a a)));
    prop "inverse multiplies to one" rat (fun a ->
        Rat.is_zero a || Rat.(equal (mul a (inv a)) one));
    prop "canonical: gcd(num, den) = 1" rat (fun a ->
        let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
        Rat.den a > 0 && gcd (abs (Rat.num a)) (Rat.den a) <= 1);
    prop2 "compare consistent with float order" (fun (a, b) ->
        let c = Rat.compare a b in
        let fc = Float.compare (Rat.to_float a) (Rat.to_float b) in
        fc = 0 || c = fc);
    prop "floor <= q < floor + 1" rat (fun a ->
        let f = Rat.floor a in
        Rat.(compare (of_int f) a) <= 0 && Rat.(compare a (of_int (f + 1))) < 0);
  ]
