(* The certifier subsystem itself: deterministic seed->spec mapping,
   driver reports, structural shrinking, the fault-injection
   (deliberately broken oracle) path, and the JSON failure artifact. *)

module Check = Iolb_check.Check
module Gen = Iolb_check.Gen
module Oracle = Iolb_check.Oracle
module Shrink = Iolb_check.Shrink
module Spec = Iolb_check.Spec
module Json = Iolb_util.Json
module Budget = Iolb_util.Budget

let run ?budget ?(count = 30) ?(seed = 42) ?(props = Oracle.all) () =
  Check.run ?budget ~count ~seed ~props ()

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let has_substring ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* --- determinism --------------------------------------------------- *)

let seed_determinism () =
  for seed = 0 to 200 do
    Alcotest.(check bool)
      (Printf.sprintf "seed %d maps to one spec" seed)
      true
      (Spec.equal (Gen.spec ~seed) (Gen.spec ~seed))
  done;
  (* The splitmix64 stream is version-independent; pin one draw so a silent
     generator change (which would re-map every seed) fails loudly. *)
  let r = Gen.rng ~seed:42 in
  Alcotest.(check int) "pinned first draw" 3 (Gen.int_range r 0 9)

let report_determinism () =
  let j r = Json.to_string (Check.to_json r) in
  Alcotest.(check string)
    "identical reports for identical runs" (j (run ())) (j (run ()))

(* --- the default registry on a healthy engine ---------------------- *)

let default_props_pass () =
  let r = run ~count:60 () in
  Alcotest.(check int) "no counterexamples" 0 r.Check.failed;
  Alcotest.(check bool) "both families generated" true
    (r.Check.coverage.Check.nest_specs > 0
    && r.Check.coverage.Check.hourglass_specs > 0);
  (* The acceptance criterion: the hourglass-bearing family provably
     reaches the hourglass derivation path. *)
  Alcotest.(check int) "every hourglass spec is detected"
    r.Check.coverage.Check.hourglass_specs
    r.Check.coverage.Check.hourglass_detected;
  Alcotest.(check int) "every detected hourglass yields a bound"
    r.Check.coverage.Check.hourglass_detected
    r.Check.coverage.Check.hourglass_bounds

let find_props () =
  (match Oracle.find "card, sweep-lru" with
  | Ok [ a; b ] ->
      Alcotest.(check string) "first" "card" a.Oracle.name;
      Alcotest.(check string) "second" "sweep-lru" b.Oracle.name
  | Ok _ | Error _ -> Alcotest.fail "expected exactly two properties");
  (match Oracle.find "default" with
  | Ok ps ->
      Alcotest.(check int) "default = full registry" (List.length Oracle.all)
        (List.length ps)
  | Error e -> Alcotest.fail e);
  match Oracle.find "nosuch" with
  | Ok _ -> Alcotest.fail "unknown property accepted"
  | Error msg ->
      Alcotest.(check bool) "error names the property" true
        (has_substring ~sub:"nosuch" msg)

(* --- budgets degrade to skips, never to failures -------------------- *)

let budget_degrades () =
  let budget () = Budget.make ~max_steps:200 () in
  let r = run ~budget ~count:10 () in
  Alcotest.(check int) "no counterexamples under a tiny budget" 0
    r.Check.failed;
  Alcotest.(check bool) "some checks were budget-skipped" true
    (r.Check.budget_skips > 0)

(* --- fault injection: a broken oracle must be caught ---------------- *)

let fault_injection () =
  let r = run ~count:4 ~seed:7 ~props:[ Oracle.demo_broken ] () in
  Alcotest.(check bool) "counterexamples found" true (not (Check.ok r));
  Alcotest.(check int) "every spec fails" 4 r.Check.failed;
  List.iter
    (fun (f : Check.failure) ->
      Alcotest.(check string) "failing property" "demo-broken" f.Check.prop;
      Alcotest.(check bool) "shrunk spec is no larger" true
        (Spec.size f.Check.shrunk <= Spec.size f.Check.spec);
      (* The shrunk spec must still fail the same oracle. *)
      let ctx = Oracle.make_ctx f.Check.shrunk in
      match Oracle.run Oracle.demo_broken ctx with
      | Oracle.Fail _ -> ()
      | Oracle.Pass | Oracle.Skip _ ->
          Alcotest.fail "shrunk spec no longer fails")
    r.Check.failures

let shrink_reaches_minimum () =
  (* With an always-failing predicate the shrinker must reach the floor of
     each family (no candidate is strictly smaller). *)
  List.iter
    (fun seed ->
      let spec = Gen.spec ~seed in
      let shrunk, _steps = Shrink.minimize ~fails:(fun _ -> true) spec in
      Alcotest.(check int)
        (Printf.sprintf "seed %d shrinks to the family floor" seed)
        0
        (List.length (Shrink.candidates shrunk)))
    [ 7; 8; 42 ]

let shrink_candidates_smaller () =
  List.iter
    (fun seed ->
      let spec = Gen.spec ~seed in
      List.iter
        (fun c ->
          Alcotest.(check bool) "strictly smaller" true
            (Spec.size c < Spec.size spec);
          (* Every candidate is still a valid program. *)
          let prog, params = Spec.to_program c in
          Alcotest.(check bool) "instantiable" true
            (Iolb_ir.Program.count_instances ~params prog >= 0))
        (Shrink.candidates spec))
    [ 0; 1; 2; 3; 4; 5 ]

(* --- the JSON failure artifact -------------------------------------- *)

let json_artifact () =
  let r = run ~count:2 ~seed:7 ~props:[ Oracle.demo_broken ] () in
  let text = Json.to_string_pretty (Check.to_json r) in
  match Json.of_string text with
  | Error e -> Alcotest.fail ("artifact does not re-parse: " ^ e)
  | Ok v ->
      Alcotest.(check bool) "ok flag is false" true
        (Json.member "ok" v = Some (Json.Bool false));
      (match Json.member "failures" v with
      | Some (Json.List (f :: _)) ->
          Alcotest.(check bool) "failure carries a replay line" true
            (match Json.member "replay" f with
            | Some (Json.String s) -> has_prefix ~prefix:"iolb check --seed" s
            | _ -> false);
          Alcotest.(check bool) "failure carries the shrunk spec" true
            (Json.member "shrunk" f <> None)
      | _ -> Alcotest.fail "artifact lists no failures");
      (match Json.member "coverage" v with
      | Some (Json.Obj _) -> ()
      | _ -> Alcotest.fail "artifact has no coverage object")

let suite =
  [
    Alcotest.test_case "seed -> spec is deterministic" `Quick seed_determinism;
    Alcotest.test_case "reports are deterministic" `Quick report_determinism;
    Alcotest.test_case "default registry passes" `Quick default_props_pass;
    Alcotest.test_case "--props resolution" `Quick find_props;
    Alcotest.test_case "budgets degrade to skips" `Quick budget_degrades;
    Alcotest.test_case "fault injection is caught and shrunk" `Quick
      fault_injection;
    Alcotest.test_case "shrinking reaches the family floor" `Quick
      shrink_reaches_minimum;
    Alcotest.test_case "shrink candidates are smaller valid specs" `Quick
      shrink_candidates_smaller;
    Alcotest.test_case "JSON failure artifact round-trips" `Quick
      json_artifact;
  ]
