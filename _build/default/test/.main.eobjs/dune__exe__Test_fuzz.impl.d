test/test_fuzz.ml: Hashtbl Iolb Iolb_cdag Iolb_ir Iolb_pebble Iolb_poly Iolb_symbolic Iolb_util List Printf QCheck2 QCheck_alcotest String
