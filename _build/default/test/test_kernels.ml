(* Numeric correctness of the kernel implementations: the factorisations
   must actually factor, before we reason about their data movement. *)

open Iolb_kernels

let check_close ~msg ~tol actual =
  Alcotest.(check bool) (Printf.sprintf "%s (err=%g)" msg actual) true (actual < tol)

let test_mgs_reconstruction () =
  List.iter
    (fun (m, n) ->
      let a = Matrix.random ~seed:7 m n in
      let q, r = Mgs.factor a in
      check_close ~msg:"A = QR" ~tol:1e-10 (Matrix.rel_error a (Matrix.mul q r));
      check_close ~msg:"Q orthonormal" ~tol:1e-10 (Matrix.orthogonality_error q);
      Alcotest.(check bool) "R upper triangular" true (Matrix.is_upper_triangular r))
    [ (5, 3); (8, 8); (12, 5); (20, 17) ]

let test_mgs_tiled_matches () =
  List.iter
    (fun (m, n, b) ->
      let a = Matrix.random ~seed:11 m n in
      let q1, r1 = Mgs.factor a in
      let q2, r2 = Mgs.factor_tiled ~b a in
      check_close ~msg:"tiled Q = untiled Q" ~tol:1e-9 (Matrix.rel_error q1 q2);
      check_close ~msg:"tiled R = untiled R" ~tol:1e-9 (Matrix.rel_error r1 r2))
    [ (6, 4, 1); (10, 9, 3); (16, 12, 4); (16, 12, 5) ]

let test_householder_reconstruction () =
  List.iter
    (fun (m, n) ->
      let a = Matrix.random ~seed:3 m n in
      let q, r = Householder.qr a in
      check_close ~msg:"A = QR" ~tol:1e-10 (Matrix.rel_error a (Matrix.mul q r));
      check_close ~msg:"Q orthonormal" ~tol:1e-10 (Matrix.orthogonality_error q);
      Alcotest.(check bool) "R upper triangular" true (Matrix.is_upper_triangular r))
    [ (5, 3); (8, 8); (12, 5); (20, 17) ]

let test_householder_tiled_matches () =
  List.iter
    (fun (m, n, b) ->
      let a = Matrix.random ~seed:13 m n in
      let f1 = Householder.geqr2 a in
      let f2 = Householder.geqr2_tiled ~b a in
      check_close ~msg:"tiled VR = untiled VR" ~tol:1e-9
        (Matrix.rel_error f1.vr f2.vr);
      Array.iteri
        (fun i t1 ->
          Alcotest.(check bool)
            (Printf.sprintf "tau[%d]" i)
            true
            (Float.abs (t1 -. f2.tau.(i)) < 1e-9))
        f1.tau)
    [ (6, 4, 1); (10, 9, 3); (16, 12, 4); (16, 12, 5) ]

let test_gebd2 () =
  List.iter
    (fun (m, n) ->
      let a = Matrix.random ~seed:17 m n in
      let r = Gebd2.reduce a in
      let b = Gebd2.bidiagonal_of r in
      Alcotest.(check bool) "B bidiagonal" true (Matrix.is_upper_bidiagonal b);
      let q = Gebd2.q_of r and p = Gebd2.p_of r in
      check_close ~msg:"Q orthogonal" ~tol:1e-9 (Matrix.orthogonality_error q);
      check_close ~msg:"P orthogonal" ~tol:1e-9 (Matrix.orthogonality_error p);
      (* A = Q * [B; 0] * P^T *)
      let b_full = Matrix.init m n (fun i j -> if i < n then Matrix.get b i j else 0.) in
      let recon = Matrix.mul q (Matrix.mul b_full (Matrix.transpose p)) in
      check_close ~msg:"A = Q B P^T" ~tol:1e-9 (Matrix.rel_error a recon))
    [ (5, 3); (8, 8); (12, 5); (16, 13) ]

let test_gehd2 () =
  List.iter
    (fun n ->
      let a = Matrix.random ~seed:23 n n in
      let r = Gehd2.reduce a in
      let h = Gehd2.hessenberg_of r in
      Alcotest.(check bool) "H Hessenberg" true (Matrix.is_upper_hessenberg h);
      let q = Gehd2.q_of r in
      check_close ~msg:"Q orthogonal" ~tol:1e-9 (Matrix.orthogonality_error q);
      (* A = Q H Q^T *)
      let recon = Matrix.mul q (Matrix.mul h (Matrix.transpose q)) in
      check_close ~msg:"A = Q H Q^T" ~tol:1e-9 (Matrix.rel_error a recon))
    [ 3; 5; 9; 14 ]

let test_gemm () =
  let a = Matrix.random ~seed:29 5 7 and b = Matrix.random ~seed:31 7 4 in
  let c = Gemm.run a b in
  let c' =
    Matrix.init 5 4 (fun i j ->
        let acc = ref 0. in
        for k = 0 to 6 do
          acc := !acc +. (Matrix.get a i k *. Matrix.get b k j)
        done;
        !acc)
  in
  check_close ~msg:"gemm" ~tol:1e-12 (Matrix.rel_error c' c)

let suite =
  [
    Alcotest.test_case "mgs reconstructs A" `Quick test_mgs_reconstruction;
    Alcotest.test_case "tiled mgs = mgs" `Quick test_mgs_tiled_matches;
    Alcotest.test_case "householder reconstructs A" `Quick
      test_householder_reconstruction;
    Alcotest.test_case "tiled a2v = a2v" `Quick test_householder_tiled_matches;
    Alcotest.test_case "gebd2 bidiagonalises" `Quick test_gebd2;
    Alcotest.test_case "gehd2 reduces to Hessenberg" `Quick test_gehd2;
    Alcotest.test_case "gemm multiplies" `Quick test_gemm;
  ]
