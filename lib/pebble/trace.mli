(** Memory access traces.

    A trace is the sequence of cell reads/writes performed by a concrete
    schedule of a program.  Traces are what the cache simulator consumes;
    they can come from {!Iolb_ir.Program.iter_instances} (the untiled
    program order) or from hand-scheduled tiled algorithms (Appendix A of
    the paper).

    Representation: events are stored as flat arrays of interned cell ids
    and read/write flags, with the {!Iolb_ir.Interner} built once at
    construction.  Simulators index straight into the arrays - no
    per-invocation interning, no polymorphic hashing, and O(1)
    {!length}/{!footprint}.  A trace is immutable after construction and
    safe to share read-only across a {!Iolb_util.Pool} fan-out. *)

type cell = string * int array

type event = Read of cell | Write of cell

type t

(** [of_program ~params p] is the trace of the program executed in textual
    order: for each instance, its reads then its writes.  Instantiation is
    accounted against the budget's [Cdag_build] stage (one checkpoint per
    instance, node cap on the instance count).
    @raise Iolb_util.Budget.Exhausted when the budget runs out. *)
val of_program :
  ?budget:Iolb_util.Budget.t ->
  params:(string * int) list ->
  Iolb_ir.Program.t ->
  t

(** [of_events evs] interns an explicit event sequence (hand-written traces
    in tests and experiments). *)
val of_events : event list -> t

(** [dense_plan ~params p] is the compiled dense-address producer
    ({!Iolb_ir.Cplan}) for [p] at [params] when the program compiles and
    its address space fits the flat remap-table memory policy (2^23
    addresses) - the shared gate for every compiled consumer
    ({!of_program}, the sharded sweep).  [None] means: use the streaming
    producer. *)
val dense_plan :
  params:(string * int) list -> Iolb_ir.Program.t -> Iolb_ir.Cplan.t option

(** Number of events. O(1). *)
val length : t -> int

(** Number of distinct cells touched by the trace. O(1). *)
val footprint : t -> int

(** {1 Indexed access (used by the simulators)} *)

(** [cell_id t i] is the dense id of the cell accessed by event [i];
    ids lie in [0 .. footprint t - 1]. *)
val cell_id : t -> int -> int

(** [is_write t i]: is event [i] a write? *)
val is_write : t -> int -> bool

(** Raw event storage, borrowed read-only by the simulators' inner loops
    (a cross-module accessor call per event is measurable there).  Only
    indices [0 .. length t - 1] are meaningful - the arrays may be
    oversized.  Never mutate them. *)
val cells : t -> int array

val write_flags : t -> bool array

(** [cell t id] recovers the concrete cell behind a dense id. *)
val cell : t -> int -> cell

(** [event t i] reconstructs event [i]. *)
val event : t -> int -> event

(** [to_events t] reconstructs the full event list (tests / display). *)
val to_events : t -> event list

val pp_event : Format.formatter -> event -> unit
