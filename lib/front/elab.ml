module Affine = Iolb_poly.Affine
module Constr = Iolb_poly.Constr
module Access = Iolb_ir.Access
module Program = Iolb_ir.Program

type source = { program : Program.t; verify : (string * int) list }

exception Bail of Diag.t

let bail loc fmt = Printf.ksprintf (fun msg -> raise (Bail (Diag.make loc msg))) fmt

(* Scope: parameters plus the enclosing loop variables, outermost first. *)
type scope = { params : (string * Loc.t) list; loops : string list }

let visible sc = List.rev_append sc.loops (List.map fst sc.params)

let rec affine sc = function
  | Ast.Int (v, _) -> Affine.const v
  | Ast.Var (x, loc) ->
      if List.mem x (visible sc) then Affine.var x
      else
        bail loc "unbound name %s (visible here: %s)" x
          (match visible sc with
          | [] -> "none"
          | vs -> String.concat ", " vs)
  | Ast.Neg (e, _) -> Affine.neg (affine sc e)
  | Ast.Add (a, b) -> Affine.add (affine sc a) (affine sc b)
  | Ast.Sub (a, b) -> Affine.sub (affine sc a) (affine sc b)
  | Ast.Mul (a, b, loc) -> (
      let ea = affine sc a and eb = affine sc b in
      match (Affine.is_constant ea, Affine.is_constant eb) with
      | Some c, _ -> Affine.scale c eb
      | _, Some c -> Affine.scale c ea
      | None, None ->
          bail loc
            "non-affine product %s * %s: one operand of '*' must be \
             constant (subscripts and bounds are affine in loop variables \
             and parameters)"
            (Affine.to_string ea) (Affine.to_string eb))

let constr sc (c : Ast.constr) =
  let l = affine sc c.lhs and r = affine sc c.rhs in
  match c.cmp with
  | Ast.Cge -> Constr.ge_of l r
  | Ast.Cle -> Constr.le_of l r
  | Ast.Cgt -> Constr.lt_of r l
  | Ast.Clt -> Constr.lt_of l r
  | Ast.Ceq -> Constr.eq_of l r

let access sc (a : Ast.access) =
  Access.make a.arr (List.map (affine sc) a.index)

let rec node sc seen = function
  | Ast.Stmt { sname; sloc; writes; reads } ->
      (match List.assoc_opt sname !seen with
      | Some first ->
          bail sloc "duplicate statement id %s (first defined at %s)" sname
            (Loc.to_string first)
      | None -> seen := (sname, sloc) :: !seen);
      Program.stmt sname
        ~writes:(List.map (access sc) writes)
        ~reads:(List.map (access sc) reads)
  | Ast.For { var; var_loc; first; second; down; body } ->
      if List.mem var sc.loops then
        bail var_loc "loop variable %s shadows an enclosing loop variable" var;
      if List.mem_assoc var sc.params then
        bail var_loc "loop variable %s shadows a parameter" var;
      let first = affine sc first and second = affine sc second in
      let lo, hi = if down then (second, first) else (first, second) in
      (match (Affine.is_constant lo, Affine.is_constant hi) with
      | Some l, Some h when h < l ->
          bail var_loc
            "negative bound: %s iterates %d .. %d, a trip count of %d \
             (bounds are inclusive)"
            var l h (h - l + 1)
      | _ -> ());
      let inner = { sc with loops = sc.loops @ [ var ] } in
      let body = List.map (node inner seen) body in
      if down then Program.loop_rev var lo hi body
      else Program.loop var lo hi body

let kernel (k : Ast.kernel) =
  match
    let rec dup_param = function
      | [] -> ()
      | (p, _) :: rest ->
          (match List.assoc_opt p rest with
          | Some loc -> bail loc "duplicate parameter %s" p
          | None -> ());
          dup_param rest
    in
    dup_param k.params;
    let sc = { params = k.params; loops = [] } in
    let assumptions = List.map (constr sc) k.assumes in
    let seen = ref [] in
    let body = List.map (node sc seen) k.body in
    (* The verify clause: one concrete value per parameter, no strays. *)
    let rec dup_verify = function
      | [] -> ()
      | (name, _, _) :: rest ->
          (match List.find_opt (fun (n, _, _) -> n = name) rest with
          | Some (_, loc, _) -> bail loc "duplicate verify binding for %s" name
          | None -> ());
          dup_verify rest
    in
    dup_verify k.verify;
    List.iter
      (fun (name, loc, _) ->
        if not (List.mem_assoc name k.params) then
          bail loc "verify binds %s, which is not a parameter of kernel %s"
            name k.kname)
      k.verify;
    List.iter
      (fun (p, loc) ->
        if not (List.exists (fun (n, _, _) -> n = p) k.verify) then
          bail loc
            "parameter %s has no verify value (add 'verify %s = <size>' so \
             patterns can be verified at concrete sizes)"
            p p)
      k.params;
    let program =
      try
        Program.make ~name:k.kname ~params:(List.map fst k.params)
          ~assumptions body
      with Invalid_argument msg -> bail k.kname_loc "%s" msg
    in
    { program; verify = List.map (fun (n, _, v) -> (n, v)) k.verify }
  with
  | src -> Ok src
  | exception Bail d -> Error d
