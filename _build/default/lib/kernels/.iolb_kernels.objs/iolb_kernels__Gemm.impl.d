lib/kernels/gemm.ml: Affine Constr Matrix Printf Program Shorthand
