test/test_rat.ml: Alcotest Float Iolb_util QCheck2 QCheck_alcotest
