module Rat = Iolb_util.Rat

type relation = Le | Ge | Eq

type constr = { coeffs : Rat.t array; rel : relation; rhs : Rat.t }
type objective = Minimize | Maximize

type outcome =
  | Optimal of { value : Rat.t; solution : Rat.t array }
  | Unbounded
  | Infeasible

let constr coeffs rel rhs =
  {
    coeffs = Array.of_list (List.map Rat.of_int coeffs);
    rel;
    rhs = Rat.of_int rhs;
  }

(* Dense tableau over *unboxed* rationals: every entry is a canonical
   num/den pair held in parallel [int] arrays (den > 0, gcd = 1), so the
   pivot loops allocate nothing and reduce with plain integer gcds.  The
   arithmetic is the same exact, overflow-checked arithmetic as {!Rat}
   ({!Rat.add_exn}/{!Rat.mul_exn}), only unboxed.

   The machinery lives in {!Tableau} so that other solvers over the same
   tableau — notably the parametric-objective sweep in {!Psimplex} — can
   reuse the setup, pivoting, and pricing steps instead of duplicating
   them. *)
module Tableau = struct
  (* Layout: row i, column j lives at [(i * ncols) + j] of [tn]/[td];
     [rhsn]/[rhsd] hold the right-hand side, [objn]/[objd] the reduced
     costs, and [basis.(i)] the column basic in row i. *)
  type t = {
    m : int;
    ncols : int;
    nvars : int;
    art_start : int;
    tn : int array;
    td : int array;
    rhsn : int array;
    rhsd : int array;
    objn : int array;
    objd : int array;
    mutable ovn : int; (* objective value (to be minimised), canonical *)
    mutable ovd : int;
    basis : int array;
  }

  (* [set_canon a d i n dd] stores the canonical form of [n/dd] (dd > 0). *)
  let set_canon an ad i n d =
    if n = 0 then begin
      an.(i) <- 0;
      ad.(i) <- 1
    end
    else begin
      let g = Rat.gcd_int n d in
      an.(i) <- n / g;
      ad.(i) <- d / g
    end

  let neg_exn a = if a = min_int then raise Rat.Overflow else -a

  (* dst.(i) <- dst.(i) - (fn/fd) * (pn/pd); all pairs canonical, fd,pd > 0. *)
  let sub_mul an ad i fn fd pn pd =
    if pn <> 0 then begin
      (* q = f * p with cross-term reduction *)
      let g1 = Rat.gcd_int fn pd and g2 = Rat.gcd_int pn fd in
      let qn = Rat.mul_exn (fn / g1) (pn / g2)
      and qd = Rat.mul_exn (fd / g2) (pd / g1) in
      let en = an.(i) and ed = ad.(i) in
      let g = Rat.gcd_int ed qd in
      let da = ed / g and db = qd / g in
      let n = Rat.add_exn (Rat.mul_exn en db) (neg_exn (Rat.mul_exn qn da)) in
      set_canon an ad i n (Rat.mul_exn ed db)
    end

  (* dst.(i) <- dst.(i) * (fn/fd), canonical, fd > 0, f <> 0. *)
  let mul_by an ad i fn fd =
    let en = an.(i) in
    if en <> 0 then begin
      let ed = ad.(i) in
      let g1 = Rat.gcd_int en fd and g2 = Rat.gcd_int fn ed in
      an.(i) <- Rat.mul_exn (en / g1) (fn / g2);
      ad.(i) <- Rat.mul_exn (ed / g2) (fd / g1)
    end

  (* (vn/vd) - (fn/fd) * (pn/pd) as a fresh canonical pair. *)
  let sub_prod vn vd fn fd pn pd =
    if pn = 0 || fn = 0 then (vn, vd)
    else begin
      let g1 = Rat.gcd_int fn pd and g2 = Rat.gcd_int pn fd in
      let qn = Rat.mul_exn (fn / g1) (pn / g2)
      and qd = Rat.mul_exn (fd / g2) (pd / g1) in
      let g = Rat.gcd_int vd qd in
      let da = vd / g and db = qd / g in
      let nn = Rat.add_exn (Rat.mul_exn vn db) (neg_exn (Rat.mul_exn qn da)) in
      if nn = 0 then (0, 1)
      else begin
        let nd = Rat.mul_exn vd db in
        let g = Rat.gcd_int nn nd in
        (nn / g, nd / g)
      end
    end

  let pivot t ~row ~col =
    let n = t.ncols in
    let base = row * n in
    let pn = t.tn.(base + col) and pd = t.td.(base + col) in
    assert (pn <> 0);
    (* normalise the pivot row by 1/piv = pd/pn (kept sign-canonical) *)
    let ivn = if pn < 0 then -pd else pd and ivd = abs pn in
    for j = 0 to n - 1 do
      mul_by t.tn t.td (base + j) ivn ivd
    done;
    mul_by t.rhsn t.rhsd row ivn ivd;
    for i = 0 to t.m - 1 do
      if i <> row then begin
        let ib = i * n in
        let fn = t.tn.(ib + col) in
        if fn <> 0 then begin
          let fd = t.td.(ib + col) in
          for j = 0 to n - 1 do
            sub_mul t.tn t.td (ib + j) fn fd t.tn.(base + j) t.td.(base + j)
          done;
          sub_mul t.rhsn t.rhsd i fn fd t.rhsn.(row) t.rhsd.(row)
        end
      end
    done;
    let fn = t.objn.(col) in
    if fn <> 0 then begin
      let fd = t.objd.(col) in
      for j = 0 to n - 1 do
        sub_mul t.objn t.objd j fn fd t.tn.(base + j) t.td.(base + j)
      done;
      let ovn, ovd =
        sub_prod t.ovn t.ovd fn fd t.rhsn.(row) t.rhsd.(row)
      in
      t.ovn <- ovn;
      t.ovd <- ovd
    end;
    t.basis.(row) <- col

  (* Eliminate the just-pivoted column from an auxiliary cost row held by
     the caller (e.g. the slope row of a parametric objective), exactly as
     [pivot] does for the built-in objective row.  Must be called *after*
     [pivot t ~row ~col] (it relies on the normalised pivot row); returns
     the updated auxiliary objective-value pair. *)
  let eliminate t ~row ~col an ad vn vd =
    let n = t.ncols in
    let base = row * n in
    let fn = an.(col) in
    if fn = 0 then (vn, vd)
    else begin
      let fd = ad.(col) in
      for j = 0 to n - 1 do
        sub_mul an ad j fn fd t.tn.(base + j) t.td.(base + j)
      done;
      sub_prod vn vd fn fd t.rhsn.(row) t.rhsd.(row)
    end

  (* Lexicographic min-ratio test: among rows with a positive entry in
     [col], the smallest rhs/entry ratio, ties broken towards the lowest
     basic index (the Bland half that guarantees termination). *)
  let choose_leaving t ~col =
    let m = t.m and n = t.ncols in
    let leaving = ref (-1) in
    (* best ratio as a canonical pair bn/bd with bd > 0 *)
    let bn = ref 0 and bd = ref 1 in
    for i = 0 to m - 1 do
      let an = t.tn.((i * n) + col) in
      if an > 0 then begin
        let ad = t.td.((i * n) + col) in
        (* ratio = rhs(i) / a = (rn * ad) / (rd * an), all positive parts *)
        let p = Rat.mul_exn t.rhsn.(i) ad and q = Rat.mul_exn t.rhsd.(i) an in
        let g = Rat.gcd_int p q in
        let p, q = if g = 0 then (0, 1) else (p / g, q / g) in
        let cmp =
          if !leaving < 0 then -1
          else compare (Rat.mul_exn p !bd) (Rat.mul_exn !bn q)
        in
        if
          cmp < 0
          || (cmp = 0 && !leaving >= 0 && t.basis.(i) < t.basis.(!leaving))
        then begin
          leaving := i;
          bn := p;
          bd := q
        end
      end
    done;
    if !leaving < 0 then None else Some !leaving

  (* Bland's rule: entering column = lowest-index negative reduced cost
     among allowed columns; leaving row per [choose_leaving].  Returns
     [Ok ()] at optimality, [Error `Unbounded]. *)
  let optimise t ~allowed =
    let n = t.ncols in
    let rec loop () =
      let entering = ref (-1) in
      (let j = ref 0 in
       while !entering < 0 && !j < n do
         if allowed !j && t.objn.(!j) < 0 then entering := !j;
         incr j
       done);
      if !entering < 0 then Ok ()
      else begin
        let col = !entering in
        match choose_leaving t ~col with
        | None -> Error `Unbounded
        | Some row ->
            pivot t ~row ~col;
            loop ()
      end
    in
    loop ()

  (* [setup ~nvars constraints] builds the tableau with slack and
     artificial columns, the phase-1 objective (sum of artificials)
     installed and priced out w.r.t. the starting basis.  Rows are
     normalised to non-negative rhs so artificials start feasible. *)
  let setup ~nvars constraints =
    List.iter
      (fun c ->
        if Array.length c.coeffs <> nvars then
          invalid_arg "Simplex.solve: constraint dimension mismatch")
      constraints;
    let constraints = Array.of_list constraints in
    let m = Array.length constraints in
    let constraints =
      Array.map
        (fun (c : constr) ->
          if Rat.sign c.rhs < 0 then
            {
              coeffs = Array.map Rat.neg c.coeffs;
              rhs = Rat.neg c.rhs;
              rel = (match c.rel with Le -> Ge | Ge -> Le | Eq -> Eq);
            }
          else c)
        constraints
    in
    let n_slack =
      Array.fold_left
        (fun acc c -> match c.rel with Le | Ge -> acc + 1 | Eq -> acc)
        0 constraints
    in
    (* Every Ge and Eq row needs an artificial; Le rows start basic in
       their slack. *)
    let n_art =
      Array.fold_left
        (fun acc c -> match c.rel with Ge | Eq -> acc + 1 | Le -> acc)
        0 constraints
    in
    let ncols = nvars + n_slack + n_art in
    let tn = Array.make (m * ncols) 0 and td = Array.make (m * ncols) 1 in
    let rhsn = Array.make m 0 and rhsd = Array.make m 1 in
    let basis = Array.make m (-1) in
    let slack_idx = ref nvars in
    let art_idx = ref (nvars + n_slack) in
    Array.iteri
      (fun i c ->
        let ib = i * ncols in
        Array.iteri
          (fun j q ->
            tn.(ib + j) <- Rat.num q;
            td.(ib + j) <- Rat.den q)
          c.coeffs;
        rhsn.(i) <- Rat.num c.rhs;
        rhsd.(i) <- Rat.den c.rhs;
        match c.rel with
        | Le ->
            tn.(ib + !slack_idx) <- 1;
            basis.(i) <- !slack_idx;
            incr slack_idx
        | Ge ->
            tn.(ib + !slack_idx) <- -1;
            incr slack_idx;
            tn.(ib + !art_idx) <- 1;
            basis.(i) <- !art_idx;
            incr art_idx
        | Eq ->
            tn.(ib + !art_idx) <- 1;
            basis.(i) <- !art_idx;
            incr art_idx)
      constraints;
    let art_start = nvars + n_slack in
    (* Phase 1: minimise the sum of artificials. *)
    let objn = Array.make ncols 0 and objd = Array.make ncols 1 in
    for j = art_start to ncols - 1 do
      objn.(j) <- 1
    done;
    let t =
      {
        m;
        ncols;
        nvars;
        art_start;
        tn;
        td;
        rhsn;
        rhsd;
        objn;
        objd;
        ovn = 0;
        ovd = 1;
        basis;
      }
    in
    (* Price out the basic artificials from the phase-1 objective row. *)
    for i = 0 to m - 1 do
      if basis.(i) >= art_start then begin
        let ib = i * ncols in
        for j = 0 to ncols - 1 do
          sub_mul t.objn t.objd j 1 1 t.tn.(ib + j) t.td.(ib + j)
        done;
        let ovn, ovd = sub_prod t.ovn t.ovd 1 1 t.rhsn.(i) t.rhsd.(i) in
        t.ovn <- ovn;
        t.ovd <- ovd
      end
    done;
    t

  (* Run phase 1 to completion.  On feasibility, any artificial still
     basic (at zero) is driven out where possible; a row whose artificial
     cannot be driven out is redundant and harmless as long as artificials
     are never allowed to re-enter (phase 2 restricts entering columns to
     [j < art_start]). *)
  let phase1_feasible t =
    (match optimise t ~allowed:(fun _ -> true) with
    | Error `Unbounded ->
        (* Phase-1 objective is bounded below by 0; unreachable. *)
        assert false
    | Ok () -> ());
    if -t.ovn > 0 then false
    else begin
      for i = 0 to t.m - 1 do
        if t.basis.(i) >= t.art_start then begin
          let ib = i * t.ncols in
          let j = ref 0 in
          let found = ref false in
          while (not !found) && !j < t.art_start do
            if t.tn.(ib + !j) <> 0 then begin
              pivot t ~row:i ~col:!j;
              found := true
            end;
            incr j
          done
        end
      done;
      true
    end

  (* The reduced-cost row of [cost] (length nvars, zero-extended over
     slack/artificial columns) w.r.t. the current basis, plus the matching
     objective-value pair (the tableau convention stores the *negated*
     objective value). *)
  let reduce_cost_row t ~cost =
    let rown = Array.make t.ncols 0 and rowd = Array.make t.ncols 1 in
    Array.iteri
      (fun j q ->
        rown.(j) <- Rat.num q;
        rowd.(j) <- Rat.den q)
      cost;
    let vn = ref 0 and vd = ref 1 in
    for i = 0 to t.m - 1 do
      let b = t.basis.(i) in
      let cb = if b < t.nvars then cost.(b) else Rat.zero in
      if not (Rat.is_zero cb) then begin
        let cbn = Rat.num cb and cbd = Rat.den cb in
        let ib = i * t.ncols in
        for j = 0 to t.ncols - 1 do
          sub_mul rown rowd j cbn cbd t.tn.(ib + j) t.td.(ib + j)
        done;
        let n, d = sub_prod !vn !vd cbn cbd t.rhsn.(i) t.rhsd.(i) in
        vn := n;
        vd := d
      end
    done;
    (rown, rowd, (!vn, !vd))

  (* Install [cost] (length nvars) as the tableau objective, reduced
     w.r.t. the current basis. *)
  let install_cost t ~cost =
    let rown, rowd, (vn, vd) = reduce_cost_row t ~cost in
    Array.blit rown 0 t.objn 0 t.ncols;
    Array.blit rowd 0 t.objd 0 t.ncols;
    t.ovn <- vn;
    t.ovd <- vd

  let value t = Rat.make (neg_exn t.ovn) t.ovd

  let solution t =
    let solution = Array.make t.nvars Rat.zero in
    for i = 0 to t.m - 1 do
      if t.basis.(i) < t.nvars then
        solution.(t.basis.(i)) <- Rat.make t.rhsn.(i) t.rhsd.(i)
    done;
    solution
end

let solve ~objective ~cost constraints =
  let nvars = Array.length cost in
  let t = Tableau.setup ~nvars constraints in
  if not (Tableau.phase1_feasible t) then Infeasible
  else begin
    (* Phase 2: install the real objective (reduced w.r.t. the basis). *)
    let sign_cost =
      match objective with
      | Minimize -> cost
      | Maximize -> Array.map Rat.neg cost
    in
    Tableau.install_cost t ~cost:sign_cost;
    let allowed j = j < t.Tableau.art_start in
    match Tableau.optimise t ~allowed with
    | Error `Unbounded -> Unbounded
    | Ok () ->
        let solution = Tableau.solution t in
        let value = Tableau.value t in
        let value =
          match objective with Minimize -> value | Maximize -> Rat.neg value
        in
        Optimal { value; solution }
  end

let minimize ~cost constraints = solve ~objective:Minimize ~cost constraints
let maximize ~cost constraints = solve ~objective:Maximize ~cost constraints

let pp_outcome fmt = function
  | Unbounded -> Format.pp_print_string fmt "unbounded"
  | Infeasible -> Format.pp_print_string fmt "infeasible"
  | Optimal { value; solution } ->
      Format.fprintf fmt "optimal %a at (%a)" Rat.pp value
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           Rat.pp)
        (Array.to_list solution)
