(** Automatic derivation of parametric I/O lower bounds.

    Two derivation paths, both instances of the (S+T)-partitioning theorem
    (Theorem 1 of the paper): a convex K-bounded set has size at most [U],
    hence [Q >= (K - S) * |V| / U] for the [|V|] instances of the analysed
    statement.

    - {b Classical} (Section 2): [U = K^rho] with [rho] the optimal
      Brascamp-Lieb exponent sum over the statement's projections.  [rho] is
      typically [3/2], making the bound [Theta(|V| / sqrt S)]; the formula
      is expressed over an auxiliary variable [sqrtS] with [S = sqrtS^2].

    - {b Hourglass} (Section 4): the K-bounded set is split into [I']
      (components spanning >= 3 temporal iterations, which must contain full
      reduction lines of width [W]) and the flat part [F].  [|I'|] is
      bounded through sharpened projections ([|phi_x| <= K/W], Lemma 4) and
      [|F|] through the flatness bound and the slice-summation argument
      (Section 4.3), giving [U = K^a W^b + 2 R K^c] with integer exponents.
      Instantiated at [K = 2S] this yields the main bound; at [K = W] (valid
      when [S <= W], forcing [I'] empty) the small-cache bound.

    A third, last-resort technique backs the degradation ladder
    ({!analyze_ladder}): the {b trivial} input-footprint bound
    [Q >= distinct input cells], S-independent but unconditionally sound
    and computable without CDAGs, projections or LPs. *)

type technique = Classical | Hourglass | Hourglass_small_s | Trivial

(** The validity region of a bound, as symbolic cache-size limits: the
    bound holds for [s_lo <= S <= s_hi] ([s_hi = None] = unbounded above;
    [s_lo] is 1 for every current derivation).  This is the structured
    form behind the printed validity condition — reports and the CLI
    render it per bound, and {!best_regions} uses it as exact regime
    edges. *)
type sregion = {
  s_lo : Iolb_symbolic.Ratfun.t;
  s_hi : Iolb_symbolic.Ratfun.t option;
}

(** [region_validity v] renders the validity region for display (e.g.
    ["1 <= S <= N - M - 1"]); used by every construction site and by
    report finalization after substituting the loop split. *)
val region_validity : sregion -> string

type t = {
  program : string;
  stmt : string;  (** statement whose instances are counted *)
  technique : technique;
  formula : Iolb_symbolic.Ratfun.t;
      (** lower bound on the I/O volume Q, over the program parameters plus
          [S] (and [sqrtS] for classical bounds, with [S = sqrtS^2]) *)
  validity : string;
      (** human-readable rendering of [valid], kept in sync at
          construction *)
  valid : sregion;  (** structured validity region *)
  s_max : Iolb_symbolic.Ratfun.t option;
      (** [= valid.s_hi]; retained as a plain field for the serve wire
          protocol and older call sites *)
  log : string list;  (** derivation trace, for reports *)
}

(** [classical p ~stmt] derives the classical K-partition bound for the
    given statement; [None] when the Brascamp-Lieb step is infeasible or
    yields [rho <= 1] (no useful bound), or when [rho] has a denominator
    other than 1 or 2.
    @raise Iolb_util.Budget.Exhausted when the budget runs out. *)
val classical :
  ?budget:Iolb_util.Budget.t -> Iolb_ir.Program.t -> stmt:string -> t option

(** [hourglass p h] derives the hourglass bounds (main and small-cache) for
    a detected pattern.  Returns [[]] if the sharpened Brascamp-Lieb step
    fails to produce integer exponents.
    @raise Iolb_util.Budget.Exhausted when the budget runs out. *)
val hourglass :
  ?budget:Iolb_util.Budget.t -> Iolb_ir.Program.t -> Hourglass.t -> t list

(** [sharpened_projections p h] is the sharpened Brascamp-Lieb input of
    the hourglass derivation (Section 4.2): the statement dimensions and
    the projections with their (alpha, beta) LP costs — [phi_I] bounded
    by [W] alone and every reduction-touching [phi_x] by [K/W].  Exposed
    so regime reports can run {!Bl.exponent_regions} on exactly the LP
    the derivation solves. *)
val sharpened_projections :
  Iolb_ir.Program.t -> Hourglass.t -> string list * Bl.bounded_proj list

(** [trivial p] is the input-footprint bound [Q >= distinct input cells]:
    each never-written array contributes the image cardinality of one of
    its read accesses, underapproximated via minimal extents.  [None] only
    when no input array is recognizable. *)
val trivial : Iolb_ir.Program.t -> t option

(** [classical_deepest p] is the classical derivation applied to every
    statement at the maximal loop depth (the statements whose instance
    count dominates).  This is the classical half of {!analyze}.
    @raise Iolb_util.Budget.Exhausted when the budget runs out. *)
val classical_deepest :
  ?budget:Iolb_util.Budget.t -> Iolb_ir.Program.t -> t list

(** [analyze ~verify_params p] runs the full pipeline: hourglass detection
    (empirically verified at [verify_params]), hourglass derivation on each
    verified pattern, and the classical derivation on every deepest-loop
    statement.  Results are sorted: hourglass bounds first.
    @raise Iolb_util.Budget.Exhausted when the budget runs out. *)
val analyze :
  ?budget:Iolb_util.Budget.t ->
  verify_params:(string * int) list ->
  Iolb_ir.Program.t ->
  t list

(** Result of the graceful-degradation ladder: the bounds of the deepest
    rung reached, and - when any rung was skipped or aborted - a
    human-readable account of why. [degradation = None] means the full
    pipeline ran. *)
type outcome = { bounds : t list; degradation : string option }

(** [analyze_ladder ~budget ~verify_params p] is the resilient entry point:
    attempt the hourglass derivation, fall back to the classical
    Brascamp-Lieb bound when the hourglass rung exhausts its budget (or
    detects nothing), and fall back to the {!trivial} input-footprint bound
    when both partitioning rungs fail.  Never raises: budget exhaustion
    that not even the trivial rung survives (a passed wall-clock deadline)
    and internal failures come back as typed errors. *)
val analyze_ladder :
  ?budget:Iolb_util.Budget.t ->
  verify_params:(string * int) list ->
  Iolb_ir.Program.t ->
  (outcome, Iolb_util.Engine_error.t) result

(** [eval b ~params ~s] evaluates the bound numerically ([sqrtS] is bound
    to [sqrt s]). *)
val eval : t -> params:(string * int) list -> s:int -> float

(** [optimize_split b ~param ~candidates ~params ~s] instantiates the free
    split parameter [param] of a bound (e.g. GEHD2's loop-split point, cf
    Section 5.3 of the paper) at each candidate value and returns the one
    maximising the bound, with its value.  Returns [None] if no candidate
    gives a positive bound.  Candidates are evaluated across [jobs] domains
    (default {!Iolb_util.Pool.default_jobs}).

    {b Tie-breaking is part of the contract}: the first candidate (in list
    order) attaining the maximum wins, at every worker count — [Pool.map]
    preserves order and the argmax fold is sequential.  Pinned by a
    regression test with equal-value candidates across [--jobs] widths;
    {!optimize_split_regions} and its differential oracle rely on it. *)
val optimize_split :
  ?jobs:int ->
  t ->
  param:string ->
  candidates:int list ->
  params:(string * int) list ->
  s:int ->
  (int * float) option

(** Result of a region-based split search. *)
type split_search = {
  split : int;  (** argmax of the bound over the split parameter *)
  split_value : float;  (** bound value at [split] *)
  evaluated : int;  (** candidate evaluations actually performed *)
  monotone_regions : int;
      (** monotone pieces of the bound over the parameter range (flagged
          unit intervals + 1 on the certified-scan tier, or isolated
          derivative roots + 1 on the exact-refinement tier); 0 on the
          enumeration fallback *)
  exact : bool;
      (** [true]: certified path — the overflow-free float sign-scan of
          the derivative
          ({!Iolb_symbolic.Sturm.possible_extremum_intervals}), refined
          by exact Sturm root isolation when the scan floods with
          uncertain signs; [false]: fell back to full enumeration (extra
          variables such as [sqrtS], or a possible pole in range) *)
}

(** [optimize_split_regions b ~param ~lo ~hi ~params ~s] maximises the
    bound over the integer split range [[lo, hi]] by regions instead of
    enumeration: the bound is a univariate rational function of [param]
    once [params] and [S] are substituted, so its integer argmax lies at
    a range end or adjacent to a root of its derivative — the candidates
    are isolated exactly (Sturm sequences) and only those few are
    evaluated.  Agrees with [optimize_split] over the full enumeration
    (same first-maximum-wins rule over an ascending candidate list; the
    [split-regions] differential oracle in [lib/check] asserts it).
    Returns [None] when no candidate gives a positive bound. *)
val optimize_split_regions :
  ?jobs:int ->
  t ->
  param:string ->
  lo:int ->
  hi:int ->
  params:(string * int) list ->
  s:int ->
  split_search option

(** [best ~params ~s bounds] picks the bound evaluating highest at the given
    point, restricted to those applicable there (small-cache bounds require
    [S <= W]). *)
val best : params:(string * int) list -> s:int -> t list -> t option

(** A maximal integer cache-size range on which one bound (or none) wins
    {!best}. *)
type winner_range = { s_from : int; s_to : int; winner : t option }

(** [best_regions ~params ~lo ~hi bounds] partitions the integer range
    [[lo, hi]] of cache sizes into maximal ranges by winning bound: the
    regime table (e.g. Thm 5's [S <= M/2] vs [M/2 <= S] hand split) read
    off mechanically.  Change points are located exactly where the
    formulas stay polynomial in [S] (pairwise crossing roots plus
    applicability edges, via Sturm); elsewhere (e.g. [sqrtS] classical
    formulas) they are refined by bisection on winner disagreement, which
    can miss a switch that both appears and reverts strictly inside a
    range.  Ranges are contiguous, ascending, and cover [[lo, hi]]. *)
val best_regions :
  params:(string * int) list ->
  lo:int ->
  hi:int ->
  t list ->
  winner_range list

val pp : Format.formatter -> t -> unit
