test/test_derive.ml: Alcotest Float Iolb Iolb_cdag Iolb_kernels Iolb_pebble Iolb_symbolic List Option Printf
