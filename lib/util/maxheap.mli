(** Binary max-heap of [(priority, payload)] integer pairs, used by the
    Belady-style eviction loops (cache simulator, pebble game) with lazy
    invalidation: callers push fresh entries and skip stale ones on pop. *)

type t

val create : unit -> t
val is_empty : t -> bool
val length : t -> int

(** [clear h] empties the heap without releasing its storage, so a
    reused heap (one runner, many runs) allocates nothing per run.
    [peak] is preserved across clears. *)
val clear : t -> unit

(** [push h ~pos ~payload] inserts an entry with priority [pos]. *)
val push : t -> pos:int -> payload:int -> unit

(** [pop h] removes and returns the entry with the largest [pos].
    @raise Not_found on an empty heap. *)
val pop : t -> int * int

(** [compact h ~keep] drops every entry for which [keep] is false and
    restores the heap property in O(length).  Used by the lazy-invalidation
    eviction loops to bound the heap by the live-entry count instead of the
    push count.  Compaction may reorder entries with equal [pos]; callers
    whose output depends on tie order must not compact. *)
val compact : t -> keep:(pos:int -> payload:int -> bool) -> unit

(** Largest length the heap has ever reached (diagnostics: the memory
    high-water mark of a lazily-invalidated heap). *)
val peak : t -> int
