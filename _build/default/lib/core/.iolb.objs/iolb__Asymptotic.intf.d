lib/core/asymptotic.mli: Iolb_symbolic
