test/test_ratfun.ml: Alcotest Iolb_symbolic Iolb_util
