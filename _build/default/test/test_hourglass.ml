(* Hourglass detection must find the paper's patterns (Section 5): on MGS,
   A2V, V2Q, GEBD2 and split GEHD2, with the right dimension classification
   and width; it must reject GEMM and the unsplit GEHD2 (constant minimal
   width). *)

module H = Iolb.Hourglass
module K = Iolb_kernels

let find_on ?reduction prog stmt =
  List.find_opt
    (fun (h : H.t) ->
      h.update_stmt = stmt
      && match reduction with None -> true | Some r -> h.reduction = r)
    (H.detect prog)

let check_classification ?width prog stmt ~temporal ~reduction ~neutral =
  match find_on ~reduction prog stmt with
  | None -> Alcotest.failf "no hourglass detected on %s" stmt
  | Some h ->
      Alcotest.(check (list string)) "temporal" temporal h.temporal;
      Alcotest.(check (list string)) "reduction" reduction h.reduction;
      Alcotest.(check (list string)) "neutral" neutral h.neutral;
      Option.iter
        (fun w ->
          Alcotest.(check string)
            "width" w
            (Iolb_symbolic.Polynomial.to_string (H.width_poly h)))
        width

let test_mgs () =
  check_classification K.Mgs.spec "SU" ~temporal:[ "k" ] ~reduction:[ "i" ]
    ~neutral:[ "j" ] ~width:"M"

let test_a2v () =
  check_classification K.Householder.a2v_spec "SU" ~temporal:[ "k" ]
    ~reduction:[ "i" ] ~neutral:[ "j" ] ~width:"M - N"

let test_v2q () =
  check_classification K.Householder.v2q_spec "SU" ~temporal:[ "k" ]
    ~reduction:[ "i" ] ~neutral:[ "j" ] ~width:"M - N"

let test_gebd2 () =
  check_classification K.Gebd2.spec "BUl" ~temporal:[ "k" ] ~reduction:[ "i" ]
    ~neutral:[ "j" ] ~width:"M - N + 1"

let test_gehd2_unsplit_rejected () =
  let hs = H.detect K.Gehd2.spec in
  Alcotest.(check bool)
    "no hourglass on SU1 (constant width)" true
    (not (List.exists (fun (h : H.t) -> h.update_stmt = "SU1") hs))

let test_gehd2_split () =
  check_classification K.Gehd2.split_spec "SU1a" ~temporal:[ "j" ]
    ~reduction:[ "i" ] ~neutral:[ "k" ] ~width:"-M + N - 1"

let test_spurious_candidates_pruned () =
  (* detect over-generates (e.g. a bogus "reduction over k" pattern on MGS's
     SR); the empirical CDAG check must prune exactly those. *)
  let params = [ ("M", 6); ("N", 4) ] in
  let verified = H.detect_verified ~params K.Mgs.spec in
  Alcotest.(check bool)
    "bogus SR pattern pruned" true
    (not (List.exists (fun (h : H.t) -> h.update_stmt = "SR") verified));
  Alcotest.(check bool)
    "real SU pattern kept" true
    (List.exists (fun (h : H.t) -> h.update_stmt = "SU") verified)

let test_gemm_rejected () =
  Alcotest.(check int) "no hourglass on gemm" 0 (List.length (H.detect K.Gemm.spec))

let test_verify_empirically () =
  List.iter
    (fun (prog, stmt, reduction, params) ->
      match find_on ~reduction prog stmt with
      | None -> Alcotest.failf "no hourglass on %s" stmt
      | Some h ->
          Alcotest.(check bool)
            (Printf.sprintf "chains exist on the CDAG of %s" stmt)
            true
            (H.verify ~params prog h))
    [
      (K.Mgs.spec, "SU", [ "i" ], [ ("M", 6); ("N", 4) ]);
      (K.Householder.a2v_spec, "SU", [ "i" ], [ ("M", 7); ("N", 4) ]);
      (K.Householder.v2q_spec, "SU", [ "i" ], [ ("M", 7); ("N", 4) ]);
      (K.Gebd2.spec, "BUl", [ "i" ], [ ("M", 7); ("N", 4) ]);
      (K.Gehd2.split_spec, "SU1a", [ "i" ], [ ("N", 8); ("M", 3) ]);
    ]

let suite =
  [
    Alcotest.test_case "mgs: SU hourglass, width M" `Quick test_mgs;
    Alcotest.test_case "a2v: SU hourglass, width M-N" `Quick test_a2v;
    Alcotest.test_case "v2q: SU hourglass, width M-N" `Quick test_v2q;
    Alcotest.test_case "gebd2: BUl hourglass, width M-N+1" `Quick test_gebd2;
    Alcotest.test_case "gehd2 unsplit rejected" `Quick test_gehd2_unsplit_rejected;
    Alcotest.test_case "gehd2 split accepted, width N-M-1" `Quick test_gehd2_split;
    Alcotest.test_case "gemm has no hourglass" `Quick test_gemm_rejected;
    Alcotest.test_case "dependence chains verified on CDAGs" `Quick
      test_verify_empirically;
    Alcotest.test_case "spurious candidates pruned by verification" `Quick
      test_spurious_candidates_pruned;
  ]
