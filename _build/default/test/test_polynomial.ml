(* Polynomial ring laws, substitution, and the Faulhaber summation used for
   symbolic iteration-domain cardinalities. *)

module P = Iolb_symbolic.Polynomial
module Rat = Iolb_util.Rat

let vars = [ "x"; "y"; "z" ]

let poly_gen =
  (* Random small polynomials over x, y, z with coefficients in [-5, 5]. *)
  let open QCheck2.Gen in
  let monomial =
    map2
      (fun coeff exps ->
        let factors =
          List.mapi (fun i e -> (List.nth vars i, e)) exps
          |> List.filter (fun (_, e) -> e > 0)
        in
        P.monomial (Rat.of_int coeff) (Iolb_symbolic.Monomial.of_list factors))
      (int_range (-5) 5)
      (list_size (return 3) (int_range 0 3))
  in
  map (List.fold_left P.add P.zero) (list_size (int_range 0 6) monomial)

let poly = (poly_gen, P.to_string)

let prop name ?(count = 300) gen f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:(snd gen) (fst gen) f)

let prop2 name ?(count = 300) f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count
       ~print:(fun (a, b) -> P.to_string a ^ " ; " ^ P.to_string b)
       QCheck2.Gen.(pair poly_gen poly_gen)
       f)

let eval_at p (x, y, z) = P.eval_int [ ("x", x); ("y", y); ("z", z) ] p

let points = [ (0, 0, 0); (1, 2, 3); (-2, 5, 1); (7, -3, -4) ]

let semantic_equal a b =
  List.for_all (fun pt -> Rat.equal (eval_at a pt) (eval_at b pt)) points

let test_faulhaber_known () =
  (* F_1(n) = n(n+1)/2, F_2(n) = n(n+1)(2n+1)/6. *)
  let n = P.var "n" in
  let f1 = P.faulhaber 1 in
  let expected1 = P.scale Rat.half (P.mul n (P.add n P.one)) in
  Alcotest.(check bool) "F_1" true (P.equal f1 expected1);
  let f2 = P.faulhaber 2 in
  let expected2 =
    P.scale (Rat.make 1 6)
      (P.mul n (P.mul (P.add n P.one) (P.add (P.scale Rat.two n) P.one)))
  in
  Alcotest.(check bool) "F_2" true (P.equal f2 expected2)

let test_sum_over_brute_force () =
  (* sum_over agrees with explicit summation on concrete ranges. *)
  let p =
    P.add
      (P.mul (P.var "k") (P.var "k"))
      (P.add (P.mul (P.var "y") (P.var "k")) P.one)
  in
  List.iter
    (fun (lo, hi, y) ->
      let s =
        P.sum_over "k" ~lo:(P.of_int lo) ~hi:(P.of_int hi) p
        |> P.eval_int [ ("y", y) ]
      in
      let expected = ref Rat.zero in
      for k = lo to hi do
        expected :=
          Rat.add !expected (P.eval_int [ ("k", k); ("y", y) ] p)
      done;
      Alcotest.(check bool)
        (Printf.sprintf "sum k=%d..%d (y=%d)" lo hi y)
        true
        (Rat.equal s !expected))
    [ (0, 10, 2); (3, 3, -1); (5, 4, 7) (* empty range -> 0 *); (-4, 6, 0) ]

let test_sum_over_symbolic_bounds () =
  (* sum_{k=a+1}^{b} 1 = b - a, checked symbolically. *)
  let s = P.sum_over "k" ~lo:(P.add (P.var "a") P.one) ~hi:(P.var "b") P.one in
  Alcotest.(check bool)
    "trip count" true
    (P.equal s (P.sub (P.var "b") (P.var "a")))

let test_triangular_cardinal () =
  (* sum_{k=0}^{N-1} sum_{j=k+1}^{N-1} 1 = N(N-1)/2. *)
  let inner =
    P.sum_over "j" ~lo:(P.add (P.var "k") P.one) ~hi:(P.sub (P.var "N") P.one)
      P.one
  in
  let total =
    P.sum_over "k" ~lo:P.zero ~hi:(P.sub (P.var "N") P.one) inner
  in
  let expected =
    P.scale Rat.half (P.mul (P.var "N") (P.sub (P.var "N") P.one))
  in
  Alcotest.(check bool) "N(N-1)/2" true (P.equal total expected)

let test_subst () =
  (* (x^2 + y)[x := y+1] = y^2 + 3y + 1 *)
  let p = P.add (P.mul (P.var "x") (P.var "x")) (P.var "y") in
  let q = P.subst "x" (P.add (P.var "y") P.one) p in
  let expected =
    P.add
      (P.mul (P.var "y") (P.var "y"))
      (P.add (P.scale (Rat.of_int 3) (P.var "y")) P.one)
  in
  Alcotest.(check bool) "subst" true (P.equal q expected)

let suite =
  [
    Alcotest.test_case "faulhaber F_1, F_2" `Quick test_faulhaber_known;
    Alcotest.test_case "sum_over = brute force" `Quick test_sum_over_brute_force;
    Alcotest.test_case "sum_over symbolic bounds" `Quick
      test_sum_over_symbolic_bounds;
    Alcotest.test_case "triangular domain cardinal" `Quick
      test_triangular_cardinal;
    Alcotest.test_case "substitution" `Quick test_subst;
    prop2 "addition commutes" (fun (a, b) -> P.equal (P.add a b) (P.add b a));
    prop2 "multiplication commutes" (fun (a, b) ->
        P.equal (P.mul a b) (P.mul b a));
    prop2 "mul distributes over add (semantic)" (fun (a, b) ->
        semantic_equal
          (P.mul a (P.add a b))
          (P.add (P.mul a a) (P.mul a b)));
    prop "eval is a ring morphism for pow" poly (fun p ->
        List.for_all
          (fun pt ->
            Rat.equal (eval_at (P.pow p 2) pt)
              (Rat.mul (eval_at p pt) (eval_at p pt)))
          points);
    prop "canonical form: structural = semantic zero" poly (fun p ->
        P.is_zero (P.sub p p));
    prop "as_univariate reconstructs" poly (fun p ->
        let coeffs = P.as_univariate "x" p in
        let rebuilt =
          List.fold_left
            (fun (acc, i) c ->
              (P.add acc (P.mul c (P.pow (P.var "x") i)), i + 1))
            (P.zero, 0) coeffs
          |> fst
        in
        P.equal p rebuilt);
  ]
