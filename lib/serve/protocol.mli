(** Wire protocol of the bound service: newline-delimited JSON.

    Each request is one line, a JSON object [{"id": ..., "op": ...,
    ...}]; each response is one line echoing the request [id].  Success
    responses are [{"id", "ok": true, "op", "result"}]; failures are
    [{"id", "ok": false, "error": {"code", "exit_code", ..., "message"}}]
    with error codes mirroring the CLI exit-code taxonomy
    ([invalid_input]/2, [budget_exhausted]/3 with its engine [stage],
    [unsupported]/4, [internal]/5) plus the service-level [bad_request]/2
    (unparsable or ill-typed request line) and [overloaded]/6 (bounded
    queue full, with a [retry_after_ms] hint).

    Rendering is compact and field order fixed, so a response is a pure
    function of the request - the property behind the byte-identical
    cached responses the soak test asserts. *)

module Json = Iolb_util.Json
module Budget = Iolb_util.Budget
module Engine_error = Iolb_util.Engine_error

(** Per-request resource budget, including the fault-injection hook used
    by the soak tests (all fields optional on the wire). *)
type budget_spec = {
  timeout_ms : int option;
  max_steps : int option;
  max_nodes : int option;
  fault : (Budget.stage * int) option;
}

val no_budget : budget_spec
val is_unlimited : budget_spec -> bool

(** Optional empirical rider on an [eval] request (wire field
    ["empirical": {"rate": r, "seed": k}]): run a sampled ([rate < 1])
    or exact streaming ([rate = 1]) cache sweep of the kernel at the
    evaluation point and report measured loads next to the bounds.
    [rate] must lie in (0, 1]; [seed] defaults to 42. *)
type empirical_spec = { rate : float; seed : int }

type op =
  | Ping
  | List_kernels
  | Analyze of { kernel : string; budget : budget_spec }
  | Source of { src : string; budget : budget_spec }
      (** an inline DSL program ([src] is the full source text; the JSON
          string escaping keeps it one wire line), analysed through the
          graceful-degradation ladder *)
  | Eval of {
      kernel : string;
      m : int;
      n : int;
      s : int;
      empirical : empirical_spec option;
      budget : budget_spec;
    }
  | Stats
  | Crash
      (** deliberately kills the worker domain handling it; only honoured
          when the server was started with crash injection enabled *)
  | Shutdown

type request = { id : Json.t; op : op }

val op_name : op -> string

(** Wire names of the budget stages ([poly_projection], [cdag_build],
    [pebble_game], [cache_sim], [derivation]). *)
val wire_of_stage : Budget.stage -> string

val stage_of_wire : string -> Budget.stage option

(** [parse_request line] decodes one request line.  The error carries the
    request [id] when the line parsed far enough to contain one
    ([Json.Null] otherwise) so the typed [bad_request] response stays
    correlatable. *)
val parse_request : string -> (request, Json.t * string) result

type error =
  | Engine of Engine_error.t
  | Bad_request of string
  | Overloaded of { retry_after_ms : int }

(** Wire code, one per constructor: [invalid_input], [budget_exhausted],
    [unsupported], [internal], [bad_request], [overloaded]. *)
val error_code : error -> string

(** Numeric code carried next to {!error_code}: engine errors use their
    CLI exit codes (2/3/4/5), [bad_request] 2, [overloaded] 6. *)
val error_exit_code : error -> int

val error_message : error -> string
val error_json : error -> Json.t

(** One complete response line (no trailing newline). *)
val error_response : id:Json.t -> error -> string

val ok_response : id:Json.t -> op:string -> Json.t -> string

(** [ok_response_raw ~id ~op result] splices an already-rendered result
    fragment (e.g. a cached payload) into the success envelope,
    byte-identical to {!ok_response} on the parsed equivalent. *)
val ok_response_raw : id:Json.t -> op:string -> string -> string

(** Deterministic result payloads. *)

val analysis_result : spec:string -> Iolb.Report.analysis -> Json.t

(** [source_result ~spec ~kernel ~hourglasses o] renders an inline-source
    ladder outcome with the same field shape as {!analysis_result}. *)
val source_result :
  spec:string ->
  kernel:string ->
  hourglasses:int ->
  Iolb.Derive.outcome ->
  Json.t

(** [eval_result ?empirical ...] renders the eval payload; [empirical],
    when given, is an already-rendered measurement object appended as the
    ["empirical"] field (plain evals keep their exact historical bytes). *)
val eval_result :
  ?empirical:Json.t ->
  spec:string ->
  Iolb.Report.analysis ->
  m:int ->
  n:int ->
  s:int ->
  Json.t

(** Canonical content key of a cacheable request ([None] for the ops that
    are never cached): the resolved kernel display name plus, for [eval],
    the evaluation point and, when present, the empirical rider's rate
    and seed; [source] requests are keyed by their source text and ignore
    [display].  Budgets are excluded - a complete result is the same
    answer whatever budget produced it. *)
val spec_key : op -> display:string -> string option

(** Hex content hash (the [spec] field of result payloads). *)
val spec_hash : string -> string

(** Client-side view of one response line. *)
type parsed_response = {
  resp_id : Json.t;
  ok : bool;
  body : Json.t;
  exit_code : int;
}

val parse_response : string -> (parsed_response, string) result
