(* Compiled trace production over a flat integer address space.

   [Program.iter_accesses_range] already skips toward a position range by
   closed-form counting, but every emitted access still materializes an
   index vector and the consumer pays a hash (interning) to identify the
   cell.  At the exact-sweep production rates the empirical pipeline
   targets, that hash dominates.

   A [Cplan.t] removes both costs.  At plan-build time every array gets a
   rectangular hull - per-dimension inclusive bounds that contain every
   index the program can touch, obtained by interval arithmetic over the
   loop nest - and the hulls are laid out back to back in one flat
   row-major address space.  Each access site's index expressions then
   compose with the layout into a single affine form over the loop
   variables, so producing an access is one flat-integer evaluation and
   its cell identity is an [int] already dense enough to index arrays
   with: consumers replace interner hashing by an [addr -> id] table.
   Along an innermost loop the address form moves by a constant, so the
   hot path emits an access with one addition.

   Addresses are injective on cells by construction (distinct arrays get
   disjoint ranges; within an array the row-major map is injective on the
   hull), and [decode] inverts them, so a consumer that needs the
   symbolic cell - say, to intern a first occurrence - pays the decode
   only once per distinct cell, never per access.

   A plan is immutable; [iter] keeps all mutable state (environment,
   per-site address cursors) in per-call buffers, so one plan can drive
   several domains concurrently. *)

module Affine = Iolb_poly.Affine

exception Past_range

type caff = { cconst : int; ccoefs : int array; cslots : int array }

let ceval env a =
  let acc = ref a.cconst in
  for k = 0 to Array.length a.cslots - 1 do
    acc :=
      !acc
      + Array.unsafe_get a.ccoefs k
        * Array.unsafe_get env (Array.unsafe_get a.cslots k)
  done;
  !acc

type cnode =
  | Cstmt of { sa : caff array; sw : bool array }
      (* reads then writes, in [Program.iter_accesses] emission order *)
  | Cloop of {
      slot : int;
      lo : caff;
      hi : caff;
      rev : bool;
      body : cnode array;
      collapse : bool;
          (* the body's access count does not depend on [slot]: skipping
             the whole loop costs one multiplication *)
    }
  | Cinner of {
      islot : int;
      ilo : caff;
      ihi : caff;
      irev : bool;
      ia : caff array; (* per-site composed address form *)
      iw : bool array; (* per-site write flag *)
      idelta : int array; (* per-site address step when the var steps +1 *)
      iid : int; (* index into the per-call cursor scratch *)
    }
      (* an innermost loop whose body is one statement: the per-iteration
         site addresses advance by constants *)

type t = {
  body : cnode array;
  nslots : int;
  pinits : (int * int) list;
  inner_k : int array; (* sites per Cinner, indexed by [iid] *)
  total : int; (* n_accesses at the plan's parameters *)
  addr_space : int;
  d_names : string array;
  d_base : int array; (* length narrays + 1; last entry = addr_space *)
  d_lo : int array array;
  d_stride : int array array;
}

let n_accesses t = t.total
let addr_space t = t.addr_space

(* --------------------------------------------------------------------- *)
(* Compilation.                                                           *)

(* Intermediate tree: like the compiled form of [Program], with per-site
   index forms still separate (the address layout is not known until the
   whole tree has been hulled). *)
type pre =
  | Pstmt of (string * caff array * bool) array
  | Ploop of { pslot : int; plo : caff; phi : caff; prev : bool; pbody : pre array }

type hull = { h_order : int; mutable h_lo : int array; mutable h_hi : int array }

(* Hull volumes are bounded; a pathological program (huge affine
   coefficients) must fail loudly at plan time so callers can fall back
   to the streaming producer rather than allocate an absurd table. *)
let max_addr_space = 1 lsl 40

let make ~params (p : Program.t) =
  let nslots = ref 0 in
  let scope = ref [] in
  let ivlo = ref (Array.make 16 0) and ivhi = ref (Array.make 16 0) in
  let fresh v lo hi =
    let s = !nslots in
    incr nslots;
    scope := (v, s) :: !scope;
    if s >= Array.length !ivlo then begin
      let grow a =
        let n = Array.make (2 * Array.length a) 0 in
        Array.blit a 0 n 0 (Array.length a);
        n
      in
      ivlo := grow !ivlo;
      ivhi := grow !ivhi
    end;
    !ivlo.(s) <- lo;
    !ivhi.(s) <- hi;
    s
  in
  let slot_of x =
    match List.assoc_opt x !scope with Some s -> s | None -> raise Not_found
  in
  let caffine e =
    let ts = Affine.terms e in
    {
      cconst = Affine.constant e;
      ccoefs = Array.of_list (List.map fst ts);
      cslots = Array.of_list (List.map (fun (_, x) -> slot_of x) ts);
    }
  in
  (* Interval of an affine form over the current per-slot intervals. *)
  let interval a =
    let mn = ref a.cconst and mx = ref a.cconst in
    for k = 0 to Array.length a.cslots - 1 do
      let c = a.ccoefs.(k) and s = a.cslots.(k) in
      if c > 0 then begin
        mn := !mn + (c * !ivlo.(s));
        mx := !mx + (c * !ivhi.(s))
      end
      else begin
        mn := !mn + (c * !ivhi.(s));
        mx := !mx + (c * !ivlo.(s))
      end
    done;
    (!mn, !mx)
  in
  let hulls : (string, hull) Hashtbl.t = Hashtbl.create 8 in
  let n_arrays = ref 0 in
  let hull_site (a : Access.t) idx =
    let nd = Array.length idx in
    let h =
      match Hashtbl.find_opt hulls a.array with
      | Some h ->
          if Array.length h.h_lo <> nd then
            invalid_arg
              (Printf.sprintf
                 "Cplan.make: array %s used with both %d and %d dimensions"
                 a.array (Array.length h.h_lo) nd);
          h
      | None ->
          let h =
            {
              h_order = !n_arrays;
              h_lo = Array.make nd max_int;
              h_hi = Array.make nd min_int;
            }
          in
          incr n_arrays;
          Hashtbl.add hulls a.array h;
          h
    in
    Array.iteri
      (fun d e ->
        let mn, mx = interval e in
        if mn < h.h_lo.(d) then h.h_lo.(d) <- mn;
        if mx > h.h_hi.(d) then h.h_hi.(d) <- mx)
      idx;
    (a.array, idx)
  in
  let psite is_write (a : Access.t) =
    let idx = Array.of_list (List.map caffine a.index) in
    let name, idx = hull_site a idx in
    (name, idx, is_write)
  in
  let pinits = List.map (fun (x, v) -> (fresh x v v, v)) params in
  let rec pre = function
    | Program.Stmt s ->
        Pstmt
          (Array.of_list
             (List.map (psite false) s.reads @ List.map (psite true) s.writes))
    | Program.Loop { var; lo; hi; rev; body } ->
        let plo = caffine lo and phi = caffine hi in
        let lo_mn, _ = interval plo and _, hi_mx = interval phi in
        (* An everywhere-empty loop still gets a well-formed (degenerate)
           interval so inner hulls stay defined; its accesses never run. *)
        let hi_mx = max lo_mn hi_mx in
        let saved = !scope in
        let pslot = fresh var lo_mn hi_mx in
        let pbody = Array.of_list (List.map pre body) in
        scope := saved;
        Ploop { pslot; plo; phi; prev = rev; pbody }
  in
  let pbody = Array.of_list (List.map pre p.body) in
  (* Layout: arrays in first-appearance order, back to back, row-major. *)
  let names = Array.make !n_arrays "" in
  Hashtbl.iter (fun name h -> names.(h.h_order) <- name) hulls;
  let d_lo = Array.make !n_arrays [||] and d_stride = Array.make !n_arrays [||] in
  let d_base = Array.make (!n_arrays + 1) 0 in
  let base = ref 0 in
  Array.iteri
    (fun i name ->
      let h = Hashtbl.find hulls name in
      let nd = Array.length h.h_lo in
      let stride = Array.make nd 1 in
      let size = ref 1 in
      for d = nd - 1 downto 0 do
        stride.(d) <- !size;
        let ext = h.h_hi.(d) - h.h_lo.(d) + 1 in
        (* a dimension only ever touched by dead code keeps extent 1 *)
        let ext = max ext 1 in
        size := !size * ext;
        if !size > max_addr_space || !size < 0 then
          invalid_arg
            (Printf.sprintf "Cplan.make: array %s hull volume overflows" name)
      done;
      Array.iteri (fun d lo -> if lo = max_int then h.h_lo.(d) <- 0) h.h_lo;
      d_base.(i) <- !base;
      d_lo.(i) <- h.h_lo;
      d_stride.(i) <- stride;
      base := !base + !size;
      if !base > max_addr_space then
        invalid_arg "Cplan.make: total address space overflows")
    names;
  d_base.(!n_arrays) <- !base;
  (* Compose each site's index forms with the layout into one address
     form: addr = base - sum_d stride_d * hull_lo_d + sum_d stride_d * idx_d. *)
  let order name = (Hashtbl.find hulls name).h_order in
  let compose name (idx : caff array) =
    let i = order name in
    let stride = d_stride.(i) and hlo = d_lo.(i) in
    let const = ref d_base.(i) in
    let acc = Array.make !nslots 0 in
    Array.iteri
      (fun d e ->
        const := !const + (stride.(d) * (e.cconst - hlo.(d)));
        for k = 0 to Array.length e.cslots - 1 do
          acc.(e.cslots.(k)) <- acc.(e.cslots.(k)) + (stride.(d) * e.ccoefs.(k))
        done)
      idx;
    let terms = ref [] in
    for s = !nslots - 1 downto 0 do
      if acc.(s) <> 0 then terms := (acc.(s), s) :: !terms
    done;
    {
      cconst = !const;
      ccoefs = Array.of_list (List.map fst !terms);
      cslots = Array.of_list (List.map snd !terms);
    }
  in
  let coeff_of slot a =
    let c = ref 0 in
    Array.iteri (fun k s -> if s = slot then c := !c + a.ccoefs.(k)) a.cslots;
    !c
  in
  let inner_k = ref [] in
  let n_inner = ref 0 in
  let rec cnode = function
    | Pstmt sites ->
        Cstmt
          {
            sa = Array.map (fun (n, idx, _) -> compose n idx) sites;
            sw = Array.map (fun (_, _, w) -> w) sites;
          }
    | Ploop { pslot; plo; phi; prev; pbody } -> (
        let body = Array.map cnode pbody in
        match body with
        | [| Cstmt { sa; sw } |] ->
            let iid = !n_inner in
            incr n_inner;
            inner_k := Array.length sa :: !inner_k;
            Cinner
              {
                islot = pslot;
                ilo = plo;
                ihi = phi;
                irev = prev;
                ia = sa;
                iw = sw;
                idelta = Array.map (coeff_of pslot) sa;
                iid;
              }
        | _ ->
            let aff_uses slot a = Array.exists (fun s -> s = slot) a.cslots in
            let rec uses slot = function
              | Cstmt _ -> false
              | Cloop l ->
                  aff_uses slot l.lo || aff_uses slot l.hi
                  || Array.exists (uses slot) l.body
              | Cinner c -> aff_uses slot c.ilo || aff_uses slot c.ihi
            in
            Cloop
              {
                slot = pslot;
                lo = plo;
                hi = phi;
                rev = prev;
                body;
                collapse = not (Array.exists (uses pslot) body);
              })
  in
  let body = Array.map cnode pbody in
  let inner_k = Array.of_list (List.rev !inner_k) in
  (* Total access count, by the same rectangular collapse as
     [Program.n_accesses]. *)
  let env = Array.make (max !nslots 1) 0 in
  List.iter (fun (s, v) -> env.(s) <- v) pinits;
  let rec count = function
    | Cstmt { sa; _ } -> Array.length sa
    | Cinner c ->
        let lo_v = ceval env c.ilo and hi_v = ceval env c.ihi in
        if hi_v < lo_v then 0
        else (hi_v - lo_v + 1) * Array.length c.ia
    | Cloop l ->
        let lo_v = ceval env l.lo and hi_v = ceval env l.hi in
        if hi_v < lo_v then 0
        else if l.collapse then begin
          env.(l.slot) <- lo_v;
          (hi_v - lo_v + 1) * Array.fold_left (fun a c -> a + count c) 0 l.body
        end
        else begin
          let total = ref 0 in
          for v = lo_v to hi_v do
            env.(l.slot) <- v;
            Array.iter (fun c -> total := !total + count c) l.body
          done;
          !total
        end
  in
  let total = Array.fold_left (fun a c -> a + count c) 0 body in
  {
    body;
    nslots = !nslots;
    pinits;
    inner_k;
    total;
    addr_space = !base;
    d_names = names;
    d_base;
    d_lo;
    d_stride;
  }

(* --------------------------------------------------------------------- *)
(* Decoding.                                                              *)

let decode t addr =
  if addr < 0 || addr >= t.addr_space then
    invalid_arg "Cplan.decode: address out of range";
  let i = ref 0 in
  while t.d_base.(!i + 1) <= addr do
    incr i
  done;
  let i = !i in
  let strides = t.d_stride.(i) and los = t.d_lo.(i) in
  let nd = Array.length strides in
  let idx = Array.make nd 0 in
  let rem = ref (addr - t.d_base.(i)) in
  for d = 0 to nd - 1 do
    idx.(d) <- los.(d) + (!rem / strides.(d));
    rem := !rem mod strides.(d)
  done;
  (t.d_names.(i), idx)

(* --------------------------------------------------------------------- *)
(* Iteration.                                                             *)

let iter t ~lo ~hi ~on_instance ~on_access =
  if lo < 0 then invalid_arg "Cplan.iter: lo < 0";
  if hi < lo then invalid_arg "Cplan.iter: hi < lo";
  let env = Array.make (max t.nslots 1) 0 in
  List.iter (fun (s, v) -> env.(s) <- v) t.pinits;
  let cursors = Array.map (fun k -> Array.make (max k 1) 0) t.inner_k in
  let pos = ref 0 in
  (* Access count of a subtree at the current [env]; used only while
     still skipping toward [lo]. *)
  let rec count = function
    | Cstmt { sa; _ } -> Array.length sa
    | Cinner c ->
        let lo_v = ceval env c.ilo and hi_v = ceval env c.ihi in
        if hi_v < lo_v then 0 else (hi_v - lo_v + 1) * Array.length c.ia
    | Cloop l ->
        let lo_v = ceval env l.lo and hi_v = ceval env l.hi in
        if hi_v < lo_v then 0
        else if l.collapse then begin
          env.(l.slot) <- lo_v;
          (hi_v - lo_v + 1) * Array.fold_left (fun a c -> a + count c) 0 l.body
        end
        else begin
          let total = ref 0 in
          for v = lo_v to hi_v do
            env.(l.slot) <- v;
            Array.iter (fun c -> total := !total + count c) l.body
          done;
          !total
        end
  in
  let rec exec = function
    | Cstmt { sa; sw } ->
        let k = Array.length sa in
        if !pos >= hi then raise_notrace Past_range;
        if !pos + k <= lo then pos := !pos + k
        else begin
          on_instance ();
          for i = 0 to k - 1 do
            let p = !pos in
            if p >= lo && p < hi then
              on_access p (ceval env (Array.unsafe_get sa i)) (Array.unsafe_get sw i);
            pos := p + 1
          done
        end
    | Cinner c ->
        let lo_v = ceval env c.ilo and hi_v = ceval env c.ihi in
        if hi_v >= lo_v then begin
          let k = Array.length c.ia in
          let trip = hi_v - lo_v + 1 in
          if !pos + (trip * k) <= lo then pos := !pos + (trip * k)
          else begin
            (* skip whole iterations strictly left of the range *)
            let skip = if lo > !pos then (lo - !pos) / k else 0 in
            pos := !pos + (skip * k);
            env.(c.islot) <- (if c.irev then hi_v - skip else lo_v + skip);
            let cur = cursors.(c.iid) in
            for i = 0 to k - 1 do
              cur.(i) <- ceval env (Array.unsafe_get c.ia i)
            done;
            let sw = c.iw in
            let deltas =
              if c.irev then Array.map (fun d -> -d) c.idelta else c.idelta
            in
            let it = ref skip in
            while !it < trip do
              if !pos >= lo && !pos + k <= hi then begin
                (* the hot path: whole iterations fully inside the range *)
                let full = min (trip - !it) ((hi - !pos) / k) in
                for _ = 1 to full do
                  on_instance ();
                  for i = 0 to k - 1 do
                    let p = !pos in
                    on_access p (Array.unsafe_get cur i) (Array.unsafe_get sw i);
                    pos := p + 1
                  done;
                  for i = 0 to k - 1 do
                    Array.unsafe_set cur i
                      (Array.unsafe_get cur i + Array.unsafe_get deltas i)
                  done
                done;
                it := !it + full
              end
              else begin
                if !pos >= hi then raise_notrace Past_range;
                (* a boundary iteration: the range cuts the site list *)
                if !pos + k > lo then begin
                  on_instance ();
                  for i = 0 to k - 1 do
                    let p = !pos in
                    if p >= lo && p < hi then
                      on_access p (Array.unsafe_get cur i) (Array.unsafe_get sw i);
                    pos := p + 1
                  done
                end
                else pos := !pos + k;
                for i = 0 to k - 1 do
                  Array.unsafe_set cur i
                    (Array.unsafe_get cur i + Array.unsafe_get deltas i)
                done;
                incr it
              end
            done
          end
        end
    | Cloop l ->
        let lo_v = ceval env l.lo and hi_v = ceval env l.hi in
        let body v =
          if !pos >= hi then raise_notrace Past_range;
          env.(l.slot) <- v;
          if !pos < lo then begin
            let c = Array.fold_left (fun a n -> a + count n) 0 l.body in
            (* [count] mutates slots below ours; restore *)
            env.(l.slot) <- v;
            if !pos + c <= lo then pos := !pos + c else Array.iter exec l.body
          end
          else Array.iter exec l.body
        in
        if l.rev then
          for v = hi_v downto lo_v do
            body v
          done
        else
          for v = lo_v to hi_v do
            body v
          done
  in
  try Array.iter exec t.body with Past_range -> ()
