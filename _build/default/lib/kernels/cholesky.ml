open Shorthand

let spec =
  let n = v "N" in
  Program.make ~name:"cholesky" ~params:[ "N" ]
    ~assumptions:[ Constr.ge_of (v "N") (c 1) ]
    [
      loop_lt "k" (c 0) n
        [
          (* Left-looking: fold the already-computed columns j < k into
             column k, then scale. *)
          loop_lt "j" (c 0) (v "k")
            [
              loop_lt "i" (v "k") n
                [
                  stmt "Sup"
                    ~writes:[ a2 "A" (v "i") (v "k") ]
                    ~reads:
                      [
                        a2 "A" (v "i") (v "k");
                        a2 "A" (v "i") (v "j");
                        a2 "A" (v "k") (v "j");
                      ];
                ];
            ];
          stmt "Ssq"
            ~writes:[ a2 "A" (v "k") (v "k") ]
            ~reads:[ a2 "A" (v "k") (v "k") ];
          loop_lt "i" (v "k" +! c 1) n
            [
              stmt "Sdv"
                ~writes:[ a2 "A" (v "i") (v "k") ]
                ~reads:[ a2 "A" (v "i") (v "k"); a2 "A" (v "k") (v "k") ];
            ];
        ];
    ]

let factor a =
  let n, n' = Matrix.dims a in
  if n <> n' then invalid_arg "Cholesky.factor: need a square matrix";
  let l = Matrix.copy a in
  for k = 0 to n - 1 do
    for j = 0 to k - 1 do
      for i = k to n - 1 do
        Matrix.set l i k (Matrix.get l i k -. (Matrix.get l i j *. Matrix.get l k j))
      done
    done;
    let piv = Matrix.get l k k in
    if piv <= 0. then invalid_arg "Cholesky.factor: matrix is not SPD";
    Matrix.set l k k (sqrt piv);
    for i = k + 1 to n - 1 do
      Matrix.set l i k (Matrix.get l i k /. Matrix.get l k k)
    done
  done;
  (* Zero the strictly-upper part left over from A. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Matrix.set l i j 0.
    done
  done;
  l

let random_spd ?(seed = 7) n =
  let a = Matrix.random ~seed n n in
  let ata = Matrix.mul (Matrix.transpose a) a in
  Matrix.init n n (fun i j ->
      Matrix.get ata i j +. if i = j then float_of_int n else 0.)
