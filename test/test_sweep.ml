(* The reuse-distance sweep engine: exact agreement with the per-size LRU
   simulator on randomized traces (every size, both flush settings, all
   four stats fields), opt_plan/opt equivalence, peak-heap bound of the
   compacted OPT eviction heap, and the size-list parser. *)

module T = Iolb_pebble.Trace
module C = Iolb_pebble.Cache
module S = Iolb_pebble.Sweep

let cell a i = (a, [| i |])
let r a i = T.Read (cell a i)
let w a i = T.Write (cell a i)
let tr = T.of_events

let stats_eq (a : C.stats) (b : C.stats) =
  a.loads = b.loads && a.stores = b.stores && a.read_hits = b.read_hits
  && a.accesses = b.accesses

(* Mixed reads/writes over up to 13 cells, length 1..200. *)
let random_trace_gen =
  let open QCheck2.Gen in
  list_size (int_range 1 200)
    (map2
       (fun k is_w -> if is_w then w "A" k else r "A" k)
       (int_range 0 12) bool)

let prop name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:200 random_trace_gen f)

let sweep_matches_lru ~flush events =
  let trace = tr events in
  let sw = S.run ~flush trace in
  let ok = ref true in
  for size = 1 to T.footprint trace + 2 do
    let a = S.stats sw ~size and b = C.lru ~size ~flush trace in
    if not (stats_eq a b) then ok := false
  done;
  !ok

let test_sweep_hand () =
  (* W a; R b; R a - exercises a dirty epoch closed by a reload. *)
  let trace = tr [ w "A" 0; r "B" 0; r "A" 0 ] in
  let sw = S.run ~flush:false trace in
  let s1 = S.stats sw ~size:1 in
  Alcotest.(check int) "size 1 loads" 2 s1.loads;
  Alcotest.(check int) "size 1 stores" 1 s1.stores;
  let s2 = S.stats sw ~size:2 in
  Alcotest.(check int) "size 2 loads" 1 s2.loads;
  Alcotest.(check int) "size 2 hits" 1 s2.read_hits;
  Alcotest.(check int) "size 2 stores" 0 s2.stores;
  let swf = S.run ~flush:true trace in
  Alcotest.(check int) "size 2 stores with flush" 1 (S.stats swf ~size:2).C.stores

let test_sweep_empty () =
  let sw = S.run (tr []) in
  let s = S.stats sw ~size:5 in
  Alcotest.(check int) "loads" 0 s.loads;
  Alcotest.(check int) "stores" 0 s.stores;
  Alcotest.(check int) "accesses" 0 s.accesses;
  Alcotest.(check int) "footprint" 0 (S.footprint sw)

let test_sweep_histogram () =
  (* R a; R b; R a: one read at distance 1; cold reads uncounted. *)
  let sw = S.run (tr [ r "A" 0; r "B" 0; r "A" 0 ]) in
  let h = S.distance_histogram sw in
  Alcotest.(check (array int)) "histogram" [| 0; 1 |] h

let test_opt_heap_peak () =
  (* A long scan over many distinct cells at a small size: unbounded lazy
     invalidation would grow the heap to O(trace length); compaction pins
     it near 3x the occupancy. *)
  let size = 8 in
  let events = List.init 20_000 (fun i -> r "A" (i mod 2_000)) in
  let peak = C.opt_heap_peak ~size (tr events) in
  Alcotest.(check bool)
    (Printf.sprintf "peak %d bounded" peak)
    true
    (peak <= max 65 ((3 * size) + 1))

let test_parse_sizes () =
  let ok spec expect =
    match S.parse_sizes spec with
    | Ok l -> Alcotest.(check (list int)) spec expect l
    | Error m -> Alcotest.failf "%s: unexpected error %s" spec m
  in
  let err spec =
    match S.parse_sizes spec with
    | Ok _ -> Alcotest.failf "%s: expected an error" spec
    | Error _ -> ()
  in
  ok "8" [ 8 ];
  ok "12,16,32" [ 12; 16; 32 ];
  ok " 4 , 5 " [ 4; 5 ];
  ok "2:10:3" [ 2; 5; 8 ];
  ok "4:4:1" [ 4 ];
  err "";
  err "a,b";
  err "0,4";
  err "-3";
  err "4:2:1";
  err "1:10:0";
  err "1:10";
  err "1:2:3:4"

let suite =
  [
    Alcotest.test_case "hand-computed sweep" `Quick test_sweep_hand;
    Alcotest.test_case "empty trace" `Quick test_sweep_empty;
    Alcotest.test_case "distance histogram" `Quick test_sweep_histogram;
    Alcotest.test_case "opt heap peak is O(size)" `Quick test_opt_heap_peak;
    Alcotest.test_case "parse_sizes" `Quick test_parse_sizes;
    prop "sweep = per-size LRU (flush)" (sweep_matches_lru ~flush:true);
    prop "sweep = per-size LRU (no flush)" (sweep_matches_lru ~flush:false);
    prop "opt_plan runs = fresh opt runs" (fun events ->
        let trace = tr events in
        let plan = C.opt_plan trace in
        List.for_all
          (fun size ->
            stats_eq (C.opt_run ~size plan) (C.opt ~size trace)
            && stats_eq
                 (C.opt_run ~size ~flush:false plan)
                 (C.opt ~size ~flush:false trace))
          [ 1; 2; 4; 8; 1_000 ]);
  ]
