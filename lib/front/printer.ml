module Affine = Iolb_poly.Affine
module Constr = Iolb_poly.Constr
module Access = Iolb_ir.Access
module Program = Iolb_ir.Program

(* Canonical affine rendering: terms in increasing variable order (the
   order [Affine.terms] fixes), constant last, every token lexable by
   {!Lexer}.  Parsing the result rebuilds the same [Affine.t]. *)
let pp_affine fmt e =
  let terms = Affine.terms e and const = Affine.constant e in
  let pp_coeff ~leading c x =
    let mag = abs c in
    if leading then
      Format.fprintf fmt "%s%s%s"
        (if c < 0 then "-" else "")
        (if mag = 1 then "" else Printf.sprintf "%d*" mag)
        x
    else
      Format.fprintf fmt " %s %s%s"
        (if c < 0 then "-" else "+")
        (if mag = 1 then "" else Printf.sprintf "%d*" mag)
        x
  in
  match terms with
  | [] -> Format.pp_print_int fmt const
  | (c0, x0) :: rest ->
      pp_coeff ~leading:true c0 x0;
      List.iter (fun (c, x) -> pp_coeff ~leading:false c x) rest;
      if const <> 0 then
        Format.fprintf fmt " %s %d" (if const < 0 then "-" else "+") (abs const)

let pp_access fmt (a : Access.t) =
  Format.pp_print_string fmt a.array;
  List.iter (fun e -> Format.fprintf fmt "[%a]" pp_affine e) a.index

let pp_accesses fmt accs =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_access fmt accs

(* Assumptions print in solved form ([e >= 0] / [e = 0]): re-parsing
   builds [ge_of e 0] = [ge e], i.e. exactly the stored constraint. *)
let pp_constr fmt (c : Constr.t) =
  match c.kind with
  | Constr.Ge -> Format.fprintf fmt "%a >= 0" pp_affine c.expr
  | Constr.Eq -> Format.fprintf fmt "%a = 0" pp_affine c.expr

let rec pp_node indent fmt = function
  | Program.Stmt s ->
      if s.writes = [] then
        Format.fprintf fmt "%s%s: f(%a);\n" indent s.name pp_accesses s.reads
      else
        Format.fprintf fmt "%s%s: %a = f(%a);\n" indent s.name pp_accesses
          s.writes pp_accesses s.reads
  | Program.Loop { var; lo; hi; rev; body } ->
      if rev then
        Format.fprintf fmt "%sfor %s = %a downto %a {\n" indent var pp_affine
          hi pp_affine lo
      else
        Format.fprintf fmt "%sfor %s = %a .. %a {\n" indent var pp_affine lo
          pp_affine hi;
      List.iter (pp_node (indent ^ "  ") fmt) body;
      Format.fprintf fmt "%s}\n" indent

let print ?(verify = []) (p : Program.t) =
  let buf = Buffer.create 512 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "kernel %s(%s)\n" p.name (String.concat ", " p.params);
  (match p.assumptions with
  | [] -> ()
  | cs ->
      Format.fprintf fmt "assume %a\n"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_constr)
        cs);
  (match verify with
  | [] -> ()
  | vs ->
      Format.fprintf fmt "verify %s\n"
        (String.concat ", "
           (List.map (fun (x, v) -> Printf.sprintf "%s = %d" x v) vs)));
  Format.fprintf fmt "{\n";
  List.iter (pp_node "  " fmt) p.body;
  Format.fprintf fmt "}\n";
  Format.pp_print_flush fmt ();
  Buffer.contents buf
