test/test_kernels.ml: Alcotest Array Float Gebd2 Gehd2 Gemm Householder Iolb_kernels List Matrix Mgs Printf
