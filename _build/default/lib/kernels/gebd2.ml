open Shorthand

let spec =
  let m = v "M" and n = v "N" in
  let k1 = v "k" +! c 1 in
  let k2 = v "k" +! c 2 in
  let left_reflector =
    [
      stmt "Bn0" ~writes:[ sc "norma2" ] ~reads:[];
      loop_lt "i" k1 m
        [
          stmt "Bn2" ~writes:[ sc "norma2" ]
            ~reads:[ sc "norma2"; a2 "A" (v "i") (v "k") ];
        ];
      stmt "Bnrm" ~writes:[ sc "norma" ]
        ~reads:[ a2 "A" (v "k") (v "k"); sc "norma2" ];
      stmt "Bk1"
        ~writes:[ a2 "A" (v "k") (v "k") ]
        ~reads:[ a2 "A" (v "k") (v "k"); sc "norma" ];
      stmt "Btq" ~writes:[ a1 "tauq" (v "k") ]
        ~reads:[ sc "norma2"; a2 "A" (v "k") (v "k") ];
      loop_lt "i" k1 m
        [
          stmt "Bdiv"
            ~writes:[ a2 "A" (v "i") (v "k") ]
            ~reads:[ a2 "A" (v "i") (v "k"); a2 "A" (v "k") (v "k") ];
        ];
      stmt "Bk2"
        ~writes:[ a2 "A" (v "k") (v "k") ]
        ~reads:[ a2 "A" (v "k") (v "k"); sc "norma" ];
      loop_lt "j" k1 n
        [
          stmt "Bt0" ~writes:[ a1 "tmp" (v "j") ] ~reads:[ a2 "A" (v "k") (v "j") ];
          loop_lt "i" k1 m
            [
              stmt "BRl"
                ~writes:[ a1 "tmp" (v "j") ]
                ~reads:
                  [ a1 "tmp" (v "j"); a2 "A" (v "i") (v "k"); a2 "A" (v "i") (v "j") ];
            ];
          stmt "Btm" ~writes:[ a1 "tmp" (v "j") ]
            ~reads:[ a1 "tauq" (v "k"); a1 "tmp" (v "j") ];
          stmt "Baj"
            ~writes:[ a2 "A" (v "k") (v "j") ]
            ~reads:[ a2 "A" (v "k") (v "j"); a1 "tmp" (v "j") ];
          loop_lt "i" k1 m
            [
              stmt "BUl"
                ~writes:[ a2 "A" (v "i") (v "j") ]
                ~reads:
                  [ a2 "A" (v "i") (v "j"); a2 "A" (v "i") (v "k"); a1 "tmp" (v "j") ];
            ];
        ];
    ]
  in
  let right_reflector =
    [
      stmt "Cn0" ~writes:[ sc "normb2" ] ~reads:[];
      loop_lt "j" k2 n
        [
          stmt "Cn2" ~writes:[ sc "normb2" ]
            ~reads:[ sc "normb2"; a2 "A" (v "k") (v "j") ];
        ];
      stmt "Cnrm" ~writes:[ sc "normb" ]
        ~reads:[ a2 "A" (v "k") k1; sc "normb2" ];
      stmt "Ck1"
        ~writes:[ a2 "A" (v "k") k1 ]
        ~reads:[ a2 "A" (v "k") k1; sc "normb" ];
      stmt "Ctp" ~writes:[ a1 "taup" (v "k") ]
        ~reads:[ sc "normb2"; a2 "A" (v "k") k1 ];
      loop_lt "j" k2 n
        [
          stmt "Cdiv"
            ~writes:[ a2 "A" (v "k") (v "j") ]
            ~reads:[ a2 "A" (v "k") (v "j"); a2 "A" (v "k") k1 ];
        ];
      stmt "Ck2"
        ~writes:[ a2 "A" (v "k") k1 ]
        ~reads:[ a2 "A" (v "k") k1; sc "normb" ];
      loop_lt "i" k1 m
        [
          stmt "Ct0" ~writes:[ a1 "tmp2" (v "i") ] ~reads:[ a2 "A" (v "i") k1 ];
          loop_lt "j" k2 n
            [
              stmt "CRr"
                ~writes:[ a1 "tmp2" (v "i") ]
                ~reads:
                  [ a1 "tmp2" (v "i"); a2 "A" (v "k") (v "j"); a2 "A" (v "i") (v "j") ];
            ];
          stmt "Ctm" ~writes:[ a1 "tmp2" (v "i") ]
            ~reads:[ a1 "taup" (v "k"); a1 "tmp2" (v "i") ];
          stmt "Cai"
            ~writes:[ a2 "A" (v "i") k1 ]
            ~reads:[ a2 "A" (v "i") k1; a1 "tmp2" (v "i") ];
          loop_lt "j" k2 n
            [
              stmt "CUr"
                ~writes:[ a2 "A" (v "i") (v "j") ]
                ~reads:
                  [ a2 "A" (v "i") (v "j"); a2 "A" (v "k") (v "j"); a1 "tmp2" (v "i") ];
            ];
        ];
    ]
  in
  (* Last column: left reflector only (LAPACK processes k = N-1 without a
     following row reflector).  Written as a straight-line epilogue with
     k = N-1 folded into the access functions. *)
  let nm1 = n -! c 1 in
  let epilogue =
    [
      stmt "En0" ~writes:[ sc "norma2" ] ~reads:[];
      loop_lt "i" n m
        [
          stmt "En2" ~writes:[ sc "norma2" ]
            ~reads:[ sc "norma2"; a2 "A" (v "i") nm1 ];
        ];
      stmt "Enrm" ~writes:[ sc "norma" ] ~reads:[ a2 "A" nm1 nm1; sc "norma2" ];
      stmt "Ek1" ~writes:[ a2 "A" nm1 nm1 ] ~reads:[ a2 "A" nm1 nm1; sc "norma" ];
      stmt "Etq" ~writes:[ a1 "tauq" nm1 ] ~reads:[ sc "norma2"; a2 "A" nm1 nm1 ];
      loop_lt "i" n m
        [
          stmt "Ediv"
            ~writes:[ a2 "A" (v "i") nm1 ]
            ~reads:[ a2 "A" (v "i") nm1; a2 "A" nm1 nm1 ];
        ];
      stmt "Ek2" ~writes:[ a2 "A" nm1 nm1 ] ~reads:[ a2 "A" nm1 nm1; sc "norma" ];
    ]
  in
  Program.make ~name:"gebd2" ~params:[ "M"; "N" ]
    ~assumptions:[ Constr.ge_of (v "M") (v "N"); Constr.ge_of (v "N") (c 2) ]
    ([ loop_lt "k" (c 0) (n -! c 1) (left_reflector @ right_reflector) ]
    @ epilogue)

type result = { a : Matrix.t; tauq : float array; taup : float array }

(* Row-reflector generation on row k, columns k+1..n-1. *)
let generate_row_reflector a k =
  let _, n = Matrix.dims a in
  let normb2 = ref 0. in
  for j = k + 2 to n - 1 do
    normb2 := !normb2 +. (Matrix.get a k j *. Matrix.get a k j)
  done;
  let piv = Matrix.get a k (k + 1) in
  let normb = sqrt ((piv *. piv) +. !normb2) in
  if normb = 0. then 0.
  else begin
    let w = if piv > 0. then piv +. normb else piv -. normb in
    Matrix.set a k (k + 1) w;
    let taup = 2. /. (1. +. (!normb2 /. (w *. w))) in
    for j = k + 2 to n - 1 do
      Matrix.set a k j (Matrix.get a k j /. w)
    done;
    Matrix.set a k (k + 1) (if w > 0. then -.normb else normb);
    taup
  end

let reduce a0 =
  let m, n = Matrix.dims a0 in
  if m < n || n < 1 then invalid_arg "Gebd2.reduce: need m >= n >= 1";
  let a = Matrix.copy a0 in
  let tauq = Array.make n 0. and taup = Array.make n 0. in
  for k = 0 to n - 1 do
    (* Left reflector on column k, rows k..m-1 (Figure 3 generator). *)
    tauq.(k) <- Householder.(generate_reflector) a k;
    for j = k + 1 to n - 1 do
      Householder.(apply_reflector) a ~k ~tau:tauq.(k) j
    done;
    if k <= n - 2 then begin
      taup.(k) <- generate_row_reflector a k;
      (* Apply the row reflector to rows k+1..m-1. *)
      for i = k + 1 to m - 1 do
        let t = ref (Matrix.get a i (k + 1)) in
        for j = k + 2 to n - 1 do
          t := !t +. (Matrix.get a k j *. Matrix.get a i j)
        done;
        let t = taup.(k) *. !t in
        Matrix.set a i (k + 1) (Matrix.get a i (k + 1) -. t);
        for j = k + 2 to n - 1 do
          Matrix.set a i j (Matrix.get a i j -. (Matrix.get a k j *. t))
        done
      done
    end
  done;
  { a; tauq; taup }

let bidiagonal_of r =
  let _, n = Matrix.dims r.a in
  Matrix.init n n (fun i j ->
      if j = i || j = i + 1 then Matrix.get r.a i j else 0.)

let q_of r =
  let m, n = Matrix.dims r.a in
  let q = Matrix.identity m in
  (* Q = H_0 H_1 ... H_{n-1}; apply right-to-left onto the identity. *)
  for k = n - 1 downto 0 do
    (* H_k = I - tauq_k v v^T with v = e_k + (column k of a below k). *)
    for col = 0 to m - 1 do
      let t = ref (Matrix.get q k col) in
      for i = k + 1 to m - 1 do
        t := !t +. (Matrix.get r.a i k *. Matrix.get q i col)
      done;
      let t = r.tauq.(k) *. !t in
      Matrix.set q k col (Matrix.get q k col -. t);
      for i = k + 1 to m - 1 do
        Matrix.set q i col (Matrix.get q i col -. (Matrix.get r.a i k *. t))
      done
    done
  done;
  q

let p_of r =
  let _, n = Matrix.dims r.a in
  let p = Matrix.identity n in
  (* P = G_0 G_1 ... G_{n-2}; G_k = I - taup_k w w^T with w = e_{k+1} + row
     k of a right of k+1.  Apply right-to-left onto the identity. *)
  for k = n - 2 downto 0 do
    for col = 0 to n - 1 do
      let t = ref (Matrix.get p (k + 1) col) in
      for j = k + 2 to n - 1 do
        t := !t +. (Matrix.get r.a k j *. Matrix.get p j col)
      done;
      let t = r.taup.(k) *. !t in
      Matrix.set p (k + 1) col (Matrix.get p (k + 1) col -. t);
      for j = k + 2 to n - 1 do
        Matrix.set p j col (Matrix.get p j col -. (Matrix.get r.a k j *. t))
      done
    done
  done;
  p
