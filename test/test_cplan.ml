(* The compiled address-space producer: full production must equal
   [Program.iter_accesses] access for access (cell, write flag, position,
   instance granularity) with injective addresses, and - the seek
   contract - producing [0, k) and then the rest must reproduce the full
   stream for every split point, on the paper kernels and on random
   generated programs. *)

module P = Iolb_ir.Program
module C = Iolb_ir.Cplan
module Report = Iolb.Report
module K = Iolb_kernels
module Spec = Iolb_check.Spec
module Gen = Iolb_check.Gen

(* Reference stream: (name, index, is_write) in emission order. *)
let reference ~params prog =
  let acc = ref [] in
  P.iter_accesses ~params prog
    ~on_instance:(fun () -> ())
    ~on_access:(fun name idx w -> acc := (name, Array.copy idx, w) :: !acc);
  Array.of_list (List.rev !acc)

let reference_instances ~params prog =
  let n = ref 0 in
  P.iter_accesses ~params prog
    ~on_instance:(fun () -> incr n)
    ~on_access:(fun _ _ _ -> ());
  !n

(* Full-range production through the plan, decoded. *)
let check_full ~what ~params prog =
  let full = reference ~params prog in
  let n = Array.length full in
  let plan = C.make ~params prog in
  Alcotest.(check int) (what ^ ": n_accesses") n (C.n_accesses plan);
  Alcotest.(check bool)
    (what ^ ": addr_space sane")
    true
    (C.addr_space plan >= 0);
  let instances = ref 0 in
  let pos = ref 0 in
  let cell_of = Hashtbl.create 64 in
  C.iter plan ~lo:0 ~hi:max_int
    ~on_instance:(fun () -> incr instances)
    ~on_access:(fun p addr w ->
      Alcotest.(check int) (what ^ ": position") !pos p;
      if p >= n then Alcotest.failf "%s: access beyond reference length" what;
      let en, ei, ew = full.(p) in
      if ew <> w then Alcotest.failf "%s: write flag differs at %d" what p;
      (* the address must be injective on cells and decode to the cell *)
      let dn, di = C.decode plan addr in
      if not (dn = en && di = ei) then
        Alcotest.failf "%s: decode %d gives %s, reference %s" what addr dn en;
      (match Hashtbl.find_opt cell_of addr with
      | Some (n0, i0) ->
          if not (n0 = en && i0 = ei) then
            Alcotest.failf "%s: address %d aliases two cells" what addr
      | None -> Hashtbl.add cell_of addr (en, Array.copy ei));
      incr pos);
  Alcotest.(check int) (what ^ ": all accesses") n !pos;
  Alcotest.(check int)
    (what ^ ": instance count")
    (reference_instances ~params prog)
    !instances;
  (* distinct cells <-> distinct addresses *)
  let cells = Hashtbl.create 64 in
  Array.iter (fun (n, i, _) -> Hashtbl.replace cells (n, i) ()) full;
  Alcotest.(check int)
    (what ^ ": footprint = distinct addresses")
    (Hashtbl.length cells) (Hashtbl.length cell_of)

(* The seek contract: emitting [0, k) and then [k, n) - or any finer
   slicing - reproduces the full production. *)
let check_slices ~what ~params prog cuts_list =
  let full = reference ~params prog in
  let n = Array.length full in
  let plan = C.make ~params prog in
  List.iter
    (fun cuts ->
      let bounds = (0 :: cuts) @ [ n ] in
      let rec pairs = function
        | a :: (b :: _ as rest) -> (a, b) :: pairs rest
        | _ -> []
      in
      let pos = ref 0 in
      List.iter
        (fun (lo, hi) ->
          C.iter plan ~lo ~hi
            ~on_instance:(fun () -> ())
            ~on_access:(fun p addr w ->
              Alcotest.(check int) (what ^ ": slice position") !pos p;
              let en, ei, ew = full.(p) in
              let dn, di = C.decode plan addr in
              if not (dn = en && di = ei && w = ew) then
                Alcotest.failf "%s: access %d differs in slice [%d, %d)" what p
                  lo hi;
              incr pos))
        (pairs bounds);
      Alcotest.(check int) (what ^ ": slices cover") n !pos)
    cuts_list

let paper_kernels () =
  List.iter
    (fun (e : Report.entry) ->
      check_full ~what:e.Report.display ~params:e.Report.verify_params
        e.Report.program)
    Report.registry;
  List.iter
    (fun (name, prog, params) -> check_full ~what:name ~params prog)
    Report.baselines

let tiled_kernels () =
  check_full ~what:"mgs tiled" ~params:[] (K.Mgs.tiled_spec ~m:16 ~n:8 ~b:2);
  check_full ~what:"a2v tiled" ~params:[]
    (K.Householder.tiled_spec ~m:16 ~n:8 ~b:2)

let kernel_slices () =
  let params = [ ("M", 24); ("N", 12) ] in
  let n = P.n_accesses ~params K.Mgs.spec in
  check_slices ~what:"mgs" ~params K.Mgs.spec
    [ []; [ n / 2 ]; [ 1; 2; 3 ]; [ n / 3; n / 2; n - 1 ]; [ 7; 7 ] ];
  (* V2Q exercises reverse loops *)
  let e = Report.find "qr_hh_v2q" in
  let params = e.Report.verify_params in
  let n = P.n_accesses ~params e.Report.program in
  check_slices ~what:"v2q" ~params e.Report.program
    [ []; [ n / 2 ]; [ n / 4; (3 * n) / 4 ] ]

(* Random programs x random split points: seek k + produce-rest = full. *)
let prop_random_slices =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"cplan: seek k + rest = full production (random)"
       ~count:120
       QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 9999))
       (fun (seed, cut_seed) ->
         let spec = Gen.spec ~seed in
         let prog, params = Spec.to_program spec in
         let n = P.n_accesses ~params prog in
         let k = if n = 0 then 0 else cut_seed mod (n + 1) in
         check_full ~what:(Spec.to_string spec) ~params prog;
         check_slices ~what:(Spec.to_string spec) ~params prog
           [ [ k ]; [ k / 2; k ] ];
         true))

let suite =
  [
    Alcotest.test_case "paper + baseline kernels" `Quick paper_kernels;
    Alcotest.test_case "tiled kernels (concrete params)" `Quick tiled_kernels;
    Alcotest.test_case "kernel slicings (incl. reverse loops)" `Quick
      kernel_slices;
    prop_random_slices;
  ]
