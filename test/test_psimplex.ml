(* Parametric-objective simplex: hand-checked region decompositions, the
   degenerate corners (infeasible, unbounded, point intervals), and a
   property cross-checking emitted regions against the plain simplex with
   the objective instantiated at sampled parameter values. *)

module S = Iolb_lp.Simplex
module P = Iolb_lp.Psimplex
module Rat = Iolb_util.Rat
module Budget = Iolb_util.Budget

let rat = Alcotest.testable Rat.pp Rat.equal

let regions_exn name = function
  | P.Regions rs -> rs
  | P.Infeasible -> Alcotest.failf "%s: unexpectedly infeasible" name
  | P.Unbounded_at t ->
      Alcotest.failf "%s: unexpectedly unbounded at %s" name (Rat.to_string t)

let test_two_regions () =
  (* min (1 - 2t) x over x + y <= 1: t < 1/2 -> 0 at origin; t > 1/2 ->
     1 - 2t at x = 1. *)
  let outcome =
    P.minimize
      ~cost:[| P.pc 1 ~slope:(-2); P.pc 0 |]
      ~lo:Rat.zero ~hi:Rat.one
      [ S.constr [ 1; 1 ] S.Le 1 ]
  in
  let rs = regions_exn "two regions" outcome in
  Alcotest.(check int) "two regions" 2 (List.length rs);
  let r0 = List.nth rs 0 and r1 = List.nth rs 1 in
  Alcotest.check rat "r0.lo" Rat.zero r0.P.lo;
  Alcotest.(check (option rat)) "r0.hi" (Some Rat.half) r0.P.hi;
  Alcotest.check rat "r0 value" Rat.zero (P.value_at r0 Rat.zero);
  Alcotest.check rat "r1.lo" Rat.half r1.P.lo;
  Alcotest.(check (option rat)) "r1.hi" (Some Rat.one) r1.P.hi;
  Alcotest.check rat "r1 value at 1" (Rat.of_int (-1)) (P.value_at r1 Rat.one);
  (* Both regions agree at the shared breakpoint. *)
  Alcotest.check rat "continuous at 1/2" (P.value_at r0 Rat.half)
    (P.value_at r1 Rat.half);
  Alcotest.check rat "vertex moved" Rat.one r1.P.solution.(0)

let test_single_region_constant () =
  (* Slope-free cost: one region covering the whole interval. *)
  let outcome =
    P.minimize
      ~cost:[| P.pc 2; P.pc 1 |]
      ~lo:Rat.zero ~hi:(Rat.of_int 10)
      [ S.constr [ 1; 1 ] S.Ge 3 ]
  in
  match regions_exn "constant" outcome with
  | [ r ] ->
      Alcotest.check rat "value 3" (Rat.of_int 3) (P.value_at r Rat.zero);
      Alcotest.check rat "slope 0" Rat.zero r.P.slope
  | rs -> Alcotest.failf "expected 1 region, got %d" (List.length rs)

let test_infeasible () =
  let outcome =
    P.minimize ~cost:[| P.pc 1 |] ~lo:Rat.zero
      [ S.constr [ 1 ] S.Le 1; S.constr [ 1 ] S.Ge 2 ]
  in
  Alcotest.(check bool) "infeasible" true (outcome = P.Infeasible)

let test_unbounded () =
  (* min (t - 1) x, x unconstrained above: unbounded for t < 1.  Swept
     from 0 the very first optimisation detects the ray. *)
  let outcome =
    P.minimize
      ~cost:[| P.pcost (Rat.of_int (-1)) ~slope:Rat.one |]
      ~lo:Rat.zero ~hi:(Rat.of_int 2)
      [ S.constr [ -1 ] S.Le 1 ]
  in
  (match outcome with
  | P.Unbounded_at t -> Alcotest.check rat "at 0" Rat.zero t
  | _ -> Alcotest.fail "expected unbounded");
  (* Swept from 1 the reduced cost is 0 with positive slope: bounded,
     optimum 0 everywhere on [1, 2]. *)
  let outcome =
    P.minimize
      ~cost:[| P.pcost (Rat.of_int (-1)) ~slope:Rat.one |]
      ~lo:Rat.one ~hi:(Rat.of_int 2)
      [ S.constr [ -1 ] S.Le 1 ]
  in
  match regions_exn "bounded tail" outcome with
  | [ r ] -> Alcotest.check rat "zero" Rat.zero (P.value_at r Rat.one)
  | rs -> Alcotest.failf "expected 1 region, got %d" (List.length rs)

let test_point_interval () =
  let outcome =
    P.minimize
      ~cost:[| P.pc 1 ~slope:(-2); P.pc 0 |]
      ~lo:Rat.half ~hi:Rat.half
      [ S.constr [ 1; 1 ] S.Le 1 ]
  in
  match regions_exn "point" outcome with
  | [ r ] ->
      Alcotest.check rat "value at the tie" Rat.zero (P.value_at r Rat.half)
  | rs -> Alcotest.failf "expected 1 region, got %d" (List.length rs)

let test_empty_interval_rejected () =
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Psimplex.minimize: empty parameter interval") (fun () ->
      ignore
        (P.minimize ~cost:[| P.pc 1 |] ~lo:Rat.one ~hi:Rat.zero
           [ S.constr [ 1 ] S.Le 1 ]))

let test_maximize () =
  (* max (1 - 2t) x over x <= 3: t < 1/2 -> 3 - 6t at x = 3; after the
     coefficient flips sign the optimum sits at the origin. *)
  let outcome =
    P.maximize
      ~cost:[| P.pc 1 ~slope:(-2) |]
      ~lo:Rat.zero ~hi:Rat.one
      [ S.constr [ 1 ] S.Le 3 ]
  in
  let rs = regions_exn "maximize" outcome in
  Alcotest.(check int) "two regions" 2 (List.length rs);
  let r0 = List.hd rs in
  Alcotest.check rat "value at 0" (Rat.of_int 3) (P.value_at r0 Rat.zero);
  Alcotest.check rat "slope -6" (Rat.of_int (-6)) r0.P.slope

let test_budget_checkpoints () =
  (* Crossing the breakpoint requires a pivot, and every sweep pivot
     checkpoints the Derivation stage - so a fault on the first
     checkpoint must surface as Exhausted. *)
  let budget = Budget.make ~fault:(Budget.Derivation, 1) () in
  Alcotest.check_raises "fault fires" (Budget.Exhausted Budget.Derivation)
    (fun () ->
      ignore
        (P.minimize ~budget
           ~cost:[| P.pc 1 ~slope:(-2); P.pc 0 |]
           ~lo:Rat.zero ~hi:Rat.one
           [ S.constr [ 1; 1 ] S.Le 1 ]))

(* Property: on random small LPs the region decomposition is ordered,
   contiguous, covers [lo, hi], and at sampled parameter values (region
   endpoints and midpoints) the region value and vertex match the plain
   simplex with the cost instantiated at that value. *)
let gen_plp =
  let open QCheck2.Gen in
  let small = int_range (-4) 4 in
  let nvars = 2 in
  let gen_constr =
    let* a = small and* b = small and* rhs = int_range 0 6 in
    return (S.constr [ a; b ] S.Le rhs)
  in
  let* ncons = int_range 1 4 in
  let* cs = list_size (return ncons) gen_constr in
  let* cost =
    list_size (return nvars)
      (let* c = small and* s = small in
       return (P.pc c ~slope:s))
  in
  return (cs, Array.of_list cost)

let instantiate cost theta =
  Array.map
    (fun (c : P.pcost) -> Rat.add c.P.const (Rat.mul theta c.P.slope))
    cost

let prop_regions_match_plain (cs, cost) =
  let lo = Rat.of_int (-2) and hi = Rat.of_int 2 in
  (* x <= 2 bounds keep every instance bounded, so the sweep always
     returns regions for a feasible system. *)
  let cs = S.constr [ 1; 0 ] S.Le 2 :: S.constr [ 0; 1 ] S.Le 2 :: cs in
  match P.minimize ~cost ~lo ~hi cs with
  | P.Unbounded_at _ -> false (* impossible: polytope is bounded *)
  | P.Infeasible -> S.minimize ~cost:(instantiate cost lo) cs = S.Infeasible
  | P.Regions rs ->
      let covered = ref lo in
      List.for_all
        (fun (r : P.region) ->
          let hi_r = match r.P.hi with Some h -> h | None -> hi in
          let contiguous = Rat.equal r.P.lo !covered in
          covered := hi_r;
          let mid = Rat.mul Rat.half (Rat.add r.P.lo hi_r) in
          let samples = [ r.P.lo; mid; hi_r ] in
          contiguous
          && List.for_all
               (fun theta ->
                 match S.minimize ~cost:(instantiate cost theta) cs with
                 | S.Optimal { value; _ } ->
                     Rat.equal value (P.value_at r theta)
                 | _ -> false)
               samples)
        rs
      && Rat.equal !covered hi

let prop =
  QCheck2.Test.make ~count:300 ~name:"psimplex regions match plain simplex"
    ~print:(fun (cs, cost) ->
      Format.asprintf "%d constraints; cost [%s]" (List.length cs)
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun (c : P.pcost) ->
                   Format.asprintf "%a + %a t" Rat.pp c.P.const Rat.pp
                     c.P.slope)
                 cost))))
    gen_plp prop_regions_match_plain

let suite =
  [
    Alcotest.test_case "two regions" `Quick test_two_regions;
    Alcotest.test_case "constant cost" `Quick test_single_region_constant;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "point interval" `Quick test_point_interval;
    Alcotest.test_case "empty interval" `Quick test_empty_interval_rejected;
    Alcotest.test_case "maximize" `Quick test_maximize;
    Alcotest.test_case "budget checkpoints" `Quick test_budget_checkpoints;
    QCheck_alcotest.to_alcotest prop;
  ]
