lib/ir/program.mli: Access Format Iolb_poly Iolb_symbolic
