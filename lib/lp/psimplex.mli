(** Parametric-objective simplex over the exact-rational tableau.

    Solves the family of linear programs

    {v  min (c + theta * s) . x   over { x >= 0 | constraints },  v}

    for every value of a single scalar parameter [theta] in an interval,
    in one sweep: the output is a finite ordered {e region decomposition}
    of the interval, each region carrying the closed-form optimum (an
    affine function of [theta]), the optimal vertex, and the optimal
    basis.  This is the engine behind the paper's regime analysis — the
    piecewise bounds of Thm 5 and the loop-split choice of Thm 9 fall out
    of region boundaries instead of per-instance re-solves (in the style
    of VPL's PLP solver; see DESIGN.md for the worklist and the soundness
    argument).

    Within a region the optimal basis is constant: a basis is optimal
    exactly where all its reduced costs [d_j(theta) = obj_j + theta *
    slope_j] are non-negative, an intersection of half-lines, hence an
    interval.  The sweep walks those intervals left to right.  Entering
    steps use Bland's rule on the objective perturbed to [theta + epsilon]
    (lexicographic on [(d_j(theta), slope_j)]), so every pivot sequence
    terminates and every emitted breakpoint strictly increases.

    The right-hand side is parameter-free, so feasibility is decided once
    (phase 1 is shared by the whole sweep) and the per-region optimum is
    affine, not a general rational function.  All arithmetic is exact;
    operations may raise {!Iolb_util.Rat.Overflow}, which callers treat as
    "fall back to the non-parametric path". *)

(** A parametric cost coefficient [const + slope * theta]. *)
type pcost = { const : Iolb_util.Rat.t; slope : Iolb_util.Rat.t }

val pcost : ?slope:Iolb_util.Rat.t -> Iolb_util.Rat.t -> pcost

(** [pc ?slope const] with integer data, for readable call sites. *)
val pc : ?slope:int -> int -> pcost

type region = {
  lo : Iolb_util.Rat.t;  (** inclusive lower end *)
  hi : Iolb_util.Rat.t option;
      (** inclusive upper end; [None] = unbounded above.  Adjacent regions
          share their endpoint (both are optimal there, with equal value). *)
  const : Iolb_util.Rat.t;
  slope : Iolb_util.Rat.t;
      (** optimum on the region: [const + slope * theta] *)
  solution : Iolb_util.Rat.t array;  (** optimal vertex, constant on the region *)
  basis : int array;  (** optimal basis (column basic in each row) *)
  pivots : int;  (** pivots spent entering this region from the previous one *)
}

type outcome =
  | Regions of region list
      (** Ordered, contiguous, covering the whole requested interval. *)
  | Unbounded_at of Iolb_util.Rat.t
      (** The LP is unbounded below at (and beyond) this parameter value. *)
  | Infeasible  (** The constraints are infeasible (for every [theta]). *)

(** [minimize ?budget ~cost ~lo ?hi constraints] sweeps [theta] from [lo]
    to [hi] (default: unbounded above).  Each pivot accounts one
    [Derivation] checkpoint on [budget].
    @raise Invalid_argument on [lo > hi] or inconsistent dimensions.
    @raise Iolb_util.Rat.Overflow if the exact arithmetic leaves 63 bits.
    @raise Iolb_util.Budget.Exhausted via the budget. *)
val minimize :
  ?budget:Iolb_util.Budget.t ->
  cost:pcost array ->
  lo:Iolb_util.Rat.t ->
  ?hi:Iolb_util.Rat.t ->
  Simplex.constr list ->
  outcome

(** Same sweep for [max (c + theta * s) . x] (negates costs and values). *)
val maximize :
  ?budget:Iolb_util.Budget.t ->
  cost:pcost array ->
  lo:Iolb_util.Rat.t ->
  ?hi:Iolb_util.Rat.t ->
  Simplex.constr list ->
  outcome

(** The region's optimum evaluated at a parameter value. *)
val value_at : region -> Iolb_util.Rat.t -> Iolb_util.Rat.t

val pp_region : Format.formatter -> region -> unit
val pp_outcome : Format.formatter -> outcome -> unit
