(** Exact rational linear programming by the two-phase simplex method.

    Variables are indexed [0 .. nvars-1] and implicitly constrained to be
    non-negative.  Bland's anti-cycling rule guarantees termination.  All
    arithmetic is exact ({!Iolb_util.Rat}), which matters here: the
    Brascamp-Lieb exponents are small rationals (like 1/2 or 1/3) and the
    derived I/O bounds change qualitatively if they are off by any epsilon. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : Iolb_util.Rat.t array;  (** length [nvars] *)
  rel : relation;
  rhs : Iolb_util.Rat.t;
}

type objective = Minimize | Maximize

type outcome =
  | Optimal of { value : Iolb_util.Rat.t; solution : Iolb_util.Rat.t array }
  | Unbounded
  | Infeasible

(** [solve ~objective ~cost constraints] optimises [cost . x] over
    [{ x >= 0 | every constraint holds }].
    @raise Invalid_argument on inconsistent dimensions. *)
val solve :
  objective:objective -> cost:Iolb_util.Rat.t array -> constr list -> outcome

(** Convenience: [minimize ~cost constraints] = [solve ~objective:Minimize]. *)
val minimize : cost:Iolb_util.Rat.t array -> constr list -> outcome

val maximize : cost:Iolb_util.Rat.t array -> constr list -> outcome

(** [constr coeffs rel rhs] with integer data, for readable call sites. *)
val constr : int list -> relation -> int -> constr

val pp_outcome : Format.formatter -> outcome -> unit
