test/test_program.ml: Access Alcotest Array Iolb_ir Iolb_kernels Iolb_poly Iolb_symbolic Iolb_util List Printf
