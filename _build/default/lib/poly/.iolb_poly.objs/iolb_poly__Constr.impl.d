lib/poly/constr.ml: Affine Format Stdlib
