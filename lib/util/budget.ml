type stage =
  | Poly_projection
  | Cdag_build
  | Pebble_game
  | Cache_sim
  | Derivation

let stage_name = function
  | Poly_projection -> "polyhedral projection"
  | Cdag_build -> "CDAG construction"
  | Pebble_game -> "pebble game"
  | Cache_sim -> "cache simulation"
  | Derivation -> "bound derivation"

let pp_stage fmt s = Format.pp_print_string fmt (stage_name s)

let stage_index = function
  | Poly_projection -> 0
  | Cdag_build -> 1
  | Pebble_game -> 2
  | Cache_sim -> 3
  | Derivation -> 4

let n_stages = 5

(* Counters are atomic so one budget can be shared by the domains of a
   Pool fan-out: caps apply to the combined work of all workers, and the
   fault hook still fires exactly once (fetch_and_add hands each
   checkpoint a unique count). *)
type t = {
  max_steps : int option;
  deadline : float option; (* absolute, Unix.gettimeofday scale *)
  max_nodes : int option;
  fault : (stage * int) option;
  steps : int Atomic.t;
  stage_counts : int Atomic.t array;
}

exception Exhausted of stage

let unlimited =
  {
    max_steps = None;
    deadline = None;
    max_nodes = None;
    fault = None;
    steps = Atomic.make 0;
    stage_counts = Array.init n_stages (fun _ -> Atomic.make 0);
  }

let make ?max_steps ?timeout_ms ?max_nodes ?fault () =
  (match max_steps with
  | Some m when m < 0 -> invalid_arg "Budget.make: max_steps < 0"
  | _ -> ());
  (match timeout_ms with
  | Some m when m < 0 -> invalid_arg "Budget.make: timeout_ms < 0"
  | _ -> ());
  (match max_nodes with
  | Some m when m < 0 -> invalid_arg "Budget.make: max_nodes < 0"
  | _ -> ());
  (match fault with
  | Some (_, k) when k < 1 -> invalid_arg "Budget.make: fault index < 1"
  | _ -> ());
  {
    max_steps;
    deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
        timeout_ms;
    max_nodes;
    fault;
    steps = Atomic.make 0;
    stage_counts = Array.init n_stages (fun _ -> Atomic.make 0);
  }

let is_unlimited t =
  t.max_steps = None && t.deadline = None && t.max_nodes = None
  && t.fault = None

let check_deadline t stage =
  match t.deadline with
  | Some d when Unix.gettimeofday () > d -> raise (Exhausted stage)
  | _ -> ()

(* The clock is the only expensive part of a checkpoint; poll it once per
   stride.  Step and node caps stay exact.  Power of two so the reduction
   is a mask. *)
let deadline_stride = 1024

let checkpoint t stage =
  if not (is_unlimited t) then begin
    let steps = Atomic.fetch_and_add t.steps 1 + 1 in
    let i = stage_index stage in
    let stage_count = Atomic.fetch_and_add t.stage_counts.(i) 1 + 1 in
    (match t.fault with
    | Some (s, k) when s = stage && stage_count = k -> raise (Exhausted stage)
    | _ -> ());
    (match t.max_steps with
    | Some m when steps > m -> raise (Exhausted stage)
    | _ -> ());
    if steps land (deadline_stride - 1) = 0 then check_deadline t stage
  end

let check_node_cap t stage count =
  match t.max_nodes with
  | Some m when count > m -> raise (Exhausted stage)
  | _ -> ()

let steps t = Atomic.get t.steps
let stage_steps t stage = Atomic.get t.stage_counts.(stage_index stage)
