(** Dense interning of [(array-name, index-vector)] keys.

    CDAG construction, trace building and cache simulation all key their
    inner loops on concrete cells [(string * int array)].  Hashing those
    polymorphically in every loop iteration (and rebuilding the table on
    every simulator call) dominates the empirical layer's profile.  An
    interner maps each distinct key to a dense [int] once - with a
    specialised (non-polymorphic) hash - so downstream passes run on int
    keys and flat arrays.

    The same key type also covers statement instances
    [(stmt-name, iteration-vector)]; {!Iolb_cdag.Cdag} interns both.

    Interners are single-writer: build in one domain, then share the frozen
    result read-only across a pool fan-out. *)

type key = string * int array

type t

(** [create ?size ()] is an empty interner ([size] is a capacity hint). *)
val create : ?size:int -> unit -> t

(** [intern t k] is the dense id of [k], allocating the next id
    ([count t]) on first sight.  Ids are assigned in first-seen order. *)
val intern : t -> key -> int

(** [intern_view t name idx] is [intern t (name, idx)] without requiring an
    owned key: [idx] is borrowed for the probe and copied only when the key
    is new.  The hit path - the overwhelming majority in trace and CDAG
    construction - allocates nothing, so hot loops can evaluate indices
    into a reusable buffer. *)
val intern_view : t -> string -> int array -> int

(** [find_opt t k] is the id of [k] if already interned. *)
val find_opt : t -> key -> int option

(** [key t id] is the key interned as [id].
    @raise Invalid_argument if [id] is out of range. *)
val key : t -> int -> key

(** Number of distinct keys interned. *)
val count : t -> int
