(** Detection of the hourglass dependency pattern (Section 3 of the paper).

    An hourglass is carried by an update (broadcast) statement [U] and a
    reduction statement [R]: [R] reduces values written by [U] across the
    reduction dimensions, and the reduced value is broadcast back to every
    instance of [U] at the next temporal iteration, forcing any convex
    K-bounded set spanning several temporal iterations to contain whole
    reduction lines.

    Dimension classification, given [U]'s write access [wU] and the
    broadcast-value read [b] (the read of [R]'s result):
    - reduction dimensions: [dims(wU) \ dims(b)];
    - neutral dimensions: [dims(wU) /\ dims(b)];
    - temporal dimensions: [dims(U) \ dims(wU)].

    The width [W] is the product over reduction dimensions of the minimal
    trip count across the domain ({!Iolb_ir.Program.extent_min}); the
    pattern requires [W] to be parametric (criterion 3 of Section 3.2) -
    this check is what rejects the unsplit GEHD2 program and accepts its
    split first half, reproducing Section 5.3. *)

type t = {
  update_stmt : string;  (** the broadcast statement [U] (e.g. [SU]) *)
  reduction_stmt : string;  (** the reduction statement [R] (e.g. [SR]) *)
  temporal : string list;
  reduction : string list;
  neutral : string list;
  width : Iolb_poly.Affine.t list;
      (** one minimal-extent expression per reduction dimension, in
          parameters only; [W] is their product *)
}

(** Product of the per-dimension widths. *)
val width_poly : t -> Iolb_symbolic.Polynomial.t

(** [detect p] finds every hourglass of the program, deduplicated by update
    statement and classification.  Patterns whose width is constant are
    rejected (criterion 3). *)
val detect : Iolb_ir.Program.t -> t list

(** [detect_verified ~params p] keeps only the candidates whose dependence
    chains are confirmed by {!verify} on the concrete CDAG at [params].
    This is the production entry point: {!detect} generates candidates from
    access shapes, the pebble-level check prunes the spurious ones. *)
val detect_verified :
  ?budget:Iolb_util.Budget.t -> params:(string * int) list -> Iolb_ir.Program.t -> t list

(** [verify ~params p h] checks the pattern empirically on the concrete
    CDAG: for instances of the update statement with equal neutral
    coordinates and consecutive temporal coordinates, there is a dependence
    path from the earlier to the later instance for every pair of reduction
    coordinates sampled.  Returns false if any sampled pair lacks a path. *)
val verify :
  ?budget:Iolb_util.Budget.t ->
  params:(string * int) list ->
  Iolb_ir.Program.t ->
  t ->
  bool

val pp : Format.formatter -> t -> unit
