open Shorthand

let spec =
  Program.make ~name:"gemm" ~params:[ "M"; "N"; "K" ]
    ~assumptions:
      [
        Constr.ge_of (v "M") (c 1);
        Constr.ge_of (v "N") (c 1);
        Constr.ge_of (v "K") (c 1);
      ]
    [
      loop_lt "i" (c 0) (v "M")
        [
          loop_lt "j" (c 0) (v "N")
            [
              stmt "C0" ~writes:[ a2 "C" (v "i") (v "j") ] ~reads:[];
              loop_lt "k" (c 0) (v "K")
                [
                  stmt "SC"
                    ~writes:[ a2 "C" (v "i") (v "j") ]
                    ~reads:
                      [
                        a2 "C" (v "i") (v "j");
                        a2 "A" (v "i") (v "k");
                        a2 "B" (v "k") (v "j");
                      ];
                ];
            ];
        ];
    ]

let run = Matrix.mul

let tiled_spec ~m ~n ~k ~b =
  if b < 1 then invalid_arg "Gemm.tiled_spec: b < 1";
  if m mod b <> 0 || n mod b <> 0 || k mod b <> 0 then
    invalid_arg "Gemm.tiled_spec: b must divide m, n and k";
  (* Global indices are affine in the tile counters because b is a
     constant: i = b*i0 + ii, etc. *)
  let gi = Affine.add (Affine.term b "i0") (v "ii") in
  let gj = Affine.add (Affine.term b "j0") (v "jj") in
  let gk = Affine.add (Affine.term b "k0") (v "kk") in
  Program.make
    ~name:(Printf.sprintf "gemm_tiled_m%d_n%d_k%d_b%d" m n k b)
    ~params:[] ~assumptions:[]
    [
      loop_lt "i" (c 0) (c m)
        [
          loop_lt "j" (c 0) (c n)
            [ stmt "C0" ~writes:[ a2 "C" (v "i") (v "j") ] ~reads:[] ];
        ];
      loop_lt "i0" (c 0)
        (c (m / b))
        [
          loop_lt "j0" (c 0)
            (c (n / b))
            [
              loop_lt "k0" (c 0)
                (c (k / b))
                [
                  loop_lt "ii" (c 0) (c b)
                    [
                      loop_lt "jj" (c 0) (c b)
                        [
                          loop_lt "kk" (c 0) (c b)
                            [
                              stmt "SC"
                                ~writes:[ a2 "C" gi gj ]
                                ~reads:
                                  [ a2 "C" gi gj; a2 "A" gi gk; a2 "B" gk gj ];
                            ];
                        ];
                    ];
                ];
            ];
        ];
    ]
