(** The bound-service daemon: a crash-tolerant engine server speaking the
    newline-delimited JSON {!Protocol} over a Unix or TCP socket.

    Architecture: one accept domain admits connections (up to
    [max_connections]; beyond that the peer gets one [overloaded] line
    and is closed); one reader domain per connection parses request
    lines, answers the cheap ops ([ping], [list], [stats], [shutdown])
    inline, and pushes engine ops onto a bounded
    {!Iolb_util.Pool.Bounded_queue} - a full queue sheds the request with
    a typed [overloaded] response and a retry-after hint instead of
    queueing without limit; a {!Iolb_util.Pool.Workers} group drains the
    queue.  Responses for complete (non-degraded, non-fault) analyses are
    cached in a content-addressed {!Lru}, so repeated requests for the
    same spec are served as byte-identical string splices.

    Failure semantics: engine failures and per-request budget exhaustion
    come back as typed error responses through the PR 1 degradation
    ladder; a worker that {e raises} (an engine bug, or the [crash] op
    under [allow_crash]) answers its own poisoned request with a typed
    [internal] error, dies, and is respawned - one request can never take
    the daemon down. *)

type address = Unix_sock of string | Tcp of string * int

val pp_address : Format.formatter -> address -> unit

type config = {
  address : address;
  jobs : int;  (** worker domains draining the request queue *)
  queue_capacity : int;  (** admission-control bound on queued requests *)
  cache_capacity : int;  (** LRU response-cache entries; [0] disables *)
  max_connections : int;  (** concurrent connections admitted *)
  retry_after_ms : int;  (** hint carried by [overloaded] responses *)
  default_timeout_ms : int option;
      (** deadline applied to requests that do not set their own *)
  allow_crash : bool;  (** honour the [crash] op (fault testing only) *)
  log : string -> unit;
}

(** jobs 2, queue 64, cache 128, connections 32, retry-after 100 ms, no
    default deadline, crash injection off, silent log. *)
val default_config : address:address -> config

(** The exception the [crash] op raises inside a worker domain. *)
exception Injected_crash

type t

(** Bind, spawn the worker group and the accept domain, return
    immediately.  @raise Invalid_argument on nonsensical config values;
    @raise Unix.Unix_error when the address cannot be bound. *)
val start : config -> t

(** Request a graceful stop (idempotent, callable from any domain or a
    signal handler). *)
val stop : t -> unit

(** Block until a stop is requested (the [shutdown] op or {!stop}), then
    tear down: stop accepting, drain the queued requests through the
    workers, flush in-flight responses, join every domain, release the
    socket (unlinking a Unix-socket path). *)
val join : t -> unit

(** [run config] is [join (start config)]. *)
val run : config -> unit

(** Worker-domain crash respawns so far (also in the [stats] op). *)
val respawns : t -> int
