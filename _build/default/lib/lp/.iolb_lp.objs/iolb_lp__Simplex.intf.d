lib/lp/simplex.mli: Format Iolb_util
