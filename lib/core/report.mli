(** Kernel registry and end-to-end analyses: ties together the kernel
    specifications, the derivation engine and the paper's published
    formulas.  This is the layer the CLI and the benchmark harness print. *)

type entry = {
  kernel : Paper_formulas.kernel;
  display : string;
  program : Iolb_ir.Program.t;
  verify_params : (string * int) list;
      (** small concrete sizes for empirical hourglass verification *)
  grid : (int * int * int) list;
      (** representative (m, n, s) evaluation points *)
  finalize : Iolb_symbolic.Ratfun.t -> Iolb_symbolic.Ratfun.t;
      (** post-processing of derived formulas (e.g. GEHD2 instantiates the
          loop-split parameter at M = N/2 - 1, as in Theorem 9's proof) *)
}

(** The five kernels of the paper, in Figure 4/5 order. *)
val registry : entry list

(** Baseline kernels outside the paper's evaluation (GEMM, Cholesky, LU,
    SYRK, SYR2K, TRSM, TRMM, ATAX, Jacobi-1D): name, program, and concrete
    verification parameters.  None of them has a (verified) hourglass;
    they exercise the classical path and the negative controls. *)
val baselines : (string * Iolb_ir.Program.t * (string * int) list) list

(** [find name] looks up a paper kernel by kernel/display/program name.
    @raise Not_found otherwise (baselines are not entries: they have no
    paper formulas attached; see {!baselines}). *)
val find : string -> entry

(** Like {!find}, but returns [Invalid_input] (listing the known kernels)
    instead of raising. *)
val find_checked : string -> (entry, Iolb_util.Engine_error.t) result

type analysis = {
  entry : entry;
  hourglasses : Hourglass.t list;  (** empirically verified patterns *)
  bounds : Derive.t list;  (** finalized derived bounds *)
  degradation : string option;
      (** [None] when the full pipeline ran; otherwise which ladder rungs
          were skipped or aborted and why (see {!Derive.analyze_ladder}) *)
}

(** Resilient analysis through {!Derive.analyze_ladder}: under budget
    pressure falls back to weaker (but sound) bounds, recording the
    degradation; never raises. *)
val analyze_checked :
  ?budget:Iolb_util.Budget.t ->
  entry ->
  (analysis, Iolb_util.Engine_error.t) result

(** Raising variant of {!analyze_checked} (kept for in-process callers and
    tests); under the default unlimited budget it never degrades and
    behaves as the original full pipeline. *)
val analyze : ?budget:Iolb_util.Budget.t -> entry -> analysis

(** [analyze_cached entry] is [analyze entry] memoized per process, keyed
    by [entry.display].  Invariants: only registry entries (whose display
    names are unique and whose analyses are deterministic) should go
    through the cache, and always at the unlimited budget - budgeted or
    degraded analyses are never cached.  Thread-safe: may be called
    concurrently from a {!Iolb_util.Pool} fan-out. *)
val analyze_cached : entry -> analysis

(** Observability counters for {!analyze_cached}: lookups served from the
    memo ([hits]), analyses actually run ([misses], racing duplicates
    included), and the current table size ([entries]).  Monotone over the
    process lifetime; consumed by the bound service's [stats] endpoint
    and by the memoization tests. *)
type cache_stats = { hits : int; misses : int; entries : int }

val cache_stats : unit -> cache_stats

(** [analyze_all ()] analyses the whole registry through
    {!analyze_cached}, fanning out across [jobs] domains (default
    {!Iolb_util.Pool.default_jobs}); result order follows {!registry}. *)
val analyze_all : ?jobs:int -> unit -> analysis list

(** Concrete instantiation parameters for CDAG building / trace simulation
    at size (m, n).  GEHD2 is square: [m] is ignored, [n >= 4] is required,
    and the loop split is pinned at [M = n/2 - 1] (Theorem 9's choice).
    All other kernels require [m, n >= 1] and map to [("M", m); ("N", n)]. *)
val concrete_params :
  entry ->
  m:int ->
  n:int ->
  ((string * int) list, Iolb_util.Engine_error.t) result

(** Best derived bound of a given technique class, evaluated at a point.
    [`Hourglass] considers both the main and small-cache variants and
    returns the best applicable. *)
val eval_best :
  analysis ->
  technique:[ `Classical | `Hourglass ] ->
  m:int ->
  n:int ->
  s:int ->
  float option

(** Engine-vs-paper ratio table rows: for each grid point, the evaluation
    of the engine bound, of the paper bound, and their ratio. *)
type comparison_row = {
  m : int;
  n : int;
  s : int;
  engine : float;
  paper : float;
}

val compare_with_paper :
  analysis ->
  technique:[ `Classical | `Hourglass ] ->
  comparison_row list

val pp_analysis : Format.formatter -> analysis -> unit
