module Json = Iolb_util.Json
module Budget = Iolb_util.Budget
module Engine_error = Iolb_util.Engine_error
module R = Iolb_symbolic.Ratfun
module Report = Iolb.Report
module Derive = Iolb.Derive

(* ------------------------------------------------------------------ *)
(* Requests.                                                           *)

type budget_spec = {
  timeout_ms : int option;
  max_steps : int option;
  max_nodes : int option;
  fault : (Budget.stage * int) option;
}

let no_budget =
  { timeout_ms = None; max_steps = None; max_nodes = None; fault = None }

let is_unlimited b =
  b.timeout_ms = None && b.max_steps = None && b.max_nodes = None
  && b.fault = None

(* Optional empirical validation rider on an eval: run a sampled
   (rate < 1) or exact streaming (rate = 1) cache sweep of the kernel at
   the evaluation point and report measured loads next to the bounds. *)
type empirical_spec = { rate : float; seed : int }

type op =
  | Ping
  | List_kernels
  | Analyze of { kernel : string; budget : budget_spec }
  (* A DSL program shipped inline: [src] is the full source text (the
     JSON string escaping keeps it one wire line). *)
  | Source of { src : string; budget : budget_spec }
  | Eval of {
      kernel : string;
      m : int;
      n : int;
      s : int;
      empirical : empirical_spec option;
      budget : budget_spec;
    }
  | Stats
  | Crash
  | Shutdown

type request = { id : Json.t; op : op }

let op_name = function
  | Ping -> "ping"
  | List_kernels -> "list"
  | Analyze _ -> "analyze"
  | Source _ -> "source"
  | Eval _ -> "eval"
  | Stats -> "stats"
  | Crash -> "crash"
  | Shutdown -> "shutdown"

(* Wire names for the budget stages (the CLI spells them with spaces;
   the wire uses stable snake_case tokens). *)
let stage_wire_names =
  [
    (Budget.Poly_projection, "poly_projection");
    (Budget.Cdag_build, "cdag_build");
    (Budget.Pebble_game, "pebble_game");
    (Budget.Cache_sim, "cache_sim");
    (Budget.Derivation, "derivation");
  ]

let wire_of_stage s = List.assoc s stage_wire_names

let stage_of_wire name =
  List.find_map
    (fun (s, n) -> if n = name then Some s else None)
    stage_wire_names

(* ------------------------------------------------------------------ *)
(* Request parsing.                                                    *)

let opt_int_field json key =
  match Json.member key json with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)

let int_field_default json key default =
  match opt_int_field json key with
  | Ok None -> Ok default
  | Ok (Some i) -> Ok i
  | Error _ as e -> e

let parse_fault json =
  match Json.member "fault" json with
  | None | Some Json.Null -> Ok None
  | Some (Json.Obj _ as f) -> (
      match (Json.member "stage" f, Json.member "k" f) with
      | Some (Json.String name), Some (Json.Int k) -> (
          match stage_of_wire name with
          | Some stage -> Ok (Some (stage, k))
          | None ->
              Error
                (Printf.sprintf
                   "unknown fault stage %S (poly_projection, cdag_build, \
                    pebble_game, cache_sim, derivation)"
                   name))
      | _ -> Error "field \"fault\" must be {\"stage\": <name>, \"k\": <int>}")
  | Some _ -> Error "field \"fault\" must be an object"

let parse_empirical json =
  let ( let* ) = Result.bind in
  match Json.member "empirical" json with
  | None | Some Json.Null -> Ok None
  | Some (Json.Obj _ as e) ->
      let* rate =
        match Json.member "rate" e with
        | Some (Json.Float r) -> Ok r
        | Some (Json.Int i) -> Ok (float_of_int i)
        | Some _ -> Error "field \"empirical.rate\" must be a number"
        | None -> Error "missing field \"empirical.rate\""
      in
      if not (rate > 0. && rate <= 1.) then
        Error "field \"empirical.rate\" must be in (0, 1]"
      else
        let* seed = int_field_default e "seed" 42 in
        Ok (Some { rate; seed })
  | Some _ -> Error "field \"empirical\" must be an object"

let parse_budget json =
  let ( let* ) = Result.bind in
  let* timeout_ms = opt_int_field json "timeout_ms" in
  let* max_steps = opt_int_field json "max_steps" in
  let* max_nodes = opt_int_field json "max_nodes" in
  let* fault = parse_fault json in
  Ok { timeout_ms; max_steps; max_nodes; fault }

let kernel_field json =
  match Json.member "kernel" json with
  | Some (Json.String k) -> Ok k
  | Some _ -> Error "field \"kernel\" must be a string"
  | None -> Error "missing field \"kernel\""

(* [parse_request line] decodes one wire line.  Errors carry the request
   id whenever the line parsed far enough to have one, so even a
   malformed request gets a correlatable typed response. *)
let parse_request line : (request, Json.t * string) result =
  let ( let* ) = Result.bind in
  match Json.of_string line with
  | Error msg -> Error (Json.Null, Printf.sprintf "invalid JSON: %s" msg)
  | Ok (Json.Obj _ as json) -> (
      let id = Option.value (Json.member "id" json) ~default:Json.Null in
      let fail msg = Error (id, msg) in
      match Json.member "op" json with
      | Some (Json.String op) -> (
          let with_op r =
            match r with Ok op -> Ok { id; op } | Error msg -> fail msg
          in
          match op with
          | "ping" -> Ok { id; op = Ping }
          | "list" -> Ok { id; op = List_kernels }
          | "stats" -> Ok { id; op = Stats }
          | "crash" -> Ok { id; op = Crash }
          | "shutdown" -> Ok { id; op = Shutdown }
          | "analyze" ->
              with_op
                (let* kernel = kernel_field json in
                 let* budget = parse_budget json in
                 Ok (Analyze { kernel; budget }))
          | "source" ->
              with_op
                (let* src =
                   match Json.member "src" json with
                   | Some (Json.String s) -> Ok s
                   | Some _ -> Error "field \"src\" must be a string"
                   | None -> Error "missing field \"src\""
                 in
                 let* budget = parse_budget json in
                 Ok (Source { src; budget }))
          | "eval" ->
              with_op
                (let* kernel = kernel_field json in
                 let* m = int_field_default json "m" 64 in
                 let* n = int_field_default json "n" 32 in
                 let* s = int_field_default json "s" 256 in
                 let* empirical = parse_empirical json in
                 let* budget = parse_budget json in
                 Ok (Eval { kernel; m; n; s; empirical; budget }))
          | other -> fail (Printf.sprintf "unknown op %S" other))
      | Some _ -> fail "field \"op\" must be a string"
      | None -> fail "missing field \"op\"")
  | Ok _ -> Error (Json.Null, "request must be a JSON object")

(* ------------------------------------------------------------------ *)
(* Errors.                                                             *)

type error =
  | Engine of Engine_error.t
  | Bad_request of string
  | Overloaded of { retry_after_ms : int }

let error_code = function
  | Engine (Engine_error.Invalid_input _) -> "invalid_input"
  | Engine (Engine_error.Budget_exhausted _) -> "budget_exhausted"
  | Engine (Engine_error.Unsupported _) -> "unsupported"
  | Engine (Engine_error.Internal _) -> "internal"
  | Bad_request _ -> "bad_request"
  | Overloaded _ -> "overloaded"

let error_exit_code = function
  | Engine e -> Engine_error.exit_code e
  | Bad_request _ -> 2
  | Overloaded _ -> 6

let error_message = function
  | Engine e -> Engine_error.to_string e
  | Bad_request msg -> msg
  | Overloaded { retry_after_ms } ->
      Printf.sprintf "server overloaded (request queue full); retry in %d ms"
        retry_after_ms

let error_json err =
  Json.Obj
    ([
       ("code", Json.String (error_code err));
       ("exit_code", Json.Int (error_exit_code err));
     ]
    @ (match err with
      | Engine (Engine_error.Budget_exhausted stage) ->
          [ ("stage", Json.String (wire_of_stage stage)) ]
      | Overloaded { retry_after_ms } ->
          [ ("retry_after_ms", Json.Int retry_after_ms) ]
      | _ -> [])
    @ [ ("message", Json.String (error_message err)) ])

(* ------------------------------------------------------------------ *)
(* Responses.  Compact rendering with a fixed field order keeps every
   response a pure function of the request, which is what makes cached
   responses byte-identical across cache states and worker counts. *)

let error_response ~id err =
  Json.to_string
    (Json.Obj
       [ ("id", id); ("ok", Json.Bool false); ("error", error_json err) ])

(* [ok_response_raw] splices an already-rendered result fragment into the
   envelope, byte-identical to [Json.to_string] of the equivalent object:
   this is how a cache hit reuses the stored payload without reparsing. *)
let ok_response_raw ~id ~op result =
  Printf.sprintf {|{"id":%s,"ok":true,"op":"%s","result":%s}|}
    (Json.to_string id) op result

let ok_response ~id ~op result =
  ok_response_raw ~id ~op (Json.to_string result)

(* ------------------------------------------------------------------ *)
(* Result payloads.                                                    *)

let technique_name = function
  | Derive.Classical -> "classical"
  | Derive.Hourglass -> "hourglass"
  | Derive.Hourglass_small_s -> "hourglass_small_s"
  | Derive.Trivial -> "trivial"

let degradation_json = function
  | None -> Json.Null
  | Some why -> Json.String why

let bound_json (b : Derive.t) =
  Json.Obj
    [
      ("stmt", Json.String b.stmt);
      ("technique", Json.String (technique_name b.technique));
      ("formula", Json.String (R.to_string b.formula));
      ("validity", Json.String b.validity);
      ( "s_max",
        match b.s_max with
        | None -> Json.Null
        | Some r -> Json.String (R.to_string r) );
    ]

let analysis_result ~spec (a : Report.analysis) =
  Json.Obj
    [
      ("kernel", Json.String a.entry.display);
      ("spec", Json.String spec);
      ("hourglasses", Json.Int (List.length a.hourglasses));
      ("degradation", degradation_json a.degradation);
      ("bounds", Json.List (List.map bound_json a.bounds));
    ]

(* Result of an inline-source analysis: same shape as [analysis_result],
   with the parsed kernel's own name. *)
let source_result ~spec ~kernel ~hourglasses (o : Derive.outcome) =
  Json.Obj
    [
      ("kernel", Json.String kernel);
      ("spec", Json.String spec);
      ("hourglasses", Json.Int hourglasses);
      ("degradation", degradation_json o.degradation);
      ("bounds", Json.List (List.map bound_json o.bounds));
    ]

let eval_result ?empirical ~spec (a : Report.analysis) ~m ~n ~s =
  let best tech =
    match Report.eval_best a ~technique:tech ~m ~n ~s with
    | Some v -> Json.Float v
    | None -> Json.Null
  in
  Json.Obj
    ([
       ("kernel", Json.String a.entry.display);
       ("spec", Json.String spec);
       ("m", Json.Int m);
       ("n", Json.Int n);
       ("s", Json.Int s);
       ("degradation", degradation_json a.degradation);
       ("classical", best `Classical);
       ("hourglass", best `Hourglass);
       ( "paper",
         Json.Float
           (Iolb.Paper_formulas.eval_at
              (Iolb.Paper_formulas.theorem_main a.entry.kernel)
              ~m ~n ~s) );
     ]
    @ match empirical with None -> [] | Some e -> [ ("empirical", e) ])

(* ------------------------------------------------------------------ *)
(* Content addressing.                                                 *)

(* The canonical spec string of a cacheable request: the resolved kernel
   display name (so "mgs", "MGS" and the program name address the same
   content) plus, for eval, the evaluation point.  Budgets are excluded
   on purpose - a complete (non-degraded) result is the same answer
   whatever budget produced it. *)
let spec_key op ~display =
  match op with
  | Analyze _ -> Some (Printf.sprintf "analyze\x00%s" display)
  (* A source request is addressed by its text: two byte-identical
     programs share a cache entry whatever [display] resolves to. *)
  | Source { src; _ } -> Some (Printf.sprintf "source\x00%s" src)
  | Eval { m; n; s; empirical; _ } ->
      (* The empirical rider is part of the content only when present:
         plain evals keep their pre-existing keys (and cached bytes),
         and two evals sampled differently never collide. *)
      let suffix =
        match empirical with
        | None -> ""
        | Some e -> Printf.sprintf "\x00empirical\x00%h\x00%d" e.rate e.seed
      in
      Some (Printf.sprintf "eval\x00%s\x00%d\x00%d\x00%d%s" display m n s suffix)
  | Ping | List_kernels | Stats | Crash | Shutdown -> None

let spec_hash key = Digest.to_hex (Digest.string key)

(* ------------------------------------------------------------------ *)
(* Response parsing (client side).                                     *)

type parsed_response = {
  resp_id : Json.t;
  ok : bool;
  body : Json.t;  (** the [result] of an ok response, the [error] object
                      otherwise *)
  exit_code : int;  (** 0 for ok responses, the error's exit code (5 when
                        the field is missing) otherwise *)
}

let parse_response line =
  match Json.of_string line with
  | Error msg -> Error (Printf.sprintf "invalid response JSON: %s" msg)
  | Ok json -> (
      let resp_id = Option.value (Json.member "id" json) ~default:Json.Null in
      match Json.member "ok" json with
      | Some (Json.Bool true) ->
          Ok
            {
              resp_id;
              ok = true;
              body = Option.value (Json.member "result" json) ~default:Json.Null;
              exit_code = 0;
            }
      | Some (Json.Bool false) ->
          let body =
            Option.value (Json.member "error" json) ~default:Json.Null
          in
          let exit_code =
            match Json.member "exit_code" body with
            | Some (Json.Int c) -> c
            | _ -> 5
          in
          Ok { resp_id; ok = false; body; exit_code }
      | _ -> Error "response has no boolean \"ok\" field")
