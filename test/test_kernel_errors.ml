(* Input validation of the kernel APIs: shape preconditions must be
   rejected loudly, not produce garbage - and the engine's _checked entry
   points must classify failures into the exact Engine_error constructor
   the exit-code contract promises. *)

module K = Iolb_kernels
module Matrix = Iolb_kernels.Matrix
module Report = Iolb.Report
module Budget = Iolb_util.Budget
module EE = Iolb_util.Engine_error

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

let test_shape_preconditions () =
  let wide = Matrix.random 3 5 in
  Alcotest.(check bool) "mgs needs m >= n" true
    (raises_invalid (fun () -> K.Mgs.factor wide));
  Alcotest.(check bool) "geqr2 needs m >= n" true
    (raises_invalid (fun () -> K.Householder.geqr2 wide));
  Alcotest.(check bool) "gebd2 needs m >= n" true
    (raises_invalid (fun () -> K.Gebd2.reduce wide));
  Alcotest.(check bool) "gebd2 needs n >= 1" true
    (raises_invalid (fun () -> K.Gebd2.reduce (Matrix.create 3 0)));
  Alcotest.(check bool) "gehd2 needs square" true
    (raises_invalid (fun () -> K.Gehd2.reduce wide));
  Alcotest.(check bool) "cholesky needs square" true
    (raises_invalid (fun () -> K.Cholesky.factor wide));
  Alcotest.(check bool) "lu needs square" true
    (raises_invalid (fun () -> K.Lu.factor wide));
  Alcotest.(check bool) "gemm needs compatible dims" true
    (raises_invalid (fun () -> K.Gemm.run wide wide));
  Alcotest.(check bool) "trsm needs matching sizes" true
    (raises_invalid (fun () -> K.Trsm.solve wide wide));
  Alcotest.(check bool) "atax needs matching vector" true
    (raises_invalid (fun () -> K.Atax.run wide [| 1.; 2. |]));
  Alcotest.(check bool) "org2r needs matching rows" true
    (raises_invalid (fun () ->
         K.Householder.org2r (K.Householder.geqr2 (Matrix.random 5 3)) ~rows:4));
  Alcotest.(check bool) "geqr2_tiled needs m >= n" true
    (raises_invalid (fun () -> K.Householder.geqr2_tiled ~b:1 wide));
  Alcotest.(check bool) "factor_tiled needs m >= n" true
    (raises_invalid (fun () -> K.Mgs.factor_tiled ~b:1 wide))

let test_matrix_preconditions () =
  Alcotest.(check bool) "create rejects negative dims" true
    (raises_invalid (fun () -> Matrix.create (-1) 3));
  Alcotest.(check bool) "mul rejects mismatched dims" true
    (raises_invalid (fun () -> Matrix.mul (Matrix.create 2 3) (Matrix.create 2 3)));
  Alcotest.(check bool) "sub rejects mismatched dims" true
    (raises_invalid (fun () -> Matrix.sub (Matrix.create 2 3) (Matrix.create 3 2)));
  Alcotest.(check bool) "submatrix rejects out-of-range" true
    (raises_invalid (fun () ->
         Matrix.submatrix (Matrix.create 3 3) ~row:2 ~col:0 ~rows:2 ~cols:1))

let test_numeric_preconditions () =
  (* Cholesky on a non-SPD matrix must fail, not return NaNs. *)
  let not_spd = Matrix.init 3 3 (fun i j -> if i = j then -1. else 0.) in
  Alcotest.(check bool) "cholesky rejects non-SPD" true
    (raises_invalid (fun () -> K.Cholesky.factor not_spd));
  (* LU with a structurally zero pivot. *)
  let singular = Matrix.create 3 3 in
  Alcotest.(check bool) "lu rejects zero pivot" true
    (raises_invalid (fun () -> K.Lu.factor singular))

let test_tiled_spec_preconditions () =
  Alcotest.(check bool) "tiled mgs: b must divide n" true
    (raises_invalid (fun () -> K.Mgs.tiled_spec ~m:8 ~n:6 ~b:4));
  Alcotest.(check bool) "tiled mgs: b >= 1" true
    (raises_invalid (fun () -> K.Mgs.tiled_spec ~m:8 ~n:6 ~b:0));
  Alcotest.(check bool) "tiled a2v: b must divide n" true
    (raises_invalid (fun () -> K.Householder.tiled_spec ~m:8 ~n:6 ~b:4));
  Alcotest.(check bool) "tiled a2v: b >= 1" true
    (raises_invalid (fun () -> K.Householder.tiled_spec ~m:8 ~n:6 ~b:0));
  Alcotest.(check bool) "tiled gemm: b must divide all" true
    (raises_invalid (fun () -> K.Gemm.tiled_spec ~m:8 ~n:6 ~k:8 ~b:4));
  Alcotest.(check bool) "tiled gemm: b >= 1" true
    (raises_invalid (fun () -> K.Gemm.tiled_spec ~m:8 ~n:6 ~k:8 ~b:0));
  Alcotest.(check bool) "tiled right mgs: b must divide n" true
    (raises_invalid (fun () -> K.Mgs.tiled_right_spec ~m:8 ~n:6 ~b:4));
  Alcotest.(check bool) "tiled right mgs: b >= 1" true
    (raises_invalid (fun () -> K.Mgs.tiled_right_spec ~m:8 ~n:6 ~b:0));
  Alcotest.(check bool) "geqr2_tiled: b >= 1" true
    (raises_invalid (fun () ->
         K.Householder.geqr2_tiled ~b:0 (Matrix.random 5 3)));
  Alcotest.(check bool) "factor_tiled: b >= 1" true
    (raises_invalid (fun () -> K.Mgs.factor_tiled ~b:0 (Matrix.random 5 3)))

(* The typed-error layer: exact constructors, not just "some failure". *)
let test_typed_error_paths () =
  (match Report.find_checked "no-such-kernel" with
  | Error (EE.Invalid_input _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "find_checked: expected Invalid_input");
  (match Report.find_checked "mgs" with
  | Ok e -> Alcotest.(check string) "find_checked resolves" "MGS" e.display
  | Error _ -> Alcotest.fail "find_checked rejected a known kernel");
  let gehd2 = Report.find "gehd2" in
  (match Report.concrete_params gehd2 ~m:0 ~n:3 with
  | Error (EE.Invalid_input _) -> ()
  | Ok _ | Error _ ->
      Alcotest.fail "concrete_params: gehd2 n < 4 must be Invalid_input");
  (match Report.concrete_params gehd2 ~m:0 ~n:9 with
  | Ok params ->
      Alcotest.(check (list (pair string int)))
        "gehd2 split pinned at M = n/2 - 1"
        [ ("N", 9); ("M", 3) ]
        params
  | Error e -> Alcotest.failf "concrete_params gehd2: %s" (EE.to_string e));
  (match Report.concrete_params (Report.find "mgs") ~m:0 ~n:4 with
  | Error (EE.Invalid_input _) -> ()
  | Ok _ | Error _ ->
      Alcotest.fail "concrete_params: m < 1 must be Invalid_input");
  (* Budget construction validates its inputs... *)
  (match EE.guard (fun () -> Budget.make ~max_steps:(-1) ()) with
  | Error (EE.Invalid_input _) -> ()
  | Ok _ | Error _ ->
      Alcotest.fail "Budget.make: negative cap must be Invalid_input");
  (* ... and the no-raise simulation boundaries classify their failures. *)
  let cdag =
    Iolb_cdag.Cdag.of_program
      ~params:[ ("M", 4); ("N", 3) ]
      Iolb_kernels.Mgs.spec
  in
  let schedule = Iolb_pebble.Game.program_schedule cdag in
  (match Iolb_pebble.Game.run_checked cdag ~s:1 ~schedule with
  | Error (EE.Invalid_input _) -> ()
  | Ok _ | Error _ ->
      Alcotest.fail "run_checked: infeasible S must be Invalid_input");
  (match
     Iolb_pebble.Cache.lru_checked ~size:0
       (Iolb_pebble.Trace.of_program ~params:[]
          (K.Mgs.tiled_spec ~m:4 ~n:2 ~b:1))
   with
  | Error (EE.Invalid_input _) -> ()
  | Ok _ | Error _ ->
      Alcotest.fail "lru_checked: size < 1 must be Invalid_input");
  (* The exit-code contract is part of the CLI's public interface. *)
  Alcotest.(check (list int))
    "exit codes" [ 2; 3; 4; 5 ]
    (List.map EE.exit_code
       [
         EE.Invalid_input "x";
         EE.Budget_exhausted Budget.Derivation;
         EE.Unsupported "x";
         EE.Internal "x";
       ]);
  (* Exception classification at the no-raise boundary. *)
  (match EE.of_exn (Budget.Exhausted Budget.Cache_sim) with
  | EE.Budget_exhausted Budget.Cache_sim -> ()
  | _ -> Alcotest.fail "of_exn: Budget.Exhausted must keep its stage");
  match EE.of_exn (Failure "boom") with
  | EE.Internal _ -> ()
  | _ -> Alcotest.fail "of_exn: Failure must be Internal"

let test_tiled_block_one_matches_untiled_io_order () =
  (* b = 1 tiled MGS is the plain left-looking column algorithm: its trace
     is valid and its CDAG executes the same multiset of statement kinds
     as b = 2 at the same sizes (same work, different order). *)
  let count spec =
    Iolb_ir.Program.count_instances ~params:[] spec
  in
  Alcotest.(check int) "same work across block sizes"
    (count (K.Mgs.tiled_spec ~m:8 ~n:4 ~b:1))
    (count (K.Mgs.tiled_spec ~m:8 ~n:4 ~b:2))

(* Iset.intersect must reject mismatched dimension lists with a message
   naming both sides - "dimension mismatch" alone does not tell a kernel
   author which two sets collided. *)
let test_iset_intersect_diagnostic () =
  let module A = Iolb_poly.Affine in
  let module C = Iolb_poly.Constr in
  let module I = Iolb_poly.Iset in
  let s1 =
    I.make ~dims:[ "i"; "j" ]
      [ C.ge (A.var "i"); C.ge (A.var "j"); C.le_of (A.var "j") (A.const 2) ]
  in
  let s2 = I.make ~dims:[ "j"; "k" ] [ C.ge (A.var "j") ] in
  (match I.intersect s1 s2 with
  | _ -> Alcotest.fail "intersect: expected Invalid_argument"
  | exception Invalid_argument msg ->
      Alcotest.(check string) "message names both dimension lists"
        "Iset.intersect: dimension mismatch ([i; j] vs [j; k])" msg);
  (* Matching dimensions still intersect fine. *)
  let s3 = I.make ~dims:[ "i"; "j" ] [ C.le_of (A.var "i") (A.const 3) ] in
  Alcotest.(check bool) "same dims intersect" false
    (I.is_empty ~params:[] (I.intersect s1 s3))

(* The CLI's `simulate --sizes` maps every size-spec parse failure to
   Invalid_input, i.e. exit code 2: the parser must reject malformed
   specs with a message and accept both documented syntaxes. *)
let test_size_spec_errors () =
  let module Sweep = Iolb_pebble.Sweep in
  List.iter
    (fun spec ->
      match Sweep.parse_sizes spec with
      | Ok _ -> Alcotest.failf "%S: expected a parse error" spec
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%S: non-empty message" spec)
            true
            (String.length msg > 0);
          Alcotest.(check int)
            (Printf.sprintf "%S maps to exit code 2" spec)
            2
            (EE.exit_code (EE.Invalid_input msg)))
    [ ""; "  "; "x,y"; "3,-1"; "0:4:1"; "4:2:1"; "1:9:0"; "1:9"; "1:9:2:3" ];
  (match Sweep.parse_sizes "8,16,32" with
  | Ok l -> Alcotest.(check (list int)) "comma list" [ 8; 16; 32 ] l
  | Error m -> Alcotest.failf "comma list rejected: %s" m);
  match Sweep.parse_sizes "4:17:4" with
  | Ok l -> Alcotest.(check (list int)) "range" [ 4; 8; 12; 16 ] l
  | Error m -> Alcotest.failf "range rejected: %s" m

let suite =
  [
    Alcotest.test_case "shape preconditions" `Quick test_shape_preconditions;
    Alcotest.test_case "matrix preconditions" `Quick test_matrix_preconditions;
    Alcotest.test_case "numeric preconditions" `Quick test_numeric_preconditions;
    Alcotest.test_case "tiled spec preconditions" `Quick
      test_tiled_spec_preconditions;
    Alcotest.test_case "typed error paths" `Quick test_typed_error_paths;
    Alcotest.test_case "iset intersect diagnostic" `Quick
      test_iset_intersect_diagnostic;
    Alcotest.test_case "size sweep spec errors" `Quick test_size_spec_errors;
    Alcotest.test_case "tiled work invariant across block sizes" `Quick
      test_tiled_block_one_matches_untiled_io_order;
  ]
