lib/kernels/gebd2.mli: Iolb_ir Matrix
