lib/kernels/atax.mli: Iolb_ir Matrix
