open Shorthand

let spec =
  Program.make ~name:"trsm" ~params:[ "N"; "M" ]
    ~assumptions:[ Constr.ge_of (v "N") (c 1); Constr.ge_of (v "M") (c 1) ]
    [
      loop_lt "j" (c 0) (v "M")
        [
          loop_lt "i" (c 0) (v "N")
            [
              loop_lt "k" (c 0) (v "i")
                [
                  stmt "SR"
                    ~writes:[ a2 "B" (v "i") (v "j") ]
                    ~reads:
                      [
                        a2 "B" (v "i") (v "j");
                        a2 "L" (v "i") (v "k");
                        a2 "B" (v "k") (v "j");
                      ];
                ];
              stmt "Sdv"
                ~writes:[ a2 "B" (v "i") (v "j") ]
                ~reads:[ a2 "B" (v "i") (v "j"); a2 "L" (v "i") (v "i") ];
            ];
        ];
    ]

let solve l b =
  let n, n' = Matrix.dims l in
  let n'', m = Matrix.dims b in
  if n <> n' || n <> n'' then invalid_arg "Trsm.solve: dimension mismatch";
  let x = Matrix.copy b in
  for j = 0 to m - 1 do
    for i = 0 to n - 1 do
      for k = 0 to i - 1 do
        Matrix.set x i j (Matrix.get x i j -. (Matrix.get l i k *. Matrix.get x k j))
      done;
      Matrix.set x i j (Matrix.get x i j /. Matrix.get l i i)
    done
  done;
  x
