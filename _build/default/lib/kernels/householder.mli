(** Householder QR: the A2V factor-extraction pass (LAPACK [GEQR2],
    Figure 3) and the V2Q orthogonal-factor construction (LAPACK [ORG2R],
    Figure 6), plus the tiled left-looking A2V ordering of Appendix A.2
    (Figure 9). *)

(** The A2V polyhedral program over [M] (rows) and [N] (columns), [M > N];
    the hourglass is between statements [SR] and [SU] with width [M - 1 - k]
    (minimum [M - N]). *)
val a2v_spec : Iolb_ir.Program.t

(** The V2Q polyhedral program (outer loop descending). *)
val v2q_spec : Iolb_ir.Program.t

(** [generate_reflector a k] runs the Figure 3 reflector generator on
    column [k] of [a] (rows [k..m-1]) in place and returns [tau]:
    afterwards [a(k,k)] holds the R diagonal entry and [a(i,k)], [i > k],
    the normalised reflector tail.  Shared with {!Gebd2}. *)
val generate_reflector : Matrix.t -> int -> float

(** [apply_reflector a ~k ~tau j] applies the reflector stored in column [k]
    (implicit unit at [k]) to column [j], rows [k..m-1]. *)
val apply_reflector : Matrix.t -> k:int -> tau:float -> int -> unit

type factors = {
  vr : Matrix.t;  (** V below the diagonal (unit implicit), R on and above *)
  tau : float array;
}

(** [geqr2 a] computes the in-place Householder QR of an [m x n] matrix
    with [m >= n], following Figure 3. *)
val geqr2 : Matrix.t -> factors

(** [org2r f ~rows] expands the reflectors of [f] into the [rows x n]
    orthonormal factor, following Figure 6. *)
val org2r : factors -> rows:int -> Matrix.t

(** [r_of f] extracts the upper-triangular [n x n] factor. *)
val r_of : factors -> Matrix.t

(** [qr a] is the convenience composition: [(q, r)] with [a = q * r]. *)
val qr : Matrix.t -> Matrix.t * Matrix.t

(** [geqr2_tiled ~b a]: the Figure 9 left-looking tiled ordering. *)
val geqr2_tiled : b:int -> Matrix.t -> factors

(** [tiled_spec ~m ~n ~b]: the Figure 9 ordering as a concrete program for
    trace generation; requires [b >= 1] and [b] dividing [n]. *)
val tiled_spec : m:int -> n:int -> b:int -> Iolb_ir.Program.t

(** Appendix A.2 leading-term prediction [(M^2 N^2 - M N^3 / 3) / (2 S)]. *)
val tiled_io_prediction : m:int -> n:int -> s:int -> float
