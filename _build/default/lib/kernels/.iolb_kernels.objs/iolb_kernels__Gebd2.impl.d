lib/kernels/gebd2.ml: Array Constr Householder Matrix Program Shorthand
