lib/core/derive.ml: Bl Format Hourglass Iolb_ir Iolb_poly Iolb_symbolic Iolb_util List Option Phi Printf String
