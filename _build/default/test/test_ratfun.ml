(* Rational functions: field laws via cross-multiplication equality, exact
   evaluation, substitution. *)

module P = Iolb_symbolic.Polynomial
module R = Iolb_symbolic.Ratfun
module Rat = Iolb_util.Rat

let x = P.var "x"
let y = P.var "y"

let test_construction () =
  (* (x^2 - 1)/(x - 1) equals (x + 1) semantically. *)
  let f = R.make (P.sub (P.mul x x) P.one) (P.sub x P.one) in
  let g = R.of_poly (P.add x P.one) in
  Alcotest.(check bool) "cross-multiplied equality" true (R.equal f g);
  (* But as_poly only recognises syntactic constant denominators. *)
  Alcotest.(check bool) "as_poly on true ratio" true (R.as_poly f = None);
  Alcotest.(check bool) "as_poly on poly" true (R.as_poly g <> None)

let test_arithmetic () =
  (* 1/x + 1/y = (x + y)/(x y) *)
  let f = R.add (R.make P.one x) (R.make P.one y) in
  let g = R.make (P.add x y) (P.mul x y) in
  Alcotest.(check bool) "sum of reciprocals" true (R.equal f g);
  (* f - f = 0 *)
  Alcotest.(check bool) "sub self" true (R.is_zero (R.sub f f));
  (* f * inv f = 1 *)
  Alcotest.(check bool) "mul inverse" true (R.equal (R.mul f (R.inv f)) R.one);
  (* pow with negative exponent *)
  let h = R.make x y in
  Alcotest.(check bool) "pow -2" true
    (R.equal (R.pow h (-2)) (R.make (P.mul y y) (P.mul x x)))

let test_eval () =
  let f = R.make (P.add (P.mul x x) P.one) (P.sub y P.one) in
  (* (x^2+1)/(y-1) at x=3, y=5 -> 10/4 = 5/2 *)
  Alcotest.(check string) "eval_int" "5/2"
    (Rat.to_string (R.eval_int [ ("x", 3); ("y", 5) ] f));
  Alcotest.(check bool) "eval at pole raises" true
    (try
       ignore (R.eval_int [ ("x", 0); ("y", 1) ] f);
       false
     with Rat.Division_by_zero -> true);
  Alcotest.(check (float 1e-9)) "eval_float" 2.5
    (R.eval_float [ ("x", 3); ("y", 5) ] f)

let test_subst () =
  (* (M/(S+M))[M := 2S] = 2S/3S = 2/3 *)
  let f = R.make (P.var "M") (P.add (P.var "S") (P.var "M")) in
  let g = R.subst "M" (P.scale Rat.two (P.var "S")) f in
  Alcotest.(check bool) "subst" true (R.equal g (R.of_rat (Rat.make 2 3)))

let test_division_by_zero_poly () =
  Alcotest.(check bool) "make with zero denominator raises" true
    (try
       ignore (R.make P.one P.zero);
       false
     with Rat.Division_by_zero -> true);
  Alcotest.(check bool) "inv zero raises" true
    (try
       ignore (R.inv R.zero);
       false
     with Rat.Division_by_zero -> true)

let test_vars () =
  let f = R.make (P.var "M") (P.add (P.var "S") P.one) in
  Alcotest.(check (list string)) "vars" [ "M"; "S" ] (R.vars f)

let suite =
  [
    Alcotest.test_case "construction and equality" `Quick test_construction;
    Alcotest.test_case "field arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "evaluation" `Quick test_eval;
    Alcotest.test_case "substitution" `Quick test_subst;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero_poly;
    Alcotest.test_case "variables" `Quick test_vars;
  ]
