type key = string * int array

(* Open-addressing hash table over dense ids.  The table stores only ids;
   keys live in [rev], so membership probes can hash and compare against a
   *borrowed* (name, indices) view without materialising a key value.  The
   hot callers (trace building, CDAG construction) intern millions of cells
   of which almost all are repeats: the hit path allocates nothing. *)
type t = {
  mutable table : int array; (* -1 = empty slot, else dense id *)
  mutable mask : int; (* Array.length table - 1; capacity is a power of 2 *)
  mutable rev : key array;
  mutable n : int;
  (* One-entry name-hash memo.  Trace builders intern long runs of cells
     sharing the same (physically equal) array-name string; hashing it
     once per run instead of once per probe is a measurable win. *)
  mutable hname : string;
  mutable hval : int;
}

(* FNV-1a over the name hash and the index vector, avoiding the polymorphic
   hash's tag-walking on every probe. *)
let hash_rest h0 idx =
  let h = ref h0 in
  for i = 0 to Array.length idx - 1 do
    h := (!h lxor Array.unsafe_get idx i) * 0x01000193
  done;
  !h land max_int

let hash_view name idx = hash_rest (Hashtbl.hash name) idx

let name_hash t name =
  if name == t.hname then t.hval
  else begin
    let h = Hashtbl.hash name in
    t.hname <- name;
    t.hval <- h;
    h
  end

let equal_view (b, v) name idx =
  String.equal name b
  && Array.length idx = Array.length v
  &&
  (* in bounds: i < length idx = length v *)
  let rec go i =
    i < 0 || (Array.unsafe_get idx i = Array.unsafe_get v i && go (i - 1))
  in
  go (Array.length idx - 1)

let dummy_key : key = ("", [||])

let rec capacity_for n c = if c >= 2 * n then c else capacity_for n (2 * c)

let create ?(size = 1024) () =
  let cap = capacity_for (max size 8) 16 in
  {
    table = Array.make cap (-1);
    mask = cap - 1;
    rev = Array.make (max size 1) dummy_key;
    n = 0;
    hname = "";
    hval = Hashtbl.hash "";
  }

let grow t =
  let cap = 2 * (t.mask + 1) in
  let table = Array.make cap (-1) in
  let mask = cap - 1 in
  for id = 0 to t.n - 1 do
    let name, idx = t.rev.(id) in
    let slot = ref (hash_view name idx land mask) in
    while table.(!slot) >= 0 do
      slot := (!slot + 1) land mask
    done;
    table.(!slot) <- id
  done;
  t.table <- table;
  t.mask <- mask

(* Probe for the borrowed view; returns the slot holding its id, or the
   empty slot where it belongs. *)
(* in bounds: [!slot] is masked into [0, mask], ids are < n <= length rev *)
let probe t name idx =
  let slot = ref (hash_rest (name_hash t name) idx land t.mask) in
  let found = ref (-2) in
  while !found = -2 do
    let id = Array.unsafe_get t.table !slot in
    if id < 0 then found := -1
    else if equal_view (Array.unsafe_get t.rev id) name idx then found := id
    else slot := (!slot + 1) land t.mask
  done;
  (!slot, !found)

let insert_at t slot key =
  let id = t.n in
  if id = Array.length t.rev then begin
    let bigger = Array.make (2 * id) dummy_key in
    Array.blit t.rev 0 bigger 0 id;
    t.rev <- bigger
  end;
  t.rev.(id) <- key;
  t.n <- id + 1;
  t.table.(slot) <- id;
  (* Load factor <= 1/2 keeps probe sequences short. *)
  if 2 * t.n > t.mask then grow t;
  id

(* [idx] is borrowed: copied only when the key is new. *)
let intern_view t name idx =
  match probe t name idx with
  | _, id when id >= 0 -> id
  | slot, _ -> insert_at t slot (name, Array.copy idx)

let intern t ((name, idx) as key) =
  match probe t name idx with
  | _, id when id >= 0 -> id
  | slot, _ -> insert_at t slot key

let find_opt t (name, idx) =
  match probe t name idx with _, id when id >= 0 -> Some id | _ -> None

let key t id =
  if id < 0 || id >= t.n then invalid_arg "Interner.key: id out of range";
  t.rev.(id)

let count t = t.n
