lib/kernels/syr2k.ml: Constr Matrix Program Shorthand
