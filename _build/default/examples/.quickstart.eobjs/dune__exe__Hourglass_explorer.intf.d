examples/hourglass_explorer.mli:
