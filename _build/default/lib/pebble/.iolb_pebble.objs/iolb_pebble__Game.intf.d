lib/pebble/game.mli: Iolb_cdag
