lib/poly/iset.ml: Affine Array Constr Format List Printf String
