test/test_poly.ml: Alcotest Array Iolb_poly List Printf QCheck2 QCheck_alcotest
