lib/kernels/householder.ml: Affine Array Constr List Matrix Printf Program Shorthand
