module Interner = Iolb_ir.Interner

type cell = string * int array

type event = Read of cell | Write of cell

type t = {
  cells : int array; (* per event: interned cell id *)
  writes : bool array; (* per event: write flag *)
  pool : Interner.t;
}

(* Shared builder: push events as (cell, is_write) pairs. *)
type builder = {
  mutable ids : int array;
  mutable flags : bool array;
  mutable len : int;
  p : Interner.t;
}

let builder size =
  {
    ids = Array.make (max size 16) 0;
    flags = Array.make (max size 16) false;
    p = Interner.create ();
    len = 0;
  }

let push b cell is_write =
  if b.len = Array.length b.ids then begin
    let cap = 2 * b.len in
    let ids = Array.make cap 0 and flags = Array.make cap false in
    Array.blit b.ids 0 ids 0 b.len;
    Array.blit b.flags 0 flags 0 b.len;
    b.ids <- ids;
    b.flags <- flags
  end;
  b.ids.(b.len) <- Interner.intern b.p cell;
  b.flags.(b.len) <- is_write;
  b.len <- b.len + 1

let freeze b =
  {
    cells = Array.sub b.ids 0 b.len;
    writes = Array.sub b.flags 0 b.len;
    pool = b.p;
  }

let of_program ?(budget = Iolb_util.Budget.unlimited) ~params p =
  let b = builder 1024 in
  let n = ref 0 in
  Iolb_ir.Program.iter_instances ~params p (fun inst ->
      Iolb_util.Budget.checkpoint budget Iolb_util.Budget.Cdag_build;
      incr n;
      Iolb_util.Budget.check_node_cap budget Iolb_util.Budget.Cdag_build !n;
      List.iter (fun c -> push b c false) inst.loads;
      List.iter (fun c -> push b c true) inst.stores);
  freeze b

let of_events evs =
  let b = builder (List.length evs) in
  List.iter
    (function Read c -> push b c false | Write c -> push b c true)
    evs;
  freeze b

let length t = Array.length t.cells
let footprint t = Interner.count t.pool
let cell_id t i = t.cells.(i)
let is_write t i = t.writes.(i)
let cell t id = Interner.key t.pool id

let event t i =
  let c = cell t t.cells.(i) in
  if t.writes.(i) then Write c else Read c

let to_events t = List.init (length t) (event t)

let pp_event fmt e =
  let pp_cell fmt (a, idx) =
    Format.fprintf fmt "%s(%s)" a
      (String.concat "," (List.map string_of_int (Array.to_list idx)))
  in
  match e with
  | Read c -> Format.fprintf fmt "R %a" pp_cell c
  | Write c -> Format.fprintf fmt "W %a" pp_cell c
