(* Machine-checked Figure 4: the engine's derived formulas are
   Theta-equivalent to the paper's along the regime directions, and NOT
   Theta-equivalent across the old/new divide (the improvement is genuinely
   parametric). *)

module A = Iolb.Asymptotic
module D = Iolb.Derive
module PF = Iolb.Paper_formulas
module Report = Iolb.Report
module R = Iolb_symbolic.Ratfun
module P = Iolb_symbolic.Polynomial

let engine_formula name tech =
  (* Several statements may carry a bound of the same technique (e.g. the
     A2V reduction statement SR gets a weaker rho = 2 classical bound); the
     representative one lives on the hourglass update statement SU/BUl. *)
  let a = Report.analyze (Report.find name) in
  let candidates =
    List.filter (fun (b : D.t) -> b.technique = tech) a.bounds
  in
  match
    List.find_opt (fun (b : D.t) -> b.stmt = "SU" || b.stmt = "BUl") candidates
  with
  | Some b -> b.formula
  | None -> (List.hd candidates).formula

let directions =
  [
    ("S fixed", A.square_small_cache);
    ("S ~ N", A.square_linear_cache);
    ("S ~ N^2", A.square_large_cache);
  ]

let test_self_sanity () =
  (* The checker itself: f is Theta(f); f is not Theta(f * N). *)
  let f = PF.theorem_main PF.Mgs in
  let n_times = R.mul f (R.of_poly (P.var "N")) in
  List.iter
    (fun (dname, dir) ->
      Alcotest.(check bool) ("f ~ f along " ^ dname) true
        (A.theta_equivalent f f dir);
      Alcotest.(check bool) ("f !~ N*f along " ^ dname) false
        (A.theta_equivalent f n_times dir))
    directions

let test_hourglass_matches_paper () =
  List.iter
    (fun (name, kernel) ->
      let engine = engine_formula name D.Hourglass in
      let paper = PF.theorem_main kernel in
      List.iter
        (fun (dname, dir) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s hourglass ~ paper theorem (%s)" name dname)
            true
            (A.theta_equivalent engine paper dir))
        directions)
    [
      ("mgs", PF.Mgs);
      ("qr_hh_a2v", PF.A2v);
      ("qr_hh_v2q", PF.V2q);
      ("gebd2", PF.Gebd2);
    ]

let test_classical_matches_paper_old () =
  (* Engine classical ~ MN^2/sqrt(S) (the Figure 4 old column). *)
  let old_shape =
    R.make
      (P.mul (P.var "M") (P.mul (P.var "N") (P.var "N")))
      (P.var "sqrtS")
  in
  List.iter
    (fun name ->
      let engine = engine_formula name D.Classical in
      List.iter
        (fun (dname, dir) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s classical ~ MN^2/sqrtS (%s)" name dname)
            true
            (A.theta_equivalent engine old_shape dir))
        directions)
    [ "mgs"; "qr_hh_a2v"; "qr_hh_v2q"; "gebd2" ]

let test_improvement_is_parametric () =
  (* Figure 4's whole point: new is NOT Theta(old) when the cache scales
     with the problem - the gap is parametric. *)
  let engine_hg = engine_formula "mgs" D.Hourglass in
  let engine_cl = engine_formula "mgs" D.Classical in
  (* Along S ~ N the factor M/sqrt(S) ~ sqrt(N) grows: the two bounds are
     in different Theta classes... *)
  Alcotest.(check bool) "hourglass beats classical parametrically (S ~ N)"
    false
    (A.theta_equivalent engine_hg engine_cl A.square_linear_cache);
  (* ... and the gap is exactly M/sqrt(S): hourglass ~ classical * M/sqrtS. *)
  let scaled = R.mul engine_cl (R.make (P.var "M") (P.var "sqrtS")) in
  Alcotest.(check bool) "hourglass ~ classical * M/sqrt(S)" true
    (A.theta_equivalent engine_hg scaled A.square_linear_cache);
  (* Along S ~ M^2 the factor is constant, so they coincide - the regime
     boundary of Section 5.1. *)
  Alcotest.(check bool) "same class when S ~ M^2" true
    (A.theta_equivalent engine_hg engine_cl A.square_large_cache)

let test_gehd2_shape () =
  let a = Report.analyze (Report.find "gehd2") in
  let engine =
    List.filter_map
      (fun (b : D.t) ->
        if b.technique = D.Hourglass then Some b.formula else None)
      a.bounds
  in
  let paper = PF.theorem_main PF.Gehd2 in
  (* GEHD2 formulas are over N, S only. *)
  let dir t = [ ("N", t); ("S", t) ] in
  Alcotest.(check bool) "some gehd2 bound ~ N^4/(N+2S)" true
    (List.exists (fun f -> A.theta_equivalent f paper dir) engine)

let suite =
  [
    Alcotest.test_case "checker sanity" `Quick test_self_sanity;
    Alcotest.test_case "hourglass bounds ~ paper theorems" `Quick
      test_hourglass_matches_paper;
    Alcotest.test_case "classical bounds ~ MN^2/sqrtS" `Quick
      test_classical_matches_paper_old;
    Alcotest.test_case "improvement is parametric (M/sqrtS)" `Quick
      test_improvement_is_parametric;
    Alcotest.test_case "gehd2 ~ N^4/(N+2S)" `Quick test_gehd2_shape;
  ]
