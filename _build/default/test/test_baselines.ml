(* Baseline kernels (Cholesky, LU, SYRK, TRSM, tiled GEMM): numeric
   correctness, no-hourglass property, and classical bound shapes. *)

module K = Iolb_kernels
module Matrix = Iolb_kernels.Matrix
module D = Iolb.Derive
module H = Iolb.Hourglass

let check_close ~msg ~tol actual =
  Alcotest.(check bool) (Printf.sprintf "%s (err=%g)" msg actual) true (actual < tol)

let test_cholesky () =
  List.iter
    (fun n ->
      let a = K.Cholesky.random_spd ~seed:3 n in
      let l = K.Cholesky.factor a in
      check_close ~msg:"A = L L^T" ~tol:1e-9
        (Matrix.rel_error a (Matrix.mul l (Matrix.transpose l)));
      Alcotest.(check bool) "L lower" true
        (Matrix.is_upper_triangular (Matrix.transpose l)))
    [ 1; 4; 9; 16 ]

let test_lu () =
  List.iter
    (fun n ->
      let a = K.Lu.random_dd ~seed:5 n in
      let l, u = K.Lu.factor a in
      check_close ~msg:"A = L U" ~tol:1e-9 (Matrix.rel_error a (Matrix.mul l u));
      Alcotest.(check bool) "U upper" true (Matrix.is_upper_triangular u);
      Alcotest.(check bool) "L unit lower" true
        (Matrix.is_upper_triangular (Matrix.transpose l)
        &&
        let ok = ref true in
        for i = 0 to n - 1 do
          if Matrix.get l i i <> 1. then ok := false
        done;
        !ok))
    [ 1; 4; 9; 16 ]

let test_syrk () =
  let a = Matrix.random ~seed:9 6 4 in
  let c = K.Syrk.run a in
  check_close ~msg:"C = A A^T" ~tol:1e-12
    (Matrix.rel_error c (Matrix.mul a (Matrix.transpose a)))

let test_trsm () =
  let n = 8 and m = 5 in
  let spd = K.Cholesky.random_spd ~seed:13 n in
  let l = K.Cholesky.factor spd in
  let b = Matrix.random ~seed:15 n m in
  let x = K.Trsm.solve l b in
  check_close ~msg:"L X = B" ~tol:1e-9 (Matrix.rel_error b (Matrix.mul l x))

let test_no_hourglass () =
  (* These kernels have a single update statement, so no (update, reduction)
     pair exists: the hourglass path must stay silent. *)
  List.iter
    (fun (name, prog, params) ->
      let verified = H.detect_verified ~params prog in
      Alcotest.(check int) (name ^ " has no verified hourglass") 0
        (List.length verified))
    [
      ("cholesky", K.Cholesky.spec, [ ("N", 8) ]);
      ("lu", K.Lu.spec, [ ("N", 8) ]);
      ("syrk", K.Syrk.spec, [ ("N", 6); ("K", 5) ]);
      ("trsm", K.Trsm.spec, [ ("N", 6); ("M", 4) ]);
    ]

let test_classical_rho () =
  (* All four baselines have rho = 3/2 on their deepest statement (three
     2-D projections), the Theta(.../sqrt S) shape. *)
  List.iter
    (fun (name, prog, stmt) ->
      match D.classical prog ~stmt with
      | None -> Alcotest.failf "no classical bound for %s" name
      | Some b ->
          Alcotest.(check bool)
            (name ^ " bound is Theta(flops/sqrt S)")
            true
            (List.exists
               (fun l -> l = "Brascamp-Lieb exponent sum rho = 3/2")
               b.D.log))
    [
      ("cholesky", K.Cholesky.spec, "Sup");
      ("lu", K.Lu.spec, "Sup");
      ("syrk", K.Syrk.spec, "SC");
      ("trsm", K.Trsm.spec, "SR");
    ]

let test_tiled_gemm_io () =
  (* Blocked gemm at block b with 3b^2 <= S: I/O ~ 2 m n k / b; the
     unblocked ijk order pays ~ m n k when S is small. *)
  let m = 16 and n = 16 and k = 16 in
  let s = 3 * 8 * 8 in
  let tiled b =
    let trace =
      Iolb_pebble.Trace.of_program ~params:[] (K.Gemm.tiled_spec ~m ~n ~k ~b)
    in
    (Iolb_pebble.Cache.opt ~size:s trace).Iolb_pebble.Cache.loads
  in
  let t2 = tiled 2 and t8 = tiled 8 in
  Alcotest.(check bool)
    (Printf.sprintf "bigger blocks reduce I/O (%d -> %d)" t2 t8)
    true (t8 < t2);
  (* Shape: loads(b=8) should be within 2x of 2mnk/b + mn. *)
  let predicted = (2 * m * n * k / 8) + (m * n) in
  Alcotest.(check bool)
    (Printf.sprintf "near prediction (%d vs %d)" t8 predicted)
    true
    (float_of_int t8 < 2. *. float_of_int predicted
    && float_of_int t8 > 0.4 *. float_of_int predicted);
  (* Sandwich with the classical lower bound. *)
  let bounds =
    D.analyze ~verify_params:[ ("M", 4); ("N", 4); ("K", 4) ] K.Gemm.spec
  in
  let lb =
    List.fold_left
      (fun acc (b : D.t) ->
        Float.max acc
          (D.eval b ~params:[ ("M", m); ("N", n); ("K", k) ] ~s))
      0. bounds
  in
  Alcotest.(check bool)
    (Printf.sprintf "lower bound %.0f <= tiled I/O %d" lb t8)
    true
    (lb <= float_of_int t8)

let test_tiled_right_mgs_more_writes () =
  (* The paper's remark: the right-looking tiled variant does asymptotically
     similar I/O but with more writes than the left-looking one. *)
  let m = 32 and n = 16 and b = 4 and s = 160 in
  let stats spec =
    Iolb_pebble.Cache.opt ~size:s (Iolb_pebble.Trace.of_program ~params:[] spec)
  in
  let left = stats (K.Mgs.tiled_spec ~m ~n ~b) in
  let right = stats (K.Mgs.tiled_right_spec ~m ~n ~b) in
  Alcotest.(check bool)
    (Printf.sprintf "right-looking writes more (%d vs %d)"
       right.Iolb_pebble.Cache.stores left.Iolb_pebble.Cache.stores)
    true
    (right.Iolb_pebble.Cache.stores > left.Iolb_pebble.Cache.stores)

let suite0 =
  [
    Alcotest.test_case "cholesky factors SPD" `Quick test_cholesky;
    Alcotest.test_case "lu factors" `Quick test_lu;
    Alcotest.test_case "syrk" `Quick test_syrk;
    Alcotest.test_case "trsm solves" `Quick test_trsm;
    Alcotest.test_case "no hourglass on baselines" `Quick test_no_hourglass;
    Alcotest.test_case "classical rho = 3/2 on baselines" `Quick
      test_classical_rho;
    Alcotest.test_case "tiled gemm I/O shape + sandwich" `Quick
      test_tiled_gemm_io;
    Alcotest.test_case "right-looking tiled MGS writes more" `Quick
      test_tiled_right_mgs_more_writes;
  ]

(* Polybench-family additions: SYR2K/TRMM exercise the classical 3-D path;
   ATAX documents the matvec-class negative result. *)

let test_syr2k () =
  let a = Matrix.random ~seed:21 5 3 and b = Matrix.random ~seed:22 5 3 in
  let c = K.Syr2k.run a b in
  let expected =
    let abt = Matrix.mul a (Matrix.transpose b) in
    let bat = Matrix.mul b (Matrix.transpose a) in
    Matrix.init 5 5 (fun i j -> Matrix.get abt i j +. Matrix.get bat i j)
  in
  check_close ~msg:"C = AB^T + BA^T" ~tol:1e-12 (Matrix.rel_error expected c);
  (match D.classical K.Syr2k.spec ~stmt:"SC" with
  | Some bnd ->
      Alcotest.(check bool) "syr2k rho = 3/2" true
        (List.mem "Brascamp-Lieb exponent sum rho = 3/2" bnd.D.log)
  | None -> Alcotest.fail "syr2k should have a classical bound");
  Alcotest.(check int) "no hourglass" 0
    (List.length
       (H.detect_verified ~params:[ ("N", 5); ("K", 4) ] K.Syr2k.spec))

let test_trmm () =
  let m = 6 and n = 4 in
  let a =
    Matrix.init m m (fun i j ->
        if i = j then 1. else if j < i then Matrix.get (Matrix.random ~seed:23 m m) i j else 0.)
  in
  let b = Matrix.random ~seed:24 m n in
  let out = K.Trmm.run a b in
  (* Reference: out = A^T? No - B(i,j) += sum_{k>i} A(k,i) B(k,j) is
     (A^T B) with unit diagonal, i.e. out = A^T * B for unit-lower A. *)
  let expected = Matrix.mul (Matrix.transpose a) b in
  check_close ~msg:"B := A^T B (unit lower A)" ~tol:1e-12
    (Matrix.rel_error expected out);
  (match D.classical K.Trmm.spec ~stmt:"SB" with
  | Some bnd ->
      Alcotest.(check bool) "trmm rho = 3/2" true
        (List.mem "Brascamp-Lieb exponent sum rho = 3/2" bnd.D.log)
  | None -> Alcotest.fail "trmm should have a classical bound");
  Alcotest.(check int) "no hourglass" 0
    (List.length
       (H.detect_verified ~params:[ ("M", 6); ("N", 4) ] K.Trmm.spec))

let test_atax_negative () =
  let a = Matrix.random ~seed:25 4 3 in
  let x = [| 1.; -2.; 0.5 |] in
  let y = K.Atax.run a x in
  (* Reference via matrices. *)
  let xm = Matrix.init 3 1 (fun i _ -> x.(i)) in
  let ym = Matrix.mul (Matrix.transpose a) (Matrix.mul a xm) in
  Array.iteri
    (fun j v ->
      Alcotest.(check bool)
        (Printf.sprintf "y[%d]" j)
        true
        (Float.abs (v -. Matrix.get ym j 0) < 1e-12))
    y;
  (* No S-dependent bound: matvec-class kernels have no superlinear reuse. *)
  Alcotest.(check bool) "no classical bound for St" true
    (D.classical K.Atax.spec ~stmt:"St" = None);
  Alcotest.(check bool) "no classical bound for Sy" true
    (D.classical K.Atax.spec ~stmt:"Sy" = None)

let suite =
  suite0
  @ [
      Alcotest.test_case "syr2k (classical, no hourglass)" `Quick test_syr2k;
      Alcotest.test_case "trmm (classical, no hourglass)" `Quick test_trmm;
      Alcotest.test_case "atax (matvec negative control)" `Quick
        test_atax_negative;
    ]
