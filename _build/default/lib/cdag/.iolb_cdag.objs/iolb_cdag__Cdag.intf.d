lib/cdag/cdag.mli: Format Iolb_ir
