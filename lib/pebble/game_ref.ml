module Cdag = Iolb_cdag.Cdag
module Budget = Iolb_util.Budget

type result = { loads : int; peak_red : int }

exception Infeasible of string

let is_compute cdag id =
  match Cdag.kind cdag id with Cdag.Compute _ -> true | Cdag.Input _ -> false

let program_schedule cdag =
  Array.of_list
    (List.filter (is_compute cdag) (Array.to_list (Cdag.program_order cdag)))

let is_topological cdag schedule =
  let pos = Hashtbl.create (Array.length schedule) in
  Array.iteri (fun i id -> Hashtbl.replace pos id i) schedule;
  let ok = ref true in
  Array.iteri
    (fun i id ->
      Array.iter
        (fun p ->
          if is_compute cdag p then
            match Hashtbl.find_opt pos p with
            | Some j when j < i -> ()
            | _ -> ok := false)
        (Cdag.preds cdag id))
    schedule;
  !ok
  && Array.length schedule
     = List.length
         (List.filter (is_compute cdag) (Array.to_list (Cdag.program_order cdag)))

let random_topological ?(seed = 0) cdag =
  let state = Random.State.make [| seed |] in
  let n = Cdag.n_nodes cdag in
  let remaining_preds = Array.make n 0 in
  let ready = ref [] in
  for id = 0 to n - 1 do
    if is_compute cdag id then begin
      let cnt =
        Array.fold_left
          (fun acc p -> if is_compute cdag p then acc + 1 else acc)
          0 (Cdag.preds cdag id)
      in
      remaining_preds.(id) <- cnt;
      if cnt = 0 then ready := id :: !ready
    end
  done;
  let out = ref [] in
  let ready = ref (Array.of_list !ready) in
  let ready_len = ref (Array.length !ready) in
  while !ready_len > 0 do
    let pick = Random.State.int state !ready_len in
    let id = !ready.(pick) in
    !ready.(pick) <- !ready.(!ready_len - 1);
    decr ready_len;
    out := id :: !out;
    Array.iter
      (fun s ->
        if is_compute cdag s then begin
          remaining_preds.(s) <- remaining_preds.(s) - 1;
          if remaining_preds.(s) = 0 then begin
            if !ready_len = Array.length !ready then begin
              let bigger = Array.make (max 4 (2 * !ready_len)) 0 in
              Array.blit !ready 0 bigger 0 !ready_len;
              ready := bigger
            end;
            !ready.(!ready_len) <- s;
            incr ready_len
          end
        end)
      (Cdag.succs cdag id)
  done;
  Array.of_list (List.rev !out)

let priority_topological cdag ~priority =
  let n = Cdag.n_nodes cdag in
  let remaining_preds = Array.make n 0 in
  (* Min-heap via Maxheap on negated priorities. *)
  let heap = Iolb_util.Maxheap.create () in
  let prio_of id =
    match Cdag.kind cdag id with
    | Cdag.Compute (stmt, vec) -> priority ~stmt ~vec
    | Cdag.Input _ -> assert false
  in
  for id = 0 to n - 1 do
    if is_compute cdag id then begin
      let cnt =
        Array.fold_left
          (fun acc p -> if is_compute cdag p then acc + 1 else acc)
          0 (Cdag.preds cdag id)
      in
      remaining_preds.(id) <- cnt;
      if cnt = 0 then
        Iolb_util.Maxheap.push heap ~pos:(-prio_of id) ~payload:id
    end
  done;
  let out = ref [] in
  while not (Iolb_util.Maxheap.is_empty heap) do
    let _, id = Iolb_util.Maxheap.pop heap in
    out := id :: !out;
    Array.iter
      (fun succ ->
        if is_compute cdag succ then begin
          remaining_preds.(succ) <- remaining_preds.(succ) - 1;
          if remaining_preds.(succ) = 0 then
            Iolb_util.Maxheap.push heap ~pos:(-prio_of succ) ~payload:succ
        end)
      (Cdag.succs cdag id)
  done;
  Array.of_list (List.rev !out)

type plan = {
  cdag : Cdag.t;
  schedule : int array;
  use_positions : int array array;
}

let plan cdag ~schedule =
  if not (is_topological cdag schedule) then
    invalid_arg "Game.run: schedule is not a topological order of computes";
  let n = Cdag.n_nodes cdag in
  (* Positions at which each node's value is consumed, in schedule order. *)
  let use_positions = Array.make n [] in
  Array.iteri
    (fun t id ->
      Array.iter (fun p -> use_positions.(p) <- t :: use_positions.(p)) (Cdag.preds cdag id))
    schedule;
  let use_positions = Array.map (fun l -> Array.of_list (List.rev l)) use_positions in
  { cdag; schedule; use_positions }

(* The per-step loops below index node-id-sized state arrays with
   [Array.unsafe_get]/[unsafe_set]: node ids are < n by the CDAG's
   construction, and use-position cursors stay within each node's use
   array by the loop condition. *)
let run_plan ?(budget = Budget.unlimited) { cdag; schedule; use_positions } ~s =
  let n = Cdag.n_nodes cdag in
  let use_cursor = Array.make n 0 in
  let next_use_after node t =
    let uses = Array.unsafe_get use_positions node in
    let len = Array.length uses in
    let c = ref (Array.unsafe_get use_cursor node) in
    while !c < len && Array.unsafe_get uses !c <= t do
      incr c
    done;
    Array.unsafe_set use_cursor node !c;
    if !c < len then Array.unsafe_get uses !c else max_int
  in
  let red = Array.make n false in
  let white = Array.make n false in
  (* Inputs start white. *)
  for id = 0 to n - 1 do
    if not (is_compute cdag id) then white.(id) <- true
  done;
  let red_count = ref 0 and peak = ref 0 and loads = ref 0 in
  (* Lazy max-heap of (next use position, node) for Belady discarding. *)
  let heap = Iolb_util.Maxheap.create () in
  let heap_key = Array.make n (-2) in
  (* heap_key.(node) = pos of the valid heap entry for node, or -2. *)
  let set_red node pos =
    if not (Array.unsafe_get red node) then begin
      Array.unsafe_set red node true;
      incr red_count;
      if !red_count > !peak then peak := !red_count
    end;
    Array.unsafe_set heap_key node pos;
    Iolb_util.Maxheap.push heap ~pos ~payload:node
  in
  let protect = Array.make n (-1) in
  (* protect.(node) = t when the node must not be discarded at step t. *)
  let discard_one t =
    (* Entries popped past (protected nodes with valid entries) must be
       re-pushed, or those nodes become permanently undiscardable. *)
    let skipped = ref [] in
    let rec pick () =
      if Iolb_util.Maxheap.is_empty heap then
        raise (Infeasible "no discardable red pebble");
      let pos, node = Iolb_util.Maxheap.pop heap in
      if Array.unsafe_get red node && Array.unsafe_get heap_key node = pos then
        if Array.unsafe_get protect node <> t then node
        else begin
          skipped := (pos, node) :: !skipped;
          pick ()
        end
      else pick ()
    in
    let victim = pick () in
    List.iter
      (fun (pos, node) -> Iolb_util.Maxheap.push heap ~pos ~payload:node)
      !skipped;
    red.(victim) <- false;
    heap_key.(victim) <- -2;
    decr red_count
  in
  let unlimited = Budget.is_unlimited budget in
  Array.iteri
    (fun t id ->
      if not unlimited then Budget.checkpoint budget Budget.Pebble_game;
      let preds = Cdag.preds cdag id in
      let needed = Array.length preds + 1 in
      if needed > s then
        raise
          (Infeasible
             (Printf.sprintf "node %d needs %d red pebbles but S = %d" id
                needed s));
      Array.iter (fun p -> Array.unsafe_set protect p t) preds;
      Array.unsafe_set protect id t;
      (* Bring every predecessor in fast memory. *)
      Array.iter
        (fun p ->
          if not (Array.unsafe_get red p) then begin
            assert white.(p);
            incr loads;
            if !red_count >= s then discard_one t;
            set_red p (next_use_after p t)
          end
          else begin
            (* refresh the heap entry with the new next use *)
            let nu = next_use_after p t in
            Array.unsafe_set heap_key p nu;
            Iolb_util.Maxheap.push heap ~pos:nu ~payload:p
          end)
        preds;
      (* Compute: white + red on the node itself. *)
      if !red_count >= s then discard_one t;
      white.(id) <- true;
      set_red id (next_use_after id t))
    schedule;
  { loads = !loads; peak_red = !peak }

let run ?budget cdag ~s ~schedule = run_plan ?budget (plan cdag ~schedule) ~s

let run_checked ?budget cdag ~s ~schedule =
  match run ?budget cdag ~s ~schedule with
  | r -> Ok r
  | exception Infeasible msg -> Error (Iolb_util.Engine_error.Invalid_input msg)
  | exception e -> Error (Iolb_util.Engine_error.of_exn e)
