(** Left-looking Cholesky factorisation (A = L L^T, lower triangular).

    A baseline kernel without an hourglass pattern: its single update
    statement cannot pair with a distinct reduction statement, so the
    engine must fall back to the classical Theta(N^3 / sqrt S) bound -
    which is known to be tight (blocked Cholesky achieves it). *)

val spec : Iolb_ir.Program.t

(** [factor a] returns the lower-triangular [l] with [a = l * l^T], for a
    symmetric positive-definite [a].  @raise Invalid_argument if a pivot is
    non-positive (not SPD). *)
val factor : Matrix.t -> Matrix.t

(** Deterministic SPD test matrix: [A^T A + n I] from a random [A]. *)
val random_spd : ?seed:int -> int -> Matrix.t
