lib/ir/access.mli: Format Iolb_poly
