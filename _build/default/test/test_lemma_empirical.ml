(* Empirical check of the paper's central inequality (Section 4): for any
   convex set E of update-statement instances with |InSet(E)| <= K,

       |E| <= K^2 / W + 2K.

   We sample random convex sets (convex closures of random node samples) on
   concrete CDAGs, measure K as the closure's inset, count the update
   instances inside, and assert the inequality.  A counterexample would
   falsify the derivation the bounds rest on. *)

module Cdag = Iolb_cdag.Cdag
module H = Iolb.Hourglass
module P = Iolb_symbolic.Polynomial

let check_kernel name params samples =
  let entry = Iolb.Report.find name in
  let prog = entry.Iolb.Report.program in
  let cdag = Cdag.of_program ~params prog in
  let h =
    List.find
      (fun (h : H.t) -> h.reduction = [ "i" ])
      (H.detect_verified ~params prog)
  in
  let w =
    Iolb_symbolic.Polynomial.eval_int params (H.width_poly h)
    |> Iolb_util.Rat.to_int
  in
  let su_nodes = Array.of_list (Cdag.nodes_of_stmt cdag h.update_stmt) in
  let state = Random.State.make [| 2024 |] in
  for sample = 1 to samples do
    (* Random seed set: 2-4 update instances. *)
    let k_pick = 2 + Random.State.int state 3 in
    let seeds =
      List.init k_pick (fun _ ->
          su_nodes.(Random.State.int state (Array.length su_nodes)))
    in
    let closure = Cdag.convex_closure cdag seeds in
    let k = Cdag.inset cdag closure in
    let e_su =
      List.length
        (List.filter
           (fun id ->
             match Cdag.kind cdag id with
             | Cdag.Compute (s, _) -> s = h.update_stmt
             | Cdag.Input _ -> false)
           closure)
    in
    let bound = (float_of_int (k * k) /. float_of_int w) +. (2. *. float_of_int k) in
    Alcotest.(check bool)
      (Printf.sprintf "%s sample %d: |E_SU|=%d <= K^2/W + 2K = %.1f (K=%d, W=%d)"
         name sample e_su bound k w)
      true
      (float_of_int e_su <= bound +. 1e-9)
  done

let test_mgs () = check_kernel "mgs" [ ("M", 8); ("N", 6) ] 60
let test_a2v () = check_kernel "qr_hh_a2v" [ ("M", 9); ("N", 5) ] 60
let test_gebd2 () = check_kernel "gebd2" [ ("M", 9); ("N", 5) ] 40

let suite =
  [
    Alcotest.test_case "|E| <= K^2/W + 2K on MGS" `Quick test_mgs;
    Alcotest.test_case "|E| <= K^2/W + 2K on A2V" `Quick test_a2v;
    Alcotest.test_case "|E| <= K^2/W + 2K on GEBD2" `Quick test_gebd2;
  ]
