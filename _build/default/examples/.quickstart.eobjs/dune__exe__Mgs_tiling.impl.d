examples/mgs_tiling.ml: Iolb Iolb_kernels Iolb_pebble List Option Printf Sys
