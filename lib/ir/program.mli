(** Polyhedral (affine) programs, represented as loop trees.

    A program is a sequence of perfectly-nestable loop nodes and statement
    nodes.  Loop bounds are inclusive affine expressions of the enclosing
    loop variables and the program parameters; statement accesses are affine
    (see {!Access}).  This is the input language of the lower-bound engine,
    covering every kernel of the paper (Figures 1, 3, 6, 7, 8, 9). *)

module Affine = Iolb_poly.Affine

type stmt = { name : string; writes : Access.t list; reads : Access.t list }

type node =
  | Loop of {
      var : string;
      lo : Affine.t;
      hi : Affine.t;
      rev : bool;  (** iterate [hi] downto [lo] instead of [lo] to [hi] *)
      body : node list;
    }
  | Stmt of stmt

type t = {
  name : string;
  params : string list;
  (** Assumptions on the parameters (e.g. [M >= N], [N >= 1]) under which
      bounds are derived. *)
  assumptions : Iolb_poly.Constr.t list;
  body : node list;
}

(** {1 Builders} *)

(** [loop var lo hi body] is a loop node; bounds are inclusive. *)
val loop : string -> Affine.t -> Affine.t -> node list -> node

(** [loop_lt var lo hi_excl body] uses an exclusive upper bound, matching the
    C listings of the paper ([for (v = lo; v < hi; v++)]). *)
val loop_lt : string -> Affine.t -> Affine.t -> node list -> node

(** [loop_rev var lo hi body] iterates [var] from [hi] downto [lo]
    (inclusive), as in the V2Q listing of the paper (Figure 6). *)
val loop_rev : string -> Affine.t -> Affine.t -> node list -> node

val stmt : string -> writes:Access.t list -> reads:Access.t list -> node

(** [make ~name ~params ~assumptions body] checks well-formedness (unique
    statement names, unique loop variables along any path, accesses only
    using visible variables). @raise Invalid_argument if violated. *)
val make :
  name:string ->
  params:string list ->
  assumptions:Iolb_poly.Constr.t list ->
  node list ->
  t

(** Structural equality (name, params, assumptions, loop tree and accesses,
    with affine leaves compared by {!Affine.equal}).  This is the identity
    the textual front-end round-trips against: [parse (print p)] must be
    [equal] to [p]. *)
val equal : t -> t -> bool

(** {1 Derived statement views} *)

type stmt_info = {
  def : stmt;
  dims : string list;  (** enclosing loop variables, outermost first *)
  bounds : (string * Affine.t * Affine.t) list;
      (** per dimension, outermost first: (var, lo, hi) inclusive *)
  path : int list;
      (** identities of the enclosing loop nodes, outermost first; two
          statements share an enclosing loop iff their paths share that
          prefix element (loop variable names may repeat across loops) *)
}

(** [shared_loop_vars a b] is the variables of the loops enclosing both
    statements (the longest common prefix of their paths). *)
val shared_loop_vars : stmt_info -> stmt_info -> string list

val statements : t -> stmt_info list

(** @raise Not_found if no statement has that name. *)
val find_stmt : t -> string -> stmt_info

(** The iteration domain of a statement as an integer set over its dims. *)
val domain : stmt_info -> Iolb_poly.Iset.t

(** Exact symbolic number of instances of the statement (iterated Faulhaber
    summation).  Valid whenever every loop of the program has a
    non-negative trip count across the enclosing domain - true for all the
    kernels considered. *)
val cardinal : stmt_info -> Iolb_symbolic.Polynomial.t

(** Total number of statement instances of the program. *)
val total_instances : t -> Iolb_symbolic.Polynomial.t

(** [extent_min info x] (resp. [extent_max]) is a symbolic lower (upper)
    bound, affine in the parameters only, of the trip count [hi - lo + 1] of
    dimension [x] of [info], obtained by substituting adversarial bounds for
    the outer dimensions.  This is the quantity W of the hourglass pattern
    (Section 3.2 of the paper). *)
val extent_min : stmt_info -> string -> Affine.t

val extent_max : stmt_info -> string -> Affine.t

(** {1 Concrete execution order} *)

type instance = {
  stmt_name : string;
  vec : int array;  (** values of [dims], outermost first *)
  loads : (string * int array) list;  (** concrete cells read *)
  stores : (string * int array) list;  (** concrete cells written *)
}

(** [iter_instances ~params p f] visits every statement instance in program
    (textual/loop) order with its concrete accesses.  This is the reference
    semantics used to build CDAGs and access traces.  The loop tree is
    compiled once per call to slot-indexed form, so iteration cost is flat
    integer arithmetic per instance. *)
val iter_instances : params:(string * int) list -> t -> (instance -> unit) -> unit

(** [iter_accesses ~params p ~on_instance ~on_access] streams the concrete
    accesses of every instance in program order without allocating
    {!instance} records: [on_instance ()] fires once per instance (budget
    and node-cap hooks), then [on_access array index is_write] once per
    read (in statement order) and then per write.  [index] is a buffer
    {e borrowed} for the duration of the callback - copy it to keep it.
    This is the allocation-free path used by trace construction. *)
val iter_accesses :
  params:(string * int) list ->
  t ->
  on_instance:(unit -> unit) ->
  on_access:(string -> int array -> bool -> unit) ->
  unit

(** [iter_accesses_range ~params p ~lo ~hi ~on_instance ~on_access] is
    {!iter_accesses} restricted to the accesses whose global position - the
    0-based index in the order [iter_accesses] emits them - lies in
    [\[lo, hi)].  [on_access] additionally receives that position.  Whole
    loop iterations left of [lo] are skipped by closed-form counting
    (rectangular sub-nests cost one multiplication, not one visit per
    access) and iteration stops once [hi] is passed, so a shard owning a
    contiguous slice of a huge trace pays for its slice plus the loop
    structure around it, not for the whole trace.  [on_instance] fires only
    for instances with at least one access in range.
    @raise Invalid_argument if [lo < 0] or [hi < lo]. *)
val iter_accesses_range :
  params:(string * int) list ->
  t ->
  lo:int ->
  hi:int ->
  on_instance:(unit -> unit) ->
  on_access:(int -> string -> int array -> bool -> unit) ->
  unit

(** [sample_hash ~seed name index] is the canonical 62-bit spatial hash of
    a concrete cell, uniform on [\[0, 2^62)].  Sampling keeps a cell iff
    its hash is below [rate * 2^62], so whether a cell is sampled is a
    pure function of (seed, cell) - the SHARDS property that makes reuse
    distances of the sampled sub-trace scale by the rate.  Every consumer
    (the fast iterator below, oracles, tests) agrees on this function. *)
val sample_hash : seed:int -> string -> int array -> int

(** [iter_accesses_sampled ~params p ~seed ~thresh ~on_tick ~on_access]
    visits, in program order, exactly the accesses whose cell satisfies
    [sample_hash ~seed name index < thresh], calling
    [on_access hash name index is_write] for each ([index] is borrowed).
    The hash is advanced incrementally along innermost loops, so a
    {e rejected} access costs a few nanoseconds - no index evaluation -
    which is what makes sampled sweeps of billion-access traces feasible.
    [on_tick n] fires at least every 64k accesses scanned (kept or not),
    for budget polling. *)
val iter_accesses_sampled :
  params:(string * int) list ->
  t ->
  seed:int ->
  thresh:int ->
  on_tick:(int -> unit) ->
  on_access:(int -> string -> int array -> bool -> unit) ->
  unit

(** [iter_cells ~params p ~on_load ~on_stmt ~on_store] streams, for every
    statement instance in program order: each cell read (in statement
    order), then the instance itself ([on_stmt name vec], after the loads
    and before the stores), then each cell written.  All index and
    iteration vectors are {e borrowed} buffers, valid only for the
    duration of the callback - copy them to keep them.  This is the
    allocation-free path used by CDAG construction, where input nodes for
    first-read cells must be numbered before the compute node that reads
    them. *)
val iter_cells :
  params:(string * int) list ->
  t ->
  on_load:(string -> int array -> unit) ->
  on_stmt:(string -> int array -> unit) ->
  on_store:(string -> int array -> unit) ->
  unit

(** Number of statement instances at concrete parameters. *)
val count_instances : params:(string * int) list -> t -> int

(** Exact number of accesses (reads plus writes) {!iter_accesses} will emit
    at concrete parameters, computed without enumerating instances:
    rectangular sub-nests collapse to multiplications.  Lets trace builders
    allocate exactly once. *)
val n_accesses : params:(string * int) list -> t -> int

(** Arrays read before ever being written (the program inputs), in first-use
    order, at concrete parameters. *)
val input_arrays : params:(string * int) list -> t -> string list

val pp : Format.formatter -> t -> unit
