(* Input validation of the kernel APIs: shape preconditions must be
   rejected loudly, not produce garbage. *)

module K = Iolb_kernels
module Matrix = Iolb_kernels.Matrix

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

let test_shape_preconditions () =
  let wide = Matrix.random 3 5 in
  Alcotest.(check bool) "mgs needs m >= n" true
    (raises_invalid (fun () -> K.Mgs.factor wide));
  Alcotest.(check bool) "geqr2 needs m >= n" true
    (raises_invalid (fun () -> K.Householder.geqr2 wide));
  Alcotest.(check bool) "gebd2 needs m >= n" true
    (raises_invalid (fun () -> K.Gebd2.reduce wide));
  Alcotest.(check bool) "gehd2 needs square" true
    (raises_invalid (fun () -> K.Gehd2.reduce wide));
  Alcotest.(check bool) "cholesky needs square" true
    (raises_invalid (fun () -> K.Cholesky.factor wide));
  Alcotest.(check bool) "lu needs square" true
    (raises_invalid (fun () -> K.Lu.factor wide));
  Alcotest.(check bool) "gemm needs compatible dims" true
    (raises_invalid (fun () -> K.Gemm.run wide wide));
  Alcotest.(check bool) "trsm needs matching sizes" true
    (raises_invalid (fun () -> K.Trsm.solve wide wide))

let test_numeric_preconditions () =
  (* Cholesky on a non-SPD matrix must fail, not return NaNs. *)
  let not_spd = Matrix.init 3 3 (fun i j -> if i = j then -1. else 0.) in
  Alcotest.(check bool) "cholesky rejects non-SPD" true
    (raises_invalid (fun () -> K.Cholesky.factor not_spd));
  (* LU with a structurally zero pivot. *)
  let singular = Matrix.create 3 3 in
  Alcotest.(check bool) "lu rejects zero pivot" true
    (raises_invalid (fun () -> K.Lu.factor singular))

let test_tiled_spec_preconditions () =
  Alcotest.(check bool) "tiled mgs: b must divide n" true
    (raises_invalid (fun () -> K.Mgs.tiled_spec ~m:8 ~n:6 ~b:4));
  Alcotest.(check bool) "tiled mgs: b >= 1" true
    (raises_invalid (fun () -> K.Mgs.tiled_spec ~m:8 ~n:6 ~b:0));
  Alcotest.(check bool) "tiled a2v: b must divide n" true
    (raises_invalid (fun () -> K.Householder.tiled_spec ~m:8 ~n:6 ~b:4));
  Alcotest.(check bool) "tiled gemm: b must divide all" true
    (raises_invalid (fun () -> K.Gemm.tiled_spec ~m:8 ~n:6 ~k:8 ~b:4));
  Alcotest.(check bool) "tiled right mgs: b must divide n" true
    (raises_invalid (fun () -> K.Mgs.tiled_right_spec ~m:8 ~n:6 ~b:4))

let test_tiled_block_one_matches_untiled_io_order () =
  (* b = 1 tiled MGS is the plain left-looking column algorithm: its trace
     is valid and its CDAG executes the same multiset of statement kinds
     as b = 2 at the same sizes (same work, different order). *)
  let count spec =
    Iolb_ir.Program.count_instances ~params:[] spec
  in
  Alcotest.(check int) "same work across block sizes"
    (count (K.Mgs.tiled_spec ~m:8 ~n:4 ~b:1))
    (count (K.Mgs.tiled_spec ~m:8 ~n:4 ~b:2))

let suite =
  [
    Alcotest.test_case "shape preconditions" `Quick test_shape_preconditions;
    Alcotest.test_case "numeric preconditions" `Quick test_numeric_preconditions;
    Alcotest.test_case "tiled spec preconditions" `Quick
      test_tiled_spec_preconditions;
    Alcotest.test_case "tiled work invariant across block sizes" `Quick
      test_tiled_block_one_matches_untiled_io_order;
  ]
