lib/kernels/householder.mli: Iolb_ir Matrix
