module P = Iolb_symbolic.Polynomial
module R = Iolb_symbolic.Ratfun
module Rat = Iolb_util.Rat
module Budget = Iolb_util.Budget
module Engine_error = Iolb_util.Engine_error
module K = Iolb_kernels

type entry = {
  kernel : Paper_formulas.kernel;
  display : string;
  program : Iolb_ir.Program.t;
  verify_params : (string * int) list;
  grid : (int * int * int) list;
  finalize : R.t -> R.t;
}

let default_grid =
  [
    (64, 32, 16);
    (64, 32, 256);
    (128, 64, 64);
    (256, 64, 1024);
    (256, 128, 4096);
    (512, 128, 1024);
  ]

(* GEHD2 is square (M is the loop-split point, not a matrix size); its
   bounds are functions of N and S only after the split parameter is
   instantiated at M = N/2 - 1 as in the proof of Theorem 9. *)
let gehd2_split_subst =
  P.add (P.scale Rat.half (P.var "N")) (P.of_int (-1))

let registry =
  [
    {
      kernel = Paper_formulas.Mgs;
      display = "MGS";
      program = K.Mgs.spec;
      verify_params = [ ("M", 6); ("N", 4) ];
      grid = default_grid;
      finalize = Fun.id;
    };
    {
      kernel = Paper_formulas.A2v;
      display = "QR HH A2V";
      program = K.Householder.a2v_spec;
      verify_params = [ ("M", 7); ("N", 4) ];
      grid = default_grid;
      finalize = Fun.id;
    };
    {
      kernel = Paper_formulas.V2q;
      display = "QR HH V2Q";
      program = K.Householder.v2q_spec;
      verify_params = [ ("M", 7); ("N", 4) ];
      grid = default_grid;
      finalize = Fun.id;
    };
    {
      kernel = Paper_formulas.Gebd2;
      display = "GEBD2";
      program = K.Gebd2.spec;
      verify_params = [ ("M", 7); ("N", 4) ];
      grid = default_grid;
      finalize = Fun.id;
    };
    {
      kernel = Paper_formulas.Gehd2;
      display = "GEHD2";
      program = K.Gehd2.split_spec;
      verify_params = [ ("N", 9); ("M", 3) ];
      grid =
        [
          (* m is ignored for GEHD2 (square N x N). *)
          (0, 64, 16);
          (0, 64, 128);
          (0, 128, 64);
          (0, 256, 1024);
          (0, 512, 4096);
        ];
      finalize = R.subst "M" gehd2_split_subst;
    };
  ]

let baselines =
  [
    ("gemm", K.Gemm.spec, [ ("M", 4); ("N", 4); ("K", 4) ]);
    ("cholesky", K.Cholesky.spec, [ ("N", 8) ]);
    ("lu", K.Lu.spec, [ ("N", 8) ]);
    ("syrk", K.Syrk.spec, [ ("N", 6); ("K", 5) ]);
    ("syr2k", K.Syr2k.spec, [ ("N", 6); ("K", 5) ]);
    ("trsm", K.Trsm.spec, [ ("N", 6); ("M", 4) ]);
    ("trmm", K.Trmm.spec, [ ("M", 6); ("N", 4) ]);
    ("atax", K.Atax.spec, [ ("M", 6); ("N", 4) ]);
    ("jacobi1d", K.Jacobi1d.spec, [ ("T", 4); ("N", 8) ]);
  ]

let find name =
  match
    List.find_opt
      (fun e ->
        String.lowercase_ascii e.display = String.lowercase_ascii name
        || Paper_formulas.kernel_name e.kernel = String.lowercase_ascii name
        || e.program.Iolb_ir.Program.name = name)
      registry
  with
  | Some e -> e
  | None -> raise Not_found

let find_checked name =
  match find name with
  | e -> Ok e
  | exception Not_found ->
      let paper =
        List.map (fun e -> Paper_formulas.kernel_name e.kernel) registry
      in
      let baseline = List.map (fun (n, _, _) -> n) baselines in
      Error
        (Engine_error.Invalid_input
           (Printf.sprintf
              "unknown kernel %S (paper kernels: %s; baselines: %s; or pass \
               a DSL source with --file PROG.iolb)"
              name
              (String.concat ", " paper)
              (String.concat ", " baseline)))

type analysis = {
  entry : entry;
  hourglasses : Hourglass.t list;
  bounds : Derive.t list;
  degradation : string option;
}

let analyze_checked ?(budget = Budget.unlimited) entry =
  Engine_error.protect @@ fun () ->
  (* Detection for display only: if it blows the budget here, the ladder
     below records the abort; an empty pattern list is an honest display. *)
  let hourglasses =
    match
      Hourglass.detect_verified ~budget ~params:entry.verify_params
        entry.program
    with
    | hgs -> hgs
    | exception Budget.Exhausted _ -> []
  in
  Result.map
    (fun (o : Derive.outcome) ->
      {
        entry;
        hourglasses;
        bounds =
          List.map
            (fun (b : Derive.t) ->
              let valid =
                {
                  Derive.s_lo = entry.finalize b.Derive.valid.Derive.s_lo;
                  s_hi =
                    Option.map entry.finalize b.Derive.valid.Derive.s_hi;
                }
              in
              {
                b with
                Derive.formula = entry.finalize b.Derive.formula;
                valid;
                validity = Derive.region_validity valid;
                s_max = valid.Derive.s_hi;
              })
            o.bounds;
        degradation = o.degradation;
      })
    (Derive.analyze_ladder ~budget ~verify_params:entry.verify_params
       entry.program)

let analyze ?budget entry =
  match analyze_checked ?budget entry with
  | Ok a -> a
  | Error e -> Engine_error.raise_error e

(* Memoized unlimited-budget analyses.  The registry is a fixed set of
   entries analysed identically by many consumers (every bench section, the
   CLI); the symbolic derivation is deterministic, so computing each entry
   once per process is observationally equivalent.  Keyed by display name
   (unique in the registry).  The table is the only shared mutable state:
   lookups and insertions are mutex-protected, while the analysis itself
   runs outside the lock so distinct entries can warm up concurrently; on a
   race the first insertion wins (both candidates are equal anyway). *)
let memo : (string, analysis) Hashtbl.t = Hashtbl.create 8
let memo_mutex = Mutex.create ()

(* Counters let the bound service's [stats] endpoint (and the tests)
   observe memoization directly instead of probing physical equality.
   A lost insertion race still counts as a miss: the analysis ran. *)
type cache_stats = { hits : int; misses : int; entries : int }

let memo_hits = Atomic.make 0
let memo_misses = Atomic.make 0

let cache_stats () =
  {
    hits = Atomic.get memo_hits;
    misses = Atomic.get memo_misses;
    entries = Mutex.protect memo_mutex (fun () -> Hashtbl.length memo);
  }

let analyze_cached entry =
  let key = entry.display in
  match Mutex.protect memo_mutex (fun () -> Hashtbl.find_opt memo key) with
  | Some a ->
      Atomic.incr memo_hits;
      a
  | None ->
      Atomic.incr memo_misses;
      let a = analyze entry in
      Mutex.protect memo_mutex (fun () ->
          match Hashtbl.find_opt memo key with
          | Some winner -> winner
          | None ->
              Hashtbl.add memo key a;
              a)

let analyze_all ?jobs () = Iolb_util.Pool.map ?jobs analyze_cached registry

let params_of entry ~m ~n =
  match entry.kernel with
  | Paper_formulas.Gehd2 -> [ ("N", n) ]
  | _ -> [ ("M", m); ("N", n) ]

(* Concrete instantiation parameters for CDAG/trace building.  GEHD2 is
   square: N is the matrix size and M the loop-split point, pinned at
   M = N/2 - 1 as in the proof of Theorem 9 - which requires n >= 4 for the
   split domain to be non-degenerate. *)
let concrete_params entry ~m ~n =
  match entry.kernel with
  | Paper_formulas.Gehd2 ->
      if n < 4 then
        Error
          (Engine_error.Invalid_input
             (Printf.sprintf
                "GEHD2 needs n >= 4 (loop split M = n/2 - 1 must be >= 1), got n = %d"
                n))
      else Ok [ ("N", n); ("M", (n / 2) - 1) ]
  | _ ->
      if m < 1 || n < 1 then
        Error
          (Engine_error.Invalid_input
             (Printf.sprintf "need m >= 1 and n >= 1, got m = %d, n = %d" m n))
      else Ok [ ("M", m); ("N", n) ]

let eval_best a ~technique ~m ~n ~s =
  let keep (b : Derive.t) =
    match (technique, b.technique) with
    | `Classical, Derive.Classical -> true
    | `Hourglass, (Derive.Hourglass | Derive.Hourglass_small_s) -> true
    | _ -> false
  in
  let params = params_of a.entry ~m ~n in
  Derive.best ~params ~s (List.filter keep a.bounds)
  |> Option.map (fun b -> Derive.eval b ~params ~s)

type comparison_row = { m : int; n : int; s : int; engine : float; paper : float }

let compare_with_paper a ~technique =
  let paper_formula =
    match technique with
    | `Classical -> Paper_formulas.fig5_old a.entry.kernel
    | `Hourglass -> Paper_formulas.fig5_new a.entry.kernel
  in
  List.filter_map
    (fun (m, n, s) ->
      match eval_best a ~technique ~m ~n ~s with
      | None -> None
      | Some engine ->
          Some { m; n; s; engine; paper = Paper_formulas.eval_at paper_formula ~m ~n ~s })
    a.entry.grid

let pp_analysis fmt a =
  Format.fprintf fmt "@[<v>== %s ==@," a.entry.display;
  (match a.hourglasses with
  | [] -> Format.fprintf fmt "no verified hourglass pattern@,"
  | hs ->
      List.iter
        (fun h ->
          Format.fprintf fmt "%a@," Hourglass.pp h;
          (* Regime decomposition of the sharpened Brascamp-Lieb LP: one
             parametric sweep over W = K^theta, theta in [1/2, 1]. *)
          let dims, projs = Derive.sharpened_projections a.entry.program h in
          match Bl.exponent_regions ~dims projs with
          | None -> ()
          | Some rs ->
              Format.fprintf fmt "  |I'| regimes (W = K^theta):@,";
              List.iter
                (fun r -> Format.fprintf fmt "    %a@," Bl.pp_exponent_region r)
                rs)
        hs);
  (match a.degradation with
  | None -> ()
  | Some why -> Format.fprintf fmt "degraded: %s@," why);
  List.iter (fun b -> Format.fprintf fmt "%a@," Derive.pp b) a.bounds;
  Format.fprintf fmt "@]"
