(* Quickstart: define an affine program, detect its hourglass pattern, and
   derive both the classical and the hourglass I/O lower bounds.

   Run with:  dune exec examples/quickstart.exe *)

module Program = Iolb_ir.Program
module Access = Iolb_ir.Access
module Affine = Iolb_poly.Affine

let () =
  (* 1. A program can come from the built-in kernel library... *)
  let mgs = Iolb_kernels.Mgs.spec in
  Format.printf "%a@." Program.pp mgs;

  (* 2. ... or be built directly.  Here is a toy reduce-broadcast loop:
        for k: for j: { SR: acc[j] += A[j][k-ish]...; }  We reuse MGS. *)

  (* 3. Detect the hourglass pattern and verify it on a concrete CDAG. *)
  let params = [ ("M", 8); ("N", 5) ] in
  let patterns = Iolb.Hourglass.detect_verified ~params mgs in
  List.iter (fun h -> Format.printf "found: %a@." Iolb.Hourglass.pp h) patterns;

  (* 4. Derive the bounds. *)
  let bounds = Iolb.Derive.analyze ~verify_params:params mgs in
  List.iter (fun b -> Format.printf "%a@." Iolb.Derive.pp b) bounds;

  (* 5. Evaluate them at concrete sizes and compare with the I/O of an
        actual execution (the red-white pebble game on the CDAG). *)
  let cdag = Iolb_cdag.Cdag.of_program ~params mgs in
  let schedule = Iolb_pebble.Game.program_schedule cdag in
  let s = 16 in
  let measured = (Iolb_pebble.Game.run cdag ~s ~schedule).loads in
  Format.printf "@.At M=8, N=5, S=%d:@." s;
  List.iter
    (fun b ->
      let name =
        match b.Iolb.Derive.technique with
        | Iolb.Derive.Classical -> "classical bound"
        | Iolb.Derive.Hourglass -> "hourglass bound"
        | Iolb.Derive.Hourglass_small_s -> "hourglass bound (small S)"
        | Iolb.Derive.Trivial -> "trivial bound (input footprint)"
      in
      let v = Iolb.Derive.eval b ~params ~s in
      (* The small-cache variant only applies when S <= W = M. *)
      if v < 0. then Format.printf "  %-28s (not applicable here)@." name
      else Format.printf "  %-28s >= %.1f@." name v)
    bounds;
  Format.printf "  measured loads (program order) = %d@." measured
