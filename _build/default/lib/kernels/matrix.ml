type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create";
  { rows; cols; data = Array.make (rows * cols) 0. }

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      set m i j (f i j)
    done
  done;
  m

let copy m = { m with data = Array.copy m.data }
let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let random ?(seed = 42) rows cols =
  let state = Random.State.make [| seed; rows; cols |] in
  init rows cols (fun _ _ -> Random.State.float state 2. -. 1.)

let dims m = (m.rows, m.cols)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          set c i j (get c i j +. (aik *. get b k j))
        done
    done
  done;
  c

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let sub a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix.sub: dimension mismatch";
  { a with data = Array.mapi (fun idx v -> v -. b.data.(idx)) a.data }

let frobenius m =
  sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0. m.data)

let max_abs m = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. m.data

let submatrix m ~row ~col ~rows ~cols =
  if row < 0 || col < 0 || row + rows > m.rows || col + cols > m.cols then
    invalid_arg "Matrix.submatrix: out of range";
  init rows cols (fun i j -> get m (row + i) (col + j))

let rel_error a b =
  let denom = Float.max 1. (frobenius a) in
  frobenius (sub a b) /. denom

let orthogonality_error q =
  let qtq = mul (transpose q) q in
  frobenius (sub qtq (identity q.cols))

let entrywise_ok pred ?(tol = 1e-10) m =
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      if (not (pred i j)) && Float.abs (get m i j) > tol then ok := false
    done
  done;
  !ok

let is_upper_triangular ?tol m = entrywise_ok (fun i j -> j >= i) ?tol m

let is_upper_bidiagonal ?tol m =
  entrywise_ok (fun i j -> j = i || j = i + 1) ?tol m

let is_upper_hessenberg ?tol m = entrywise_ok (fun i j -> j >= i - 1) ?tol m

let pp fmt m =
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      Format.fprintf fmt "%10.4f " (get m i j)
    done;
    Format.pp_print_newline fmt ()
  done
