module Interner = Iolb_ir.Interner
module Cplan = Iolb_ir.Cplan
module Budget = Iolb_util.Budget

type cell = string * int array

type event = Read of cell | Write of cell

type t = {
  cells : int array; (* per event: interned cell id; may be oversized *)
  writes : bool array; (* per event: write flag *)
  len : int; (* number of events; only cells.(0..len-1) are meaningful *)
  pool : Interner.t;
}

(* Shared builder: push events as (cell, is_write) pairs. *)
type builder = {
  mutable ids : int array;
  mutable flags : bool array;
  mutable len : int;
  p : Interner.t;
}

let builder size =
  {
    ids = Array.make (max size 16) 0;
    flags = Array.make (max size 16) false;
    p = Interner.create ();
    len = 0;
  }

let push_id b id is_write =
  if b.len = Array.length b.ids then begin
    let cap = 2 * b.len in
    let ids = Array.make cap 0 and flags = Array.make cap false in
    Array.blit b.ids 0 ids 0 b.len;
    Array.blit b.flags 0 flags 0 b.len;
    b.ids <- ids;
    b.flags <- flags
  end;
  b.ids.(b.len) <- id;
  b.flags.(b.len) <- is_write;
  b.len <- b.len + 1

let push b cell is_write = push_id b (Interner.intern b.p cell) is_write

(* The builder's (possibly oversized) arrays are adopted as-is: freezing a
   multi-hundred-thousand-event trace must not copy it. *)
let freeze b = { cells = b.ids; writes = b.flags; len = b.len; pool = b.p }

(* Address-space cap for compiled (dense-address) production: consumers
   index flat [Cplan.addr_space]-sized remap tables, one per domain in
   the sharded sweep, so pathologically sparse hulls (giant strides
   around a tiny footprint) must not allocate gigabytes.  2^23 entries =
   64 MB of table at most; beyond that the streaming producer's per-cell
   hashing is the better trade. *)
let max_dense_addr_space = 1 lsl 23

let dense_plan ~params p =
  match
    let plan = Cplan.make ~params p in
    if Cplan.addr_space plan > max_dense_addr_space then None else Some plan
  with
  | (exception Invalid_argument _) ->
      (* rank mismatch or hull overflow: the compiler cannot represent
         this program; stream it instead *)
      None
  | r -> r

let of_program ?(budget = Budget.unlimited) ~params p =
  (* Exact pre-count (closed-form over the loop nest): the arrays never
     grow, so a multi-hundred-thousand-event trace costs one allocation
     and zero copies.  Events come from the compiled producer when the
     program admits one - flat address arithmetic, one [decode]+intern
     per DISTINCT cell instead of one hash per event - and otherwise
     from the chunked [Stream] the sharded/sampled sweeps consume.
     Either way the budget gate is the same: one [Cdag_build] checkpoint
     per statement instance, counted against the node cap. *)
  let n = Iolb_ir.Program.n_accesses ~params p in
  let b = builder n in
  (match dense_plan ~params p with
  | Some plan ->
      let unlimited = Budget.is_unlimited budget in
      let remap = Array.make (max (Cplan.addr_space plan) 1) (-1) in
      let ninst = ref 0 in
      let ids = b.ids and flags = b.flags in
      let len = ref 0 in
      Cplan.iter plan ~lo:0 ~hi:n
        ~on_instance:(fun () ->
          if not unlimited then begin
            Budget.checkpoint budget Budget.Cdag_build;
            incr ninst;
            Budget.check_node_cap budget Budget.Cdag_build !ninst
          end)
        ~on_access:(fun _pos addr w ->
          let id =
            match Array.unsafe_get remap addr with
            | -1 ->
                let id = Interner.intern b.p (Cplan.decode plan addr) in
                remap.(addr) <- id;
                id
            | id -> id
          in
          Array.unsafe_set ids !len id;
          Array.unsafe_set flags !len w;
          incr len);
      b.len <- !len
  | None ->
      Iolb_ir.Stream.iter_chunks ~budget ~params ~interner:b.p p (fun ch ->
          Array.blit ch.ids 0 b.ids b.len ch.len;
          Array.blit ch.writes 0 b.flags b.len ch.len;
          b.len <- b.len + ch.len));
  freeze b

let of_events evs =
  let b = builder (List.length evs) in
  List.iter
    (function Read c -> push b c false | Write c -> push b c true)
    evs;
  freeze b

let length (t : t) = t.len
let footprint t = Interner.count t.pool
let cell_id t i = t.cells.(i)
let is_write t i = t.writes.(i)
let cells (t : t) = t.cells
let write_flags (t : t) = t.writes
let cell t id = Interner.key t.pool id

let event t i =
  let c = cell t t.cells.(i) in
  if t.writes.(i) then Write c else Read c

let to_events t = List.init (length t) (event t)

let pp_event fmt e =
  let pp_cell fmt (a, idx) =
    Format.fprintf fmt "%s(%s)" a
      (String.concat "," (List.map string_of_int (Array.to_list idx)))
  in
  match e with
  | Read c -> Format.fprintf fmt "R %a" pp_cell c
  | Write c -> Format.fprintf fmt "W %a" pp_cell c
