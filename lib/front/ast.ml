(* Located surface syntax produced by the parser, before elaboration to
   [Iolb_ir.Program].  Expressions keep products so the elaborator can
   point at the exact '*' of an affinity violation. *)

type expr =
  | Int of int * Loc.t
  | Var of string * Loc.t
  | Neg of expr * Loc.t
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr * Loc.t  (* location of the '*' *)

let rec expr_loc = function
  | Int (_, l) | Var (_, l) | Neg (_, l) | Mul (_, _, l) -> l
  | Add (a, _) | Sub (a, _) -> expr_loc a

type access = { arr : string; arr_loc : Loc.t; index : expr list }

type cmp = Cge | Cle | Cgt | Clt | Ceq

type constr = { lhs : expr; cmp : cmp; rhs : expr }

type node =
  | For of {
      var : string;
      var_loc : Loc.t;
      first : expr;  (* lower bound, or upper bound of a downto loop *)
      second : expr;
      down : bool;
      body : node list;
    }
  | Stmt of {
      sname : string;
      sloc : Loc.t;
      writes : access list;
      reads : access list;
    }

type kernel = {
  kname : string;
  kname_loc : Loc.t;
  params : (string * Loc.t) list;
  assumes : constr list;
  verify : (string * Loc.t * int) list;
  body : node list;
}
