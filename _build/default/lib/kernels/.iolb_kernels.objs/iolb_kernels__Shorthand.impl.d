lib/kernels/shorthand.ml: Iolb_ir Iolb_poly
