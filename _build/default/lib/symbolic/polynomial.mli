(** Multivariate polynomials with exact rational coefficients.

    This is the symbolic substrate of the lower-bound engine: iteration-domain
    cardinalities, hourglass widths and the final bound formulas are all
    represented as polynomials (or ratios of polynomials, see {!Ratfun}) in
    the program parameters (e.g. [M], [N], [S]).

    Polynomials are kept in canonical form: a map from monomials to non-zero
    rational coefficients, so structural equality is semantic equality. *)

type t

val zero : t
val one : t
val of_rat : Iolb_util.Rat.t -> t
val of_int : int -> t

(** [var x] is the polynomial consisting of the single variable [x]. *)
val var : string -> t

val monomial : Iolb_util.Rat.t -> Monomial.t -> t

(** [terms p] lists (coefficient, monomial) pairs; coefficients are non-zero
    and monomials distinct, in increasing monomial order. *)
val terms : t -> (Iolb_util.Rat.t * Monomial.t) list

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : Iolb_util.Rat.t -> t -> t

(** [pow p n] for non-negative [n]. @raise Invalid_argument if [n < 0]. *)
val pow : t -> int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool

(** [is_constant p] is [Some c] iff [p] is the constant polynomial [c]. *)
val is_constant : t -> Iolb_util.Rat.t option

val degree : t -> int
val degree_in : string -> t -> int
val vars : t -> string list

(** [coeff_of p m] is the coefficient of monomial [m] (zero if absent). *)
val coeff_of : t -> Monomial.t -> Iolb_util.Rat.t

(** [eval env p] evaluates [p]; @raise Not_found on unbound variables. *)
val eval : (string -> Iolb_util.Rat.t) -> t -> Iolb_util.Rat.t

(** [eval_int bindings p] evaluates with integer values for the variables
    and returns the exact rational result. *)
val eval_int : (string * int) list -> t -> Iolb_util.Rat.t

(** [eval_float bindings p] evaluates in floating point; use for large
    parameter values where the exact evaluation could overflow native ints. *)
val eval_float : (string * int) list -> t -> float

(** [eval_float_env env p] evaluates in floating point with an arbitrary
    variable environment (e.g. to bind [sqrtS] to a non-integer value). *)
val eval_float_env : (string -> float) -> t -> float

(** [subst x q p] substitutes polynomial [q] for every occurrence of [x]. *)
val subst : string -> t -> t -> t

(** [as_univariate x p] views [p] as a polynomial in [x]: returns the list
    [(c_0, c_1, ..., c_d)] of coefficient polynomials (not containing [x])
    such that [p = sum c_i * x^i]. *)
val as_univariate : string -> t -> t list

(** [sum_over x ~lo ~hi p] is the closed-form polynomial equal to
    [sum_{x = lo}^{hi} p] (Faulhaber summation), where [lo] and [hi] are
    polynomials not containing [x].  The result is the standard polynomial
    extension used in polyhedral counting: it agrees with the concrete sum
    whenever [hi >= lo - 1] (in particular it is 0 when [hi = lo - 1]). *)
val sum_over : string -> lo:t -> hi:t -> t -> t

(** [faulhaber m] is the polynomial [F_m] in the variable ["n"] with
    [F_m(n) = sum_{k=0}^{n} k^m] for all integers [n >= -1]. *)
val faulhaber : int -> t

(** Leading term of [p] when every variable goes to infinity at the same
    rate: the terms of maximal total degree. *)
val leading_terms : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( ~- ) : t -> t
end
