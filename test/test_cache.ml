(* Cache simulator: hand-computed traces, policy sandwich (cold <= OPT <=
   LRU misses), and stack-property checks on random traces. *)

module T = Iolb_pebble.Trace
module C = Iolb_pebble.Cache

let cell a i = (a, [| i |])
let r a i = T.Read (cell a i)
let w a i = T.Write (cell a i)
let tr = T.of_events

let test_cold () =
  let trace = tr [ r "A" 0; r "A" 1; r "A" 0; w "B" 0; r "B" 0 ] in
  let s = C.cold trace in
  Alcotest.(check int) "loads" 2 s.loads;
  Alcotest.(check int) "hits" 2 s.read_hits;
  Alcotest.(check int) "stores (dirty B)" 1 s.stores

let test_lru_eviction () =
  (* size 2; A0 A1 A2 evicts A0 (LRU); rereading A0 misses. *)
  let trace = tr [ r "A" 0; r "A" 1; r "A" 2; r "A" 0 ] in
  let s = C.lru ~size:2 trace in
  Alcotest.(check int) "loads" 4 s.loads;
  Alcotest.(check int) "hits" 0 s.read_hits

let test_opt_beats_lru () =
  (* size 2; A0 A1 A2 A1: OPT evicts A0 when loading A2 (A1 reused sooner is
     kept... actually OPT keeps A1 because its next use is nearer), so A1
     hits; LRU evicts A0 as well here, so craft a case where they differ:
     A0 A1 A2 A0 with size 2: LRU evicts A0 at A2 -> miss on A0;
     OPT evicts A1 (never used again) -> hit on A0. *)
  let trace = tr [ r "A" 0; r "A" 1; r "A" 2; r "A" 0 ] in
  let lru = C.lru ~size:2 trace and opt = C.opt ~size:2 trace in
  Alcotest.(check int) "lru loads" 4 lru.loads;
  Alcotest.(check int) "opt loads" 3 opt.loads

let test_write_allocate_no_fetch () =
  (* Writes do not count as loads, but dirty evictions count as stores. *)
  let trace = tr [ w "A" 0; w "A" 1; w "A" 2; r "A" 0 ] in
  let s = C.lru ~size:2 ~flush:false trace in
  Alcotest.(check int) "loads (A0 evicted, reloaded)" 1 s.loads;
  Alcotest.(check int) "stores (dirty evictions)" 2 s.stores

let test_opt_dead_value () =
  (* A value overwritten before re-read is dead: OPT evicts it first. *)
  let trace = tr [ r "A" 0; r "A" 1; r "A" 2; w "A" 1; r "A" 0 ] in
  (* size 2: at (r A2), A1's next access is a write -> dead -> evict A1,
     keep A0 -> final r A0 hits. *)
  let s = C.opt ~size:2 trace in
  Alcotest.(check int) "loads" 3 s.loads

let random_trace_gen =
  let open QCheck2.Gen in
  list_size (int_range 1 200)
    (map2
       (fun k is_w -> if is_w then w "A" k else r "A" k)
       (int_range 0 12) bool)

let prop name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:200 random_trace_gen f)

let suite =
  [
    Alcotest.test_case "cold misses" `Quick test_cold;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction;
    Alcotest.test_case "opt beats lru on Belady's example" `Quick
      test_opt_beats_lru;
    Alcotest.test_case "write-allocate without fetch" `Quick
      test_write_allocate_no_fetch;
    Alcotest.test_case "opt exploits dead values" `Quick test_opt_dead_value;
    prop "cold <= opt <= lru (loads)" (fun events ->
        let trace = tr events in
        let cold = (C.cold trace).loads in
        let opt = (C.opt ~size:4 trace).loads in
        let lru = (C.lru ~size:4 trace).loads in
        cold <= opt && opt <= lru);
    prop "bigger cache never hurts LRU (inclusion)" (fun events ->
        let trace = tr events in
        (C.lru ~size:8 trace).loads <= (C.lru ~size:4 trace).loads);
    prop "bigger cache never hurts OPT" (fun events ->
        let trace = tr events in
        (C.opt ~size:8 trace).loads <= (C.opt ~size:4 trace).loads);
    prop "huge cache = cold misses" (fun events ->
        let trace = tr events in
        (C.lru ~size:10_000 trace).loads = (C.cold trace).loads
        && (C.opt ~size:10_000 trace).loads = (C.cold trace).loads);
    prop "loads + hits = reads" (fun events ->
        let reads =
          List.length
            (List.filter (function T.Read _ -> true | _ -> false) events)
        in
        let s = C.lru ~size:4 (tr events) in
        s.loads + s.read_hits = reads);
  ]
