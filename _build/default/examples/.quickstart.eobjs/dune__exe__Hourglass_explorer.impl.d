examples/hourglass_explorer.ml: Array Format Iolb Iolb_cdag Iolb_ir List Option Printf String Sys
