(** Affine constraints: [e >= 0] or [e = 0] for an affine expression [e]. *)

type kind = Ge | Eq

type t = { expr : Affine.t; kind : kind }

(** [ge e] is the constraint [e >= 0]. *)
val ge : Affine.t -> t

(** [eq e] is the constraint [e = 0]. *)
val eq : Affine.t -> t

(** [le_of a b] is [a <= b]; [ge_of a b] is [a >= b]; [eq_of a b] is [a = b]. *)
val le_of : Affine.t -> Affine.t -> t

val ge_of : Affine.t -> Affine.t -> t
val eq_of : Affine.t -> Affine.t -> t

(** [lt_of a b] is the integer strictness rewrite [a <= b - 1]. *)
val lt_of : Affine.t -> Affine.t -> t

val satisfied : (string -> int) -> t -> bool

(** [specialize env c] substitutes the variables on which [env] is defined. *)
val specialize : (string -> int option) -> t -> t

(** [is_trivial c] is [Some true] if [c] holds for every assignment
    ([Some false] if it holds for none, [None] if it depends). *)
val is_trivial : t -> bool option

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
