test/test_small_modules.ml: Alcotest Array Iolb Iolb_cdag Iolb_ir Iolb_kernels Iolb_pebble Iolb_poly Iolb_symbolic Iolb_util List Printf
