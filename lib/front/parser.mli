(** Recursive-descent parser for the affine-program DSL.

    Grammar (see the README for the worked version):
    {v
    kernel  := 'kernel' IDENT '(' [ IDENT {',' IDENT} ] ')'
               { 'assume' constr {',' constr}
               | 'verify' IDENT '=' int {',' IDENT '=' int} }
               '{' {node} '}'
    node    := 'for' IDENT '=' expr ('..' | 'downto') expr '{' {node} '}'
             | IDENT ':' [ access {',' access} '=' ] 'f' '(' [ access
               {',' access} ] ')' ';'
    access  := IDENT {'[' expr ']'}
    constr  := expr ('>=' | '<=' | '>' | '<' | '=' | '==') expr
    expr    := term {('+' | '-') term}
    term    := factor {'*' factor}
    factor  := INT | IDENT | '-' factor | '(' expr ')'
    v}

    Parse errors carry the offending token's location and the expected
    token set. *)

val parse : Lexer.located array -> (Ast.kernel, Diag.t) result
