(* Internal shorthands for writing kernel specifications.  Not exported in
   the library interface; each kernel module opens this locally. *)

module Affine = Iolb_poly.Affine
module Constr = Iolb_poly.Constr
module Access = Iolb_ir.Access
module Program = Iolb_ir.Program

let v = Affine.var
let c = Affine.const
let ( +! ) = Affine.add
let ( -! ) = Affine.sub

(* 2-D, 1-D and scalar accesses. *)
let a2 name i j = Access.make name [ i; j ]
let a1 name i = Access.make name [ i ]
let sc = Access.scalar

let loop = Program.loop
let loop_lt = Program.loop_lt
let loop_rev = Program.loop_rev
let stmt = Program.stmt
