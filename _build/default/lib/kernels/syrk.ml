open Shorthand

let spec =
  Program.make ~name:"syrk" ~params:[ "N"; "K" ]
    ~assumptions:[ Constr.ge_of (v "N") (c 1); Constr.ge_of (v "K") (c 1) ]
    [
      loop_lt "i" (c 0) (v "N")
        [
          loop "j" (c 0) (v "i")
            [
              stmt "C0" ~writes:[ a2 "C" (v "i") (v "j") ] ~reads:[];
              loop_lt "k" (c 0) (v "K")
                [
                  stmt "SC"
                    ~writes:[ a2 "C" (v "i") (v "j") ]
                    ~reads:
                      [
                        a2 "C" (v "i") (v "j");
                        a2 "A" (v "i") (v "k");
                        a2 "A" (v "j") (v "k");
                      ];
                ];
            ];
        ];
    ]

let run a = Matrix.mul a (Matrix.transpose a)
