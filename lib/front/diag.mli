(** Front-end diagnostics: a located message.

    Every lexing, parsing and elaboration failure is a [Diag.t]; mapped
    onto the engine's typed-error convention it becomes an
    {!Iolb_util.Engine_error.Invalid_input} (exit code 2), rendered as
    [file:line:col: message]. *)

type t = { loc : Loc.t; msg : string }

val make : Loc.t -> string -> t

(** [makef loc fmt ...] formats the message. *)
val makef : Loc.t -> ('a, unit, string, t) format4 -> 'a

(** ["file:line:col: message"] *)
val to_string : t -> string

(** The exit-code-2 embedding used by the CLI and the bound service. *)
val to_engine_error : t -> Iolb_util.Engine_error.t
