module Rat = Iolb_util.Rat
module P = Polynomial

(* Invariant: den is not the zero polynomial; if num is zero, den is one. *)
type t = { num : P.t; den : P.t }

(* Light normalisation: make the rational content of the denominator 1 and
   its leading sign positive, so constant denominators disappear. *)
let normalise num den =
  if P.is_zero num then { num = P.zero; den = P.one }
  else
    match P.is_constant den with
    | Some c -> { num = P.scale (Rat.inv c) num; den = P.one }
    | None ->
        (* Divide both by the gcd of all coefficient numerators over lcm of
           denominators is overkill; just scale so den's first coefficient
           (in the canonical term order) is +1 if it is +/-1. *)
        let den, num =
          match P.terms den with
          | (c, _) :: _ when Rat.sign c < 0 -> (P.neg den, P.neg num)
          | _ -> (den, num)
        in
        { num; den }

let make num den =
  if P.is_zero den then raise Rat.Division_by_zero;
  normalise num den

let of_poly p = { num = p; den = P.one }
let of_rat c = of_poly (P.of_rat c)
let of_int n = of_poly (P.of_int n)
let var x = of_poly (P.var x)
let zero = of_int 0
let one = of_int 1
let num r = r.num
let den r = r.den
let is_zero r = P.is_zero r.num

let add a b =
  if P.equal a.den b.den then make (P.add a.num b.num) a.den
  else make (P.add (P.mul a.num b.den) (P.mul b.num a.den)) (P.mul a.den b.den)

let neg r = { r with num = P.neg r.num }
let sub a b = add a (neg b)
let mul a b = make (P.mul a.num b.num) (P.mul a.den b.den)

let inv r =
  if is_zero r then raise Rat.Division_by_zero;
  make r.den r.num

let div a b = mul a (inv b)
let scale c r = make (P.scale c r.num) r.den

let pow r n =
  if n >= 0 then make (P.pow r.num n) (P.pow r.den n)
  else make (P.pow r.den (-n)) (P.pow r.num (-n))

let equal a b = P.equal (P.mul a.num b.den) (P.mul b.num a.den)

let as_poly r =
  match P.is_constant r.den with
  | Some c when not (Rat.is_zero c) -> Some (P.scale (Rat.inv c) r.num)
  | _ -> None

let eval env r =
  let d = P.eval env r.den in
  if Rat.is_zero d then raise Rat.Division_by_zero;
  Rat.div (P.eval env r.num) d

let eval_int bindings r =
  let env x =
    match List.assoc_opt x bindings with
    | Some v -> Rat.of_int v
    | None -> raise Not_found
  in
  eval env r

let eval_float bindings r =
  P.eval_float bindings r.num /. P.eval_float bindings r.den

let eval_float_env env r =
  P.eval_float_env env r.num /. P.eval_float_env env r.den
let subst x p r = make (P.subst x p r.num) (P.subst x p r.den)

let vars r =
  List.sort_uniq String.compare (P.vars r.num @ P.vars r.den)

let pp fmt r =
  match P.is_constant r.den with
  | Some c when Rat.equal c Rat.one -> P.pp fmt r.num
  | _ -> Format.fprintf fmt "(%a) / (%a)" P.pp r.num P.pp r.den

let to_string r = Format.asprintf "%a" pp r

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
end
