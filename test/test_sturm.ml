(* Sturm sequences: root counting/isolation on hand-picked polynomials
   plus a property against float root-hunting on random cubics. *)

module St = Iolb_symbolic.Sturm
module Poly = Iolb_symbolic.Polynomial
module Rat = Iolb_util.Rat

let q = Rat.of_int

let test_has_root () =
  (* x^2 - 2: roots +-sqrt 2 *)
  let p = St.of_coeffs [ q (-2); q 0; q 1 ] in
  Alcotest.(check bool) "in [1,2]" true (St.has_root_in p ~lo:(q 1) ~hi:(q 2));
  Alcotest.(check bool)
    "in [-2,-1]" true
    (St.has_root_in p ~lo:(q (-2)) ~hi:(q (-1)));
  Alcotest.(check bool) "in [2,3]" false (St.has_root_in p ~lo:(q 2) ~hi:(q 3));
  (* endpoint root is found: x - 1 on [1, 5] *)
  let l = St.of_coeffs [ q (-1); q 1 ] in
  Alcotest.(check bool) "endpoint" true (St.has_root_in l ~lo:(q 1) ~hi:(q 5));
  (* constant non-zero polynomial has no roots *)
  let c = St.of_coeffs [ q 7 ] in
  Alcotest.(check bool) "constant" false
    (St.has_root_in c ~lo:(q (-10)) ~hi:(q 10))

let test_isolate_quadratic () =
  let p = St.of_coeffs [ q (-2); q 0; q 1 ] in
  let roots = St.isolate_roots p ~lo:(q (-3)) ~hi:(q 3) in
  Alcotest.(check int) "two roots" 2 (List.length roots);
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        "width <= 1" true
        (Rat.compare (Rat.sub b a) Rat.one <= 0);
      Alcotest.(check bool)
        "sign change" true
        (Rat.sign (St.eval p a) * Rat.sign (St.eval p b) < 0))
    roots

let test_isolate_multiple_root () =
  (* (x - 1)^2 (x + 2): a double root counts once. *)
  let x1 = St.of_coeffs [ q (-1); q 1 ] in
  let p = St.mul (St.mul x1 x1) (St.of_coeffs [ q 2; q 1 ]) in
  let roots = St.isolate_roots p ~lo:(q (-5)) ~hi:(q 5) in
  Alcotest.(check int) "two distinct roots" 2 (List.length roots)

let test_of_polynomial () =
  let open Poly.Infix in
  let m = Poly.var "M" in
  let p = (m * m) - Poly.of_int 4 in
  let u = St.of_polynomial ~var:"M" p in
  Alcotest.(check int) "degree 2" 2 (St.degree u);
  Alcotest.(check bool)
    "root at 2" true
    (Rat.is_zero (St.eval u (q 2)));
  Alcotest.check_raises "multivariate rejected" St.Gave_up (fun () ->
      ignore (St.of_polynomial ~var:"M" (m * Poly.var "N")))

let prop_isolate_cubic =
  (* Against closed-form: (x - a)(x - b)(x - c) with known integer roots. *)
  let open QCheck2 in
  let gen =
    let open Gen in
    let* a = int_range (-8) 8 and* b = int_range (-8) 8
    and* c = int_range (-8) 8 in
    return (a, b, c)
  in
  Test.make ~count:200 ~name:"sturm isolates integer cubic roots"
    ~print:(fun (a, b, c) -> Printf.sprintf "(%d, %d, %d)" a b c)
    gen
    (fun (a, b, c) ->
      let lin r = St.of_coeffs [ q (-r); q 1 ] in
      let p = St.mul (lin a) (St.mul (lin b) (lin c)) in
      let expected = List.sort_uniq compare [ a; b; c ] in
      let got = St.isolate_roots p ~lo:(q (-10)) ~hi:(q 10) in
      List.length got = List.length expected
      && List.for_all2
           (fun r (x, y) ->
             Rat.compare x (q r) < 0 && Rat.compare (q r) y <= 0)
           expected got)

let test_certified_sign () =
  (* Far from a root the float sign is certifiable; exactly on a root the
     computed value is 0, inside the error bound, so the scan must answer
     "uncertain" rather than guess. *)
  let p = St.of_coeffs [ q (-2); q 0; q 1 ] in
  Alcotest.(check (option int)) "negative at 0" (Some (-1)) (St.certified_sign p 0);
  Alcotest.(check (option int)) "positive at 3" (Some 1) (St.certified_sign p 3);
  let l = St.of_coeffs [ q (-4); q 1 ] in
  Alcotest.(check (option int)) "root value uncertain" None (St.certified_sign l 4)

let test_possible_root_intervals () =
  (* x^2 - 2 on [-3, 3]: the scan may over-approximate but must flag the
     two unit intervals that really contain the roots. *)
  let p = St.of_coeffs [ q (-2); q 0; q 1 ] in
  let flagged = St.possible_root_intervals p ~lo:(-3) ~hi:3 in
  Alcotest.(check bool) "[-2,-1] flagged" true (List.mem (-2, -1) flagged);
  Alcotest.(check bool) "[1,2] flagged" true (List.mem (1, 2) flagged);
  (* Nothing flagged where the polynomial and all derivatives keep a
     certifiable constant sign (the scan certifies monotone stretches, so
     a derivative sign change is conservatively flagged even when the
     polynomial itself is root-free: check on [1, 5] where x^2 + 100,
     2x and 2 are all positive). *)
  let far = St.of_coeffs [ q 100; q 0; q 1 ] in
  Alcotest.(check (list (pair int int)))
    "x^2+100 root-free on [1,5]" []
    (St.possible_root_intervals far ~lo:1 ~hi:5);
  Alcotest.check_raises "zero polynomial rejected" St.Gave_up (fun () ->
      ignore (St.possible_root_intervals (St.of_coeffs []) ~lo:0 ~hi:1))

let prop_scan_covers_sturm_roots =
  (* Conservativeness against the exact isolator: every Sturm-isolated root
     of an integer cubic lands in some interval flagged by the certified
     float scan (the scan may flag more, never less). *)
  let open QCheck2 in
  let gen =
    let open Gen in
    let* a = int_range (-8) 8 and* b = int_range (-8) 8
    and* c = int_range (-8) 8 in
    return (a, b, c)
  in
  Test.make ~count:200 ~name:"certified scan covers all sturm-isolated roots"
    ~print:(fun (a, b, c) -> Printf.sprintf "(%d, %d, %d)" a b c)
    gen
    (fun (a, b, c) ->
      let lin r = St.of_coeffs [ q (-r); q 1 ] in
      let p = St.mul (lin a) (St.mul (lin b) (lin c)) in
      let flagged = St.possible_root_intervals p ~lo:(-10) ~hi:10 in
      List.for_all
        (fun r ->
          List.exists (fun (x, y) -> x <= r && r <= y) flagged)
        (List.sort_uniq compare [ a; b; c ]))

let test_possible_extremum_intervals () =
  (* num/den = (x^2 - 6x)/1: extremum at x = 3 only; the product-sum scan
     of num' * den - num * den' must flag a neighbourhood of 3 and leave
     the far ends clean. *)
  let num = St.of_coeffs [ q 0; q (-6); q 1 ] in
  let den = St.of_coeffs [ q 1 ] in
  let flagged = St.possible_extremum_intervals num den ~lo:0 ~hi:10 in
  Alcotest.(check bool)
    "x=3 covered" true
    (List.exists (fun (a, b) -> a <= 3 && 3 <= b) flagged);
  Alcotest.(check bool)
    "ends clean" true
    (List.for_all (fun (a, b) -> b <= 5 && a >= 1) flagged);
  (* Constant ratio: derivative identically zero, nothing to flag. *)
  Alcotest.(check (list (pair int int)))
    "constant has no extrema" []
    (St.possible_extremum_intervals (St.of_coeffs [ q 5 ]) den ~lo:0 ~hi:10)

let suite =
  [
    Alcotest.test_case "has_root_in" `Quick test_has_root;
    Alcotest.test_case "isolate quadratic" `Quick test_isolate_quadratic;
    Alcotest.test_case "multiple root" `Quick test_isolate_multiple_root;
    Alcotest.test_case "of_polynomial" `Quick test_of_polynomial;
    QCheck_alcotest.to_alcotest prop_isolate_cubic;
    Alcotest.test_case "certified_sign" `Quick test_certified_sign;
    Alcotest.test_case "possible_root_intervals" `Quick
      test_possible_root_intervals;
    QCheck_alcotest.to_alcotest prop_scan_covers_sturm_roots;
    Alcotest.test_case "possible_extremum_intervals" `Quick
      test_possible_extremum_intervals;
  ]
