(** Fixed-size domain pool for fanning out independent engine work.

    The empirical layer (registry analyses, pebble-game validation grids,
    cache-simulation sweeps, split searches) is embarrassingly parallel:
    many independent tasks whose results are only combined at the end.
    [Pool.map] runs such task lists across OCaml 5 domains with a work-
    stealing index, preserving input order in the output so callers keep
    byte-identical (deterministic) results regardless of the worker count.

    Tasks must not share unsynchronised mutable state.  Everything the
    engine fans out satisfies this: analyses build private structures,
    {!Budget} counters are atomic, and [Budget.unlimited] checkpoints are
    no-ops. *)

(** Worker count used when [?jobs] is omitted: the [IOLB_JOBS] environment
    variable if set (a positive integer), else
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [IOLB_JOBS] is set but not a positive
    integer. *)
val default_jobs : unit -> int

(** [map ?jobs f xs] is [List.map f xs], computed by at most [jobs] domains
    (default {!default_jobs}).  Output order follows input order.  With
    [jobs = 1] (or on lists of fewer than two elements) no domain is
    spawned and the evaluation is exactly sequential.

    If one or more applications of [f] raise, every task still completes
    (or fails) and the exception of the {e earliest} failed index is
    re-raised with its backtrace - so failures are deterministic too.
    @raise Invalid_argument if [jobs < 1]. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [iter ?jobs f xs] is [ignore (map ?jobs f xs)]. *)
val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
