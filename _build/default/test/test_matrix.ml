(* Dense matrix substrate. *)

module Matrix = Iolb_kernels.Matrix

let test_accessors () =
  let m = Matrix.init 2 3 (fun i j -> float_of_int ((10 * i) + j)) in
  Alcotest.(check (float 0.)) "get" 12. (Matrix.get m 1 2);
  Matrix.set m 1 2 99.;
  Alcotest.(check (float 0.)) "set" 99. (Matrix.get m 1 2);
  Alcotest.(check (pair int int)) "dims" (2, 3) (Matrix.dims m)

let test_mul_identity () =
  let a = Matrix.random ~seed:1 4 4 in
  let i4 = Matrix.identity 4 in
  Alcotest.(check (float 1e-12)) "A * I = A" 0.
    (Matrix.rel_error a (Matrix.mul a i4));
  Alcotest.(check (float 1e-12)) "I * A = A" 0.
    (Matrix.rel_error a (Matrix.mul i4 a))

let test_transpose_involution () =
  let a = Matrix.random ~seed:2 3 5 in
  Alcotest.(check (float 0.)) "(A^T)^T = A" 0.
    (Matrix.rel_error a (Matrix.transpose (Matrix.transpose a)))

let test_mul_transpose_compat () =
  (* (AB)^T = B^T A^T *)
  let a = Matrix.random ~seed:3 3 4 and b = Matrix.random ~seed:4 4 2 in
  Alcotest.(check (float 1e-12)) "(AB)^T = B^T A^T" 0.
    (Matrix.rel_error
       (Matrix.transpose (Matrix.mul a b))
       (Matrix.mul (Matrix.transpose b) (Matrix.transpose a)))

let test_norms () =
  let m = Matrix.init 2 2 (fun i j -> if i = 0 && j = 0 then 3. else if i = 1 && j = 1 then -4. else 0.) in
  Alcotest.(check (float 1e-12)) "frobenius" 5. (Matrix.frobenius m);
  Alcotest.(check (float 0.)) "max_abs" 4. (Matrix.max_abs m)

let test_structure_predicates () =
  let upper = Matrix.init 3 3 (fun i j -> if j >= i then 1. else 0.) in
  Alcotest.(check bool) "upper triangular" true (Matrix.is_upper_triangular upper);
  Alcotest.(check bool) "not bidiagonal" false (Matrix.is_upper_bidiagonal upper);
  let bidiag = Matrix.init 3 3 (fun i j -> if j = i || j = i + 1 then 1. else 0.) in
  Alcotest.(check bool) "bidiagonal" true (Matrix.is_upper_bidiagonal bidiag);
  let hess = Matrix.init 4 4 (fun i j -> if j >= i - 1 then 1. else 0.) in
  Alcotest.(check bool) "hessenberg" true (Matrix.is_upper_hessenberg hess);
  Alcotest.(check bool) "full not hessenberg" false
    (Matrix.is_upper_hessenberg (Matrix.init 4 4 (fun _ _ -> 1.)))

let test_submatrix () =
  let m = Matrix.init 4 4 (fun i j -> float_of_int ((10 * i) + j)) in
  let s = Matrix.submatrix m ~row:1 ~col:2 ~rows:2 ~cols:2 in
  Alcotest.(check (float 0.)) "corner" 12. (Matrix.get s 0 0);
  Alcotest.(check (float 0.)) "opposite" 23. (Matrix.get s 1 1);
  Alcotest.(check bool) "out of range raises" true
    (try
       ignore (Matrix.submatrix m ~row:3 ~col:3 ~rows:2 ~cols:2);
       false
     with Invalid_argument _ -> true)

let test_random_deterministic () =
  let a = Matrix.random ~seed:7 3 3 and b = Matrix.random ~seed:7 3 3 in
  Alcotest.(check (float 0.)) "same seed same matrix" 0. (Matrix.rel_error a b);
  let c = Matrix.random ~seed:8 3 3 in
  Alcotest.(check bool) "different seed differs" true (Matrix.rel_error a c > 0.)

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "identity laws" `Quick test_mul_identity;
    Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
    Alcotest.test_case "mul/transpose compatibility" `Quick
      test_mul_transpose_compat;
    Alcotest.test_case "norms" `Quick test_norms;
    Alcotest.test_case "structure predicates" `Quick test_structure_predicates;
    Alcotest.test_case "submatrix" `Quick test_submatrix;
    Alcotest.test_case "deterministic randomness" `Quick
      test_random_deterministic;
  ]
