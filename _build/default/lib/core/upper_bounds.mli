(** Symbolic I/O cost models of the tiled orderings of Appendix A, and the
    optimality-gap computation that closes the paper's argument: upper and
    lower bounds match asymptotically, so the hourglass bounds are tight.

    Costs are polynomials in the parameters, the block size ["B"] and its
    formal inverse ["Binv"] (polynomials cannot divide, so the streamed
    terms carry [Binv = 1/B]); {!substitute_block} eliminates both at a
    rational block choice [B = num/den], e.g. the paper's [B = S/M - 1]
    (or [B = sqrtS/2] for GEMM), yielding a rational function of the
    remaining parameters. *)

type cost = {
  reads : Iolb_symbolic.Polynomial.t;  (** loads, leading behaviour *)
  writes : Iolb_symbolic.Polynomial.t;
  cache_needed : Iolb_symbolic.Polynomial.t;
      (** peak residency; the ordering is valid when this is <= S *)
}

(** Appendix A.1: left-looking tiled MGS.
    reads = M N^2 / (2B) + M N, writes = M N + N^2 / 2,
    cache = M (B + 1). *)
val mgs_tiled : cost

(** Appendix A.2: left-looking tiled Householder A2V.
    reads = (M N^2 - N^3 / 3) / (2B) + M N, writes = M N,
    cache = M (B + 1). *)
val a2v_tiled : cost

(** Classic cubic-blocked GEMM: reads = 2 M N K / B + M N,
    writes = M N, cache = 3 B^2. *)
val gemm_tiled : cost

(** [total c] is reads + writes, a polynomial in the parameters and [B]. *)
val total : cost -> Iolb_symbolic.Polynomial.t

(** [substitute_block p ~num ~den] composes a polynomial in ["B"] and
    ["Binv"] with the rational block choice [B = num/den], yielding a
    rational function of the remaining parameters (e.g. [num = S - M],
    [den = M] for the Appendix choice [B = S/M - 1]). *)
val substitute_block :
  Iolb_symbolic.Polynomial.t ->
  num:Iolb_symbolic.Polynomial.t ->
  den:Iolb_symbolic.Polynomial.t ->
  Iolb_symbolic.Ratfun.t

(** [eval_total c ~b bindings] evaluates reads + writes at a concrete block
    size. *)
val eval_total : cost -> b:int -> (string * int) list -> float

(** [gap ~upper ~lower bindings] is the upper/lower ratio at a point - the
    constant-factor optimality gap; bounded across scales exactly when the
    bounds are asymptotically tight. *)
val gap :
  upper:Iolb_symbolic.Ratfun.t ->
  lower:Iolb_symbolic.Ratfun.t ->
  (string * int) list ->
  float
