(* The Brascamp-Lieb optimiser: known certificates, infeasibility, and a
   property check that returned exponents are admissible. *)

module Bl = Iolb.Bl
module Rat = Iolb_util.Rat

let test_loomis_whitney () =
  (* Three 2-D canonical projections of a 3-D set: rho = 3/2 with uniform
     exponents 1/2 (the Loomis-Whitney certificate). *)
  match Bl.classical ~dims:[ "i"; "j"; "k" ] [ [ "i"; "j" ]; [ "i"; "k" ]; [ "j"; "k" ] ] with
  | None -> Alcotest.fail "feasible instance reported infeasible"
  | Some sol ->
      Alcotest.(check string) "rho" "3/2" (Rat.to_string sol.Bl.k_exponent);
      List.iter
        (fun (_, e) -> Alcotest.(check string) "s_j" "1/2" (Rat.to_string e))
        sol.Bl.exponents

let test_1d_projections () =
  (* Full 1-D coverage: rho = d with exponents 1. *)
  match Bl.classical ~dims:[ "i"; "j" ] [ [ "i" ]; [ "j" ] ] with
  | None -> Alcotest.fail "infeasible"
  | Some sol -> Alcotest.(check string) "rho" "2" (Rat.to_string sol.Bl.k_exponent)

let test_uncovered_dim_infeasible () =
  Alcotest.(check bool) "k uncovered -> None" true
    (Bl.classical ~dims:[ "i"; "j"; "k" ] [ [ "i"; "j" ]; [ "j" ] ] = None);
  Alcotest.(check bool) "no projections -> None" true
    (Bl.classical ~dims:[ "i" ] [] = None)

let test_mgs_hourglass_certificate () =
  (* The Section 4.2 instance: phi_I (alpha 0, beta 1), two sharpened
     projections (alpha 1, beta -1), one untouched (alpha 1).  Expected:
     (rho_K, rho_W) = (2, -1), i.e. |I'| <= K^2 / W. *)
  let projs =
    [
      Bl.proj ~alpha:Rat.zero ~beta:Rat.one ~label:"phi_I" [ "i" ];
      Bl.proj ~alpha:Rat.one ~beta:Rat.minus_one ~label:"phi_j" [ "j" ];
      Bl.proj ~alpha:Rat.one ~beta:Rat.minus_one ~label:"phi_k" [ "k" ];
      Bl.proj ~alpha:Rat.one ~label:"phi_kj" [ "k"; "j" ];
    ]
  in
  match Bl.optimize ~dims:[ "i"; "j"; "k" ] projs with
  | None -> Alcotest.fail "infeasible"
  | Some sol ->
      Alcotest.(check string) "rho_K" "2" (Rat.to_string sol.Bl.k_exponent);
      Alcotest.(check string) "rho_W" "-1" (Rat.to_string sol.Bl.w_exponent)

let test_flatness_preference () =
  (* With a gamma-weighted (constant-2) projection available for a dim also
     coverable at K-cost, the lexicographic objective prefers paying the
     constant over paying K. *)
  let projs =
    [
      Bl.proj ~alpha:Rat.zero ~gamma:Rat.one ~label:"flat_k" [ "k" ];
      Bl.proj ~alpha:Rat.one ~label:"phi_k" [ "k" ];
      Bl.proj ~alpha:Rat.one ~label:"phi_ij" [ "i"; "j" ];
    ]
  in
  match Bl.optimize ~dims:[ "i"; "j"; "k" ] projs with
  | None -> Alcotest.fail "infeasible"
  | Some sol ->
      Alcotest.(check string) "rho_K = 1 (only phi_ij pays K)" "1"
        (Rat.to_string sol.Bl.k_exponent);
      Alcotest.(check string) "rho_2 = 1 (flatness used)" "1"
        (Rat.to_string sol.Bl.two_exponent)

(* Property: on random projection families, any returned solution is
   admissible - all cover constraints hold and exponents lie in [0,1]. *)
let admissibility_prop =
  let dims = [ "a"; "b"; "c" ] in
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 5)
        (list_size (int_range 1 3) (oneofl dims)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"returned exponents are admissible" ~count:300 gen
       (fun dimsets ->
         let dimsets = List.map (List.sort_uniq String.compare) dimsets in
         match Bl.classical ~dims dimsets with
         | None ->
             (* Must be genuinely uncoverable: some dim in no projection. *)
             List.exists
               (fun d -> not (List.exists (List.mem d) dimsets))
               dims
         | Some sol ->
             let s_of j =
               match
                 List.assoc_opt
                   (Printf.sprintf "phi%d_{%s}" j
                      (String.concat "," (List.nth dimsets j)))
                   sol.Bl.exponents
               with
               | Some e -> e
               | None -> Rat.zero
             in
             let subsets =
               List.concat_map
                 (fun a ->
                   List.concat_map
                     (fun b -> List.map (fun c -> [ a; b; c ]) [ 0; 1 ])
                     [ 0; 1 ])
                 [ 0; 1 ]
               |> List.map (fun flags ->
                      List.filteri (fun i _ -> List.nth flags i = 1) dims)
               |> List.filter (fun h -> h <> [])
               |> List.sort_uniq compare
             in
             List.for_all
               (fun h ->
                 let lhs = Rat.of_int (List.length h) in
                 let rhs =
                   List.fold_left
                     (fun acc j ->
                       let inter =
                         List.length
                           (List.filter (fun d -> List.mem d h)
                              (List.nth dimsets j))
                       in
                       Rat.add acc (Rat.mul (s_of j) (Rat.of_int inter)))
                     Rat.zero
                     (List.init (List.length dimsets) Fun.id)
                 in
                 Rat.compare lhs rhs <= 0)
               subsets
             && List.for_all
                  (fun (_, e) ->
                    Rat.sign e >= 0 && Rat.compare e Rat.one <= 0)
                  sol.Bl.exponents))

let suite =
  [
    Alcotest.test_case "Loomis-Whitney certificate" `Quick test_loomis_whitney;
    Alcotest.test_case "1-D projections" `Quick test_1d_projections;
    Alcotest.test_case "uncovered dimension infeasible" `Quick
      test_uncovered_dim_infeasible;
    Alcotest.test_case "MGS hourglass certificate (K^2/W)" `Quick
      test_mgs_hourglass_certificate;
    Alcotest.test_case "flatness preferred over K" `Quick
      test_flatness_preference;
    admissibility_prop;
  ]
