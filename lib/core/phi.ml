module Access = Iolb_ir.Access
module Program = Iolb_ir.Program

type t = { dims : string list; source : string }

(* Version pinning: a value read from an array produced by other statements
   is identified not only by its cell coordinates (the access's selected
   dimensions D) but also by its version, which changes at every iteration
   of the loops shared by the reader and the value's producers.  Distinct
   (D, version) pairs are distinct value nodes of the CDAG, and values
   produced by statements other than the reader are always outside a set E
   of reader instances, hence chargeable to InSet(E).  This reproduces the
   dependence-path analysis of IOLB on the paper's kernels: e.g. the
   [tau[j]] read of the A2V update statement is pinned by the shared outer
   loop [k], yielding the projection phi_{k,j}.

   Reads of an array that the reader itself writes keep their bare cell
   projection D: the backward chain can stay inside E, and only the first
   version before E is chargeable - injective in D alone. *)
let of_statement ?(version_pinning = true) p (info : Program.stmt_info) =
  let stmts = Program.statements p in
  (* Statement names are unique (checked by [Program.make]); index them
     once instead of rescanning the list for every producer candidate. *)
  let pos = Hashtbl.create 16 in
  List.iteri
    (fun i (s : Program.stmt_info) -> Hashtbl.add pos s.def.name i)
    stmts;
  let position name =
    match Hashtbl.find_opt pos name with
    | Some i -> i
    | None -> raise Not_found
  in
  let u_pos = position info.def.name in
  let producers (access : Access.t) =
    List.filter
      (fun (s : Program.stmt_info) ->
        List.exists
          (fun (w : Access.t) ->
            w.array = access.array && List.length w.index = List.length access.index)
          s.def.writes
        (* A statement in a disjoint loop nest that appears later in the
           program can never produce a value this statement reads. *)
        && not
             (Program.shared_loop_vars info s = []
             && position s.def.name > u_pos))
      stmts
  in
  let projections =
    List.filter_map
      (fun access ->
        match Access.selected_dims ~dims:info.dims access with
        | None ->
            invalid_arg
              (Format.asprintf "Phi.of_statement: non-coordinate access %a"
                 Access.pp access)
        | Some sel ->
            let prods = producers access in
            let self_produced =
              List.exists
                (fun (s : Program.stmt_info) -> s.def.name = info.def.name)
                prods
            in
            let dims =
              if (not version_pinning) || self_produced || prods = [] then sel
              else
                let pin =
                  List.fold_left
                    (fun acc s ->
                      List.filter
                        (fun d -> List.mem d (Program.shared_loop_vars info s))
                        acc)
                    info.dims prods
                in
                let pinned = List.sort_uniq String.compare (sel @ pin) in
                (* A full-dimensional projection would assert |E| <= K
                   outright, which the per-statement charging cannot
                   support (the producer's instances would have to sit
                   outside E at full multiplicity).  Refuse the pin and
                   keep the bare cell projection instead. *)
                if List.length pinned = List.length info.dims then sel
                else pinned
            in
            if dims = [] then None
            else
              Some
                {
                  dims = List.sort String.compare dims;
                  source = Format.asprintf "%a" Access.pp access;
                })
      info.def.reads
  in
  (* Deduplicate by dimension set, keeping the first source name. *)
  List.fold_left
    (fun acc p -> if List.exists (fun q -> q.dims = p.dims) acc then acc else p :: acc)
    [] projections
  |> List.rev

let mem dim p = List.mem dim p.dims

let pp fmt p =
  Format.fprintf fmt "phi_{%s} (from %s)" (String.concat "," p.dims) p.source
