(** Source locations for the affine-program DSL.

    Lines and columns are 1-based, matching what editors display; every
    diagnostic of the front-end renders as [file:line:col: message]. *)

type t = { file : string; line : int; col : int }

val make : file:string -> line:int -> col:int -> t

(** [file:line:col] *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
