(** Symmetric rank-k update: C (lower) += A * A^T for an [n x k] A.

    Studied by Beaumont, Eyraud-Dubois, Langou and Verite (SPAA'22, the
    paper's reference [4]) with a specialised tight proof; here it serves
    as a classical-path kernel: three 2-D projections, rho = 3/2. *)

val spec : Iolb_ir.Program.t

(** [run a] computes the full symmetric [n x n] product [a * a^T]. *)
val run : Matrix.t -> Matrix.t
