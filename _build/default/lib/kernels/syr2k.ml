open Shorthand

let spec =
  Program.make ~name:"syr2k" ~params:[ "N"; "K" ]
    ~assumptions:[ Constr.ge_of (v "N") (c 1); Constr.ge_of (v "K") (c 1) ]
    [
      loop_lt "i" (c 0) (v "N")
        [
          loop "j" (c 0) (v "i")
            [
              loop_lt "k" (c 0) (v "K")
                [
                  stmt "SC"
                    ~writes:[ a2 "C" (v "i") (v "j") ]
                    ~reads:
                      [
                        a2 "C" (v "i") (v "j");
                        a2 "A" (v "i") (v "k");
                        a2 "B" (v "j") (v "k");
                        a2 "B" (v "i") (v "k");
                        a2 "A" (v "j") (v "k");
                      ];
                ];
            ];
        ];
    ]

let run a b =
  let abt = Matrix.mul a (Matrix.transpose b) in
  let bat = Matrix.mul b (Matrix.transpose a) in
  let n, _ = Matrix.dims a in
  Matrix.init n n (fun i j -> Matrix.get abt i j +. Matrix.get bat i j)
