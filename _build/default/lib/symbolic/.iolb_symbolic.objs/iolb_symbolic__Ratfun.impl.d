lib/symbolic/ratfun.ml: Format Iolb_util List Polynomial String
