lib/core/paper_formulas.mli: Iolb_symbolic
