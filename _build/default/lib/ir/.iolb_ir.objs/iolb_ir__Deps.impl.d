lib/ir/deps.ml: Access Array Format Iolb_poly List Program
