(** Memory access traces.

    A trace is the sequence of cell reads/writes performed by a concrete
    schedule of a program.  Traces are what the cache simulator consumes;
    they can come from {!Iolb_ir.Program.iter_instances} (the untiled
    program order) or from hand-scheduled tiled algorithms (Appendix A of
    the paper). *)

type cell = string * int array

type event = Read of cell | Write of cell

(** [of_program ~params p] is the trace of the program executed in textual
    order: for each instance, its reads then its writes.  Instantiation is
    accounted against the budget's [Cdag_build] stage (one checkpoint per
    instance, node cap on the instance count).
    @raise Iolb_util.Budget.Exhausted when the budget runs out. *)
val of_program :
  ?budget:Iolb_util.Budget.t ->
  params:(string * int) list ->
  Iolb_ir.Program.t ->
  event list

(** Number of distinct cells touched by the trace. *)
val footprint : event list -> int

val length : event list -> int
val pp_event : Format.formatter -> event -> unit
