(* The bound service: wire protocol, error taxonomy, response LRU, and
   the daemon's contract - crash isolation, admission control, graceful
   degradation, byte-identical cached responses - exercised end to end
   over real sockets, including the fault-injected soak. *)

module Json = Iolb_util.Json
module Budget = Iolb_util.Budget
module Engine_error = Iolb_util.Engine_error
module Protocol = Iolb_serve.Protocol
module Lru = Iolb_serve.Lru
module Server = Iolb_serve.Server
module Client = Iolb_serve.Client

(* ------------------------------------------------------------------ *)
(* Protocol: request parsing.                                          *)

let parse_ok line =
  match Protocol.parse_request line with
  | Ok r -> r
  | Error (_, msg) -> Alcotest.failf "%S: unexpected parse error: %s" line msg

let parse_err line =
  match Protocol.parse_request line with
  | Ok _ -> Alcotest.failf "%S: expected a parse error" line
  | Error (id, msg) -> (id, msg)

let test_parse_request () =
  let r = parse_ok {|{"id":7,"op":"ping"}|} in
  Alcotest.(check bool) "ping id echoed" true (r.Protocol.id = Json.Int 7);
  Alcotest.(check bool) "ping op" true (r.Protocol.op = Protocol.Ping);
  List.iter
    (fun (line, op) ->
      Alcotest.(check bool) line true ((parse_ok line).Protocol.op = op))
    [
      ({|{"op":"list"}|}, Protocol.List_kernels);
      ({|{"op":"stats"}|}, Protocol.Stats);
      ({|{"op":"crash"}|}, Protocol.Crash);
      ({|{"op":"shutdown"}|}, Protocol.Shutdown);
    ];
  Alcotest.(check bool) "missing id defaults to null" true
    ((parse_ok {|{"op":"ping"}|}).Protocol.id = Json.Null);
  (* analyze with a full budget, fault hook included *)
  let r =
    parse_ok
      {|{"id":1,"op":"analyze","kernel":"mgs","timeout_ms":5,"max_steps":10,"max_nodes":3,"fault":{"stage":"pebble_game","k":2}}|}
  in
  (match r.Protocol.op with
  | Protocol.Analyze { kernel; budget } ->
      Alcotest.(check string) "kernel" "mgs" kernel;
      Alcotest.(check (option int)) "timeout" (Some 5) budget.timeout_ms;
      Alcotest.(check (option int)) "steps" (Some 10) budget.max_steps;
      Alcotest.(check (option int)) "nodes" (Some 3) budget.max_nodes;
      Alcotest.(check bool) "fault" true
        (budget.fault = Some (Budget.Pebble_game, 2));
      Alcotest.(check bool) "budgeted" false (Protocol.is_unlimited budget)
  | _ -> Alcotest.fail "expected analyze");
  (* a bare analyze is unlimited *)
  (match (parse_ok {|{"op":"analyze","kernel":"mgs"}|}).Protocol.op with
  | Protocol.Analyze { budget; _ } ->
      Alcotest.(check bool) "no budget fields means unlimited" true
        (Protocol.is_unlimited budget)
  | _ -> Alcotest.fail "expected analyze");
  (* eval point defaults *)
  (match (parse_ok {|{"op":"eval","kernel":"gemm"}|}).Protocol.op with
  | Protocol.Eval { kernel; m; n; s; empirical; _ } ->
      Alcotest.(check string) "kernel" "gemm" kernel;
      Alcotest.(check (list int)) "default point" [ 64; 32; 256 ] [ m; n; s ];
      Alcotest.(check bool) "no empirical rider" true (empirical = None)
  | _ -> Alcotest.fail "expected eval");
  (* empirical rider: seed defaults, rate validated at parse time *)
  (match
     (parse_ok {|{"op":"eval","kernel":"mgs","empirical":{"rate":0.25}}|})
       .Protocol.op
   with
  | Protocol.Eval { empirical = Some e; _ } ->
      Alcotest.(check (float 0.0)) "rate" 0.25 e.Protocol.rate;
      Alcotest.(check int) "default seed" 42 e.Protocol.seed
  | _ -> Alcotest.fail "expected eval with empirical rider");
  (* malformed lines: typed errors, id recovered when present *)
  List.iter
    (fun line -> ignore (parse_err line))
    [
      "";
      "not json";
      "[1,2]";
      {|{"id":1}|};
      {|{"op":42}|};
      {|{"op":"frobnicate"}|};
      {|{"op":"analyze"}|};
      {|{"op":"analyze","kernel":7}|};
      {|{"op":"analyze","kernel":"mgs","timeout_ms":"soon"}|};
      {|{"op":"analyze","kernel":"mgs","fault":{"stage":"nope","k":1}}|};
      {|{"op":"analyze","kernel":"mgs","fault":3}|};
      {|{"op":"eval","kernel":"mgs","empirical":{"rate":1.5}}|};
      {|{"op":"eval","kernel":"mgs","empirical":{"rate":0}}|};
      {|{"op":"eval","kernel":"mgs","empirical":{}}|};
      {|{"op":"eval","kernel":"mgs","empirical":"yes"}|};
      {|{"op":"eval","kernel":"mgs","empirical":{"rate":0.5,"seed":"x"}}|};
    ];
  let id, _ = parse_err {|{"id":9,"op":"frobnicate"}|} in
  Alcotest.(check bool) "id recovered from a bad request" true (id = Json.Int 9);
  let id, _ = parse_err "not json" in
  Alcotest.(check bool) "unparsable line has null id" true (id = Json.Null)

let test_stage_wire_roundtrip () =
  let stages =
    [
      Budget.Poly_projection; Budget.Cdag_build; Budget.Pebble_game;
      Budget.Cache_sim; Budget.Derivation;
    ]
  in
  let names = List.map Protocol.wire_of_stage stages in
  Alcotest.(check (list string))
    "stable wire names"
    [ "poly_projection"; "cdag_build"; "pebble_game"; "cache_sim"; "derivation" ]
    names;
  List.iter2
    (fun stage name ->
      Alcotest.(check bool) (name ^ " round-trips") true
        (Protocol.stage_of_wire name = Some stage))
    stages names;
  Alcotest.(check bool) "unknown stage rejected" true
    (Protocol.stage_of_wire "warp_drive" = None)

(* Satellite: every Engine_error constructor maps to a distinct wire
   code whose numeric exit code matches the CLI taxonomy, and the
   service-level errors extend it without colliding. *)
let test_error_codes_match_cli () =
  let engine_cases =
    Engine_error.
      [
        Invalid_input "bad"; Budget_exhausted Budget.Poly_projection;
        Budget_exhausted Budget.Cdag_build; Budget_exhausted Budget.Pebble_game;
        Budget_exhausted Budget.Cache_sim; Budget_exhausted Budget.Derivation;
        Unsupported "scope"; Internal "bug";
      ]
  in
  List.iter
    (fun e ->
      let err = Protocol.Engine e in
      Alcotest.(check int)
        (Protocol.error_code err ^ " matches the CLI exit code")
        (Engine_error.exit_code e)
        (Protocol.error_exit_code err))
    engine_cases;
  let all =
    List.map (fun e -> Protocol.Engine e) engine_cases
    @ [ Protocol.Bad_request "junk"; Protocol.Overloaded { retry_after_ms = 5 } ]
  in
  let codes = List.sort_uniq compare (List.map Protocol.error_code all) in
  Alcotest.(check (list string))
    "six distinct wire codes"
    [
      "bad_request"; "budget_exhausted"; "internal"; "invalid_input";
      "overloaded"; "unsupported";
    ]
    codes;
  Alcotest.(check int) "bad_request is an input error" 2
    (Protocol.error_exit_code (Protocol.Bad_request "junk"));
  Alcotest.(check int) "overloaded extends the taxonomy" 6
    (Protocol.error_exit_code (Protocol.Overloaded { retry_after_ms = 5 }));
  (* the structured payload carries the stage / retry hint *)
  Alcotest.(check bool) "budget_exhausted names its stage" true
    (Json.member "stage"
       (Protocol.error_json (Protocol.Engine (Engine_error.Budget_exhausted Budget.Cache_sim)))
    = Some (Json.String "cache_sim"));
  Alcotest.(check bool) "overloaded carries retry_after_ms" true
    (Json.member "retry_after_ms"
       (Protocol.error_json (Protocol.Overloaded { retry_after_ms = 25 }))
    = Some (Json.Int 25))

let test_response_envelopes () =
  let id = Json.Int 3 in
  let result = Json.Obj [ ("pong", Json.Bool true) ] in
  let rendered = Protocol.ok_response ~id ~op:"ping" result in
  Alcotest.(check string) "raw splice is byte-identical" rendered
    (Protocol.ok_response_raw ~id ~op:"ping" (Json.to_string result));
  (match Protocol.parse_response rendered with
  | Ok r ->
      Alcotest.(check bool) "id echoed" true (r.Protocol.resp_id = id);
      Alcotest.(check bool) "ok" true r.Protocol.ok;
      Alcotest.(check int) "success exit code" 0 r.Protocol.exit_code
  | Error m -> Alcotest.failf "ok response does not parse: %s" m);
  let err =
    Protocol.error_response ~id:(Json.String "x")
      (Protocol.Engine (Engine_error.Budget_exhausted Budget.Derivation))
  in
  (match Protocol.parse_response err with
  | Ok r ->
      Alcotest.(check bool) "error id echoed" true
        (r.Protocol.resp_id = Json.String "x");
      Alcotest.(check bool) "not ok" false r.Protocol.ok;
      Alcotest.(check int) "exit code surfaced" 3 r.Protocol.exit_code
  | Error m -> Alcotest.failf "error response does not parse: %s" m);
  (match Protocol.parse_response "garbage" with
  | Ok _ -> Alcotest.fail "garbage parsed as a response"
  | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Lru: recency bumping, eviction order, stats, disabled cache.        *)

let test_lru () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check (option string)) "miss" None (Lru.find c "a");
  Lru.add c "a" "1";
  Lru.add c "b" "2";
  Alcotest.(check (option string)) "hit a" (Some "1") (Lru.find c "a");
  (* b is now least recently used; adding c evicts it *)
  Lru.add c "c" "3";
  Alcotest.(check (option string)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option string)) "a survived the bump" (Some "1")
    (Lru.find c "a");
  Alcotest.(check (option string)) "c present" (Some "3") (Lru.find c "c");
  Lru.add c "a" "1'";
  Alcotest.(check (option string)) "refresh updates in place" (Some "1'")
    (Lru.find c "a");
  let s = Lru.stats c in
  Alcotest.(check int) "entries" 2 s.Lru.entries;
  Alcotest.(check int) "capacity" 2 s.Lru.capacity;
  Alcotest.(check int) "evictions" 1 s.Lru.evictions;
  Alcotest.(check int) "hits" 4 s.Lru.hits;
  Alcotest.(check int) "misses" 2 s.Lru.misses;
  (* capacity 0 disables the cache entirely *)
  let off = Lru.create ~capacity:0 in
  Lru.add off "k" "v";
  Alcotest.(check (option string)) "disabled cache never hits" None
    (Lru.find off "k");
  Alcotest.(check int) "disabled cache stays empty" 0 (Lru.stats off).Lru.entries;
  Alcotest.(check bool) "negative capacity rejected" true
    (try
       ignore (Lru.create ~capacity:(-1));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Server end to end: real sockets, real domains.                      *)

let fresh_address () =
  let path = Filename.temp_file "iolb-serve" ".sock" in
  Sys.remove path;
  Server.Unix_sock path

let with_server ?(jobs = 2) ?(queue = 64) ?(cache = 128) ?(allow_crash = false)
    f =
  let address = fresh_address () in
  let config =
    {
      (Server.default_config ~address) with
      Server.jobs;
      queue_capacity = queue;
      cache_capacity = cache;
      allow_crash;
    }
  in
  let t = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Server.join t)
    (fun () -> f t address)

let with_client address f =
  let c = Client.connect ~attempts:50 ~delay_s:0.05 address in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let rpc c ?id ~op fields =
  match Client.rpc c ?id ~op fields with
  | Ok r -> r
  | Error m -> Alcotest.failf "op %s: unparsable response: %s" op m

(* One lock-step raw exchange: send a line, read its response line. *)
let raw_line c line =
  Client.send_line c line;
  match Client.recv_line c with
  | Some l -> l
  | None -> Alcotest.failf "connection closed after %S" line

let parsed line =
  match Protocol.parse_response line with
  | Ok r -> r
  | Error m -> Alcotest.failf "unparsable response %S: %s" line m

let wait_for ?(timeout_s = 10.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else (
      Unix.sleepf 0.005;
      go ())
  in
  go ()

let test_server_end_to_end () =
  with_server ~allow_crash:true (fun t address ->
      with_client address (fun c ->
          (* ping echoes an arbitrary id *)
          let r = rpc c ~id:(Json.Int 42) ~op:"ping" [] in
          Alcotest.(check bool) "ping ok" true r.Protocol.ok;
          Alcotest.(check bool) "ping id" true (r.Protocol.resp_id = Json.Int 42);
          (* list names the paper kernels *)
          let r = rpc c ~op:"list" [] in
          (match Json.member "kernels" r.Protocol.body with
          | Some (Json.List ks) ->
              Alcotest.(check int) "five paper kernels" 5 (List.length ks)
          | _ -> Alcotest.fail "list: missing kernels field");
          (* the same analyze twice: byte-identical, and the second is a
             cache hit *)
          let line = {|{"id":1,"op":"analyze","kernel":"mgs"}|} in
          let a = raw_line c line in
          let b = raw_line c line in
          Alcotest.(check string) "cached response byte-identical" a b;
          Alcotest.(check bool) "analysis ok" true (parsed a).Protocol.ok;
          let r = rpc c ~op:"stats" [] in
          (match Json.member "cache" r.Protocol.body with
          | Some cache ->
              Alcotest.(check bool) "stats counts the cache hit" true
                (match Json.member "hits" cache with
                | Some (Json.Int h) -> h >= 1
                | _ -> false)
          | None -> Alcotest.fail "stats: missing cache section");
          (* eval with the default point *)
          let r = rpc c ~op:"eval" [ ("kernel", Json.String "mgs") ] in
          Alcotest.(check bool) "eval ok" true r.Protocol.ok;
          Alcotest.(check bool) "eval echoes the point" true
            (Json.member "m" r.Protocol.body = Some (Json.Int 64));
          Alcotest.(check bool) "plain eval has no empirical field" true
            (Json.member "empirical" r.Protocol.body = None);
          (* the empirical rider: a sampled sweep at the evaluation point,
             byte-reproducible (sampling is hash-based) and bracketing the
             exact measured loads *)
          let line =
            {|{"id":11,"op":"eval","kernel":"mgs","m":24,"n":12,"s":64,"empirical":{"rate":0.5,"seed":1}}|}
          in
          let a = raw_line c line in
          Alcotest.(check string) "empirical eval byte-reproducible" a
            (raw_line c line);
          let r = parsed a in
          Alcotest.(check bool) "empirical eval ok" true r.Protocol.ok;
          (match Json.member "empirical" r.Protocol.body with
          | Some emp ->
              let num key =
                match Json.member key emp with
                | Some (Json.Int i) -> float_of_int i
                | Some (Json.Float f) -> f
                | _ -> Alcotest.failf "empirical: missing %s" key
              in
              Alcotest.(check (float 0.0)) "rate echoed" 0.5 (num "rate");
              Alcotest.(check bool) "partial sample" true
                (num "kept_accesses" < num "total_accesses");
              let exact =
                let module Sweep = Iolb_pebble.Sweep in
                let module Trace = Iolb_pebble.Trace in
                let entry = Result.get_ok (Iolb.Report.find_checked "mgs") in
                let params =
                  Result.get_ok (Iolb.Report.concrete_params entry ~m:24 ~n:12)
                in
                let sw = Sweep.run (Trace.of_program ~params entry.program) in
                float_of_int (Sweep.stats sw ~size:64).Iolb_pebble.Cache.loads
              in
              let lo, hi =
                match Json.member "loads" emp with
                | Some l ->
                    ( (match Json.member "lo" l with
                      | Some (Json.Float f) -> f
                      | _ -> Alcotest.fail "loads.lo"),
                      match Json.member "hi" l with
                      | Some (Json.Float f) -> f
                      | _ -> Alcotest.fail "loads.hi" )
                | None -> Alcotest.fail "empirical: missing loads"
              in
              Alcotest.(check bool)
                (Printf.sprintf "interval [%g, %g] covers exact loads %g" lo
                   hi exact)
                true
                (lo -. (hi -. lo) <= exact && exact <= hi +. (hi -. lo))
          | None -> Alcotest.fail "empirical field missing");
          (* rate 1 rides the exact streaming sweep *)
          let r =
            parsed
              (raw_line c
                 {|{"id":12,"op":"eval","kernel":"mgs","m":24,"n":12,"s":64,"empirical":{"rate":1}}|})
          in
          Alcotest.(check bool) "rate-1 empirical ok" true r.Protocol.ok;
          (match Json.member "empirical" r.Protocol.body with
          | Some emp ->
              Alcotest.(check bool) "rate 1 is exact" true
                (Json.member "exact" emp = Some (Json.Bool true))
          | None -> Alcotest.fail "rate-1 empirical field missing");
          (* a malformed line gets a typed bad_request; the connection and
             the server survive *)
          let r = parsed (raw_line c "this is not json") in
          Alcotest.(check bool) "malformed not ok" false r.Protocol.ok;
          Alcotest.(check int) "malformed exit code" 2 r.Protocol.exit_code;
          Alcotest.(check bool) "server alive after bad line" true
            (rpc c ~op:"ping" []).Protocol.ok;
          (* unknown kernel: invalid_input *)
          let r =
            parsed (raw_line c {|{"id":2,"op":"analyze","kernel":"nope"}|})
          in
          Alcotest.(check int) "unknown kernel is invalid_input" 2
            r.Protocol.exit_code;
          (* over-deadline request degrades into a typed budget error, not
             a hang *)
          let r =
            parsed
              (raw_line c
                 {|{"id":3,"op":"analyze","kernel":"gehd2","timeout_ms":1}|})
          in
          Alcotest.(check int) "over-deadline is budget_exhausted" 3
            r.Protocol.exit_code;
          Alcotest.(check bool) "budget error names a stage" true
            (Json.member "stage" r.Protocol.body <> None);
          (* crash: the poisoned request gets a typed internal error, the
             worker is respawned, the daemon survives *)
          let r = rpc c ~op:"crash" [] in
          Alcotest.(check bool) "crash not ok" false r.Protocol.ok;
          Alcotest.(check int) "crash is internal" 5 r.Protocol.exit_code;
          wait_for "the worker respawn" (fun () -> Server.respawns t >= 1);
          Alcotest.(check bool) "server alive after crash" true
            (rpc c ~op:"ping" []).Protocol.ok);
      (* graceful shutdown over the wire: the op acknowledges, then join
         (in the with_server finally) completes *)
      with_client address (fun c ->
          let r = rpc c ~op:"shutdown" [] in
          Alcotest.(check bool) "shutdown acknowledged" true r.Protocol.ok))

let test_crash_gated_by_default () =
  with_server (fun t address ->
      with_client address (fun c ->
          let r = rpc c ~op:"crash" [] in
          Alcotest.(check int) "crash refused as unsupported" 4
            r.Protocol.exit_code;
          Alcotest.(check int) "no respawn happened" 0 (Server.respawns t)))

(* The same request sequence against different worker widths must come
   back byte-for-byte identical - the cache and the fan-out must not
   leak into the payload. *)
let determinism_lines =
  [
    {|{"id":0,"op":"list"}|};
    {|{"id":1,"op":"analyze","kernel":"mgs"}|};
    {|{"id":2,"op":"analyze","kernel":"qr hh a2v"}|};
    {|{"id":3,"op":"eval","kernel":"mgs"}|};
    {|{"id":4,"op":"analyze","kernel":"gemm"}|};
    {|{"id":5,"op":"analyze","kernel":"nope"}|};
    {|{"id":6,"op":"analyze","kernel":"mgs"}|};
    {|{"id":7,"op":"eval","kernel":"atax","m":128,"n":64,"s":512}|};
  ]

let responses_at_width jobs =
  with_server ~jobs (fun _ address ->
      with_client address (fun c -> List.map (raw_line c) determinism_lines))

let test_byte_identical_across_widths () =
  let narrow = responses_at_width 1 in
  let wide = responses_at_width 4 in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string) (Printf.sprintf "request %d" i) a b)
    (List.combine narrow wide)

(* Admission control: a pipelined burst against a one-slot queue and a
   single busy worker sheds with typed [overloaded] responses, and every
   request id is answered exactly once. *)
let test_overload_sheds () =
  with_server ~jobs:1 ~queue:1 ~cache:0 (fun _ address ->
      with_client address (fun c ->
          let burst () =
            let n = 24 in
            (* A heavyweight uncached analysis parks the only worker... *)
            Client.send_line c
              {|{"id":0,"op":"analyze","kernel":"gehd2","max_steps":1000000000}|};
            (* ...and the rest of the burst overflows the one-slot queue. *)
            for i = 1 to n do
              Client.send_line c
                (Printf.sprintf
                   {|{"id":%d,"op":"analyze","kernel":"mgs","max_steps":1000000000}|}
                   i)
            done;
            let responses =
              List.init (n + 1) (fun _ ->
                  match Client.recv_line c with
                  | Some l -> parsed l
                  | None -> Alcotest.fail "connection closed mid-burst")
            in
            let ids =
              List.sort compare
                (List.map
                   (fun r ->
                     match r.Protocol.resp_id with
                     | Json.Int i -> i
                     | _ -> Alcotest.fail "response with a foreign id")
                   responses)
            in
            Alcotest.(check (list int))
              "every request answered exactly once"
              (List.init (n + 1) Fun.id)
              ids;
            let shed =
              List.filter (fun r -> r.Protocol.exit_code = 6) responses
            in
            Alcotest.(check bool) "some requests were served" true
              (List.exists (fun r -> r.Protocol.ok) responses);
            List.iter
              (fun r ->
                Alcotest.(check bool) "overloaded carries a retry hint" true
                  (match Json.member "retry_after_ms" r.Protocol.body with
                  | Some (Json.Int ms) -> ms >= 0
                  | _ -> false))
              shed;
            List.length shed
          in
          (* The burst outruns the worker by construction; retry a few
             times anyway so a pathological scheduler cannot flake us. *)
          let rec go tries =
            if burst () = 0 then
              if tries > 1 then go (tries - 1)
              else Alcotest.fail "bounded queue never shed a pipelined burst"
          in
          go 5))

(* ------------------------------------------------------------------ *)
(* The soak: one daemon, four connections, 520 mixed requests - valid,  *)
(* malformed, over-budget, fault-injected, and worker-killing - with    *)
(* zero daemon crashes and a typed response for every single one.       *)

(* Analyzable kernels are the five paper entries (baselines carry no
   paper formulas).  gehd2 is reserved for the over-budget branch: a
   complete analysis is cached with the budget excluded from its key (a
   complete answer is the same answer whatever budget produced it), so
   analyzing it unbudgeted anywhere else would let the over-deadline
   requests be answered from the cache instead of exercising the budget
   path. *)
let soak_kernels = [| "mgs"; "qr hh a2v"; "qr hh v2q"; "gebd2" |]

(* [eval] resolves paper kernels only (baselines have no evaluation
   point semantics); eval specs live in a separate key space, so evaling
   gehd2 does not feed the analyze cache. *)
let soak_eval_kernels = [| "mgs"; "qr hh a2v"; "qr hh v2q"; "gebd2"; "gehd2" |]

let soak_stages =
  [| "poly_projection"; "cdag_build"; "pebble_game"; "cache_sim"; "derivation" |]

let soak_garbage =
  [| "{"; "[]"; "not json"; {|{"op":42}|}; {|{"op":"analyze"}|}; "\"str\"" |]

let test_soak () =
  with_server ~jobs:3 ~queue:16 ~cache:32 ~allow_crash:true (fun t address ->
      let conns =
        Array.init 4 (fun _ -> Client.connect ~attempts:50 ~delay_s:0.05 address)
      in
      Fun.protect
        ~finally:(fun () -> Array.iter Client.close conns)
        (fun () ->
          let n = 520 in
          let crashes = ref 0 and oks = ref 0 and typed_errors = ref 0 in
          let duplicate_responses = ref [] in
          for i = 0 to n - 1 do
            let c = conns.(i mod Array.length conns) in
            (* [check_id]: the response must echo the request id.
               [expect]: [`Ok], a fixed exit [`Code], any [`Typed]
               outcome (fault injection degrades or errors depending on
               where the hook lands), or [`Dup] (byte-compared at the
               end). *)
            let check_id, expect, line =
              match i mod 13 with
              | 0 ->
                  ( false,
                    `Code 2,
                    soak_garbage.(i / 13 mod Array.length soak_garbage) )
              | 1 ->
                  incr crashes;
                  (true, `Code 5, Printf.sprintf {|{"id":%d,"op":"crash"}|} i)
              | 2 ->
                  ( true,
                    `Code 3,
                    Printf.sprintf
                      {|{"id":%d,"op":"analyze","kernel":"gehd2","timeout_ms":1}|}
                      i )
              | 3 ->
                  ( true,
                    `Code 2,
                    Printf.sprintf
                      {|{"id":%d,"op":"analyze","kernel":"no-such-kernel"}|} i )
              | 4 ->
                  let stage = soak_stages.(i / 13 mod Array.length soak_stages) in
                  ( true,
                    `Typed,
                    Printf.sprintf
                      {|{"id":%d,"op":"analyze","kernel":"mgs","fault":{"stage":"%s","k":%d}}|}
                      i stage
                      (1 + (i mod 40)) )
              | 5 ->
                  ( true,
                    `Ok,
                    Printf.sprintf {|{"id":%d,"op":"eval","kernel":"%s"}|} i
                      soak_eval_kernels.(i mod Array.length soak_eval_kernels) )
              | 6 -> (true, `Ok, Printf.sprintf {|{"id":%d,"op":"stats"}|} i)
              | 7 -> (false, `Dup, {|{"id":"dup","op":"analyze","kernel":"gebd2"}|})
              | _ ->
                  ( true,
                    `Ok,
                    Printf.sprintf {|{"id":%d,"op":"analyze","kernel":"%s"}|} i
                      soak_kernels.(i mod Array.length soak_kernels) )
            in
            Client.send_line c line;
            match Client.recv_line c with
            | None -> Alcotest.failf "request %d: connection closed" i
            | Some resp -> (
                let r = parsed resp in
                if r.Protocol.ok then incr oks else incr typed_errors;
                if check_id then
                  Alcotest.(check bool)
                    (Printf.sprintf "request %d: id echoed" i)
                    true
                    (r.Protocol.resp_id = Json.Int i);
                match expect with
                | `Ok ->
                    Alcotest.(check bool)
                      (Printf.sprintf "request %d: ok" i)
                      true r.Protocol.ok
                | `Code code ->
                    Alcotest.(check int)
                      (Printf.sprintf "request %d: exit code" i)
                      code r.Protocol.exit_code
                | `Typed ->
                    Alcotest.(check bool)
                      (Printf.sprintf "request %d: typed outcome" i)
                      true
                      (r.Protocol.ok
                      || List.mem r.Protocol.exit_code [ 2; 3; 4; 5 ])
                | `Dup ->
                    Alcotest.(check bool)
                      (Printf.sprintf "request %d: dup ok" i)
                      true r.Protocol.ok;
                    duplicate_responses := resp :: !duplicate_responses)
          done;
          (* the cached spec answered byte-identically every time *)
          (match !duplicate_responses with
          | [] -> Alcotest.fail "soak produced no duplicate-spec requests"
          | first :: rest ->
              List.iter
                (Alcotest.(check string) "duplicate spec byte-identical" first)
                rest);
          (* every worker kill was isolated and respawned *)
          wait_for "all crash respawns" (fun () ->
              Server.respawns t >= !crashes);
          Alcotest.(check int) "one respawn per crash op" !crashes
            (Server.respawns t);
          Alcotest.(check bool) "soak saw successes" true (!oks > 250);
          Alcotest.(check bool) "soak saw typed failures" true
            (!typed_errors > 100);
          (* the daemon is still fully alive on every connection *)
          Array.iter
            (fun c ->
              Alcotest.(check bool) "final ping" true
                (rpc c ~op:"ping" []).Protocol.ok)
            conns))

let suite =
  [
    Alcotest.test_case "protocol: request parsing" `Quick test_parse_request;
    Alcotest.test_case "protocol: stage wire names" `Quick
      test_stage_wire_roundtrip;
    Alcotest.test_case "protocol: error codes match the CLI" `Quick
      test_error_codes_match_cli;
    Alcotest.test_case "protocol: response envelopes" `Quick
      test_response_envelopes;
    Alcotest.test_case "lru: recency, eviction, stats" `Quick test_lru;
    Alcotest.test_case "server: end to end" `Quick test_server_end_to_end;
    Alcotest.test_case "server: crash op gated by default" `Quick
      test_crash_gated_by_default;
    Alcotest.test_case "server: byte-identical across widths" `Quick
      test_byte_identical_across_widths;
    Alcotest.test_case "server: overload sheds typed" `Quick
      test_overload_sheds;
    Alcotest.test_case "server: fault-injected soak" `Slow test_soak;
  ]
