lib/kernels/trsm.mli: Iolb_ir Matrix
