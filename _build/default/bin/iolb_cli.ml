(* Command-line interface to the lower-bound engine.

   iolb list                          enumerate the built-in kernels
   iolb analyze mgs                   full derivation report for one kernel
   iolb bounds --all                  formulas for every kernel
   iolb eval mgs -m 128 -n 64 -s 256  numeric bounds at a concrete point
   iolb simulate mgs -m 12 -n 8 -s 16 pebble-game I/O vs the bounds
   iolb tile mgs -m 48 -n 16 -s 400   tiled-ordering cache simulation *)

open Cmdliner

module Report = Iolb.Report
module D = Iolb.Derive
module Cdag = Iolb_cdag.Cdag
module Game = Iolb_pebble.Game
module Cache = Iolb_pebble.Cache
module Trace = Iolb_pebble.Trace
module K = Iolb_kernels

let kernel_arg =
  let doc = "Kernel name: mgs, qr_hh_a2v, qr_hh_v2q, gebd2, gehd2." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let m_arg = Arg.(value & opt int 64 & info [ "m" ] ~docv:"M" ~doc:"Rows M.")
let n_arg = Arg.(value & opt int 32 & info [ "n" ] ~docv:"N" ~doc:"Columns N.")

let s_arg =
  Arg.(value & opt int 256 & info [ "s" ] ~docv:"S" ~doc:"Fast memory size S.")

let find_entry name =
  match Report.find name with
  | entry -> Ok entry
  | exception Not_found ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown kernel %S (try: mgs, qr_hh_a2v, qr_hh_v2q, gebd2, gehd2)"
             name))

let list_cmd =
  let run () =
    Printf.printf "paper kernels:\n";
    List.iter
      (fun (e : Report.entry) ->
        Printf.printf "  %-12s %s\n"
          (Iolb.Paper_formulas.kernel_name e.kernel)
          e.display)
      Report.registry;
    Printf.printf "baselines (classical path / negative controls):\n";
    List.iter
      (fun (name, _, _) -> Printf.printf "  %s\n" name)
      Report.baselines
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in kernels")
    Term.(const run $ const ())

let analyze_cmd =
  let show_bounds bounds =
    List.iter
      (fun (b : D.t) ->
        Format.printf "@.%a@." D.pp b;
        List.iter (fun l -> Format.printf "    | %s@." l) b.log)
      bounds
  in
  let run name =
    match find_entry name with
    | Ok entry ->
        let a = Report.analyze entry in
        Format.printf "%a@." Report.pp_analysis a;
        Ok (show_bounds a.bounds)
    | Error _ as err -> (
        (* Baselines are analysable too; they just have no paper columns. *)
        match
          List.find_opt (fun (n, _, _) -> n = name) Report.baselines
        with
        | Some (_, prog, verify_params) ->
            let bounds = D.analyze ~verify_params prog in
            if bounds = [] then
              Format.printf
                "no bound derivable (no hourglass; Brascamp-Lieb exponent <=                  1)@.";
            Ok (show_bounds bounds)
        | None -> err)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Derivation report for one kernel")
    Term.(term_result (const run $ kernel_arg))

let bounds_cmd =
  let run () =
    List.iter
      (fun entry ->
        let a = Report.analyze entry in
        Format.printf "%a@." Report.pp_analysis a)
      Report.registry
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Derived bound formulas for every kernel")
    Term.(const run $ const ())

let eval_cmd =
  let run name m n s =
    Result.map
      (fun (entry : Report.entry) ->
        let a = Report.analyze entry in
        Printf.printf "%s at m=%d n=%d s=%d:\n" entry.display m n s;
        List.iter
          (fun tech ->
            let label =
              match tech with
              | `Classical -> "classical"
              | `Hourglass -> "hourglass"
            in
            match Report.eval_best a ~technique:tech ~m ~n ~s with
            | Some v -> Printf.printf "  %-10s Q >= %.1f\n" label v
            | None -> Printf.printf "  %-10s (no bound)\n" label)
          [ `Classical; `Hourglass ];
        Printf.printf "  %-10s %s\n" "paper"
          (Printf.sprintf "Q >= %.1f (theorem formula)"
             (Iolb.Paper_formulas.eval_at
                (Iolb.Paper_formulas.theorem_main entry.kernel)
                ~m ~n ~s)))
      (find_entry name)
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate the bounds at a concrete point")
    Term.(term_result (const run $ kernel_arg $ m_arg $ n_arg $ s_arg))

let simulate_cmd =
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random schedule seed.")
  in
  let run name m n s seed =
    Result.map
      (fun (entry : Report.entry) ->
        let params =
          match entry.kernel with
          | Iolb.Paper_formulas.Gehd2 -> [ ("N", n); ("M", (n / 2) - 1) ]
          | _ -> [ ("M", m); ("N", n) ]
        in
        let cdag = Cdag.of_program ~params entry.program in
        Format.printf "%a@." Cdag.pp_stats cdag;
        let a = Report.analyze entry in
        let program = Game.run cdag ~s ~schedule:(Game.program_schedule cdag) in
        let random =
          Game.run cdag ~s ~schedule:(Game.random_topological ~seed cdag)
        in
        Printf.printf "pebble game at S=%d:\n" s;
        Printf.printf "  program order : %d loads (peak red %d)\n"
          program.Game.loads program.Game.peak_red;
        Printf.printf "  random order  : %d loads (peak red %d)\n"
          random.Game.loads random.Game.peak_red;
        List.iter
          (fun tech ->
            match Report.eval_best a ~technique:tech ~m ~n ~s with
            | Some v ->
                Printf.printf "  lower bound (%s): %.1f\n"
                  (match tech with
                  | `Classical -> "classical"
                  | `Hourglass -> "hourglass")
                  v
            | None -> ())
          [ `Classical; `Hourglass ])
      (find_entry name)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Play the red-white pebble game and compare with the bounds")
    Term.(term_result (const run $ kernel_arg $ m_arg $ n_arg $ s_arg $ seed_arg))

let tile_cmd =
  let b_arg =
    Arg.(value & opt int 0 & info [ "b" ] ~doc:"Block size (0 = paper choice).")
  in
  let run name m n s b =
    let b = if b > 0 then b else max 1 ((s / m) - 1) in
    let b = if n mod b = 0 then b else 1 in
    match name with
    | "mgs" ->
        let trace = Trace.of_program ~params:[] (K.Mgs.tiled_spec ~m ~n ~b) in
        let opt = Cache.opt ~size:s trace and lru = Cache.lru ~size:s trace in
        Printf.printf "tiled MGS m=%d n=%d s=%d b=%d: opt=%d lru=%d predicted=%.0f\n"
          m n s b opt.Cache.loads lru.Cache.loads
          ((0.5 *. float_of_int (m * n * n) /. float_of_int b)
          +. float_of_int (m * n));
        Ok ()
    | "qr_hh_a2v" | "a2v" ->
        let trace =
          Trace.of_program ~params:[] (K.Householder.tiled_spec ~m ~n ~b)
        in
        let opt = Cache.opt ~size:s trace and lru = Cache.lru ~size:s trace in
        Printf.printf "tiled A2V m=%d n=%d s=%d b=%d: opt=%d lru=%d\n" m n s b
          opt.Cache.loads lru.Cache.loads;
        Ok ()
    | other ->
        Error (`Msg (Printf.sprintf "no tiled ordering for %S (mgs, a2v)" other))
  in
  Cmd.v
    (Cmd.info "tile" ~doc:"Cache-simulate a tiled ordering (Appendix A)")
    Term.(term_result (const run $ kernel_arg $ m_arg $ n_arg $ s_arg $ b_arg))

let dot_cmd =
  let out_arg =
    Arg.(
      value
      & opt string "cdag.dot"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output DOT file.")
  in
  let run name m n out =
    Result.map
      (fun (entry : Report.entry) ->
        let params =
          match entry.kernel with
          | Iolb.Paper_formulas.Gehd2 -> [ ("N", n); ("M", (n / 2) - 1) ]
          | _ -> [ ("M", m); ("N", n) ]
        in
        let cdag = Cdag.of_program ~params entry.program in
        Iolb_cdag.Dot.to_file out cdag;
        Printf.printf "wrote %s (%d nodes)\n" out (Cdag.n_nodes cdag))
      (find_entry name)
  in
  let small_m = Arg.(value & opt int 6 & info [ "m" ] ~docv:"M" ~doc:"Rows M.") in
  let small_n =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Columns N.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a small concrete CDAG to Graphviz")
    Term.(term_result (const run $ kernel_arg $ small_m $ small_n $ out_arg))

let () =
  let doc = "Automatic I/O lower bounds via the hourglass dependency pattern" in
  let info = Cmd.info "iolb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            analyze_cmd;
            bounds_cmd;
            eval_cmd;
            simulate_cmd;
            tile_cmd;
            dot_cmd;
          ]))
