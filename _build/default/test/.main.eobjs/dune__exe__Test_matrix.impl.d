test/test_matrix.ml: Alcotest Iolb_kernels
