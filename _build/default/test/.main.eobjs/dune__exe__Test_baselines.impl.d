test/test_baselines.ml: Alcotest Array Float Iolb Iolb_kernels Iolb_pebble List Printf
