(* Integer sets: membership, enumeration, Fourier-Motzkin soundness. *)

module A = Iolb_poly.Affine
module C = Iolb_poly.Constr
module I = Iolb_poly.Iset

let v = A.var
let c = A.const

let triangle_n =
  (* { (i, j) | 0 <= i <= j <= N-1 } *)
  I.make ~dims:[ "i"; "j" ]
    [
      C.ge (v "i");
      C.ge_of (v "j") (v "i");
      C.le_of (v "j") (A.sub (v "N") (c 1));
    ]

let test_triangle_cardinal () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "triangle N=%d" n)
        (n * (n + 1) / 2)
        (I.cardinal ~params:[ ("N", n) ] triangle_n))
    [ 1; 2; 5; 10 ]

let test_empty () =
  Alcotest.(check bool)
    "N=0 empty" true
    (I.is_empty ~params:[ ("N", 0) ] triangle_n);
  let contradictory =
    I.make ~dims:[ "i" ] [ C.ge (v "i"); C.le_of (v "i") (c (-1)) ]
  in
  Alcotest.(check bool) "contradiction" true (I.is_empty ~params:[] contradictory)

let test_membership_matches_enumeration () =
  let params = [ ("N", 6) ] in
  let points = I.enumerate ~params triangle_n in
  List.iter
    (fun p ->
      Alcotest.(check bool) "enumerated point is member" true
        (I.mem ~params triangle_n p))
    points;
  (* And non-members are rejected. *)
  Alcotest.(check bool) "(3,2) not member" false
    (I.mem ~params triangle_n [| 3; 2 |]);
  Alcotest.(check bool) "(0,6) not member" false
    (I.mem ~params triangle_n [| 0; 6 |])

let test_bounds_of_dim () =
  let lo, hi = I.bounds_of_dim ~params:[ ("N", 8) ] triangle_n "j" in
  Alcotest.(check (option int)) "j lower" (Some 0) lo;
  Alcotest.(check (option int)) "j upper" (Some 7) hi

let test_projection_sound () =
  (* Every enumerated point of the set projects into the FM projection. *)
  let params = [ ("N", 7) ] in
  let proj = I.project ~onto:[ "j" ] triangle_n in
  List.iter
    (fun p ->
      Alcotest.(check bool) "projection contains shadow" true
        (I.mem ~params proj [| p.(1) |]))
    (I.enumerate ~params triangle_n)

(* Random boxes with a random cutting plane: enumeration must agree with
   brute-force filtering over the box. *)
let random_set_test =
  let gen =
    let open QCheck2.Gen in
    (* box bounds and one extra constraint a*i + b*j + k >= 0 *)
    triple (int_range 0 6) (int_range 0 6)
      (triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-8) 8))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"enumerate = brute force on cut boxes" ~count:200
       gen
       (fun (bi, bj, (a, b, k)) ->
         let set =
           I.make ~dims:[ "i"; "j" ]
             [
               C.ge (v "i");
               C.le_of (v "i") (c bi);
               C.ge (v "j");
               C.le_of (v "j") (c bj);
               C.ge (A.of_terms [ (a, "i"); (b, "j") ] k);
             ]
         in
         let enumerated = I.enumerate ~params:[] set in
         let brute = ref [] in
         for i = 0 to bi do
           for j = 0 to bj do
             if (a * i) + (b * j) + k >= 0 then brute := [| i; j |] :: !brute
           done
         done;
         List.sort compare enumerated = List.sort compare (List.rev !brute)))

(* Differential tests: the compiled representation against the retained
   list-based reference implementation (Iset_ref), on random bounded
   systems over three dimensions and one parameter.  Equality and
   cutting-plane constraints may make the system empty or collapse it to
   lower dimension - exactly the shapes the normalisation and pruning
   passes must not change. *)
module IR = Iolb_poly.Iset_ref

let ref_dims = [ "i"; "j"; "k" ]

let ref_system_gen =
  let open QCheck2.Gen in
  let coeff = int_range (-3) 3 in
  let extra =
    triple
      (oneofl [ C.Ge; C.Eq ])
      (triple coeff coeff coeff)
      (pair (int_range (-2) 2) (int_range (-8) 8))
  in
  triple
    (triple (int_range 0 4) (int_range 0 4) (int_range 0 4))
    (int_range 0 5)
    (pair extra (option extra))

let ref_system ((bi, bj, bk), n, (e1, e2)) =
  let box d b = [ C.ge (v d); C.le_of (v d) (c b) ] in
  let mk (kind, (a, b, k'), (dn, e)) =
    let expr = A.of_terms [ (a, "i"); (b, "j"); (k', "k"); (dn, "N") ] e in
    match kind with C.Ge -> C.ge expr | C.Eq -> C.eq expr
  in
  let cons =
    box "i" bi @ box "j" bj @ box "k" bk
    @ (mk e1 :: (match e2 with None -> [] | Some e -> [ mk e ]))
  in
  (cons, [ ("N", n) ])

let ref_test name prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:300 ref_system_gen (fun input ->
         let cons, params = ref_system input in
         prop cons params (I.make ~dims:ref_dims cons)))

let ref_enumerate_test =
  ref_test "compiled enumerate = reference enumerate" (fun cons params set ->
      I.enumerate ~params set = IR.enumerate ~params ~dims:ref_dims cons)

let ref_cardinal_test =
  ref_test "compiled cardinal = reference point count" (fun cons params set ->
      I.cardinal ~params set
      = List.length (IR.enumerate ~params ~dims:ref_dims cons))

let ref_is_empty_test =
  ref_test "compiled is_empty = reference emptiness" (fun cons params set ->
      I.is_empty ~params set = (IR.enumerate ~params ~dims:ref_dims cons = []))

let ref_project_test =
  ref_test "project-then-mem soundness vs reference points"
    (fun cons params set ->
      let proj = I.project ~onto:[ "j"; "k" ] set in
      List.for_all
        (fun p -> I.mem ~params proj [| p.(1); p.(2) |])
        (IR.enumerate ~params ~dims:ref_dims cons))

let test_affine_ops () =
  let e = A.of_terms [ (2, "i"); (-1, "j") ] 3 in
  Alcotest.(check int) "eval" 4 (A.eval (function "i" -> 2 | _ -> 3) e);
  Alcotest.(check int) "coeff i" 2 (A.coeff "i" e);
  Alcotest.(check int) "coeff absent" 0 (A.coeff "z" e);
  let e' = A.subst "i" (A.add (v "k") (c 1)) e in
  (* 2(k+1) - j + 3 = 2k - j + 5 *)
  Alcotest.(check bool) "subst" true
    (A.equal e' (A.of_terms [ (2, "k"); (-1, "j") ] 5))

(* Complements the exact-text check in test_kernel_errors: the intersect
   diagnostic must name both dimension lists verbatim for every mismatch
   shape - different order of the same names, different lengths, and an
   empty side - since those are the cases a kernel author actually hits. *)
let test_intersect_diagnostic_shapes () =
  let set dims = I.make ~dims (List.map (fun d -> C.ge (v d)) dims) in
  List.iter
    (fun (da, db, expected) ->
      match I.intersect (set da) (set db) with
      | _ -> Alcotest.failf "[%s]/[%s]: expected Invalid_argument"
               (String.concat ";" da) (String.concat ";" db)
      | exception Invalid_argument msg ->
          Alcotest.(check string) "diagnostic text" expected msg)
    [
      ( [ "i"; "j" ],
        [ "j"; "i" ],
        "Iset.intersect: dimension mismatch ([i; j] vs [j; i])" );
      ( [ "i" ],
        [ "i"; "j" ],
        "Iset.intersect: dimension mismatch ([i] vs [i; j])" );
      ([], [ "k" ], "Iset.intersect: dimension mismatch ([] vs [k])");
    ];
  (* And the non-error side: intersection conjoins the constraints. *)
  let a = I.make ~dims:[ "i" ] [ C.ge (v "i"); C.le_of (v "i") (c 5) ] in
  let b = I.make ~dims:[ "i" ] [ C.ge_of (v "i") (c 3) ] in
  Alcotest.(check int) "conjoined cardinality" 3
    (I.cardinal ~params:[] (I.intersect a b))

let suite =
  [
    Alcotest.test_case "affine expression operations" `Quick test_affine_ops;
    Alcotest.test_case "intersect diagnostic shapes" `Quick
      test_intersect_diagnostic_shapes;
    Alcotest.test_case "triangular cardinality" `Quick test_triangle_cardinal;
    Alcotest.test_case "emptiness" `Quick test_empty;
    Alcotest.test_case "membership vs enumeration" `Quick
      test_membership_matches_enumeration;
    Alcotest.test_case "per-dimension bounds" `Quick test_bounds_of_dim;
    Alcotest.test_case "FM projection soundness" `Quick test_projection_sound;
    random_set_test;
    ref_enumerate_test;
    ref_cardinal_test;
    ref_is_empty_test;
    ref_project_test;
  ]
