lib/pebble/cache.mli: Format Trace
