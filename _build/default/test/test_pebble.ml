(* CDAG construction and the red-white pebble game. *)

module Cdag = Iolb_cdag.Cdag
module Game = Iolb_pebble.Game
module Program = Iolb_ir.Program
module K = Iolb_kernels

let mgs_cdag m n = Cdag.of_program ~params:[ ("M", m); ("N", n) ] K.Mgs.spec

let test_cdag_counts () =
  let params = [ ("M", 5); ("N", 3) ] in
  let cdag = Cdag.of_program ~params K.Mgs.spec in
  Alcotest.(check int)
    "computes = instances"
    (Program.count_instances ~params K.Mgs.spec)
    (Cdag.n_computes cdag);
  (* Inputs: exactly the M*N cells of A. *)
  Alcotest.(check int) "inputs = M*N" 15 (Cdag.n_inputs cdag)

let test_program_order_topological () =
  let cdag = mgs_cdag 5 3 in
  let order = Cdag.program_order cdag in
  let pos = Array.make (Cdag.n_nodes cdag) 0 in
  Array.iteri (fun i id -> pos.(id) <- i) order;
  let ok = ref true in
  for id = 0 to Cdag.n_nodes cdag - 1 do
    Array.iter (fun p -> if pos.(p) >= pos.(id) then ok := false) (Cdag.preds cdag id)
  done;
  Alcotest.(check bool) "preds before succs" true !ok

let test_reachability () =
  let cdag = mgs_cdag 4 3 in
  (* SU[0,1,0] must reach SU[1,2,0] (hourglass chain), and nothing reaches
     backwards. *)
  let a = Option.get (Cdag.node_of_instance cdag "SU" [| 0; 1; 0 |]) in
  let b = Option.get (Cdag.node_of_instance cdag "SU" [| 1; 2; 0 |]) in
  Alcotest.(check bool) "forward reachable" true (Cdag.is_reachable cdag a b);
  Alcotest.(check bool) "not backward" false (Cdag.is_reachable cdag b a)

let test_convex_closure () =
  let cdag = mgs_cdag 4 3 in
  (* SU instances at the same neutral j = 2, consecutive temporal k. *)
  let a = Option.get (Cdag.node_of_instance cdag "SU" [| 0; 2; 0 |]) in
  let b = Option.get (Cdag.node_of_instance cdag "SU" [| 1; 2; 0 |]) in
  let closure = Cdag.convex_closure cdag [ a; b ] in
  (* The closure must contain the whole SR[1,2,*] reduction line (the
     hourglass neck). *)
  let contains_sr =
    List.exists
      (fun id ->
        match Cdag.kind cdag id with
        | Cdag.Compute ("SR", [| 1; 2; _ |]) -> true
        | _ -> false)
      closure
  in
  Alcotest.(check bool) "closure contains SR line" true contains_sr;
  Alcotest.(check bool) "closure contains endpoints" true
    (List.mem a closure && List.mem b closure)

let test_inset () =
  let cdag = mgs_cdag 4 3 in
  (* A single node's inset is its in-degree (distinct predecessors). *)
  let a = Option.get (Cdag.node_of_instance cdag "SU" [| 0; 1; 0 |]) in
  Alcotest.(check int) "inset of single node" 3 (Cdag.inset cdag [ a ]);
  Alcotest.(check int) "inset of empty set" 0 (Cdag.inset cdag [])

let test_game_runs_and_counts () =
  let cdag = mgs_cdag 6 4 in
  let schedule = Game.program_schedule cdag in
  let footprint = Cdag.n_inputs cdag in
  (* With a huge memory, loads = compulsory input loads only. *)
  let big = Game.run cdag ~s:10_000 ~schedule in
  Alcotest.(check int) "loads = inputs when S is huge" footprint big.loads;
  (* With a small memory, more loads are needed; never fewer. *)
  let small = Game.run cdag ~s:8 ~schedule in
  Alcotest.(check bool) "small memory loads >= inputs" true
    (small.loads >= footprint);
  Alcotest.(check bool) "peak respects capacity" true (small.peak_red <= 8)

let test_game_monotone_in_s () =
  let cdag = mgs_cdag 6 4 in
  let schedule = Game.program_schedule cdag in
  let loads s = (Game.run cdag ~s ~schedule).loads in
  let l8 = loads 8 and l16 = loads 16 and l32 = loads 32 in
  Alcotest.(check bool) "monotone" true (l8 >= l16 && l16 >= l32)

let test_game_infeasible () =
  let cdag = mgs_cdag 4 3 in
  let schedule = Game.program_schedule cdag in
  Alcotest.(check bool) "S=2 infeasible (fan-in 3 + result)" true
    (try
       ignore (Game.run cdag ~s:2 ~schedule);
       false
     with Game.Infeasible _ -> true)

let test_random_schedules_valid () =
  let cdag = mgs_cdag 5 3 in
  List.iter
    (fun seed ->
      let schedule = Game.random_topological ~seed cdag in
      Alcotest.(check bool)
        (Printf.sprintf "random schedule %d topological" seed)
        true
        (Game.is_topological cdag schedule);
      let r = Game.run cdag ~s:12 ~schedule in
      Alcotest.(check bool) "positive loads" true (r.loads > 0))
    [ 0; 1; 2; 3; 4 ]

let test_rejects_bad_schedule () =
  let cdag = mgs_cdag 4 3 in
  let schedule = Game.program_schedule cdag in
  (* Reverse it: certainly not topological. *)
  let bad = Array.of_list (List.rev (Array.to_list schedule)) in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Game.run cdag ~s:100 ~schedule:bad);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "cdag node counts" `Quick test_cdag_counts;
    Alcotest.test_case "program order is topological" `Quick
      test_program_order_topological;
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "convex closure contains the neck" `Quick
      test_convex_closure;
    Alcotest.test_case "inset" `Quick test_inset;
    Alcotest.test_case "pebble game load counts" `Quick test_game_runs_and_counts;
    Alcotest.test_case "loads monotone in S" `Quick test_game_monotone_in_s;
    Alcotest.test_case "infeasible when fan-in exceeds S" `Quick
      test_game_infeasible;
    Alcotest.test_case "random topological schedules" `Quick
      test_random_schedules_valid;
    Alcotest.test_case "non-topological schedules rejected" `Quick
      test_rejects_bad_schedule;
  ]
