(** Symmetric rank-2k update: C (lower) += A B^T + B A^T, from the
    Polybench suite the paper's IOLB reference evaluates on.  Classical
    Theta(N^2 K / sqrt S) kernel, no hourglass. *)

val spec : Iolb_ir.Program.t

(** [run a b] computes the full symmetric [n x n] result. *)
val run : Matrix.t -> Matrix.t -> Matrix.t
