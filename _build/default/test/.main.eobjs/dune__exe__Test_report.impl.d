test/test_report.ml: Alcotest Array Iolb Iolb_cdag Iolb_ir Iolb_kernels Iolb_symbolic Iolb_util List Option Printf String
