module Budget = Iolb_util.Budget

(* Single-pass LRU cache sweep via reuse (stack) distances, after Mattson
   et al. 1970.  LRU has the inclusion property: the content of a cache of
   size S is always a subset of the content of a cache of size S+1 (the S
   most recently used distinct cells).  A read therefore hits at size S iff
   its reuse distance d - the number of distinct other cells accessed since
   the previous access of the same cell - satisfies d < S, so one pass
   computing every access's distance answers every size at once.

   Distances come from a Fenwick (binary indexed) tree over trace
   positions: position i is marked iff it is the current last access of
   some cell, so the number of marked positions strictly between two
   consecutive accesses of a cell is exactly its reuse distance.  Each
   access does one range query and at most two point updates: O(T log T)
   for the whole trace.

   Write-back stores are recovered from the same distances.  The simulator
   semantics (Cache.lru) are write-allocate-no-fetch: a write dirties the
   cell for every size; a dirty cell evicted at size S is stored; the final
   flush stores cells still dirty in cache.  Per cell we track a "dirty
   epoch": [mval] is the maximum distance observed at its accesses since
   its last write.  At an access with distance d, sizes S <= mval already
   evicted (and stored) the dirty data earlier in the epoch, while sizes
   S > d still hold the cell; exactly the sizes in (mval, d] evict the
   dirty cell now, so each access contributes one store on that interval of
   sizes, accumulated in a difference array.  A write resets the epoch
   (mval := 0: dirty again everywhere); a read raises mval to d (sizes
   <= d now hold a clean reloaded copy).  At end of trace the cell's final
   stack depth closes the epoch: with flush the interval is (mval, ncells]
   (stored on eviction or at the flush), without it (mval, depth] (stored
   only if actually evicted). *)

type t = {
  accesses : int;
  ncells : int;
  reads_total : int;
  flush : bool;
  hits_at : int array; (* hits_at.(s), s in 0..ncells: read hits at size s *)
  stores_at : int array; (* stores_at.(s): write-back stores at size s *)
  dist_hist : int array; (* dist_hist.(d), d in 0..ncells-1: finite-distance reads *)
}

let footprint t = t.ncells
let accesses t = t.accesses
let flushed t = t.flush
let distance_histogram t = Array.copy t.dist_hist

let run ?(budget = Budget.unlimited) ?(flush = true) trace =
  let n = Trace.length trace and ncells = Trace.footprint trace in
  let cells = Trace.cells trace and wflags = Trace.write_flags trace in
  (* Fenwick tree over 1-based positions 1..n; event i maps to i+1.
     Unsafe indexing is in bounds: Fenwick walks stay within [1, n],
     event indices within [0, n-1], cell ids within [0, ncells-1]. *)
  let bit = Array.make (n + 1) 0 in
  let bit_add i v =
    let i = ref i in
    while !i <= n do
      Array.unsafe_set bit !i (Array.unsafe_get bit !i + v);
      i := !i + (!i land - !i)
    done
  in
  let bit_sum i =
    let i = ref i and acc = ref 0 in
    while !i > 0 do
      acc := !acc + Array.unsafe_get bit !i;
      i := !i land (!i - 1)
    done;
    !acc
  in
  let nc = max ncells 1 in
  let last = Array.make nc (-1) in
  let has_write = Array.make nc false in
  let mval = Array.make nc 0 in
  let dist_hist = Array.make (max ncells 1) 0 in
  let store_diff = Array.make (ncells + 2) 0 in
  let reads_total = ref 0 in
  (* one store for every size in [lo, hi] (clamped to 1..ncells) *)
  let add_store_interval lo hi =
    let lo = max lo 1 and hi = min hi ncells in
    if lo <= hi then begin
      store_diff.(lo) <- store_diff.(lo) + 1;
      store_diff.(hi + 1) <- store_diff.(hi + 1) - 1
    end
  in
  let unlimited = Budget.is_unlimited budget in
  for i = 0 to n - 1 do
    if not unlimited then Budget.checkpoint budget Budget.Cache_sim;
    let c = Array.unsafe_get cells i in
    let p = Array.unsafe_get last c in
    if p < 0 then begin
      (* cold access: misses at every size *)
      if Array.unsafe_get wflags i then begin
        Array.unsafe_set has_write c true;
        Array.unsafe_set mval c 0
      end
      else incr reads_total
    end
    else begin
      (* marked positions strictly between the two accesses, i.e. BIT
         positions p+2 .. i (1-based), are the distinct other cells. *)
      let d = bit_sum i - bit_sum (p + 1) in
      if Array.unsafe_get wflags i then begin
        if Array.unsafe_get has_write c then
          add_store_interval (Array.unsafe_get mval c + 1) d;
        Array.unsafe_set has_write c true;
        Array.unsafe_set mval c 0
      end
      else begin
        incr reads_total;
        Array.unsafe_set dist_hist d (Array.unsafe_get dist_hist d + 1);
        if Array.unsafe_get has_write c then begin
          add_store_interval (Array.unsafe_get mval c + 1) d;
          if d > Array.unsafe_get mval c then Array.unsafe_set mval c d
        end
      end;
      bit_add (p + 1) (-1)
    end;
    bit_add (i + 1) 1;
    Array.unsafe_set last c i
  done;
  (* Close the dirty epochs: a cell's final stack depth is the number of
     marked positions after its last access. *)
  let total_marked = bit_sum n in
  for c = 0 to ncells - 1 do
    Budget.checkpoint budget Budget.Cache_sim;
    if has_write.(c) then begin
      let depth = total_marked - bit_sum (last.(c) + 1) in
      add_store_interval (mval.(c) + 1) (if flush then ncells else depth)
    end
  done;
  (* Prefix sums: hits_at.(s) = #reads with distance < s; stores_at.(s) =
     #store intervals covering s. *)
  let hits_at = Array.make (ncells + 1) 0 in
  let stores_at = Array.make (ncells + 1) 0 in
  for s = 1 to ncells do
    hits_at.(s) <- hits_at.(s - 1) + dist_hist.(s - 1);
    stores_at.(s) <- stores_at.(s - 1) + store_diff.(s)
  done;
  {
    accesses = n;
    ncells;
    reads_total = !reads_total;
    flush;
    hits_at;
    stores_at;
    dist_hist = (if ncells = 0 then [||] else dist_hist);
  }

let stats t ~size =
  if size < 1 then invalid_arg "Sweep.stats: size < 1";
  (* A cache at least as large as the footprint never evicts: sizes above
     [ncells] coincide with [ncells]. *)
  let s = min size t.ncells in
  {
    Cache.loads = t.reads_total - t.hits_at.(s);
    stores = t.stores_at.(s);
    read_hits = t.hits_at.(s);
    accesses = t.accesses;
  }

let run_checked ?budget ?flush trace =
  Iolb_util.Engine_error.guard (fun () -> run ?budget ?flush trace)

(* Answer a size list with whichever engine is cheaper: a single size runs
   the O(T) LRU simulator directly; two or more sizes share one O(T log T)
   sweep pass.  Results are identical either way. *)
let lru_stats ?budget ?flush trace ~sizes =
  match sizes with
  | [] -> []
  | [ size ] -> [ (size, Cache.lru ?budget ~size ?flush trace) ]
  | _ ->
      let t = run ?budget ?flush trace in
      List.map (fun size -> (size, stats t ~size)) sizes

(* Size-list syntax shared by the CLI and the bench: "a,b,c" or
   "lo:hi:step". *)
let parse_sizes spec =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let int_of s =
    match int_of_string_opt (String.trim s) with
    | Some v -> Ok v
    | None -> fail "invalid size %S (expected an integer)" s
  in
  let ( let* ) = Result.bind in
  if String.trim spec = "" then fail "empty size list"
  else if String.contains spec ':' then
    match String.split_on_char ':' spec with
    | [ lo; hi; step ] ->
        let* lo = int_of lo in
        let* hi = int_of hi in
        let* step = int_of step in
        if lo < 1 then fail "range start %d < 1" lo
        else if step < 1 then fail "range step %d < 1" step
        else if hi < lo then fail "range %d:%d is empty (hi < lo)" lo hi
        else begin
          let acc = ref [] in
          let s = ref lo in
          while !s <= hi do
            acc := !s :: !acc;
            s := !s + step
          done;
          Ok (List.rev !acc)
        end
    | _ -> fail "invalid range %S (expected lo:hi:step)" spec
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest ->
          let* v = int_of x in
          if v < 1 then fail "size %d < 1" v else go (v :: acc) rest
    in
    go [] (String.split_on_char ',' spec)
