test/test_upper_bounds.ml: Alcotest Float Iolb Iolb_kernels Iolb_pebble Iolb_symbolic Iolb_util List Printf
