module Program = Iolb_ir.Program
module Interner = Iolb_ir.Interner
module Budget = Iolb_util.Budget

type kind =
  | Input of string * int array
  | Compute of string * int array

type t = {
  kinds : kind array;
  preds : int array array;
  succs : int array array;
  order : int array; (* topological: program order with inputs at first use *)
  by_stmt : (string, int list) Hashtbl.t;
  instances : Interner.t; (* (stmt name, vec) -> dense instance id *)
  instance_node : int array; (* dense instance id -> node id *)
  n_inputs : int;
}

(* Int arrays indexed by interned ids, growing with the interner. *)
let ensure arr len =
  if len <= Array.length !arr then ()
  else begin
    let bigger = Array.make (max len (2 * Array.length !arr)) (-1) in
    Array.blit !arr 0 bigger 0 (Array.length !arr);
    arr := bigger
  end

let of_program ?(budget = Budget.unlimited) ~params p =
  let kinds = ref [] and preds = ref [] in
  let n = ref 0 in
  let order = ref [] in
  let by_stmt = Hashtbl.create 16 in
  (* Data cells and statement instances are interned to dense ids once,
     here, so dependence resolution runs on int-indexed arrays instead of
     hashing (string * int array) keys per access. *)
  let cells = Interner.create () in
  let last_writer = ref (Array.make 1024 (-1)) in
  let instances = Interner.create () in
  let instance_node = ref (Array.make 1024 (-1)) in
  let inputs = ref 0 in
  let add_node kind pred_list =
    let id = !n in
    incr n;
    Budget.check_node_cap budget Budget.Cdag_build !n;
    kinds := kind :: !kinds;
    preds := pred_list :: !preds;
    order := id :: !order;
    id
  in
  Program.iter_instances ~params p (fun inst ->
      Budget.checkpoint budget Budget.Cdag_build;
      let pred_ids =
        List.map
          (fun cell ->
            let cid = Interner.intern cells cell in
            ensure last_writer (cid + 1);
            match !last_writer.(cid) with
            | -1 ->
                let a, idx = cell in
                let id = add_node (Input (a, idx)) [] in
                incr inputs;
                !last_writer.(cid) <- id;
                id
            | id -> id)
          inst.loads
      in
      (* A value read twice by the same instance is a single dependence. *)
      let pred_ids = List.sort_uniq Int.compare pred_ids in
      let id = add_node (Compute (inst.stmt_name, inst.vec)) pred_ids in
      let iid = Interner.intern instances (inst.stmt_name, inst.vec) in
      ensure instance_node (iid + 1);
      !instance_node.(iid) <- id;
      Hashtbl.replace by_stmt inst.stmt_name
        (id :: (try Hashtbl.find by_stmt inst.stmt_name with Not_found -> []));
      List.iter
        (fun cell ->
          let cid = Interner.intern cells cell in
          ensure last_writer (cid + 1);
          !last_writer.(cid) <- id)
        inst.stores);
  let kinds = Array.of_list (List.rev !kinds) in
  let preds = Array.of_list (List.rev_map Array.of_list !preds) in
  let succs = Array.make (Array.length kinds) [] in
  Array.iteri
    (fun id ps -> Array.iter (fun p -> succs.(p) <- id :: succs.(p)) ps)
    preds;
  let succs = Array.map (fun l -> Array.of_list (List.rev l)) succs in
  Hashtbl.iter
    (fun s ids -> Hashtbl.replace by_stmt s (List.rev ids))
    (Hashtbl.copy by_stmt);
  {
    kinds;
    preds;
    succs;
    order = Array.of_list (List.rev !order);
    by_stmt;
    instances;
    instance_node = Array.sub !instance_node 0 (Interner.count instances);
    n_inputs = !inputs;
  }

let of_program_checked ?budget ~params p =
  Iolb_util.Engine_error.guard (fun () -> of_program ?budget ~params p)

let n_nodes t = Array.length t.kinds
let kind t id = t.kinds.(id)
let preds t id = t.preds.(id)
let succs t id = t.succs.(id)
let program_order t = t.order

let nodes_of_stmt t name =
  try Hashtbl.find t.by_stmt name with Not_found -> []

let node_of_instance t name vec =
  Option.map
    (fun iid -> t.instance_node.(iid))
    (Interner.find_opt t.instances (name, vec))

let n_inputs t = t.n_inputs
let n_computes t = n_nodes t - t.n_inputs

let is_reachable t a b =
  if a = b then true
  else begin
    let visited = Array.make (n_nodes t) false in
    let queue = Queue.create () in
    Queue.add a queue;
    visited.(a) <- true;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun v ->
          if v = b then found := true
          else if not visited.(v) then begin
            visited.(v) <- true;
            Queue.add v queue
          end)
        t.succs.(u)
    done;
    !found
  end

let convex_closure t nodes =
  (* v is in the closure iff it reaches some member and is reached by some
     member.  Compute the forward set of [nodes] and the backward set, then
     intersect. *)
  let n = n_nodes t in
  let forward = Array.make n false and backward = Array.make n false in
  let bfs mark edges starts =
    let queue = Queue.create () in
    List.iter
      (fun s ->
        if not mark.(s) then begin
          mark.(s) <- true;
          Queue.add s queue
        end)
      starts;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun v ->
          if not mark.(v) then begin
            mark.(v) <- true;
            Queue.add v queue
          end)
        edges.(u)
    done
  in
  bfs forward t.succs nodes;
  bfs backward t.preds nodes;
  let out = ref [] in
  for id = n - 1 downto 0 do
    if forward.(id) && backward.(id) then out := id :: !out
  done;
  !out

let inset t nodes =
  let member = Hashtbl.create (List.length nodes) in
  List.iter (fun id -> Hashtbl.replace member id ()) nodes;
  let outside = Hashtbl.create 64 in
  List.iter
    (fun id ->
      Array.iter
        (fun p -> if not (Hashtbl.mem member p) then Hashtbl.replace outside p ())
        t.preds.(id))
    nodes;
  Hashtbl.length outside

let pp_stats fmt t =
  Format.fprintf fmt "nodes: %d (inputs: %d, computes: %d), edges: %d"
    (n_nodes t) t.n_inputs (n_computes t)
    (Array.fold_left (fun acc ps -> acc + Array.length ps) 0 t.preds)
