lib/symbolic/monomial.ml: Format Int Iolb_util List Map String
