(** Concrete computational DAGs (CDAGs).

    A CDAG instantiates a polyhedral program at concrete parameter values:
    one node per statement instance (plus one per input cell read before
    written), one edge per flow (read-after-write) dependence.  This is the
    board of the red-white pebble game (Section 2 of the paper) and the
    object on which the hourglass properties are validated empirically. *)

type kind =
  | Input of string * int array  (** an input array cell *)
  | Compute of string * int array  (** statement name, iteration vector *)

type t

(** [of_program ~params p] builds the CDAG by abstract execution with
    last-writer tracking: reads resolve to the most recent write of the same
    cell in program order, which is the exact flow dependence for these
    (deterministic, unconditionally executed) programs.  Cells and
    statement instances are interned to dense ids ({!Iolb_ir.Interner})
    during the build, so dependence resolution and instance lookup run on
    int-indexed arrays rather than hashing [(string * int array)] keys.

    One [Cdag_build] budget checkpoint is accounted per statement instance,
    and the budget's node cap bounds the total node count of this CDAG.
    The result is immutable and safe to share read-only across a
    {!Iolb_util.Pool} fan-out.
    @raise Iolb_util.Budget.Exhausted when the budget runs out. *)
val of_program :
  ?budget:Iolb_util.Budget.t -> params:(string * int) list -> Iolb_ir.Program.t -> t

(** [of_program_checked] is {!of_program} behind the no-raise boundary:
    budget exhaustion and malformed inputs come back as typed errors. *)
val of_program_checked :
  ?budget:Iolb_util.Budget.t ->
  params:(string * int) list ->
  Iolb_ir.Program.t ->
  (t, Iolb_util.Engine_error.t) result

val n_nodes : t -> int
val kind : t -> int -> kind

(** Predecessors (the values a node consumes), as node ids. *)
val preds : t -> int -> int array

val succs : t -> int -> int array

(** [preds_csr t] is the whole predecessor relation in CSR form,
    [(offsets, flat)]: node [id]'s predecessors are
    [flat.(offsets.(id)) .. flat.(offsets.(id + 1) - 1)], in the same
    order {!preds} returns them.  [offsets] has length [n_nodes t + 1].
    Built once with the CDAG; engines whose inner loops walk edges per
    scheduled node (the pebble game) index one contiguous array instead
    of chasing per-node pointers.  Never mutate the returned arrays. *)
val preds_csr : t -> int array * int array

(** [succs_csr t] is the successor relation in CSR form; see
    {!preds_csr}. *)
val succs_csr : t -> int array * int array

(** Node ids in a valid topological (= program) order, inputs first at their
    first use point. *)
val program_order : t -> int array

(** All node ids of instances of the given statement. *)
val nodes_of_stmt : t -> string -> int list

(** [node_of_instance t name vec] finds the compute node for one instance. *)
val node_of_instance : t -> string -> int array -> int option

val n_inputs : t -> int
val n_computes : t -> int

(** [is_reachable t a b]: is there a directed path from [a] to [b]? (BFS) *)
val is_reachable : t -> int -> int -> bool

(** A reusable reachability oracle over one CDAG.  Visited marks are
    epoch-stamped and the DFS stack is kept across queries, so repeated
    queries (e.g. hourglass verification over many instance pairs)
    allocate nothing after the first. *)
type reachability

val reachability : t -> reachability

(** [reaches r a b] is [is_reachable] on the oracle's CDAG, without
    per-query allocation.  Not thread-safe: use one oracle per domain. *)
val reaches : reachability -> int -> int -> bool

(** [convex_closure t nodes] adds every node lying on a directed path
    between two nodes of [nodes] - the convexity completion used when
    reasoning about K-bounded sets. *)
val convex_closure : t -> int list -> int list

(** [inset t nodes] is the number of distinct values consumed by [nodes] but
    produced outside [nodes] (the InSet of the paper). *)
val inset : t -> int list -> int

val pp_stats : Format.formatter -> t -> unit
