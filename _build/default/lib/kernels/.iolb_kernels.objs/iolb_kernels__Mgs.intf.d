lib/kernels/mgs.mli: Iolb_ir Matrix
