test/test_phi.ml: Access Affine Alcotest Iolb Iolb_ir Iolb_kernels Iolb_poly List
