(* Entries are packed as (pos, payload) pairs in two parallel arrays. *)
type t = {
  mutable pos : int array;
  mutable payload : int array;
  mutable len : int;
}

let create () = { pos = Array.make 1024 0; payload = Array.make 1024 0; len = 0 }
let is_empty h = h.len = 0
let length h = h.len

let swap h i j =
  let tp = h.pos.(i) and tl = h.payload.(i) in
  h.pos.(i) <- h.pos.(j);
  h.payload.(i) <- h.payload.(j);
  h.pos.(j) <- tp;
  h.payload.(j) <- tl

let push h ~pos ~payload =
  if h.len = Array.length h.pos then begin
    let np = Array.make (2 * h.len) 0 and nl = Array.make (2 * h.len) 0 in
    Array.blit h.pos 0 np 0 h.len;
    Array.blit h.payload 0 nl 0 h.len;
    h.pos <- np;
    h.payload <- nl
  end;
  h.pos.(h.len) <- pos;
  h.payload.(h.len) <- payload;
  let i = ref h.len in
  h.len <- h.len + 1;
  while !i > 0 && h.pos.((!i - 1) / 2) < h.pos.(!i) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop h =
  if h.len = 0 then raise Not_found;
  let top = (h.pos.(0), h.payload.(0)) in
  h.len <- h.len - 1;
  h.pos.(0) <- h.pos.(h.len);
  h.payload.(0) <- h.payload.(h.len);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let largest = ref !i in
    if l < h.len && h.pos.(l) > h.pos.(!largest) then largest := l;
    if r < h.len && h.pos.(r) > h.pos.(!largest) then largest := r;
    if !largest <> !i then begin
      swap h !i !largest;
      i := !largest
    end
    else continue := false
  done;
  top
