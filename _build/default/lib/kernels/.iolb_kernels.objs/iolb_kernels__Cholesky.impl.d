lib/kernels/cholesky.ml: Constr Matrix Program Shorthand
