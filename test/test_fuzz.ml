(* Whole-pipeline fuzz, now a thin QCheck driver over the soundness
   certifier (lib/check): the generator, the property registry and the
   structural shrinker live there, shared with the [iolb check] CLI.  This
   suite only picks seeds and asserts that no registered oracle finds a
   counterexample. *)

module Check = Iolb_check.Check
module Gen = Iolb_check.Gen
module Oracle = Iolb_check.Oracle
module Spec = Iolb_check.Spec

(* Print the spec behind a failing seed so the counterexample is actionable
   (and replayable via [iolb check --seed N --count 1]). *)
let print_seed seed =
  Printf.sprintf "seed %d -> %s" seed (Spec.to_string (Gen.spec ~seed))

let seed_ok seed =
  let ctx = Oracle.make_ctx (Gen.spec ~seed) in
  List.for_all
    (fun o ->
      match Oracle.run o ctx with
      | Oracle.Pass | Oracle.Skip _ -> true
      | Oracle.Fail _ -> false)
    Oracle.all

let quick_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random programs satisfy every oracle" ~count:80
       ~print:print_seed
       QCheck2.Gen.(int_range 0 1_000_000)
       seed_ok)

(* The nightly-depth sweep: the full driver (shrinking included) over a
   contiguous seed range, with the hourglass-coverage acceptance check. *)
let deep_sweep () =
  let report = Check.run ~count:400 ~seed:424242 ~props:Oracle.all () in
  (match report.Check.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "seed %d failed %s: %s (shrunk: %s)" f.Check.seed
        f.Check.prop f.Check.detail
        (Spec.to_string f.Check.shrunk));
  Alcotest.(check int) "no counterexamples" 0 report.Check.failed;
  Alcotest.(check bool) "hourglass family reaches the hourglass derivation"
    true
    (report.Check.coverage.Check.hourglass_bounds > 0)

let suite =
  [ quick_fuzz; Alcotest.test_case "deep certifier sweep" `Slow deep_sweep ]
