lib/kernels/matrix.mli: Format
