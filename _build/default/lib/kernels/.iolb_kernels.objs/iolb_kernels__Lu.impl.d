lib/kernels/lu.ml: Constr Matrix Program Shorthand
