type t = { num : int; den : int }

exception Overflow
exception Division_by_zero

(* Overflow-checked native integer arithmetic.  The checks are branchy but
   the rationals in this code base stay tiny, so clarity wins over speed. *)

let add_exn a b =
  let r = a + b in
  (* Overflow iff operands share a sign and the result sign differs. *)
  if (a >= 0) = (b >= 0) && (r >= 0) <> (a >= 0) then raise Overflow;
  r

let mul_exn a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / b <> a || (a = min_int && b = -1) then raise Overflow;
    r

let neg_exn a = if a = min_int then raise Overflow else -a

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let gcd a b = gcd (Stdlib.abs a) (Stdlib.abs b)
let gcd_int = gcd

let make num den =
  if den = 0 then raise Division_by_zero;
  let num, den = if den < 0 then (neg_exn num, neg_exn den) else (num, den) in
  let g = gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2
let half = make 1 2
let num q = q.num
let den q = q.den
let is_integer q = q.den = 1

let to_int q =
  if q.den <> 1 then invalid_arg "Rat.to_int: not an integer";
  q.num

let to_float q = float_of_int q.num /. float_of_int q.den

let add a b =
  (* Reduce cross terms first to keep intermediates small. *)
  let g = gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  let n = add_exn (mul_exn a.num db) (mul_exn b.num da) in
  let d = mul_exn a.den db in
  make n d

let neg q = { q with num = neg_exn q.num }
let sub a b = add a (neg b)

let mul a b =
  let g1 = gcd a.num b.den and g2 = gcd b.num a.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  make (mul_exn (a.num / g1) (b.num / g2)) (mul_exn (a.den / g2) (b.den / g1))

let inv q = if q.num = 0 then raise Division_by_zero else make q.den q.num
let div a b = mul a (inv b)
let abs q = { q with num = Stdlib.abs q.num }
let equal a b = a.num = b.num && a.den = b.den

let compare a b =
  (* Exact comparison via cross multiplication (overflow-checked). *)
  Stdlib.compare (mul_exn a.num b.den) (mul_exn b.num a.den)

let sign q = Stdlib.compare q.num 0
let is_zero q = q.num = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor q =
  if q.num >= 0 then q.num / q.den
  else
    let d = q.num / q.den in
    if d * q.den = q.num then d else d - 1

let ceil q = -floor (neg q)

let pow q n =
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc base) (mul base base) (n asr 1)
    else go acc (mul base base) (n asr 1)
  in
  if n >= 0 then go one q n else go one (inv q) (-n)

let pp fmt q =
  if q.den = 1 then Format.fprintf fmt "%d" q.num
  else Format.fprintf fmt "%d/%d" q.num q.den

let to_string q = Format.asprintf "%a" pp q

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
