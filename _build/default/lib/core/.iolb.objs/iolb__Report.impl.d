lib/core/report.ml: Derive Format Fun Hourglass Iolb_ir Iolb_kernels Iolb_symbolic Iolb_util List Option Paper_formulas String
