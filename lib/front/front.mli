(** The affine-program front-end: parse DSL source into {!Iolb_ir.Program}
    programs and print programs back as DSL.

    A kernel source looks like:
    {v
    # Modified Gram-Schmidt (Figure 1 of the paper)
    kernel mgs(M, N)
    assume M - N >= 0, N - 2 >= 0
    verify M = 6, N = 4
    {
      for k = 0 .. N - 1 {
        Snrm0: nrm = f();
        ...
      }
    }
    v}

    [parse_string]/[parse_file] run lexer, parser and elaborator;
    {!print} is the inverse up to locations (see {!Printer}). *)

type source = Elab.source = {
  program : Iolb_ir.Program.t;
  verify : (string * int) list;
}

(** [parse_string ~file src] parses and elaborates one kernel.  [file] is
    only used in diagnostic locations. *)
val parse_string : file:string -> string -> (source, Diag.t) result

(** [parse_file path] reads and parses [path]; unreadable files and all
    diagnostics are mapped onto the exit-code-2 error convention. *)
val parse_file : string -> (source, Iolb_util.Engine_error.t) result

val print : ?verify:(string * int) list -> Iolb_ir.Program.t -> string
