(** Numeric Theta-equivalence checks between bound formulas.

    Two formulas are Theta-equivalent along a direction (a parametric curve
    through the parameter space, e.g. [M = 4t, N = t, S = t]) when their
    ratio converges to a finite non-zero constant as the scale grows.  The
    checker evaluates the ratio at geometrically increasing scales and
    tests stabilisation; it is how the test suite pins the "same asymptotic
    shape as the paper" claims of Figure 4. *)

type direction = int -> (string * int) list
(** A direction maps the scale [t] to concrete parameter values. *)

(** Common directions for (M, N, S) kernels. *)
val square_small_cache : direction
(** [M = 4t, N = t, S = 16] - fixed cache. *)

val square_linear_cache : direction
(** [M = 4t, N = t, S = t] - cache grows with the problem. *)

val square_large_cache : direction
(** [M = 4t, N = t, S = t^2 / 4] - cache grows quadratically (M << S). *)

(** [ratio_limit f g dir] estimates [lim f/g] along [dir]: evaluates at
    scales [t0 * 2^k] and returns the last ratio if the final steps agree
    within [tol] (default 0.05), or [None] if the ratio still drifts
    (different asymptotic orders) or is not finite/positive. *)
val ratio_limit :
  ?t0:int ->
  ?steps:int ->
  ?tol:float ->
  Iolb_symbolic.Ratfun.t ->
  Iolb_symbolic.Ratfun.t ->
  direction ->
  float option

(** [theta_equivalent f g dir] holds when {!ratio_limit} converges. *)
val theta_equivalent :
  ?tol:float ->
  Iolb_symbolic.Ratfun.t ->
  Iolb_symbolic.Ratfun.t ->
  direction ->
  bool
