(* The seed's list-based polyhedral algorithms, preserved verbatim (minus
   budget plumbing) as a differential-testing oracle for the compiled
   implementation in Iset.  Keep this file dumb and obviously correct. *)

let mem ~params ~dims cons point =
  let env x =
    match List.assoc_opt x params with
    | Some v -> v
    | None -> (
        match List.find_index (String.equal x) dims with
        | Some i -> point.(i)
        | None -> raise Not_found)
  in
  List.for_all (Constr.satisfied env) cons

(* Fourier-Motzkin elimination of [x].  Equalities with a unit coefficient
   on [x] are used as substitutions; other equalities are split into two
   inequalities first. *)
let fm_eliminate x cons =
  let cons =
    List.concat_map
      (fun (c : Constr.t) ->
        match c.kind with
        | Constr.Ge -> [ c ]
        | Constr.Eq ->
            let cx = Affine.coeff x c.expr in
            if cx = 1 || cx = -1 then [ c ]
            else [ Constr.ge c.expr; Constr.ge (Affine.neg c.expr) ])
      cons
  in
  let subst_eq =
    List.find_opt
      (fun (c : Constr.t) ->
        c.kind = Constr.Eq && abs (Affine.coeff x c.expr) = 1)
      cons
  in
  match subst_eq with
  | Some c ->
      let cx = Affine.coeff x c.expr in
      let rest = Affine.sub c.expr (Affine.term cx x) in
      let value = Affine.scale (-cx) rest in
      List.filter_map
        (fun (c' : Constr.t) ->
          if c' == c then None
          else
            let e = Affine.subst x value c'.expr in
            match Constr.is_trivial { c' with expr = e } with
            | Some true -> None
            | _ -> Some { c' with expr = e })
        cons
  | None ->
      let lowers, uppers, rest =
        List.fold_left
          (fun (lo, up, rest) (c : Constr.t) ->
            let cx = Affine.coeff x c.expr in
            if cx > 0 then (c :: lo, up, rest)
            else if cx < 0 then (lo, c :: up, rest)
            else (lo, up, c :: rest))
          ([], [], []) cons
      in
      let combined =
        List.concat_map
          (fun (l : Constr.t) ->
            let cl = Affine.coeff x l.expr in
            List.filter_map
              (fun (u : Constr.t) ->
                let cu = Affine.coeff x u.expr in
                let e =
                  Affine.add (Affine.scale (-cu) l.expr) (Affine.scale cl u.expr)
                in
                match Constr.is_trivial (Constr.ge e) with
                | Some true -> None
                | _ -> Some (Constr.ge e))
              uppers)
          lowers
      in
      List.sort_uniq Constr.compare (combined @ List.rev rest)

let project ~onto ~dims cons =
  let to_remove = List.filter (fun d -> not (List.mem d onto)) dims in
  List.fold_left (fun cs d -> fm_eliminate d cs) cons to_remove

let var_bounds x cons =
  let ineqs =
    List.concat_map
      (fun (c : Constr.t) ->
        match c.kind with
        | Constr.Ge -> [ c.expr ]
        | Constr.Eq -> [ c.expr; Affine.neg c.expr ])
      cons
  in
  let ceil_div q d = if q >= 0 then (q + d - 1) / d else -(-q / d) in
  let floor_div q d = if q >= 0 then q / d else -(ceil_div (-q) d) in
  List.fold_left
    (fun (lo, up) e ->
      let cx = Affine.coeff x e in
      if cx = 0 then (lo, up)
      else
        let rest = Affine.sub e (Affine.term cx x) in
        match Affine.is_constant rest with
        | None -> (lo, up)
        | Some r ->
            if cx > 0 then
              let b = ceil_div (-r) cx in
              ((match lo with None -> Some b | Some l -> Some (max l b)), up)
            else
              let b = floor_div r (-cx) in
              (lo, match up with None -> Some b | Some u -> Some (min u b)))
    (None, None) ineqs

let enumerate ~params ~dims cons =
  let env x = if List.mem x dims then None else List.assoc_opt x params in
  let cons = List.map (Constr.specialize env) cons in
  let n = List.length dims in
  let dims_a = Array.of_list dims in
  let levels = Array.make (max n 1) cons in
  let rec eliminate k cs =
    if k >= 0 then begin
      levels.(k) <- cs;
      if k > 0 then eliminate (k - 1) (fm_eliminate dims_a.(k) cs)
    end
  in
  if n > 0 then eliminate (n - 1) cons;
  let out = ref [] in
  let point = Array.make n 0 in
  let rec fill k =
    if k = n then begin
      if mem ~params ~dims cons point then out := Array.copy point :: !out
    end
    else begin
      let env x =
        match List.find_index (String.equal x) dims with
        | Some i when i < k -> Some point.(i)
        | _ -> None
      in
      let cons_k = List.map (Constr.specialize env) levels.(k) in
      match var_bounds dims_a.(k) cons_k with
      | Some lo, Some up ->
          for v = lo to up do
            point.(k) <- v;
            fill (k + 1)
          done
      | _ ->
          invalid_arg
            (Printf.sprintf "Iset_ref.enumerate: dimension %s is unbounded"
               dims_a.(k))
    end
  in
  if n = 0 then (if mem ~params ~dims cons [||] then [ [||] ] else [])
  else begin
    (match
       List.find_map
         (fun (c : Constr.t) ->
           match Constr.is_trivial c with Some false -> Some () | _ -> None)
         levels.(0)
     with
    | Some () -> ()
    | None -> fill 0);
    List.rev !out
  end
