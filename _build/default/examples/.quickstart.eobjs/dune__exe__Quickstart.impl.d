examples/quickstart.ml: Format Iolb Iolb_cdag Iolb_ir Iolb_kernels Iolb_pebble Iolb_poly List
