lib/core/bl.ml: Array Format Iolb_lp Iolb_util List Printf String
