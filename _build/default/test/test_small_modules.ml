(* Coverage for the small substrate modules: monomials, accesses, traces,
   the shared max-heap, plus the stencil negative control and the
   priority-driven scheduler. *)

module M = Iolb_symbolic.Monomial
module Access = Iolb_ir.Access
module Affine = Iolb_poly.Affine
module Trace = Iolb_pebble.Trace
module Heap = Iolb_util.Maxheap
module Rat = Iolb_util.Rat

let test_monomial () =
  let xy2 = M.of_list [ ("x", 1); ("y", 2) ] in
  Alcotest.(check int) "degree" 3 (M.degree xy2);
  Alcotest.(check int) "degree_in y" 2 (M.degree_in "y" xy2);
  Alcotest.(check int) "degree_in z" 0 (M.degree_in "z" xy2);
  Alcotest.(check bool) "mul" true
    (M.equal (M.mul (M.var "x") xy2) (M.of_list [ ("x", 2); ("y", 2) ]));
  (match M.divide xy2 (M.var "y") with
  | Some d -> Alcotest.(check bool) "divide" true (M.equal d (M.of_list [ ("x", 1); ("y", 1) ]))
  | None -> Alcotest.fail "y divides xy^2");
  Alcotest.(check bool) "non-divisor" true (M.divide (M.var "x") xy2 = None);
  Alcotest.(check bool) "pow 0 = 1" true (M.is_one (M.pow xy2 0));
  Alcotest.(check bool) "eval" true
    (Rat.equal
       (M.eval (fun _ -> Rat.of_int 2) xy2)
       (Rat.of_int 8));
  Alcotest.(check bool) "of_list rejects dup" true
    (try
       ignore (M.of_list [ ("x", 1); ("x", 2) ]);
       false
     with Invalid_argument _ -> true)

let test_access () =
  let a = Access.make "A" [ Affine.var "i"; Affine.add (Affine.var "j") (Affine.const 1) ] in
  Alcotest.(check (list string)) "dims_used" [ "i"; "j" ] (Access.dims_used a);
  (* i and j+1 are coordinate selections. *)
  Alcotest.(check (option (list string))) "selected"
    (Some [ "i"; "j" ])
    (Access.selected_dims ~dims:[ "i"; "j"; "k" ] a);
  (* i+j is not. *)
  let skew = Access.make "A" [ Affine.add (Affine.var "i") (Affine.var "j") ] in
  Alcotest.(check (option (list string))) "skewed rejected" None
    (Access.selected_dims ~dims:[ "i"; "j" ] skew);
  (* A dim used twice is not a coordinate selection either. *)
  let dup = Access.make "A" [ Affine.var "i"; Affine.var "i" ] in
  Alcotest.(check (option (list string))) "duplicate rejected" None
    (Access.selected_dims ~dims:[ "i" ] dup);
  (* Parameter-only indices select nothing. *)
  let param = Access.make "A" [ Affine.var "N"; Affine.var "i" ] in
  Alcotest.(check (option (list string))) "param index skipped"
    (Some [ "i" ])
    (Access.selected_dims ~dims:[ "i" ] param);
  let env = function "i" -> 2 | "j" -> 5 | _ -> 0 in
  Alcotest.(check bool) "eval" true (Access.eval env a = ("A", [| 2; 6 |]))

let test_trace () =
  let params = [ ("M", 4); ("N", 3) ] in
  let trace = Trace.of_program ~params Iolb_kernels.Mgs.spec in
  Alcotest.(check bool) "non-empty" true (Trace.length trace > 0);
  (* Footprint: A (12), Q (12), R (6 upper cells), nrm -> 31. *)
  Alcotest.(check int) "footprint" 31 (Trace.footprint trace);
  (* Reads+writes per instance: consistent with the instance count. *)
  let accesses =
    let acc = ref 0 in
    Iolb_ir.Program.iter_instances ~params Iolb_kernels.Mgs.spec (fun inst ->
        acc := !acc + List.length inst.loads + List.length inst.stores);
    !acc
  in
  Alcotest.(check int) "length = all accesses" accesses (Trace.length trace)

let test_maxheap () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (fun (p, x) -> Heap.push h ~pos:p ~payload:x)
    [ (3, 30); (1, 10); (4, 40); (1, 11); (5, 50) ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check (pair int int)) "max first" (5, 50) (Heap.pop h);
  Alcotest.(check (pair int int)) "then 4" (4, 40) (Heap.pop h);
  Alcotest.(check (pair int int)) "then 3" (3, 30) (Heap.pop h);
  let p1, _ = Heap.pop h and p2, _ = Heap.pop h in
  Alcotest.(check (pair int int)) "ties drain" (1, 1) (p1, p2);
  Alcotest.(check bool) "pop empty raises" true
    (try
       ignore (Heap.pop h);
       false
     with Not_found -> true)

let test_jacobi_negative_control () =
  (* Numerics first. *)
  let src = Array.init 10 float_of_int in
  let out = Iolb_kernels.Jacobi1d.run ~steps:3 src in
  Alcotest.(check (float 0.)) "boundary fixed" 0. out.(0);
  Alcotest.(check (float 0.)) "boundary fixed right" 9. out.(9);
  (* No hourglass, and no useful classical bound: stencils defeat the
     K-partitioning method (single full-dimensional projection, rho = 1). *)
  let spec = Iolb_kernels.Jacobi1d.spec in
  Alcotest.(check int) "no hourglass" 0
    (List.length
       (Iolb.Hourglass.detect_verified ~params:[ ("T", 4); ("N", 8) ] spec));
  Alcotest.(check bool) "no classical bound" true
    (Iolb.Derive.classical spec ~stmt:"SB" = None)

let test_priority_schedule () =
  let cdag =
    Iolb_cdag.Cdag.of_program ~params:[ ("M", 12); ("N", 8) ] Iolb_kernels.Mgs.spec
  in
  (* Column-block-major priority: process a block of b columns across all k
     before moving on - the left-looking tiled flavour of Appendix A.1. *)
  let b = 4 in
  let priority ~stmt ~vec =
    match (stmt, vec) with
    | ("SR" | "SU"), [| k; j; _ |] -> (j / b * 10000) + (k * 100) + j
    | "Sr0", [| k; j |] -> (j / b * 10000) + (k * 100) + j
    | _, [| k |] -> (k / b * 10000) + (k * 100)
    | _, [| k; _ |] -> (k / b * 10000) + (k * 100)
    | _ -> 0
  in
  let sched = Iolb_pebble.Game.priority_topological cdag ~priority in
  Alcotest.(check bool) "topological" true
    (Iolb_pebble.Game.is_topological cdag sched);
  let s = 64 in
  let prio = (Iolb_pebble.Game.run cdag ~s ~schedule:sched).loads in
  let prog =
    (Iolb_pebble.Game.run cdag ~s
       ~schedule:(Iolb_pebble.Game.program_schedule cdag))
      .loads
  in
  (* The locality-aware schedule should beat the plain program order. *)
  Alcotest.(check bool)
    (Printf.sprintf "column schedule better (%d < %d)" prio prog)
    true (prio < prog)

let suite =
  [
    Alcotest.test_case "monomials" `Quick test_monomial;
    Alcotest.test_case "accesses" `Quick test_access;
    Alcotest.test_case "traces" `Quick test_trace;
    Alcotest.test_case "max-heap" `Quick test_maxheap;
    Alcotest.test_case "jacobi1d: stencil negative control" `Quick
      test_jacobi_negative_control;
    Alcotest.test_case "priority schedules beat program order" `Quick
      test_priority_schedule;
  ]
