(* IR derived views: symbolic cardinalities vs concrete instance counts,
   extents, execution order, input detection. *)

module Program = Iolb_ir.Program
module P = Iolb_symbolic.Polynomial
module K = Iolb_kernels

let count_stmt prog params name =
  let n = ref 0 in
  Program.iter_instances ~params prog (fun inst ->
      if inst.stmt_name = name then incr n);
  !n

let test_cardinal_matches_concrete () =
  List.iter
    (fun (prog, params) ->
      List.iter
        (fun (info : Program.stmt_info) ->
          let symbolic =
            P.eval_int params (Program.cardinal info) |> Iolb_util.Rat.to_int
          in
          let concrete = count_stmt prog params info.def.name in
          Alcotest.(check int)
            (Printf.sprintf "%s.%s" prog.Program.name info.def.name)
            concrete symbolic)
        (Program.statements prog))
    [
      (K.Mgs.spec, [ ("M", 6); ("N", 4) ]);
      (K.Householder.a2v_spec, [ ("M", 7); ("N", 4) ]);
      (K.Householder.v2q_spec, [ ("M", 7); ("N", 4) ]);
      (K.Gebd2.spec, [ ("M", 7); ("N", 4) ]);
      (K.Gehd2.spec, [ ("N", 7) ]);
      (K.Gehd2.split_spec, [ ("N", 9); ("M", 3) ]);
      (K.Gemm.spec, [ ("M", 3); ("N", 4); ("K", 5) ]);
    ]

let test_total_instances () =
  let params = [ ("M", 6); ("N", 4) ] in
  let symbolic =
    P.eval_int params (Program.total_instances K.Mgs.spec)
    |> Iolb_util.Rat.to_int
  in
  Alcotest.(check int)
    "total = concrete" symbolic
    (Program.count_instances ~params K.Mgs.spec)

let test_extents () =
  let su = Program.find_stmt K.Mgs.spec "SU" in
  Alcotest.(check string) "min extent of i" "M"
    (Iolb_poly.Affine.to_string (Program.extent_min su "i"));
  (* j runs k+1..N-1, so its trip count vanishes at k = N-1. *)
  Alcotest.(check string) "min extent of j (at k = N-1)" "0"
    (Iolb_poly.Affine.to_string (Program.extent_min su "j"));
  Alcotest.(check string) "max extent of j (at k = 0)" "N - 1"
    (Iolb_poly.Affine.to_string (Program.extent_max su "j"));
  let su_a2v = Program.find_stmt K.Householder.a2v_spec "SU" in
  Alcotest.(check string) "a2v min extent of i" "M - N"
    (Iolb_poly.Affine.to_string (Program.extent_min su_a2v "i"))

let test_inputs () =
  let inputs = Program.input_arrays ~params:[ ("M", 5); ("N", 3) ] K.Mgs.spec in
  Alcotest.(check (list string)) "mgs inputs" [ "A" ] inputs;
  let inputs =
    Program.input_arrays ~params:[ ("M", 5); ("N", 3) ] K.Householder.v2q_spec
  in
  (* V2Q consumes the taus computed by A2V (tau[N-1] first, at the initial
     descending iteration) and the reflectors stored in A. *)
  Alcotest.(check (list string)) "v2q inputs" [ "tau"; "A" ] inputs

let test_rev_loop_order () =
  (* V2Q's outer loop descends: the first SU instance visited has k = N-2. *)
  let first_su = ref None in
  Program.iter_instances ~params:[ ("M", 5); ("N", 3) ] K.Householder.v2q_spec
    (fun inst ->
      if inst.stmt_name = "SU" && !first_su = None then
        first_su := Some inst.vec.(0));
  Alcotest.(check (option int)) "first SU at k=N-2" (Some 1) !first_su

let test_shared_loop_vars () =
  let sr = Program.find_stmt K.Mgs.spec "SR"
  and su = Program.find_stmt K.Mgs.spec "SU" in
  Alcotest.(check (list string))
    "SR/SU share k,j but not their i loops" [ "k"; "j" ]
    (Program.shared_loop_vars sr su)

let test_wellformedness_checks () =
  let open Iolb_ir in
  let bad_duplicate () =
    Program.make ~name:"bad" ~params:[] ~assumptions:[]
      [
        Program.stmt "S" ~writes:[ Access.scalar "x" ] ~reads:[];
        Program.stmt "S" ~writes:[ Access.scalar "y" ] ~reads:[];
      ]
  in
  Alcotest.check_raises "duplicate statement name"
    (Invalid_argument "Program.make: duplicate statement S") (fun () ->
      ignore (bad_duplicate ()));
  let bad_unbound () =
    Program.make ~name:"bad2" ~params:[] ~assumptions:[]
      [
        Program.stmt "S"
          ~writes:[ Access.make "A" [ Iolb_poly.Affine.var "i" ] ]
          ~reads:[];
      ]
  in
  Alcotest.check_raises "unbound variable in access"
    (Invalid_argument "Program.make: access A[i] in statement S uses unbound i")
    (fun () -> ignore (bad_unbound ()))

let suite =
  [
    Alcotest.test_case "symbolic cardinal = concrete count" `Quick
      test_cardinal_matches_concrete;
    Alcotest.test_case "total instances" `Quick test_total_instances;
    Alcotest.test_case "extent min/max" `Quick test_extents;
    Alcotest.test_case "input arrays" `Quick test_inputs;
    Alcotest.test_case "descending loop order" `Quick test_rev_loop_order;
    Alcotest.test_case "shared loops distinguish same-named loops" `Quick
      test_shared_loop_vars;
    Alcotest.test_case "well-formedness checks" `Quick test_wellformedness_checks;
  ]
