(** Single-pass LRU cache sweeps over all sizes at once.

    LRU is a stack algorithm (Mattson et al. 1970): the cache of size S
    always holds the S most recently used distinct cells, so a read hits at
    size S iff its reuse (stack) distance d - the number of distinct other
    cells accessed since the previous access of the same cell - satisfies
    d < S.  One pass over the trace, computing every access's distance with
    a Fenwick tree over last-access positions (O(T log T) total), therefore
    yields exact {!Cache.stats} for {e every} size simultaneously,
    including write-back stores (recovered from a parallel dirty-epoch
    interval construction; see the implementation header).  This is what
    makes validating bounds across a whole grid of cache sizes - the
    validation tables, the Appendix sweeps - cost one trace pass instead of
    one simulation per size.

    Results agree exactly, field by field, with {!Cache.lru} at every size
    and with both [~flush] settings. *)

type t

(** [run ?flush trace] performs the sweep pass ([flush] defaults to [true],
    matching {!Cache.lru}).  One [Cache_sim] budget checkpoint per trace
    event (plus one per distinct cell for the epilogue).
    @raise Iolb_util.Budget.Exhausted when the budget runs out. *)
val run : ?budget:Iolb_util.Budget.t -> ?flush:bool -> Trace.t -> t

(** No-raise variant of {!run}: a budget kill mid-sweep surfaces as
    [Error (Budget_exhausted Cache_sim)] for the degradation ladder. *)
val run_checked :
  ?budget:Iolb_util.Budget.t ->
  ?flush:bool ->
  Trace.t ->
  (t, Iolb_util.Engine_error.t) result

(** [stats t ~size] is [Cache.lru ~size ?flush:(flushed t)] on the swept
    trace, answered in O(1) from the precomputed histograms.
    @raise Invalid_argument if [size < 1]. *)
val stats : t -> size:int -> Cache.stats

(** [lru_stats trace ~sizes] is [Cache.lru] at every size of [sizes], in
    order: a singleton runs the O(T) simulator directly, two or more sizes
    share one sweep pass.  The results are identical either way. *)
val lru_stats :
  ?budget:Iolb_util.Budget.t ->
  ?flush:bool ->
  Trace.t ->
  sizes:int list ->
  (int * Cache.stats) list

(** Number of distinct cells of the swept trace; sizes [>= footprint]
    all behave like [footprint] (nothing ever evicts). *)
val footprint : t -> int

(** Number of trace events swept. *)
val accesses : t -> int

(** The [flush] setting the sweep was run with. *)
val flushed : t -> bool

(** [distance_histogram t] is a copy of the reuse-distance histogram:
    entry [d] counts the reads with finite stack distance [d] (cold reads
    are not counted; they miss at every size). *)
val distance_histogram : t -> int array

(** [parse_sizes spec] parses the size-list syntax shared by the CLI and
    the bench: either a comma-separated list ["a,b,c"] or an inclusive
    range ["lo:hi:step"].  All sizes must be positive. *)
val parse_sizes : string -> (int list, string) result
