lib/ir/program.ml: Access Array Format Hashtbl Iolb_poly Iolb_symbolic List Printf String
