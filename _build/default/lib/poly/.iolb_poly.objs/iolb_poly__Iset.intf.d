lib/poly/iset.mli: Constr Format
