lib/core/upper_bounds.ml: Iolb_symbolic Iolb_util List
