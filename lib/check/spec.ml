(* The kernel-spec shorthands (v, c, +!, a1/a2, loop, stmt) are the same
   vocabulary the hand-written paper kernels use; the generator builds its
   random programs out of them. *)
open Iolb_kernels.Shorthand
module Json = Iolb_util.Json

type nest = {
  depth : int;
  sizes : int list;
  triangular : bool list;
  param_n : int option;
  n_stmts : int;
  write_arity : int;
  read_shifts : int list;
  self_read : bool;
  consumer : bool;
  shallow : bool;
}

type hourglass = {
  m : int;
  temporal_trip : int;
  neutral : bool;
  neutral_trip : int;
  triangular : bool;
  q_read : bool;
  flat_reads : int;
  init_stmt : bool;
}

type t = Nest of nest | Hourglass of hourglass

let family_name = function Nest _ -> "nest" | Hourglass _ -> "hourglass"

let b2i b = if b then 1 else 0

let size = function
  | Nest n ->
      n.depth
      + List.fold_left ( + ) 0 n.sizes
      + (match n.param_n with None -> 0 | Some v -> v + 1)
      + n.n_stmts + n.write_arity + List.length n.read_shifts
      + List.fold_left (fun acc s -> acc + abs s) 0 n.read_shifts
      + List.fold_left (fun acc t -> acc + b2i t) 0 n.triangular
      + b2i n.self_read + b2i n.consumer + b2i n.shallow
  | Hourglass h ->
      h.m + h.temporal_trip
      + (if h.neutral then h.neutral_trip + 1 else 0)
      + b2i h.triangular + b2i h.q_read + h.flat_reads + b2i h.init_stmt

let clamp lo hi v = max lo (min hi v)

(* [take n xs padded with d]: lists in specs always have length [depth]. *)
let take n d xs =
  List.init n (fun i -> match List.nth_opt xs i with Some x -> x | None -> d)

let normalize = function
  | Nest n ->
      let depth = clamp 1 4 n.depth in
      let sizes = take depth 2 n.sizes |> List.map (clamp 1 5) in
      let triangular =
        match take depth false n.triangular with
        | [] -> []
        | _ :: tl -> false :: tl (* the outermost level has no predecessor *)
      in
      Nest
        {
          depth;
          sizes;
          triangular;
          param_n = Option.map (clamp 1 4) n.param_n;
          n_stmts = clamp 1 3 n.n_stmts;
          write_arity = clamp 1 (min 2 depth) n.write_arity;
          read_shifts =
            take (clamp 0 3 (List.length n.read_shifts)) 0 n.read_shifts
            |> List.map (clamp (-2) 2);
          self_read = n.self_read;
          consumer = n.consumer;
          shallow = n.shallow;
        }
  | Hourglass h ->
      Hourglass
        {
          m = clamp 2 8 h.m;
          temporal_trip = clamp 2 4 h.temporal_trip;
          neutral = h.neutral;
          neutral_trip = clamp 1 4 h.neutral_trip;
          triangular = h.triangular && h.neutral;
          q_read = h.q_read;
          flat_reads = clamp 0 2 h.flat_reads;
          init_stmt = h.init_stmt;
        }

(* ------------------------------------------------------------------ *)
(* Nest family.                                                        *)

let dim i = Printf.sprintf "d%d" i

let build_nest n =
  let dims = List.init n.depth dim in
  (* Per-level inclusive (lo, hi) bounds.  A triangular level starts at the
     previous level's variable; its upper bound is the previous level's
     running maximum plus its own size, so every trip count stays
     non-negative across the enclosing domain (a [Program.cardinal]
     requirement) even under a symbolic outermost bound. *)
  let bounds =
    let rec go i max_prev =
      if i = n.depth then []
      else
        let sz = List.nth n.sizes i in
        let tri = i > 0 && List.nth n.triangular i in
        let lo = if tri then v (dim (i - 1)) else c 0 in
        let hi =
          if i = 0 then
            match n.param_n with
            | Some _ -> v "N" -! c 1
            | None -> c (sz - 1)
          else if tri then max_prev +! c (sz - 1)
          else c (sz - 1)
        in
        (lo, hi) :: go (i + 1) hi
    in
    go 0 (c 0)
  in
  let write_dims = List.filteri (fun i _ -> i < n.write_arity) dims in
  let arr k = Printf.sprintf "A%d" k in
  let write k = Access.make (arr k) (List.map v write_dims) in
  let innermost = dim (n.depth - 1) in
  let x_reads =
    List.map
      (fun shift -> a1 "X" (v innermost +! c shift))
      n.read_shifts
  in
  let stmts =
    List.init n.n_stmts (fun k ->
        let w = write k in
        let reads =
          (if n.self_read then [ w ] else [])
          @ (if k = 0 then x_reads else [ write (k - 1) ])
        in
        stmt (Printf.sprintf "S%d" k) ~writes:[ w ] ~reads)
  in
  let consumer =
    if n.consumer then
      [
        stmt "C"
          ~writes:[ Access.make "B" (List.map v write_dims) ]
          ~reads:[ write (n.n_stmts - 1) ];
      ]
    else []
  in
  let shallow =
    if n.shallow then
      [
        stmt "H"
          ~writes:[ a1 "D" (v (dim 0)) ]
          ~reads:[ a1 "Y" (v (dim 0)) ];
      ]
    else []
  in
  let rec nest i =
    if i = n.depth then stmts @ consumer
    else
      let lo, hi = List.nth bounds i in
      let below = nest (i + 1) in
      let body = if i = 0 then below @ shallow else below in
      [ loop (dim i) lo hi body ]
  in
  let params, assumptions, verify =
    match n.param_n with
    | Some value ->
        ([ "N" ], [ Constr.ge_of (v "N") (c 1) ], [ ("N", value) ])
    | None -> ([], [], [])
  in
  (Program.make ~name:"check_nest" ~params ~assumptions (nest 0), verify)

(* ------------------------------------------------------------------ *)
(* Hourglass family: an MGS/A2V-column-shaped reduction-then-broadcast
   chain.  [SR] reduces the array [A] (over the parametric dimension [i])
   into [R]; [SU] broadcasts [R] back into every [A[i]], so consecutive
   temporal iterations are linked through full reduction lines of width
   [M] - precisely the pattern of Section 3 of the paper. *)

let build_hourglass h =
  let idx_r = if h.neutral then [ v "k"; v "j" ] else [ v "k" ] in
  let idx_a = if h.neutral then [ v "i"; v "j" ] else [ v "i" ] in
  let r = Access.make "R" idx_r in
  let a = Access.make "A" idx_a in
  let q = a2 "Q" (v "i") (v "k") in
  let flats =
    List.init h.flat_reads (fun k ->
        if k = 0 then a1 "X0" (v "i")
        else a1 "X1" (if h.neutral then v "j" else v "k"))
  in
  let sr_reads = (r :: a :: (if h.q_read then [ q ] else [])) @ flats in
  let su_reads = a :: r :: (if h.q_read then [ q ] else []) in
  let chain =
    (if h.init_stmt then [ stmt "S0" ~writes:[ r ] ~reads:[] ]
     else [])
    @ [
        loop_lt "i" (c 0) (v "M")
          [ stmt "SR" ~writes:[ r ] ~reads:sr_reads ];
        loop_lt "i" (c 0) (v "M")
          [ stmt "SU" ~writes:[ a ] ~reads:su_reads ];
      ]
  in
  let body =
    if h.neutral then
      let lo = if h.triangular then v "k" +! c 1 else c 0 in
      let hi =
        if h.triangular then c (h.temporal_trip + h.neutral_trip - 1)
        else c (h.neutral_trip - 1)
      in
      [
        loop_lt "k" (c 0)
          (c h.temporal_trip)
          [ loop "j" lo hi chain ];
      ]
    else [ loop_lt "k" (c 0) (c h.temporal_trip) chain ]
  in
  ( Program.make ~name:"check_hourglass" ~params:[ "M" ]
      ~assumptions:[ Constr.ge_of (v "M") (c 2) ]
      body,
    [ ("M", h.m) ] )

let to_program spec =
  match normalize spec with
  | Nest n -> build_nest n
  | Hourglass h -> build_hourglass h

(* ------------------------------------------------------------------ *)
(* Serialisation (failure artifacts, counterexample printing).         *)

let to_json spec =
  match normalize spec with
  | Nest n ->
      Json.Obj
        [
          ("family", Json.String "nest");
          ("depth", Json.Int n.depth);
          ("sizes", Json.List (List.map (fun s -> Json.Int s) n.sizes));
          ( "triangular",
            Json.List (List.map (fun b -> Json.Bool b) n.triangular) );
          ( "param_n",
            match n.param_n with None -> Json.Null | Some v -> Json.Int v );
          ("n_stmts", Json.Int n.n_stmts);
          ("write_arity", Json.Int n.write_arity);
          ( "read_shifts",
            Json.List (List.map (fun s -> Json.Int s) n.read_shifts) );
          ("self_read", Json.Bool n.self_read);
          ("consumer", Json.Bool n.consumer);
          ("shallow", Json.Bool n.shallow);
        ]
  | Hourglass h ->
      Json.Obj
        [
          ("family", Json.String "hourglass");
          ("m", Json.Int h.m);
          ("temporal_trip", Json.Int h.temporal_trip);
          ("neutral", Json.Bool h.neutral);
          ("neutral_trip", Json.Int h.neutral_trip);
          ("triangular", Json.Bool h.triangular);
          ("q_read", Json.Bool h.q_read);
          ("flat_reads", Json.Int h.flat_reads);
          ("init_stmt", Json.Bool h.init_stmt);
        ]

let to_string spec = Json.to_string (to_json spec)
let equal (a : t) (b : t) = normalize a = normalize b
