(** The paper's published bounds, transcribed verbatim for comparison with
    the engine's automatically derived ones.

    All formulas are rational functions over the parameters [M], [N], [S]
    and the auxiliary [sqrtS] (= sqrt S).  Where Figure 5 of the paper
    writes [1 - S/(N-M)] for A2V (with [M > N], a sign slip for
    [1 + S/(M-N)], the form used in the V2Q row), we transcribe the
    corrected form and note it in EXPERIMENTS.md. *)

type kernel = Mgs | A2v | V2q | Gebd2 | Gehd2

val kernel_name : kernel -> string
val all_kernels : kernel list

(** Figure 5, "old bound" column (classical IOLB, with constants). *)
val fig5_old : kernel -> Iolb_symbolic.Ratfun.t

(** Figure 5, "new bound (hourglass)" column.  For GEHD2, the split
    parameter [M] of the paper is instantiated at [M = N/2 - 1] as in the
    proof of Theorem 9, so the formula is over [N] and [S] only. *)
val fig5_new : kernel -> Iolb_symbolic.Ratfun.t

(** Figure 4, asymptotic leading terms, as display strings. *)
val fig4_old : kernel -> string

val fig4_new : kernel -> string

(** The theorems' closed-form leading bounds: Theorem 5 (MGS, both
    regimes), 6 (A2V), 7 (V2Q), 8 (GEBD2), 9 (GEHD2). *)
val theorem_main : kernel -> Iolb_symbolic.Ratfun.t

(** The small-cache variants where stated: MGS's [(M-S) N (N-1) / 4]
    (valid for [S <= M]) and GEHD2's [N^3/24] (valid for [N >> S]). *)
val theorem_small : kernel -> Iolb_symbolic.Ratfun.t option

(** [eval_at f ~m ~n ~s] evaluates a formula (binding [sqrtS] to [sqrt s]).
    GEHD2 formulas ignore [m]. *)
val eval_at : Iolb_symbolic.Ratfun.t -> m:int -> n:int -> s:int -> float
