lib/poly/affine.ml: Format Int Iolb_symbolic Iolb_util List Map String
