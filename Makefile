.PHONY: all build test bench examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/bound_gallery.exe
	dune exec examples/mgs_tiling.exe
	dune exec examples/qr_io_study.exe
	dune exec examples/hourglass_explorer.exe

clean:
	dune clean
