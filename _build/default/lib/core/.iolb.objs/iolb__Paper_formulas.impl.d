lib/core/paper_formulas.ml: Iolb_symbolic Iolb_util
