(* Remaining corners: pretty-printers, DOT export, cache flush flag,
   leading-term extraction, Rat infix operators, Iset error paths. *)

module P = Iolb_symbolic.Polynomial
module R = Iolb_symbolic.Ratfun
module Rat = Iolb_util.Rat
module A = Iolb_poly.Affine
module C = Iolb_poly.Constr
module I = Iolb_poly.Iset

let test_printers () =
  Alcotest.(check string) "affine" "2i - j + 3"
    (A.to_string (A.of_terms [ (2, "i"); (-1, "j") ] 3));
  Alcotest.(check string) "affine const" "-4" (A.to_string (A.const (-4)));
  Alcotest.(check string) "poly" "-2*M*N + M^2 + 1/2"
    (P.to_string
       (P.add
          (P.sub (P.mul (P.var "M") (P.var "M"))
             (P.scale Rat.two (P.mul (P.var "M") (P.var "N"))))
          (P.of_rat Rat.half)));
  Alcotest.(check string) "poly zero" "0" (P.to_string P.zero);
  Alcotest.(check string) "ratfun poly" "M" (R.to_string (R.var "M"));
  Alcotest.(check string) "ratfun ratio" "(M) / (S + 1)"
    (R.to_string (R.make (P.var "M") (P.add (P.var "S") P.one)));
  Alcotest.(check string) "rat" "-3/7" (Rat.to_string (Rat.make 3 (-7)));
  Alcotest.(check string) "constraint" "i - 1 >= 0"
    (Format.asprintf "%a" C.pp (C.ge (A.sub (A.var "i") (A.const 1))))

let test_rat_infix () =
  let open Rat.Infix in
  Alcotest.(check bool) "infix arithmetic" true
    (Rat.of_int 2 * Rat.half + Rat.one - Rat.of_int 2 = Rat.zero);
  Alcotest.(check bool) "infix compare" true
    (Rat.half < Rat.one && Rat.one <= Rat.one && Rat.two > Rat.one
   && Rat.two >= Rat.two);
  Alcotest.(check bool) "infix div neg" true (~-Rat.one / Rat.two = Rat.make (-1) 2)

let test_leading_terms () =
  (* leading_terms keeps exactly the max-total-degree monomials. *)
  let p =
    P.add
      (P.mul (P.var "M") (P.mul (P.var "N") (P.var "N")))
      (P.add (P.mul (P.var "M") (P.var "N")) P.one)
  in
  Alcotest.(check string) "leading" "M*N^2" (P.to_string (P.leading_terms p))

let test_dot_export () =
  let cdag =
    Iolb_cdag.Cdag.of_program ~params:[ ("M", 3); ("N", 2) ] Iolb_kernels.Mgs.spec
  in
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Iolb_cdag.Dot.emit ~highlight:[ 0 ] fmt cdag;
  Format.pp_print_flush fmt ();
  let dot = Buffer.contents buf in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 20 && String.sub dot 0 12 = "digraph cdag");
  (* One node line per node, one edge line per edge. *)
  let count_sub sub =
    let n = ref 0 and i = ref 0 in
    let len = String.length sub in
    while !i + len <= String.length dot do
      if String.sub dot !i len = sub then incr n;
      incr i
    done;
    !n
  in
  Alcotest.(check int) "edges rendered"
    (Array.fold_left
       (fun acc id -> acc + Array.length (Iolb_cdag.Cdag.preds cdag id))
       0
       (Array.init (Iolb_cdag.Cdag.n_nodes cdag) Fun.id))
    (count_sub " -> ")

let test_cache_flush_flag () =
  let open Iolb_pebble in
  let trace =
    Trace.of_events [ Trace.Write ("A", [| 0 |]); Trace.Write ("A", [| 1 |]) ]
  in
  let with_flush = Cache.lru ~size:4 trace in
  let without = Cache.lru ~size:4 ~flush:false trace in
  Alcotest.(check int) "flush counts dirty lines" 2 with_flush.Cache.stores;
  Alcotest.(check int) "no flush, no stores" 0 without.Cache.stores

let test_iset_errors () =
  let unbounded = I.make ~dims:[ "i" ] [ C.ge (A.var "i") ] in
  Alcotest.(check bool) "enumerate unbounded raises" true
    (try
       ignore (I.enumerate ~params:[] unbounded);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "intersect dim mismatch raises" true
    (try
       ignore (I.intersect unbounded (I.make ~dims:[ "j" ] []));
       false
     with Invalid_argument _ -> true);
  (* bounds_of_dim on a half-bounded set. *)
  let lo, hi = I.bounds_of_dim ~params:[] unbounded "i" in
  Alcotest.(check (option int)) "lower bound" (Some 0) lo;
  Alcotest.(check (option int)) "no upper bound" None hi

let test_program_pp () =
  let out = Format.asprintf "%a" Iolb_ir.Program.pp Iolb_kernels.Gemm.spec in
  Alcotest.(check bool) "mentions loops and statement" true
    (let contains needle =
       let rec go i =
         i + String.length needle <= String.length out
         && (String.sub out i (String.length needle) = needle || go (i + 1))
       in
       go 0
     in
     contains "for i = 0 .. M - 1" && contains "SC: C[i][j]")

let suite =
  [
    Alcotest.test_case "pretty printers" `Quick test_printers;
    Alcotest.test_case "rat infix" `Quick test_rat_infix;
    Alcotest.test_case "leading terms" `Quick test_leading_terms;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Alcotest.test_case "cache flush flag" `Quick test_cache_flush_flag;
    Alcotest.test_case "iset error paths" `Quick test_iset_errors;
    Alcotest.test_case "program pretty-printer" `Quick test_program_pp;
  ]
