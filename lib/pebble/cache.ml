module Budget = Iolb_util.Budget

type stats = { loads : int; stores : int; read_hits : int; accesses : int }

let io s = s.loads + s.stores

let pp_stats fmt s =
  Format.fprintf fmt "loads=%d stores=%d hits=%d accesses=%d io=%d" s.loads
    s.stores s.read_hits s.accesses (io s)

(* Traces arrive pre-interned (dense cell ids, flat arrays), so the
   simulators run on int keys with no per-call hashing at all. *)

let cold trace =
  let n = Trace.length trace and ncells = Trace.footprint trace in
  let present = Array.make ncells false in
  let dirty = Array.make ncells false in
  let loads = ref 0 and read_hits = ref 0 in
  for i = 0 to n - 1 do
    let c = Trace.cell_id trace i in
    if Trace.is_write trace i then begin
      present.(c) <- true;
      dirty.(c) <- true
    end
    else if present.(c) then incr read_hits
    else begin
      incr loads;
      present.(c) <- true
    end
  done;
  let stores = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 dirty in
  { loads = !loads; stores; read_hits = !read_hits; accesses = n }

(* LRU with an intrusive doubly-linked list over cell ids. *)
let lru ?(budget = Budget.unlimited) ~size ?(flush = true) trace =
  if size < 1 then invalid_arg "Cache.lru: size < 1";
  let n = Trace.length trace and ncells = Trace.footprint trace in
  let prev = Array.make ncells (-1) and next = Array.make ncells (-1) in
  let in_cache = Array.make ncells false in
  let dirty = Array.make ncells false in
  let head = ref (-1) (* most recent *) and tail = ref (-1) (* least recent *) in
  let count = ref 0 in
  let unlink c =
    let p = prev.(c) and n = next.(c) in
    if p >= 0 then next.(p) <- n else head := n;
    if n >= 0 then prev.(n) <- p else tail := p;
    prev.(c) <- -1;
    next.(c) <- -1
  in
  let push_front c =
    prev.(c) <- -1;
    next.(c) <- !head;
    if !head >= 0 then prev.(!head) <- c;
    head := c;
    if !tail < 0 then tail := c
  in
  let loads = ref 0 and stores = ref 0 and read_hits = ref 0 in
  let evict_one () =
    let victim = !tail in
    unlink victim;
    in_cache.(victim) <- false;
    if dirty.(victim) then begin
      incr stores;
      dirty.(victim) <- false
    end;
    decr count
  in
  let touch c =
    if in_cache.(c) then begin
      unlink c;
      push_front c
    end
    else begin
      if !count >= size then evict_one ();
      in_cache.(c) <- true;
      incr count;
      push_front c
    end
  in
  for i = 0 to n - 1 do
    Budget.checkpoint budget Budget.Cache_sim;
    let c = Trace.cell_id trace i in
    if Trace.is_write trace i then begin
      touch c;
      dirty.(c) <- true
    end
    else begin
      if in_cache.(c) then incr read_hits else incr loads;
      touch c
    end
  done;
  if flush then
    for c = 0 to ncells - 1 do
      if in_cache.(c) && dirty.(c) then incr stores
    done;
  { loads = !loads; stores = !stores; read_hits = !read_hits; accesses = n }

(* Belady's OPT.  next_read.(i) is the position of the next read of the cell
   accessed at position i, or max_int if the cell is overwritten (or never
   touched) before being re-read. *)
let opt ?(budget = Budget.unlimited) ~size ?(flush = true) trace =
  if size < 1 then invalid_arg "Cache.opt: size < 1";
  let n = Trace.length trace and ncells = Trace.footprint trace in
  let next_read = Array.make n max_int in
  let upcoming = Array.make ncells max_int in
  (* scan backwards: upcoming.(c) = position of next read of c, or max_int
     if the next access is a write (dead value). *)
  for i = n - 1 downto 0 do
    let c = Trace.cell_id trace i in
    next_read.(i) <- upcoming.(c);
    upcoming.(c) <- (if Trace.is_write trace i then max_int else i)
  done;
  let in_cache = Array.make ncells false in
  let dirty = Array.make ncells false in
  let cur_next = Array.make ncells max_int in
  (* Max-heap over (next read position, cell), lazily invalidated. *)
  let heap = Iolb_util.Maxheap.create () in
  let count = ref 0 in
  let loads = ref 0 and stores = ref 0 and read_hits = ref 0 in
  let evict_one () =
    let rec pick () =
      let pos, cell = Iolb_util.Maxheap.pop heap in
      if in_cache.(cell) && cur_next.(cell) = pos then cell else pick ()
    in
    let victim = pick () in
    in_cache.(victim) <- false;
    if dirty.(victim) then begin
      incr stores;
      dirty.(victim) <- false
    end;
    decr count
  in
  for i = 0 to n - 1 do
    Budget.checkpoint budget Budget.Cache_sim;
    let c = Trace.cell_id trace i in
    if Trace.is_write trace i then begin
      if not in_cache.(c) then begin
        if !count >= size then evict_one ();
        in_cache.(c) <- true;
        incr count
      end;
      dirty.(c) <- true
    end
    else begin
      if in_cache.(c) then incr read_hits
      else begin
        incr loads;
        if !count >= size then evict_one ();
        in_cache.(c) <- true;
        incr count
      end
    end;
    cur_next.(c) <- next_read.(i);
    Iolb_util.Maxheap.push heap ~pos:next_read.(i) ~payload:c
  done;
  if flush then
    for c = 0 to ncells - 1 do
      if in_cache.(c) && dirty.(c) then incr stores
    done;
  { loads = !loads; stores = !stores; read_hits = !read_hits; accesses = n }

let lru_checked ?budget ~size ?flush trace =
  Iolb_util.Engine_error.guard (fun () -> lru ?budget ~size ?flush trace)

let opt_checked ?budget ~size ?flush trace =
  Iolb_util.Engine_error.guard (fun () -> opt ?budget ~size ?flush trace)
