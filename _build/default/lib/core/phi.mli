(** Derivation of the projection set Phi of a statement.

    Following the K-partitioning method (Section 2 of the paper), every read
    access of a statement starts a dependence path out of a K-bounded set
    [E]; when the access is a coordinate selection of the iteration vector
    (the only shape occurring in the paper's kernels), the path maps [E]
    onto the projection of [E] on the selected dimensions, whose image can
    be charged to [InSet(E)].  The set of these coordinate projections is
    the input of the Brascamp-Lieb step. *)

type t = {
  dims : string list;  (** the projected-onto dimensions, sorted *)
  source : string;  (** the array access that induced it (for reports) *)
}

(** [of_statement p info] is the deduplicated list of projections induced
    by the read accesses of the statement.  Each projection's dimensions are
    the access's selected (cell) dimensions, extended by {e version
    pinning}: when the value is produced by other statements, it is also
    identified by the iteration of the loops shared with every producer, so
    those loop dimensions are added (e.g. the [tau[j]] read of the A2V
    update statement yields phi_{k,j}).  Pinning is refused when it would
    produce a full-dimensional projection, which would assert [|E| <= K]
    outright - unsupported by per-statement charging; the bare cell
    projection is kept instead.  Reads that pin no dimension at all induce
    the empty projection and are dropped.  Reads whose index expressions
    are not coordinate selections are rejected.

    @raise Invalid_argument on a non-coordinate access, with its text. *)
val of_statement :
  ?version_pinning:bool ->
  Iolb_ir.Program.t ->
  Iolb_ir.Program.stmt_info ->
  t list
(** [version_pinning] defaults to [true]; pass [false] to get the raw
    access projections (the ablation shows this weakens e.g. the A2V
    classical exponent from 3/2 to 2). *)

(** [mem dim p] tests whether [dim] is projected on. *)
val mem : string -> t -> bool

val pp : Format.formatter -> t -> unit
