module P = Iolb_symbolic.Polynomial
module R = Iolb_symbolic.Ratfun
module Rat = Iolb_util.Rat

type cost = { reads : P.t; writes : P.t; cache_needed : P.t }

let m = P.var "M"
let n = P.var "N"
let k = P.var "K"
let b = P.var "B"
let half = Rat.half

(* The Appendix cost models keep 1/B as a formal entity by multiplying the
   streamed term by B^-1... polynomials cannot express 1/B, so the "reads"
   polynomials below use the convention that the dominant streamed term is
   stored divided by B via an explicit inverse variable: instead we model
   reads * B (see [total]'s callers).  To keep the interface plain, we
   store reads as a polynomial in B^-1 encoded by substituting Binv = 1/B:
   reads = streamed * Binv + fixed.  The variable is named "Binv". *)
let binv = P.var "Binv"

let mgs_tiled =
  {
    reads = P.add (P.scale half (P.mul (P.mul m (P.mul n n)) binv)) (P.mul m n);
    writes = P.add (P.mul m n) (P.scale half (P.mul n n));
    cache_needed = P.mul m (P.add b P.one);
  }

let a2v_tiled =
  {
    reads =
      P.add
        (P.scale half
           (P.mul
              (P.sub (P.mul m (P.mul n n)) (P.scale (Rat.make 1 3) (P.mul n (P.mul n n))))
              binv))
        (P.mul m n);
    writes = P.mul m n;
    cache_needed = P.mul m (P.add b P.one);
  }

let gemm_tiled =
  {
    reads = P.add (P.scale Rat.two (P.mul (P.mul m (P.mul n k)) binv)) (P.mul m n);
    writes = P.mul m n;
    cache_needed = P.scale (Rat.of_int 3) (P.mul b b);
  }

let total c = P.add c.reads c.writes

let substitute_block p ~num ~den =
  (* p is a polynomial in B and Binv (each appearing with non-negative
     exponents); substitute B = num/den and Binv = den/num. *)
  let rb = R.make num den in
  let rbinv = R.make den num in
  (* Two-stage composition: first B, then Binv. *)
  let compose var value poly =
    List.fold_left
      (fun (acc, power) coeff ->
        (R.add acc (R.mul (R.of_poly coeff) power), R.mul power value))
      (R.zero, R.one)
      (P.as_univariate var poly)
    |> fst
  in
  let after_b = compose "B" rb p in
  (* after_b is a Ratfun; its numerator may still contain Binv.  Compose on
     the numerator and divide by the (Binv-free) denominator. *)
  let num_r = compose "Binv" rbinv (R.num after_b) in
  R.div num_r (R.of_poly (R.den after_b))

let eval_total c ~b bindings =
  let bindings = ("B", b) :: bindings in
  let env x =
    match List.assoc_opt x bindings with
    | Some v -> float_of_int v
    | None ->
        if x = "Binv" then 1. /. float_of_int b else raise Not_found
  in
  P.eval_float_env env (total c)

let gap ~upper ~lower bindings =
  let env x =
    match List.assoc_opt x bindings with
    | Some v -> float_of_int v
    | None ->
        if x = "sqrtS" then
          sqrt (float_of_int (List.assoc "S" bindings))
        else raise Not_found
  in
  R.eval_float_env env upper /. R.eval_float_env env lower
