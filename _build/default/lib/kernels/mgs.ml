open Shorthand

(* Right-looking MGS, Figure 1 of the paper.  The statement names SR / SU
   follow the paper; the hourglass lives between them (reduction over i in
   SR, broadcast over i in SU, temporal dimension k, neutral dimension j). *)
let spec =
  let m = v "M" and n = v "N" in
  Program.make ~name:"mgs" ~params:[ "M"; "N" ]
    ~assumptions:
      [
        Constr.ge_of (v "M") (v "N");
        Constr.ge_of (v "N") (c 2);
      ]
    [
      loop_lt "k" (c 0) n
        [
          stmt "Snrm0" ~writes:[ sc "nrm" ] ~reads:[];
          loop_lt "i" (c 0) m
            [
              stmt "Snrm"
                ~writes:[ sc "nrm" ]
                ~reads:[ sc "nrm"; a2 "A" (v "i") (v "k") ];
            ];
          stmt "Srkk" ~writes:[ a2 "R" (v "k") (v "k") ] ~reads:[ sc "nrm" ];
          loop_lt "i" (c 0) m
            [
              stmt "Sq"
                ~writes:[ a2 "Q" (v "i") (v "k") ]
                ~reads:[ a2 "A" (v "i") (v "k"); a2 "R" (v "k") (v "k") ];
            ];
          loop_lt "j" (v "k" +! c 1) n
            [
              stmt "Sr0" ~writes:[ a2 "R" (v "k") (v "j") ] ~reads:[];
              loop_lt "i" (c 0) m
                [
                  stmt "SR"
                    ~writes:[ a2 "R" (v "k") (v "j") ]
                    ~reads:
                      [
                        a2 "R" (v "k") (v "j");
                        a2 "Q" (v "i") (v "k");
                        a2 "A" (v "i") (v "j");
                      ];
                ];
              loop_lt "i" (c 0) m
                [
                  stmt "SU"
                    ~writes:[ a2 "A" (v "i") (v "j") ]
                    ~reads:
                      [
                        a2 "A" (v "i") (v "j");
                        a2 "Q" (v "i") (v "k");
                        a2 "R" (v "k") (v "j");
                      ];
                ];
            ];
        ];
    ]

let factor a =
  let m, n = Matrix.dims a in
  if m < n then invalid_arg "Mgs.factor: need m >= n";
  let q = Matrix.copy a in
  let r = Matrix.create n n in
  for k = 0 to n - 1 do
    let nrm = ref 0. in
    for i = 0 to m - 1 do
      nrm := !nrm +. (Matrix.get q i k *. Matrix.get q i k)
    done;
    let rkk = sqrt !nrm in
    Matrix.set r k k rkk;
    for i = 0 to m - 1 do
      Matrix.set q i k (Matrix.get q i k /. rkk)
    done;
    for j = k + 1 to n - 1 do
      let rkj = ref 0. in
      for i = 0 to m - 1 do
        rkj := !rkj +. (Matrix.get q i k *. Matrix.get q i j)
      done;
      Matrix.set r k j !rkj;
      for i = 0 to m - 1 do
        Matrix.set q i j (Matrix.get q i j -. (Matrix.get q i k *. !rkj))
      done
    done
  done;
  (q, r)

(* Left-looking tiled ordering, Figure 8 of the paper.  The current block of
   B columns stays resident; each previous column is streamed in once per
   block.  With (M+1)B < S the I/O is ~ M^2 N^2 / (2S). *)
let factor_tiled ~b a =
  if b < 1 then invalid_arg "Mgs.factor_tiled: b < 1";
  let m, n = Matrix.dims a in
  if m < n then invalid_arg "Mgs.factor_tiled: need m >= n";
  let q = Matrix.copy a in
  let r = Matrix.create n n in
  let j0 = ref 0 in
  while !j0 < n do
    let jhi = min (!j0 + b - 1) (n - 1) in
    (* Project the block against all columns to its left. *)
    for i = 0 to !j0 - 1 do
      for j = !j0 to jhi do
        let rij = ref 0. in
        for k = 0 to m - 1 do
          rij := !rij +. (Matrix.get q k i *. Matrix.get q k j)
        done;
        Matrix.set r i j !rij;
        for k = 0 to m - 1 do
          Matrix.set q k j (Matrix.get q k j -. (Matrix.get q k i *. !rij))
        done
      done
    done;
    (* Factor the block itself (unblocked MGS within the block). *)
    for j = !j0 to jhi do
      for i = !j0 to j - 1 do
        let rij = ref 0. in
        for k = 0 to m - 1 do
          rij := !rij +. (Matrix.get q k i *. Matrix.get q k j)
        done;
        Matrix.set r i j !rij;
        for k = 0 to m - 1 do
          Matrix.set q k j (Matrix.get q k j -. (Matrix.get q k i *. !rij))
        done
      done;
      let nrm = ref 0. in
      for k = 0 to m - 1 do
        nrm := !nrm +. (Matrix.get q k j *. Matrix.get q k j)
      done;
      let rjj = sqrt !nrm in
      Matrix.set r j j rjj;
      for k = 0 to m - 1 do
        Matrix.set q k j (Matrix.get q k j /. rjj)
      done
    done;
    j0 := !j0 + b
  done;
  (q, r)

let tiled_spec ~m ~n ~b =
  if b < 1 then invalid_arg "Mgs.tiled_spec: b < 1";
  if n mod b <> 0 then invalid_arg "Mgs.tiled_spec: b must divide n";
  let nb = n / b in
  (* j0 = t * b; all bounds are concrete-affine because b is a constant. *)
  let j0 = Affine.term b "t" in
  Program.make ~name:(Printf.sprintf "mgs_tiled_m%d_n%d_b%d" m n b) ~params:[]
    ~assumptions:[]
    [
      loop_lt "t" (c 0) (c nb)
        [
          (* Left update: stream every previous column through the block. *)
          loop_lt "i" (c 0) j0
            [
              loop "j" j0
                (j0 +! c (b - 1))
                [
                  stmt "Tr0" ~writes:[ a2 "R" (v "i") (v "j") ] ~reads:[];
                  loop_lt "k" (c 0) (c m)
                    [
                      stmt "TrR"
                        ~writes:[ a2 "R" (v "i") (v "j") ]
                        ~reads:
                          [
                            a2 "R" (v "i") (v "j");
                            a2 "A" (v "k") (v "i");
                            a2 "A" (v "k") (v "j");
                          ];
                    ];
                  loop_lt "k" (c 0) (c m)
                    [
                      stmt "TrU"
                        ~writes:[ a2 "A" (v "k") (v "j") ]
                        ~reads:
                          [
                            a2 "A" (v "k") (v "j");
                            a2 "A" (v "k") (v "i");
                            a2 "R" (v "i") (v "j");
                          ];
                    ];
                ];
            ];
          (* Factor the block: unblocked MGS among its own columns. *)
          loop "j" j0
            (j0 +! c (b - 1))
            [
              loop "i2" j0
                (v "j" -! c 1)
                [
                  stmt "Ti0" ~writes:[ a2 "R" (v "i2") (v "j") ] ~reads:[];
                  loop_lt "k" (c 0) (c m)
                    [
                      stmt "TiR"
                        ~writes:[ a2 "R" (v "i2") (v "j") ]
                        ~reads:
                          [
                            a2 "R" (v "i2") (v "j");
                            a2 "A" (v "k") (v "i2");
                            a2 "A" (v "k") (v "j");
                          ];
                    ];
                  loop_lt "k" (c 0) (c m)
                    [
                      stmt "TiU"
                        ~writes:[ a2 "A" (v "k") (v "j") ]
                        ~reads:
                          [
                            a2 "A" (v "k") (v "j");
                            a2 "A" (v "k") (v "i2");
                            a2 "R" (v "i2") (v "j");
                          ];
                    ];
                ];
              stmt "Tn0" ~writes:[ a2 "R" (v "j") (v "j") ] ~reads:[];
              loop_lt "k" (c 0) (c m)
                [
                  stmt "TnR"
                    ~writes:[ a2 "R" (v "j") (v "j") ]
                    ~reads:
                      [ a2 "R" (v "j") (v "j"); a2 "A" (v "k") (v "j") ];
                ];
              stmt "Tsq"
                ~writes:[ a2 "R" (v "j") (v "j") ]
                ~reads:[ a2 "R" (v "j") (v "j") ];
              loop_lt "k" (c 0) (c m)
                [
                  stmt "Tdv"
                    ~writes:[ a2 "A" (v "k") (v "j") ]
                    ~reads:[ a2 "A" (v "k") (v "j"); a2 "R" (v "j") (v "j") ];
                ];
            ];
        ];
    ]

let tiled_io_prediction ~m ~n ~s =
  let m = float_of_int m and n = float_of_int n and s = float_of_int s in
  m *. m *. n *. n /. (2. *. s)

let tiled_right_spec ~m ~n ~b =
  if b < 1 then invalid_arg "Mgs.tiled_right_spec: b < 1";
  if n mod b <> 0 then invalid_arg "Mgs.tiled_right_spec: b must divide n";
  let nb = n / b in
  let j0 = Affine.term b "t" in
  Program.make
    ~name:(Printf.sprintf "mgs_tiled_right_m%d_n%d_b%d" m n b)
    ~params:[] ~assumptions:[]
    [
      loop_lt "t" (c 0) (c nb)
        [
          (* Factor the block (identical inner factorisation). *)
          loop "j" j0
            (j0 +! c (b - 1))
            [
              loop "i2" j0
                (v "j" -! c 1)
                [
                  stmt "Ui0" ~writes:[ a2 "R" (v "i2") (v "j") ] ~reads:[];
                  loop_lt "k" (c 0) (c m)
                    [
                      stmt "UiR"
                        ~writes:[ a2 "R" (v "i2") (v "j") ]
                        ~reads:
                          [
                            a2 "R" (v "i2") (v "j");
                            a2 "A" (v "k") (v "i2");
                            a2 "A" (v "k") (v "j");
                          ];
                    ];
                  loop_lt "k" (c 0) (c m)
                    [
                      stmt "UiU"
                        ~writes:[ a2 "A" (v "k") (v "j") ]
                        ~reads:
                          [
                            a2 "A" (v "k") (v "j");
                            a2 "A" (v "k") (v "i2");
                            a2 "R" (v "i2") (v "j");
                          ];
                    ];
                ];
              stmt "Un0" ~writes:[ a2 "R" (v "j") (v "j") ] ~reads:[];
              loop_lt "k" (c 0) (c m)
                [
                  stmt "UnR"
                    ~writes:[ a2 "R" (v "j") (v "j") ]
                    ~reads:[ a2 "R" (v "j") (v "j"); a2 "A" (v "k") (v "j") ];
                ];
              stmt "Usq"
                ~writes:[ a2 "R" (v "j") (v "j") ]
                ~reads:[ a2 "R" (v "j") (v "j") ];
              loop_lt "k" (c 0) (c m)
                [
                  stmt "Udv"
                    ~writes:[ a2 "A" (v "k") (v "j") ]
                    ~reads:[ a2 "A" (v "k") (v "j"); a2 "R" (v "j") (v "j") ];
                ];
            ];
          (* Right-looking: project the whole trailing matrix against the
             block - reading and rewriting it once per block. *)
          loop "i" j0
            (j0 +! c (b - 1))
            [
              loop_lt "j2" (j0 +! c b) (c n)
                [
                  stmt "Ut0" ~writes:[ a2 "R" (v "i") (v "j2") ] ~reads:[];
                  loop_lt "k" (c 0) (c m)
                    [
                      stmt "UtR"
                        ~writes:[ a2 "R" (v "i") (v "j2") ]
                        ~reads:
                          [
                            a2 "R" (v "i") (v "j2");
                            a2 "A" (v "k") (v "i");
                            a2 "A" (v "k") (v "j2");
                          ];
                    ];
                  loop_lt "k" (c 0) (c m)
                    [
                      stmt "UtU"
                        ~writes:[ a2 "A" (v "k") (v "j2") ]
                        ~reads:
                          [
                            a2 "A" (v "k") (v "j2");
                            a2 "A" (v "k") (v "i");
                            a2 "R" (v "i") (v "j2");
                          ];
                    ];
                ];
            ];
        ];
    ]
