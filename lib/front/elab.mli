(** Elaboration of the surface AST to {!Iolb_ir.Program} programs.

    Beyond lowering, this is where the DSL's static semantics live, each
    violation reported at its source location:
    - every expression must be affine in the visible names (a product
      needs at least one constant operand);
    - every name must be a parameter or an enclosing loop variable;
    - loop variables may not shadow parameters or enclosing loop
      variables;
    - statement ids are unique across the kernel;
    - constant loop bounds may not give a negative trip count;
    - the [verify] clause must bind every parameter exactly once (it
      supplies the concrete sizes at which hourglass patterns are
      empirically verified and bounds evaluated). *)

type source = {
  program : Iolb_ir.Program.t;
  verify : (string * int) list;
      (** concrete parameter values from the [verify] clause, in source
          order *)
}

val kernel : Ast.kernel -> (source, Diag.t) result
