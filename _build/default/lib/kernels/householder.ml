open Shorthand

let a2v_spec =
  let m = v "M" and n = v "N" in
  let k1 = v "k" +! c 1 in
  Program.make ~name:"qr_hh_a2v" ~params:[ "M"; "N" ]
    ~assumptions:[ Constr.ge_of (v "M") (v "N" +! c 1); Constr.ge_of (v "N") (c 2) ]
    [
      loop_lt "k" (c 0) n
        [
          stmt "Sn0" ~writes:[ sc "norma2" ] ~reads:[];
          loop_lt "i" k1 m
            [
              stmt "Sn2"
                ~writes:[ sc "norma2" ]
                ~reads:[ sc "norma2"; a2 "A" (v "i") (v "k") ];
            ];
          stmt "Snrm" ~writes:[ sc "norma" ]
            ~reads:[ a2 "A" (v "k") (v "k"); sc "norma2" ];
          stmt "Sakk1"
            ~writes:[ a2 "A" (v "k") (v "k") ]
            ~reads:[ a2 "A" (v "k") (v "k"); sc "norma" ];
          stmt "Stau"
            ~writes:[ a1 "tau" (v "k") ]
            ~reads:[ sc "norma2"; a2 "A" (v "k") (v "k") ];
          loop_lt "i" k1 m
            [
              stmt "Sdiv"
                ~writes:[ a2 "A" (v "i") (v "k") ]
                ~reads:[ a2 "A" (v "i") (v "k"); a2 "A" (v "k") (v "k") ];
            ];
          stmt "Sakk2"
            ~writes:[ a2 "A" (v "k") (v "k") ]
            ~reads:[ a2 "A" (v "k") (v "k"); sc "norma" ];
          loop_lt "j" k1 n
            [
              stmt "St0"
                ~writes:[ a1 "tau" (v "j") ]
                ~reads:[ a2 "A" (v "k") (v "j") ];
              loop_lt "i" k1 m
                [
                  stmt "SR"
                    ~writes:[ a1 "tau" (v "j") ]
                    ~reads:
                      [
                        a1 "tau" (v "j");
                        a2 "A" (v "i") (v "k");
                        a2 "A" (v "i") (v "j");
                      ];
                ];
              stmt "Stm"
                ~writes:[ a1 "tau" (v "j") ]
                ~reads:[ a1 "tau" (v "k"); a1 "tau" (v "j") ];
              stmt "Sakj"
                ~writes:[ a2 "A" (v "k") (v "j") ]
                ~reads:[ a2 "A" (v "k") (v "j"); a1 "tau" (v "j") ];
              loop_lt "i" k1 m
                [
                  stmt "SU"
                    ~writes:[ a2 "A" (v "i") (v "j") ]
                    ~reads:
                      [
                        a2 "A" (v "i") (v "j");
                        a2 "A" (v "i") (v "k");
                        a1 "tau" (v "j");
                      ];
                ];
            ];
        ];
    ]

let v2q_spec =
  let m = v "M" and n = v "N" in
  let k1 = v "k" +! c 1 in
  Program.make ~name:"qr_hh_v2q" ~params:[ "M"; "N" ]
    ~assumptions:[ Constr.ge_of (v "M") (v "N" +! c 1); Constr.ge_of (v "N") (c 2) ]
    [
      loop_rev "k" (c 0)
        (n -! c 1)
        [
          loop_lt "j" k1 n
            [
              stmt "St0" ~writes:[ a1 "tau" (v "j") ] ~reads:[];
              loop_lt "i" k1 m
                [
                  stmt "SR"
                    ~writes:[ a1 "tau" (v "j") ]
                    ~reads:
                      [
                        a1 "tau" (v "j");
                        a2 "A" (v "i") (v "k");
                        a2 "A" (v "i") (v "j");
                      ];
                ];
            ];
          loop_lt "j" k1 n
            [
              stmt "ST"
                ~writes:[ a1 "tau" (v "j") ]
                ~reads:[ a1 "tau" (v "j"); a1 "tau" (v "k") ];
            ];
          stmt "Sakk" ~writes:[ a2 "A" (v "k") (v "k") ] ~reads:[ a1 "tau" (v "k") ];
          loop_lt "j" k1 n
            [
              stmt "Sakj"
                ~writes:[ a2 "A" (v "k") (v "j") ]
                ~reads:[ a1 "tau" (v "j") ];
            ];
          loop_lt "j" k1 n
            [
              loop_lt "i" k1 m
                [
                  stmt "SU"
                    ~writes:[ a2 "A" (v "i") (v "j") ]
                    ~reads:
                      [
                        a2 "A" (v "i") (v "j");
                        a2 "A" (v "i") (v "k");
                        a1 "tau" (v "j");
                      ];
                ];
            ];
          loop_lt "i" k1 m
            [
              stmt "Saik"
                ~writes:[ a2 "A" (v "i") (v "k") ]
                ~reads:[ a2 "A" (v "i") (v "k"); a1 "tau" (v "k") ];
            ];
        ];
    ]

type factors = { vr : Matrix.t; tau : float array }

(* Reflector generation on column k of [a], rows k..m-1, exactly as in the
   Figure 3 listing.  Returns tau_k; afterwards a(k,k) holds the R diagonal
   entry and a(i,k), i > k, the (normalised) reflector tail. *)
let generate_reflector a k =
  let m, _ = Matrix.dims a in
  let norma2 = ref 0. in
  for i = k + 1 to m - 1 do
    norma2 := !norma2 +. (Matrix.get a i k *. Matrix.get a i k)
  done;
  let akk = Matrix.get a k k in
  let norma = sqrt ((akk *. akk) +. !norma2) in
  let vkk = if akk > 0. then akk +. norma else akk -. norma in
  Matrix.set a k k vkk;
  let tau = 2. /. (1. +. (!norma2 /. (vkk *. vkk))) in
  for i = k + 1 to m - 1 do
    Matrix.set a i k (Matrix.get a i k /. vkk)
  done;
  Matrix.set a k k (if vkk > 0. then -.norma else norma);
  tau

(* Apply reflector (v = column k of [a] with implicit unit at k, tau) to
   column j, rows k..m-1. *)
let apply_reflector a ~k ~tau j =
  let m, _ = Matrix.dims a in
  let t = ref (Matrix.get a k j) in
  for i = k + 1 to m - 1 do
    t := !t +. (Matrix.get a i k *. Matrix.get a i j)
  done;
  let t = tau *. !t in
  Matrix.set a k j (Matrix.get a k j -. t);
  for i = k + 1 to m - 1 do
    Matrix.set a i j (Matrix.get a i j -. (Matrix.get a i k *. t))
  done

let geqr2 a =
  let m, n = Matrix.dims a in
  if m < n then invalid_arg "Householder.geqr2: need m >= n";
  let vr = Matrix.copy a in
  let tau = Array.make n 0. in
  for k = 0 to n - 1 do
    tau.(k) <- generate_reflector vr k;
    for j = k + 1 to n - 1 do
      apply_reflector vr ~k ~tau:tau.(k) j
    done
  done;
  { vr; tau }

let org2r f ~rows =
  let m, n = Matrix.dims f.vr in
  if rows <> m then invalid_arg "Householder.org2r: row mismatch";
  let q = Matrix.copy f.vr in
  for k = n - 1 downto 0 do
    (* Apply H_k to the already-built columns k+1..n-1. *)
    for j = k + 1 to n - 1 do
      let t = ref 0. in
      for i = k + 1 to m - 1 do
        t := !t +. (Matrix.get q i k *. Matrix.get q i j)
      done;
      let t = f.tau.(k) *. !t in
      Matrix.set q k j (-.t);
      for i = k + 1 to m - 1 do
        Matrix.set q i j (Matrix.get q i j -. (Matrix.get q i k *. t))
      done
    done;
    (* Create column k of Q from the reflector. *)
    Matrix.set q k k (1. -. f.tau.(k));
    for i = k + 1 to m - 1 do
      Matrix.set q i k (-.(Matrix.get q i k) *. f.tau.(k))
    done;
    (* Rows above k of column k are zero in H_k * e_k. *)
    for i = 0 to k - 1 do
      Matrix.set q i k 0.
    done
  done;
  q

let r_of f =
  let _, n = Matrix.dims f.vr in
  Matrix.init n n (fun i j -> if j >= i then Matrix.get f.vr i j else 0.)

let qr a =
  let m, _ = Matrix.dims a in
  let f = geqr2 a in
  (org2r f ~rows:m, r_of f)

let geqr2_tiled ~b a =
  if b < 1 then invalid_arg "Householder.geqr2_tiled: b < 1";
  let m, n = Matrix.dims a in
  if m < n then invalid_arg "Householder.geqr2_tiled: need m >= n";
  let vr = Matrix.copy a in
  let tau = Array.make n 0. in
  let k0 = ref 0 in
  while !k0 < n do
    let khi = min (!k0 + b - 1) (n - 1) in
    (* Left-looking: replay every earlier reflector on the block. *)
    for j = 0 to !k0 - 1 do
      for k = !k0 to khi do
        apply_reflector vr ~k:j ~tau:tau.(j) k
      done
    done;
    (* Factor the block itself. *)
    for k = !k0 to khi do
      for j = !k0 to k - 1 do
        apply_reflector vr ~k:j ~tau:tau.(j) k
      done;
      tau.(k) <- generate_reflector vr k
    done;
    k0 := !k0 + b
  done;
  { vr; tau }

let tiled_spec ~m ~n ~b =
  if b < 1 then invalid_arg "Householder.tiled_spec: b < 1";
  if n mod b <> 0 then invalid_arg "Householder.tiled_spec: b must divide n";
  let nb = n / b in
  let k0 = Affine.term b "t" in
  let reflect prefix jvar kvar =
    (* Apply reflector jvar to column kvar: the Figure 9 inner body. *)
    let j = v jvar and k = v kvar in
    [
      stmt (prefix ^ "t0") ~writes:[ sc "tmp" ] ~reads:[ a2 "A" j k ];
      loop "i" (j +! c 1)
        (c (m - 1))
        [
          stmt (prefix ^ "tR") ~writes:[ sc "tmp" ]
            ~reads:[ sc "tmp"; a2 "A" (v "i") j; a2 "A" (v "i") k ];
        ];
      stmt (prefix ^ "tm") ~writes:[ sc "tmp" ] ~reads:[ a1 "tau" j; sc "tmp" ];
      stmt (prefix ^ "a0") ~writes:[ a2 "A" j k ] ~reads:[ a2 "A" j k; sc "tmp" ];
      loop "i" (j +! c 1)
        (c (m - 1))
        [
          stmt (prefix ^ "tU")
            ~writes:[ a2 "A" (v "i") k ]
            ~reads:[ a2 "A" (v "i") k; a2 "A" (v "i") j; sc "tmp" ];
        ];
    ]
  in
  Program.make
    ~name:(Printf.sprintf "a2v_tiled_m%d_n%d_b%d" m n b)
    ~params:[] ~assumptions:[]
    [
      loop_lt "t" (c 0) (c nb)
        [
          loop_lt "j" (c 0) k0
            [ loop "k" k0 (k0 +! c (b - 1)) (reflect "P" "j" "k") ];
          loop "k" k0
            (k0 +! c (b - 1))
            (List.concat
               [
                 [ loop "j2" k0 (v "k" -! c 1) (reflect "Q" "j2" "k") ];
                 [
                   stmt "Gn0" ~writes:[ sc "norma2" ] ~reads:[];
                   loop "i"
                     (v "k" +! c 1)
                     (c (m - 1))
                     [
                       stmt "Gn2" ~writes:[ sc "norma2" ]
                         ~reads:[ sc "norma2"; a2 "A" (v "i") (v "k") ];
                     ];
                   stmt "Gnrm" ~writes:[ sc "norma" ]
                     ~reads:[ a2 "A" (v "k") (v "k"); sc "norma2" ];
                   stmt "Gakk1"
                     ~writes:[ a2 "A" (v "k") (v "k") ]
                     ~reads:[ a2 "A" (v "k") (v "k"); sc "norma" ];
                   stmt "Gtau"
                     ~writes:[ a1 "tau" (v "k") ]
                     ~reads:[ sc "norma2"; a2 "A" (v "k") (v "k") ];
                   loop "i"
                     (v "k" +! c 1)
                     (c (m - 1))
                     [
                       stmt "Gdiv"
                         ~writes:[ a2 "A" (v "i") (v "k") ]
                         ~reads:[ a2 "A" (v "i") (v "k"); a2 "A" (v "k") (v "k") ];
                     ];
                   stmt "Gakk2"
                     ~writes:[ a2 "A" (v "k") (v "k") ]
                     ~reads:[ a2 "A" (v "k") (v "k"); sc "norma" ];
                 ];
               ]);
        ];
    ]

let tiled_io_prediction ~m ~n ~s =
  let m = float_of_int m and n = float_of_int n and s = float_of_int s in
  ((m *. m *. n *. n) -. (m *. n *. n *. n /. 3.)) /. (2. *. s)
