module Report = Iolb.Report
module D = Iolb.Derive
module Program = Iolb_ir.Program
module Deps = Iolb_ir.Deps

let ( let* ) = Result.bind

(* Verify bindings are order-insensitive: the printer emits them in
   program-parameter order, the registry stores them in historical order. *)
let verify_equal a b =
  let sort l = List.sort (fun (x, _) (y, _) -> String.compare x y) l in
  List.equal
    (fun (x, (v : int)) (y, w) -> String.equal x y && v = w)
    (sort a) (sort b)

let resolve (src : Front.source) =
  List.find_opt
    (fun (e : Report.entry) ->
      Program.equal e.program src.Front.program
      && verify_equal e.verify_params src.Front.verify)
    Report.registry

(* The exact bytes [iolb analyze] prints after the report: a blank line,
   the bound, then (with [logs]) its derivation log. *)
let render_bounds ~logs bounds =
  String.concat ""
    (List.map
       (fun (b : D.t) ->
         Format.asprintf "@.%a@." D.pp b
         ^
         if logs then
           String.concat ""
             (List.map (fun l -> Format.asprintf "    | %s@." l) b.D.log)
         else "")
       bounds)

let render_analysis ~logs (a : Report.analysis) =
  (* The registry report already lists each bound; the trailing section
     repeats them only to attach the derivation logs. *)
  Format.asprintf "%a@." Report.pp_analysis a
  ^ if logs then render_bounds ~logs a.Report.bounds else ""

let render_outcome ~logs (o : D.outcome) =
  (match o.D.degradation with
  | Some why -> Format.asprintf "degraded: %s@." why
  | None -> (
      match o.D.bounds with
      | [] ->
          Format.asprintf
            "no bound derivable (no hourglass; Brascamp-Lieb exponent <= 1)@."
      | _ :: _ -> ""))
  ^ render_bounds ~logs o.D.bounds

let render_entry ~budget ~logs entry =
  let* a = Report.analyze_checked ~budget entry in
  Ok (render_analysis ~logs a)

let render_ladder ~budget ~logs ~verify_params program =
  let* o = D.analyze_ladder ~budget ~verify_params program in
  Ok (render_outcome ~logs o)

let render_kernel ~budget ~logs name =
  match Report.find_checked name with
  | Ok entry -> render_entry ~budget ~logs entry
  | Error e -> (
      match List.find_opt (fun (n, _, _) -> n = name) Report.baselines with
      | Some (_, program, verify_params) ->
          render_ladder ~budget ~logs ~verify_params program
      | None -> Error e)

let render_source ~budget ~logs (src : Front.source) =
  match resolve src with
  | Some entry -> render_entry ~budget ~logs entry
  | None ->
      render_ladder ~budget ~logs ~verify_params:src.Front.verify
        src.Front.program

let render_file ~budget ~logs path =
  let* src = Front.parse_file path in
  render_source ~budget ~logs src

let rec count_stmts n = function
  | Program.Stmt _ -> n + 1
  | Program.Loop { body; _ } -> List.fold_left count_stmts n body

let describe (src : Front.source) =
  let p = src.Front.program in
  Printf.sprintf "kernel %s: %d parameters, %d statements, %d dependence relations%s"
    p.Program.name
    (List.length p.Program.params)
    (List.fold_left count_stmts 0 p.Program.body)
    (List.length (Deps.relations p))
    (match resolve src with
    | Some e -> Printf.sprintf " (matches built-in %s)" e.Report.display
    | None -> "")
