(** Hand-written lexer for the affine-program DSL.

    Tokens carry the location of their first character.  Comments run
    from [#] or [//] to end of line; whitespace is insignificant. *)

type token =
  | KERNEL
  | ASSUME
  | VERIFY
  | FOR
  | DOWNTO
  | DOTDOT  (** [..] *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | EQ  (** [=] *)
  | EQEQ  (** [==], accepted as a synonym of [=] in constraints *)
  | GE
  | LE
  | GT
  | LT
  | PLUS
  | MINUS
  | STAR
  | IDENT of string
  | INT of int
  | EOF

type located = { tok : token; loc : Loc.t }

(** Human rendering used by expected-token diagnostics (e.g. ["'..'"],
    ["an identifier"], ["end of input"]). *)
val describe : token -> string

(** [tokenize ~file src] lexes the whole source, ending with an [EOF]
    token.  Fails on the first unexpected character or unreadable integer
    literal. *)
val tokenize : file:string -> string -> (located array, Diag.t) result
