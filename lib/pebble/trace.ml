module Interner = Iolb_ir.Interner

type cell = string * int array

type event = Read of cell | Write of cell

type t = {
  cells : int array; (* per event: interned cell id; may be oversized *)
  writes : bool array; (* per event: write flag *)
  len : int; (* number of events; only cells.(0..len-1) are meaningful *)
  pool : Interner.t;
}

(* Shared builder: push events as (cell, is_write) pairs. *)
type builder = {
  mutable ids : int array;
  mutable flags : bool array;
  mutable len : int;
  p : Interner.t;
}

let builder size =
  {
    ids = Array.make (max size 16) 0;
    flags = Array.make (max size 16) false;
    p = Interner.create ();
    len = 0;
  }

let push_id b id is_write =
  if b.len = Array.length b.ids then begin
    let cap = 2 * b.len in
    let ids = Array.make cap 0 and flags = Array.make cap false in
    Array.blit b.ids 0 ids 0 b.len;
    Array.blit b.flags 0 flags 0 b.len;
    b.ids <- ids;
    b.flags <- flags
  end;
  b.ids.(b.len) <- id;
  b.flags.(b.len) <- is_write;
  b.len <- b.len + 1

let push b cell is_write = push_id b (Interner.intern b.p cell) is_write

(* The builder's (possibly oversized) arrays are adopted as-is: freezing a
   multi-hundred-thousand-event trace must not copy it. *)
let freeze b = { cells = b.ids; writes = b.flags; len = b.len; pool = b.p }

let of_program ?(budget = Iolb_util.Budget.unlimited) ~params p =
  (* Exact pre-count (closed-form over the loop nest): the builder never
     grows, so a multi-hundred-thousand-event trace costs one allocation
     and zero copies. *)
  let b = builder (Iolb_ir.Program.n_accesses ~params p) in
  let n = ref 0 in
  (* Streaming path: indices arrive in a borrowed buffer and are interned
     via [intern_view], so the (dominant) repeat-cell case allocates
     nothing. *)
  Iolb_ir.Program.iter_accesses ~params p
    ~on_instance:(fun () ->
      Iolb_util.Budget.checkpoint budget Iolb_util.Budget.Cdag_build;
      incr n;
      Iolb_util.Budget.check_node_cap budget Iolb_util.Budget.Cdag_build !n)
    ~on_access:(fun name idx is_write ->
      push_id b (Interner.intern_view b.p name idx) is_write);
  freeze b

let of_events evs =
  let b = builder (List.length evs) in
  List.iter
    (function Read c -> push b c false | Write c -> push b c true)
    evs;
  freeze b

let length (t : t) = t.len
let footprint t = Interner.count t.pool
let cell_id t i = t.cells.(i)
let is_write t i = t.writes.(i)
let cells (t : t) = t.cells
let write_flags (t : t) = t.writes
let cell t id = Interner.key t.pool id

let event t i =
  let c = cell t t.cells.(i) in
  if t.writes.(i) then Write c else Read c

let to_events t = List.init (length t) (event t)

let pp_event fmt e =
  let pp_cell fmt (a, idx) =
    Format.fprintf fmt "%s(%s)" a
      (String.concat "," (List.map string_of_int (Array.to_list idx)))
  in
  match e with
  | Read c -> Format.fprintf fmt "R %a" pp_cell c
  | Write c -> Format.fprintf fmt "W %a" pp_cell c
