lib/poly/affine.mli: Format Iolb_symbolic
