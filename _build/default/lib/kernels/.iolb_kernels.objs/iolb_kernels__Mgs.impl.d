lib/kernels/mgs.ml: Affine Constr Matrix Printf Program Shorthand
