test/test_polynomial.ml: Alcotest Iolb_symbolic Iolb_util List Printf QCheck2 QCheck_alcotest
