module Budget = Iolb_util.Budget

(* ------------------------------------------------------------------ *)
(* Compiled constraint systems                                         *)
(*                                                                     *)
(* The public interface speaks named dimensions and [Constr.t] lists,  *)
(* but every operation that iterates (membership, enumeration,         *)
(* counting, Fourier-Motzkin) first resolves names to integer columns  *)
(* and works on dense [int array] rows.  Dimensions occupy columns     *)
(* [0 .. ndims-1] in declaration order; every other variable that      *)
(* appears in a constraint (parameters, free symbols) gets a column    *)
(* after them.                                                         *)
(* ------------------------------------------------------------------ *)

(* One constraint [sum_i ra.(i) * var_i + rc (>=|=) 0] over the
   system's column table. *)
type row = { rk : Constr.kind; rc : int; ra : int array }

type system = { ndims : int; vars : string array; rows : row array }

(* An enumeration plan for one (set, params) pair: the Fourier-Motzkin
   level systems reduced to the per-level bound rows the scan needs. *)
type plan = {
  pn : int;
  pdims : string array;
  (* pbound.(k): rows whose highest dimension column is [k] and which
     mention no unresolved symbol; they bound dims.(k) once
     point.(0..k-1) is fixed. *)
  pbound : row array array;
  (* pmiss.(k): no lower or no upper bound row at level [k]; raised as
     "unbounded" if the scan reaches that level. *)
  pmiss : bool array;
  pfalse : bool; (* a level-0 row is constantly false: the set is empty *)
  (* a constraint mentions a variable that is neither a dimension nor a
     bound parameter; membership of any candidate raises [Not_found],
     matching the uncompiled evaluation order. *)
  pfree : bool;
}

type t = {
  dims : string list;
  cons : Constr.t list;
  mutable sys : system option; (* compiled form, built on first use *)
  mutable plans : ((string * int) list * plan) list; (* small MRU cache *)
}

let make ~dims cons = { dims; cons; sys = None; plans = [] }
let dims s = s.dims
let constraints s = s.cons

let intersect a b =
  if a.dims <> b.dims then
    invalid_arg
      (Printf.sprintf "Iset.intersect: dimension mismatch ([%s] vs [%s])"
         (String.concat "; " a.dims)
         (String.concat "; " b.dims));
  make ~dims:a.dims (a.cons @ b.cons)

let add_constraints cs s = make ~dims:s.dims (cs @ s.cons)

let specialize params s =
  let env x = if List.mem x s.dims then None else List.assoc_opt x params in
  make ~dims:s.dims (List.map (Constr.specialize env) s.cons)

let compile s =
  match s.sys with
  | Some c -> c
  | None ->
      let ndims = List.length s.dims in
      let module SS = Set.Make (String) in
      let dimset = SS.of_list s.dims in
      let others =
        List.fold_left
          (fun acc (c : Constr.t) ->
            List.fold_left
              (fun acc v -> if SS.mem v dimset then acc else SS.add v acc)
              acc (Affine.vars c.expr))
          SS.empty s.cons
      in
      let vars = Array.of_list (s.dims @ SS.elements others) in
      let ncols = Array.length vars in
      let col = Hashtbl.create (2 * ncols) in
      Array.iteri
        (fun i v -> if not (Hashtbl.mem col v) then Hashtbl.add col v i)
        vars;
      let rows =
        Array.of_list
          (List.map
             (fun (c : Constr.t) ->
               let ra = Array.make ncols 0 in
               List.iter
                 (fun (k, v) -> ra.(Hashtbl.find col v) <- k)
                 (Affine.terms c.expr);
               { rk = c.kind; rc = Affine.constant c.expr; ra })
             s.cons)
      in
      let c = { ndims; vars; rows } in
      s.sys <- Some c;
      c

(* Division helpers rounding toward the feasible side (denominator > 0). *)
let ceil_div q d = if q >= 0 then (q + d - 1) / d else -(-q / d)
let floor_div q d = if q >= 0 then q / d else -(ceil_div (-q) d)

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

let false_row ncols = { rk = Constr.Ge; rc = -1; ra = Array.make ncols 0 }

(* Canonical form of one row: divide by the gcd of the coefficients
   (tightening the constant toward the integer hull), fold constants,
   and sign-normalise equalities.  [None] means trivially true;
   constant-false rows collapse to the canonical false row so emptiness
   survives pruning. *)
let normalize_row ncols (r : row) =
  let g = ref 0 in
  for i = 0 to ncols - 1 do
    g := gcd_int (abs r.ra.(i)) !g
  done;
  match r.rk with
  | Constr.Ge ->
      if !g = 0 then if r.rc >= 0 then None else Some (false_row ncols)
      else if !g = 1 then Some r
      else
        Some
          {
            r with
            rc = floor_div r.rc !g;
            ra = Array.map (fun a -> a / !g) r.ra;
          }
  | Constr.Eq ->
      if !g = 0 then if r.rc = 0 then None else Some (false_row ncols)
      else if r.rc mod !g <> 0 then Some (false_row ncols)
      else begin
        let r =
          if !g = 1 then r
          else
            { r with rc = r.rc / !g; ra = Array.map (fun a -> a / !g) r.ra }
        in
        (* first non-zero coefficient positive *)
        let rec lead i =
          if i >= ncols then 0
          else if r.ra.(i) <> 0 then r.ra.(i)
          else lead (i + 1)
        in
        if lead 0 < 0 then
          Some { r with rc = -r.rc; ra = Array.map (fun a -> -a) r.ra }
        else Some r
      end

let row_compare (a : row) (b : row) =
  match Stdlib.compare a.rk b.rk with
  | 0 -> (
      match Stdlib.compare a.ra b.ra with
      | 0 -> Stdlib.compare a.rc b.rc
      | c -> c)
  | c -> c

(* Duplicate and dominated-constraint pruning on normalised rows: rows
   sharing a coefficient vector keep only the strongest constant (for
   inequalities) and collapse contradicting equalities to the false
   row.  The sorted result doubles as a canonical form for memoising. *)
let dedup_rows ncols rows =
  let rows = List.sort row_compare rows in
  let rec go acc = function
    | [] -> List.rev acc
    | [ r ] -> List.rev (r :: acc)
    | a :: b :: tl ->
        if a.rk = b.rk && a.ra = b.ra then
          match a.rk with
          (* a.rc <= b.rc: a is the stronger row, b is dominated *)
          | Constr.Ge -> go acc (a :: tl)
          | Constr.Eq ->
              if a.rc = b.rc then go acc (a :: tl)
              else go (false_row ncols :: acc) (a :: tl)
        else go (a :: acc) (b :: tl)
  in
  go [] rows

(* ------------------------------------------------------------------ *)
(* Fourier-Motzkin elimination on compiled rows, with a global memo    *)
(* keyed by the canonical (rows, eliminated column) form.  Keys are    *)
(* purely numeric, so structurally identical systems share results     *)
(* across sets and parameter valuations.                               *)
(* ------------------------------------------------------------------ *)

module Memo = Hashtbl.Make (struct
  type t = int array

  let equal = ( = )

  let hash a =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor Array.unsafe_get a i) * 0x01000193
    done;
    !h land max_int
end)

let fm_memo : row list Memo.t = Memo.create 256
let fm_memo_mutex = Mutex.create ()
let fm_memo_cap = 8192

let encode_key x ncols rows =
  let nrows = List.length rows in
  let key = Array.make (2 + (nrows * (ncols + 2))) 0 in
  key.(0) <- x;
  key.(1) <- ncols;
  let p = ref 2 in
  List.iter
    (fun r ->
      key.(!p) <- (match r.rk with Constr.Ge -> 0 | Constr.Eq -> 1);
      key.(!p + 1) <- r.rc;
      Array.blit r.ra 0 key (!p + 2) ncols;
      p := !p + ncols + 2)
    rows;
  key

(* Eliminate column [x].  Mirrors the uncompiled algorithm: a unit
   equality on [x] substitutes exactly; other equalities split into two
   inequalities; otherwise every (lower, upper) pair combines, with one
   budget checkpoint per combination. *)
let fm_rows ~budget ncols x rows =
  let key = encode_key x ncols rows in
  match
    Mutex.protect fm_memo_mutex (fun () -> Memo.find_opt fm_memo key)
  with
  | Some r -> r
  | None ->
      let split =
        List.concat_map
          (fun r ->
            let cx = r.ra.(x) in
            if r.rk = Constr.Eq && cx <> 0 && abs cx <> 1 then
              [
                { r with rk = Constr.Ge };
                {
                  rk = Constr.Ge;
                  rc = -r.rc;
                  ra = Array.map (fun a -> -a) r.ra;
                };
              ]
            else [ r ])
          rows
      in
      let subst_eq =
        List.find_opt (fun r -> r.rk = Constr.Eq && abs r.ra.(x) = 1) split
      in
      let produced =
        match subst_eq with
        | Some e ->
            (* e: cx * x + rest = 0 with cx = +-1, so x = -cx * rest. *)
            let cx = e.ra.(x) in
            List.filter_map
              (fun r ->
                if r == e then None
                else
                  let a = r.ra.(x) in
                  if a = 0 then normalize_row ncols r
                  else begin
                    let f = a * cx in
                    let ra =
                      Array.init ncols (fun i -> r.ra.(i) - (f * e.ra.(i)))
                    in
                    ra.(x) <- 0;
                    normalize_row ncols
                      { rk = r.rk; rc = r.rc - (f * e.rc); ra }
                  end)
              split
        | None ->
            let lowers, uppers, rest =
              List.fold_left
                (fun (lo, up, rest) r ->
                  let cx = r.ra.(x) in
                  if cx > 0 then (r :: lo, up, rest)
                  else if cx < 0 then (lo, r :: up, rest)
                  else (lo, up, r :: rest))
                ([], [], []) split
            in
            let combined =
              List.concat_map
                (fun l ->
                  let cl = l.ra.(x) in
                  List.filter_map
                    (fun u ->
                      Budget.checkpoint budget Budget.Poly_projection;
                      (* cl > 0 > cu: (-cu) * l + cl * u eliminates x. *)
                      let cu = u.ra.(x) in
                      let ra =
                        Array.init ncols (fun i ->
                            (-cu * l.ra.(i)) + (cl * u.ra.(i)))
                      in
                      normalize_row ncols
                        {
                          rk = Constr.Ge;
                          rc = (-cu * l.rc) + (cl * u.rc);
                          ra;
                        })
                    uppers)
                lowers
            in
            combined @ rest
      in
      let result = dedup_rows ncols produced in
      Mutex.protect fm_memo_mutex (fun () ->
          if Memo.length fm_memo >= fm_memo_cap then Memo.reset fm_memo;
          Memo.replace fm_memo key result);
      result

(* ------------------------------------------------------------------ *)
(* Membership                                                          *)
(* ------------------------------------------------------------------ *)

let mem ~params s point =
  let sys = compile s in
  let ncols = Array.length sys.vars in
  let env = Array.make ncols 0 in
  let bound = Array.make ncols false in
  for i = 0 to ncols - 1 do
    (* parameter bindings take precedence over coordinates, matching the
       uncompiled environment's lookup order *)
    match List.assoc_opt sys.vars.(i) params with
    | Some v ->
        env.(i) <- v;
        bound.(i) <- true
    | None ->
        if i < sys.ndims then begin
          env.(i) <- point.(i);
          bound.(i) <- true
        end
  done;
  Array.for_all
    (fun r ->
      let acc = ref r.rc in
      for i = 0 to ncols - 1 do
        let a = Array.unsafe_get r.ra i in
        if a <> 0 then begin
          if not (Array.unsafe_get bound i) then raise Not_found;
          acc := !acc + (a * Array.unsafe_get env i)
        end
      done;
      match r.rk with Constr.Ge -> !acc >= 0 | Constr.Eq -> !acc = 0)
    sys.rows

(* ------------------------------------------------------------------ *)
(* Enumeration plans                                                   *)
(* ------------------------------------------------------------------ *)

let build_plan ~budget sys params dims_list =
  let n = sys.ndims in
  let ncols = Array.length sys.vars in
  (* bind parameter columns (never dimension columns) *)
  let pval = Array.make ncols None in
  for i = n to ncols - 1 do
    pval.(i) <- List.assoc_opt sys.vars.(i) params
  done;
  let rows0 =
    Array.to_list sys.rows
    |> List.filter_map (fun r ->
           let rc = ref r.rc in
           let ra = Array.copy r.ra in
           for i = n to ncols - 1 do
             if ra.(i) <> 0 then
               match pval.(i) with
               | Some v ->
                   rc := !rc + (ra.(i) * v);
                   ra.(i) <- 0
               | None -> ()
           done;
           normalize_row ncols { r with rc = !rc; ra })
  in
  let levels = Array.make n [] in
  levels.(n - 1) <- rows0;
  for k = n - 1 downto 1 do
    levels.(k - 1) <- fm_rows ~budget ncols k levels.(k)
  done;
  let top_dim r =
    let rec go i = if i < 0 then -1 else if r.ra.(i) <> 0 then i else go (i - 1) in
    go (n - 1)
  in
  let has_free r =
    let rec go i = if i >= ncols then false else r.ra.(i) <> 0 || go (i + 1) in
    go n
  in
  let pbound = Array.make n [||] in
  let pmiss = Array.make n false in
  for k = 0 to n - 1 do
    let rows =
      List.filter (fun r -> top_dim r = k && not (has_free r)) levels.(k)
    in
    pbound.(k) <- Array.of_list rows;
    let has_lo =
      List.exists (fun r -> r.rk = Constr.Eq || r.ra.(k) > 0) rows
    and has_up =
      List.exists (fun r -> r.rk = Constr.Eq || r.ra.(k) < 0) rows
    in
    pmiss.(k) <- not (has_lo && has_up)
  done;
  let pfalse =
    List.exists
      (fun r ->
        top_dim r = -1
        && (not (has_free r))
        &&
        match r.rk with Constr.Ge -> r.rc < 0 | Constr.Eq -> r.rc <> 0)
      levels.(0)
  in
  let pfree = List.exists has_free levels.(n - 1) in
  { pn = n; pdims = Array.of_list dims_list; pbound; pmiss; pfalse; pfree }

let plan_cache_cap = 8

let plan_for ~budget ~params s =
  let sys = compile s in
  match List.find_opt (fun (ps, _) -> ps = params) s.plans with
  | Some (_, p) -> p
  | None ->
      let p = build_plan ~budget sys params s.dims in
      let keep =
        if List.length s.plans >= plan_cache_cap then
          List.filteri (fun i _ -> i < plan_cache_cap - 1) s.plans
        else s.plans
      in
      s.plans <- (params, p) :: keep;
      p

(* Shared scan driver: walks the per-level bound rows in lexicographic
   order and hands each innermost feasible interval [lo, up] (with the
   point prefix in [point]) to [leaf].  At the innermost level the rows
   are the full original system with all outer dimensions fixed, so the
   interval is exact and no per-point membership re-check is needed. *)
let scan plan ~leaf =
  let n = plan.pn in
  let point = Array.make n 0 in
  let rec go k =
    if plan.pmiss.(k) then
      invalid_arg
        (Printf.sprintf "Iset.enumerate: dimension %s is unbounded"
           plan.pdims.(k));
    let lo = ref min_int and up = ref max_int in
    Array.iter
      (fun r ->
        let cx = r.ra.(k) in
        let c = ref r.rc in
        for i = 0 to k - 1 do
          c := !c + (Array.unsafe_get r.ra i * Array.unsafe_get point i)
        done;
        match r.rk with
        | Constr.Ge ->
            if cx > 0 then begin
              let b = ceil_div (- !c) cx in
              if b > !lo then lo := b
            end
            else begin
              let b = floor_div !c (-cx) in
              if b < !up then up := b
            end
        | Constr.Eq ->
            (* x = -c / cx exactly *)
            let q = - !c and d = cx in
            let q, d = if d < 0 then (-q, -d) else (q, d) in
            let bl = ceil_div q d and bu = floor_div q d in
            if bl > !lo then lo := bl;
            if bu < !up then up := bu)
      plan.pbound.(k);
    if k = n - 1 then begin
      if !lo <= !up then begin
        if plan.pfree then raise Not_found;
        leaf point !lo !up
      end
    end
    else
      for v = !lo to !up do
        point.(k) <- v;
        go (k + 1)
      done
  in
  if not plan.pfalse then go 0

(* Zero-dimensional sets reduce to a membership test of the empty point;
   evaluate rows in declaration order so that `false before Not_found'
   behaviour matches the uncompiled evaluator. *)
let mem_empty_point ~params s = mem ~params s [||]

let enumerate ?(budget = Budget.unlimited) ~params s =
  let sys = compile s in
  if sys.ndims = 0 then (if mem_empty_point ~params s then [ [||] ] else [])
  else begin
    let plan = plan_for ~budget ~params s in
    let n = plan.pn in
    let out = ref [] in
    let count = ref 0 in
    scan plan ~leaf:(fun point lo up ->
        for v = lo to up do
          Budget.checkpoint budget Budget.Poly_projection;
          incr count;
          Budget.check_node_cap budget Budget.Poly_projection !count;
          point.(n - 1) <- v;
          out := Array.copy point :: !out
        done);
    List.rev !out
  end

let cardinal ?(budget = Budget.unlimited) ~params s =
  let sys = compile s in
  if sys.ndims = 0 then (if mem_empty_point ~params s then 1 else 0)
  else begin
    let plan = plan_for ~budget ~params s in
    let count = ref 0 in
    (* the innermost dimension is counted in closed form; the node cap
       still sees every logical point *)
    scan plan ~leaf:(fun _ lo up ->
        Budget.checkpoint budget Budget.Poly_projection;
        count := !count + (up - lo + 1);
        Budget.check_node_cap budget Budget.Poly_projection !count);
    !count
  end

exception Nonempty

let is_empty ?(budget = Budget.unlimited) ~params s =
  let sys = compile s in
  if sys.ndims = 0 then not (mem_empty_point ~params s)
  else begin
    let plan = plan_for ~budget ~params s in
    (* short-circuit on the first feasible interval *)
    try
      scan plan ~leaf:(fun _ _ _ -> raise_notrace Nonempty);
      true
    with Nonempty -> false
  end

(* ------------------------------------------------------------------ *)
(* Named-constraint entry points (projection, bounds)                  *)
(* ------------------------------------------------------------------ *)

let compile_cons extra_vars cons =
  let module SS = Set.Make (String) in
  let vars =
    List.fold_left
      (fun acc (c : Constr.t) ->
        List.fold_left (fun acc v -> SS.add v acc) acc (Affine.vars c.expr))
      (SS.of_list extra_vars) cons
  in
  let vars = Array.of_list (SS.elements vars) in
  let col = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace col v i) vars;
  let ncols = Array.length vars in
  let rows =
    List.map
      (fun (c : Constr.t) ->
        let ra = Array.make ncols 0 in
        List.iter
          (fun (k, v) -> ra.(Hashtbl.find col v) <- k)
          (Affine.terms c.expr);
        { rk = c.kind; rc = Affine.constant c.expr; ra })
      cons
  in
  (vars, col, ncols, rows)

let decompile_rows vars rows =
  List.map
    (fun r ->
      let terms = ref [] in
      for i = Array.length vars - 1 downto 0 do
        if r.ra.(i) <> 0 then terms := (r.ra.(i), vars.(i)) :: !terms
      done;
      let expr = Affine.of_terms !terms r.rc in
      match r.rk with Constr.Ge -> Constr.ge expr | Constr.Eq -> Constr.eq expr)
    rows

let fm_eliminate ?(budget = Budget.unlimited) x cons =
  let vars, col, ncols, rows = compile_cons [ x ] cons in
  let out = fm_rows ~budget ncols (Hashtbl.find col x) rows in
  decompile_rows vars out

let project ?(budget = Budget.unlimited) ~onto s =
  let to_remove = List.filter (fun d -> not (List.mem d onto)) s.dims in
  let vars, col, ncols, rows = compile_cons s.dims s.cons in
  let out =
    List.fold_left
      (fun rows d -> fm_rows ~budget ncols (Hashtbl.find col d) rows)
      rows to_remove
  in
  make ~dims:onto (decompile_rows vars out)

(* Integer bounds of column [x] from rows where every other column is
   zero (other dimensions eliminated, parameters substituted); rows
   still involving symbols are ignored, as in the uncompiled scanner. *)
let col_bounds x ncols rows =
  List.fold_left
    (fun (lo, up) r ->
      let cx = r.ra.(x) in
      let pure =
        cx <> 0
        &&
        let rec go i =
          i >= ncols || ((i = x || r.ra.(i) = 0) && go (i + 1))
        in
        go 0
      in
      if not pure then (lo, up)
      else
        let join_lo b = match lo with None -> Some b | Some l -> Some (max l b)
        and join_up b =
          match up with None -> Some b | Some u -> Some (min u b)
        in
        match r.rk with
        | Constr.Ge ->
            if cx > 0 then (join_lo (ceil_div (-r.rc) cx), up)
            else (lo, join_up (floor_div r.rc (-cx)))
        | Constr.Eq ->
            let q = -r.rc and d = cx in
            let q, d = if d < 0 then (-q, -d) else (q, d) in
            (join_lo (ceil_div q d), join_up (floor_div q d)))
    (None, None) rows

let bounds_of_dim ?(budget = Budget.unlimited) ~params s x =
  let s = specialize params s in
  let vars, col, ncols, rows = compile_cons (x :: s.dims) s.cons in
  ignore vars;
  let rows = List.filter_map (normalize_row ncols) rows in
  let others = List.filter (fun d -> d <> x) s.dims in
  let rows =
    List.fold_left
      (fun rows d -> fm_rows ~budget ncols (Hashtbl.find col d) rows)
      rows others
  in
  col_bounds (Hashtbl.find col x) ncols rows

let pp fmt s =
  Format.fprintf fmt "{ [%a] : %a }"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Format.pp_print_string)
    s.dims
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " and ")
       Constr.pp)
    s.cons
