lib/kernels/syrk.mli: Iolb_ir Matrix
