module Json = Iolb_util.Json
module Pool = Iolb_util.Pool
module Budget = Iolb_util.Budget
module Engine_error = Iolb_util.Engine_error
module Report = Iolb.Report
module Derive = Iolb.Derive
module Hourglass = Iolb.Hourglass
module Front = Iolb_front.Front
module Diag = Iolb_front.Diag
module Sweep = Iolb_pebble.Sweep

type address = Unix_sock of string | Tcp of string * int

let pp_address fmt = function
  | Unix_sock path -> Format.fprintf fmt "unix:%s" path
  | Tcp (host, port) -> Format.fprintf fmt "tcp:%s:%d" host port

type config = {
  address : address;
  jobs : int;
  queue_capacity : int;
  cache_capacity : int;
  max_connections : int;
  retry_after_ms : int;
  default_timeout_ms : int option;
  allow_crash : bool;
  log : string -> unit;
}

let default_config ~address =
  {
    address;
    jobs = 2;
    queue_capacity = 64;
    cache_capacity = 128;
    max_connections = 32;
    retry_after_ms = 100;
    default_timeout_ms = None;
    allow_crash = false;
    log = ignore;
  }

exception Injected_crash

(* ------------------------------------------------------------------ *)
(* Connections.                                                        *)

(* One accepted socket.  [oc] is shared by the reader domain (inline
   responses) and the worker domains (engine responses), serialised by
   [oc_mutex].  [outstanding] counts requests handed to the queue whose
   response has not been written yet, so the reader can drain in-flight
   work before closing the socket on EOF. *)
type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  oc_mutex : Mutex.t;
  flight_mutex : Mutex.t;
  flight_done : Condition.t;
  mutable outstanding : int;
}

let make_conn fd =
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    oc_mutex = Mutex.create ();
    flight_mutex = Mutex.create ();
    flight_done = Condition.create ();
    outstanding = 0;
  }

(* Writes to a peer that vanished (EPIPE, reset) are dropped: the
   request is the peer's loss, the server must not care. *)
let write_line conn line =
  Mutex.protect conn.oc_mutex (fun () ->
      try
        output_string conn.oc line;
        output_char conn.oc '\n';
        flush conn.oc
      with Sys_error _ | Unix.Unix_error _ -> ())

let flight_incr conn =
  Mutex.protect conn.flight_mutex (fun () ->
      conn.outstanding <- conn.outstanding + 1)

let flight_decr conn =
  Mutex.protect conn.flight_mutex (fun () ->
      conn.outstanding <- conn.outstanding - 1;
      if conn.outstanding = 0 then Condition.broadcast conn.flight_done)

let flight_wait conn =
  Mutex.protect conn.flight_mutex (fun () ->
      while conn.outstanding > 0 do
        Condition.wait conn.flight_done conn.flight_mutex
      done)

(* ------------------------------------------------------------------ *)
(* Server state.                                                       *)

type counters = {
  served_ok : int Atomic.t;
  served_error : int Atomic.t;
  shed : int Atomic.t;
  bad_lines : int Atomic.t;
  crashes : int Atomic.t;
}

type job = { request : Protocol.request; conn : conn }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  queue : job Pool.Bounded_queue.t;
  cache : Lru.t;
  counters : counters;
  conns_mutex : Mutex.t;
  mutable conns : conn list;
  mutable conn_domains : unit Domain.t list;
  mutable workers : Pool.Workers.t option;
  mutable accept_domain : unit Domain.t option;
  stop_flag : bool Atomic.t;
  stop_mutex : Mutex.t;
  stop_cond : Condition.t;
}

let request_stop t =
  if not (Atomic.exchange t.stop_flag true) then
    Mutex.protect t.stop_mutex (fun () -> Condition.broadcast t.stop_cond)

let stopping t = Atomic.get t.stop_flag

(* ------------------------------------------------------------------ *)
(* Request handling (worker side).                                     *)

let make_budget t (b : Protocol.budget_spec) =
  let timeout_ms =
    match b.timeout_ms with
    | Some _ as req -> req
    | None -> t.config.default_timeout_ms
  in
  Engine_error.guard (fun () ->
      Budget.make ?timeout_ms ?max_steps:b.max_steps ?max_nodes:b.max_nodes
        ?fault:b.fault ())

(* Analysis for one request: unlimited budgets ride the process-wide
   [Report.analyze_cached] memo (this is the per-process layer the LRU
   lifts across requests); anything budgeted or fault-injected runs the
   resilient ladder afresh. *)
let analysis_for t entry (budget : Protocol.budget_spec) =
  if Protocol.is_unlimited budget && t.config.default_timeout_ms = None then
    Engine_error.guard (fun () -> Report.analyze_cached entry)
  else
    Result.bind (make_budget t budget) (fun b ->
        Report.analyze_checked ~budget:b entry)

(* A result is cacheable when it is the complete answer: no degradation
   note and no fault hook in play (fault-injected requests must exercise
   the real path, and a degraded result is budget-specific). *)
let cacheable (budget : Protocol.budget_spec) (a : Report.analysis) =
  budget.fault = None && a.degradation = None

let respond_ok t ~id ~op result_string =
  Atomic.incr t.counters.served_ok;
  Protocol.ok_response_raw ~id ~op result_string

let respond_error t ~id err =
  Atomic.incr t.counters.served_error;
  Protocol.error_response ~id err

(* The empirical rider of an eval: a sampled (or, at rate 1, exact
   streaming) cache sweep of the kernel at the evaluation point, under
   the same request budget (including its fault hook) as the analysis.
   The payload is a pure function of (kernel, m, n, s, rate, seed) -
   sampling is hash-based, not randomized - so responses stay
   byte-reproducible and cacheable. *)
let empirical_for t entry ~m ~n ~s (budget : Protocol.budget_spec)
    (e : Protocol.empirical_spec) =
  let ( let* ) = Result.bind in
  let* params = Report.concrete_params entry ~m ~n in
  let* b = make_budget t budget in
  let* sampled =
    Sweep.run_sampled_checked ~budget:b ~rate:e.rate ~seed:e.seed ~params
      entry.Report.program
  in
  let estimate (a : Sweep.estimate) =
    Json.Obj
      [
        ("est", Json.Float a.est);
        ("lo", Json.Float a.lo);
        ("hi", Json.Float a.hi);
      ]
  in
  let loads, read_hits, stores = Sweep.sampled_stats sampled ~size:s in
  Ok
    (Json.Obj
       [
         ("rate", Json.Float e.rate);
         ("seed", Json.Int e.seed);
         ("exact", Json.Bool (Sweep.sampled_exact sampled));
         ("total_accesses", Json.Int (Sweep.sampled_total_accesses sampled));
         ("kept_accesses", Json.Int (Sweep.sampled_kept_accesses sampled));
         ("degenerate", Json.Bool (Sweep.sampled_degenerate sampled));
         ("loads", estimate loads);
         ("read_hits", estimate read_hits);
         ("stores", estimate stores);
       ])

(* Engine ops (analyze / eval / crash).  Returns the full response line.
   Unexpected exceptions escape to the worker shell on purpose: the
   worker loop answers the poisoned request with a typed [internal]
   error and then lets the domain die, to be respawned. *)
let handle_engine t (req : Protocol.request) =
  let id = req.id in
  match req.op with
  | Protocol.Crash ->
      if t.config.allow_crash then raise Injected_crash
      else
        respond_error t ~id
          (Protocol.Engine
             (Engine_error.Unsupported
                "crash injection disabled (start the server with \
                 --allow-crash)"))
  | Protocol.Analyze { kernel; budget } -> (
      match Report.find_checked kernel with
      | Error e -> respond_error t ~id (Protocol.Engine e)
      | Ok entry -> (
          let key =
            Option.get (Protocol.spec_key req.op ~display:entry.display)
          in
          let spec = Protocol.spec_hash key in
          let lookup =
            if budget.fault = None then Lru.find t.cache key else None
          in
          match lookup with
          | Some result -> respond_ok t ~id ~op:"analyze" result
          | None -> (
              match analysis_for t entry budget with
              | Error e -> respond_error t ~id (Protocol.Engine e)
              | Ok a ->
                  let result =
                    Json.to_string (Protocol.analysis_result ~spec a)
                  in
                  if cacheable budget a then Lru.add t.cache key result;
                  respond_ok t ~id ~op:"analyze" result)))
  | Protocol.Source { src; budget } -> (
      (* Inline DSL source: parse, then run the graceful-degradation
         ladder.  Parse failures are Invalid_input with the diagnostic's
         line:col position; caching mirrors Analyze (content = the source
         text itself, complete results only). *)
      match Front.parse_string ~file:"<source>" src with
      | Error d ->
          respond_error t ~id (Protocol.Engine (Diag.to_engine_error d))
      | Ok source -> (
          let key = Option.get (Protocol.spec_key req.op ~display:"") in
          let spec = Protocol.spec_hash key in
          let lookup =
            if budget.fault = None then Lru.find t.cache key else None
          in
          match lookup with
          | Some result -> respond_ok t ~id ~op:"source" result
          | None -> (
              match make_budget t budget with
              | Error e -> respond_error t ~id (Protocol.Engine e)
              | Ok b -> (
                  let hourglasses =
                    match
                      Hourglass.detect_verified ~budget:b
                        ~params:source.Front.verify source.Front.program
                    with
                    | hgs -> List.length hgs
                    | exception Budget.Exhausted _ -> 0
                  in
                  match
                    Derive.analyze_ladder ~budget:b
                      ~verify_params:source.Front.verify source.Front.program
                  with
                  | Error e -> respond_error t ~id (Protocol.Engine e)
                  | Ok o ->
                      let result =
                        Json.to_string
                          (Protocol.source_result ~spec
                             ~kernel:
                               source.Front.program.Iolb_ir.Program.name
                             ~hourglasses o)
                      in
                      if budget.fault = None && o.Derive.degradation = None
                      then Lru.add t.cache key result;
                      respond_ok t ~id ~op:"source" result))))
  | Protocol.Eval { kernel; m; n; s; empirical; budget } -> (
      match Report.find_checked kernel with
      | Error e -> respond_error t ~id (Protocol.Engine e)
      | Ok entry -> (
          let key =
            Option.get (Protocol.spec_key req.op ~display:entry.display)
          in
          let spec = Protocol.spec_hash key in
          let lookup =
            if budget.fault = None then Lru.find t.cache key else None
          in
          match lookup with
          | Some result -> respond_ok t ~id ~op:"eval" result
          | None -> (
              match analysis_for t entry budget with
              | Error e -> respond_error t ~id (Protocol.Engine e)
              | Ok a -> (
                  let measured =
                    match empirical with
                    | None -> Ok None
                    | Some e ->
                        Result.map Option.some
                          (empirical_for t entry ~m ~n ~s budget e)
                  in
                  match measured with
                  | Error e -> respond_error t ~id (Protocol.Engine e)
                  | Ok measured ->
                      let result =
                        Json.to_string
                          (Protocol.eval_result ?empirical:measured ~spec a
                             ~m ~n ~s)
                      in
                      if cacheable budget a then Lru.add t.cache key result;
                      respond_ok t ~id ~op:"eval" result))))
  | Protocol.Ping | Protocol.List_kernels | Protocol.Stats | Protocol.Shutdown
    ->
      (* Inline ops never reach the queue. *)
      respond_error t ~id
        (Protocol.Engine (Engine_error.Internal "inline op queued"))

let worker_loop t _worker =
  let rec loop () =
    match Pool.Bounded_queue.pop t.queue with
    | None -> ()
    | Some job ->
        (match handle_engine t job.request with
        | line ->
            write_line job.conn line;
            flight_decr job.conn
        | exception e ->
            (* The poisoned request still gets a typed answer; then the
               domain dies and the Workers group respawns it.  One bad
               request never outlives its own response. *)
            Atomic.incr t.counters.crashes;
            Atomic.incr t.counters.served_error;
            write_line job.conn
              (Protocol.error_response ~id:job.request.id
                 (Protocol.Engine (Engine_error.of_exn e)));
            flight_decr job.conn;
            raise e);
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Inline ops (reader side).                                           *)

let list_result () =
  Json.Obj
    [
      ( "kernels",
        Json.List
          (List.map
             (fun (e : Report.entry) -> Json.String e.display)
             Report.registry) );
      ( "baselines",
        Json.List
          (List.map (fun (name, _, _) -> Json.String name) Report.baselines)
      );
    ]

let stats_result t =
  let cache = Lru.stats t.cache in
  let memo = Report.cache_stats () in
  let respawns =
    match t.workers with Some w -> Pool.Workers.respawns w | None -> 0
  in
  Json.Obj
    [
      ( "server",
        Json.Obj
          [
            ("jobs", Json.Int t.config.jobs);
            ("respawns", Json.Int respawns);
            ("queue_capacity", Json.Int t.config.queue_capacity);
            ("queue_length", Json.Int (Pool.Bounded_queue.length t.queue));
            ("connections", Json.Int (List.length t.conns));
          ] );
      ( "cache",
        Json.Obj
          [
            ("capacity", Json.Int cache.capacity);
            ("entries", Json.Int cache.entries);
            ("hits", Json.Int cache.hits);
            ("misses", Json.Int cache.misses);
            ("evictions", Json.Int cache.evictions);
          ] );
      ( "memo",
        Json.Obj
          [
            ("hits", Json.Int memo.hits);
            ("misses", Json.Int memo.misses);
            ("entries", Json.Int memo.entries);
          ] );
      ( "requests",
        Json.Obj
          [
            ("ok", Json.Int (Atomic.get t.counters.served_ok));
            ("errors", Json.Int (Atomic.get t.counters.served_error));
            ("shed", Json.Int (Atomic.get t.counters.shed));
            ("bad_lines", Json.Int (Atomic.get t.counters.bad_lines));
            ("crashes", Json.Int (Atomic.get t.counters.crashes));
          ] );
    ]

let handle_line t conn line =
  match Protocol.parse_request line with
  | Error (id, msg) ->
      Atomic.incr t.counters.bad_lines;
      Atomic.incr t.counters.served_error;
      write_line conn (Protocol.error_response ~id (Protocol.Bad_request msg))
  | Ok req -> (
      let id = req.id in
      match req.op with
      | Protocol.Ping ->
          write_line conn
            (respond_ok t ~id ~op:"ping"
               (Json.to_string (Json.Obj [ ("pong", Json.Bool true) ])))
      | Protocol.List_kernels ->
          write_line conn
            (respond_ok t ~id ~op:"list" (Json.to_string (list_result ())))
      | Protocol.Stats ->
          write_line conn
            (respond_ok t ~id ~op:"stats" (Json.to_string (stats_result t)))
      | Protocol.Shutdown ->
          write_line conn
            (respond_ok t ~id ~op:"shutdown"
               (Json.to_string (Json.Obj [ ("stopping", Json.Bool true) ])));
          request_stop t
      | Protocol.Analyze _ | Protocol.Source _ | Protocol.Eval _
      | Protocol.Crash ->
          (* Admission control: the queue either takes the request or the
             client is told to back off now - the queue cannot grow
             beyond its capacity and the reader never blocks. *)
          flight_incr conn;
          if not (Pool.Bounded_queue.try_push t.queue { request = req; conn })
          then begin
            Atomic.incr t.counters.shed;
            Atomic.incr t.counters.served_error;
            write_line conn
              (Protocol.error_response ~id
                 (Protocol.Overloaded
                    { retry_after_ms = t.config.retry_after_ms }));
            flight_decr conn
          end)

let conn_loop t conn =
  let rec loop () =
    match input_line conn.ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
        if String.trim line <> "" then handle_line t conn line;
        loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* Let in-flight responses drain, then release the socket.  [ic]
         and [oc] share the fd; closing one side closes it. *)
      flight_wait conn;
      Mutex.protect t.conns_mutex (fun () ->
          t.conns <- List.filter (fun c -> c != conn) t.conns);
      close_out_noerr conn.oc)
    loop

(* ------------------------------------------------------------------ *)
(* Accept loop.                                                        *)

let refuse_connection t fd =
  let oc = Unix.out_channel_of_descr fd in
  (try
     output_string oc
       (Protocol.error_response ~id:Json.Null
          (Protocol.Overloaded { retry_after_ms = t.config.retry_after_ms }));
     output_char oc '\n';
     flush oc
   with Sys_error _ | Unix.Unix_error _ -> ());
  close_out_noerr oc

let accept_loop t () =
  let rec loop () =
    if not (stopping t) then
      match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> ()
          | exception Unix.Unix_error _ -> loop ()
          | fd, _ ->
              let admitted =
                Mutex.protect t.conns_mutex (fun () ->
                    List.length t.conns < t.config.max_connections)
              in
              if not (admitted && not (stopping t)) then refuse_connection t fd
              else begin
                let conn = make_conn fd in
                Mutex.protect t.conns_mutex (fun () ->
                    t.conns <- conn :: t.conns);
                match Domain.spawn (fun () -> conn_loop t conn) with
                | d ->
                    Mutex.protect t.conns_mutex (fun () ->
                        t.conn_domains <- d :: t.conn_domains)
                | exception _ ->
                    (* Domain limit: shed this connection instead of
                       dying. *)
                    Mutex.protect t.conns_mutex (fun () ->
                        t.conns <- List.filter (fun c -> c != conn) t.conns);
                    refuse_connection t fd
              end;
              loop ())
      | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> ()
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                          *)

let bind_listener = function
  | Unix_sock path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Unix.bind fd (ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { h_addr_list = [||]; _ } ->
              invalid_arg (Printf.sprintf "cannot resolve host %S" host)
          | { h_addr_list; _ } -> h_addr_list.(0)
          | exception Not_found ->
              invalid_arg (Printf.sprintf "cannot resolve host %S" host))
      in
      let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
      Unix.setsockopt fd SO_REUSEADDR true;
      Unix.bind fd (ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

let start config =
  if config.jobs < 1 then invalid_arg "Server.start: jobs < 1";
  if config.max_connections < 1 then
    invalid_arg "Server.start: max_connections < 1";
  (* A peer closing mid-response must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = bind_listener config.address in
  let t =
    {
      config;
      listen_fd;
      queue = Pool.Bounded_queue.create ~capacity:config.queue_capacity;
      cache = Lru.create ~capacity:config.cache_capacity;
      counters =
        {
          served_ok = Atomic.make 0;
          served_error = Atomic.make 0;
          shed = Atomic.make 0;
          bad_lines = Atomic.make 0;
          crashes = Atomic.make 0;
        };
      conns_mutex = Mutex.create ();
      conns = [];
      conn_domains = [];
      workers = None;
      accept_domain = None;
      stop_flag = Atomic.make false;
      stop_mutex = Mutex.create ();
      stop_cond = Condition.create ();
    }
  in
  t.workers <-
    Some
      (Pool.Workers.spawn ~jobs:config.jobs
         ~on_crash:(fun ~worker e ->
           config.log
             (Printf.sprintf "worker %d crashed (%s); respawning" worker
                (Printexc.to_string e)))
         (worker_loop t));
  t.accept_domain <- Some (Domain.spawn (accept_loop t));
  config.log (Format.asprintf "listening on %a" pp_address config.address);
  t

let stop = request_stop

(* [join t] blocks until a stop is requested (shutdown op, {!stop}, or a
   signal handler calling {!stop}), then tears the server down in
   dependency order: stop accepting, stop taking new work, drain the
   queued work through the workers, unblock the readers, release the
   socket. *)
let join t =
  Mutex.protect t.stop_mutex (fun () ->
      while not (Atomic.get t.stop_flag) do
        Condition.wait t.stop_cond t.stop_mutex
      done);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Option.iter Domain.join t.accept_domain;
  (* No new jobs; already-queued jobs still drain through [pop]. *)
  Pool.Bounded_queue.close t.queue;
  (* Wake readers blocked in [input_line]; SHUT_RD keeps the write side
     open so in-flight responses still reach the peer. *)
  Mutex.protect t.conns_mutex (fun () ->
      List.iter
        (fun conn ->
          try Unix.shutdown conn.fd SHUTDOWN_RECEIVE
          with Unix.Unix_error _ -> ())
        t.conns);
  Option.iter Pool.Workers.join t.workers;
  let conn_domains =
    Mutex.protect t.conns_mutex (fun () -> t.conn_domains)
  in
  List.iter (fun d -> try Domain.join d with _ -> ()) conn_domains;
  (match t.config.address with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  t.config.log "server stopped"

let run config =
  let t = start config in
  join t

let respawns t =
  match t.workers with Some w -> Pool.Workers.respawns w | None -> 0
