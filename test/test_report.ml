(* Report layer: registry integrity, best-bound selection, split search,
   and the empirical content of Lemma 3 (spanning convex sets contain whole
   reduction lines and have width-sized insets). *)

module Report = Iolb.Report
module D = Iolb.Derive
module H = Iolb.Hourglass
module PF = Iolb.Paper_formulas
module Cdag = Iolb_cdag.Cdag
module Program = Iolb_ir.Program

let test_registry () =
  Alcotest.(check int) "five kernels" 5 (List.length Report.registry);
  (* find accepts kernel names, display names, program names. *)
  List.iter
    (fun key -> ignore (Report.find key))
    [ "mgs"; "MGS"; "qr_hh_a2v"; "QR HH V2Q"; "gebd2"; "GEHD2" ];
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Report.find "nope");
       false
     with Not_found -> true)

let test_every_kernel_has_both_bounds () =
  List.iter
    (fun entry ->
      let a = Report.analyze entry in
      Alcotest.(check bool)
        (entry.Report.display ^ " has a verified hourglass")
        true
        (a.hourglasses <> []);
      let has tech = List.exists (fun (b : D.t) -> b.technique = tech) a.bounds in
      Alcotest.(check bool) "hourglass bound" true (has D.Hourglass);
      Alcotest.(check bool) "small-cache bound" true (has D.Hourglass_small_s);
      Alcotest.(check bool) "classical bound" true (has D.Classical))
    Report.registry

let test_eval_best_is_max () =
  let a = Report.analyze (Report.find "mgs") in
  let m = 64 and n = 32 and s = 16 in
  (* At S <= M the small-cache bound dominates and must be selected. *)
  let best = Option.get (Report.eval_best a ~technique:`Hourglass ~m ~n ~s) in
  let small = PF.eval_at (Option.get (PF.theorem_small PF.Mgs)) ~m ~n ~s in
  Alcotest.(check (float 1e-6)) "small-cache bound selected" small best;
  (* At S > M it must not be selected (it would be negative/invalid). *)
  let s = 256 in
  let best = Option.get (Report.eval_best a ~technique:`Hourglass ~m ~n ~s) in
  Alcotest.(check bool) "positive at large S" true (best > 0.)

let test_split_search () =
  let bounds =
    D.analyze ~verify_params:[ ("N", 9); ("M", 3) ]
      Iolb_kernels.Gehd2.split_spec
  in
  let hg = List.filter (fun (b : D.t) -> b.technique = D.Hourglass) bounds in
  Alcotest.(check bool) "has hourglass bounds" true (hg <> []);
  let best_at n s =
    List.filter_map
      (fun b ->
        D.optimize_split b ~param:"M"
          ~candidates:(List.init (n - 3) (fun i -> i + 1))
          ~params:[ ("N", n) ] ~s)
      hg
    |> List.fold_left (fun acc (m, v) -> match acc with
         | Some (_, v') when v' >= v -> acc
         | _ -> Some (m, v)) None
  in
  (* Small cache: the best split sits near N - S - 2 (large first half). *)
  let m_small, _ = Option.get (best_at 64 4) in
  Alcotest.(check bool)
    (Printf.sprintf "small-S split %d is deep" m_small)
    true
    (m_small > 64 / 2);
  (* Large cache: near N/2 - 1. *)
  let m_large, _ = Option.get (best_at 64 256) in
  Alcotest.(check bool)
    (Printf.sprintf "large-S split %d is near N/2" m_large)
    true
    (m_large >= 20 && m_large <= 40)

(* Lemma 3, empirically: a convex set containing two update instances at
   the same neutral coordinates and temporal distance >= 2 contains a whole
   reduction line, and its inset is at least the hourglass width. *)
let test_lemma3_inset_width () =
  List.iter
    (fun (name, expected_width) ->
      let entry = Report.find name in
      let params = entry.Report.verify_params in
      let prog = entry.Report.program in
      let cdag = Cdag.of_program ~params prog in
      let h =
        List.find
          (fun (h : H.t) -> h.reduction = [ "i" ])
          (H.detect_verified ~params prog)
      in
      let info = Program.find_stmt prog h.update_stmt in
      let dim_index d =
        Option.get (List.find_index (String.equal d) info.Program.dims)
      in
      let t_idx = List.map dim_index h.temporal in
      let n_idx = List.map dim_index h.neutral in
      let nodes = Cdag.nodes_of_stmt cdag h.update_stmt in
      let vec_of id =
        match Cdag.kind cdag id with
        | Cdag.Compute (_, v) -> v
        | Cdag.Input _ -> assert false
      in
      let key idxs v = List.map (fun i -> v.(i)) idxs in
      let width =
        Iolb_symbolic.Polynomial.eval_int params (H.width_poly h)
        |> Iolb_util.Rat.to_int
      in
      Alcotest.(check int) (name ^ " width") expected_width width;
      (* Find a pair spanning temporal distance >= 2 at fixed neutral. *)
      let found = ref false in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if not !found then begin
                let va = vec_of a and vb = vec_of b in
                let ta = key t_idx va and tb = key t_idx vb in
                if
                  key n_idx va = key n_idx vb
                  && List.for_all2 (fun x y -> y - x >= 2) ta tb
                  && Cdag.is_reachable cdag a b
                then begin
                  found := true;
                  let closure = Cdag.convex_closure cdag [ a; b ] in
                  let inset = Cdag.inset cdag closure in
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: inset %d >= width %d" name inset width)
                    true (inset >= width)
                end
              end)
            nodes)
        nodes;
      Alcotest.(check bool) (name ^ ": spanning pair exists") true !found)
    [ ("mgs", 6); ("qr_hh_a2v", 3); ("gebd2", 4) ]

(* analyze_cached must hand back the same analysis object on every call
   (physical equality - downstream consumers key tables on it), and a
   Pool fan-out at any worker width must observe the same cached objects
   and render identical reports. *)
let test_analyze_cached_physical_equality () =
  let entry = Report.find "mgs" in
  let a = Report.analyze_cached entry in
  let b = Report.analyze_cached entry in
  Alcotest.(check bool) "same object on repeated calls" true (a == b)

let test_analyze_all_pool_widths () =
  (* Warm the cache sequentially so every later width must hit it. *)
  let seq = Report.analyze_all ~jobs:1 () in
  List.iter
    (fun jobs ->
      let par = Report.analyze_all ~jobs () in
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d: registry order preserved" jobs)
        (List.length seq) (List.length par);
      List.iter2
        (fun (x : Report.analysis) (y : Report.analysis) ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: cached object shared across domains" jobs)
            true (x == y);
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d: identical rendering" jobs)
            (Format.asprintf "%a" Report.pp_analysis x)
            (Format.asprintf "%a" Report.pp_analysis y))
        seq par)
    [ 1; 2; 4 ]

let suite =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "analyze_cached is physically memoized" `Quick
      test_analyze_cached_physical_equality;
    Alcotest.test_case "analyze_all identical across pool widths" `Quick
      test_analyze_all_pool_widths;
    Alcotest.test_case "all kernels get all bound kinds" `Quick
      test_every_kernel_has_both_bounds;
    Alcotest.test_case "eval_best picks the applicable max" `Quick
      test_eval_best_is_max;
    Alcotest.test_case "split search recovers both regimes" `Quick
      test_split_search;
    Alcotest.test_case "Lemma 3 empirically (inset >= width)" `Quick
      test_lemma3_inset_width;
  ]
