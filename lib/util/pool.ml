let default_jobs () =
  match Sys.getenv_opt "IOLB_JOBS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf "IOLB_JOBS must be a positive integer, got %S" s))

type 'b slot = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.map: jobs < 1";
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs = 1 -> List.map f xs
  | _ ->
      let tasks = Array.of_list xs in
      let n = Array.length tasks in
      let results = Array.make n Pending in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (results.(i) <-
               (match f tasks.(i) with
               | v -> Done v
               | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
            loop ()
          end
        in
        loop ()
      in
      (* Spawn helpers one at a time so a failing [Domain.spawn] (domain
         limit, resources) cannot leave already-spawned domains behind
         unjoined: whatever was spawned is on the list and joined below,
         and every task still completes because this domain works through
         the shared index regardless of how many helpers came up.

         Helpers are clamped to the hardware parallelism: [jobs] governs
         the work decomposition (callers derive shard counts from it, and
         results are partition-independent by contract), but spawning
         more domains than cores only multiplies minor-GC stop-the-world
         barriers - on a single-core host, [--jobs 4] used to make the
         sharded sweep slower than the sequential one for exactly this
         reason. *)
      let hw = Domain.recommended_domain_count () in
      let domains = ref [] in
      (try
         for _ = 2 to min (min jobs n) hw do
           domains := Domain.spawn worker :: !domains
         done
       with _ -> ());
      worker ();
      let join_failure = ref None in
      List.iter
        (fun d ->
          try Domain.join d
          with e ->
            if !join_failure = None then
              join_failure := Some (e, Printexc.get_raw_backtrace ()))
        !domains;
      (* Every domain is joined before any failure propagates, so a raising
         [f] can neither leak a domain nor deadlock the joiner. *)
      (match !join_failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.iter
        (function
          | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
          | Pending | Done _ -> ())
        results;
      Array.to_list
        (Array.map
           (function Done v -> v | Pending | Failed _ -> assert false)
           results)

let iter ?jobs f xs = ignore (map ?jobs f xs)

let split ~shards n =
  if shards < 1 then invalid_arg "Pool.split: shards < 1";
  if n < 0 then invalid_arg "Pool.split: n < 0";
  let shards = min shards (max n 1) in
  let base = n / shards and extra = n mod shards in
  (* First [extra] shards get one more element; bounds are a pure function
     of (shards, n), independent of who executes which shard. *)
  let lo = ref 0 in
  List.init shards (fun i ->
      let len = base + if i < extra then 1 else 0 in
      let r = (!lo, !lo + len) in
      lo := !lo + len;
      r)

(* ------------------------------------------------------------------ *)
(* Bounded queue.                                                      *)

module Bounded_queue = struct
  type 'a t = {
    items : 'a Queue.t;
    capacity : int;
    mutex : Mutex.t;
    not_empty : Condition.t;
    mutable closed : bool;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Pool.Bounded_queue.create: capacity < 1";
    {
      items = Queue.create ();
      capacity;
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      closed = false;
    }

  let try_push t x =
    Mutex.protect t.mutex (fun () ->
        if t.closed || Queue.length t.items >= t.capacity then false
        else begin
          Queue.add x t.items;
          Condition.signal t.not_empty;
          true
        end)

  let pop t =
    Mutex.protect t.mutex (fun () ->
        let rec wait () =
          if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
          else if t.closed then None
          else begin
            Condition.wait t.not_empty t.mutex;
            wait ()
          end
        in
        wait ())

  let close t =
    Mutex.protect t.mutex (fun () ->
        t.closed <- true;
        Condition.broadcast t.not_empty)

  let length t = Mutex.protect t.mutex (fun () -> Queue.length t.items)
  let capacity t = t.capacity
  let is_closed t = Mutex.protect t.mutex (fun () -> t.closed)
end

(* ------------------------------------------------------------------ *)
(* Long-running worker group with crash respawn.                       *)

module Workers = struct
  type t = {
    mutex : Mutex.t;
    mutable domains : unit Domain.t list;  (** every domain ever spawned *)
    mutable stopping : bool;
    respawn_count : int Atomic.t;
    on_crash : worker:int -> exn -> unit;
    body : int -> unit;
  }

  (* The shell around one worker slot: run the body; if it returns the
     worker is done (its input source is closed).  If it raises, report
     the crash and spawn a replacement into the group - unless the group
     is already stopping.  The dying domain itself exits normally after
     arranging its succession, so [join] never sees an exception from a
     crash that was already reported through [on_crash]. *)
  let rec shell t i () =
    match t.body i with
    | () -> ()
    | exception e ->
        (try t.on_crash ~worker:i e with _ -> ());
        Mutex.protect t.mutex (fun () ->
            if not t.stopping then begin
              Atomic.incr t.respawn_count;
              t.domains <- Domain.spawn (shell t i) :: t.domains
            end)

  let spawn ~jobs ?(on_crash = fun ~worker:_ _ -> ()) body =
    if jobs < 1 then invalid_arg "Pool.Workers.spawn: jobs < 1";
    let t =
      {
        mutex = Mutex.create ();
        domains = [];
        stopping = false;
        respawn_count = Atomic.make 0;
        on_crash;
        body;
      }
    in
    Mutex.protect t.mutex (fun () ->
        t.domains <- List.init jobs (fun i -> Domain.spawn (shell t i)));
    t

  let respawns t = Atomic.get t.respawn_count

  let join t =
    Mutex.protect t.mutex (fun () -> t.stopping <- true);
    (* Respawns racing ahead of the [stopping] flag landed on the list
       under the same mutex, so draining until the list stays empty joins
       every domain the group ever created. *)
    let rec drain () =
      match
        Mutex.protect t.mutex (fun () ->
            let ds = t.domains in
            t.domains <- [];
            ds)
      with
      | [] -> ()
      | ds ->
          List.iter (fun d -> try Domain.join d with _ -> ()) ds;
          drain ()
    in
    drain ()
end
