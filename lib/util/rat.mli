(** Exact rational arithmetic over native 63-bit integers.

    All values are kept in canonical form: the denominator is positive and
    [gcd (abs num) den = 1].  Arithmetic is overflow-checked; an operation
    whose exact result does not fit in a native [int] raises {!Overflow}.
    The coefficients arising in the I/O lower-bound derivations (Brascamp-Lieb
    exponents, polynomial coefficients of the bound formulas) are tiny, so
    native precision is ample; the check guards against silent corruption. *)

type t

exception Overflow

exception Division_by_zero

val zero : t
val one : t
val minus_one : t
val two : t
val half : t

(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero if [den = 0]. *)
val make : int -> int -> t

(** [of_int n] is the rational [n/1]. *)
val of_int : int -> t

val num : t -> int
val den : t -> int

(** [is_integer q] holds iff the denominator of [q] is [1]. *)
val is_integer : t -> bool

(** [to_int q] is the integer value of [q].
    @raise Invalid_argument if [q] is not an integer. *)
val to_int : t -> int

val to_float : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero if the divisor is zero. *)
val div : t -> t -> t

val neg : t -> t
val abs : t -> t

(** [inv q] is [1/q]. @raise Division_by_zero if [q] is zero. *)
val inv : t -> t

(** [pow q n] is [q] raised to the (possibly negative) power [n]. *)
val pow : t -> int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** [floor q] ([ceil q]) is the greatest (least) integer below (above) [q]. *)
val floor : t -> int

val ceil : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Overflow-checked native [int] arithmetic, shared with callers (the
    simplex tableau) that unbox rationals into parallel [num]/[den]
    arrays but must keep exactly the same overflow behaviour.
    @raise Overflow when the exact result does not fit in an [int]. *)

val add_exn : int -> int -> int

val mul_exn : int -> int -> int

(** [gcd_int a b] is the non-negative gcd of [abs a] and [abs b]. *)
val gcd_int : int -> int -> int

(** Infix aliases, intended for local [open Rat.Infix]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
