module Rat = Iolb_util.Rat
module Budget = Iolb_util.Budget
module T = Simplex.Tableau

type pcost = { const : Rat.t; slope : Rat.t }

let pcost ?(slope = Rat.zero) const = { const; slope }
let pc ?(slope = 0) const = { const = Rat.of_int const; slope = Rat.of_int slope }

type region = {
  lo : Rat.t;
  hi : Rat.t option;
  const : Rat.t;
  slope : Rat.t;
  solution : Rat.t array;
  basis : int array;
  pivots : int;
}

type outcome =
  | Regions of region list
  | Unbounded_at of Rat.t
  | Infeasible

let value_at r theta = Rat.add r.const (Rat.mul r.slope theta)

(* The sweep keeps two reduced-cost rows: the tableau's own objective row
   holds the constant part c of the parametric cost c + theta * s, and a
   caller-side auxiliary row (sn/sd, with value pair sv) holds the slope
   part s, updated after every pivot with {!Simplex.Tableau.eliminate}.
   The reduced cost of column j at parameter theta is then the affine form
   d_j(theta) = obj_j + theta * slope_j, exactly. *)
type sweep = {
  t : T.t;
  sn : int array;
  sd : int array;
  mutable svn : int;
  mutable svd : int;
  budget : Budget.t;
  mutable pivots : int;
}

let sweep_pivot w ~row ~col =
  Budget.checkpoint w.budget Budget.Derivation;
  T.pivot w.t ~row ~col;
  let svn, svd = T.eliminate w.t ~row ~col w.sn w.sd w.svn w.svd in
  w.svn <- svn;
  w.svd <- svd;
  w.pivots <- w.pivots + 1

(* Reduced cost of column j at theta, as an exact rational. *)
let reduced_cost w ~theta j =
  let t = w.t in
  let c = Rat.make t.T.objn.(j) t.T.objd.(j) in
  let s = Rat.make w.sn.(j) w.sd.(j) in
  Rat.add c (Rat.mul theta s)

(* Optimise for theta^+, i.e. lexicographically for the perturbed
   objective c + (theta + epsilon) * s: a column enters iff its reduced
   cost is negative at theta, or zero at theta with a negative slope
   (about to turn negative just above theta).  Entering column = lowest
   index satisfying this (Bland), leaving row = the tableau's
   lowest-basic-index min-ratio rule; the pair is Bland's rule for the
   perturbed objective over the ordered field Q(epsilon), so no cycling. *)
let optimise_at w ~theta =
  let t = w.t in
  let n = t.T.ncols in
  let allowed j = j < t.T.art_start in
  let enters j =
    allowed j
    &&
    let c = Rat.compare (reduced_cost w ~theta j) Rat.zero in
    c < 0 || (c = 0 && w.sn.(j) < 0)
  in
  let rec loop () =
    let entering = ref (-1) in
    (let j = ref 0 in
     while !entering < 0 && !j < n do
       if enters !j then entering := !j;
       incr j
     done);
    if !entering < 0 then Ok ()
    else begin
      let col = !entering in
      match T.choose_leaving t ~col with
      | None -> Error `Unbounded
      | Some row ->
          sweep_pivot w ~row ~col;
          loop ()
    end
  in
  loop ()

(* First parameter value above [theta] at which the current basis stops
   being optimal: the smallest root of a reduced-cost form d_j that is
   positive at theta but decreasing (slope_j < 0).  [None] = optimal for
   every theta' >= theta. *)
let next_breakpoint w ~theta =
  let t = w.t in
  let best = ref None in
  for j = 0 to t.T.ncols - 1 do
    if j < t.T.art_start && w.sn.(j) < 0 then begin
      let c = Rat.make t.T.objn.(j) t.T.objd.(j) in
      let s = Rat.make w.sn.(j) w.sd.(j) in
      let root = Rat.neg (Rat.div c s) in
      if Rat.compare root theta > 0 then
        match !best with
        | Some b when Rat.compare b root <= 0 -> ()
        | _ -> best := Some root
    end
  done;
  !best

let minimize ?(budget = Budget.unlimited) ~(cost : pcost array) ~lo ?hi
    constraints =
  (match hi with
  | Some h when Rat.compare lo h > 0 ->
      invalid_arg "Psimplex.minimize: empty parameter interval"
  | _ -> ());
  let nvars = Array.length cost in
  let t = T.setup ~nvars constraints in
  if not (T.phase1_feasible t) then Infeasible
  else begin
    (* The vertex moves with theta but the feasible set does not (the rhs
       is parameter-free), so one phase 1 serves the whole sweep. *)
    T.install_cost t ~cost:(Array.map (fun (c : pcost) -> c.const) cost);
    let sn, sd, (svn, svd) =
      T.reduce_cost_row t ~cost:(Array.map (fun (c : pcost) -> c.slope) cost)
    in
    let w = { t; sn; sd; svn; svd; budget; pivots = 0 } in
    let neg_pair n d = Rat.neg (Rat.make n d) in
    let rec sweep theta acc =
      match optimise_at w ~theta with
      | Error `Unbounded -> Unbounded_at theta
      | Ok () ->
          let const = neg_pair t.T.ovn t.T.ovd in
          let slope = neg_pair w.svn w.svd in
          let solution = T.solution t in
          let basis = Array.copy t.T.basis in
          let pivots = w.pivots in
          w.pivots <- 0;
          let break = next_breakpoint w ~theta in
          let closes b =
            match hi with None -> false | Some h -> Rat.compare b h >= 0
          in
          let finish hi =
            Regions
              (List.rev
                 ({ lo = theta; hi; const; slope; solution; basis; pivots }
                 :: acc))
          in
          (match break with
          | None -> finish hi
          | Some b when closes b -> finish hi
          | Some b ->
              sweep b
                ({ lo = theta; hi = Some b; const; slope; solution; basis;
                   pivots }
                :: acc))
    in
    sweep lo []
  end

let maximize ?budget ~cost ~lo ?hi constraints =
  let flipped =
    Array.map
      (fun (c : pcost) ->
        ({ const = Rat.neg c.const; slope = Rat.neg c.slope } : pcost))
      cost
  in
  match minimize ?budget ~cost:flipped ~lo ?hi constraints with
  | Regions rs ->
      Regions
        (List.map
           (fun r -> { r with const = Rat.neg r.const; slope = Rat.neg r.slope })
           rs)
  | (Unbounded_at _ | Infeasible) as o -> o

let pp_value fmt (const, slope) =
  if Rat.is_zero slope then Rat.pp fmt const
  else if Rat.is_zero const then Format.fprintf fmt "%a*t" Rat.pp slope
  else Format.fprintf fmt "%a + %a*t" Rat.pp const Rat.pp slope

let pp_region fmt r =
  let pp_hi fmt = function
    | None -> Format.pp_print_string fmt "+inf"
    | Some h -> Rat.pp fmt h
  in
  Format.fprintf fmt "t in [%a, %a]: %a" Rat.pp r.lo pp_hi r.hi pp_value
    (r.const, r.slope)

let pp_outcome fmt = function
  | Infeasible -> Format.pp_print_string fmt "infeasible"
  | Unbounded_at theta ->
      Format.fprintf fmt "unbounded at t = %a" Rat.pp theta
  | Regions rs ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
        pp_region fmt rs
