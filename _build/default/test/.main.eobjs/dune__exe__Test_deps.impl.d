test/test_deps.ml: Alcotest Array Hashtbl Iolb_cdag Iolb_ir Iolb_kernels List Printf
