(** Deterministic seeded generation of random program specs.

    The generator is built on a private splitmix64 stream, not on
    [Stdlib.Random], so a seed identifies the same spec on every OCaml
    version and every run - the property the replay workflow
    ([iolb check --seed N --count 1]) and the CI pins depend on. *)

(** A deterministic pseudo-random stream. *)
type rng

val rng : seed:int -> rng

(** [int_range rng lo hi] draws uniformly from [lo..hi] inclusive. *)
val int_range : rng -> int -> int -> int

val bool : rng -> bool

(** [spec ~seed] is the spec identified by [seed]: roughly one third of
    seeds yield hourglass-bearing specs, the rest plain nests.  Always
    normalized. *)
val spec : seed:int -> Spec.t
