module Affine = Iolb_poly.Affine
module Access = Iolb_ir.Access
module Program = Iolb_ir.Program
module P = Iolb_symbolic.Polynomial
module Cdag = Iolb_cdag.Cdag

type t = {
  update_stmt : string;
  reduction_stmt : string;
  temporal : string list;
  reduction : string list;
  neutral : string list;
  width : Affine.t list;
}

let width_poly h =
  List.fold_left
    (fun acc e -> P.mul acc (Affine.to_polynomial e))
    P.one h.width

(* A statement is a reduction when it reads its own written cell and its
   other reads use a dimension absent from the write access - the dimension
   being reduced over. *)
let is_reduction (info : Program.stmt_info) =
  match info.def.writes with
  | [ w ] ->
      let reads_self = List.exists (Access.equal w) info.def.reads in
      let wdims =
        Option.value ~default:[] (Access.selected_dims ~dims:info.dims w)
      in
      let extra_read_dim =
        List.exists
          (fun r ->
            List.exists
              (fun d -> not (List.mem d wdims))
              (List.filter (fun d -> List.mem d info.dims) (Access.dims_used r)))
          info.def.reads
      in
      reads_self && extra_read_dim
  | _ -> false

let selected (info : Program.stmt_info) access =
  Access.selected_dims ~dims:info.dims access

let detect p =
  let stmts = Program.statements p in
  let reductions =
    List.filter is_reduction stmts
    |> List.map (fun (i : Program.stmt_info) -> i)
  in
  let writes_array name (i : Program.stmt_info) =
    List.exists (fun (a : Access.t) -> a.array = name) i.def.writes
  in
  let reads_array name (i : Program.stmt_info) =
    List.exists (fun (a : Access.t) -> a.array = name) i.def.reads
  in
  let candidates =
    List.concat_map
      (fun (u : Program.stmt_info) ->
        match u.def.writes with
        | [ wu ] -> (
            match selected u wu with
            | None | Some [] -> []
            | Some wdims ->
                (* Each read of U whose array is produced by a reduction
                   statement is a candidate broadcast value. *)
                List.filter_map
                  (fun (b : Access.t) ->
                    if Access.equal b wu then None
                    else
                      match selected u b with
                      | None -> None
                      | Some bdims -> (
                          let reduction_dims =
                            List.filter (fun d -> not (List.mem d bdims)) wdims
                          in
                          let neutral =
                            List.filter (fun d -> List.mem d bdims) wdims
                          in
                          let temporal =
                            List.filter (fun d -> not (List.mem d wdims)) u.dims
                          in
                          if reduction_dims = [] || temporal = [] then None
                          else
                            (* Find the reduction statement producing b and
                               closing the cycle by reading U's array. *)
                            match
                              List.find_opt
                                (fun r ->
                                  r.Program.def.name <> u.def.name
                                  && writes_array b.array r
                                  && reads_array wu.array r)
                                reductions
                            with
                            | None -> None
                            | Some r ->
                                let width =
                                  List.map (Program.extent_min u) reduction_dims
                                in
                                (* Criterion 3: the width must be parametric. *)
                                if
                                  List.for_all
                                    (fun e -> Affine.is_constant e <> None)
                                    width
                                then None
                                else
                                  Some
                                    {
                                      update_stmt = u.def.name;
                                      reduction_stmt = r.def.name;
                                      temporal;
                                      reduction = reduction_dims;
                                      neutral;
                                      width;
                                    }))
                  u.def.reads)
        | _ -> [])
      stmts
  in
  (* Deduplicate by update statement and classification. *)
  List.fold_left
    (fun acc h ->
      if
        List.exists
          (fun h' ->
            h'.update_stmt = h.update_stmt
            && h'.temporal = h.temporal
            && h'.reduction = h.reduction)
          acc
      then acc
      else h :: acc)
    [] candidates
  |> List.rev

let verify ?(budget = Iolb_util.Budget.unlimited) ~params p h =
  let cdag = Cdag.of_program ~budget ~params p in
  let info = Program.find_stmt p h.update_stmt in
  let dim_index d =
    match List.find_index (String.equal d) info.dims with
    | Some i -> i
    | None -> invalid_arg "Hourglass.verify: dimension not found"
  in
  let t_idx = List.map dim_index h.temporal in
  let n_idx = List.map dim_index h.neutral in
  let nodes = Cdag.nodes_of_stmt cdag h.update_stmt in
  let vec_of id =
    match Cdag.kind cdag id with
    | Cdag.Compute (_, vec) -> vec
    | Cdag.Input _ -> assert false
  in
  let key idxs vec = List.map (fun i -> vec.(i)) idxs in
  (* Group instances by (temporal, neutral) coordinates. *)
  let groups = Hashtbl.create 64 in
  List.iter
    (fun id ->
      let vec = vec_of id in
      let k = (key t_idx vec, key n_idx vec) in
      Hashtbl.replace groups k (id :: (try Hashtbl.find groups k with Not_found -> [])))
    nodes;
  (* For each group, find the group with the lexicographically next temporal
     coordinate and the same neutral coordinate, and check reachability for
     a sample of (source, target) instance pairs. *)
  let sample l = match l with [] -> [] | [ x ] -> [ x ] | x :: tl -> [ x; List.nth tl (List.length tl - 1) ] in
  let temporal_keys =
    Hashtbl.fold (fun (t, _) _ acc -> if List.mem t acc then acc else t :: acc) groups []
    |> List.sort compare
  in
  let next_temporal t =
    let rec go = function
      | a :: b :: _ when a = t -> Some b
      | _ :: tl -> go tl
      | [] -> None
    in
    go temporal_keys
  in
  (* The temporal loop may run forward or backward (V2Q iterates k
     downwards), so accept a consistent dependence direction either way.
     Reachability queries share one oracle, so the visited marks and DFS
     stack are allocated once for all sampled pairs. *)
  let reach = Cdag.reachability cdag in
  let forward_ok = ref true and backward_ok = ref true and checked = ref 0 in
  Hashtbl.iter
    (fun (t, n) ids ->
      match next_temporal t with
      | None -> ()
      | Some t' -> (
          match Hashtbl.find_opt groups (t', n) with
          | None -> ()
          | Some ids' ->
              List.iter
                (fun src ->
                  List.iter
                    (fun dst ->
                      Iolb_util.Budget.checkpoint budget
                        Iolb_util.Budget.Derivation;
                      incr checked;
                      if not (Cdag.reaches reach src dst) then
                        forward_ok := false;
                      if not (Cdag.reaches reach dst src) then
                        backward_ok := false)
                    (sample ids'))
                (sample ids)))
    groups;
  (!forward_ok || !backward_ok) && !checked > 0

let detect_verified ?budget ~params p =
  List.filter (verify ?budget ~params p) (detect p)

let pp fmt h =
  Format.fprintf fmt
    "hourglass on %s (reduction via %s): temporal=[%s] reduction=[%s] \
     neutral=[%s] width=%s"
    h.update_stmt h.reduction_stmt
    (String.concat "," h.temporal)
    (String.concat "," h.reduction)
    (String.concat "," h.neutral)
    (String.concat " * " (List.map Affine.to_string h.width))
