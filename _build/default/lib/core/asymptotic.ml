module R = Iolb_symbolic.Ratfun

type direction = int -> (string * int) list

let square_small_cache t = [ ("M", 4 * t); ("N", t); ("S", 16) ]
let square_linear_cache t = [ ("M", 4 * t); ("N", t); ("S", t) ]
let square_large_cache t = [ ("M", 4 * t); ("N", t); ("S", t * t / 4) ]

let eval_at f params =
  let env x =
    match List.assoc_opt x params with
    | Some v -> float_of_int v
    | None ->
        if x = "sqrtS" then
          match List.assoc_opt "S" params with
          | Some s -> sqrt (float_of_int s)
          | None -> raise Not_found
        else raise Not_found
  in
  R.eval_float_env env f

let ratio_limit ?(t0 = 64) ?(steps = 8) ?(tol = 0.05) f g dir =
  let ratios =
    List.init steps (fun k ->
        let t = t0 * (1 lsl k) in
        let params = dir t in
        let fv = eval_at f params and gv = eval_at g params in
        if Float.is_finite fv && Float.is_finite gv && gv <> 0. then
          Some (fv /. gv)
        else None)
  in
  match List.rev ratios with
  | Some last :: Some prev :: Some prev2 :: _
    when Float.is_finite last && last > 0.
         && Float.abs (last -. prev) <= tol *. Float.abs last
         && Float.abs (prev -. prev2) <= 2. *. tol *. Float.abs last ->
      Some last
  | _ -> None

let theta_equivalent ?tol f g dir = ratio_limit ?tol f g dir <> None
