(** Brascamp-Lieb exponent optimisation (Theorem 2 of the paper).

    For coordinate projections, the Brascamp-Lieb rank condition only needs
    to be checked on coordinate subgroups (Christ, Demmel, Knight, Scanlon,
    Yelick 2013): a family of exponents [s_j] in [0,1] is admissible iff for
    every subset [H] of the dimensions, [|H| <= sum_j s_j * |dims_j /\ H|].
    Under admissible exponents, [|E| <= prod_j |phi_j E|^(s_j)].

    Each projection carries a symbolic size bound of the form
    [K^alpha * W^beta * 2^gamma], where [K] is the K-bounded-set budget,
    [W] the hourglass width, and the [2] factor comes from the flatness
    bound of Section 4.3.  The optimiser picks admissible exponents
    minimising the overall product.  Since [sqrt K <= W <= K] in the regime
    where the hourglass matters (Section 5.1), writing [W = K^theta] the
    K-side exponent is [rho_K + theta * rho_W] with [theta] in [[1/2, 1]];
    by linearity it suffices to minimise lexicographically at the endpoints
    [theta = 1/2], then [theta = 1], then the constant factor [rho_2]. *)

type bounded_proj = {
  proj_dims : string list;  (** dimensions projected on *)
  alpha : Iolb_util.Rat.t;  (** K-exponent of this projection's size bound *)
  beta : Iolb_util.Rat.t;  (** W-exponent of this projection's size bound *)
  gamma : Iolb_util.Rat.t;  (** 2-exponent (flatness factors) *)
  label : string;
}

type solution = {
  k_exponent : Iolb_util.Rat.t;  (** [rho_K = sum s_j alpha_j] *)
  w_exponent : Iolb_util.Rat.t;  (** [rho_W = sum s_j beta_j] *)
  two_exponent : Iolb_util.Rat.t;  (** [rho_2 = sum s_j gamma_j] *)
  exponents : (string * Iolb_util.Rat.t) list;  (** [s_j] per label *)
}

(** [proj ?beta ?gamma ~alpha ~label dims] builds a {!bounded_proj}
    ([beta], [gamma] default to 0). *)
val proj :
  ?beta:Iolb_util.Rat.t ->
  ?gamma:Iolb_util.Rat.t ->
  alpha:Iolb_util.Rat.t ->
  label:string ->
  string list ->
  bounded_proj

(** [optimize ~dims projs] minimises lexicographically
    [(rho_K + rho_W/2, rho_K + rho_W, rho_2)] over admissible exponent
    families.  Returns [None] when no admissible family exists (some
    dimension of [dims] is covered by no projection).  The first stage is
    obtained from the {!exponent_regions} parametric sweep (its leftmost
    region is optimal at [theta = 1/2]); the result is identical to three
    independent endpoint solves. *)
val optimize : dims:string list -> bounded_proj list -> solution option

(** One regime of the K-side exponent: writing [W = K^theta], on
    [theta_lo <= theta <= theta_hi] the exponent family [region_sol] is
    optimal, so the bound behaves as
    [K^(k_exponent + theta * w_exponent)].  [two_exponent] is the
    constant-factor exponent of that same vertex (not separately
    lexicographically optimised). *)
type exponent_region = {
  theta_lo : Iolb_util.Rat.t;
  theta_hi : Iolb_util.Rat.t;
  region_sol : solution;
  region_pivots : int;  (** simplex pivots spent entering the region *)
}

(** [exponent_regions ~dims projs] decomposes [theta in [1/2, 1]] into the
    finitely many regimes of [min (rho_K + theta * rho_W)] in one
    parametric sweep ({!Iolb_lp.Psimplex}).  Regions are ordered and
    contiguous; adjacent regions agree at their shared endpoint.  [None]
    when no admissible family exists. *)
val exponent_regions :
  ?budget:Iolb_util.Budget.t ->
  dims:string list ->
  bounded_proj list ->
  exponent_region list option

val pp_exponent_region : Format.formatter -> exponent_region -> unit

(** [exponent_at ~dims projs ~theta] is the optimum of the sweep's
    objective [min (rho_K + theta * rho_W)] at one pinned [theta], by a
    plain {!Iolb_lp.Simplex} solve.  The differential reference for
    {!exponent_regions}: on a region [r] containing [theta] it must equal
    [r.region_sol.k_exponent + theta * r.region_sol.w_exponent] exactly
    (the [region-cover] oracle in [lib/check] asserts this).  [None] when
    the admissibility polytope is empty. *)
val exponent_at :
  dims:string list ->
  bounded_proj list ->
  theta:Iolb_util.Rat.t ->
  Iolb_util.Rat.t option

(** [classical ~dims dimsets] is the classical K-partition optimisation:
    every projection bounded by [K] (alpha 1); minimises the plain exponent
    sum [rho_K], yielding [|E| <= K^rho_K]. *)
val classical : dims:string list -> string list list -> solution option

val pp_solution : Format.formatter -> solution -> unit
