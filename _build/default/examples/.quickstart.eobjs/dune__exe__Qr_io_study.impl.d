examples/qr_io_study.ml: Format Iolb Iolb_kernels Iolb_pebble List Printf
