lib/kernels/syrk.ml: Constr Matrix Program Shorthand
