(** Greedy structural shrinking of failing specs.

    Counterexamples come out of the generator with incidental complexity;
    the shrinker walks towards a local minimum of {!Spec.size} while the
    failure persists, so the reported spec is (locally) minimal and the
    replay artifact is as readable as possible. *)

(** [candidates spec] is the list of strictly smaller (by {!Spec.size}),
    already-normalized one-step reductions of [spec], deduplicated. *)
val candidates : Spec.t -> Spec.t list

(** [minimize ~fails spec] greedily applies the first failing candidate
    until none fails or [max_steps] (default 200) reductions were taken.
    Returns the minimal failing spec and the number of successful
    reduction steps.  [spec] itself is assumed to fail. *)
val minimize : ?max_steps:int -> fails:(Spec.t -> bool) -> Spec.t -> Spec.t * int
