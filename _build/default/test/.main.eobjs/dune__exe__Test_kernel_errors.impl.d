test/test_kernel_errors.ml: Alcotest Iolb_ir Iolb_kernels
