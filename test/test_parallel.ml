(* The multicore layer: the domain pool, the cell interner, the strided
   (but still sound) budget deadline, and the end-to-end guarantee the
   bench harness relies on - parallel analyses are byte-identical to
   sequential ones. *)

module Pool = Iolb_util.Pool
module Budget = Iolb_util.Budget
module Interner = Iolb_ir.Interner
module Report = Iolb.Report

(* ------------------------------------------------------------------ *)
(* Pool.                                                               *)

let test_pool_order () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> (3 * x) + 1) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "order preserved at jobs=%d" jobs)
        expected
        (Pool.map ~jobs (fun x -> (3 * x) + 1) xs))
    [ 1; 2; 4; 7 ]

let test_pool_edge_cases () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map ~jobs:4 succ [ 7 ]);
  Alcotest.(check bool) "jobs=0 rejected" true
    (try
       ignore (Pool.map ~jobs:0 succ [ 1 ]);
       false
     with Invalid_argument _ -> true)

let test_pool_jobs1_is_sequential () =
  (* At jobs=1 no domain is spawned: tasks run left to right in the
     calling domain, so unsynchronised effects are safe and ordered. *)
  let log = ref [] in
  let out =
    Pool.map ~jobs:1
      (fun x ->
        log := x :: !log;
        x * x)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "results" [ 1; 4; 9; 16 ] out;
  Alcotest.(check (list int)) "evaluation order" [ 1; 2; 3; 4 ] (List.rev !log)

exception Boom of int

let test_pool_exception () =
  (* Several tasks fail; the earliest failed index wins, at any width. *)
  List.iter
    (fun jobs ->
      match
        Pool.map ~jobs
          (fun x -> if x mod 3 = 2 then raise (Boom x) else x)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
          Alcotest.(check int)
            (Printf.sprintf "earliest failure at jobs=%d" jobs)
            2 x)
    [ 1; 3; 8 ]

let test_pool_shared_budget () =
  (* One budget shared across the fan-out: the step cap bounds the
     combined work of all workers, and exhaustion propagates. *)
  let budget = Budget.make ~max_steps:50 () in
  (match
     Pool.map ~jobs:4
       (fun _ ->
         for _ = 1 to 20 do
           Budget.checkpoint budget Budget.Derivation
         done)
       (List.init 8 Fun.id)
   with
  | _ -> Alcotest.fail "expected Exhausted"
  | exception Budget.Exhausted _ -> ());
  Alcotest.(check bool) "counted past the cap" true (Budget.steps budget > 50)

(* ------------------------------------------------------------------ *)
(* Bounded_queue: the admission-control primitive of the bound          *)
(* service.  Producers never block; consumers block until an item or    *)
(* close; items enqueued before close are still delivered.              *)

module Bq = Pool.Bounded_queue

let test_queue_capacity_and_close () =
  Alcotest.(check bool) "capacity < 1 rejected" true
    (try
       ignore (Bq.create ~capacity:0);
       false
     with Invalid_argument _ -> true);
  let q = Bq.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Bq.capacity q);
  Alcotest.(check int) "empty" 0 (Bq.length q);
  Alcotest.(check bool) "push 1" true (Bq.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bq.try_push q 2);
  Alcotest.(check bool) "push refused at capacity" false (Bq.try_push q 3);
  Alcotest.(check int) "length" 2 (Bq.length q);
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Bq.pop q);
  Alcotest.(check bool) "slot freed by pop" true (Bq.try_push q 4);
  Bq.close q;
  Bq.close q (* idempotent *);
  Alcotest.(check bool) "closed" true (Bq.is_closed q);
  Alcotest.(check bool) "push after close refused" false (Bq.try_push q 5);
  Alcotest.(check (option int)) "drains after close" (Some 2) (Bq.pop q);
  Alcotest.(check (option int)) "drains after close" (Some 4) (Bq.pop q);
  Alcotest.(check (option int)) "closed and drained" None (Bq.pop q)

let test_queue_blocking_pop () =
  let q = Bq.create ~capacity:4 in
  let consumer =
    Domain.spawn (fun () ->
        let a = Bq.pop q in
        let b = Bq.pop q in
        (a, b))
  in
  (* The consumer blocks until the pushes land. *)
  Unix.sleepf 0.02;
  Alcotest.(check bool) "push a" true (Bq.try_push q 10);
  Alcotest.(check bool) "push b" true (Bq.try_push q 20);
  let a, b = Domain.join consumer in
  Alcotest.(check (option int)) "first item" (Some 10) a;
  Alcotest.(check (option int)) "second item" (Some 20) b

let test_queue_close_wakes_consumers () =
  let q : int Bq.t = Bq.create ~capacity:1 in
  let consumers = List.init 3 (fun _ -> Domain.spawn (fun () -> Bq.pop q)) in
  Unix.sleepf 0.02;
  Bq.close q;
  List.iter
    (fun d ->
      Alcotest.(check (option int)) "woken with None" None (Domain.join d))
    consumers

(* ------------------------------------------------------------------ *)
(* Workers: a crashing body poisons only its own slot and is respawned; *)
(* join drains every domain the group ever had.                         *)

let test_workers_respawn () =
  let q = Bq.create ~capacity:64 in
  let processed = Atomic.make 0 in
  let crashes_seen = Atomic.make 0 in
  let w =
    Pool.Workers.spawn ~jobs:2
      ~on_crash:(fun ~worker:_ _ -> Atomic.incr crashes_seen)
      (fun _ ->
        let rec loop () =
          match Bq.pop q with
          | None -> ()
          | Some `Crash -> raise (Boom 0)
          | Some `Work ->
              Atomic.incr processed;
              loop ()
        in
        loop ())
  in
  (* 16 work items interleaved with 4 poison pills. *)
  List.iter
    (fun x -> Alcotest.(check bool) "enqueued" true (Bq.try_push q x))
    (List.init 20 (fun i -> if i mod 5 = 2 then `Crash else `Work));
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    (Atomic.get processed < 16 || Pool.Workers.respawns w < 4)
    && Unix.gettimeofday () < deadline
  do
    Domain.cpu_relax ()
  done;
  Bq.close q;
  Pool.Workers.join w;
  Alcotest.(check int) "crashes did not lose work" 16 (Atomic.get processed);
  Alcotest.(check int) "one respawn per crash" 4 (Pool.Workers.respawns w);
  Alcotest.(check int) "on_crash saw every crash" 4 (Atomic.get crashes_seen)

let test_pool_map_reusable_after_failure () =
  (* A failed map joins every domain it spawned; repeated failures must
     not accumulate leaked domains or wedge later calls. *)
  for _ = 1 to 30 do
    match
      Pool.map ~jobs:4
        (fun x -> if x = 5 then raise (Boom 5) else x)
        (List.init 10 Fun.id)
    with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom 5 -> ()
  done;
  Alcotest.(check (list int)) "pool still works after 30 failures" [ 0; 2; 4 ]
    (Pool.map ~jobs:4 (fun x -> 2 * x) [ 0; 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Interner.                                                           *)

let test_interner_roundtrip () =
  let t = Interner.create () in
  let keys =
    [
      ("A", [| 0; 0 |]); ("A", [| 0; 1 |]); ("B", [| 0; 0 |]); ("A", [||]);
      ("B", [| 7 |]); ("", [| 1; 2; 3 |]);
    ]
  in
  let ids = List.map (Interner.intern t) keys in
  Alcotest.(check (list int)) "dense first-seen ids" [ 0; 1; 2; 3; 4; 5 ] ids;
  Alcotest.(check (list int)) "idempotent" ids (List.map (Interner.intern t) keys);
  Alcotest.(check int) "count" 6 (Interner.count t);
  List.iteri
    (fun id (name, vec) ->
      let name', vec' = Interner.key t id in
      Alcotest.(check string) "name round-trip" name name';
      Alcotest.(check (array int)) "vec round-trip" vec vec')
    keys;
  Alcotest.(check (option int)) "find_opt hit" (Some 2)
    (Interner.find_opt t ("B", [| 0; 0 |]));
  Alcotest.(check (option int)) "find_opt miss" None
    (Interner.find_opt t ("B", [| 0; 0; 0 |]));
  Alcotest.(check bool) "key out of range" true
    (try
       ignore (Interner.key t 6);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Budget: the deadline poll is strided but a passed deadline still     *)
(* fails, and the step cap stays exact.                                *)

let test_budget_deadline_strided () =
  let b = Budget.make ~timeout_ms:0 () in
  let raised_at = ref 0 in
  (try
     for i = 1 to 10 * Budget.deadline_stride do
       Budget.checkpoint b Budget.Derivation;
       raised_at := i
     done;
     Alcotest.fail "passed deadline never detected"
   with Budget.Exhausted _ -> ());
  (* The clock is only polled at stride boundaries. *)
  Alcotest.(check int) "detected at a stride boundary" 0
    ((!raised_at + 1) mod Budget.deadline_stride)

let test_budget_check_deadline_unstrided () =
  (* The clock may not have ticked since [make]; repeated polls must fail
     as soon as it does, without any checkpoint traffic in between. *)
  let b = Budget.make ~timeout_ms:0 () in
  let rec hits_within n =
    n > 0
    &&
    try
      Budget.check_deadline b Budget.Derivation;
      hits_within (n - 1)
    with Budget.Exhausted _ -> true
  in
  Alcotest.(check bool) "check_deadline polls the clock directly" true
    (hits_within 1_000_000)

let test_budget_steps_exact () =
  let b = Budget.make ~max_steps:100 () in
  for _ = 1 to 100 do
    Budget.checkpoint b Budget.Pebble_game
  done;
  Alcotest.(check int) "100 checkpoints fit" 100 (Budget.steps b);
  Alcotest.(check bool) "101st raises" true
    (try
       Budget.checkpoint b Budget.Pebble_game;
       false
     with Budget.Exhausted _ -> true)

(* ------------------------------------------------------------------ *)
(* Json: the emitter behind bench --json.                              *)

let test_json () =
  let module J = Iolb_util.Json in
  Alcotest.(check string)
    "compact"
    {|{"a":1,"b":[true,null,"x\"\n"],"c":-0.5}|}
    (J.to_string
       (J.Obj
          [
            ("a", J.Int 1);
            ("b", J.List [ J.Bool true; J.Null; J.String "x\"\n" ]);
            ("c", J.Float (-0.5));
          ]));
  Alcotest.(check string) "non-finite floats are null" {|[null,null]|}
    (J.to_string (J.List [ J.Float nan; J.Float infinity ]));
  Alcotest.(check string) "empty containers" {|[{},[]]|}
    (J.to_string (J.List [ J.Obj []; J.List [] ]));
  let pretty = J.to_string_pretty (J.Obj [ ("k", J.List [ J.Int 1 ]) ]) in
  Alcotest.(check bool) "pretty ends in newline" true
    (String.length pretty > 0 && pretty.[String.length pretty - 1] = '\n')

let test_json_parser () =
  let module J = Iolb_util.Json in
  let roundtrip v =
    match J.of_string (J.to_string v) with
    | Ok v' -> Alcotest.(check bool) (J.to_string v) true (v = v')
    | Error m -> Alcotest.failf "%s: parse error %s" (J.to_string v) m
  in
  List.iter roundtrip
    [
      J.Null;
      J.Bool false;
      J.Int (-42);
      J.Float 3.25;
      J.String "esc \"\\\n\t ok";
      J.List [ J.Int 1; J.List []; J.Obj [] ];
      J.Obj
        [
          ("schema_version", J.Int 1);
          ("sections", J.List [ J.Obj [ ("wall_s", J.Float 0.125) ] ]);
        ];
    ];
  (match J.of_string (J.to_string_pretty (J.Obj [ ("k", J.Int 1) ])) with
  | Ok (J.Obj [ ("k", J.Int 1) ]) -> ()
  | Ok v -> Alcotest.failf "pretty reparse: wrong value %s" (J.to_string v)
  | Error m -> Alcotest.failf "pretty reparse: %s" m);
  (match J.of_string {|"a\u00e9b"|} with
  | Ok (J.String "a\xc3\xa9b") -> ()
  | Ok v -> Alcotest.failf "unicode escape: wrong value %s" (J.to_string v)
  | Error m -> Alcotest.failf "unicode escape: %s" m);
  List.iter
    (fun bad ->
      match J.of_string bad with
      | Ok _ -> Alcotest.failf "%S: expected a parse error" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated" ];
  Alcotest.(check bool)
    "member" true
    (J.member "a" (J.Obj [ ("a", J.Int 7) ]) = Some (J.Int 7)
    && J.member "b" (J.Obj [ ("a", J.Int 7) ]) = None
    && J.member "a" (J.Int 3) = None)

(* ------------------------------------------------------------------ *)
(* Determinism: parallel registry analyses are byte-identical to       *)
(* sequential ones, for all five kernels.                              *)

let render a = Format.asprintf "%a" Report.pp_analysis a

let test_parallel_analyses_deterministic () =
  let parallel = Report.analyze_all ~jobs:4 () in
  Alcotest.(check int) "covers the registry"
    (List.length Report.registry)
    (List.length parallel);
  List.iter2
    (fun entry a ->
      Alcotest.(check string)
        (entry.Report.display ^ " identical to a fresh sequential analysis")
        (render (Report.analyze entry))
        (render a))
    Report.registry parallel

let suite =
  [
    Alcotest.test_case "pool: order preserved" `Quick test_pool_order;
    Alcotest.test_case "pool: edge cases" `Quick test_pool_edge_cases;
    Alcotest.test_case "pool: jobs=1 is sequential" `Quick
      test_pool_jobs1_is_sequential;
    Alcotest.test_case "pool: earliest exception wins" `Quick
      test_pool_exception;
    Alcotest.test_case "pool: shared budget cap" `Quick test_pool_shared_budget;
    Alcotest.test_case "pool: reusable after failures" `Quick
      test_pool_map_reusable_after_failure;
    Alcotest.test_case "queue: capacity, fifo, close" `Quick
      test_queue_capacity_and_close;
    Alcotest.test_case "queue: pop blocks until push" `Quick
      test_queue_blocking_pop;
    Alcotest.test_case "queue: close wakes consumers" `Quick
      test_queue_close_wakes_consumers;
    Alcotest.test_case "workers: crash isolation and respawn" `Quick
      test_workers_respawn;
    Alcotest.test_case "interner: round-trip" `Quick test_interner_roundtrip;
    Alcotest.test_case "budget: strided deadline still fails" `Quick
      test_budget_deadline_strided;
    Alcotest.test_case "budget: check_deadline unstrided" `Quick
      test_budget_check_deadline_unstrided;
    Alcotest.test_case "budget: step cap exact" `Quick test_budget_steps_exact;
    Alcotest.test_case "json emitter" `Quick test_json;
    Alcotest.test_case "json parser round-trip" `Quick test_json_parser;
    Alcotest.test_case "parallel analyses deterministic" `Quick
      test_parallel_analyses_deterministic;
  ]
