let palette =
  [| "lightblue"; "palegreen"; "lightsalmon"; "plum"; "khaki"; "lightcyan";
     "mistyrose"; "lavender" |]

let emit ?(highlight = []) fmt cdag =
  let stmt_colors = Hashtbl.create 8 in
  let color_of stmt =
    match Hashtbl.find_opt stmt_colors stmt with
    | Some c -> c
    | None ->
        let c = palette.(Hashtbl.length stmt_colors mod Array.length palette) in
        Hashtbl.add stmt_colors stmt c;
        c
  in
  let in_highlight = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace in_highlight id ()) highlight;
  Format.fprintf fmt "digraph cdag {@.  rankdir=TB;@.  node [fontsize=9];@.";
  let vec_str v =
    String.concat "," (List.map string_of_int (Array.to_list v))
  in
  for id = 0 to Cdag.n_nodes cdag - 1 do
    let style =
      if Hashtbl.mem in_highlight id then ", style=filled, penwidth=2"
      else ", style=filled, penwidth=0.5"
    in
    (match Cdag.kind cdag id with
    | Cdag.Input (arr, cell) ->
        Format.fprintf fmt
          "  n%d [label=\"%s[%s]\", shape=box, fillcolor=white%s];@." id arr
          (vec_str cell) style
    | Cdag.Compute (stmt, vec) ->
        Format.fprintf fmt
          "  n%d [label=\"%s[%s]\", shape=ellipse, fillcolor=%s%s];@." id stmt
          (vec_str vec) (color_of stmt) style);
    Array.iter
      (fun p -> Format.fprintf fmt "  n%d -> n%d;@." p id)
      (Cdag.preds cdag id)
  done;
  Format.fprintf fmt "}@."

let to_file ?highlight path cdag =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  (try emit ?highlight fmt cdag
   with e ->
     close_out oc;
     raise e);
  Format.pp_print_flush fmt ();
  close_out oc
