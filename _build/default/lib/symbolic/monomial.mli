(** Monomials: finite maps from variable names to positive integer exponents.

    The empty monomial is the constant monomial [1].  Monomials are the keys
    of the polynomial representation, so they come with a total order. *)

type t

val one : t

(** [var x] is the monomial [x^1]. *)
val var : string -> t

(** [of_list l] builds a monomial from (variable, exponent) pairs; exponents
    must be positive and variables distinct.
    @raise Invalid_argument otherwise. *)
val of_list : (string * int) list -> t

(** [to_list m] lists (variable, exponent) pairs in increasing variable
    order; all exponents are positive. *)
val to_list : t -> (string * int) list

val mul : t -> t -> t

(** [divide m1 m2] is [Some m] with [mul m m2 = m1] when [m2] divides [m1]. *)
val divide : t -> t -> t option

(** [pow m n] raises every exponent to [n * e]; [n] must be non-negative. *)
val pow : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool

(** [degree m] is the total degree; [degree_in x m] the exponent of [x]. *)
val degree : t -> int

val degree_in : string -> t -> int

(** [vars m] is the sorted list of variables occurring in [m]. *)
val vars : t -> string list

val is_one : t -> bool

(** [eval env m] evaluates with [env] giving each variable a rational value.
    @raise Not_found if a variable is unbound. *)
val eval : (string -> Iolb_util.Rat.t) -> t -> Iolb_util.Rat.t

val pp : Format.formatter -> t -> unit
