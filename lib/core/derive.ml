module Rat = Iolb_util.Rat
module Budget = Iolb_util.Budget
module Engine_error = Iolb_util.Engine_error
module P = Iolb_symbolic.Polynomial
module R = Iolb_symbolic.Ratfun
module Sturm = Iolb_symbolic.Sturm
module Affine = Iolb_poly.Affine
module Access = Iolb_ir.Access
module Program = Iolb_ir.Program

type technique = Classical | Hourglass | Hourglass_small_s | Trivial

type sregion = { s_lo : R.t; s_hi : R.t option }

let region_validity v =
  let lo_trivial = R.equal v.s_lo R.one in
  match (v.s_hi, lo_trivial) with
  | None, true -> "any S >= 1"
  | None, false -> Printf.sprintf "S >= %s" (R.to_string v.s_lo)
  | Some hi, true -> Printf.sprintf "1 <= S <= %s" (R.to_string hi)
  | Some hi, false ->
      Printf.sprintf "%s <= S <= %s" (R.to_string v.s_lo) (R.to_string hi)

let any_s = { s_lo = R.one; s_hi = None }

type t = {
  program : string;
  stmt : string;
  technique : technique;
  formula : R.t;
  validity : string;
  valid : sregion;
  s_max : R.t option;
  log : string list;
}

let s_var = P.var "S"
let sqrt_s_var = P.var "sqrtS"

let fmt_rat = Rat.to_string

let classical_of_info ?(budget = Budget.unlimited) p
    (info : Program.stmt_info) =
  Budget.checkpoint budget Budget.Derivation;
  let stmt = info.def.name in
  let phis = Phi.of_statement p info in
  List.iter (fun _ -> Budget.checkpoint budget Budget.Derivation) phis;
  let dimsets = List.map (fun (ph : Phi.t) -> ph.dims) phis in
  match Bl.classical ~dims:info.dims dimsets with
  | None -> None
  | Some sol ->
      let rho = sol.k_exponent in
      if Rat.compare rho Rat.one <= 0 then None
      else
        let v = Program.cardinal info in
        let log =
          [
            Printf.sprintf "projections: %s"
              (String.concat " "
                 (List.map (fun (ph : Phi.t) -> "{" ^ String.concat "," ph.dims ^ "}") phis));
            Printf.sprintf "Brascamp-Lieb exponent sum rho = %s" (fmt_rat rho);
            Printf.sprintf "|V| = %s" (P.to_string v);
          ]
        in
        let num_rho = Rat.num rho and den_rho = Rat.den rho in
        let formula =
          if den_rho = 1 then begin
            (* K = p/(p-1) S maximises (K-S)/K^p; all quantities rational. *)
            let pexp = num_rho in
            let coeff =
              Rat.div
                (Rat.pow (Rat.of_int (pexp - 1)) (pexp - 1))
                (Rat.pow (Rat.of_int pexp) pexp)
            in
            Some
              (R.make (P.scale coeff v) (P.pow s_var (pexp - 1)))
          end
          else if den_rho = 2 then begin
            (* rho = p/2: choose K = 4S so K^rho = 2^p sqrtS^p stays
               rational over the auxiliary variable sqrtS (S = sqrtS^2).
               (K-S) = 3S = 3 sqrtS^2. *)
            let pexp = num_rho in
            if pexp < 2 then None
            else
              Some
                (R.make (P.scale (Rat.of_int 3) v)
                   (P.scale
                      (Rat.pow Rat.two pexp)
                      (P.pow sqrt_s_var (pexp - 2))))
          end
          else None
        in
        Option.map
          (fun formula ->
            {
              program = p.Program.name;
              stmt;
              technique = Classical;
              formula;
              validity = region_validity any_s;
              valid = any_s;
              s_max = None;
              log =
                log
                @ [
                    (if den_rho = 1 then "K = rho/(rho-1) * S"
                     else "K = 4S (rational-friendly near-optimal choice)");
                  ];
            })
          formula

let classical ?budget p ~stmt =
  classical_of_info ?budget p (Program.find_stmt p stmt)

(* Sharpened projections for I' (Section 4.2).  Each entry records the LP
   cost (alpha, beta) and the actual symbolic bound as a function of K. *)
let iprime_projections (h : Hourglass.t) (info : Program.stmt_info) phis =
  let width = Hourglass.width_poly h in
  let in_reduction d = List.mem d h.reduction in
  let phi_i =
    ( Bl.proj ~alpha:Rat.zero ~beta:Rat.one ~label:"phi_I" h.reduction,
      fun _k -> R.of_poly width )
  in
  let others =
    List.map
      (fun (ph : Phi.t) ->
        let a = List.filter in_reduction ph.dims in
        if a = [] then
          ( Bl.proj ~alpha:Rat.one ~label:("phi_{" ^ String.concat "," ph.dims ^ "}")
              ph.dims,
            fun k -> R.of_poly k )
        else
          let x = List.filter (fun d -> not (in_reduction d)) ph.dims in
          let w_a =
            List.fold_left
              (fun acc d -> P.mul acc (Affine.to_polynomial (Program.extent_min info d)))
              P.one a
          in
          ( Bl.proj ~alpha:Rat.one ~beta:Rat.minus_one
              ~label:("phi_{" ^ String.concat "," x ^ "}<=K/W")
              x,
            fun k -> R.make k w_a ))
      phis
  in
  phi_i :: others

let sharpened_projections p (h : Hourglass.t) =
  let info = Program.find_stmt p h.update_stmt in
  let phis = Phi.of_statement p info in
  (info.dims, List.map fst (iprime_projections h info phis))

(* The hourglass derivation, Sections 4.1-4.4. *)
let hourglass ?(budget = Budget.unlimited) p (h : Hourglass.t) =
  Budget.checkpoint budget Budget.Derivation;
  let info = Program.find_stmt p h.update_stmt in
  let phis = Phi.of_statement p info in
  let width = Hourglass.width_poly h in
  let in_reduction d = List.mem d h.reduction in
  let iprime_projs = iprime_projections h info phis in
  match Bl.optimize ~dims:info.dims (List.map fst iprime_projs) with
  | None -> []
  | Some sol ->
      let integral =
        List.for_all (fun (_, e) -> Rat.is_integer e) sol.exponents
      in
      if not integral then []
      else
        let iprime_bound k =
          List.fold_left
            (fun acc (proj, bound) ->
              match List.assoc_opt proj.Bl.label sol.exponents with
              | None -> acc
              | Some e -> R.mul acc (R.pow (bound k) (Rat.to_int e)))
            R.one iprime_projs
        in
        (* Flat part F (Section 4.3): pick phi_w covering the neutral
           dimensions; temporal dimensions are covered by the flatness
           bound (<= 2); any dimension still uncovered is covered by a
           K-bounded projection from Phi. *)
        let score (ph : Phi.t) =
          ( List.length (List.filter (fun d -> List.mem d h.neutral) ph.dims),
            List.length (List.filter in_reduction ph.dims),
            -List.length (List.filter (fun d -> List.mem d h.temporal) ph.dims) )
        in
        let sorted =
          List.sort (fun a b -> compare (score b) (score a)) phis
        in
        (match sorted with
        | [] -> []
        | w :: _ ->
            let r_factor =
              List.fold_left
                (fun acc d ->
                  if List.mem d w.dims then acc
                  else P.mul acc (Affine.to_polynomial (Program.extent_max info d)))
                P.one h.neutral
            in
            let covered d =
              List.mem d h.temporal || List.mem d w.dims
            in
            let rec cover uncovered acc =
              Budget.checkpoint budget Budget.Derivation;
              if uncovered = [] then Some acc
              else
                let best =
                  List.fold_left
                    (fun best (ph : Phi.t) ->
                      let gain = List.length (List.filter (fun d -> List.mem d ph.dims) uncovered) in
                      match best with
                      | Some (_, g) when g >= gain -> best
                      | _ when gain = 0 -> best
                      | _ -> Some (ph, gain))
                    None phis
                in
                match best with
                | None -> None
                | Some (ph, _) ->
                    cover
                      (List.filter (fun d -> not (List.mem d ph.dims)) uncovered)
                      (ph :: acc)
            in
            let uncovered = List.filter (fun d -> not (covered d)) info.dims in
            (match cover uncovered [] with
            | None -> []
            | Some extras ->
                let n_extra = List.length extras in
                (* |F| <= 2 * R * K^(n_extra) * K  (slice sum, Section 4.3) *)
                let f_bound k =
                  R.of_poly
                    (P.scale Rat.two (P.mul r_factor (P.pow k (n_extra + 1))))
                in
                let v = Program.cardinal info in
                let e_bound k = R.add (iprime_bound k) (f_bound k) in
                let base_log =
                  [
                    Format.asprintf "%a" Hourglass.pp h;
                    Printf.sprintf "W = %s" (P.to_string width);
                    Format.asprintf "I' certificate: %a" Bl.pp_solution sol;
                    Printf.sprintf "F part: phi_w = {%s}, R = %s, %d extra K-projections"
                      (String.concat "," w.dims) (P.to_string r_factor) n_extra;
                    Printf.sprintf "|V| = %s" (P.to_string v);
                  ]
                in
                (* Main bound: K = 2S, T = K - S = S. *)
                let k_main = P.scale Rat.two s_var in
                let main =
                  {
                    program = p.Program.name;
                    stmt = h.update_stmt;
                    technique = Hourglass;
                    formula = R.div (R.of_poly (P.mul s_var v)) (e_bound k_main);
                    validity = region_validity any_s;
                    valid = any_s;
                    s_max = None;
                    log = base_log @ [ "K = 2S" ];
                  }
                in
                (* Small-cache bound: K = W forces I' empty (a spanning
                   component needs more than W distinct input values in its
                   inset), so U = |F| bound at K = W; T = W - S.  Valid for
                   S <= W. *)
                let small =
                  let valid = { s_lo = R.one; s_hi = Some (R.of_poly width) } in
                  {
                    program = p.Program.name;
                    stmt = h.update_stmt;
                    technique = Hourglass_small_s;
                    formula =
                      R.div
                        (R.of_poly (P.mul (P.sub width s_var) v))
                        (f_bound width);
                    validity = region_validity valid;
                    valid;
                    s_max = Some (R.of_poly width);
                    log = base_log @ [ "K = W (I' empty since S <= W)" ];
                  }
                in
                [ main; small ]))

(* Last rung of the degradation ladder: every distinct input cell must be
   loaded at least once, so Q >= (number of distinct input cells).  An
   array counts as an input when it is never written, or when every write
   to it is a read-modify-write of the same cell (the statement also reads
   the cell it writes): then the first access to any of its cells involves
   a read with no prior producer, i.e. an input node of the CDAG.  The
   footprint of an input array is underapproximated by the image of a
   single coordinate read access: an access selecting dimensions D touches
   at least prod_{d in D} extent_min(d) distinct cells.  Much weaker than
   the partitioning bounds (no S dependence at all) but always sound, and
   O(program text) to compute - it needs no CDAG, no LP and no projection,
   so it survives any work budget. *)
let trivial p =
  let stmts = Program.statements p in
  (* Arrays with at least one write that is NOT a same-cell RMW. *)
  let overwritten =
    List.concat_map
      (fun (i : Program.stmt_info) ->
        List.filter_map
          (fun (w : Access.t) ->
            if List.exists (Access.equal w) i.def.reads then None
            else Some w.array)
          i.def.writes)
      stmts
  in
  let best = Hashtbl.create 8 in
  List.iter
    (fun (info : Program.stmt_info) ->
      List.iter
        (fun (a : Access.t) ->
          if not (List.mem a.array overwritten) then
            match Access.selected_dims ~dims:info.dims a with
            | None -> ()
            | Some sel ->
                let footprint =
                  List.fold_left
                    (fun acc d ->
                      P.mul acc
                        (Affine.to_polynomial (Program.extent_min info d)))
                    P.one sel
                in
                let rank = List.length sel in
                (match Hashtbl.find_opt best a.array with
                | Some (r, _) when r >= rank -> ()
                | _ -> Hashtbl.replace best a.array (rank, footprint)))
        info.def.reads)
    stmts;
  let arrays =
    Hashtbl.fold (fun arr (_, fp) acc -> (arr, fp) :: acc) best []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  match arrays with
  | [] -> None
  | _ ->
      let total =
        List.fold_left (fun acc (_, fp) -> P.add acc fp) P.zero arrays
      in
      Some
        {
          program = p.Program.name;
          stmt = "inputs";
          technique = Trivial;
          formula = R.of_poly total;
          validity = region_validity any_s;
          valid = any_s;
          s_max = None;
          log =
            Printf.sprintf "input arrays: %s"
              (String.concat ", " (List.map fst arrays))
            :: [ "Q >= distinct input cells (each loaded at least once)" ];
        }

let classical_deepest ?budget p =
  let depth (i : Program.stmt_info) = List.length i.dims in
  (* The statement list is walked once and the stmt_info records are passed
     straight to the derivation - no per-statement [find_stmt] re-walk. *)
  let stmts = Program.statements p in
  let max_depth = List.fold_left (fun acc i -> max acc (depth i)) 0 stmts in
  List.filter_map
    (fun (i : Program.stmt_info) ->
      if depth i = max_depth then classical_of_info ?budget p i else None)
    stmts

let analyze ?budget ~verify_params p =
  let hgs = Hourglass.detect_verified ?budget ~params:verify_params p in
  let hg_bounds = List.concat_map (hourglass ?budget p) hgs in
  hg_bounds @ classical_deepest ?budget p

type outcome = { bounds : t list; degradation : string option }

let analyze_ladder ?(budget = Budget.unlimited) ~verify_params p =
  Engine_error.protect @@ fun () ->
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let collected () =
    match List.rev !notes with [] -> None | ns -> Some (String.concat "; " ns)
  in
  let attempt label f =
    match f () with
    | bounds -> bounds
    | exception Budget.Exhausted stage ->
        note "%s rung aborted (budget exhausted during %s)" label
          (Budget.stage_name stage);
        []
  in
  let hg_bounds =
    attempt "hourglass" (fun () ->
        let hgs = Hourglass.detect_verified ~budget ~params:verify_params p in
        List.concat_map (hourglass ~budget p) hgs)
  in
  let classical_bounds =
    attempt "classical" (fun () -> classical_deepest ~budget p)
  in
  let bounds = hg_bounds @ classical_bounds in
  (* A rung finishing under the step caps may still have crossed the
     wall-clock deadline between two sparse checks; a timed-out analysis
     must not report success. *)
  Budget.check_deadline budget Budget.Derivation;
  if bounds <> [] then Ok { bounds; degradation = collected () }
  else
    match trivial p with
    | Some b ->
        note "degraded to the trivial input-footprint bound";
        Ok { bounds = [ b ]; degradation = collected () }
    | None ->
        note "no bound derivable (no hourglass; Brascamp-Lieb exponent <= 1; no recognizable input array)";
        Ok { bounds = []; degradation = collected () }

let eval b ~params ~s =
  let env x =
    if x = "S" then float_of_int s
    else if x = "sqrtS" then sqrt (float_of_int s)
    else
      match List.assoc_opt x params with
      | Some v -> float_of_int v
      | None -> raise Not_found
  in
  R.eval_float_env env b.formula

let optimize_split ?jobs b ~param ~candidates ~params ~s =
  (* Tie-breaking contract (pinned by a regression test in test_derive):
     the *first* candidate attaining the maximum wins.  [Pool.map]
     preserves list order at any worker count, and the fold below is
     sequential over that order, so the argmax is independent of [jobs]
     and of how the evaluations were scheduled.  Callers relying on
     reproducible splits pass candidates in ascending order.

     Short candidate lists (the usual case on the region path, which
     isolates a couple of dozen candidates) are evaluated in-process:
     each evaluation is a microsecond-scale float Horner pass, so domain
     spawn-up would dominate by orders of magnitude.  The result is
     jobs-independent either way. *)
  let evaluate v = (v, eval b ~params:((param, v) :: params) ~s) in
  let values =
    if List.length candidates <= 64 then List.map evaluate candidates
    else Iolb_util.Pool.map ?jobs evaluate candidates
  in
  List.fold_left
    (fun acc (v, value) ->
      match acc with
      | Some (_, best) when best >= value -> acc
      | _ when value <= 0. -> acc
      | _ -> Some (v, value))
    None values

type split_search = {
  split : int;
  split_value : float;
  evaluated : int;
  monotone_regions : int;
  exact : bool;
}

(* The candidate set that must contain the integer argmax of the bound
   over [param in [lo, hi]]: the interval ends plus every integer adjacent
   to a real root of d/dparam (num/den) = (num' den - num den') / den^2.
   Two certified tiers.  Preferred: exact Sturm isolation of the roots of
   [g = num' den - num den'].  When the remainder chain overflows the
   63-bit rationals (large instantiated coefficients), the certified
   float sign-scan {!Sturm.possible_root_intervals} takes over: every
   unit interval that may hold a root of [g] contributes both ends, which
   is still a complete candidate set.  Only inputs outside the univariate
   fragment (extra variables like [sqrtS]) or with a possible denominator
   root in range abort to full enumeration. *)
let split_candidates_exact b ~param ~lo ~hi ~params ~s =
  let f =
    List.fold_left
      (fun f (x, v) -> R.subst x (P.of_int v) f)
      (R.subst "S" (P.of_int s) b.formula)
      params
  in
  (match R.vars f with
  | [] -> ()
  | [ v ] when String.equal v param -> ()
  | _ -> raise Sturm.Gave_up);
  let num = Sturm.of_polynomial ~var:param (R.num f) in
  let den = Sturm.of_polynomial ~var:param (R.den f) in
  if hi - lo <= 1 then (List.init (hi - lo + 1) (fun i -> lo + i), 0)
  else if Sturm.possible_root_intervals den ~lo ~hi <> [] then
    (* a pole (or an uncertain denominator sign) inside the range *)
    raise Sturm.Gave_up
  else
    (* Certified float sign-scan first: it is overflow-free and cheap,
       while the exact Sturm chain of the cross-derivative overflows
       63-bit rationals on the degree-6 instances the kernels produce -
       and building the chain just to learn that costs more than the
       whole scan.  Exact root isolation stays as the refinement tier
       for a flooded scan (many uncertain signs): it either sharpens the
       candidate set or overflows, in which case the conservative scan
       result stands. *)
    let scan () =
      let ivs = Sturm.possible_extremum_intervals num den ~lo ~hi in
      let cands = ref [ lo; hi ] in
      List.iter (fun (a, b) -> cands := a :: b :: !cands) ivs;
      (List.sort_uniq compare !cands, List.length ivs)
    in
    let exact () =
      let g =
        Sturm.sub
          (Sturm.mul (Sturm.derivative num) den)
          (Sturm.mul num (Sturm.derivative den))
      in
      if Sturm.is_zero g then ([ lo ], 0)
      else begin
        let rlo = Rat.of_int lo and rhi = Rat.of_int hi in
        let roots = Sturm.isolate_roots g ~lo:rlo ~hi:rhi in
        let cands = ref [ lo; hi ] in
        List.iter
          (fun (a, b) ->
            for m = Rat.floor a to Rat.ceil b do
              if m >= lo && m <= hi then cands := m :: !cands
            done)
          roots;
        (List.sort_uniq compare !cands, List.length roots)
      end
    in
    let ((scan_cands, _) as scanned) = scan () in
    if 2 * List.length scan_cands <= hi - lo + 1 then scanned
    else (
      match exact () with
      | result -> result
      | exception (Sturm.Gave_up | Rat.Overflow) -> scanned)

let optimize_split_regions ?jobs b ~param ~lo ~hi ~params ~s =
  if hi < lo then None
  else begin
    match split_candidates_exact b ~param ~lo ~hi ~params ~s with
    | candidates, nroots ->
        Option.map
          (fun (m, v) ->
            {
              split = m;
              split_value = v;
              evaluated = List.length candidates;
              monotone_regions = nroots + 1;
              exact = true;
            })
          (optimize_split ?jobs b ~param ~candidates ~params ~s)
    | exception (Sturm.Gave_up | Rat.Overflow) ->
        let candidates = List.init (hi - lo + 1) (fun i -> lo + i) in
        Option.map
          (fun (m, v) ->
            {
              split = m;
              split_value = v;
              evaluated = List.length candidates;
              monotone_regions = 0;
              exact = false;
            })
          (optimize_split ?jobs b ~param ~candidates ~params ~s)
  end

let applicable b ~params ~s =
  let env x =
    match List.assoc_opt x params with
    | Some v -> float_of_int v
    | None -> raise Not_found
  in
  let fs = float_of_int s in
  fs >= R.eval_float_env env b.valid.s_lo
  &&
  match b.valid.s_hi with
  | None -> true
  | Some limit -> fs <= R.eval_float_env env limit

let best ~params ~s bounds =
  List.fold_left
    (fun acc b ->
      if not (applicable b ~params ~s) then acc
      else
        let v = eval b ~params ~s in
        match acc with
        | Some (_, v') when v' >= v -> acc
        | _ -> Some (b, v))
    None bounds
  |> Option.map fst

type winner_range = { s_from : int; s_to : int; winner : t option }

(* Exact change-point hints for [best] over integer S in [lo, hi]: the
   crossing points of each pair of bound formulas (roots of num1 den2 -
   num2 den1) and every applicability edge (s_hi evaluated at params).
   Pairs outside the symbolic fragment (sqrtS, overflow) contribute no
   hints; the bisection refinement below still finds their switches as
   long as a switch shows at range endpoints. *)
let winner_hints ~params ~lo ~hi bounds =
  let rlo = Rat.of_int lo and rhi = Rat.of_int hi in
  let inst (b : t) =
    List.fold_left (fun f (x, v) -> R.subst x (P.of_int v) f) b.formula params
  in
  let hints = ref [] in
  let add r =
    let m = Rat.floor r in
    List.iter
      (fun c -> if c >= lo && c <= hi then hints := c :: !hints)
      [ m; m + 1 ]
  in
  let poly_in_s f =
    match R.vars f with
    | [] -> true
    | [ v ] -> String.equal v "S"
    | _ -> false
  in
  List.iter
    (fun (b : t) ->
      match b.valid.s_hi with
      | None -> ()
      | Some limit -> (
          try
            let l =
              List.fold_left
                (fun f (x, v) -> R.subst x (P.of_int v) f)
                limit params
            in
            match R.as_poly l with
            | Some p when P.vars p = [] -> add (P.eval (fun _ -> Rat.zero) p)
            | _ -> ()
          with Rat.Overflow -> ()))
    bounds;
  let rec pairs = function
    | [] -> ()
    | b1 :: rest ->
        List.iter
          (fun b2 ->
            try
              let f1 = inst b1 and f2 = inst b2 in
              if poly_in_s f1 && poly_in_s f2 then begin
                let u1 = Sturm.of_polynomial ~var:"S" (R.num f1)
                and d1 = Sturm.of_polynomial ~var:"S" (R.den f1)
                and u2 = Sturm.of_polynomial ~var:"S" (R.num f2)
                and d2 = Sturm.of_polynomial ~var:"S" (R.den f2) in
                let cross = Sturm.sub (Sturm.mul u1 d2) (Sturm.mul u2 d1) in
                if not (Sturm.is_zero cross) then
                  List.iter
                    (fun (a, b) ->
                      add a;
                      add b)
                    (Sturm.isolate_roots cross ~lo:rlo ~hi:rhi)
              end
            with Sturm.Gave_up | Rat.Overflow -> ())
          rest;
        pairs rest
  in
  pairs bounds;
  List.sort_uniq compare !hints

let best_regions ~params ~lo ~hi bounds =
  if hi < lo || bounds = [] then []
  else begin
    let cache = Hashtbl.create 64 in
    let winner s =
      match Hashtbl.find_opt cache s with
      | Some w -> w
      | None ->
          let w = best ~params ~s bounds in
          Hashtbl.add cache s w;
          w
    in
    let same a b =
      match (a, b) with
      | None, None -> true
      | Some x, Some y -> x == y
      | _ -> false
    in
    (* Cut at every hint, then refine each cut interval by bisection when
       its endpoints disagree.  A double switch strictly inside an
       interval with equal endpoint winners is only found if hinted -
       exact hints cover the polynomial formulas; sqrtS formulas rely on
       the endpoints. *)
    let cuts = winner_hints ~params ~lo ~hi bounds in
    let rec seg a b =
      if same (winner a) (winner b) then [ (a, b) ]
      else if b = a + 1 then [ (a, a); (b, b) ]
      else begin
        let m = (a + b) / 2 in
        seg a m @ seg (min (m + 1) b) b
      end
    in
    let rec walk a = function
      | [] -> seg a hi
      | c :: rest ->
          if c <= a then walk a rest
          else if c > hi then seg a hi
          else seg a (c - 1) @ walk c rest
    in
    let segs = walk lo (List.filter (fun c -> c > lo) cuts) in
    (* merge adjacent segments with the same winner *)
    List.fold_left
      (fun acc (a, b) ->
        let w = winner a in
        match acc with
        | { s_from; winner = w'; _ } :: tl when same w w' ->
            { s_from; s_to = b; winner = w } :: tl
        | _ -> { s_from = a; s_to = b; winner = w } :: acc)
      [] segs
    |> List.rev
  end

let pp fmt b =
  let tech =
    match b.technique with
    | Classical -> "classical"
    | Hourglass -> "hourglass"
    | Hourglass_small_s -> "hourglass (small cache)"
    | Trivial -> "trivial"
  in
  Format.fprintf fmt "[%s/%s, %s] Q >= %a  (%s)" b.program b.stmt tech R.pp
    b.formula b.validity
