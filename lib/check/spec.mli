(** First-order descriptions of random affine programs.

    A [Spec.t] is a small, immutable record from which a full
    {!Iolb_ir.Program.t} (plus concrete verification parameters) can be
    rebuilt deterministically.  Keeping the description first-order is what
    makes counterexamples replayable and shrinkable: the certifier stores
    and reports specs, never programs.

    Two families are generated:

    - {b Nest}: random loop nests of depth up to 4 with multiple chained
      statements and arrays, triangular and shifted bounds, an optional
      symbolic parameter and statements at several depths.  These exercise
      the front half of the pipeline (cardinals, CDAGs, traces, the
      classical derivation) and act as negative controls for hourglass
      detection.
    - {b Hourglass}: reduction-then-broadcast chains shaped like the
      columns of MGS / A2V (Figures 1 and 3 of the paper): a temporal
      loop around a parametric-width reduction into [R] followed by a
      broadcast of [R] back into the reduced array.  Every member carries
      a genuine hourglass, so the tightened derivation path of
      Theorems 5-9 is actually exercised. *)

type nest = {
  depth : int;  (** 1..4 nested loops *)
  sizes : int list;  (** per-level trip counts, length [depth] *)
  triangular : bool list;
      (** level [i >= 1] starts at the previous level's variable *)
  param_n : int option;
      (** when [Some v], the outermost bound is the symbolic parameter [N]
          (concrete value [v]), making cardinals genuinely parametric *)
  n_stmts : int;  (** 1..3 chained statements [S0 .. S{n-1}] *)
  write_arity : int;  (** dimensions of the written arrays, 1..min 2 depth *)
  read_shifts : int list;  (** offsets of extra reads of input array [X] *)
  self_read : bool;  (** statements read their own written cell *)
  consumer : bool;  (** trailing consumer statement reading the last array *)
  shallow : bool;  (** extra depth-1 statement beside the deep nest *)
}

type hourglass = {
  m : int;  (** concrete value of the width parameter [M], >= 2 *)
  temporal_trip : int;  (** temporal iterations, >= 2 *)
  neutral : bool;  (** presence of a neutral dimension [j] *)
  neutral_trip : int;  (** neutral trip count, >= 1 *)
  triangular : bool;  (** neutral loop starts at [k+1], as in MGS *)
  q_read : bool;  (** both statements also read an input [Q[i,k]] *)
  flat_reads : int;  (** 0..2 extra input-array reads in the reduction *)
  init_stmt : bool;  (** reset statement writing [R] before each reduction *)
}

type t = Nest of nest | Hourglass of hourglass

val family_name : t -> string

(** Structural weight used to order shrink candidates (monotone under
    every shrinking step). *)
val size : t -> int

(** Clamp the record fields into their documented ranges, so arbitrary
    (e.g. shrunk) field values still describe a well-formed program. *)
val normalize : t -> t

(** [to_program s] builds the program and its concrete verification
    parameters.  Deterministic; total on normalized specs. *)
val to_program : t -> Iolb_ir.Program.t * (string * int) list

val to_json : t -> Iolb_util.Json.t
val to_string : t -> string
val equal : t -> t -> bool
