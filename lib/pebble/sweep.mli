(** Single-pass LRU cache sweeps over all sizes at once.

    LRU is a stack algorithm (Mattson et al. 1970): the cache of size S
    always holds the S most recently used distinct cells, so a read hits at
    size S iff its reuse (stack) distance d - the number of distinct other
    cells accessed since the previous access of the same cell - satisfies
    d < S.  One pass over the trace, computing every access's distance with
    a Fenwick tree over last-access positions (O(T log T) total), therefore
    yields exact {!Cache.stats} for {e every} size simultaneously,
    including write-back stores (recovered from a parallel dirty-epoch
    interval construction; see the implementation header).  This is what
    makes validating bounds across a whole grid of cache sizes - the
    validation tables, the Appendix sweeps - cost one trace pass instead of
    one simulation per size.

    Results agree exactly, field by field, with {!Cache.lru} at every size
    and with both [~flush] settings. *)

type t

(** [run ?flush trace] performs the sweep pass ([flush] defaults to [true],
    matching {!Cache.lru}).  One [Cache_sim] budget checkpoint per trace
    event (plus one per distinct cell for the epilogue).
    @raise Iolb_util.Budget.Exhausted when the budget runs out. *)
val run : ?budget:Iolb_util.Budget.t -> ?flush:bool -> Trace.t -> t

(** No-raise variant of {!run}: a budget kill mid-sweep surfaces as
    [Error (Budget_exhausted Cache_sim)] for the degradation ladder. *)
val run_checked :
  ?budget:Iolb_util.Budget.t ->
  ?flush:bool ->
  Trace.t ->
  (t, Iolb_util.Engine_error.t) result

(** [stats t ~size] is [Cache.lru ~size ?flush:(flushed t)] on the swept
    trace, answered in O(1) from the precomputed histograms.
    @raise Invalid_argument if [size < 1]. *)
val stats : t -> size:int -> Cache.stats

(** [lru_stats trace ~sizes] is [Cache.lru] at every size of [sizes], in
    order: a singleton runs the O(T) simulator directly, two or more sizes
    share one sweep pass.  The results are identical either way. *)
val lru_stats :
  ?budget:Iolb_util.Budget.t ->
  ?flush:bool ->
  Trace.t ->
  sizes:int list ->
  (int * Cache.stats) list

(** Number of distinct cells of the swept trace; sizes [>= footprint]
    all behave like [footprint] (nothing ever evicts). *)
val footprint : t -> int

(** Number of trace events swept. *)
val accesses : t -> int

(** The [flush] setting the sweep was run with. *)
val flushed : t -> bool

(** [distance_histogram t] is a copy of the reuse-distance histogram:
    entry [d] counts the reads with finite stack distance [d] (cold reads
    are not counted; they miss at every size). *)
val distance_histogram : t -> int array

(** [parse_sizes spec] parses the size-list syntax shared by the CLI and
    the bench: either a comma-separated list ["a,b,c"] or an inclusive
    range ["lo:hi:step"].  All sizes must be positive. *)
val parse_sizes : string -> (int list, string) result

(** {1 Sharded and streaming sweeps}

    The functions below replace the O(T) position tree of {!run} with a
    footprint-compacted one and partition the pass into contiguous time
    segments, merged deterministically: the result is {e equal, field by
    field}, to {!run} on the same trace for any segment count, so output
    stays byte-identical at every [--jobs] width.  [run_program] never
    materializes the trace at all - segments are streamed straight out of
    the program (see {!Iolb_ir.Stream}), so memory follows the footprint
    and the chunk size, not the trace length. *)

(** [run_segmented ?jobs trace] sweeps a materialized trace in [jobs]
    segments ({!Iolb_util.Pool.default_jobs} by default) across domains.
    Equal to [run trace] for every partition.
    @raise Invalid_argument if [jobs < 1].
    @raise Iolb_util.Budget.Exhausted when the budget runs out (possibly
    inside a shard domain). *)
val run_segmented :
  ?budget:Iolb_util.Budget.t -> ?flush:bool -> ?jobs:int -> Trace.t -> t

(** [run_program ~params p] sweeps the access trace of program [p] at
    concrete [params] without materializing it: each of [jobs] domains
    produces its own contiguous slice of the trace in place through the
    compiled plan ({!Iolb_ir.Cplan}) - flat integer address arithmetic
    with an O(depth) seek to the slice start, no hashing, no chunk
    buffers.  Programs the compiler rejects (rank mismatch, hull
    overflow, an address space too sparse for the flat remap tables)
    fall back to {!run_program_stream} transparently.  Equal to
    [run (Trace.of_program ~params p)] in every field either way.
    Budget semantics combine the trace-build stage ([Cdag_build]
    checkpoints per statement instance, counted against the node cap)
    and the sweep stage ([Cache_sim] per event).  [chunk_size] only
    affects the streaming fallback. *)
val run_program :
  ?budget:Iolb_util.Budget.t ->
  ?flush:bool ->
  ?jobs:int ->
  ?chunk_size:int ->
  params:(string * int) list ->
  Iolb_ir.Program.t ->
  t

(** The chunked streaming producer behind the pre-compilation
    [run_program]: shards stream their slices through
    {!Iolb_ir.Stream.iter_chunks} with interned cell ids.  Kept as the
    differential oracle for the compiled path (and as its fallback);
    equal to {!run_program} in every field, for any [jobs] and
    [chunk_size]. *)
val run_program_stream :
  ?budget:Iolb_util.Budget.t ->
  ?flush:bool ->
  ?jobs:int ->
  ?chunk_size:int ->
  params:(string * int) list ->
  Iolb_ir.Program.t ->
  t

(** No-raise variant of {!run_program} for the degradation ladder. *)
val run_program_checked :
  ?budget:Iolb_util.Budget.t ->
  ?flush:bool ->
  ?jobs:int ->
  ?chunk_size:int ->
  params:(string * int) list ->
  Iolb_ir.Program.t ->
  (t, Iolb_util.Engine_error.t) result

(** {1 Sampled sweeps}

    SHARDS-style spatial sampling: a cell is kept iff
    [Iolb_ir.Program.sample_hash ~seed name index < rate * 2^62], so the
    kept set is a pure function of (seed, cell) and reuse distances of
    the kept subsequence scale by [rate].  A sweep of the sampled trace
    evaluated at size [round (S * rate)], scaled back by [1/rate],
    estimates the exact sweep at size [S].  The kept hash window is
    further split into [groups] disjoint sub-windows - independent
    samples at [rate/groups] - whose estimate spread yields the reported
    error bars.  Rejected accesses cost a few nanoseconds (see
    {!Iolb_ir.Program.iter_accesses_sampled}), which is what makes
    billion-access validation runs feasible. *)

type sampled

(** Point estimate with its confidence interval, [lo <= est <= hi].
    Exact results (rate 1) have zero width. *)
type estimate = { est : float; lo : float; hi : float }

(** [run_sampled ~rate ~seed ~params p] scans the trace of [p] once,
    keeping cells at the given [rate], and sweeps the union sample plus
    [groups] (default 8) disjoint sub-samples.  [rate >= 1] falls back
    to the exact {!run_program}.
    @raise Invalid_argument if [rate] is outside (0, 1] or [groups < 2]. *)
val run_sampled :
  ?budget:Iolb_util.Budget.t ->
  ?flush:bool ->
  ?groups:int ->
  rate:float ->
  seed:int ->
  params:(string * int) list ->
  Iolb_ir.Program.t ->
  sampled

(** No-raise variant of {!run_sampled} for the degradation ladder. *)
val run_sampled_checked :
  ?budget:Iolb_util.Budget.t ->
  ?flush:bool ->
  ?groups:int ->
  rate:float ->
  seed:int ->
  params:(string * int) list ->
  Iolb_ir.Program.t ->
  (sampled, Iolb_util.Engine_error.t) result

(** [sampled_stats s ~size] estimates [(loads, read hits, stores)] of the
    exact sweep at [size].  Centres come from the union sample; interval
    half-widths are [max (4 * se, 2/rate + 2% of centre)] where [se] is
    the standard error across the per-group estimates.  When the sample
    is too thin to support a spread estimate ({!sampled_degenerate}),
    the interval degrades to the trivially-safe [0, total accesses].
    @raise Invalid_argument if [size < 1]. *)
val sampled_stats : sampled -> size:int -> estimate * estimate * estimate

val sampled_rate : sampled -> float
val sampled_seed : sampled -> int

(** [true] iff the requested rate reached 1 and the underlying sweep is
    exact ({!sampled_stats} then has zero-width intervals). *)
val sampled_exact : sampled -> bool

(** Length of the full (unsampled) trace. *)
val sampled_total_accesses : sampled -> int

(** Number of accesses the union window kept. *)
val sampled_kept_accesses : sampled -> int

val sampled_groups : sampled -> int

(** The sweep of the union sample (footprint = sampled footprint). *)
val sampled_union : sampled -> t

(** [true] when the sample cannot support error bars (union footprint
    under 32 cells or fewer than two populated groups): intervals are
    then [0, total accesses]. *)
val sampled_degenerate : sampled -> bool
