module Json = Iolb_util.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect_once address =
  match (address : Server.address) with
  | Server.Unix_sock path ->
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      (try Unix.connect fd (ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | Server.Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { h_addr_list = [||]; _ } ->
              invalid_arg (Printf.sprintf "cannot resolve host %S" host)
          | { h_addr_list; _ } -> h_addr_list.(0)
          | exception Not_found ->
              invalid_arg (Printf.sprintf "cannot resolve host %S" host))
      in
      let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
      (try Unix.connect fd (ADDR_INET (addr, port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

(* Retrying connect: the daemon the caller just started may not have
   bound its socket yet (CI starts it in the background). *)
let connect ?(attempts = 1) ?(delay_s = 0.1) address =
  if attempts < 1 then invalid_arg "Client.connect: attempts < 1";
  let rec go n =
    match connect_once address with
    | c -> c
    | exception e ->
        if n >= attempts then raise e
        else begin
          Unix.sleepf delay_s;
          go (n + 1)
        end
  in
  go 1

let close t = close_out_noerr t.oc

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t =
  match input_line t.ic with
  | line -> Some line
  | exception (End_of_file | Sys_error _) -> None

(* One request, one response: pipelining is the caller's business via
   [send_line]/[recv_line]. *)
let request t json =
  send_line t (Json.to_string json);
  match recv_line t with
  | None -> Error "connection closed before a response arrived"
  | Some line -> Protocol.parse_response line

let rpc t ?(id = Json.Null) ~op fields =
  request t (Json.Obj (("id", id) :: ("op", Json.String op) :: fields))
