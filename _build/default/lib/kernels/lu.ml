open Shorthand

let spec =
  let n = v "N" in
  let k1 = v "k" +! c 1 in
  Program.make ~name:"lu" ~params:[ "N" ]
    ~assumptions:[ Constr.ge_of (v "N") (c 1) ]
    [
      loop_lt "k" (c 0) n
        [
          loop_lt "i" k1 n
            [
              stmt "Sdv"
                ~writes:[ a2 "A" (v "i") (v "k") ]
                ~reads:[ a2 "A" (v "i") (v "k"); a2 "A" (v "k") (v "k") ];
            ];
          loop_lt "i" k1 n
            [
              loop_lt "j" k1 n
                [
                  stmt "Sup"
                    ~writes:[ a2 "A" (v "i") (v "j") ]
                    ~reads:
                      [
                        a2 "A" (v "i") (v "j");
                        a2 "A" (v "i") (v "k");
                        a2 "A" (v "k") (v "j");
                      ];
                ];
            ];
        ];
    ]

let factor a0 =
  let n, n' = Matrix.dims a0 in
  if n <> n' then invalid_arg "Lu.factor: need a square matrix";
  let a = Matrix.copy a0 in
  for k = 0 to n - 1 do
    let piv = Matrix.get a k k in
    if piv = 0. then invalid_arg "Lu.factor: zero pivot";
    for i = k + 1 to n - 1 do
      Matrix.set a i k (Matrix.get a i k /. piv)
    done;
    for i = k + 1 to n - 1 do
      for j = k + 1 to n - 1 do
        Matrix.set a i j (Matrix.get a i j -. (Matrix.get a i k *. Matrix.get a k j))
      done
    done
  done;
  let l = Matrix.init n n (fun i j -> if i = j then 1. else if j < i then Matrix.get a i j else 0.) in
  let u = Matrix.init n n (fun i j -> if j >= i then Matrix.get a i j else 0.) in
  (l, u)

let random_dd ?(seed = 11) n =
  let a = Matrix.random ~seed n n in
  Matrix.init n n (fun i j ->
      Matrix.get a i j +. if i = j then 2. *. float_of_int n else 0.)
