type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

(* indent < 0: compact; otherwise the current nesting depth. *)
let rec emit buf ~indent v =
  let nl depth =
    if indent >= 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 1);
          emit buf ~indent:(if indent >= 0 then indent + 1 else indent) item)
        items;
      nl indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 1);
          escape buf k;
          Buffer.add_string buf (if indent >= 0 then ": " else ":");
          emit buf ~indent:(if indent >= 0 then indent + 1 else indent) item)
        fields;
      nl indent;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf ~indent:(-1) v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  emit buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf
