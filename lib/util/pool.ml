let default_jobs () =
  match Sys.getenv_opt "IOLB_JOBS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf "IOLB_JOBS must be a positive integer, got %S" s))

type 'b slot = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.map: jobs < 1";
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs = 1 -> List.map f xs
  | _ ->
      let tasks = Array.of_list xs in
      let n = Array.length tasks in
      let results = Array.make n Pending in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (results.(i) <-
               (match f tasks.(i) with
               | v -> Done v
               | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
            loop ()
          end
        in
        loop ()
      in
      let domains =
        Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      Array.iter Domain.join domains;
      Array.iter
        (function
          | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
          | Pending | Done _ -> ())
        results;
      Array.to_list
        (Array.map
           (function Done v -> v | Pending | Failed _ -> assert false)
           results)

let iter ?jobs f xs = ignore (map ?jobs f xs)
