lib/kernels/trsm.ml: Constr Matrix Program Shorthand
