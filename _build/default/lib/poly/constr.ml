type kind = Ge | Eq

type t = { expr : Affine.t; kind : kind }

let ge expr = { expr; kind = Ge }
let eq expr = { expr; kind = Eq }
let le_of a b = ge (Affine.sub b a)
let ge_of a b = ge (Affine.sub a b)
let eq_of a b = eq (Affine.sub a b)
let lt_of a b = ge (Affine.sub (Affine.sub b a) (Affine.const 1))

let satisfied env c =
  let v = Affine.eval env c.expr in
  match c.kind with Ge -> v >= 0 | Eq -> v = 0

let specialize env c = { c with expr = Affine.eval_partial env c.expr }

let is_trivial c =
  match Affine.is_constant c.expr with
  | None -> None
  | Some v -> Some (match c.kind with Ge -> v >= 0 | Eq -> v = 0)

let equal a b = a.kind = b.kind && Affine.equal a.expr b.expr

let compare a b =
  match Stdlib.compare a.kind b.kind with
  | 0 -> Affine.compare a.expr b.expr
  | c -> c

let pp fmt c =
  Format.fprintf fmt "%a %s 0" Affine.pp c.expr
    (match c.kind with Ge -> ">=" | Eq -> "=")
