(** Reference implementation of the red-white pebble game: the pre-compiled
    engine, kept verbatim as the differential oracle for {!Game} (the
    [game-compiled] check property).  Same semantics, same API, same
    results - {!Game} is the one to use; this one exists to be compared
    against.

    Inputs start with white pebbles; computing a node requires red pebbles
    on all its predecessors and places a white and a red pebble on it; red
    pebbles may be discarded at any time (spills are free, only {b Load}
    steps are counted, as in the paper).  For a fixed compute order the
    minimum number of loads is achieved by clairvoyant (Belady) discarding
    of red pebbles. *)

type result = {
  loads : int;  (** red pebbles placed on already-white nodes *)
  peak_red : int;  (** maximum number of simultaneous red pebbles *)
}

exception Infeasible of string
(** Raised when some node needs more than [s] red pebbles at once. *)

(** [run cdag ~s ~schedule] plays the game with fast-memory size [s] over
    the compute nodes in [schedule] order.  One [Pebble_game] budget
    checkpoint is accounted per scheduled node.
    @raise Infeasible if [s] is too small for some node's fan-in.
    @raise Iolb_util.Budget.Exhausted when the budget runs out.
    @raise Invalid_argument if [schedule] is not a valid topological order
    of the compute nodes. *)
val run :
  ?budget:Iolb_util.Budget.t -> Iolb_cdag.Cdag.t -> s:int -> schedule:int array -> result

(** A validated schedule with its use-position tables precomputed.  S-sweeps
    over a fixed schedule (the validation grids) pay the topological check
    and the use-position construction once instead of per cache size.  A
    plan is immutable; {!run_plan} keeps all per-run state private, so one
    plan can be run concurrently from several domains. *)
type plan

(** [plan cdag ~schedule] validates [schedule] and precomputes its
    use-position tables.
    @raise Invalid_argument if [schedule] is not a valid topological order
    of the compute nodes. *)
val plan : Iolb_cdag.Cdag.t -> schedule:int array -> plan

(** [run_plan plan ~s] is [run] on the plan's CDAG and schedule; same
    budget accounting and exceptions (except the schedule check, already
    done by {!plan}). *)
val run_plan : ?budget:Iolb_util.Budget.t -> plan -> s:int -> result

(** [run_checked] is {!run} behind the no-raise boundary ([Infeasible] and
    bad schedules map to [Invalid_input]). *)
val run_checked :
  ?budget:Iolb_util.Budget.t ->
  Iolb_cdag.Cdag.t ->
  s:int ->
  schedule:int array ->
  (result, Iolb_util.Engine_error.t) Stdlib.result

(** The compute nodes in program order (always a valid schedule). *)
val program_schedule : Iolb_cdag.Cdag.t -> int array

(** [is_topological cdag schedule]: every compute predecessor of a scheduled
    node appears earlier. *)
val is_topological : Iolb_cdag.Cdag.t -> int array -> bool

(** [random_topological ?seed cdag] draws a uniform-ish random topological
    order of the compute nodes (random tie-breaking among ready nodes). *)
val random_topological : ?seed:int -> Iolb_cdag.Cdag.t -> int array

(** [priority_topological cdag ~priority] builds the topological order that
    always executes the ready compute node with the smallest [priority]
    (Kahn's algorithm with a priority queue).  With a locality-aware
    priority - e.g. grouping a statement's instances by column block - this
    produces tiled-like schedules whose pebble-game I/O approaches the
    lower bound from above. *)
val priority_topological :
  Iolb_cdag.Cdag.t -> priority:(stmt:string -> vec:int array -> int) -> int array
