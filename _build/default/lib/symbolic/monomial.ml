module Smap = Map.Make (String)

(* Invariant: every stored exponent is > 0. *)
type t = int Smap.t

let one = Smap.empty
let var x = Smap.singleton x 1

let of_list l =
  List.fold_left
    (fun acc (x, e) ->
      if e <= 0 then invalid_arg "Monomial.of_list: non-positive exponent";
      if Smap.mem x acc then invalid_arg "Monomial.of_list: duplicate variable";
      Smap.add x e acc)
    Smap.empty l

let to_list m = Smap.bindings m

let mul a b =
  Smap.union (fun _ ea eb -> Some (ea + eb)) a b

let divide a b =
  let exception No in
  try
    Some
      (Smap.fold
         (fun x eb acc ->
           let ea = try Smap.find x acc with Not_found -> raise No in
           if ea < eb then raise No
           else if ea = eb then Smap.remove x acc
           else Smap.add x (ea - eb) acc)
         b a)
  with No -> None

let pow m n =
  if n < 0 then invalid_arg "Monomial.pow: negative exponent";
  if n = 0 then one else Smap.map (fun e -> e * n) m

let compare = Smap.compare Int.compare
let equal = Smap.equal Int.equal
let degree m = Smap.fold (fun _ e acc -> acc + e) m 0
let degree_in x m = try Smap.find x m with Not_found -> 0
let vars m = List.map fst (Smap.bindings m)
let is_one = Smap.is_empty

let eval env m =
  Smap.fold
    (fun x e acc -> Iolb_util.Rat.mul acc (Iolb_util.Rat.pow (env x) e))
    m Iolb_util.Rat.one

let pp fmt m =
  if is_one m then Format.pp_print_string fmt "1"
  else
    let pp_factor fmt (x, e) =
      if e = 1 then Format.pp_print_string fmt x
      else Format.fprintf fmt "%s^%d" x e
    in
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "*")
      pp_factor fmt (to_list m)
