(** Reduction of an [m x n] ([m >= n]) matrix to upper bidiagonal form by
    alternating left/right Householder reflections (LAPACK [GEBD2]).

    The paper derives for this kernel the hourglass bound
    [M N^2 (M-N+1) / (8 (S + M - N + 1)) <= Q] (Theorem 8). *)

(** The polyhedral program over [M] and [N] ([M >= N >= 2]).  The main loop
    ([k = 0 .. N-2]) generates a column reflector, applies it to the
    trailing columns (statements [BRl]/[BUl], the hourglass), then generates
    a row reflector and applies it to the trailing rows ([CRr]/[CUr]); a
    straight-line epilogue handles the last column. *)
val spec : Iolb_ir.Program.t

type result = {
  a : Matrix.t;  (** bidiagonal in place, reflector tails below/right *)
  tauq : float array;  (** column (left) reflector scalars, length n *)
  taup : float array;  (** row (right) reflector scalars, length n *)
}

(** [reduce a] for [m >= n >= 1]. *)
val reduce : Matrix.t -> result

(** [bidiagonal_of r] extracts the [n x n] upper bidiagonal factor B. *)
val bidiagonal_of : result -> Matrix.t

(** [q_of r] accumulates the left orthogonal factor Q ([m x m]). *)
val q_of : result -> Matrix.t

(** [p_of r] accumulates the right orthogonal factor P ([n x n]), such that
    [A = Q * [B; 0] * P^T]. *)
val p_of : result -> Matrix.t
