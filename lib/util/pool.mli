(** Fixed-size domain pool for fanning out independent engine work.

    The empirical layer (registry analyses, pebble-game validation grids,
    cache-simulation sweeps, split searches) is embarrassingly parallel:
    many independent tasks whose results are only combined at the end.
    [Pool.map] runs such task lists across OCaml 5 domains with a work-
    stealing index, preserving input order in the output so callers keep
    byte-identical (deterministic) results regardless of the worker count.

    Tasks must not share unsynchronised mutable state.  Everything the
    engine fans out satisfies this: analyses build private structures,
    {!Budget} counters are atomic, and [Budget.unlimited] checkpoints are
    no-ops. *)

(** Worker count used when [?jobs] is omitted: the [IOLB_JOBS] environment
    variable if set (a positive integer), else
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [IOLB_JOBS] is set but not a positive
    integer. *)
val default_jobs : unit -> int

(** [map ?jobs f xs] is [List.map f xs], computed by at most [jobs] domains
    (default {!default_jobs}).  Output order follows input order.  With
    [jobs = 1] (or on lists of fewer than two elements) no domain is
    spawned and the evaluation is exactly sequential.

    If one or more applications of [f] raise, every task still completes
    (or fails), {e every} spawned domain is joined, and only then is the
    exception of the {e earliest} failed index re-raised with its
    backtrace - failures are deterministic and can neither leak a domain
    nor deadlock the joiner.  A failing [Domain.spawn] (domain limit,
    resource exhaustion) degrades the fan-out width instead of failing
    the call: the calling domain works through the remaining tasks
    itself.
    @raise Invalid_argument if [jobs < 1]. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [iter ?jobs f xs] is [ignore (map ?jobs f xs)]. *)
val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit

(** [split ~shards n] partitions [\[0, n)] into at most [shards] contiguous
    half-open ranges [(lo, hi)], in order, with sizes differing by at most
    one (earlier ranges get the extra elements).  The bounds are a pure
    function of [(shards, n)] — the same partition at any worker count —
    which is what lets sharded consumers merge deterministically.  Returns
    fewer than [shards] ranges when [n < shards]; [(0, 0)] when [n = 0].
    @raise Invalid_argument if [shards < 1] or [n < 0]. *)
val split : shards:int -> int -> (int * int) list

(** Bounded multi-producer multi-consumer queue: the admission-control
    primitive of the bound service.  Producers never block - [try_push]
    refuses once the capacity is reached so the caller can shed load
    (e.g. answer [overloaded]) instead of queueing without limit;
    consumers block in [pop] until an item or {!close}. *)
module Bounded_queue : sig
  type 'a t

  (** @raise Invalid_argument if [capacity < 1]. *)
  val create : capacity:int -> 'a t

  (** [try_push t x] enqueues [x] and returns [true], or returns [false]
      without blocking when the queue is at capacity or closed. *)
  val try_push : 'a t -> 'a -> bool

  (** [pop t] blocks until an item is available and dequeues it, or
      returns [None] once the queue is closed {e and} drained (items
      enqueued before [close] are still delivered). *)
  val pop : 'a t -> 'a option

  (** [close t] rejects future pushes and wakes all blocked consumers;
      idempotent. *)
  val close : 'a t -> unit

  val length : 'a t -> int
  val capacity : 'a t -> int
  val is_closed : 'a t -> bool
end

(** A group of long-running worker domains with crash isolation: each
    worker runs [body i] (typically a [Bounded_queue.pop] loop).  A body
    that returns normally ends that worker; a body that {e raises} has
    crashed - the exception is reported to [on_crash] and a fresh domain
    is spawned into the same slot, so one poisoned request cannot take
    the group down. *)
module Workers : sig
  type t

  (** [spawn ~jobs body] starts [jobs] domains running [body 0 .. body
      (jobs-1)].  [on_crash ~worker e] is called (in the dying domain)
      before the slot is respawned; exceptions it raises are ignored.
      @raise Invalid_argument if [jobs < 1]. *)
  val spawn :
    jobs:int -> ?on_crash:(worker:int -> exn -> unit) -> (int -> unit) -> t

  (** Number of crash respawns so far. *)
  val respawns : t -> int

  (** [join t] disables further respawns and joins every domain the group
      ever spawned (crashed predecessors included).  Close the queue the
      bodies consume from {e before} calling [join], or it will block
      until the bodies return. *)
  val join : t -> unit
end
