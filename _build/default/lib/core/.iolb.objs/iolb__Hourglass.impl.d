lib/core/hourglass.ml: Array Format Hashtbl Iolb_cdag Iolb_ir Iolb_poly Iolb_symbolic List Option String
