module Affine = Iolb_poly.Affine
module Constr = Iolb_poly.Constr
module Iset = Iolb_poly.Iset

type t = {
  writer : string;
  reader : string;
  array : string;
  relation : Iset.t;
  writer_dims : string list;
  reader_dims : string list;
}

let rename_writer_dim d = "w$" ^ d

let rename_expr dims e =
  List.fold_left
    (fun e d -> Affine.subst d (Affine.var (rename_writer_dim d)) e)
    e dims

let domain_constraints ~rename (info : Program.stmt_info) =
  List.concat_map
    (fun (d, lo, hi) ->
      let dv = if rename then rename_writer_dim d else d in
      let lo = if rename then rename_expr info.dims lo else lo in
      let hi = if rename then rename_expr info.dims hi else hi in
      [ Constr.ge_of (Affine.var dv) lo; Constr.le_of (Affine.var dv) hi ])
    info.bounds

let relation_of (w : Program.stmt_info) (waccess : Access.t)
    (r : Program.stmt_info) (raccess : Access.t) =
  let writer_dims = List.map rename_writer_dim w.dims in
  let dims = writer_dims @ r.dims in
  let equalities =
    List.map2
      (fun we re -> Constr.eq_of (rename_expr w.dims we) re)
      waccess.index raccess.index
  in
  {
    writer = w.def.name;
    reader = r.def.name;
    array = waccess.array;
    relation =
      Iset.make ~dims
        (domain_constraints ~rename:true w
        @ domain_constraints ~rename:false r
        @ equalities);
    writer_dims;
    reader_dims = r.dims;
  }

let relations p =
  let stmts = Program.statements p in
  List.concat_map
    (fun (w : Program.stmt_info) ->
      List.concat_map
        (fun (waccess : Access.t) ->
          List.concat_map
            (fun (r : Program.stmt_info) ->
              List.filter_map
                (fun (raccess : Access.t) ->
                  if
                    raccess.array = waccess.array
                    && List.length raccess.index = List.length waccess.index
                  then Some (relation_of w waccess r raccess)
                  else None)
                r.def.reads)
            stmts)
        w.def.writes)
    stmts

let between p ~writer ~reader =
  (* Build just the requested pair's relations instead of materializing
     every relation of the program and filtering: derivation queries one
     (writer, reader) pair at a time, and each relation carries an
     integer-set construction. *)
  let stmts = Program.statements p in
  let find name =
    List.find_opt (fun (i : Program.stmt_info) -> i.def.name = name) stmts
  in
  match (find writer, find reader) with
  | Some w, Some r ->
      List.concat_map
        (fun (waccess : Access.t) ->
          List.filter_map
            (fun (raccess : Access.t) ->
              if
                raccess.array = waccess.array
                && List.length raccess.index = List.length waccess.index
              then Some (relation_of w waccess r raccess)
              else None)
            r.def.reads)
        w.def.writes
  | _ -> []

let may_depend ~params d = not (Iset.is_empty ~params d.relation)

let instance_pairs ~params d =
  let nw = List.length d.writer_dims in
  List.map
    (fun point ->
      (Array.sub point 0 nw, Array.sub point nw (Array.length point - nw)))
    (Iset.enumerate ~params d.relation)

let pp fmt d =
  Format.fprintf fmt "%s -> %s via %s: %a" d.writer d.reader d.array Iset.pp
    d.relation
