module Affine = Iolb_poly.Affine
module Iset = Iolb_poly.Iset
module Constr = Iolb_poly.Constr
module P = Iolb_symbolic.Polynomial

type stmt = { name : string; writes : Access.t list; reads : Access.t list }

type node =
  | Loop of {
      var : string;
      lo : Affine.t;
      hi : Affine.t;
      rev : bool;
      body : node list;
    }
  | Stmt of stmt

type t = {
  name : string;
  params : string list;
  assumptions : Constr.t list;
  body : node list;
}

let loop var lo hi body = Loop { var; lo; hi; rev = false; body }

let loop_lt var lo hi_excl body =
  Loop { var; lo; hi = Affine.sub hi_excl (Affine.const 1); rev = false; body }

let loop_rev var lo hi body = Loop { var; lo; hi; rev = true; body }

let stmt name ~writes ~reads = Stmt { name; writes; reads }

let rec check_node params path seen_names = function
  | Stmt s ->
      if List.mem s.name !seen_names then
        invalid_arg (Printf.sprintf "Program.make: duplicate statement %s" s.name);
      seen_names := s.name :: !seen_names;
      let visible = path @ params in
      let check_access a =
        List.iter
          (fun x ->
            if not (List.mem x visible) then
              invalid_arg
                (Printf.sprintf
                   "Program.make: access %s in statement %s uses unbound %s"
                   (Format.asprintf "%a" Access.pp a)
                   s.name x))
          (Access.dims_used a)
      in
      List.iter check_access s.writes;
      List.iter check_access s.reads
  | Loop { var; lo; hi; rev = _; body } ->
      if List.mem var path then
        invalid_arg (Printf.sprintf "Program.make: loop variable %s shadows" var);
      let visible = path @ params in
      List.iter
        (fun e ->
          List.iter
            (fun x ->
              if not (List.mem x visible) then
                invalid_arg
                  (Printf.sprintf "Program.make: loop bound uses unbound %s" x))
            (Affine.vars e))
        [ lo; hi ];
      List.iter (check_node params (var :: path) seen_names) body

let make ~name ~params ~assumptions body =
  let seen = ref [] in
  List.iter (check_node params [] seen) body;
  { name; params; assumptions; body }

type stmt_info = {
  def : stmt;
  dims : string list;
  bounds : (string * Affine.t * Affine.t) list;
  path : int list;
}

let statements p =
  let counter = ref 0 in
  let rec walk bounds path acc = function
    | Stmt def ->
        {
          def;
          dims = List.map (fun (v, _, _) -> v) (List.rev bounds);
          bounds = List.rev bounds;
          path = List.rev path;
        }
        :: acc
    | Loop { var; lo; hi; rev = _; body } ->
        let id = !counter in
        incr counter;
        List.fold_left (walk ((var, lo, hi) :: bounds) (id :: path)) acc body
  in
  List.rev (List.fold_left (fun acc n -> walk [] [] acc n) [] p.body)

let shared_loop_vars a b =
  let rec go vars pa pb =
    match (vars, pa, pb) with
    | v :: vars, ia :: pa, ib :: pb when ia = ib -> v :: go vars pa pb
    | _ -> []
  in
  go a.dims a.path b.path

let find_stmt p name =
  match List.find_opt (fun i -> i.def.name = name) (statements p) with
  | Some i -> i
  | None -> raise Not_found

let domain info =
  let cons =
    List.concat_map
      (fun (v, lo, hi) ->
        [ Constr.ge_of (Affine.var v) lo; Constr.le_of (Affine.var v) hi ])
      info.bounds
  in
  Iset.make ~dims:info.dims cons

let cardinal info =
  List.fold_left
    (fun inner (v, lo, hi) ->
      P.sum_over v ~lo:(Affine.to_polynomial lo) ~hi:(Affine.to_polynomial hi)
        inner)
    P.one (List.rev info.bounds)

let total_instances p =
  List.fold_left (fun acc i -> P.add acc (cardinal i)) P.zero (statements p)

(* Adversarial substitution of the outer dimensions into an affine
   expression: replaces each outer variable, innermost first, by whichever
   of its bounds drives the expression towards its minimum (for
   [extent_min]) or maximum (for [extent_max]). *)
let extremize ~minimize info expr =
  let rec go expr = function
    | [] -> expr
    | (v, lo, hi) :: outer_rest ->
        let c = Affine.coeff v expr in
        let expr =
          if c = 0 then expr
          else
            let bound =
              if (c > 0) = minimize then lo else hi
            in
            Affine.subst v bound expr
        in
        go expr outer_rest
  in
  (* bounds are listed outermost first; process innermost first. *)
  go expr (List.rev info.bounds)

let trip_count (_, lo, hi) =
  Affine.add (Affine.sub hi lo) (Affine.const 1)

let find_bound info x =
  match List.find_opt (fun (v, _, _) -> v = x) info.bounds with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Program: %s is not a dimension" x)

let extent_min info x = extremize ~minimize:true info (trip_count (find_bound info x))
let extent_max info x = extremize ~minimize:false info (trip_count (find_bound info x))

type instance = {
  stmt_name : string;
  vec : int array;
  loads : (string * int array) list;
  stores : (string * int array) list;
}

let iter_instances ~params p f =
  let env = Hashtbl.create 16 in
  List.iter (fun (x, v) -> Hashtbl.replace env x v) params;
  let lookup x =
    match Hashtbl.find_opt env x with
    | Some v -> v
    | None -> raise Not_found
  in
  let rec exec path = function
    | Stmt s ->
        let vec = Array.of_list (List.rev_map lookup path) in
        f
          {
            stmt_name = s.name;
            vec;
            loads = List.map (Access.eval lookup) s.reads;
            stores = List.map (Access.eval lookup) s.writes;
          }
    | Loop { var; lo; hi; rev; body } ->
        let lo = Affine.eval lookup lo and hi = Affine.eval lookup hi in
        let visit v =
          Hashtbl.replace env var v;
          List.iter (exec (var :: path)) body
        in
        if rev then
          for v = hi downto lo do
            visit v
          done
        else
          for v = lo to hi do
            visit v
          done;
        Hashtbl.remove env var
  in
  List.iter (exec []) p.body

let count_instances ~params p =
  let n = ref 0 in
  iter_instances ~params p (fun _ -> incr n);
  !n

let input_arrays ~params p =
  let written = Hashtbl.create 16 in
  let inputs = ref [] in
  iter_instances ~params p (fun inst ->
      List.iter
        (fun (a, cell) ->
          if (not (Hashtbl.mem written (a, cell))) && not (List.mem a !inputs)
          then inputs := a :: !inputs)
        inst.loads;
      List.iter (fun (a, cell) -> Hashtbl.replace written (a, cell) ()) inst.stores);
  List.rev !inputs

let pp fmt p =
  let rec pp_node indent fmt = function
    | Stmt s ->
        Format.fprintf fmt "%s%s: %a = f(%a)\n" indent s.name
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
             Access.pp)
          s.writes
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
             Access.pp)
          s.reads
    | Loop { var; lo; hi; rev; body } ->
        if rev then
          Format.fprintf fmt "%sfor %s = %a downto %a:\n" indent var Affine.pp
            hi Affine.pp lo
        else
          Format.fprintf fmt "%sfor %s = %a .. %a:\n" indent var Affine.pp lo
            Affine.pp hi;
        List.iter (pp_node (indent ^ "  ") fmt) body
  in
  Format.fprintf fmt "program %s(%s):\n" p.name (String.concat ", " p.params);
  List.iter (pp_node "  " fmt) p.body
