type key = string * int array

(* Specialised hashing: FNV-1a over the name hash and the index vector,
   avoiding the polymorphic hash's tag-walking on every probe. *)
module Key = struct
  type t = key

  let equal (a, u) (b, v) =
    String.equal a b
    && Array.length u = Array.length v
    &&
    let rec go i = i < 0 || (u.(i) = v.(i) && go (i - 1)) in
    go (Array.length u - 1)

  let hash (a, u) =
    let h = ref (Hashtbl.hash a) in
    for i = 0 to Array.length u - 1 do
      h := (!h lxor u.(i)) * 0x01000193
    done;
    !h land max_int
end

module H = Hashtbl.Make (Key)

type t = { ids : int H.t; mutable rev : key array; mutable n : int }

let dummy_key : key = ("", [||])

let create ?(size = 1024) () =
  { ids = H.create size; rev = Array.make (max size 1) dummy_key; n = 0 }

let intern t k =
  match H.find_opt t.ids k with
  | Some id -> id
  | None ->
      let id = t.n in
      if id = Array.length t.rev then begin
        let bigger = Array.make (2 * id) dummy_key in
        Array.blit t.rev 0 bigger 0 id;
        t.rev <- bigger
      end;
      t.rev.(id) <- k;
      t.n <- id + 1;
      H.add t.ids k id;
      id

let find_opt t k = H.find_opt t.ids k

let key t id =
  if id < 0 || id >= t.n then invalid_arg "Interner.key: id out of range";
  t.rev.(id)

let count t = t.n
