(* The centrepiece integration tests: the automatically derived bounds must
   (1) reproduce the paper's closed-form theorems where stated exactly
   (MGS/Theorem 5), (2) match the paper's asymptotic shapes on all kernels,
   and (3) never exceed the I/O actually measured for valid schedules - the
   lower-bound sandwich. *)

module D = Iolb.Derive
module R = Iolb_symbolic.Ratfun
module P = Iolb_symbolic.Polynomial
module PF = Iolb.Paper_formulas
module Report = Iolb.Report
module Game = Iolb_pebble.Game
module Cdag = Iolb_cdag.Cdag

let analysis name = Report.analyze (Report.find name)

let find_bound (a : Report.analysis) tech =
  List.find (fun (b : D.t) -> b.technique = tech) a.bounds

let test_mgs_theorem5_exact () =
  let a = analysis "mgs" in
  let main = find_bound a D.Hourglass in
  Alcotest.(check bool)
    "main bound = M^2 N(N-1) / (8(S+M))" true
    (R.equal main.formula (PF.theorem_main PF.Mgs));
  let small = find_bound a D.Hourglass_small_s in
  Alcotest.(check bool)
    "small-cache bound = (M-S) N(N-1) / 4" true
    (R.equal small.formula (Option.get (PF.theorem_small PF.Mgs)))

let close ~tol a b = Float.abs (a -. b) <= tol *. Float.max (Float.abs a) (Float.abs b)

let test_theorem_shapes () =
  (* On every kernel, the engine's hourglass bound stays within a constant
     factor of the paper's theorem formula across a wide grid; the factor
     may differ from 1 (the engine's and the paper's accounting of
     sub-leading terms differ) but must be bounded and stable. *)
  List.iter
    (fun (kernel, lo, hi) ->
      let entry = Report.find (PF.kernel_name kernel) in
      let a = Report.analyze entry in
      List.iter
        (fun (m, n, s) ->
          match Report.eval_best a ~technique:`Hourglass ~m ~n ~s with
          | None -> Alcotest.failf "no hourglass bound for %s" entry.display
          | Some engine ->
              (* The paper's best applicable bound: the main theorem, or its
                 small-cache variant where one is stated and larger. *)
              let paper =
                let main = PF.eval_at (PF.theorem_main kernel) ~m ~n ~s in
                let small_applicable =
                  (* MGS's variant needs S <= M; GEHD2's needs N >> S. *)
                  match kernel with
                  | PF.Mgs -> s <= m
                  | PF.Gehd2 -> 2 * s <= n
                  | _ -> false
                in
                match PF.theorem_small kernel with
                | Some f when small_applicable ->
                    Float.max main (PF.eval_at f ~m ~n ~s)
                | _ -> main
              in
              let ratio = engine /. paper in
              Alcotest.(check bool)
                (Printf.sprintf "%s m=%d n=%d s=%d ratio=%.3f in [%.2f, %.2f]"
                   entry.display m n s ratio lo hi)
                true
                (ratio >= lo && ratio <= hi))
        entry.grid)
    [
      (PF.Mgs, 0.9, 1.6);
      (PF.A2v, 0.5, 10.);
      (PF.V2q, 0.5, 10.);
      (PF.Gebd2, 0.5, 10.);
      (PF.Gehd2, 0.5, 10.);
    ]

let test_improvement_ratio_parametric () =
  (* Section 5.1: for M << S the new bound improves on the classical one by
     Theta(M / sqrt S): the measured improvement must grow linearly with M
     at fixed S. *)
  let a = analysis "mgs" in
  let ratio m s =
    let hg = Option.get (Report.eval_best a ~technique:`Hourglass ~m ~n:32 ~s) in
    let cl = Option.get (Report.eval_best a ~technique:`Classical ~m ~n:32 ~s) in
    hg /. cl
  in
  let s = 65536 in
  let r1 = ratio 256 s and r2 = ratio 512 s and r4 = ratio 1024 s in
  Alcotest.(check bool)
    (Printf.sprintf "ratio doubles with M (%.2f %.2f %.2f)" r1 r2 r4)
    true
    (close ~tol:0.25 (r2 /. r1) 2. && close ~tol:0.25 (r4 /. r2) 2.)

let test_gemm_classical_shape () =
  (* The baseline: gemm gets the classical Theta(MNK / sqrt S) bound and no
     hourglass bound. *)
  let bounds =
    D.analyze ~verify_params:[ ("M", 4); ("N", 4); ("K", 4) ]
      Iolb_kernels.Gemm.spec
  in
  Alcotest.(check bool) "only classical" true
    (List.for_all (fun (b : D.t) -> b.technique = D.Classical) bounds);
  let b = List.hd bounds in
  let at m n k s =
    D.eval b ~params:[ ("M", m); ("N", n); ("K", k) ] ~s
  in
  (* Quadrupling S halves the bound (1/sqrt S shape). *)
  Alcotest.(check bool) "1/sqrt(S) scaling" true
    (close ~tol:0.01 (at 64 64 64 256 /. at 64 64 64 1024) 2.)

(* The sandwich: a lower bound must never exceed the I/O of any valid
   schedule, measured exactly by the pebble game. *)
let test_sandwich_pebble_game () =
  List.iter
    (fun (name, params, m, n, ss) ->
      let entry = Report.find name in
      let a = Report.analyze entry in
      let cdag = Cdag.of_program ~params entry.program in
      List.iter
        (fun s ->
          let schedules =
            Game.program_schedule cdag
            :: List.map (fun seed -> Game.random_topological ~seed cdag) [ 1; 2 ]
          in
          List.iter
            (fun schedule ->
              let measured = (Game.run cdag ~s ~schedule).loads in
              List.iter
                (fun tech ->
                  match Report.eval_best a ~technique:tech ~m ~n ~s with
                  | None -> ()
                  | Some bound ->
                      Alcotest.(check bool)
                        (Printf.sprintf "%s s=%d: bound %.1f <= measured %d"
                           name s bound measured)
                        true
                        (bound <= float_of_int measured +. 1e-9))
                [ `Classical; `Hourglass ])
            schedules)
        ss)
    [
      ("mgs", [ ("M", 10); ("N", 6) ], 10, 6, [ 12; 16; 24 ]);
      ("qr_hh_a2v", [ ("M", 10); ("N", 6) ], 10, 6, [ 12; 16; 24 ]);
      ("qr_hh_v2q", [ ("M", 10); ("N", 6) ], 10, 6, [ 12; 16; 24 ]);
      ("gebd2", [ ("M", 10); ("N", 6) ], 10, 6, [ 12; 16; 24 ]);
      ("gehd2", [ ("N", 10); ("M", 4) ], 0, 10, [ 12; 16; 24 ]);
    ]

(* Upper bound side: the tiled MGS ordering's measured I/O must lie above
   the derived lower bound and below the paper's predicted cost envelope. *)
let test_sandwich_tiled_mgs () =
  let m = 24 and n = 16 in
  let a = analysis "mgs" in
  List.iter
    (fun s ->
      let b = max 1 ((s / m) - 1) in
      let b = if n mod b = 0 then b else 4 in
      let spec = Iolb_kernels.Mgs.tiled_spec ~m ~n ~b in
      let trace = Iolb_pebble.Trace.of_program ~params:[] spec in
      let stats = Iolb_pebble.Cache.opt ~size:s trace in
      let lower = Option.get (Report.eval_best a ~technique:`Hourglass ~m ~n ~s) in
      Alcotest.(check bool)
        (Printf.sprintf "s=%d: LB %.1f <= tiled loads %d" s lower stats.loads)
        true
        (lower <= float_of_int stats.loads +. 1e-9))
    [ 32; 64; 128 ]

(* classical_deepest must (1) derive only for the statements at the
   maximal loop depth - the ones whose instance count dominates - and
   (2) cover every statement tied at that depth. *)
let test_classical_deepest_filters_depth () =
  let module A = Iolb_poly.Affine in
  let module Access = Iolb_ir.Access in
  let module Program = Iolb_ir.Program in
  let v = A.var and c = A.const in
  let deep name out =
    Program.stmt name
      ~writes:[ Access.make out [ v "i"; v "j" ] ]
      ~reads:
        [
          Access.make "A" [ v "i"; v "k" ];
          Access.make "B" [ v "k"; v "j" ];
          Access.make out [ v "i"; v "j" ];
        ]
  in
  let prog =
    Program.make ~name:"deepest" ~params:[ "N" ]
      ~assumptions:[ Iolb_poly.Constr.ge_of (v "N") (c 1) ]
      [
        Program.loop_lt "i" (c 0) (v "N")
          [
            Program.loop_lt "j" (c 0) (v "N")
              [
                Program.loop_lt "k" (c 0) (v "N") [ deep "C" "C1"; deep "D" "D1" ];
              ];
            (* depth 1: must not contribute a classical bound *)
            Program.stmt "H"
              ~writes:[ Access.make "E" [ v "i" ] ]
              ~reads:[ Access.make "F" [ v "i" ] ];
          ];
      ]
  in
  let bounds = D.classical_deepest prog in
  let stmts = List.sort compare (List.map (fun (b : D.t) -> b.stmt) bounds) in
  Alcotest.(check (list string))
    "one bound per deepest statement, none for the shallow one"
    [ "C"; "D" ] stmts;
  List.iter
    (fun (b : D.t) ->
      Alcotest.(check bool) "classical technique" true
        (b.technique = D.Classical);
      Alcotest.(check bool) "unconditional" true (b.s_max = None);
      (* A GEMM-shaped statement has rho = 3/2: the bound at N=32, S=16
         must be positive and sit near N^3/sqrt(S) in order of magnitude. *)
      let value = D.eval b ~params:[ ("N", 32) ] ~s:16 in
      Alcotest.(check bool)
        (Printf.sprintf "%s bound positive (%.1f)" b.stmt value)
        true (value > 0.))
    bounds

let test_classical_deepest_matches_registry () =
  (* On the paper kernels the classical half of [analyze] is exactly
     [classical_deepest]: same statements, same formulas. *)
  List.iter
    (fun (entry : Report.entry) ->
      let a = Report.analyze entry in
      let from_analyze =
        List.filter (fun (b : D.t) -> b.technique = D.Classical) a.bounds
      in
      (* [analyze] post-processes every formula with the entry's
         [finalize] (e.g. GEHD2 pins the loop-split parameter); apply it
         to the direct derivation before comparing. *)
      let direct =
        List.map
          (fun (b : D.t) -> { b with D.formula = entry.finalize b.formula })
          (D.classical_deepest entry.program)
      in
      Alcotest.(check int)
        (entry.display ^ ": same classical bound count")
        (List.length direct) (List.length from_analyze);
      List.iter2
        (fun (x : D.t) (y : D.t) ->
          Alcotest.(check string) "same statement" x.stmt y.stmt;
          Alcotest.(check bool) "same formula" true (R.equal x.formula y.formula))
        direct from_analyze)
    Report.registry

(* A synthetic bound over a single split parameter, for exercising the
   split search without the full derivation pipeline. *)
let synthetic_bound formula =
  {
    D.program = "synthetic";
    stmt = "T";
    technique = D.Classical;
    formula;
    validity = "any S >= 1";
    valid = { D.s_lo = R.one; s_hi = None };
    s_max = None;
    log = [];
  }

let test_optimize_split_tie_break () =
  (* The documented contract: the first candidate (in list order) attaining
     the maximum wins, at every worker count.  f(M) = 100 - (M-2)^2 (M-6)^2
     has two exact maxima (value 100 at M = 2 and M = 6); a constant
     formula ties every candidate. *)
  let sq p = P.mul p p in
  let shifted k = P.sub (P.var "M") (P.of_int k) in
  let two_peaks =
    R.of_poly (P.sub (P.of_int 100) (P.mul (sq (shifted 2)) (sq (shifted 6))))
  in
  let flat = R.of_int 7 in
  List.iter
    (fun jobs ->
      let tag fmt = Printf.sprintf "jobs=%d: %s" jobs fmt in
      (match
         D.optimize_split ~jobs (synthetic_bound two_peaks) ~param:"M"
           ~candidates:[ 1; 2; 3; 4; 5; 6; 7; 8 ] ~params:[] ~s:4
       with
      | Some (m, v) ->
          Alcotest.(check int) (tag "first of the two peaks") 2 m;
          Alcotest.(check (float 0.)) (tag "peak value") 100. v
      | None -> Alcotest.fail (tag "two-peak search found nothing"));
      match
        D.optimize_split ~jobs (synthetic_bound flat) ~param:"M"
          ~candidates:[ 3; 1; 5 ] ~params:[] ~s:4
      with
      | Some (m, v) ->
          (* All candidates tie: list order decides, not numeric order. *)
          Alcotest.(check int) (tag "first listed candidate wins the tie") 3 m;
          Alcotest.(check (float 0.)) (tag "tie value") 7. v
      | None -> Alcotest.fail (tag "flat search found nothing"))
    [ 1; 2; 3; 4; 8 ]

(* Differential check of the region-based split search against brute-force
   enumeration on GEHD2's real free-M bounds, over random (n, s).  Mirrors
   the [split-regions] oracle in lib/check, but pinned to the kernel the
   bench optimises. *)
let split_regions_match_enumeration =
  let bounds =
    lazy
      (List.filter
         (fun (b : D.t) -> List.mem "M" (R.vars b.formula))
         (D.analyze
            ~verify_params:[ ("N", 9); ("M", 3) ]
            Iolb_kernels.Gehd2.split_spec))
  in
  let gen = QCheck2.Gen.(pair (int_range 10 60) (int_range 2 512)) in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"optimize_split_regions = enumeration (gehd2)"
       ~count:25 gen (fun (n, s) ->
         let lo = 1 and hi = n - 3 in
         let full = List.init (hi - lo + 1) (fun i -> lo + i) in
         List.for_all
           (fun (b : D.t) ->
             let brute =
               D.optimize_split b ~param:"M" ~candidates:full
                 ~params:[ ("N", n) ] ~s
             in
             let region =
               D.optimize_split_regions b ~param:"M" ~lo ~hi
                 ~params:[ ("N", n) ] ~s
             in
             match (brute, region) with
             | None, None -> true
             | Some _, None | None, Some _ ->
                 QCheck2.Test.fail_reportf
                   "n=%d s=%d (%s): one search empty, the other not" n s
                   b.stmt
             | Some (bm, bv), Some r ->
                 (* Values must agree exactly (both paths evaluate the same
                    floats); a differing argmax is legal only on an exact
                    value tie, which value equality already certifies. *)
                 if bv <> r.D.split_value then
                   QCheck2.Test.fail_reportf
                     "n=%d s=%d (%s): brute M=%d -> %h, regions M=%d -> %h"
                     n s b.stmt bm bv r.D.split r.D.split_value
                 else if r.D.evaluated > List.length full then
                   QCheck2.Test.fail_reportf
                     "n=%d s=%d (%s): regions evaluated %d > %d candidates"
                     n s b.stmt r.D.evaluated (List.length full)
                 else true)
           (Lazy.force bounds)))

let suite =
  [
    Alcotest.test_case "MGS = Theorem 5 exactly (both regimes)" `Quick
      test_mgs_theorem5_exact;
    Alcotest.test_case "classical_deepest filters by loop depth" `Quick
      test_classical_deepest_filters_depth;
    Alcotest.test_case "classical_deepest = classical half of analyze" `Quick
      test_classical_deepest_matches_registry;
    Alcotest.test_case "all kernels match theorem shapes" `Quick
      test_theorem_shapes;
    Alcotest.test_case "improvement ratio grows like M" `Quick
      test_improvement_ratio_parametric;
    Alcotest.test_case "gemm stays classical" `Quick test_gemm_classical_shape;
    Alcotest.test_case "lower bound <= pebble-game I/O (all kernels)" `Quick
      test_sandwich_pebble_game;
    Alcotest.test_case "lower bound <= tiled MGS I/O" `Quick
      test_sandwich_tiled_mgs;
    Alcotest.test_case "optimize_split: first maximum wins at every jobs width"
      `Quick test_optimize_split_tie_break;
    split_regions_match_enumeration;
  ]
