(* Gallery: run the engine over every built-in kernel - the five hourglass
   kernels of the paper and the nine baselines - and print one line per
   derived bound, making the landscape visible at a glance: which kernels
   get the parametric hourglass improvement, which stay classical, and
   which defeat the K-partitioning method entirely.

   Run with:  dune exec examples/bound_gallery.exe *)

module D = Iolb.Derive
module R = Iolb_symbolic.Ratfun
module P = Iolb_symbolic.Polynomial
module Report = Iolb.Report

let leading (r : R.t) = R.make (P.leading_terms (R.num r)) (P.leading_terms (R.den r))

let tech_name = function
  | D.Classical -> "classical"
  | D.Hourglass -> "hourglass"
  | D.Hourglass_small_s -> "hourglass small-S"
  | D.Trivial -> "trivial (input footprint)"

(* Keep the strongest bound per technique, judged at a generic reference
   point (every parameter 64, S = 16). *)
let reference_value (b : D.t) =
  let env x = if x = "S" then 16. else if x = "sqrtS" then 4. else 64. in
  try R.eval_float_env env b.formula with _ -> neg_infinity

let dedup_best bounds =
  List.fold_left
    (fun acc (b : D.t) ->
      match
        List.partition (fun (b' : D.t) -> b'.technique = b.technique) acc
      with
      | [], _ -> acc @ [ b ]
      | [ prev ], rest ->
          if reference_value b > reference_value prev then rest @ [ b ] else acc
      | _ -> acc)
    [] bounds

let show_bounds name bounds =
  if bounds = [] then
    Printf.printf "%-12s   (no K-partition bound: matvec/stencil class)\n" name
  else
    List.iter
      (fun (b : D.t) ->
        Format.printf "%-12s %-18s Q >= %s@." name (tech_name b.technique)
          (R.to_string (leading b.formula)))
      bounds

let () =
  print_endline "=== paper kernels (hourglass) ===";
  List.iter
    (fun entry ->
      let a = Report.analyze entry in
      show_bounds
        (Iolb.Paper_formulas.kernel_name entry.Report.kernel)
        (dedup_best a.Report.bounds))
    Report.registry;
  print_endline "";
  print_endline "=== baselines ===";
  List.iter
    (fun (name, prog, verify_params) ->
      let bounds = D.analyze ~verify_params prog in
      show_bounds name (dedup_best bounds))
    Report.baselines
