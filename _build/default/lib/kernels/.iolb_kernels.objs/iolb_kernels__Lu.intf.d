lib/kernels/lu.mli: Iolb_ir Matrix
