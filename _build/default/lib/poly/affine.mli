(** Affine expressions with integer coefficients over named variables.

    A variable may be an iteration dimension (e.g. [i], [j], [k]) or a
    program parameter (e.g. [M], [N]); the distinction is made by the
    context of use, not by the representation. *)

type t

val zero : t
val const : int -> t
val var : string -> t

(** [term c x] is the expression [c * x]. *)
val term : int -> string -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t

(** [coeff x e] is the coefficient of variable [x] in [e] (0 if absent). *)
val coeff : string -> t -> int

val constant : t -> int

(** [vars e] is the sorted list of variables with non-zero coefficient. *)
val vars : t -> string list

(** [is_constant e] is [Some c] iff [e] has no variables. *)
val is_constant : t -> int option

val equal : t -> t -> bool
val compare : t -> t -> int

(** [eval env e] with [env] total on [vars e]. @raise Not_found otherwise. *)
val eval : (string -> int) -> t -> int

(** [eval_partial env e] substitutes the variables on which [env] is defined
    and leaves the others symbolic. *)
val eval_partial : (string -> int option) -> t -> t

(** [subst x e' e] replaces variable [x] by expression [e']. *)
val subst : string -> t -> t -> t

(** Exact conversion to a symbolic polynomial (degree <= 1). *)
val to_polynomial : t -> Iolb_symbolic.Polynomial.t

(** [of_terms terms const] builds [sum c_i * x_i + const]. *)
val of_terms : (int * string) list -> int -> t

(** Inverse view of {!of_terms}: the terms in increasing variable order. *)
val terms : t -> (int * string) list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
