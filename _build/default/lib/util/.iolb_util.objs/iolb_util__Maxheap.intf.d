lib/util/maxheap.mli:
