lib/symbolic/polynomial.ml: Array Format Hashtbl Iolb_util List Map Monomial Set Stdlib String
