module Budget = Iolb_util.Budget
module Json = Iolb_util.Json
module D = Iolb.Derive

type failure = {
  seed : int;
  prop : string;
  detail : string;
  spec : Spec.t;
  shrunk : Spec.t;
  shrunk_detail : string;
  shrunk_source : string;
  shrink_steps : int;
}

type coverage = {
  nest_specs : int;
  hourglass_specs : int;
  hourglass_detected : int;
  hourglass_bounds : int;
  classical_bounds : int;
}

type report = {
  base_seed : int;
  count : int;
  props : string list;
  passed : int;
  failed : int;
  skipped : int;
  budget_skips : int;
  failures : failure list;
  coverage : coverage;
}

let zero_coverage =
  {
    nest_specs = 0;
    hourglass_specs = 0;
    hourglass_detected = 0;
    hourglass_bounds = 0;
    classical_bounds = 0;
  }

(* Evaluate one oracle on one spec under a fresh budget.  Budget
   exhaustion is a degradation, not a counterexample: the engines
   advertise it as a typed, expected outcome, so the certifier records a
   skip. *)
let eval_prop ~budget oracle spec =
  match
    let ctx = Oracle.make_ctx ~budget:(budget ()) spec in
    Oracle.run oracle ctx
  with
  | outcome -> outcome
  | exception Budget.Exhausted stage ->
      Oracle.Skip ("budget exhausted: " ^ Budget.stage_name stage)

(* Does [oracle] still fail on [spec]?  Used as the shrinking predicate;
   a candidate that runs out of budget or merely skips does not count as
   reproducing the failure. *)
let fails_with ~budget oracle spec =
  match eval_prop ~budget oracle spec with
  | Oracle.Fail _ -> true
  | Oracle.Pass | Oracle.Skip _ -> false

let fail_detail ~budget oracle spec =
  match eval_prop ~budget oracle spec with
  | Oracle.Fail d -> d
  | Oracle.Pass | Oracle.Skip _ -> "not reproduced"

(* Coverage accounting per spec.  For hourglass-family specs the
   detection and derivation are forced even when no selected property
   needs them, so the coverage counters are meaningful for any [--props]
   selection. *)
let cover ~budget cov spec =
  match spec with
  | Spec.Nest _ -> { cov with nest_specs = cov.nest_specs + 1 }
  | Spec.Hourglass _ -> (
      let cov = { cov with hourglass_specs = cov.hourglass_specs + 1 } in
      match
        let ctx = Oracle.make_ctx ~budget:(budget ()) spec in
        (Oracle.ctx_hourglasses ctx, Oracle.ctx_bounds ctx)
      with
      | exception Budget.Exhausted _ -> cov
      | hgs, bounds ->
          let has t =
            List.exists (fun (b : D.t) -> b.D.technique = t) bounds
          in
          let cov =
            if hgs <> [] then
              { cov with hourglass_detected = cov.hourglass_detected + 1 }
            else cov
          in
          let cov =
            if has D.Hourglass || has D.Hourglass_small_s then
              { cov with hourglass_bounds = cov.hourglass_bounds + 1 }
            else cov
          in
          if has D.Classical then
            { cov with classical_bounds = cov.classical_bounds + 1 }
          else cov)

let run ?(budget = fun () -> Budget.unlimited) ?(max_failures = 5) ?progress
    ~count ~seed ~props () =
  let passed = ref 0
  and failed = ref 0
  and skipped = ref 0
  and budget_skips = ref 0 in
  let failures = ref [] in
  let coverage = ref zero_coverage in
  for s = seed to seed + count - 1 do
    (match progress with Some f -> f s | None -> ());
    let spec = Gen.spec ~seed:s in
    coverage := cover ~budget !coverage spec;
    List.iter
      (fun (oracle : Oracle.t) ->
        match eval_prop ~budget oracle spec with
        | Oracle.Pass -> incr passed
        | Oracle.Skip reason ->
            incr skipped;
            if String.length reason >= 6 && String.sub reason 0 6 = "budget"
            then incr budget_skips
        | Oracle.Fail detail ->
            incr failed;
            if List.length !failures < max_failures then (
              let shrunk, shrink_steps =
                Shrink.minimize ~fails:(fails_with ~budget oracle) spec
              in
              let shrunk_detail =
                if Spec.equal shrunk spec then detail
                else fail_detail ~budget oracle shrunk
              in
              (* The minimal counterexample as a saveable .iolb source,
                 so a failure replays through the textual front end too. *)
              let shrunk_source =
                let prog, params = Spec.to_program shrunk in
                Iolb_front.Front.print ~verify:params prog
              in
              failures :=
                {
                  seed = s;
                  prop = oracle.Oracle.name;
                  detail;
                  spec;
                  shrunk;
                  shrunk_detail;
                  shrunk_source;
                  shrink_steps;
                }
                :: !failures))
      props
  done;
  {
    base_seed = seed;
    count;
    props = List.map (fun (o : Oracle.t) -> o.Oracle.name) props;
    passed = !passed;
    failed = !failed;
    skipped = !skipped;
    budget_skips = !budget_skips;
    failures = List.rev !failures;
    coverage = !coverage;
  }

let ok r = r.failed = 0

let failure_to_json f =
  Json.Obj
    [
      ("seed", Json.Int f.seed);
      ("prop", Json.String f.prop);
      ("detail", Json.String f.detail);
      ("spec", Spec.to_json f.spec);
      ("shrunk", Spec.to_json f.shrunk);
      ("shrunk_detail", Json.String f.shrunk_detail);
      ("shrunk_source", Json.String f.shrunk_source);
      ("shrink_steps", Json.Int f.shrink_steps);
      ( "replay",
        Json.String (Printf.sprintf "iolb check --seed %d --count 1" f.seed) );
    ]

let to_json r =
  Json.Obj
    [
      ("seed", Json.Int r.base_seed);
      ("count", Json.Int r.count);
      ("props", Json.List (List.map (fun p -> Json.String p) r.props));
      ("passed", Json.Int r.passed);
      ("failed", Json.Int r.failed);
      ("skipped", Json.Int r.skipped);
      ("budget_skips", Json.Int r.budget_skips);
      ("failures", Json.List (List.map failure_to_json r.failures));
      ( "coverage",
        Json.Obj
          [
            ("nest_specs", Json.Int r.coverage.nest_specs);
            ("hourglass_specs", Json.Int r.coverage.hourglass_specs);
            ("hourglass_detected", Json.Int r.coverage.hourglass_detected);
            ("hourglass_bounds", Json.Int r.coverage.hourglass_bounds);
            ("classical_bounds", Json.Int r.coverage.classical_bounds);
          ] );
      ("ok", Json.Bool (ok r));
    ]

let pp fmt r =
  Format.fprintf fmt
    "@[<v>check: %d specs from seed %d, %d properties@,\
     passed %d, failed %d, skipped %d (%d on budget)@,\
     coverage: %d nest / %d hourglass specs; %d detected, %d hourglass \
     bounds, %d classical bounds@]"
    r.count r.base_seed (List.length r.props) r.passed r.failed r.skipped
    r.budget_skips r.coverage.nest_specs r.coverage.hourglass_specs
    r.coverage.hourglass_detected r.coverage.hourglass_bounds
    r.coverage.classical_bounds;
  List.iter
    (fun f ->
      Format.fprintf fmt
        "@,@[<v2>FAIL seed %d, property %s:@,%s@,spec: %s@,shrunk (%d \
         steps): %s@,on shrunk: %s@,reproducer (save as FAIL.iolb, rerun \
         with iolb bounds --file FAIL.iolb):"
        f.seed f.prop f.detail (Spec.to_string f.spec) f.shrink_steps
        (Spec.to_string f.shrunk) f.shrunk_detail;
      List.iter
        (fun line -> Format.fprintf fmt "@,  %s" line)
        (String.split_on_char '\n' (String.trim f.shrunk_source));
      Format.fprintf fmt "@]")
    r.failures
