module Program = Iolb_ir.Program
module Interner = Iolb_ir.Interner
module Budget = Iolb_util.Budget

type kind =
  | Input of string * int array
  | Compute of string * int array

type t = {
  kinds : kind array;
  preds : int array array;
  succs : int array array;
  preds_off : int array; (* CSR mirror of [preds]: offsets, length n+1 *)
  preds_flat : int array;
  succs_off : int array;
  succs_flat : int array;
  order : int array; (* topological: program order with inputs at first use *)
  by_stmt : (string, int list) Hashtbl.t;
  instances : Interner.t; (* (stmt name, vec) -> dense instance id *)
  instance_node : int array; (* dense instance id -> node id *)
  n_inputs : int;
}

(* Flatten an adjacency array-of-arrays into CSR (offsets + one flat
   array): engines whose inner loops walk edges per scheduled node index
   one contiguous array instead of chasing a per-node pointer. *)
let csr_of adj =
  let n = Array.length adj in
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + Array.length adj.(i)
  done;
  let flat = Array.make (max off.(n) 1) 0 in
  Array.iteri (fun i a -> Array.blit a 0 flat off.(i) (Array.length a)) adj;
  (off, flat)

(* Int arrays indexed by interned ids, growing with the interner. *)
let ensure arr len =
  if len <= Array.length !arr then ()
  else begin
    let bigger = Array.make (max len (2 * Array.length !arr)) (-1) in
    Array.blit !arr 0 bigger 0 (Array.length !arr);
    arr := bigger
  end

let dummy_kind = Input ("", [||])

let of_program ?(budget = Budget.unlimited) ~params p =
  (* Node storage grows geometrically; node ids are assigned in exactly
     the order the old list-based builder assigned them (input nodes at
     first read, in load order, before their compute node), so node
     numbering - and hence every DOT and report output - is unchanged. *)
  let kinds = ref (Array.make 1024 dummy_kind) in
  let preds = ref (Array.make 1024 [||]) in
  let n = ref 0 in
  (* Data cells and statement instances are interned to dense ids once,
     here, so dependence resolution runs on int-indexed arrays instead of
     hashing (string * int array) keys per access.  [intern_view] probes
     with the iterator's borrowed buffers and copies only on first
     sight. *)
  let cells = Interner.create () in
  let last_writer = ref (Array.make 1024 (-1)) in
  let instances = Interner.create () in
  let instance_node = ref (Array.make 1024 (-1)) in
  let inputs = ref 0 in
  let add_node kind pred_arr =
    let id = !n in
    incr n;
    Budget.check_node_cap budget Budget.Cdag_build !n;
    if id >= Array.length !kinds then begin
      let cap = 2 * Array.length !kinds in
      let nk = Array.make cap dummy_kind and np = Array.make cap [||] in
      Array.blit !kinds 0 nk 0 id;
      Array.blit !preds 0 np 0 id;
      kinds := nk;
      preds := np
    end;
    !kinds.(id) <- kind;
    !preds.(id) <- pred_arr;
    id
  in
  (* Reusable predecessor buffer, deduplicated in place per instance. *)
  let pbuf = ref (Array.make 16 0) in
  let pcount = ref 0 in
  (* Per-statement node lists, with a one-entry memo keyed by physical
     name equality: consecutive instances of the same statement skip the
     hash lookup entirely. *)
  let by_acc : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let last_name = ref "" in
  let last_ids = ref (ref []) in
  let stmt_ids name =
    if name == !last_name then !last_ids
    else begin
      let ids =
        match Hashtbl.find_opt by_acc name with
        | Some ids -> ids
        | None ->
            let ids = ref [] in
            Hashtbl.add by_acc name ids;
            ids
      in
      last_name := name;
      last_ids := ids;
      ids
    end
  in
  let on_load a idx =
    let cid = Interner.intern_view cells a idx in
    ensure last_writer (cid + 1);
    let w = !last_writer.(cid) in
    let pred =
      if w >= 0 then w
      else begin
        (* first sight of this cell: it is a program input; share the
           interner's owned copy of the index vector *)
        let _, owned = Interner.key cells cid in
        let id = add_node (Input (a, owned)) [||] in
        incr inputs;
        !last_writer.(cid) <- id;
        id
      end
    in
    if !pcount >= Array.length !pbuf then begin
      let bigger = Array.make (2 * Array.length !pbuf) 0 in
      Array.blit !pbuf 0 bigger 0 !pcount;
      pbuf := bigger
    end;
    !pbuf.(!pcount) <- pred;
    incr pcount
  in
  let on_stmt name vec =
    Budget.checkpoint budget Budget.Cdag_build;
    (* A value read twice by the same instance is a single dependence:
       insertion-sort the (tiny) buffer and drop duplicates in place. *)
    let b = !pbuf in
    let m = !pcount in
    for i = 1 to m - 1 do
      let v = b.(i) in
      let j = ref i in
      while !j > 0 && b.(!j - 1) > v do
        b.(!j) <- b.(!j - 1);
        decr j
      done;
      b.(!j) <- v
    done;
    let u = ref 0 in
    for i = 0 to m - 1 do
      if !u = 0 || b.(!u - 1) <> b.(i) then begin
        b.(!u) <- b.(i);
        incr u
      end
    done;
    let id = add_node (Compute (name, Array.copy vec)) (Array.sub b 0 !u) in
    pcount := 0;
    let iid = Interner.intern_view instances name vec in
    ensure instance_node (iid + 1);
    !instance_node.(iid) <- id;
    let ids = stmt_ids name in
    ids := id :: !ids
  in
  let on_store a idx =
    let cid = Interner.intern_view cells a idx in
    ensure last_writer (cid + 1);
    !last_writer.(cid) <- !n - 1
  in
  Program.iter_cells ~params p ~on_load ~on_stmt ~on_store;
  let nn = !n in
  let kinds = Array.sub !kinds 0 nn in
  let preds = Array.sub !preds 0 nn in
  (* successor lists in two passes: exact counts, then fill in id order
     (ascending, as the old rev-list construction produced) *)
  let deg = Array.make nn 0 in
  Array.iter
    (fun ps -> Array.iter (fun p -> deg.(p) <- deg.(p) + 1) ps)
    preds;
  let succs = Array.map (fun d -> Array.make d 0) deg in
  let fill = Array.make nn 0 in
  Array.iteri
    (fun id ps ->
      Array.iter
        (fun p ->
          succs.(p).(fill.(p)) <- id;
          fill.(p) <- fill.(p) + 1)
        ps)
    preds;
  let by_stmt = Hashtbl.create 16 in
  Hashtbl.iter (fun s ids -> Hashtbl.replace by_stmt s (List.rev !ids)) by_acc;
  let preds_off, preds_flat = csr_of preds in
  let succs_off, succs_flat = csr_of succs in
  {
    kinds;
    preds;
    succs;
    preds_off;
    preds_flat;
    succs_off;
    succs_flat;
    order = Array.init nn Fun.id;
    by_stmt;
    instances;
    instance_node = Array.sub !instance_node 0 (Interner.count instances);
    n_inputs = !inputs;
  }

let of_program_checked ?budget ~params p =
  Iolb_util.Engine_error.guard (fun () -> of_program ?budget ~params p)

let n_nodes t = Array.length t.kinds
let kind t id = t.kinds.(id)
let preds t id = t.preds.(id)
let succs t id = t.succs.(id)
let preds_csr t = (t.preds_off, t.preds_flat)
let succs_csr t = (t.succs_off, t.succs_flat)
let program_order t = t.order

let nodes_of_stmt t name =
  try Hashtbl.find t.by_stmt name with Not_found -> []

let node_of_instance t name vec =
  Option.map
    (fun iid -> t.instance_node.(iid))
    (Interner.find_opt t.instances (name, vec))

let n_inputs t = t.n_inputs
let n_computes t = n_nodes t - t.n_inputs

let is_reachable t a b =
  if a = b then true
  else begin
    let visited = Array.make (n_nodes t) false in
    let queue = Queue.create () in
    Queue.add a queue;
    visited.(a) <- true;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun v ->
          if v = b then found := true
          else if not visited.(v) then begin
            visited.(v) <- true;
            Queue.add v queue
          end)
        t.succs.(u)
    done;
    !found
  end

type reachability = {
  g : t;
  mark : int array; (* epoch-stamped visited marks, reused across queries *)
  mutable epoch : int;
  mutable stack : int array;
}

let reachability t =
  {
    g = t;
    mark = Array.make (max 1 (n_nodes t)) 0;
    epoch = 0;
    stack = Array.make 1024 0;
  }

let reaches r a b =
  if a = b then true
  else begin
    let g = r.g in
    r.epoch <- r.epoch + 1;
    let e = r.epoch in
    let mark = r.mark in
    let sp = ref 0 in
    let push v =
      if !sp >= Array.length r.stack then begin
        let bigger = Array.make (2 * Array.length r.stack) 0 in
        Array.blit r.stack 0 bigger 0 !sp;
        r.stack <- bigger
      end;
      r.stack.(!sp) <- v;
      incr sp
    in
    mark.(a) <- e;
    push a;
    let found = ref false in
    while (not !found) && !sp > 0 do
      decr sp;
      let ss = g.succs.(r.stack.(!sp)) in
      let len = Array.length ss in
      let i = ref 0 in
      while (not !found) && !i < len do
        let v = ss.(!i) in
        if v = b then found := true
        else if mark.(v) <> e then begin
          mark.(v) <- e;
          push v
        end;
        incr i
      done
    done;
    !found
  end

let convex_closure t nodes =
  (* v is in the closure iff it reaches some member and is reached by some
     member.  Compute the forward set of [nodes] and the backward set, then
     intersect. *)
  let n = n_nodes t in
  let forward = Array.make n false and backward = Array.make n false in
  let bfs mark edges starts =
    let queue = Queue.create () in
    List.iter
      (fun s ->
        if not mark.(s) then begin
          mark.(s) <- true;
          Queue.add s queue
        end)
      starts;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun v ->
          if not mark.(v) then begin
            mark.(v) <- true;
            Queue.add v queue
          end)
        edges.(u)
    done
  in
  bfs forward t.succs nodes;
  bfs backward t.preds nodes;
  let out = ref [] in
  for id = n - 1 downto 0 do
    if forward.(id) && backward.(id) then out := id :: !out
  done;
  !out

let inset t nodes =
  let member = Hashtbl.create (List.length nodes) in
  List.iter (fun id -> Hashtbl.replace member id ()) nodes;
  let outside = Hashtbl.create 64 in
  List.iter
    (fun id ->
      Array.iter
        (fun p -> if not (Hashtbl.mem member p) then Hashtbl.replace outside p ())
        t.preds.(id))
    nodes;
  Hashtbl.length outside

let pp_stats fmt t =
  Format.fprintf fmt "nodes: %d (inputs: %d, computes: %d), edges: %d"
    (n_nodes t) t.n_inputs (n_computes t)
    (Array.fold_left (fun acc ps -> acc + Array.length ps) 0 t.preds)
