let () =
  Alcotest.run "iolb"
    [
      ("rat", Test_rat.suite);
      ("polynomial", Test_polynomial.suite);
      ("ratfun", Test_ratfun.suite);
      ("sturm", Test_sturm.suite);
      ("simplex", Test_simplex.suite);
      ("psimplex", Test_psimplex.suite);
      ("poly-sets", Test_poly.suite);
      ("program", Test_program.suite);
      ("cplan", Test_cplan.suite);
      ("kernels", Test_kernels.suite);
      ("kernel-errors", Test_kernel_errors.suite);
      ("fault-injection", Test_fault_injection.suite);
      ("hourglass", Test_hourglass.suite);
      ("cache", Test_cache.suite);
      ("sweep", Test_sweep.suite);
      ("pebble", Test_pebble.suite);
      ("derive", Test_derive.suite);
      ("baselines", Test_baselines.suite);
      ("bl", Test_bl.suite);
      ("phi", Test_phi.suite);
      ("matrix", Test_matrix.suite);
      ("asymptotic", Test_asymptotic.suite);
      ("report", Test_report.suite);
      ("small-modules", Test_small_modules.suite);
      ("deps", Test_deps.suite);
      ("upper-bounds", Test_upper_bounds.suite);
      ("misc", Test_misc.suite);
      ("parallel", Test_parallel.suite);
      ("serve", Test_serve.suite);
      ("lemma-empirical", Test_lemma_empirical.suite);
      ("check", Test_check.suite);
      ("front", Test_front.suite);
      ("fuzz", Test_fuzz.suite);
    ]
