(* Fault injection against the resilience boundary: a budget hook forces
   Budget.Exhausted at exactly the k-th checkpoint of each stage, for every
   paper kernel and two baselines.  The contract under attack:

   - no exception ever escapes a _checked entry point;
   - the outcome is either a typed error or a degraded-but-SOUND analysis:
     every surviving bound must stay below the I/O measured by playing the
     pebble game on a valid schedule at small concrete sizes. *)

module D = Iolb.Derive
module Report = Iolb.Report
module Budget = Iolb_util.Budget
module EE = Iolb_util.Engine_error
module Cdag = Iolb_cdag.Cdag
module Game = Iolb_pebble.Game
module Cache = Iolb_pebble.Cache
module Trace = Iolb_pebble.Trace
module K = Iolb_kernels

let stages =
  Budget.[ Poly_projection; Cdag_build; Pebble_game; Cache_sim; Derivation ]

(* Checkpoint indices to fire at: the first one, and one deep enough to land
   mid-loop in every stage that runs at all. *)
let ks = [ 1; 25 ]

let cache_sizes = [ 8; 32 ]

(* Measured pebble-game loads for an entry at its verification sizes, per
   cache size; memoized because every fault scenario re-checks against it.
   [None] when S is infeasible for the CDAG's fan-in. *)
let measured : (string * int, int option) Hashtbl.t = Hashtbl.create 32

let loads_at ~name ~params program s =
  match Hashtbl.find_opt measured (name, s) with
  | Some v -> v
  | None ->
      let v =
        let cdag = Cdag.of_program ~params program in
        match
          Game.run_checked cdag ~s ~schedule:(Game.program_schedule cdag)
        with
        | Ok r -> Some r.Game.loads
        | Error _ -> None
      in
      Hashtbl.add measured (name, s) v;
      v

(* Evaluation parameters differ from CDAG parameters for GEHD2: its derived
   formulas are finalized with the loop split M = N/2 - 1 substituted, so
   they are functions of N (and S) only. *)
let eval_params (entry : Report.entry) =
  match entry.kernel with
  | Iolb.Paper_formulas.Gehd2 ->
      List.filter (fun (name, _) -> name = "N") entry.verify_params
  | _ -> entry.verify_params

(* Any bound surviving a degraded analysis is still a lower bound on optimal
   I/O, hence dominated by the loads of EVERY valid schedule. *)
let check_sound ~ctx ~name ~cdag_params ~eval_params program bounds =
  List.iter
    (fun s ->
      match loads_at ~name ~params:cdag_params program s with
      | None -> ()
      | Some loads -> (
          match D.best ~params:eval_params ~s bounds with
          | None -> ()
          | Some b ->
              let v = D.eval b ~params:eval_params ~s in
              if v > float_of_int loads +. 1e-6 then
                Alcotest.failf
                  "%s: unsound degraded bound for %s at S=%d: %.2f > measured \
                   %d loads"
                  ctx name s v loads))
    cache_sizes

let describe stage k =
  Printf.sprintf "fault (%s, %d)" (Budget.stage_name stage) k

let test_ladder_faults_paper_kernels () =
  List.iter
    (fun (entry : Report.entry) ->
      List.iter
        (fun stage ->
          List.iter
            (fun k ->
              let budget = Budget.make ~fault:(stage, k) () in
              match Report.analyze_checked ~budget entry with
              | Ok a ->
                  check_sound
                    ~ctx:(describe stage k)
                    ~name:entry.display ~cdag_params:entry.verify_params
                    ~eval_params:(eval_params entry) entry.program a.bounds
              | Error (EE.Budget_exhausted _) -> ()
              | Error e ->
                  Alcotest.failf "%s on %s: unexpected error %s"
                    (describe stage k) entry.display (EE.to_string e)
              | exception e ->
                  Alcotest.failf "%s on %s: escaped exception %s"
                    (describe stage k) entry.display (Printexc.to_string e))
            ks)
        stages)
    Report.registry

let test_ladder_faults_baselines () =
  let baselines =
    List.filter
      (fun (name, _, _) -> name = "gemm" || name = "cholesky")
      Report.baselines
  in
  Alcotest.(check int) "two baselines under test" 2 (List.length baselines);
  List.iter
    (fun (name, program, verify_params) ->
      List.iter
        (fun stage ->
          List.iter
            (fun k ->
              let budget = Budget.make ~fault:(stage, k) () in
              match D.analyze_ladder ~budget ~verify_params program with
              | Ok (o : D.outcome) ->
                  check_sound
                    ~ctx:(describe stage k)
                    ~name ~cdag_params:verify_params ~eval_params:verify_params
                    program o.bounds
              | Error (EE.Budget_exhausted _) -> ()
              | Error e ->
                  Alcotest.failf "%s on %s: unexpected error %s"
                    (describe stage k) name (EE.to_string e)
              | exception e ->
                  Alcotest.failf "%s on %s: escaped exception %s"
                    (describe stage k) name (Printexc.to_string e))
            ks)
        stages)
    baselines

(* The ladder must actually degrade - not just error out - under a step
   budget that kills both partitioning rungs: MGS is updated in place, so
   the read-modify-written A qualifies for the trivial input-footprint
   rung. *)
let test_degrades_to_trivial () =
  let entry = Report.find "mgs" in
  let budget = Budget.make ~max_steps:200 () in
  match Report.analyze_checked ~budget entry with
  | Error e -> Alcotest.failf "expected degradation, got %s" (EE.to_string e)
  | Ok a ->
      Alcotest.(check bool) "degradation recorded" true (a.degradation <> None);
      Alcotest.(check bool) "trivial bound produced" true
        (List.exists (fun (b : D.t) -> b.technique = D.Trivial) a.bounds);
      check_sound ~ctx:"max-steps 200" ~name:entry.display
        ~cdag_params:entry.verify_params ~eval_params:(eval_params entry)
        entry.program a.bounds

(* A generous budget must not change the result at all: same bounds as the
   unlimited pipeline, and no degradation note. *)
let test_generous_budget_is_transparent () =
  List.iter
    (fun (entry : Report.entry) ->
      let unlimited = Report.analyze entry in
      let budget = Budget.make ~max_steps:100_000_000 ~timeout_ms:600_000 () in
      match Report.analyze_checked ~budget entry with
      | Error e -> Alcotest.failf "generous budget failed: %s" (EE.to_string e)
      | Ok a ->
          Alcotest.(check (option string))
            (entry.display ^ ": no degradation")
            None a.degradation;
          Alcotest.(check int)
            (entry.display ^ ": same number of bounds")
            (List.length unlimited.bounds)
            (List.length a.bounds);
          List.iter2
            (fun (b : D.t) (b' : D.t) ->
              Alcotest.(check bool)
                (entry.display ^ ": identical formulas")
                true
                (Iolb_symbolic.Ratfun.equal b.formula b'.formula))
            unlimited.bounds a.bounds)
    Report.registry

(* Pebble-game and cache-simulation checkpoints are not reached by analyze;
   inject into their own entry points. *)
let test_game_and_cache_faults () =
  let entry = Report.find "mgs" in
  let cdag = Cdag.of_program ~params:entry.verify_params entry.program in
  let schedule = Game.program_schedule cdag in
  (match
     Game.run_checked
       ~budget:(Budget.make ~fault:(Budget.Pebble_game, 3) ())
       cdag ~s:16 ~schedule
   with
  | Error (EE.Budget_exhausted Budget.Pebble_game) -> ()
  | Ok _ -> Alcotest.fail "pebble fault: expected budget exhaustion, got Ok"
  | Error e ->
      Alcotest.failf "pebble fault: wrong error %s" (EE.to_string e));
  let trace = Trace.of_program ~params:[] (K.Mgs.tiled_spec ~m:6 ~n:4 ~b:2) in
  List.iter
    (fun sim ->
      match
        sim ~budget:(Budget.make ~fault:(Budget.Cache_sim, 2) ()) ~size:8 trace
      with
      | Error (EE.Budget_exhausted Budget.Cache_sim) -> ()
      | Ok _ -> Alcotest.fail "cache fault: expected budget exhaustion, got Ok"
      | Error e ->
          Alcotest.failf "cache fault: wrong error %s" (EE.to_string e))
    [
      (fun ~budget ~size t -> Cache.lru_checked ~budget ~size t);
      (fun ~budget ~size t -> Cache.opt_checked ~budget ~size t);
    ];
  (* A budget kill mid-sweep degrades the same way: typed error, no escaped
     exception.  Fire both early (in the distance pass) and late (in the
     per-cell epilogue, past the trace length). *)
  List.iter
    (fun k ->
      match
        Iolb_pebble.Sweep.run_checked
          ~budget:(Budget.make ~fault:(Budget.Cache_sim, k) ())
          trace
      with
      | Error (EE.Budget_exhausted Budget.Cache_sim) -> ()
      | Ok _ ->
          Alcotest.failf "sweep fault %d: expected budget exhaustion, got Ok" k
      | Error e ->
          Alcotest.failf "sweep fault %d: wrong error %s" k (EE.to_string e))
    [ 2; Trace.length trace + 1 ];
  (* Trace building charges the Cdag_build stage. *)
  match
    EE.guard (fun () ->
        Trace.of_program
          ~budget:(Budget.make ~fault:(Budget.Cdag_build, 2) ())
          ~params:[]
          (K.Mgs.tiled_spec ~m:6 ~n:4 ~b:2))
  with
  | Error (EE.Budget_exhausted Budget.Cdag_build) -> ()
  | Ok _ -> Alcotest.fail "trace fault: expected budget exhaustion, got Ok"
  | Error e -> Alcotest.failf "trace fault: wrong error %s" (EE.to_string e)

(* The sharded, streaming and sampled sweep paths poll the same budget:
   a fault fired mid-shard (inside a worker domain) must surface as the
   same typed error through the _checked entry points, never as an
   escaped exception, at any jobs width. *)
let test_sharded_sweep_faults () =
  let spec = K.Mgs.tiled_spec ~m:6 ~n:4 ~b:2 in
  let trace = Trace.of_program ~params:[] spec in
  let expect what f =
    match f () with
    | Error (EE.Budget_exhausted _) -> ()
    | Ok _ -> Alcotest.failf "%s: expected budget exhaustion, got Ok" what
    | Error e -> Alcotest.failf "%s: wrong error %s" what (EE.to_string e)
    | exception e ->
        Alcotest.failf "%s: escaped exception %s" what (Printexc.to_string e)
  in
  (* mid-shard: half the events land in the second worker's segment *)
  let ks = [ 2; (Trace.length trace / 2) + 3 ] in
  List.iter
    (fun jobs ->
      List.iter
        (fun k ->
          expect (Printf.sprintf "segmented jobs=%d k=%d" jobs k) (fun () ->
              EE.guard (fun () ->
                  Iolb_pebble.Sweep.run_segmented
                    ~budget:(Budget.make ~fault:(Budget.Cache_sim, k) ())
                    ~jobs trace));
          expect (Printf.sprintf "streamed jobs=%d k=%d" jobs k) (fun () ->
              Iolb_pebble.Sweep.run_program_checked
                ~budget:(Budget.make ~fault:(Budget.Cache_sim, k) ())
                ~jobs ~params:[] spec))
        ks;
      (* a deadline that has already passed must also kill the shards *)
      expect (Printf.sprintf "deadline jobs=%d" jobs) (fun () ->
          Iolb_pebble.Sweep.run_program_checked
            ~budget:(Budget.make ~timeout_ms:0 ())
            ~jobs ~params:[] spec))
    [ 1; 2; 4 ];
  (* the sampled scan checkpoints Cache_sim too (per kept event and per
     64k-access tick) *)
  expect "sampled k=2" (fun () ->
      Iolb_pebble.Sweep.run_sampled_checked
        ~budget:(Budget.make ~fault:(Budget.Cache_sim, 2) ())
        ~rate:0.6 ~seed:0 ~params:[] spec);
  expect "sampled deadline" (fun () ->
      Iolb_pebble.Sweep.run_sampled_checked
        ~budget:(Budget.make ~timeout_ms:0 ())
        ~rate:0.6 ~seed:0 ~params:[] spec)

(* An already-passed wall-clock deadline is the one budget not even the
   trivial rung survives: the ladder must fail with the typed error (the
   CLI maps it to exit code 3). *)
let test_deadline_always_fails () =
  List.iter
    (fun (entry : Report.entry) ->
      let budget = Budget.make ~timeout_ms:0 () in
      match Report.analyze_checked ~budget entry with
      | Error (EE.Budget_exhausted _) -> ()
      | Ok _ ->
          Alcotest.failf "%s: passed deadline not detected" entry.display
      | Error e ->
          Alcotest.failf "%s: wrong error %s" entry.display (EE.to_string e))
    Report.registry

let suite =
  [
    Alcotest.test_case "ladder faults on paper kernels" `Quick
      test_ladder_faults_paper_kernels;
    Alcotest.test_case "ladder faults on baselines" `Quick
      test_ladder_faults_baselines;
    Alcotest.test_case "step cap degrades to trivial rung" `Quick
      test_degrades_to_trivial;
    Alcotest.test_case "generous budget is transparent" `Quick
      test_generous_budget_is_transparent;
    Alcotest.test_case "pebble/cache/trace fault injection" `Quick
      test_game_and_cache_faults;
    Alcotest.test_case "sharded/sampled sweep fault injection" `Quick
      test_sharded_sweep_faults;
    Alcotest.test_case "passed deadline always fails" `Quick
      test_deadline_always_fails;
  ]
