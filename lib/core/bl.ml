module Rat = Iolb_util.Rat
module Simplex = Iolb_lp.Simplex
module Psimplex = Iolb_lp.Psimplex

type bounded_proj = {
  proj_dims : string list;
  alpha : Rat.t;
  beta : Rat.t;
  gamma : Rat.t;
  label : string;
}

type solution = {
  k_exponent : Rat.t;
  w_exponent : Rat.t;
  two_exponent : Rat.t;
  exponents : (string * Rat.t) list;
}

let proj ?(beta = Rat.zero) ?(gamma = Rat.zero) ~alpha ~label proj_dims =
  { proj_dims; alpha; beta; gamma; label }

let subsets dims =
  List.fold_left
    (fun acc d -> acc @ List.map (fun s -> d :: s) acc)
    [ [] ] dims

(* The admissibility polytope: for every non-empty subset H of dims,
   sum_j s_j * |dims_j /\ H| >= |H|, and 0 <= s_j <= 1. *)
let admissibility_constraints ~dims projs =
  let n = List.length projs in
  let cover =
    List.filter_map
      (fun h ->
        if h = [] then None
        else
          let coeffs =
            Array.of_list
              (List.map
                 (fun p ->
                   Rat.of_int
                     (List.length (List.filter (fun d -> List.mem d h) p.proj_dims)))
                 projs)
          in
          Some
            Simplex.{ coeffs; rel = Ge; rhs = Rat.of_int (List.length h) })
      (subsets dims)
  in
  let caps =
    List.mapi
      (fun j _ ->
        let coeffs = Array.make n Rat.zero in
        coeffs.(j) <- Rat.one;
        Simplex.{ coeffs; rel = Le; rhs = Rat.one })
      projs
  in
  cover @ caps

let dot weights solution =
  let acc = ref Rat.zero in
  Array.iteri (fun j s -> acc := Rat.add !acc (Rat.mul weights.(j) s)) solution;
  !acc

(* Lexicographic minimisation: solve each stage, then pin its optimum as an
   equality constraint for the next stage. *)
let lex_minimize ~constraints stages =
  let rec go constraints = function
    | [] -> None
    | [ cost ] -> (
        match Simplex.minimize ~cost constraints with
        | Simplex.Optimal { solution; _ } -> Some solution
        | Simplex.Infeasible | Simplex.Unbounded -> None)
    | cost :: rest -> (
        match Simplex.minimize ~cost constraints with
        | Simplex.Optimal { value; _ } ->
            let pin = Simplex.{ coeffs = cost; rel = Le; rhs = value } in
            go (pin :: constraints) rest
        | Simplex.Infeasible | Simplex.Unbounded -> None)
  in
  go constraints stages

type exponent_region = {
  theta_lo : Rat.t;
  theta_hi : Rat.t;
  region_sol : solution;
  region_pivots : int;
}

let solution_of_vertex projs ~alphas ~betas ~gammas s =
  {
    k_exponent = dot alphas s;
    w_exponent = dot betas s;
    two_exponent = dot gammas s;
    exponents =
      List.mapi (fun j p -> (p.label, s.(j))) projs
      |> List.filter (fun (_, e) -> not (Rat.is_zero e));
  }

(* One parametric sweep of min (alpha + theta * beta) . s over the
   admissibility polytope, theta in [1/2, 1] (W = K^theta in the regime
   where the hourglass matters): the full regime decomposition of the
   K-side exponent, instead of endpoint solves.  The polytope is bounded
   (0 <= s_j <= 1), so a feasible system never sweeps unbounded. *)
let exponent_regions ?budget ~dims projs =
  if projs = [] then None
  else
    let constraints = admissibility_constraints ~dims projs in
    let vec f = Array.of_list (List.map f projs) in
    let alphas = vec (fun p -> p.alpha)
    and betas = vec (fun p -> p.beta)
    and gammas = vec (fun p -> p.gamma) in
    let cost = Array.mapi (fun j a -> Psimplex.pcost a ~slope:betas.(j)) alphas in
    match
      Psimplex.minimize ?budget ~cost ~lo:Rat.half ~hi:Rat.one constraints
    with
    | Psimplex.Infeasible | Psimplex.Unbounded_at _ -> None
    | Psimplex.Regions rs ->
        Some
          (List.map
             (fun (r : Psimplex.region) ->
               {
                 theta_lo = r.Psimplex.lo;
                 theta_hi =
                   (match r.Psimplex.hi with Some h -> h | None -> Rat.one);
                 region_sol =
                   solution_of_vertex projs ~alphas ~betas ~gammas
                     r.Psimplex.solution;
                 region_pivots = r.Psimplex.pivots;
               })
             rs)

(* Plain (non-parametric) solve of the sweep's objective pinned at one
   theta; the differential reference for [exponent_regions]. *)
let exponent_at ~dims projs ~theta =
  if projs = [] then None
  else
    let constraints = admissibility_constraints ~dims projs in
    let cost =
      Array.of_list
        (List.map (fun p -> Rat.add p.alpha (Rat.mul theta p.beta)) projs)
    in
    match Simplex.minimize ~cost constraints with
    | Simplex.Optimal { value; _ } -> Some value
    | Simplex.Infeasible | Simplex.Unbounded -> None

let optimize ~dims projs =
  if projs = [] then None
  else
    let constraints = admissibility_constraints ~dims projs in
    let vec f = Array.of_list (List.map f projs) in
    let alphas = vec (fun p -> p.alpha)
    and betas = vec (fun p -> p.beta)
    and gammas = vec (fun p -> p.gamma) in
    let stage1 =
      Array.mapi (fun j a -> Rat.add a (Rat.mul Rat.half betas.(j))) alphas
    in
    let stage2 = Array.mapi (fun j a -> Rat.add a betas.(j)) alphas in
    (* Stage 1 (theta = 1/2) comes from the parametric sweep: its first
       region is optimal at 1/2, so its value there is the stage-1
       optimum.  The remaining lexicographic stages are minimised under
       that pin exactly as before (the stage-2 optimum under the pin is
       *not* the unpinned theta = 1 sweep value, so those stay as plain
       solves). *)
    match exponent_regions ~dims projs with
    | None -> None
    | Some regions ->
        let r0 = (List.hd regions).region_sol in
        let v1 =
          Rat.add r0.k_exponent (Rat.mul Rat.half r0.w_exponent)
        in
        let pin = Simplex.{ coeffs = stage1; rel = Le; rhs = v1 } in
        (match lex_minimize ~constraints:(pin :: constraints) [ stage2; gammas ]
         with
        | None -> None
        | Some s -> Some (solution_of_vertex projs ~alphas ~betas ~gammas s))

let classical ~dims dimsets =
  let projs =
    List.mapi
      (fun j ds ->
        proj ~alpha:Rat.one ~label:(Printf.sprintf "phi%d_{%s}" j (String.concat "," ds)) ds)
      dimsets
  in
  optimize ~dims projs

let pp_exponent_region fmt r =
  Format.fprintf fmt "theta in [%a, %a]: K^(%a + %a*theta)" Rat.pp r.theta_lo
    Rat.pp r.theta_hi Rat.pp r.region_sol.k_exponent Rat.pp
    r.region_sol.w_exponent

let pp_solution fmt s =
  Format.fprintf fmt "K^%a * W^%a * 2^%a via {%a}" Rat.pp s.k_exponent Rat.pp
    s.w_exponent Rat.pp s.two_exponent
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (l, e) -> Format.fprintf fmt "%s^%a" l Rat.pp e))
    s.exponents
