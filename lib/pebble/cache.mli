(** Fully-associative cache simulator at cell granularity.

    This realises the paper's two-level memory model: a fast memory holding
    at most [size] data elements in front of an unbounded slow memory.
    Reads of absent cells count as loads; writes allocate in fast memory
    without a fetch (every write in the paper's kernels fully overwrites the
    cell); evictions of dirty cells (and the final flush) count as stores.

    Two replacement policies are provided: LRU, and Belady's OPT (evict the
    line whose next {e read} is farthest, treating lines that are
    overwritten before being re-read as dead).  OPT is the model-faithful
    policy for measuring a schedule's intrinsic I/O; LRU shows what a real
    cache would do.

    Simulators consume pre-interned {!Trace.t} values and run entirely on
    dense int cell ids and flat arrays: no hashing in the simulation loops,
    and simulating the same trace at many cache sizes reuses one
    interning. *)

type stats = {
  loads : int;  (** reads that missed *)
  stores : int;  (** dirty evictions, plus the final flush if requested *)
  read_hits : int;
  accesses : int;
}

(** Total data movement [loads + stores]. *)
val io : stats -> int

(** [lru ~size ?flush trace]. [flush] (default [true]) counts dirty lines
    remaining at the end as stores.  One [Cache_sim] budget checkpoint per
    trace event. @raise Invalid_argument if [size < 1].
    @raise Iolb_util.Budget.Exhausted when the budget runs out. *)
val lru :
  ?budget:Iolb_util.Budget.t -> size:int -> ?flush:bool -> Trace.t -> stats

(** [opt ~size ?flush trace]: Belady's clairvoyant policy.  Budget as
    {!lru}.  Equivalent to {!opt_plan} followed by {!opt_run}. *)
val opt :
  ?budget:Iolb_util.Budget.t -> size:int -> ?flush:bool -> Trace.t -> stats

(** Size-independent part of an OPT simulation: the backward next-read scan
    over the trace.  Build it once per trace and share it, read-only,
    across the per-size runs of a sweep (including a {!Iolb_util.Pool}
    fan-out), like [Game.plan] shares the use-position scan. *)
type opt_plan

(** [opt_plan trace] precomputes the next-read positions (one [Cache_sim]
    budget checkpoint per trace event). *)
val opt_plan : ?budget:Iolb_util.Budget.t -> Trace.t -> opt_plan

(** The trace a plan was built from. *)
val opt_plan_trace : opt_plan -> Trace.t

(** [opt_run ~size ?flush plan] is [opt ~size ?flush] on the plan's trace,
    reusing the precomputed scan.  The lazily-invalidated eviction heap is
    compacted whenever stale entries exceed 2x the cache occupancy, so its
    memory peak is O(size), not O(trace length).
    @raise Invalid_argument if [size < 1]. *)
val opt_run :
  ?budget:Iolb_util.Budget.t -> size:int -> ?flush:bool -> opt_plan -> stats

(** [opt_heap_peak ~size ?flush trace] is the high-water mark of pending
    eviction candidates (heap plus dead-cell stack) over a full OPT run
    (diagnostics; tests pin it to O(size)). *)
val opt_heap_peak : size:int -> ?flush:bool -> Trace.t -> int

(** No-raise variants of {!lru} and {!opt}. *)
val lru_checked :
  ?budget:Iolb_util.Budget.t ->
  size:int ->
  ?flush:bool ->
  Trace.t ->
  (stats, Iolb_util.Engine_error.t) result

val opt_checked :
  ?budget:Iolb_util.Budget.t ->
  size:int ->
  ?flush:bool ->
  Trace.t ->
  (stats, Iolb_util.Engine_error.t) result

(** [cold trace] is the compulsory-miss statistics (infinite cache). *)
val cold : Trace.t -> stats

val pp_stats : Format.formatter -> stats -> unit
