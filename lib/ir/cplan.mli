(** Compiled trace production over a flat integer address space.

    A plan compiles a program at concrete parameters into flat integer
    stride/bound arrays: every array gets a rectangular hull (interval
    arithmetic over the loop nest) laid out row-major in one address
    space, and every access site's index expressions compose with the
    layout into a single affine form over the loop variables.  Producing
    an access is then flat integer arithmetic, and its cell identity is a
    dense [int] address - consumers index an [addr -> id] table instead
    of hashing interned cells, which is what lets the sharded exact sweep
    run at production rate.  Along an innermost loop the address form
    advances by a constant per iteration.

    Addresses are injective on cells: distinct arrays occupy disjoint
    ranges and the row-major map is injective on each hull.  The emission
    order and the position numbering are exactly those of
    {!Program.iter_accesses}. *)

type t

(** [make ~params p] compiles [p] at [params].

    @raise Not_found on a variable bound neither by [params] nor by an
    enclosing loop (like the interpreted evaluators).
    @raise Invalid_argument when an array is used at two different ranks
    or a hull volume overflows the supported address-space bound -
    callers should fall back to the streaming producer. *)
val make : params:(string * int) list -> Program.t -> t

(** Exact number of accesses [iter] emits over the full range; equals
    {!Program.n_accesses} at the plan's parameters. *)
val n_accesses : t -> int

(** Size of the flat address space ([0 <= addr < addr_space t]).  An
    over-approximation of the footprint: consumers allocate remap tables
    of this length, so check it against a memory policy first. *)
val addr_space : t -> int

(** [decode t addr] is the concrete cell at [addr].  Allocates; intended
    for first occurrences only. *)
val decode : t -> int -> string * int array

(** [iter t ~lo ~hi ~on_instance ~on_access] visits the accesses whose
    global position lies in [\[lo, hi)], in program order:
    [on_access pos addr is_write] per access, [on_instance ()] once per
    statement instance with at least one access in range (fired before
    its accesses).  Whole loop iterations left of [lo] are skipped by
    closed-form counting, iteration stops once [hi] is passed - the
    [seek] arithmetic: reaching position [k] costs the loop structure
    around it (O(depth) for rectangular nests), not [k] emissions.

    Positions, instance granularity and emission order agree exactly
    with {!Program.iter_accesses_range}; [decode t addr] agrees with the
    (name, index) that iterator would emit at the same position.

    All mutable iteration state lives in per-call buffers: one plan may
    be iterated concurrently from several domains.
    @raise Invalid_argument if [lo < 0] or [hi < lo]. *)
val iter :
  t ->
  lo:int ->
  hi:int ->
  on_instance:(unit -> unit) ->
  on_access:(int -> int -> bool -> unit) ->
  unit
