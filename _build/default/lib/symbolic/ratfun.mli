(** Rational functions: ratios of multivariate polynomials.

    The lower bounds produced by the hourglass derivation are ratios of
    polynomials in the program parameters, e.g. [M^2*N*(N-1) / (8*(S+M))].
    Values are normalised lightly (sign, rational content, common monomial
    factor); semantic equality is decided by cross-multiplication, which is
    exact for polynomials. *)

type t

val zero : t
val one : t
val of_poly : Polynomial.t -> t
val of_int : int -> t
val of_rat : Iolb_util.Rat.t -> t
val var : string -> t

(** [make num den] is [num/den]. @raise Division_by_zero if [den] is the
    zero polynomial. *)
val make : Polynomial.t -> Polynomial.t -> t

val num : t -> Polynomial.t
val den : t -> Polynomial.t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** @raise Division_by_zero if the divisor is the zero rational function. *)
val div : t -> t -> t

val inv : t -> t
val pow : t -> int -> t
val scale : Iolb_util.Rat.t -> t -> t

(** Semantic equality ([a/b = c/d] iff [a*d = c*b]). *)
val equal : t -> t -> bool

val is_zero : t -> bool

(** [as_poly r] is [Some p] if the denominator of [r] is a non-zero constant,
    in which case [r] equals the polynomial [p]. *)
val as_poly : t -> Polynomial.t option

(** [eval env r] evaluates exactly.
    @raise Division_by_zero if the denominator vanishes at [env]. *)
val eval : (string -> Iolb_util.Rat.t) -> t -> Iolb_util.Rat.t

val eval_int : (string * int) list -> t -> Iolb_util.Rat.t
val eval_float : (string * int) list -> t -> float

(** [eval_float_env env r] evaluates in floating point with an arbitrary
    variable environment. *)
val eval_float_env : (string -> float) -> t -> float

(** [subst x p r] substitutes polynomial [p] for variable [x]. *)
val subst : string -> Polynomial.t -> t -> t

val vars : t -> string list
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
end
