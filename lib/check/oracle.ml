module Program = Iolb_ir.Program
module Iset = Iolb_poly.Iset
module Iset_ref = Iolb_poly.Iset_ref
module Cdag = Iolb_cdag.Cdag
module Game = Iolb_pebble.Game
module Game_ref = Iolb_pebble.Game_ref
module Trace = Iolb_pebble.Trace
module Cache = Iolb_pebble.Cache
module Sweep = Iolb_pebble.Sweep
module Budget = Iolb_util.Budget
module Pool = Iolb_util.Pool
module P = Iolb_symbolic.Polynomial
module R = Iolb_symbolic.Ratfun
module Rat = Iolb_util.Rat
module D = Iolb.Derive

type outcome = Pass | Fail of string | Skip of string

type ctx = {
  spec : Spec.t;
  prog : Program.t;
  params : (string * int) list;
  budget : Budget.t;
  trace : Trace.t Lazy.t;
  cdag : Cdag.t Lazy.t;
  schedule : int array Lazy.t;
  hourglasses : Iolb.Hourglass.t list Lazy.t;
  bounds : D.t list Lazy.t;
  sizes : int list Lazy.t;
  games : (int, Game.result option) Hashtbl.t;
      (** memoized pebble-game runs per cache size; [None] = infeasible *)
}

let make_ctx ?(budget = Budget.unlimited) spec =
  let prog, params = Spec.to_program spec in
  let trace = lazy (Trace.of_program ~budget ~params prog) in
  let cdag = lazy (Cdag.of_program ~budget ~params prog) in
  let schedule = lazy (Game.program_schedule (Lazy.force cdag)) in
  let hourglasses =
    lazy (Iolb.Hourglass.detect_verified ~budget ~params prog)
  in
  (* Mirrors [Derive.analyze], reusing the already-detected patterns. *)
  let bounds =
    lazy
      (List.concat_map (D.hourglass ~budget prog) (Lazy.force hourglasses)
      @ D.classical_deepest ~budget prog)
  in
  let sizes =
    lazy
      (let fp = Trace.footprint (Lazy.force trace) in
       List.sort_uniq compare
         (List.filter (fun s -> s >= 2) [ 2; 3; 4; 6; 8; 12; fp + 2 ]))
  in
  {
    spec;
    prog;
    params;
    budget;
    trace;
    cdag;
    schedule;
    hourglasses;
    bounds;
    sizes;
    games = Hashtbl.create 8;
  }

let ctx_spec c = c.spec
let ctx_program c = c.prog
let ctx_params c = c.params
let ctx_hourglasses c = Lazy.force c.hourglasses
let ctx_bounds c = Lazy.force c.bounds

(* Clairvoyant-discard pebble game at size [s] on the program schedule;
   [None] when [s] is below some node's fan-in. *)
let game_at c s =
  match Hashtbl.find_opt c.games s with
  | Some r -> r
  | None ->
      let r =
        match
          Game.run ~budget:c.budget (Lazy.force c.cdag) ~s
            ~schedule:(Lazy.force c.schedule)
        with
        | r -> Some r
        | exception Game.Infeasible _ -> None
      in
      Hashtbl.add c.games s r;
      r

let fail fmt = Printf.ksprintf (fun s -> Fail s) fmt

let collect issues = if !issues = [] then Pass else Fail (String.concat "; " (List.rev !issues))

let push issues fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt

(* ------------------------------------------------------------------ *)
(* card: symbolic cardinality (iterated Faulhaber) = concrete instance
   count = integer-set cardinality = enumeration length, per statement.  *)

let prop_card c =
  let per_stmt = Hashtbl.create 8 in
  Program.iter_instances ~params:c.params c.prog (fun inst ->
      Hashtbl.replace per_stmt inst.stmt_name
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_stmt inst.stmt_name)));
  let issues = ref [] in
  List.iter
    (fun (info : Program.stmt_info) ->
      let name = info.def.name in
      let concrete = Option.value ~default:0 (Hashtbl.find_opt per_stmt name) in
      let symbolic =
        P.eval_int c.params (Program.cardinal info) |> Iolb_util.Rat.to_int
      in
      let dom = Program.domain info in
      let card = Iset.cardinal ~budget:c.budget ~params:c.params dom in
      let enum =
        List.length (Iset.enumerate ~budget:c.budget ~params:c.params dom)
      in
      if not (symbolic = concrete && card = concrete && enum = concrete) then
        push issues "%s: symbolic=%d concrete=%d iset-cardinal=%d iset-enumerate=%d"
          name symbolic concrete card enum)
    (Program.statements c.prog);
  collect issues

(* ------------------------------------------------------------------ *)
(* iset-ref: the compiled Iset path against the retained seed (Iset_ref)
   algorithms on every statement domain.                                *)

let prop_iset_ref c =
  let issues = ref [] in
  List.iter
    (fun (info : Program.stmt_info) ->
      let name = info.def.name in
      let dom = Program.domain info in
      let dims = Iset.dims dom and cons = Iset.constraints dom in
      let ref_pts = Iset_ref.enumerate ~params:c.params ~dims cons in
      let pts = Iset.enumerate ~budget:c.budget ~params:c.params dom in
      if pts <> ref_pts then
        push issues "%s: enumerate differs (%d vs %d points)" name
          (List.length pts) (List.length ref_pts);
      let card = Iset.cardinal ~budget:c.budget ~params:c.params dom in
      if card <> List.length ref_pts then
        push issues "%s: cardinal=%d but reference has %d points" name card
          (List.length ref_pts);
      if Iset.is_empty ~budget:c.budget ~params:c.params dom <> (ref_pts = [])
      then push issues "%s: is_empty disagrees with the reference" name;
      (match dims with
      | _ :: (_ :: _ as onto) ->
          let proj = Iset.project ~budget:c.budget ~onto dom in
          let ref_proj = Iset_ref.project ~onto ~dims cons in
          List.iter
            (fun p ->
              let shadow = Array.sub p 1 (Array.length p - 1) in
              if not (Iset.mem ~params:c.params proj shadow) then
                push issues "%s: compiled projection drops a true shadow" name;
              if not (Iset_ref.mem ~params:c.params ~dims:onto ref_proj shadow)
              then push issues "%s: reference projection drops a true shadow" name)
            ref_pts
      | _ -> ()))
    (Program.statements c.prog);
  collect issues

(* ------------------------------------------------------------------ *)
(* cdag: structural invariants of the concrete CDAG and the compulsory
   cold-cache loads.                                                    *)

let prop_cdag c =
  let cdag = Lazy.force c.cdag in
  let schedule = Lazy.force c.schedule in
  let issues = ref [] in
  let instances = Program.count_instances ~params:c.params c.prog in
  if Cdag.n_computes cdag <> instances then
    push issues "n_computes=%d but %d instances" (Cdag.n_computes cdag) instances;
  if not (Game.is_topological cdag schedule) then
    push issues "program schedule is not topological";
  (match game_at c (Cdag.n_nodes cdag + 2) with
  | None -> push issues "pebble game infeasible at S > n_nodes"
  | Some big ->
      if big.Game.loads <> Cdag.n_inputs cdag then
        push issues "cold loads=%d but n_inputs=%d" big.Game.loads
          (Cdag.n_inputs cdag));
  collect issues

(* ------------------------------------------------------------------ *)
(* footprint: the interned trace footprint = distinct cells touched.    *)

let prop_footprint c =
  let trace = Lazy.force c.trace in
  let seen = Hashtbl.create 64 in
  let n_events = ref 0 in
  Program.iter_instances ~params:c.params c.prog (fun inst ->
      List.iter
        (fun cl ->
          incr n_events;
          Hashtbl.replace seen cl ())
        (inst.loads @ inst.stores));
  let distinct = Hashtbl.length seen in
  if Trace.footprint trace <> distinct then
    fail "trace footprint=%d but %d distinct cells" (Trace.footprint trace)
      distinct
  else if Trace.length trace <> !n_events then
    fail "trace length=%d but %d accesses" (Trace.length trace) !n_events
  else Pass

(* ------------------------------------------------------------------ *)
(* phi: derived projections are well-formed for every statement.        *)

let prop_phi c =
  let ok =
    List.for_all
      (fun (i : Program.stmt_info) ->
        List.for_all
          (fun (p : Iolb.Phi.t) ->
            p.dims <> [] && List.for_all (fun d -> List.mem d i.dims) p.dims)
          (Iolb.Phi.of_statement c.prog i))
      (Program.statements c.prog)
  in
  if ok then Pass else Fail "ill-formed projection (empty or foreign dims)"

(* ------------------------------------------------------------------ *)
(* bound-le-opt: every applicable derived bound must sit below the
   clairvoyant pebble-game loads of the program schedule, at every
   tested cache size.  This is the paper's soundness invariant.         *)

let prop_bound_le_opt c =
  match Lazy.force c.bounds with
  | [] -> Skip "no derivable bound"
  | bounds ->
      let issues = ref [] in
      List.iter
        (fun s ->
          match game_at c s with
          | None -> () (* S below the max fan-in: no legal schedule here *)
          | Some res -> (
              match D.best ~params:c.params ~s bounds with
              | None -> ()
              | Some b ->
                  let v = D.eval b ~params:c.params ~s in
                  if v > float_of_int res.Game.loads +. 1e-6 then
                    push issues
                      "S=%d: bound %.3f (%s) exceeds measured OPT loads %d" s v
                      b.D.stmt res.Game.loads))
        (Lazy.force c.sizes);
      collect issues

(* ------------------------------------------------------------------ *)
(* monotone-s: the best applicable bound never increases with S.        *)

let prop_monotone c =
  match Lazy.force c.bounds with
  | [] -> Skip "no derivable bound"
  | bounds ->
      let issues = ref [] in
      let prev = ref None in
      List.iter
        (fun s ->
          match D.best ~params:c.params ~s bounds with
          | None -> ()
          | Some b ->
              let v = D.eval b ~params:c.params ~s in
              (match !prev with
              | Some (s0, v0) when v > v0 +. 1e-6 ->
                  push issues "bound grows with S: %.3f at S=%d vs %.3f at S=%d"
                    v s v0 s0
              | _ -> ());
              prev := Some (s, v))
        (Lazy.force c.sizes);
      collect issues

(* ------------------------------------------------------------------ *)
(* sweep-lru: the single-pass reuse-distance sweep agrees field by field
   with the direct LRU simulator at every size, for both flush modes.   *)

let prop_sweep_lru c =
  let trace = Lazy.force c.trace in
  let issues = ref [] in
  List.iter
    (fun flush ->
      let sweep = Sweep.run ~budget:c.budget ~flush trace in
      List.iter
        (fun s ->
          let sw = Sweep.stats sweep ~size:s in
          let direct = Cache.lru ~budget:c.budget ~size:s ~flush trace in
          if sw <> direct then
            push issues
              "S=%d flush=%b: sweep (l=%d st=%d h=%d) vs lru (l=%d st=%d h=%d)"
              s flush sw.Cache.loads sw.Cache.stores sw.Cache.read_hits
              direct.Cache.loads direct.Cache.stores direct.Cache.read_hits)
        (Lazy.force c.sizes))
    [ true; false ];
  collect issues

(* ------------------------------------------------------------------ *)
(* jobs-det: the per-size empirical report rendered through a Pool
   fan-out is byte-identical at every worker count.                     *)

let render_report c ~jobs =
  let buf = Buffer.create 256 in
  List.iter
    (fun (b : D.t) -> Buffer.add_string buf (Format.asprintf "%a@." D.pp b))
    (Lazy.force c.bounds);
  let trace = Lazy.force c.trace in
  let cdag = Lazy.force c.cdag in
  let schedule = Lazy.force c.schedule in
  let rows =
    Pool.map ~jobs
      (fun s ->
        let lru = Cache.lru ~size:s trace in
        let game =
          match Game.run cdag ~s ~schedule with
          | r -> string_of_int r.Game.loads
          | exception Game.Infeasible _ -> "infeasible"
        in
        Printf.sprintf "S=%d lru=%d/%d/%d game=%s" s lru.Cache.loads
          lru.Cache.stores lru.Cache.read_hits game)
      (Lazy.force c.sizes)
  in
  List.iter
    (fun r ->
      Buffer.add_string buf r;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let prop_jobs_det c =
  let seq = render_report c ~jobs:1 in
  let par = render_report c ~jobs:3 in
  if String.equal seq par then Pass
  else fail "report differs between --jobs 1 and --jobs 3"

(* ------------------------------------------------------------------ *)
(* sweep-stream: the sharded (run_segmented) and streaming (run_program)
   sweeps must equal the sequential in-memory sweep - same footprint,
   histogram and per-size stats - at every jobs width, for both flush
   modes and for adversarially small chunk sizes.  This is the
   determinism contract behind byte-identical --jobs output.            *)

let sweep_eq issues ~what ~sizes ref_sweep got =
  if Sweep.footprint got <> Sweep.footprint ref_sweep then
    push issues "%s: footprint %d vs %d" what (Sweep.footprint got)
      (Sweep.footprint ref_sweep);
  if Sweep.accesses got <> Sweep.accesses ref_sweep then
    push issues "%s: accesses %d vs %d" what (Sweep.accesses got)
      (Sweep.accesses ref_sweep);
  if Sweep.distance_histogram got <> Sweep.distance_histogram ref_sweep then
    push issues "%s: distance histogram differs" what;
  List.iter
    (fun s ->
      if Sweep.stats got ~size:s <> Sweep.stats ref_sweep ~size:s then
        push issues "%s: stats differ at S=%d" what s)
    sizes

let prop_sweep_stream c =
  let trace = Lazy.force c.trace in
  let sizes = Lazy.force c.sizes in
  let issues = ref [] in
  List.iter
    (fun flush ->
      let ref_sweep = Sweep.run ~budget:c.budget ~flush trace in
      List.iter
        (fun jobs ->
          sweep_eq issues
            ~what:(Printf.sprintf "segmented jobs=%d flush=%b" jobs flush)
            ~sizes ref_sweep
            (Sweep.run_segmented ~budget:c.budget ~flush ~jobs trace);
          sweep_eq issues
            ~what:(Printf.sprintf "compiled jobs=%d flush=%b" jobs flush)
            ~sizes ref_sweep
            (Sweep.run_program ~budget:c.budget ~flush ~jobs ~chunk_size:7
               ~params:c.params c.prog);
          sweep_eq issues
            ~what:(Printf.sprintf "streamed jobs=%d flush=%b" jobs flush)
            ~sizes ref_sweep
            (Sweep.run_program_stream ~budget:c.budget ~flush ~jobs
               ~chunk_size:7 ~params:c.params c.prog))
        [ 1; 2; 4; 8 ])
    [ true; false ];
  collect issues

(* ------------------------------------------------------------------ *)
(* game-compiled: the compiled (CSR + bitset + reusable-runner) pebble
   engine must agree with the retained reference engine on every
   (schedule, S) point, including which points are infeasible.          *)

let prop_game_compiled c =
  let cdag = Lazy.force c.cdag in
  let issues = ref [] in
  if Game.program_schedule cdag <> Game_ref.program_schedule cdag then
    push issues "program_schedule disagrees with the reference";
  let schedules =
    [
      ("program", Lazy.force c.schedule);
      ("random1", Game.random_topological ~seed:1 cdag);
      ("random2", Game.random_topological ~seed:2 cdag);
    ]
  in
  List.iter
    (fun (what, schedule) ->
      if
        Game.is_topological cdag schedule
        <> Game_ref.is_topological cdag schedule
      then push issues "%s: is_topological disagrees" what;
      let plan = Game.plan cdag ~schedule in
      let runner = Game.runner plan in
      List.iter
        (fun s ->
          let compiled =
            match Game.run_runner ~budget:c.budget runner ~s with
            | res -> Some (res.Game.loads, res.Game.peak_red)
            | exception Game.Infeasible _ -> None
          in
          let reference =
            match Game_ref.run ~budget:c.budget cdag ~s ~schedule with
            | res -> Some (res.Game_ref.loads, res.Game_ref.peak_red)
            | exception Game_ref.Infeasible _ -> None
          in
          if compiled <> reference then begin
            let show = function
              | None -> "infeasible"
              | Some (l, p) -> Printf.sprintf "loads=%d peak=%d" l p
            in
            push issues "%s S=%d: compiled %s vs reference %s" what s
              (show compiled) (show reference)
          end)
        (Lazy.force c.sizes))
    schedules;
  collect issues

(* ------------------------------------------------------------------ *)
(* sampled-ci: rate 1 falls back to the exact engine; statistical rates
   must produce confidence intervals whose double-widened form covers
   the exact sweep at every size (degenerate intervals are the whole
   [0, total] range and cover trivially).  Doubling the width turns the
   z=4 statistical statement into a hard oracle: a miss means the
   estimator is broken, not unlucky.                                    *)

let prop_sampled_ci c =
  let trace = Lazy.force c.trace in
  let sizes = Lazy.force c.sizes in
  let issues = ref [] in
  let exact = Sweep.run ~budget:c.budget trace in
  let s1 =
    Sweep.run_sampled ~budget:c.budget ~rate:1.0 ~seed:11 ~params:c.params
      c.prog
  in
  if not (Sweep.sampled_exact s1) then push issues "rate 1 is not exact";
  List.iter
    (fun s ->
      if Sweep.stats (Sweep.sampled_union s1) ~size:s <> Sweep.stats exact ~size:s
      then push issues "rate 1: stats differ at S=%d" s)
    sizes;
  List.iter
    (fun rate ->
      List.iter
        (fun seed ->
          let sp =
            Sweep.run_sampled ~budget:c.budget ~rate ~seed ~params:c.params
              c.prog
          in
          List.iter
            (fun s ->
              let ex = Sweep.stats exact ~size:s in
              let l, h, st = Sweep.sampled_stats sp ~size:s in
              let check what e (a : Sweep.estimate) =
                let w = a.hi -. a.lo in
                let e = float_of_int e in
                if e < a.lo -. w || e > a.hi +. w then
                  push issues "rate=%.2f seed=%d S=%d %s=%g outside [%g, %g]"
                    rate seed s what e a.lo a.hi
              in
              check "loads" ex.Cache.loads l;
              check "read_hits" ex.Cache.read_hits h;
              check "stores" ex.Cache.stores st)
            sizes)
        [ 1; 2 ])
    [ 0.5; 0.25 ];
  collect issues

(* ------------------------------------------------------------------ *)
(* hourglass-path: every member of the hourglass-bearing family must be
   detected, empirically verified, and must reach the tightened
   derivation (a bound with the Hourglass technique).  This is the
   coverage guarantee that the certifier actually exercises the paper's
   path, not just the classical one.                                    *)

let prop_hourglass_path c =
  match c.spec with
  | Spec.Nest _ -> Skip "nest family"
  | Spec.Hourglass _ -> (
      match ctx_hourglasses c with
      | [] -> Fail "no verified hourglass detected on an hourglass-family spec"
      | _ :: _ ->
          if
            List.exists
              (fun (b : D.t) ->
                match b.D.technique with
                | D.Hourglass | D.Hourglass_small_s -> true
                | D.Classical | D.Trivial -> false)
              (Lazy.force c.bounds)
          then Pass
          else Fail "hourglass detected but the tightened derivation produced no bound")

(* ------------------------------------------------------------------ *)
(* split-regions: the region-based split search must agree with brute
   force.  Each program parameter occurring in a bound's formula is
   treated as a free split knob; the region path's argmax value must
   equal full enumeration's exactly (same [Derive.eval] floats on both
   sides), and a differing argmax is legal only on an exact value tie
   (first-maximum-wins over the full list vs. the candidate subset).     *)

let prop_split_regions c =
  let bounds = Lazy.force c.bounds in
  let issues = ref [] in
  let exercised = ref false in
  List.iter
    (fun (b : D.t) ->
      let vars = R.vars b.D.formula in
      List.iter
        (fun (name, v) ->
          if List.mem name vars then begin
            let others = List.remove_assoc name c.params in
            let lo = 2 and hi = max (v + 8) 24 in
            List.iter
              (fun s ->
                exercised := true;
                let full = List.init (hi - lo + 1) (fun i -> lo + i) in
                let brute =
                  D.optimize_split b ~param:name ~candidates:full
                    ~params:others ~s
                in
                match
                  D.optimize_split_regions b ~param:name ~lo ~hi
                    ~params:others ~s
                with
                | None ->
                    if brute <> None then
                      push issues
                        "%s/%s param %s S=%d: regions found no bound, \
                         enumeration did"
                        b.D.program b.D.stmt name s
                | Some r -> (
                    if r.D.evaluated > List.length full then
                      push issues
                        "%s/%s param %s S=%d: %d evaluations exceed the \
                         enumeration's %d"
                        b.D.program b.D.stmt name s r.D.evaluated
                        (List.length full);
                    match brute with
                    | None ->
                        push issues
                          "%s/%s param %s S=%d: enumeration found no bound, \
                           regions did"
                          b.D.program b.D.stmt name s
                    | Some (_bm, bv) ->
                        if bv <> r.D.split_value then
                          push issues
                            "%s/%s param %s S=%d: region value %h <> \
                             enumeration value %h"
                            b.D.program b.D.stmt name s r.D.split_value bv
                        (* a differing argmax with an exact value tie is the
                           legal first-maximum-wins plateau case *)))
              [ 2; 8; 32 ]
          end)
        c.params)
    bounds;
  if not !exercised then Skip "no bound formula mentions a program parameter"
  else collect issues

(* ------------------------------------------------------------------ *)
(* region-cover: the parametric-simplex regions of the sharpened
   Brascamp-Lieb LP must tile [1/2, 1] contiguously, and on each region
   the closed-form optimum must match a plain pinned-theta simplex solve
   exactly (rational arithmetic on both sides).                          *)

let prop_region_cover c =
  match ctx_hourglasses c with
  | [] -> Skip "no verified hourglass (parametric LP not exercised)"
  | hs ->
      let issues = ref [] in
      List.iter
        (fun h ->
          let dims, projs = D.sharpened_projections c.prog h in
          match Iolb.Bl.exponent_regions ~dims projs with
          | None ->
              push issues "parametric sweep infeasible on a verified hourglass"
          | Some [] -> push issues "empty region decomposition"
          | Some (r0 :: _ as rs) ->
              if not (Rat.equal r0.Iolb.Bl.theta_lo Rat.half) then
                push issues "regions start at %s, not 1/2"
                  (Rat.to_string r0.Iolb.Bl.theta_lo);
              let rec contig = function
                | a :: (b :: _ as tl) ->
                    if
                      not (Rat.equal a.Iolb.Bl.theta_hi b.Iolb.Bl.theta_lo)
                    then
                      push issues "gap between regions at %s"
                        (Rat.to_string a.Iolb.Bl.theta_hi);
                    contig tl
                | [ last ] ->
                    if not (Rat.equal last.Iolb.Bl.theta_hi Rat.one) then
                      push issues "regions end at %s, not 1"
                        (Rat.to_string last.Iolb.Bl.theta_hi)
                | [] -> ()
              in
              contig rs;
              List.iter
                (fun (r : Iolb.Bl.exponent_region) ->
                  let mid =
                    Rat.mul Rat.half (Rat.add r.theta_lo r.theta_hi)
                  in
                  List.iter
                    (fun theta ->
                      let predicted =
                        Rat.add r.region_sol.Iolb.Bl.k_exponent
                          (Rat.mul theta r.region_sol.Iolb.Bl.w_exponent)
                      in
                      match Iolb.Bl.exponent_at ~dims projs ~theta with
                      | None ->
                          push issues
                            "plain solve infeasible at theta = %s inside a \
                             region"
                            (Rat.to_string theta)
                      | Some v ->
                          if not (Rat.equal v predicted) then
                            push issues
                              "theta = %s: region predicts %s, plain solve \
                               gives %s"
                              (Rat.to_string theta) (Rat.to_string predicted)
                              (Rat.to_string v))
                    [ r.theta_lo; mid; r.theta_hi ])
                rs)
        hs;
      collect issues

(* ------------------------------------------------------------------ *)
(* parse-roundtrip: printing the generated program as DSL source and
   re-parsing it must reproduce the program exactly - structural
   equality on the IR and the same verify bindings.  This pins the
   printer/parser/elaborator composition as the identity on every
   program the generator can produce, so textual kernel sources are a
   faithful exchange format, not an approximation.                      *)

module Front = Iolb_front.Front
module Front_diag = Iolb_front.Diag

let prop_parse_roundtrip c =
  let printed = Front.print ~verify:c.params c.prog in
  match Front.parse_string ~file:"<spec>" printed with
  | Error d ->
      fail "printed source does not re-parse: %s" (Front_diag.to_string d)
  | Ok src ->
      let issues = ref [] in
      if not (Program.equal src.Front.program c.prog) then
        push issues "re-parsed program is not structurally equal to the original";
      let sort l = List.sort compare l in
      if sort src.Front.verify <> sort c.params then
        push issues "verify bindings differ: printed %s, re-parsed %s"
          (String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) c.params))
          (String.concat ", "
             (List.map
                (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                src.Front.verify));
      collect issues

(* ------------------------------------------------------------------ *)
(* parse-derive: the full derivation pipeline (hourglass detection plus
   the bound derivations, exactly as [ctx] computes them) run on the
   re-parsed copy of the program must produce the same bounds, rendered
   through [Derive.pp], as the original.  Catches anything the
   round-trip's structural equality is too weak to see - e.g. a printer
   normalisation that [Program.equal] accepts but that shifts a
   projection or a cardinality downstream.                              *)

let prop_parse_derive c =
  let printed = Front.print ~verify:c.params c.prog in
  match Front.parse_string ~file:"<spec>" printed with
  | Error d ->
      fail "printed source does not re-parse: %s" (Front_diag.to_string d)
  | Ok src ->
      let prog' = src.Front.program in
      let hgs' =
        Iolb.Hourglass.detect_verified ~budget:c.budget
          ~params:src.Front.verify prog'
      in
      let bounds' =
        List.concat_map (D.hourglass ~budget:c.budget prog') hgs'
        @ D.classical_deepest ~budget:c.budget prog'
      in
      let render bs =
        List.map (fun (b : D.t) -> Format.asprintf "%a" D.pp b) bs
      in
      let orig = render (Lazy.force c.bounds)
      and reparsed = render bounds' in
      let issues = ref [] in
      if List.length (ctx_hourglasses c) <> List.length hgs' then
        push issues "hourglass count differs: %d original, %d re-parsed"
          (List.length (ctx_hourglasses c))
          (List.length hgs');
      if orig <> reparsed then
        push issues "derived bounds differ: original [%s] vs re-parsed [%s]"
          (String.concat " | " orig)
          (String.concat " | " reparsed);
      collect issues

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)

type t = { name : string; doc : string }

let impl = function
  | "card" -> prop_card
  | "iset-ref" -> prop_iset_ref
  | "cdag" -> prop_cdag
  | "footprint" -> prop_footprint
  | "phi" -> prop_phi
  | "bound-le-opt" -> prop_bound_le_opt
  | "monotone-s" -> prop_monotone
  | "sweep-lru" -> prop_sweep_lru
  | "sweep-stream" -> prop_sweep_stream
  | "game-compiled" -> prop_game_compiled
  | "sampled-ci" -> prop_sampled_ci
  | "jobs-det" -> prop_jobs_det
  | "hourglass-path" -> prop_hourglass_path
  | "split-regions" -> prop_split_regions
  | "region-cover" -> prop_region_cover
  | "parse-roundtrip" -> prop_parse_roundtrip
  | "parse-derive" -> prop_parse_derive
  | "demo-broken" ->
      fun _ ->
        Fail
          "deliberately broken oracle (fault injection): every spec is a \
           counterexample"
  | name -> fun _ -> Skip ("unknown property " ^ name)

let run o c =
  match impl o.name c with
  | outcome -> outcome
  | exception (Budget.Exhausted _ as e) -> raise e
  | exception e -> Fail ("exception: " ^ Printexc.to_string e)

let all =
  [
    { name = "card"; doc = "symbolic cardinality = concrete enumeration" };
    { name = "iset-ref"; doc = "compiled Iset = Iset_ref reference oracle" };
    { name = "cdag"; doc = "CDAG structure and compulsory cold loads" };
    { name = "footprint"; doc = "trace footprint = distinct cells touched" };
    { name = "phi"; doc = "derived projections are well-formed" };
    {
      name = "bound-le-opt";
      doc = "derived bounds sit below clairvoyant pebble-game loads";
    };
    { name = "monotone-s"; doc = "best bound never increases with S" };
    { name = "sweep-lru"; doc = "reuse-distance sweep = per-size LRU" };
    {
      name = "sweep-stream";
      doc = "sharded/compiled/streaming sweeps = sequential sweep at every jobs width";
    };
    {
      name = "game-compiled";
      doc = "compiled pebble engine = reference engine on every (schedule, S)";
    };
    {
      name = "sampled-ci";
      doc = "sampled sweep intervals cover the exact sweep; rate 1 is exact";
    };
    { name = "jobs-det"; doc = "reports byte-identical across worker counts" };
    {
      name = "hourglass-path";
      doc = "hourglass family reaches the tightened derivation";
    };
    {
      name = "split-regions";
      doc = "region-based split search = brute-force enumeration";
    };
    {
      name = "region-cover";
      doc = "parametric-simplex regions tile [1/2,1] and match pinned solves";
    };
    {
      name = "parse-roundtrip";
      doc = "print-as-DSL then re-parse is the identity on the IR";
    };
    {
      name = "parse-derive";
      doc = "re-parsed source derives byte-identical bounds";
    };
  ]

let demo_broken =
  {
    name = "demo-broken";
    doc = "deliberately failing oracle for fault-injection tests";
  }

let find names =
  let known = all @ [ demo_broken ] in
  let resolve name =
    match List.find_opt (fun o -> o.name = name) known with
    | Some o -> Ok [ o ]
    | None -> (
        match name with
        | "all" | "default" -> Ok all
        | _ ->
            Error
              (Printf.sprintf "unknown property %S (known: %s)" name
                 (String.concat ", " (List.map (fun o -> o.name) known))))
  in
  List.fold_left
    (fun acc name ->
      match (acc, resolve (String.trim name)) with
      | Error _, _ -> acc
      | _, (Error _ as e) -> e
      | Ok sofar, Ok os ->
          Ok (sofar @ List.filter (fun o -> not (List.mem o sofar)) os))
    (Ok [])
    (String.split_on_char ',' names)
