lib/cdag/dot.ml: Array Cdag Format Hashtbl List String
