test/test_cache.ml: Alcotest Iolb_pebble List QCheck2 QCheck_alcotest
