type t = { loc : Loc.t; msg : string }

let make loc msg = { loc; msg }
let makef loc fmt = Printf.ksprintf (fun msg -> { loc; msg }) fmt
let to_string d = Printf.sprintf "%s: %s" (Loc.to_string d.loc) d.msg

let to_engine_error d =
  Iolb_util.Engine_error.Invalid_input (to_string d)
