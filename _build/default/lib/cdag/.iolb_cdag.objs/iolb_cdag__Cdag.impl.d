lib/cdag/cdag.ml: Array Format Hashtbl Int Iolb_ir List Queue
