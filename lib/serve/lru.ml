(* Content-addressed LRU cache for rendered response payloads.

   Doubly-linked recency list threaded through the nodes of a Hashtbl,
   guarded by one mutex: [find] bumps the entry to the front, [add]
   evicts from the back once over capacity.  Payloads are the rendered
   [result] fragments, so a hit is a string splice - no re-analysis, no
   re-rendering, byte-identical output. *)

type node = {
  key : string;
  mutable value : string;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutex : Mutex.t;
  mutable front : node option;  (* most recently used *)
  mutable back : node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  capacity : int;
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: capacity < 0";
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    mutex = Mutex.create ();
    front = None;
    back = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink (t : t) node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.front <- node.next);
  (match node.next with
  | Some nx -> nx.prev <- node.prev
  | None -> t.back <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front (t : t) node =
  node.next <- t.front;
  node.prev <- None;
  (match t.front with Some f -> f.prev <- Some node | None -> t.back <- Some node);
  t.front <- Some node

let find (t : t) key =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
          t.hits <- t.hits + 1;
          unlink t node;
          push_front t node;
          Some node.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let add (t : t) key value =
  if t.capacity > 0 then
    Mutex.protect t.mutex (fun () ->
        (match Hashtbl.find_opt t.table key with
        | Some node ->
            node.value <- value;
            unlink t node;
            push_front t node
        | None ->
            let node = { key; value; prev = None; next = None } in
            Hashtbl.replace t.table key node;
            push_front t node);
        while Hashtbl.length t.table > t.capacity do
          match t.back with
          | None -> assert false (* length > 0 implies a back node *)
          | Some lru ->
              unlink t lru;
              Hashtbl.remove t.table lru.key;
              t.evictions <- t.evictions + 1
        done)

let stats (t : t) =
  Mutex.protect t.mutex (fun () ->
      {
        capacity = t.capacity;
        entries = Hashtbl.length t.table;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
      })
