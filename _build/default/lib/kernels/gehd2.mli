(** Reduction of an [n x n] matrix to upper Hessenberg form (LAPACK
    [GEHD2]), following the paper's Figure 7 verbatim.

    The paper derives the hourglass bound [N^4 / (12 (N + 2S)) <= Q]
    (Theorem 9); the hourglass width at outer iteration [j] is [N - 2 - j],
    handled by splitting the outer loop at a parameter [M]. *)

(** The polyhedral program over [N] ([N >= 3]); statement names [SR1]/[SU1]
    (left update) and [SR2]/[SU2] (right update) carry the hourglass. *)
val spec : Iolb_ir.Program.t

(** [split_spec] is [spec] with its outer loop split at a new parameter [M]
    ([0 <= M <= N-2]): the first half ([j < M]) keeps the hourglass
    property with width at least [N - M - 1]; the second half is analysed
    classically.  Splitting does not change the dependences (Section 5.3),
    so a bound for the first half is a bound for the program. *)
val split_spec : Iolb_ir.Program.t

type result = {
  a : Matrix.t;  (** Hessenberg in place, reflector tails below *)
  taus : float array;  (** reflector scalars (scalar [tau] in the listing) *)
}

(** [reduce a] for square [a] with [n >= 1]. *)
val reduce : Matrix.t -> result

(** [hessenberg_of r] extracts H (zeroing the reflector tails). *)
val hessenberg_of : result -> Matrix.t

(** [q_of r] accumulates Q with [A = Q * H * Q^T]. *)
val q_of : result -> Matrix.t
