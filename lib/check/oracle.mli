(** The property registry of the soundness certifier.

    Each oracle is a differential or metamorphic property of the whole
    derivation pipeline, run over one generated program.  Oracles share a
    {!ctx} that memoizes the expensive artifacts (trace, CDAG, schedule,
    detected hourglasses, derived bounds, pebble-game results), so running
    the full registry costs roughly one pipeline pass per spec. *)

type outcome =
  | Pass
  | Fail of string  (** counterexample, with a human-readable detail *)
  | Skip of string  (** property not applicable to this spec *)

type ctx

(** Build the shared evaluation context for one spec.  Heavy artifacts are
    lazy: an oracle that does not need the CDAG never builds it. *)
val make_ctx : ?budget:Iolb_util.Budget.t -> Spec.t -> ctx

val ctx_spec : ctx -> Spec.t
val ctx_program : ctx -> Iolb_ir.Program.t
val ctx_params : ctx -> (string * int) list

(** Verified hourglass patterns of the spec (forced on demand). *)
val ctx_hourglasses : ctx -> Iolb.Hourglass.t list

(** All derived bounds (hourglass + classical), as {!Iolb.Derive.analyze}. *)
val ctx_bounds : ctx -> Iolb.Derive.t list

type t = {
  name : string;  (** stable identifier, used by [--props] *)
  doc : string;
}

(** [run oracle ctx] evaluates the property.  [Budget.Exhausted] escapes
    (the caller owns the budget contract); any other exception is itself a
    counterexample and comes back as [Fail]. *)
val run : t -> ctx -> outcome

(** The default registry, in pipeline order: [card], [iset-ref], [cdag],
    [footprint], [phi], [bound-le-opt], [monotone-s], [sweep-lru],
    [jobs-det], [hourglass-path], [split-regions] (region-based split
    search = brute-force enumeration), [region-cover] (parametric-simplex
    regions tile [1/2, 1] and agree exactly with pinned-theta plain
    solves). *)
val all : t list

(** A deliberately failing oracle ([demo-broken]), excluded from {!all}:
    selecting it via [--props demo-broken] demonstrates the counterexample
    path (shrinking, JSON artifact, exit code 1) without a real engine
    bug.  Used by the fault-injection tests. *)
val demo_broken : t

(** Resolve comma-separated [--props] names ("all" and "default" are
    aliases for {!all}).  [Error msg] names the unknown property and lists
    the known ones. *)
val find : string -> (t list, string) result
