lib/util/maxheap.ml: Array
