lib/ir/access.ml: Array Format Hashtbl Iolb_poly List String
