(** Modified Gram-Schmidt (MGS).

    Three views of the kernel:
    - {!spec}: the right-looking polyhedral program of the paper (Figure 1),
      input to the lower-bound engine;
    - {!factor}: the executable right-looking factorisation;
    - {!factor_tiled} / {!tiled_spec}: the left-looking tiled ordering of
      Appendix A.1 (Figure 8), whose I/O matches the new lower bound when
      [(M+1)*B < S]. *)

(** The right-looking MGS program over parameters [M] (rows) and [N]
    (columns), statements [Snrm0], [Snrm], [Srkk], [Sq], [Sr0], [SR], [SU]. *)
val spec : Iolb_ir.Program.t

(** [factor a] returns [(q, r)] with [a = q * r], [q] having orthonormal
    columns, for a full-column-rank [m x n] matrix with [m >= n]. *)
val factor : Matrix.t -> Matrix.t * Matrix.t

(** [factor_tiled ~b a]: the Figure 8 left-looking tiled ordering with block
    size [b >= 1].  Results are numerically equivalent to {!factor} up to
    rounding. *)
val factor_tiled : b:int -> Matrix.t -> Matrix.t * Matrix.t

(** [tiled_spec ~m ~n ~b] is the Figure 8 ordering as a concrete
    (parameter-free) program, for trace generation and cache simulation.
    Requires [1 <= b]. *)
val tiled_spec : m:int -> n:int -> b:int -> Iolb_ir.Program.t

(** The paper's predicted leading-term I/O of the tiled ordering,
    [M^2*N^2 / (2*S)] (Appendix A.1), as a float. *)
val tiled_io_prediction : m:int -> n:int -> s:int -> float

(** [tiled_right_spec ~m ~n ~b] is the right-looking tiled variant the
    paper's Appendix A.1 remarks on: same asymptotic I/O, but the trailing
    matrix is read {e and written} once per block, so the constant is
    higher and dominated by writes.  For the left-vs-right ablation. *)
val tiled_right_spec : m:int -> n:int -> b:int -> Iolb_ir.Program.t
