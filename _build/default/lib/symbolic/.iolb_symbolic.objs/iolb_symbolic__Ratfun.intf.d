lib/symbolic/ratfun.mli: Format Iolb_util Polynomial
