test/test_simplex.ml: Alcotest Iolb_lp Iolb_util List QCheck2 QCheck_alcotest
