lib/core/report.mli: Derive Format Hourglass Iolb_ir Iolb_symbolic Paper_formulas
