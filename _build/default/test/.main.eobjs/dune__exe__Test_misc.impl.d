test/test_misc.ml: Alcotest Array Buffer Cache Format Fun Iolb_cdag Iolb_ir Iolb_kernels Iolb_pebble Iolb_poly Iolb_symbolic Iolb_util String Trace
