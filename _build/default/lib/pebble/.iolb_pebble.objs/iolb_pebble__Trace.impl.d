lib/pebble/trace.ml: Array Format Hashtbl Iolb_ir List String
