(** Analysis driver for parsed programs: the single rendering path behind
    [iolb analyze], [iolb bounds --file] and the differential tests.

    Byte-identity contract: for a source file that {!resolve}s to a built-in
    registry entry, {!render_source} produces exactly the bytes [iolb
    analyze <name>] (with [logs:true]) or the kernel's section of [iolb
    bounds] (with [logs:false]) prints today; for any other well-formed
    source it produces the graceful-degradation ladder report the CLI
    prints for baselines. *)

(** [resolve src] is the registry entry whose program is
    {!Iolb_ir.Program.equal} to the parsed one with the same verify
    bindings, if any.  Resolution is structural: renaming a statement or
    perturbing a bound makes a source a custom program, never a mislabelled
    built-in. *)
val resolve : Front.source -> Iolb.Report.entry option

(** [render_analysis ~logs a] renders a registry analysis; [logs] appends
    each bound's derivation log lines as [iolb analyze] does. *)
val render_analysis : logs:bool -> Iolb.Report.analysis -> string

(** [render_outcome ~logs o] renders a ladder outcome (degradation line,
    the no-bound notice, then each bound). *)
val render_outcome : logs:bool -> Iolb.Derive.outcome -> string

(** [render_kernel ~budget ~logs name] is the report for a built-in kernel
    name: registry first, then baselines, then the unknown-kernel error. *)
val render_kernel :
  budget:Iolb_util.Budget.t ->
  logs:bool ->
  string ->
  (string, Iolb_util.Engine_error.t) result

val render_source :
  budget:Iolb_util.Budget.t ->
  logs:bool ->
  Front.source ->
  (string, Iolb_util.Engine_error.t) result

(** [render_file ~budget ~logs path] parses [path] and renders it. *)
val render_file :
  budget:Iolb_util.Budget.t ->
  logs:bool ->
  string ->
  (string, Iolb_util.Engine_error.t) result

(** [describe src] is a one-line structural summary for [iolb check
    --parse]: parameter/statement/dependence-relation counts plus the
    resolved built-in name when the program matches one. *)
val describe : Front.source -> string
