test/test_asymptotic.ml: Alcotest Iolb Iolb_symbolic List Printf
