(* Splitmix64 (Steele, Lea & Flood 2014): tiny, high-quality, and - unlike
   [Stdlib.Random], whose algorithm changed across OCaml releases - stable
   forever, which is what makes seeds replayable identifiers. *)

type rng = { mutable state : int64 }

let rng ~seed = { state = Int64.of_int seed }

let next_u64 r =
  let open Int64 in
  r.state <- add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int_range r lo hi =
  if hi < lo then invalid_arg "Gen.int_range: hi < lo";
  let span = hi - lo + 1 in
  let raw = Int64.to_int (Int64.shift_right_logical (next_u64 r) 2) in
  lo + (raw mod span)

let bool r = Int64.logand (next_u64 r) 1L = 1L

let nest r =
  let depth = int_range r 1 4 in
  (* Deep nests get narrow levels, keeping the instance count (and hence
     CDAG / pebble-game cost per spec) roughly flat across depths. *)
  let max_size = match depth with 1 -> 5 | 2 -> 4 | 3 -> 3 | _ -> 2 in
  let sizes = List.init depth (fun _ -> int_range r 2 max_size) in
  let triangular =
    List.init depth (fun i -> i > 0 && int_range r 0 3 = 0)
  in
  let param_n =
    if int_range r 0 2 = 0 then Some (int_range r 1 4) else None
  in
  let n_stmts = int_range r 1 3 in
  let write_arity = int_range r 1 (min 2 depth) in
  let read_shifts =
    List.init (int_range r 0 2) (fun _ -> int_range r (-1) 1)
  in
  Spec.Nest
    {
      depth;
      sizes;
      triangular;
      param_n;
      n_stmts;
      write_arity;
      read_shifts;
      self_read = bool r;
      consumer = bool r;
      shallow = int_range r 0 3 = 0;
    }

let hourglass r =
  let neutral = bool r in
  Spec.Hourglass
    {
      m = int_range r 2 6;
      temporal_trip = int_range r 2 3;
      neutral;
      neutral_trip = int_range r 1 3;
      triangular = neutral && bool r;
      q_read = bool r;
      flat_reads = int_range r 0 2;
      init_stmt = int_range r 0 3 > 0;
    }

let spec ~seed =
  let r = rng ~seed in
  let pick = int_range r 0 2 in
  Spec.normalize (if pick = 0 then hourglass r else nest r)
