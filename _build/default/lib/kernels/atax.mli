(** ATAX (Polybench): y = A^T (A x).  A 2-D kernel with no superlinear data
    reuse: the best Brascamp-Lieb exponent is 1, so the K-partitioning
    method yields no S-dependent bound (the I/O is just Theta(inputs)).
    Serves as the matvec-class negative control for the engine. *)

val spec : Iolb_ir.Program.t

(** [run a x] computes [A^T (A x)]. *)
val run : Matrix.t -> float array -> float array
