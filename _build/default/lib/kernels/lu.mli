(** Right-looking LU factorisation without pivoting.

    Another no-hourglass baseline: the classical K-partition bound
    Theta(N^3 / sqrt S) is asymptotically tight for it. *)

val spec : Iolb_ir.Program.t

(** [factor a] factors in place-style: returns [(l, u)] with unit-diagonal
    [l], for a matrix with non-vanishing leading minors (e.g. diagonally
    dominant).  @raise Invalid_argument on a zero pivot. *)
val factor : Matrix.t -> Matrix.t * Matrix.t

(** Deterministic diagonally-dominant test matrix. *)
val random_dd : ?seed:int -> int -> Matrix.t
