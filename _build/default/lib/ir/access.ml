module Affine = Iolb_poly.Affine

type t = { array : string; index : Affine.t list }

let make array index = { array; index }
let scalar x = { array = x; index = [] }

let eval env a =
  (a.array, Array.of_list (List.map (Affine.eval env) a.index))

let dims_used a =
  List.sort_uniq String.compare (List.concat_map Affine.vars a.index)

let selected_dims ~dims a =
  let exception Not_coordinate in
  try
    let seen = Hashtbl.create 4 in
    let sel =
      List.filter_map
        (fun e ->
          let loop_vars = List.filter (fun x -> List.mem x dims) (Affine.vars e) in
          match loop_vars with
          | [] -> None (* constant or parameter-only index *)
          | [ x ] ->
              if Affine.coeff x e <> 1 && Affine.coeff x e <> -1 then
                raise Not_coordinate;
              if Hashtbl.mem seen x then raise Not_coordinate;
              Hashtbl.add seen x ();
              Some x
          | _ -> raise Not_coordinate)
        a.index
    in
    Some sel
  with Not_coordinate -> None

let equal a b = a.array = b.array && List.equal Affine.equal a.index b.index

let pp fmt a =
  if a.index = [] then Format.pp_print_string fmt a.array
  else
    Format.fprintf fmt "%s[%a]" a.array
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "][")
         Affine.pp)
      a.index
