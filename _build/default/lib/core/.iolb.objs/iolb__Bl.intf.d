lib/core/bl.mli: Format Iolb_util
