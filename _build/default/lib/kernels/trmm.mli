(** Triangular matrix multiplication (Polybench flavour): B := A * B with
    unit-lower-triangular A, computed as
    [B(i,j) += sum_{k > i} A(k,i) * B(k,j)].  Classical
    Theta(M^2 N / sqrt S) kernel, no hourglass (the update never feeds a
    later temporal iteration of itself through a reduction). *)

val spec : Iolb_ir.Program.t

(** [run a b] with [a] unit lower triangular [m x m], [b] of size [m x n]. *)
val run : Matrix.t -> Matrix.t -> Matrix.t
