lib/core/hourglass.mli: Format Iolb_ir Iolb_poly Iolb_symbolic
