examples/mgs_tiling.mli:
