module P = Iolb_symbolic.Polynomial
module R = Iolb_symbolic.Ratfun
module Rat = Iolb_util.Rat

type kernel = Mgs | A2v | V2q | Gebd2 | Gehd2

let kernel_name = function
  | Mgs -> "mgs"
  | A2v -> "qr_hh_a2v"
  | V2q -> "qr_hh_v2q"
  | Gebd2 -> "gebd2"
  | Gehd2 -> "gehd2"

let all_kernels = [ Mgs; A2v; V2q; Gebd2; Gehd2 ]

(* Small expression DSL for readable transcriptions. *)
let m = P.var "M"
let n = P.var "N"
let s = P.var "S"
let sqrt_s = P.var "sqrtS"
let i k = P.of_int k
let q a b = P.of_rat (Rat.make a b)

open P.Infix

let ( /: ) num den = R.make num den
let ( +: ) = R.add

(* Figure 5, old (classical) bounds. *)
let fig5_old = function
  | Mgs ->
      ((i 2 * m) + (i 3 * m * n) + (m * n * n)) /: sqrt_s
      +: R.of_poly
           ((i 5 * m) - (m * n) + (q 7 2 * n) - (q 1 2 * n * n) - s - i 6)
  | A2v ->
      ((i 3 * m * n * n) + (i 6 * m) + (i 7 * n) - (n * n * n) - (i 9 * m * n) - i 6)
      /: (i 3 * sqrt_s)
      +: R.of_poly ((i 5 * m) - (m * n) + (i 5 * n) - s - i 13)
  | V2q ->
      ((i 3 * m * n * n) - (n * n * n) + (i 6 * m) + (i 7 * n) - (i 9 * m * n) - i 6)
      /: (i 3 * sqrt_s)
      +: R.of_poly
           ((i 2 * m) + (i 2 * n) + (q 1 2 * n) - (q 1 2 * n * n) - s - i 4)
  | Gebd2 ->
      ((i 3 * m * n * n) - (n * n * n) - (i 9 * m * n) + (i 6 * m) + (i 7 * n) - i 6)
      /: (i 3 * sqrt_s)
      +: R.of_poly ((i 5 * n) + (i 5 * m) - (m * n) - s - i 13)
  | Gehd2 ->
      ((i 5 * n * n * n) - (i 30 * n * n) + (i 55 * n) - i 30) /: (i 3 * sqrt_s)
      +: R.of_poly ((q 69 2 * n) - (q 9 2 * n * n) - (i 3 * s) - i 56)

(* Figure 5, new (hourglass) bounds.  Denominators of the form
   c * (1 + S/X) are written as c * (X + S) / X. *)
let fig5_new = function
  | Mgs ->
      ((n * n * m * m) + (i 2 * m * m) - (i 3 * n * m * m)) /: (i 8 * (m + s))
      +: R.of_poly
           ((i 5 * m) - (m * n) + (q 7 2 * n) - (q 1 2 * n * n) - s - i 6)
  | A2v ->
      (* 24 * (1 + S/(M-N)) = 24 (M - N + S) / (M - N); the paper's row
         prints (1 - S/(N-M)), the same quantity. *)
      (((i 3 * m * n * n) - (i 9 * m * n) + (i 7 * n) + (i 6 * m) - i 6
       - (n * n * n))
      * (m - n))
      /: (i 24 * (m - n + s))
      +: R.of_poly ((i 5 * m) - (m * n) + (i 5 * n) - s - i 13)
  | V2q ->
      (((i 3 * m * n * n) - (n * n * n) + (i 6 * m) + (i 7 * n) - (i 9 * m * n)
       - i 6)
      * (m - n))
      /: (i 24 * (m - n + s))
      +: R.of_poly
           ((i 2 * m) + (i 2 * n) + (q 1 2 * n) - (q 1 2 * n * n) - s - i 4)
  | Gebd2 ->
      (((i 3 * m * n * n) - (n * n * n) + (i 3 * n * n) - (i 15 * m * n)
       + (i 4 * n) + (i 18 * m) - i 12)
      * (m - n + i 1))
      /: (i 24 * (m - n + i 1 + s))
      +: R.of_poly ((i 5 * n) + (i 7 * m) - (m * n) - s - i 18)
  | Gehd2 ->
      (* Split parameter instantiated at M = N/2 - 1 (proof of Theorem 9):
         N - M - 1 = N/2. *)
      let w = q 1 2 * n in
      (((n * n * n) - (i 6 * n * n) + (i 11 * n) - i 6) * w)
      /: (i 12 * (w + s))
      +: R.of_poly ((i 12 * n) - (n * n) - s - i 19)

let fig4_old = function
  | Mgs | A2v | V2q | Gebd2 -> "Omega(M*N^2 / sqrt(S))"
  | Gehd2 -> "Omega(N^3 / sqrt(S))"

let fig4_new = function
  | Mgs -> "Omega(M^2*N*(N-1) / (S+M))"
  | A2v | V2q -> "Omega(M*N^2*(M-N) / (M-N+S))"
  | Gebd2 -> "Omega(M*N^2*(M-N+1) / (8*(S+M-N+1)))"
  | Gehd2 -> "Omega(N^4 / (N+2S))"

let theorem_main = function
  | Mgs -> (m * m * n * (n - i 1)) /: (i 8 * (s + m))
  | A2v ->
      (((i 3 * m) - n) * n * n * (m - n) * (m - n))
      /: (i 24 * ((m * s) + ((m - n) * (m - n))))
  | V2q ->
      (n * (n - i 1) * ((i 3 * m) - n - i 1) * (m - n) * (m - n))
      /: (i 24 * (((m - n) * (m - n)) + (s * m)))
  | Gebd2 ->
      (m * n * n * (m - n + i 1)) /: (i 8 * (s + m - n + i 1))
  | Gehd2 -> (n * n * n * n) /: (i 12 * (n + (i 2 * s)))

let theorem_small = function
  | Mgs -> Some ((m - s) * n * (n - i 1) /: i 4)
  | Gehd2 -> Some ((n * n * n) /: i 24)
  | A2v | V2q | Gebd2 -> None

let eval_at f ~m:mv ~n:nv ~s:sv =
  let env = function
    | "M" -> float_of_int mv
    | "N" -> float_of_int nv
    | "S" -> float_of_int sv
    | "sqrtS" -> sqrt (float_of_int sv)
    | x -> invalid_arg ("Paper_formulas.eval_at: unknown variable " ^ x)
  in
  R.eval_float_env env f
