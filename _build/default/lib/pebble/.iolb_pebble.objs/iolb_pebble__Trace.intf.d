lib/pebble/trace.mli: Format Iolb_ir
