open Shorthand

let spec =
  Program.make ~name:"atax" ~params:[ "M"; "N" ]
    ~assumptions:[ Constr.ge_of (v "M") (c 1); Constr.ge_of (v "N") (c 1) ]
    [
      loop_lt "i" (c 0) (v "M")
        [
          stmt "St0" ~writes:[ a1 "tmp" (v "i") ] ~reads:[];
          loop_lt "j" (c 0) (v "N")
            [
              stmt "St"
                ~writes:[ a1 "tmp" (v "i") ]
                ~reads:[ a1 "tmp" (v "i"); a2 "A" (v "i") (v "j"); a1 "x" (v "j") ];
            ];
        ];
      loop_lt "j" (c 0) (v "N")
        [ stmt "Sy0" ~writes:[ a1 "y" (v "j") ] ~reads:[] ];
      loop_lt "i" (c 0) (v "M")
        [
          loop_lt "j" (c 0) (v "N")
            [
              stmt "Sy"
                ~writes:[ a1 "y" (v "j") ]
                ~reads:[ a1 "y" (v "j"); a2 "A" (v "i") (v "j"); a1 "tmp" (v "i") ];
            ];
        ];
    ]

let run a x =
  let m, n = Matrix.dims a in
  if Array.length x <> n then invalid_arg "Atax.run: dimension mismatch";
  let tmp = Array.make m 0. in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      tmp.(i) <- tmp.(i) +. (Matrix.get a i j *. x.(j))
    done
  done;
  let y = Array.make n 0. in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      y.(j) <- y.(j) +. (Matrix.get a i j *. tmp.(i))
    done
  done;
  y
