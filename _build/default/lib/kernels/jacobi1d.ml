open Shorthand

let spec =
  let n = v "N" and t1 = v "t" in
  Program.make ~name:"jacobi1d" ~params:[ "T"; "N" ]
    ~assumptions:[ Constr.ge_of (v "T") (c 1); Constr.ge_of (v "N") (c 3) ]
    [
      loop_lt "t" (c 0) (v "T")
        [
          loop_lt "i" (c 1)
            (n -! c 1)
            [
              stmt "SB"
                ~writes:[ a2 "A" (t1 +! c 1) (v "i") ]
                ~reads:
                  [
                    a2 "A" t1 (v "i" -! c 1);
                    a2 "A" t1 (v "i");
                    a2 "A" t1 (v "i" +! c 1);
                  ];
            ];
        ];
    ]

let run ~steps src =
  let n = Array.length src in
  let cur = Array.copy src and next = Array.copy src in
  let cur = ref cur and next = ref next in
  for _ = 1 to steps do
    for i = 1 to n - 2 do
      !next.(i) <- (!cur.(i - 1) +. !cur.(i) +. !cur.(i + 1)) /. 3.
    done;
    let t = !cur in
    cur := !next;
    next := t
  done;
  !cur
