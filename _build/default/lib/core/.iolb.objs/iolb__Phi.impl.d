lib/core/phi.ml: Format Iolb_ir List String
