open Lexer

exception Bail of Diag.t

(* The parser state is a cursor over the token array (which always ends
   with EOF, so [peek] is total). *)
type st = { toks : located array; mutable pos : int }

let peek st = st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let fail_at (l : located) expected =
  raise
    (Bail
       (Diag.makef l.loc "expected %s, got %s" expected (describe l.tok)))

(* [eat st tok expected]: consume exactly [tok] or fail listing [expected]
   (a human rendering of the acceptable-token set at this point). *)
let eat st tok expected =
  let l = peek st in
  if l.tok = tok then advance st else fail_at l expected

let ident st expected =
  let l = peek st in
  match l.tok with
  | IDENT x ->
      advance st;
      (x, l.loc)
  | _ -> fail_at l expected

(* ------------------------------------------------------------------ *)
(* Expressions.                                                        *)

let rec factor st =
  let l = peek st in
  match l.tok with
  | INT v ->
      advance st;
      Ast.Int (v, l.loc)
  | IDENT x ->
      advance st;
      Ast.Var (x, l.loc)
  | MINUS ->
      advance st;
      Ast.Neg (factor st, l.loc)
  | LPAREN ->
      advance st;
      let e = expr st in
      eat st RPAREN "')' closing the parenthesised expression";
      e
  | _ -> fail_at l "an expression (integer, name, '-' or '(')"

and term st =
  let rec loop acc =
    let l = peek st in
    match l.tok with
    | STAR ->
        advance st;
        loop (Ast.Mul (acc, factor st, l.loc))
    | _ -> acc
  in
  loop (factor st)

and expr st =
  let rec loop acc =
    match (peek st).tok with
    | PLUS ->
        advance st;
        loop (Ast.Add (acc, term st))
    | MINUS ->
        advance st;
        loop (Ast.Sub (acc, term st))
    | _ -> acc
  in
  loop (term st)

(* ------------------------------------------------------------------ *)
(* Header clauses.                                                     *)

let constr st =
  let lhs = expr st in
  let l = peek st in
  let cmp =
    match l.tok with
    | GE -> Ast.Cge
    | LE -> Ast.Cle
    | GT -> Ast.Cgt
    | LT -> Ast.Clt
    | EQ | EQEQ -> Ast.Ceq
    | _ -> fail_at l "a comparison ('>=', '<=', '>', '<' or '=')"
  in
  advance st;
  let rhs = expr st in
  { Ast.lhs; cmp; rhs }

let int_literal st expected =
  let l = peek st in
  match l.tok with
  | INT v ->
      advance st;
      v
  | MINUS -> (
      advance st;
      let l2 = peek st in
      match l2.tok with
      | INT v ->
          advance st;
          -v
      | _ -> fail_at l2 expected)
  | _ -> fail_at l expected

let rec comma_sep st one =
  let first = one st in
  if (peek st).tok = COMMA then begin
    advance st;
    first :: comma_sep st one
  end
  else [ first ]

(* ------------------------------------------------------------------ *)
(* Statements and loops.                                               *)

let access st =
  let arr, arr_loc = ident st "an array or scalar name" in
  let rec indices acc =
    if (peek st).tok = LBRACKET then begin
      advance st;
      let e = expr st in
      eat st RBRACKET "']' closing the subscript";
      indices (e :: acc)
    end
    else List.rev acc
  in
  { Ast.arr; arr_loc; index = indices [] }

(* [name: w1, w2[i] = f(r1, r2[i - 1]);] — the writes before '=', the
   reads as arguments of the opaque function 'f'.  A statement with no
   writes drops the '=' part: [name: f(r);].  The lookahead is
   unambiguous: a write access is never followed by '('. *)
let reads_call st =
  eat st LPAREN "'(' opening the read list of 'f'";
  let reads =
    if (peek st).tok = RPAREN then [] else comma_sep st access
  in
  eat st RPAREN "')' closing the read list";
  reads

let stmt_tail st sname sloc =
  eat st COLON "':' after the statement id";
  let next_tok =
    if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).tok else EOF
  in
  let no_writes =
    match ((peek st).tok, next_tok) with
    | IDENT "f", LPAREN -> true
    | _ -> false
  in
  let writes = if no_writes then [] else comma_sep st access in
  if not no_writes then
    eat st EQ "'=' between the written cells and the 'f(...)' read list";
  let f, floc = ident st "'f' (every statement computes opaque 'f(reads)')" in
  if f <> "f" then
    raise
      (Bail
         (Diag.makef floc
            "expected 'f' (every statement computes opaque 'f(reads)'), got \
             identifier %S"
            f));
  let reads = reads_call st in
  eat st SEMI "';' terminating the statement";
  Ast.Stmt { sname; sloc; writes; reads }

let rec node st =
  let l = peek st in
  match l.tok with
  | FOR ->
      advance st;
      let var, var_loc = ident st "a loop variable after 'for'" in
      eat st EQ "'=' after the loop variable";
      let first = expr st in
      let l2 = peek st in
      let down =
        match l2.tok with
        | DOTDOT -> false
        | DOWNTO -> true
        | _ -> fail_at l2 "'..' or 'downto' between the loop bounds"
      in
      advance st;
      let second = expr st in
      eat st LBRACE "'{' opening the loop body";
      let body = nodes st in
      eat st RBRACE "'}' closing the loop body";
      Ast.For { var; var_loc; first; second; down; body }
  | IDENT _ ->
      let sname, sloc = ident st "a statement id" in
      stmt_tail st sname sloc
  | _ -> fail_at l "'for', a statement id, or '}' closing the body"

and nodes st =
  match (peek st).tok with
  | RBRACE | EOF -> []
  | _ ->
      let n = node st in
      n :: nodes st

(* ------------------------------------------------------------------ *)
(* Kernel.                                                             *)

let kernel st =
  eat st KERNEL "'kernel' opening the program";
  let kname, kname_loc = ident st "the kernel name after 'kernel'" in
  eat st LPAREN "'(' opening the parameter list";
  let params =
    if (peek st).tok = RPAREN then []
    else comma_sep st (fun st -> ident st "a parameter name")
  in
  eat st RPAREN "')' closing the parameter list";
  let assumes = ref [] and verify = ref [] in
  let rec clauses () =
    match (peek st).tok with
    | ASSUME ->
        advance st;
        assumes := !assumes @ comma_sep st constr;
        clauses ()
    | VERIFY ->
        advance st;
        let one st =
          let name, loc = ident st "a parameter name in the verify clause" in
          eat st EQ "'=' after the verify parameter name";
          let v = int_literal st "an integer verify value" in
          (name, loc, v)
        in
        verify := !verify @ comma_sep st one;
        clauses ()
    | _ -> ()
  in
  clauses ();
  eat st LBRACE "'{' opening the kernel body (or 'assume'/'verify')";
  let body = nodes st in
  eat st RBRACE "'}' closing the kernel body";
  eat st EOF "end of input after the kernel";
  {
    Ast.kname;
    kname_loc;
    params;
    assumes = !assumes;
    verify = !verify;
    body;
  }

let parse toks =
  match kernel { toks; pos = 0 } with
  | k -> Ok k
  | exception Bail d -> Error d
