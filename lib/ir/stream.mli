(** Chunked streaming of a program's concrete access trace.

    A materialized {!Trace.t} costs one word per access, which at billions
    of accesses is gigabytes before any simulation starts.  This module
    walks the program directly and hands the consumer fixed-size {e reused}
    chunk buffers of interned cell ids, so streaming consumers (the sharded
    reuse-distance sweep) hold O(chunk_size) trace state. *)

type chunk = {
  ids : int array;  (** interned cell id per kept access *)
  writes : bool array;  (** write flag per kept access *)
  pos : int array;  (** global trace position per kept access *)
  mutable len : int;  (** live prefix length of the three arrays *)
}
(** A batch of consecutive kept accesses.  Only indices [0 .. len-1] are
    live; the arrays are {e reused} across callbacks — copy out anything
    you keep. *)

val default_chunk_size : int
(** 65536 accesses per chunk (~1.5 MiB of buffers). *)

val iter_chunks :
  ?budget:Iolb_util.Budget.t ->
  ?chunk_size:int ->
  ?lo:int ->
  ?hi:int ->
  ?keep:(string -> int array -> bool) ->
  params:(string * int) list ->
  interner:Interner.t ->
  Program.t ->
  (chunk -> unit) ->
  unit
(** [iter_chunks ~params ~interner p f] streams the accesses of [p] in
    program order as chunks, interning cells into [interner] on the fly.
    [lo]/[hi] restrict to global positions in [\[lo, hi)] (whole loop
    iterations outside the range are skipped by closed-form counting, see
    {!Program.iter_accesses_range}); [keep name index] filters cells {e
    before} interning, so rejected accesses cost one predicate call and
    nothing else — this is how spatially-hashed sampling skips most of the
    trace.  [chunk.pos] always carries the global (unfiltered) position.
    Budget semantics match {!Trace.of_program}: a [Cdag_build] checkpoint
    and node-cap probe per visited instance.
    @raise Invalid_argument if [chunk_size < 1] or the range is invalid. *)
