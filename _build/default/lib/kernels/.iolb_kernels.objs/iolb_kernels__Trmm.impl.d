lib/kernels/trmm.ml: Constr Matrix Program Shorthand
