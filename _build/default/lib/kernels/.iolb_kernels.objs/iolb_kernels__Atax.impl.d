lib/kernels/atax.ml: Array Constr Matrix Program Shorthand
