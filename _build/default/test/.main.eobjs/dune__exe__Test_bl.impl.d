test/test_bl.ml: Alcotest Fun Iolb Iolb_util List Printf QCheck2 QCheck_alcotest String
