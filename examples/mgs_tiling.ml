(* The Appendix A.1 experiment as a study: sweep the block size B of the
   tiled left-looking MGS against the cache simulator and watch the I/O
   descend towards the hourglass lower bound, bottoming out at the paper's
   no-spill condition (M+1)B < S.

   Run with:  dune exec examples/mgs_tiling.exe -- [m] [n] [s] *)

module K = Iolb_kernels
module Cache = Iolb_pebble.Cache
module Sweep = Iolb_pebble.Sweep
module Trace = Iolb_pebble.Trace
module Report = Iolb.Report

let () =
  let m, n, s =
    match Sys.argv with
    | [| _; m; n; s |] -> (int_of_string m, int_of_string n, int_of_string s)
    | _ -> (48, 16, 400)
  in
  Printf.printf "Tiled MGS I/O study: m=%d n=%d S=%d\n" m n s;
  Printf.printf "paper block choice: B = floor(S/M) - 1 = %d\n" ((s / m) - 1);
  let analysis = Report.analyze (Report.find "mgs") in
  let lower =
    Option.get (Report.eval_best analysis ~technique:`Hourglass ~m ~n ~s)
  in
  let predicted b =
    (0.5 *. float_of_int (m * n * n) /. float_of_int b) +. float_of_int (m * n)
  in
  Printf.printf "\n%6s | %10s %10s | %10s | %10s | %8s\n" "B" "opt loads"
    "lru loads" "predicted" "lower bnd" "no-spill";
  List.iter
    (fun b ->
      if n mod b = 0 then begin
        let trace = Trace.of_program ~params:[] (K.Mgs.tiled_spec ~m ~n ~b) in
        let opt = Cache.opt ~size:s trace in
        let lru = Cache.lru ~size:s trace in
        Printf.printf "%6d | %10d %10d | %10.0f | %10.0f | %8b\n" b
          opt.Cache.loads lru.Cache.loads (predicted b) lower
          ((m + 1) * b < s)
      end)
    [ 1; 2; 4; 8; 16; 32 ];
  (* The untiled right-looking ordering for contrast. *)
  let untiled = Trace.of_program ~params:[ ("M", m); ("N", n) ] K.Mgs.spec in
  Printf.printf "\nuntiled right-looking (program order): opt=%d lru=%d\n"
    (Cache.opt ~size:s untiled).Cache.loads
    (Cache.lru ~size:s untiled).Cache.loads;
  (* Cache-size sweep at the paper's block: every S below is answered by a
     single reuse-distance pass (LRU, exact hits/stores for all sizes at
     once) plus per-size forward runs over one shared OPT plan. *)
  let b =
    (* largest divisor of n within the paper's choice floor(S/M) - 1 *)
    let bmax = max 1 ((s / m) - 1) in
    let best = ref 1 in
    for d = 2 to min n bmax do
      if n mod d = 0 then best := d
    done;
    !best
  in
  let trace = Trace.of_program ~params:[] (K.Mgs.tiled_spec ~m ~n ~b) in
  let sizes =
    List.filter (fun x -> x > 0) [ s / 8; s / 4; s / 2; s; 2 * s; 4 * s ]
  in
  let plan = Cache.opt_plan trace in
  Printf.printf
    "\ncache-size sweep of the tiled trace (B=%d, one stack-distance pass):\n" b;
  Printf.printf "%8s | %10s %10s %10s | %10s\n" "S" "lru loads" "hits" "stores"
    "opt loads";
  List.iter
    (fun (sz, lru) ->
      let opt = Cache.opt_run ~size:sz plan in
      Printf.printf "%8d | %10d %10d %10d | %10d\n" sz lru.Cache.loads
        lru.Cache.read_hits lru.Cache.stores opt.Cache.loads)
    (Sweep.lru_stats trace ~sizes);
  Printf.printf
    "\nReading: larger blocks divide the dominant (1/2)MN^2/B term until the\n\
     block no longer fits (no-spill false), at which point locality collapses.\n"
