test/test_pebble.ml: Alcotest Array Iolb_cdag Iolb_ir Iolb_kernels Iolb_pebble List Option Printf
