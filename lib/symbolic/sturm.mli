(** Exact real-root counting and isolation for univariate polynomials over
    {!Iolb_util.Rat}, via (generalised) Sturm sequences.

    This is the root-finding half of the regime analysis: the derivative
    sign changes of a rational bound [f(M) = num/den] isolate the interior
    candidates for an integer argmax, replacing brute-force enumeration
    (see {!Iolb.Derive.optimize_split_regions}).

    Everything is exact.  Remainder sequences are content-normalised
    (scaled to coprime integer coefficients) at every step, which keeps
    coefficients small in practice but can still overflow the 63-bit
    rationals on adversarial inputs: callers must be prepared for
    {!Iolb_util.Rat.Overflow} as well as {!Gave_up}, and fall back to a
    non-symbolic path. *)

(** Raised when the input leaves the supported fragment (multivariate
    polynomial, the zero polynomial, or an isolation that fails to
    converge within the depth cap). *)
exception Gave_up

(** Dense univariate polynomial; index = degree. *)
type t

(** Lowest-degree coefficient first. *)
val of_coeffs : Iolb_util.Rat.t list -> t

val coeffs : t -> Iolb_util.Rat.t list

(** View a {!Polynomial.t} as univariate in [var].
    @raise Gave_up if any other variable occurs. *)
val of_polynomial : var:string -> Polynomial.t -> t

(** [-1] for the zero polynomial. *)
val degree : t -> int

val is_zero : t -> bool
val eval : t -> Iolb_util.Rat.t -> Iolb_util.Rat.t
val derivative : t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Whether [p] has a real root in the closed interval [[lo, hi]].
    @raise Gave_up on the zero polynomial.
    @raise Invalid_argument if [lo > hi]. *)
val has_root_in : t -> lo:Iolb_util.Rat.t -> hi:Iolb_util.Rat.t -> bool

(** Disjoint intervals [(a, b]], in increasing order, each of width at
    most 1 and containing exactly one distinct real root of [p], covering
    every root in [[lo, hi]] (the probed interval is widened slightly, so
    roots at the endpoints are found and a few roots just outside may
    also be reported — harmless for candidate generation).
    @raise Gave_up on the zero polynomial or non-convergence. *)
val isolate_roots :
  t ->
  lo:Iolb_util.Rat.t ->
  hi:Iolb_util.Rat.t ->
  (Iolb_util.Rat.t * Iolb_util.Rat.t) list

(** [certified_sign p x] is the sign of [p(x)] at the integer [x], computed
    by float Horner with a running rounding-error bound: [Some s] only when
    the bound certifies the sign, [None] when it cannot.  Never raises
    {!Iolb_util.Rat.Overflow} — the degraded-precision path for
    coefficients too large for the exact remainder chain. *)
val certified_sign : t -> int -> int option

(** [possible_root_intervals p ~lo ~hi] is the ascending list of unit
    intervals [(m, m+1)] within [[lo, hi]] {e outside} of which [p]
    provably has no real root.  Certified endpoint signs plus Rolle
    recursion on derivatives: an interval is excluded only when the
    endpoint signs are certified equal and non-zero and the derivative
    provably has no root inside (so [p] is strictly monotone there).
    Conservative — reported intervals need not contain a root — and
    overflow-free, unlike {!has_root_in}/{!isolate_roots}.
    @raise Gave_up on the zero polynomial.
    @raise Invalid_argument if [lo > hi]. *)
val possible_root_intervals : t -> lo:int -> hi:int -> (int * int) list

(** [possible_extremum_intervals num den ~lo ~hi] is
    {!possible_root_intervals} for [g = num' den - num den'] (the
    stationary points of [num/den]), with [g] kept as a product sum and
    each factor evaluated separately — the expanded coefficients of [g],
    which overflow the exact path on large instantiations, are never
    formed.  Same conservative contract, same freedom from overflow.
    @raise Gave_up when [num] or [den] is the zero polynomial.
    @raise Invalid_argument if [lo > hi]. *)
val possible_extremum_intervals : t -> t -> lo:int -> hi:int -> (int * int) list

val pp : Format.formatter -> t -> unit
