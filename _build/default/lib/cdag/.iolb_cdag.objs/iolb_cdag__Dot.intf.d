lib/cdag/dot.mli: Cdag Format
