module Rat = Iolb_util.Rat
module P = Polynomial

exception Gave_up

(* Dense univariate polynomial, coefficient of x^i at index i; invariant:
   empty = zero, otherwise the top coefficient is non-zero. *)
type t = Rat.t array

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && Rat.is_zero a.(!n - 1) do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_coeffs l = normalize (Array.of_list l)
let coeffs = Array.to_list

let of_polynomial ~var p =
  (match P.vars p with
  | [] -> ()
  | [ v ] when String.equal v var -> ()
  | _ -> raise Gave_up);
  of_coeffs
    (List.map
       (fun c ->
         match P.is_constant c with Some q -> q | None -> raise Gave_up)
       (P.as_univariate var p))

let degree p = Array.length p - 1
let is_zero p = Array.length p = 0

let eval p x =
  let acc = ref Rat.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Rat.add (Rat.mul !acc x) p.(i)
  done;
  !acc

let derivative p =
  if Array.length p <= 1 then [||]
  else
    normalize
      (Array.init
         (Array.length p - 1)
         (fun i -> Rat.mul (Rat.of_int (i + 1)) p.(i + 1)))

let sub p q =
  let n = max (Array.length p) (Array.length q) in
  let at a i = if i < Array.length a then a.(i) else Rat.zero in
  normalize (Array.init n (fun i -> Rat.sub (at p i) (at q i)))

let mul p q =
  if is_zero p || is_zero q then [||]
  else begin
    let r = Array.make (Array.length p + Array.length q - 1) Rat.zero in
    Array.iteri
      (fun i pi ->
        if not (Rat.is_zero pi) then
          Array.iteri
            (fun j qj -> r.(i + j) <- Rat.add r.(i + j) (Rat.mul pi qj))
            q)
      p;
    normalize r
  end

(* Positive scaling to coprime integer coefficients (the primitive part).
   Keeps the remainder-sequence coefficients from exploding; signs are
   preserved, which is all Sturm's theorem cares about. *)
let content_normalize p =
  if is_zero p then p
  else begin
    let l =
      Array.fold_left
        (fun l c ->
          let d = Rat.den c in
          Rat.mul_exn (l / Rat.gcd_int l d) d)
        1 p
    in
    let ints = Array.map (fun c -> Rat.mul_exn (Rat.num c) (l / Rat.den c)) p in
    let g = Array.fold_left (fun g n -> Rat.gcd_int g n) 0 ints in
    Array.map (fun n -> Rat.of_int (n / g)) ints
  end

(* Remainder of p by q (deg q >= 0), by long division. *)
let rem p q =
  if is_zero q then invalid_arg "Sturm.rem: zero divisor";
  let dq = degree q in
  let lq = q.(dq) in
  let r = Array.copy p in
  let dr = ref (degree (normalize r)) in
  let r = Array.sub r 0 (!dr + 1) in
  let r = ref r in
  while degree !r >= dq && not (is_zero !r) do
    let d = degree !r in
    let f = Rat.div !r.(d) lq in
    let nr = Array.copy !r in
    for i = 0 to dq do
      nr.(d - dq + i) <- Rat.sub nr.(d - dq + i) (Rat.mul f q.(i))
    done;
    (* the top term cancels exactly; normalise to expose the new degree *)
    nr.(d) <- Rat.zero;
    r := normalize nr
  done;
  !r

(* The (generalised) Sturm sequence p, p', -rem(p, p'), ...: counts
   *distinct* real roots even for non-squarefree p, because the chain
   bottoms out at gcd(p, p'). *)
let chain p =
  let p0 = content_normalize p in
  let p1 = content_normalize (derivative p) in
  if is_zero p1 then [ p0 ]
  else begin
    let rec go acc a b =
      let r = rem a b in
      if is_zero r then List.rev (b :: acc)
      else begin
        let nr = content_normalize (Array.map Rat.neg r) in
        go (b :: acc) b nr
      end
    in
    go [ p0 ] p0 p1
  end

let sign_variations ch x =
  let signs =
    List.filter_map
      (fun p ->
        let s = Rat.sign (eval p x) in
        if s = 0 then None else Some s)
      ch
  in
  let rec count = function
    | a :: (b :: _ as tl) -> (if a <> b then 1 else 0) + count tl
    | _ -> 0
  in
  count signs

let has_root_in p ~lo ~hi =
  if is_zero p then raise Gave_up;
  if Rat.compare lo hi > 0 then invalid_arg "Sturm.has_root_in: lo > hi";
  Rat.is_zero (eval p lo)
  || Rat.is_zero (eval p hi)
  ||
  let ch = chain p in
  sign_variations ch lo - sign_variations ch hi > 0

(* A point near [x] (at [x] itself when allowed) where p does not vanish:
   p has at most [deg] roots, so among deg+1 distinct probes one works. *)
let pick_non_root p ~x ~step =
  let d = max 1 (degree p) in
  let rec go k =
    if k > d + 1 then raise Gave_up
    else begin
      let c = Rat.add x (Rat.mul (Rat.of_int k) step) in
      if Rat.is_zero (eval p c) then go (k + 1) else c
    end
  in
  if Rat.is_zero (eval p x) then go 1 else x

let isolate_roots p ~lo ~hi =
  if is_zero p then raise Gave_up;
  if Rat.compare lo hi > 0 then invalid_arg "Sturm.isolate_roots: lo > hi";
  if degree p <= 0 then []
  else begin
    let d = degree p in
    let frac = Rat.make 1 (d + 2) in
    (* Widen so roots sitting exactly on lo/hi land inside the probed
       half-open interval (a, b]. *)
    let a0 = pick_non_root p ~x:lo ~step:(Rat.neg frac) in
    let b0 = pick_non_root p ~x:hi ~step:frac in
    let ch = chain p in
    let var x = sign_variations ch x in
    let rec bisect depth a va b vb =
      let n = va - vb in
      if n = 0 then []
      else if depth > 64 then raise Gave_up
      else if n = 1 && Rat.compare (Rat.sub b a) Rat.one <= 0 then [ (a, b) ]
      else begin
        let mid = Rat.mul Rat.half (Rat.add a b) in
        let c =
          pick_non_root p ~x:mid
            ~step:(Rat.mul (Rat.sub b a) (Rat.make 1 (2 * (d + 2))))
        in
        let vc = var c in
        bisect (depth + 1) a va c vc @ bisect (depth + 1) c vc b vb
      end
    in
    bisect 0 a0 (var a0) b0 (var b0)
  end

(* Sign of p(x) at an integer, by float Horner with a running error
   bound (Higham's p-tilde recurrence, with slack for the Rat -> float
   coefficient conversions): the computed value is trusted only when its
   magnitude exceeds the accumulated bound.  Never overflows - the
   fallback when Rat arithmetic cannot survive the remainder chain. *)
let certified_sign p x =
  let xf = float_of_int x in
  let ax = Float.abs xf in
  let acc = ref 0. and mag = ref 0. in
  for i = Array.length p - 1 downto 0 do
    let c = Rat.to_float p.(i) in
    acc := (!acc *. xf) +. c;
    mag := (!mag *. ax) +. Float.abs c
  done;
  let bound =
    float_of_int (4 * (Array.length p + 2)) *. epsilon_float *. !mag
  in
  if Float.abs !acc > bound then Some (compare !acc 0.) else None

(* Unit intervals [m, m+1] in [lo, hi] outside of which p provably has no
   real root.  An interval is root-free when the certified endpoint signs
   agree *and* (by Rolle, inductively) the derivative has no root inside:
   then p is strictly monotone there, so equal nonzero endpoint signs
   exclude a root.  Everything uncertain is reported - conservative, and
   immune to the coefficient growth that makes {!chain} overflow. *)
let possible_root_intervals p ~lo ~hi =
  if is_zero p then raise Gave_up;
  if hi < lo then invalid_arg "Sturm.possible_root_intervals: lo > hi";
  let cells = hi - lo in
  if cells = 0 then []
  else begin
    let breaks = Array.make cells false in
    let rec scan p =
      if degree p <= 0 then begin
        (* a constant: no roots if certainly non-zero, else everywhere *)
        match if is_zero p then None else certified_sign p lo with
        | Some _ -> ()
        | None -> Array.fill breaks 0 cells true
      end
      else begin
        let signs =
          Array.init (cells + 1) (fun i -> certified_sign p (lo + i))
        in
        for m = 0 to cells - 1 do
          (match (signs.(m), signs.(m + 1)) with
          | Some a, Some b when a = b -> ()
          | _ -> breaks.(m) <- true)
        done;
        scan (derivative p)
      end
    in
    scan p;
    let out = ref [] in
    for m = cells - 1 downto 0 do
      if breaks.(m) then out := (lo + m, lo + m + 1) :: !out
    done;
    !out
  end

(* Float Horner at [xf], returning the value together with the magnitude
   polynomial p~(|x|) = sum |c_i| |x|^i that scales its rounding error. *)
let horner_mag p xf =
  let ax = Float.abs xf in
  let v = ref 0. and m = ref 0. in
  for i = Array.length p - 1 downto 0 do
    let c = Rat.to_float p.(i) in
    v := (!v *. xf) +. c;
    m := (!m *. ax) +. Float.abs c
  done;
  (!v, !m)

(* Certified sign of [sum_k s_k p_k(x) q_k(x)] at the integer [x].  Each
   factor is evaluated separately, so no coefficient of the expanded
   product is ever formed - the expansion is what overflows the exact
   path on large instantiations. *)
let certified_prodsum_sign terms x =
  let xf = float_of_int x in
  let v = ref 0. and m = ref 0. and dmax = ref 0 in
  List.iter
    (fun (s, p, q) ->
      let vp, mp = horner_mag p xf in
      let vq, mq = horner_mag q xf in
      v := !v +. (float_of_int s *. vp *. vq);
      m := !m +. (mp *. mq);
      dmax := max !dmax (degree p + degree q))
    terms;
  let bound =
    float_of_int (4 * (!dmax + List.length terms + 4)) *. epsilon_float *. !m
  in
  if Float.abs !v > bound then Some (compare !v 0.) else None

let prodsum_derivative terms =
  List.concat_map
    (fun (s, p, q) ->
      let keep p q = if is_zero p || is_zero q then [] else [ (s, p, q) ] in
      keep (derivative p) q @ keep p (derivative q))
    terms

let prodsum_degree terms =
  List.fold_left (fun d (_, p, q) -> max d (degree p + degree q)) (-1) terms

let possible_extremum_intervals num den ~lo ~hi =
  if is_zero num || is_zero den then raise Gave_up;
  if hi < lo then invalid_arg "Sturm.possible_extremum_intervals: lo > hi";
  let cells = hi - lo in
  if cells = 0 then []
  else begin
    let breaks = Array.make cells false in
    (* g = num' den - num den', kept as a product sum *)
    let g =
      List.filter
        (fun (_, p, q) -> not (is_zero p || is_zero q))
        [ (1, derivative num, den); (-1, num, derivative den) ]
    in
    let rec scan terms =
      if terms = [] then () (* identically zero at this level: constant *)
      else if prodsum_degree terms <= 0 then begin
        match certified_prodsum_sign terms lo with
        | Some _ -> ()
        | None -> Array.fill breaks 0 cells true
      end
      else begin
        let signs =
          Array.init (cells + 1) (fun i -> certified_prodsum_sign terms (lo + i))
        in
        for m = 0 to cells - 1 do
          (match (signs.(m), signs.(m + 1)) with
          | Some a, Some b when a = b -> ()
          | _ -> breaks.(m) <- true)
        done;
        scan (prodsum_derivative terms)
      end
    in
    scan g;
    let out = ref [] in
    for m = cells - 1 downto 0 do
      if breaks.(m) then out := (lo + m, lo + m + 1) :: !out
    done;
    !out
  end

let pp fmt p =
  if is_zero p then Format.pp_print_string fmt "0"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " + ")
      (fun fmt (i, c) -> Format.fprintf fmt "%a x^%d" Rat.pp c i)
      fmt
      (List.filteri
         (fun _ (_, c) -> not (Rat.is_zero c))
         (List.mapi (fun i c -> (i, c)) (Array.to_list p)))
