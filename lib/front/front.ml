type source = Elab.source = {
  program : Iolb_ir.Program.t;
  verify : (string * int) list;
}

let ( let* ) = Result.bind

let parse_string ~file src =
  let* toks = Lexer.tokenize ~file src in
  let* ast = Parser.parse toks in
  Elab.kernel ast

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
      Error
        (Iolb_util.Engine_error.Invalid_input
           (Printf.sprintf "cannot read %s: %s" path msg))
  | src ->
      Result.map_error Diag.to_engine_error (parse_string ~file:path src)

let print = Printer.print
