lib/pebble/cache.ml: Array Format Hashtbl Iolb_util List Trace
