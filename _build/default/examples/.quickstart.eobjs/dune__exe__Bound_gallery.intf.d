examples/bound_gallery.mli:
