module Rat = Iolb_util.Rat
module Simplex = Iolb_lp.Simplex

type bounded_proj = {
  proj_dims : string list;
  alpha : Rat.t;
  beta : Rat.t;
  gamma : Rat.t;
  label : string;
}

type solution = {
  k_exponent : Rat.t;
  w_exponent : Rat.t;
  two_exponent : Rat.t;
  exponents : (string * Rat.t) list;
}

let proj ?(beta = Rat.zero) ?(gamma = Rat.zero) ~alpha ~label proj_dims =
  { proj_dims; alpha; beta; gamma; label }

let subsets dims =
  List.fold_left
    (fun acc d -> acc @ List.map (fun s -> d :: s) acc)
    [ [] ] dims

(* The admissibility polytope: for every non-empty subset H of dims,
   sum_j s_j * |dims_j /\ H| >= |H|, and 0 <= s_j <= 1. *)
let admissibility_constraints ~dims projs =
  let n = List.length projs in
  let cover =
    List.filter_map
      (fun h ->
        if h = [] then None
        else
          let coeffs =
            Array.of_list
              (List.map
                 (fun p ->
                   Rat.of_int
                     (List.length (List.filter (fun d -> List.mem d h) p.proj_dims)))
                 projs)
          in
          Some
            Simplex.{ coeffs; rel = Ge; rhs = Rat.of_int (List.length h) })
      (subsets dims)
  in
  let caps =
    List.mapi
      (fun j _ ->
        let coeffs = Array.make n Rat.zero in
        coeffs.(j) <- Rat.one;
        Simplex.{ coeffs; rel = Le; rhs = Rat.one })
      projs
  in
  cover @ caps

let dot weights solution =
  let acc = ref Rat.zero in
  Array.iteri (fun j s -> acc := Rat.add !acc (Rat.mul weights.(j) s)) solution;
  !acc

(* Lexicographic minimisation: solve each stage, then pin its optimum as an
   equality constraint for the next stage. *)
let lex_minimize ~constraints stages =
  let rec go constraints = function
    | [] -> None
    | [ cost ] -> (
        match Simplex.minimize ~cost constraints with
        | Simplex.Optimal { solution; _ } -> Some solution
        | Simplex.Infeasible | Simplex.Unbounded -> None)
    | cost :: rest -> (
        match Simplex.minimize ~cost constraints with
        | Simplex.Optimal { value; _ } ->
            let pin = Simplex.{ coeffs = cost; rel = Le; rhs = value } in
            go (pin :: constraints) rest
        | Simplex.Infeasible | Simplex.Unbounded -> None)
  in
  go constraints stages

let optimize ~dims projs =
  if projs = [] then None
  else
    let constraints = admissibility_constraints ~dims projs in
    let vec f = Array.of_list (List.map f projs) in
    let alphas = vec (fun p -> p.alpha)
    and betas = vec (fun p -> p.beta)
    and gammas = vec (fun p -> p.gamma) in
    let stage1 =
      Array.mapi (fun j a -> Rat.add a (Rat.mul Rat.half betas.(j))) alphas
    in
    let stage2 = Array.mapi (fun j a -> Rat.add a betas.(j)) alphas in
    match lex_minimize ~constraints [ stage1; stage2; gammas ] with
    | None -> None
    | Some s ->
        Some
          {
            k_exponent = dot alphas s;
            w_exponent = dot betas s;
            two_exponent = dot gammas s;
            exponents =
              List.mapi (fun j p -> (p.label, s.(j))) projs
              |> List.filter (fun (_, e) -> not (Rat.is_zero e));
          }

let classical ~dims dimsets =
  let projs =
    List.mapi
      (fun j ds ->
        proj ~alpha:Rat.one ~label:(Printf.sprintf "phi%d_{%s}" j (String.concat "," ds)) ds)
      dimsets
  in
  optimize ~dims projs

let pp_solution fmt s =
  Format.fprintf fmt "K^%a * W^%a * 2^%a via {%a}" Rat.pp s.k_exponent Rat.pp
    s.w_exponent Rat.pp s.two_exponent
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (l, e) -> Format.fprintf fmt "%s^%a" l Rat.pp e))
    s.exponents
