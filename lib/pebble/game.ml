module Cdag = Iolb_cdag.Cdag
module Budget = Iolb_util.Budget
module Maxheap = Iolb_util.Maxheap

(* Compiled red-white pebble engine.  Same game, same clairvoyant
   (Belady) discard policy, same heap push sequence - and therefore the
   same result on every input - as the reference engine [Game_ref], but
   the per-step machinery is flat arrays throughout:

   - the schedule's predecessor lists and each node's use positions are
     CSR (offsets + one flat array), built once per plan from the CDAG's
     own CSR export, so the step loop walks contiguous memory instead of
     chasing per-node arrays;
   - red/white pebble state is a bitset (32 bits per word), keeping the
     whole state of a multi-thousand-node game in a few cache lines;
   - all per-run state lives in a [runner] that can be reused across the
     (kernel x S x schedule) grid - the validation sweeps - without
     reallocating; [run_plan] stays thread-safe by making a fresh runner
     per call. *)

type result = { loads : int; peak_red : int }

exception Infeasible of string

let is_compute cdag id =
  match Cdag.kind cdag id with Cdag.Compute _ -> true | Cdag.Input _ -> false

let program_schedule cdag =
  let order = Cdag.program_order cdag in
  let out = Array.make (max (Cdag.n_computes cdag) 1) 0 in
  let k = ref 0 in
  Array.iter
    (fun id ->
      if is_compute cdag id then begin
        out.(!k) <- id;
        incr k
      end)
    order;
  Array.sub out 0 !k

let is_topological cdag schedule =
  let n = Cdag.n_nodes cdag in
  let pos = Array.make n (-1) in
  (* last occurrence wins, like the Hashtbl.replace-based check did *)
  Array.iteri (fun i id -> pos.(id) <- i) schedule;
  let poff, pflat = Cdag.preds_csr cdag in
  let ok = ref true in
  Array.iteri
    (fun i id ->
      for k = poff.(id) to poff.(id + 1) - 1 do
        let p = pflat.(k) in
        if is_compute cdag p then begin
          let j = pos.(p) in
          if j < 0 || j >= i then ok := false
        end
      done)
    schedule;
  !ok && Array.length schedule = Cdag.n_computes cdag

let random_topological ?(seed = 0) cdag =
  let state = Random.State.make [| seed |] in
  let n = Cdag.n_nodes cdag in
  let remaining_preds = Array.make n 0 in
  let ready = ref [] in
  for id = 0 to n - 1 do
    if is_compute cdag id then begin
      let cnt =
        Array.fold_left
          (fun acc p -> if is_compute cdag p then acc + 1 else acc)
          0 (Cdag.preds cdag id)
      in
      remaining_preds.(id) <- cnt;
      if cnt = 0 then ready := id :: !ready
    end
  done;
  let out = ref [] in
  let ready = ref (Array.of_list !ready) in
  let ready_len = ref (Array.length !ready) in
  while !ready_len > 0 do
    let pick = Random.State.int state !ready_len in
    let id = !ready.(pick) in
    !ready.(pick) <- !ready.(!ready_len - 1);
    decr ready_len;
    out := id :: !out;
    Array.iter
      (fun s ->
        if is_compute cdag s then begin
          remaining_preds.(s) <- remaining_preds.(s) - 1;
          if remaining_preds.(s) = 0 then begin
            if !ready_len = Array.length !ready then begin
              let bigger = Array.make (max 4 (2 * !ready_len)) 0 in
              Array.blit !ready 0 bigger 0 !ready_len;
              ready := bigger
            end;
            !ready.(!ready_len) <- s;
            incr ready_len
          end
        end)
      (Cdag.succs cdag id)
  done;
  Array.of_list (List.rev !out)

let priority_topological cdag ~priority =
  let n = Cdag.n_nodes cdag in
  let remaining_preds = Array.make n 0 in
  (* Min-heap via Maxheap on negated priorities. *)
  let heap = Maxheap.create () in
  let prio_of id =
    match Cdag.kind cdag id with
    | Cdag.Compute (stmt, vec) -> priority ~stmt ~vec
    | Cdag.Input _ -> assert false
  in
  for id = 0 to n - 1 do
    if is_compute cdag id then begin
      let cnt =
        Array.fold_left
          (fun acc p -> if is_compute cdag p then acc + 1 else acc)
          0 (Cdag.preds cdag id)
      in
      remaining_preds.(id) <- cnt;
      if cnt = 0 then Maxheap.push heap ~pos:(-prio_of id) ~payload:id
    end
  done;
  let out = ref [] in
  while not (Maxheap.is_empty heap) do
    let _, id = Maxheap.pop heap in
    out := id :: !out;
    Array.iter
      (fun succ ->
        if is_compute cdag succ then begin
          remaining_preds.(succ) <- remaining_preds.(succ) - 1;
          if remaining_preds.(succ) = 0 then
            Maxheap.push heap ~pos:(-prio_of succ) ~payload:succ
        end)
      (Cdag.succs cdag id)
  done;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Bitset helpers: 32 live bits per word, so index arithmetic is pure
   shifts and masks (OCaml ints carry 63 bits; using 32 keeps the bit
   index below every word's tag-free range on both word sizes). *)

let bits_words n = (n lsr 5) + 1

let bget b i =
  (Array.unsafe_get b (i lsr 5) lsr (i land 31)) land 1 <> 0

let bset b i =
  let w = i lsr 5 in
  Array.unsafe_set b w (Array.unsafe_get b w lor (1 lsl (i land 31)))

let bclear b i =
  let w = i lsr 5 in
  Array.unsafe_set b w (Array.unsafe_get b w land lnot (1 lsl (i land 31)))

type plan = {
  cdag : Cdag.t;
  schedule : int array;
  n : int; (* nodes of the CDAG *)
  max_fanin : int; (* largest per-step pebble requirement, preds + 1 *)
  step_off : int array; (* CSR: predecessors of schedule.(t) *)
  step_preds : int array;
  use_off : int array; (* CSR: consume positions per node, ascending *)
  use_flat : int array;
  input_bits : int array; (* bitset: the initially-white (input) nodes *)
}

let plan cdag ~schedule =
  if not (is_topological cdag schedule) then
    invalid_arg "Game.run: schedule is not a topological order of computes";
  let n = Cdag.n_nodes cdag in
  let steps = Array.length schedule in
  let poff, pflat = Cdag.preds_csr cdag in
  let step_off = Array.make (steps + 1) 0 in
  for t = 0 to steps - 1 do
    let id = schedule.(t) in
    step_off.(t + 1) <- step_off.(t) + (poff.(id + 1) - poff.(id))
  done;
  let step_preds = Array.make (max step_off.(steps) 1) 0 in
  let use_count = Array.make n 0 in
  let max_fanin = ref 1 in
  for t = 0 to steps - 1 do
    let id = schedule.(t) in
    let lo = poff.(id) and hi = poff.(id + 1) in
    Array.blit pflat lo step_preds step_off.(t) (hi - lo);
    if hi - lo + 1 > !max_fanin then max_fanin := hi - lo + 1;
    for k = lo to hi - 1 do
      let p = pflat.(k) in
      use_count.(p) <- use_count.(p) + 1
    done
  done;
  let use_off = Array.make (n + 1) 0 in
  for id = 0 to n - 1 do
    use_off.(id + 1) <- use_off.(id) + use_count.(id)
  done;
  let use_flat = Array.make (max use_off.(n) 1) 0 in
  let fill = Array.make n 0 in
  (* filling in ascending step order leaves each node's slice sorted *)
  for t = 0 to steps - 1 do
    for k = step_off.(t) to step_off.(t + 1) - 1 do
      let p = step_preds.(k) in
      use_flat.(use_off.(p) + fill.(p)) <- t;
      fill.(p) <- fill.(p) + 1
    done
  done;
  let input_bits = Array.make (bits_words n) 0 in
  for id = 0 to n - 1 do
    if not (is_compute cdag id) then bset input_bits id
  done;
  {
    cdag;
    schedule;
    n;
    max_fanin = !max_fanin;
    step_off;
    step_preds;
    use_off;
    use_flat;
    input_bits;
  }

(* Reusable per-run state.  NOT thread-safe: one runner per domain. *)
type runner = {
  plan : plan;
  use_cursor : int array; (* per node: next unconsumed entry of its uses *)
  red : int array; (* bitset *)
  white : int array; (* bitset *)
  heap : Maxheap.t; (* lazy max-heap of (next use, node) *)
  heap_key : int array; (* per node: pos of its valid heap entry, or -2 *)
  protect : int array; (* per node: t when it must not be discarded at t *)
}

let runner plan =
  let n = plan.n in
  {
    plan;
    use_cursor = Array.make n 0;
    red = Array.make (bits_words n) 0;
    white = Array.make (bits_words n) 0;
    heap = Maxheap.create ();
    heap_key = Array.make n (-2);
    protect = Array.make n (-1);
  }

(* The per-step loops below index node-id-sized state arrays with
   [Array.unsafe_get]/[unsafe_set]: node ids are < n by the CDAG's
   construction, and use-position cursors stay within each node's use
   slice by the loop condition. *)
let run_runner ?(budget = Budget.unlimited) r ~s =
  let { n; max_fanin; schedule; step_off; step_preds; use_off; use_flat; _ }
      =
    r.plan
  in
  (* reset, rather than reallocate, the run state; each node's use
     cursor starts at its slice's base in the flat use array *)
  Array.blit use_off 0 r.use_cursor 0 n;
  Array.fill r.red 0 (Array.length r.red) 0;
  Array.blit r.plan.input_bits 0 r.white 0 (Array.length r.white);
  Maxheap.clear r.heap;
  Array.fill r.heap_key 0 n (-2);
  Array.fill r.protect 0 n (-1);
  let use_cursor = r.use_cursor in
  let red = r.red and white = r.white in
  let heap = r.heap and heap_key = r.heap_key and protect = r.protect in
  let steps = Array.length schedule in
  (* the cheapest feasibility check first: the widest step's fan-in *)
  if steps > 0 && max_fanin > s then begin
    (* report the FIRST offending step, as the per-step check did *)
    let t = ref 0 in
    while step_off.(!t + 1) - step_off.(!t) + 1 <= s do
      incr t
    done;
    raise
      (Infeasible
         (Printf.sprintf "node %d needs %d red pebbles but S = %d"
            schedule.(!t)
            (step_off.(!t + 1) - step_off.(!t) + 1)
            s))
  end;
  let next_use_after node t =
    let hi = Array.unsafe_get use_off (node + 1) in
    let c = ref (Array.unsafe_get use_cursor node) in
    while !c < hi && Array.unsafe_get use_flat !c <= t do
      incr c
    done;
    Array.unsafe_set use_cursor node !c;
    if !c < hi then Array.unsafe_get use_flat !c else max_int
  in
  let red_count = ref 0 and peak = ref 0 and loads = ref 0 in
  let set_red node pos =
    if not (bget red node) then begin
      bset red node;
      incr red_count;
      if !red_count > !peak then peak := !red_count
    end;
    Array.unsafe_set heap_key node pos;
    Maxheap.push heap ~pos ~payload:node
  in
  let discard_one t =
    (* Entries popped past (protected nodes with valid entries) must be
       re-pushed, or those nodes become permanently undiscardable. *)
    let skipped = ref [] in
    let rec pick () =
      if Maxheap.is_empty heap then
        raise (Infeasible "no discardable red pebble");
      let pos, node = Maxheap.pop heap in
      if bget red node && Array.unsafe_get heap_key node = pos then
        if Array.unsafe_get protect node <> t then node
        else begin
          skipped := (pos, node) :: !skipped;
          pick ()
        end
      else pick ()
    in
    let victim = pick () in
    List.iter
      (fun (pos, node) -> Maxheap.push heap ~pos ~payload:node)
      !skipped;
    bclear red victim;
    heap_key.(victim) <- -2;
    decr red_count
  in
  let unlimited = Budget.is_unlimited budget in
  for t = 0 to steps - 1 do
    if not unlimited then Budget.checkpoint budget Budget.Pebble_game;
    let id = Array.unsafe_get schedule t in
    let lo = Array.unsafe_get step_off t
    and hi = Array.unsafe_get step_off (t + 1) in
    for k = lo to hi - 1 do
      Array.unsafe_set protect (Array.unsafe_get step_preds k) t
    done;
    Array.unsafe_set protect id t;
    (* Bring every predecessor in fast memory. *)
    for k = lo to hi - 1 do
      let p = Array.unsafe_get step_preds k in
      if not (bget red p) then begin
        assert (bget white p);
        incr loads;
        if !red_count >= s then discard_one t;
        set_red p (next_use_after p t)
      end
      else begin
        (* refresh the heap entry with the new next use *)
        let nu = next_use_after p t in
        Array.unsafe_set heap_key p nu;
        Maxheap.push heap ~pos:nu ~payload:p
      end
    done;
    (* Compute: white + red on the node itself. *)
    if !red_count >= s then discard_one t;
    bset white id;
    set_red id (next_use_after id t)
  done;
  { loads = !loads; peak_red = !peak }

let run_plan ?budget plan ~s = run_runner ?budget (runner plan) ~s

let run ?budget cdag ~s ~schedule = run_plan ?budget (plan cdag ~schedule) ~s

let run_checked ?budget cdag ~s ~schedule =
  match run ?budget cdag ~s ~schedule with
  | r -> Ok r
  | exception Infeasible msg -> Error (Iolb_util.Engine_error.Invalid_input msg)
  | exception e -> Error (Iolb_util.Engine_error.of_exn e)
