module Budget = Iolb_util.Budget

type stats = { loads : int; stores : int; read_hits : int; accesses : int }

let io s = s.loads + s.stores

let pp_stats fmt s =
  Format.fprintf fmt "loads=%d stores=%d hits=%d accesses=%d io=%d" s.loads
    s.stores s.read_hits s.accesses (io s)

(* Traces arrive pre-interned (dense cell ids, flat arrays), so the
   simulators run on int keys with no per-call hashing at all. *)

let cold trace =
  let n = Trace.length trace and ncells = Trace.footprint trace in
  let present = Array.make ncells false in
  let dirty = Array.make ncells false in
  let loads = ref 0 and read_hits = ref 0 in
  for i = 0 to n - 1 do
    let c = Trace.cell_id trace i in
    if Trace.is_write trace i then begin
      present.(c) <- true;
      dirty.(c) <- true
    end
    else if present.(c) then incr read_hits
    else begin
      incr loads;
      present.(c) <- true
    end
  done;
  let stores = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 dirty in
  { loads = !loads; stores; read_hits = !read_hits; accesses = n }

(* LRU with an intrusive doubly-linked list over cell ids.

   The per-event loop indexes the trace's raw arrays and the per-cell
   state with [Array.unsafe_get]/[unsafe_set]: event indices are
   [0 .. n-1] with [n = Trace.length], and cell ids are
   [0 .. ncells-1] by the interner's density invariant, which is exactly
   how the state arrays are sized. *)
let lru ?(budget = Budget.unlimited) ~size ?(flush = true) trace =
  if size < 1 then invalid_arg "Cache.lru: size < 1";
  let n = Trace.length trace and ncells = Trace.footprint trace in
  let cells = Trace.cells trace and wflags = Trace.write_flags trace in
  let prev = Array.make ncells (-1) and next = Array.make ncells (-1) in
  let in_cache = Array.make ncells false in
  let dirty = Array.make ncells false in
  let head = ref (-1) (* most recent *) and tail = ref (-1) (* least recent *) in
  let count = ref 0 in
  let unlink c =
    let p = Array.unsafe_get prev c and n = Array.unsafe_get next c in
    if p >= 0 then Array.unsafe_set next p n else head := n;
    if n >= 0 then Array.unsafe_set prev n p else tail := p;
    Array.unsafe_set prev c (-1);
    Array.unsafe_set next c (-1)
  in
  let push_front c =
    Array.unsafe_set prev c (-1);
    Array.unsafe_set next c !head;
    if !head >= 0 then Array.unsafe_set prev !head c;
    head := c;
    if !tail < 0 then tail := c
  in
  let loads = ref 0 and stores = ref 0 and read_hits = ref 0 in
  let evict_one () =
    let victim = !tail in
    unlink victim;
    Array.unsafe_set in_cache victim false;
    if Array.unsafe_get dirty victim then begin
      incr stores;
      Array.unsafe_set dirty victim false
    end;
    decr count
  in
  let touch c =
    if Array.unsafe_get in_cache c then begin
      unlink c;
      push_front c
    end
    else begin
      if !count >= size then evict_one ();
      Array.unsafe_set in_cache c true;
      incr count;
      push_front c
    end
  in
  let unlimited = Budget.is_unlimited budget in
  for i = 0 to n - 1 do
    if not unlimited then Budget.checkpoint budget Budget.Cache_sim;
    let c = Array.unsafe_get cells i in
    if Array.unsafe_get wflags i then begin
      touch c;
      Array.unsafe_set dirty c true
    end
    else begin
      if Array.unsafe_get in_cache c then incr read_hits else incr loads;
      touch c
    end
  done;
  if flush then
    for c = 0 to ncells - 1 do
      if in_cache.(c) && dirty.(c) then incr stores
    done;
  { loads = !loads; stores = !stores; read_hits = !read_hits; accesses = n }

(* Belady's OPT is split into a size-independent plan (the backward
   next-read scan, O(T)) and a per-size forward run, so a sweep over many
   sizes pays the scan once.  next_read.(i) is the position of the next read
   of the cell accessed at position i, or max_int if the cell is overwritten
   (or never touched) before being re-read. *)
type opt_plan = { ptrace : Trace.t; next_read : int array }

let opt_plan ?(budget = Budget.unlimited) trace =
  let n = Trace.length trace and ncells = Trace.footprint trace in
  let cells = Trace.cells trace and wflags = Trace.write_flags trace in
  let next_read = Array.make (max n 1) max_int in
  let upcoming = Array.make (max ncells 1) max_int in
  (* scan backwards: upcoming.(c) = position of next read of c, or max_int
     if the next access is a write (dead value).  Unsafe indexing is in
     bounds: i < n, cell ids < ncells. *)
  let unlimited = Budget.is_unlimited budget in
  for i = n - 1 downto 0 do
    if not unlimited then Budget.checkpoint budget Budget.Cache_sim;
    let c = Array.unsafe_get cells i in
    Array.unsafe_set next_read i (Array.unsafe_get upcoming c);
    Array.unsafe_set upcoming c
      (if Array.unsafe_get wflags i then max_int else i)
  done;
  { ptrace = trace; next_read }

let opt_plan_trace plan = plan.ptrace

(* Forward pass.  The eviction heap is lazily invalidated (one entry per
   access), so unbounded it grows to O(T); we compact it away whenever the
   stale entries outnumber the live ones (at most [count], the cache
   occupancy) by 2x, which bounds the heap - and its peak - by
   O(size).  Compaction may reorder entries with equal keys, but in OPT the
   only equal keys are max_int (dead values): evicting one dead value
   rather than another never changes which future reads miss, so [loads]
   and [read_hits] are unaffected (dirty-eviction [stores] may shift among
   equally-optimal choices). *)
let opt_run_internal budget ~size ~flush plan =
  if size < 1 then invalid_arg "Cache.opt_run: size < 1";
  let trace = plan.ptrace and next_read = plan.next_read in
  let n = Trace.length trace and ncells = Trace.footprint trace in
  let in_cache = Array.make ncells false in
  let dirty = Array.make ncells false in
  let cur_next = Array.make ncells max_int in
  (* Max-heap over (next read position, cell), lazily invalidated.  Cells
     whose value is dead (next read = max_int) bypass the heap entirely: a
     dead cell always carries the maximum key, so OPT may evict it before
     any live one, and among dead cells the choice is free (see the
     compaction note above).  They go on an O(1) stack instead, which
     matters for kernels like MGS that overwrite most values right after
     the last read. *)
  let heap = Iolb_util.Maxheap.create () in
  let dead = ref (Array.make 64 0) in
  let ndead = ref 0 in
  let push_dead c =
    if !ndead = Array.length !dead then begin
      let bigger = Array.make (2 * !ndead) 0 in
      Array.blit !dead 0 bigger 0 !ndead;
      dead := bigger
    end;
    !dead.(!ndead) <- c;
    incr ndead
  in
  let count = ref 0 in
  let loads = ref 0 and stores = ref 0 and read_hits = ref 0 in
  let peak = ref 0 in
  (* Generation stamps dedup live-looking entries during compaction: a run
     of same-cell accesses with equal next_read (consecutive dead writes)
     leaves several entries that all match [cur_next]; keep one. *)
  let seen = Array.make ncells 0 in
  let gen = ref 0 in
  let compact () =
    incr gen;
    let g = !gen in
    let keep ~pos ~payload =
      if in_cache.(payload) && cur_next.(payload) = pos && seen.(payload) <> g
      then begin
        seen.(payload) <- g;
        true
      end
      else false
    in
    Iolb_util.Maxheap.compact heap ~keep;
    let d = !dead and kept = ref 0 in
    for i = 0 to !ndead - 1 do
      if keep ~pos:max_int ~payload:d.(i) then begin
        d.(!kept) <- d.(i);
        incr kept
      end
    done;
    ndead := !kept
  in
  let evict_one () =
    (* Dead cells first; entries are stale when the cell was re-accessed
       (its current next read is finite) or already evicted. *)
    let rec pick_dead () =
      if !ndead = 0 then None
      else begin
        decr ndead;
        let cell = !dead.(!ndead) in
        if in_cache.(cell) && cur_next.(cell) = max_int then Some cell
        else pick_dead ()
      end
    in
    let rec pick_heap () =
      let pos, cell = Iolb_util.Maxheap.pop heap in
      if in_cache.(cell) && cur_next.(cell) = pos then cell else pick_heap ()
    in
    let victim =
      match pick_dead () with Some c -> c | None -> pick_heap ()
    in
    in_cache.(victim) <- false;
    if dirty.(victim) then begin
      incr stores;
      dirty.(victim) <- false
    end;
    decr count
  in
  let cells = Trace.cells trace and wflags = Trace.write_flags trace in
  let unlimited = Budget.is_unlimited budget in
  (* Unsafe indexing is in bounds: i < n, cell ids < ncells. *)
  for i = 0 to n - 1 do
    if not unlimited then Budget.checkpoint budget Budget.Cache_sim;
    let c = Array.unsafe_get cells i in
    if Array.unsafe_get wflags i then begin
      if not (Array.unsafe_get in_cache c) then begin
        if !count >= size then evict_one ();
        Array.unsafe_set in_cache c true;
        incr count
      end;
      Array.unsafe_set dirty c true
    end
    else begin
      if Array.unsafe_get in_cache c then incr read_hits
      else begin
        incr loads;
        if !count >= size then evict_one ();
        Array.unsafe_set in_cache c true;
        incr count
      end
    end;
    let nr = Array.unsafe_get next_read i in
    Array.unsafe_set cur_next c nr;
    if nr = max_int then push_dead c
    else Iolb_util.Maxheap.push heap ~pos:nr ~payload:c;
    let len = Iolb_util.Maxheap.length heap + !ndead in
    if len > !peak then peak := len;
    if len > 64 && len > 3 * !count then compact ()
  done;
  if flush then
    for c = 0 to ncells - 1 do
      if in_cache.(c) && dirty.(c) then incr stores
    done;
  ( { loads = !loads; stores = !stores; read_hits = !read_hits; accesses = n },
    !peak )

let opt_run ?(budget = Budget.unlimited) ~size ?(flush = true) plan =
  fst (opt_run_internal budget ~size ~flush plan)

let opt ?budget ~size ?(flush = true) trace =
  opt_run ?budget ~size ~flush (opt_plan ?budget trace)

let opt_heap_peak ~size ?(flush = true) trace =
  snd
    (opt_run_internal Budget.unlimited ~size ~flush
       (opt_plan trace))

let lru_checked ?budget ~size ?flush trace =
  Iolb_util.Engine_error.guard (fun () -> lru ?budget ~size ?flush trace)

let opt_checked ?budget ~size ?flush trace =
  Iolb_util.Engine_error.guard (fun () -> opt ?budget ~size ?flush trace)
