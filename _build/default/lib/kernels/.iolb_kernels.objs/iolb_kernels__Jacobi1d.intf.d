lib/kernels/jacobi1d.mli: Iolb_ir
