(* The multicore layer: the domain pool, the cell interner, the strided
   (but still sound) budget deadline, and the end-to-end guarantee the
   bench harness relies on - parallel analyses are byte-identical to
   sequential ones. *)

module Pool = Iolb_util.Pool
module Budget = Iolb_util.Budget
module Interner = Iolb_ir.Interner
module Report = Iolb.Report

(* ------------------------------------------------------------------ *)
(* Pool.                                                               *)

let test_pool_order () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> (3 * x) + 1) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "order preserved at jobs=%d" jobs)
        expected
        (Pool.map ~jobs (fun x -> (3 * x) + 1) xs))
    [ 1; 2; 4; 7 ]

let test_pool_edge_cases () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map ~jobs:4 succ [ 7 ]);
  Alcotest.(check bool) "jobs=0 rejected" true
    (try
       ignore (Pool.map ~jobs:0 succ [ 1 ]);
       false
     with Invalid_argument _ -> true)

let test_pool_jobs1_is_sequential () =
  (* At jobs=1 no domain is spawned: tasks run left to right in the
     calling domain, so unsynchronised effects are safe and ordered. *)
  let log = ref [] in
  let out =
    Pool.map ~jobs:1
      (fun x ->
        log := x :: !log;
        x * x)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "results" [ 1; 4; 9; 16 ] out;
  Alcotest.(check (list int)) "evaluation order" [ 1; 2; 3; 4 ] (List.rev !log)

exception Boom of int

let test_pool_exception () =
  (* Several tasks fail; the earliest failed index wins, at any width. *)
  List.iter
    (fun jobs ->
      match
        Pool.map ~jobs
          (fun x -> if x mod 3 = 2 then raise (Boom x) else x)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
          Alcotest.(check int)
            (Printf.sprintf "earliest failure at jobs=%d" jobs)
            2 x)
    [ 1; 3; 8 ]

let test_pool_shared_budget () =
  (* One budget shared across the fan-out: the step cap bounds the
     combined work of all workers, and exhaustion propagates. *)
  let budget = Budget.make ~max_steps:50 () in
  (match
     Pool.map ~jobs:4
       (fun _ ->
         for _ = 1 to 20 do
           Budget.checkpoint budget Budget.Derivation
         done)
       (List.init 8 Fun.id)
   with
  | _ -> Alcotest.fail "expected Exhausted"
  | exception Budget.Exhausted _ -> ());
  Alcotest.(check bool) "counted past the cap" true (Budget.steps budget > 50)

(* ------------------------------------------------------------------ *)
(* Interner.                                                           *)

let test_interner_roundtrip () =
  let t = Interner.create () in
  let keys =
    [
      ("A", [| 0; 0 |]); ("A", [| 0; 1 |]); ("B", [| 0; 0 |]); ("A", [||]);
      ("B", [| 7 |]); ("", [| 1; 2; 3 |]);
    ]
  in
  let ids = List.map (Interner.intern t) keys in
  Alcotest.(check (list int)) "dense first-seen ids" [ 0; 1; 2; 3; 4; 5 ] ids;
  Alcotest.(check (list int)) "idempotent" ids (List.map (Interner.intern t) keys);
  Alcotest.(check int) "count" 6 (Interner.count t);
  List.iteri
    (fun id (name, vec) ->
      let name', vec' = Interner.key t id in
      Alcotest.(check string) "name round-trip" name name';
      Alcotest.(check (array int)) "vec round-trip" vec vec')
    keys;
  Alcotest.(check (option int)) "find_opt hit" (Some 2)
    (Interner.find_opt t ("B", [| 0; 0 |]));
  Alcotest.(check (option int)) "find_opt miss" None
    (Interner.find_opt t ("B", [| 0; 0; 0 |]));
  Alcotest.(check bool) "key out of range" true
    (try
       ignore (Interner.key t 6);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Budget: the deadline poll is strided but a passed deadline still     *)
(* fails, and the step cap stays exact.                                *)

let test_budget_deadline_strided () =
  let b = Budget.make ~timeout_ms:0 () in
  let raised_at = ref 0 in
  (try
     for i = 1 to 10 * Budget.deadline_stride do
       Budget.checkpoint b Budget.Derivation;
       raised_at := i
     done;
     Alcotest.fail "passed deadline never detected"
   with Budget.Exhausted _ -> ());
  (* The clock is only polled at stride boundaries. *)
  Alcotest.(check int) "detected at a stride boundary" 0
    ((!raised_at + 1) mod Budget.deadline_stride)

let test_budget_check_deadline_unstrided () =
  (* The clock may not have ticked since [make]; repeated polls must fail
     as soon as it does, without any checkpoint traffic in between. *)
  let b = Budget.make ~timeout_ms:0 () in
  let rec hits_within n =
    n > 0
    &&
    try
      Budget.check_deadline b Budget.Derivation;
      hits_within (n - 1)
    with Budget.Exhausted _ -> true
  in
  Alcotest.(check bool) "check_deadline polls the clock directly" true
    (hits_within 1_000_000)

let test_budget_steps_exact () =
  let b = Budget.make ~max_steps:100 () in
  for _ = 1 to 100 do
    Budget.checkpoint b Budget.Pebble_game
  done;
  Alcotest.(check int) "100 checkpoints fit" 100 (Budget.steps b);
  Alcotest.(check bool) "101st raises" true
    (try
       Budget.checkpoint b Budget.Pebble_game;
       false
     with Budget.Exhausted _ -> true)

(* ------------------------------------------------------------------ *)
(* Json: the emitter behind bench --json.                              *)

let test_json () =
  let module J = Iolb_util.Json in
  Alcotest.(check string)
    "compact"
    {|{"a":1,"b":[true,null,"x\"\n"],"c":-0.5}|}
    (J.to_string
       (J.Obj
          [
            ("a", J.Int 1);
            ("b", J.List [ J.Bool true; J.Null; J.String "x\"\n" ]);
            ("c", J.Float (-0.5));
          ]));
  Alcotest.(check string) "non-finite floats are null" {|[null,null]|}
    (J.to_string (J.List [ J.Float nan; J.Float infinity ]));
  Alcotest.(check string) "empty containers" {|[{},[]]|}
    (J.to_string (J.List [ J.Obj []; J.List [] ]));
  let pretty = J.to_string_pretty (J.Obj [ ("k", J.List [ J.Int 1 ]) ]) in
  Alcotest.(check bool) "pretty ends in newline" true
    (String.length pretty > 0 && pretty.[String.length pretty - 1] = '\n')

let test_json_parser () =
  let module J = Iolb_util.Json in
  let roundtrip v =
    match J.of_string (J.to_string v) with
    | Ok v' -> Alcotest.(check bool) (J.to_string v) true (v = v')
    | Error m -> Alcotest.failf "%s: parse error %s" (J.to_string v) m
  in
  List.iter roundtrip
    [
      J.Null;
      J.Bool false;
      J.Int (-42);
      J.Float 3.25;
      J.String "esc \"\\\n\t ok";
      J.List [ J.Int 1; J.List []; J.Obj [] ];
      J.Obj
        [
          ("schema_version", J.Int 1);
          ("sections", J.List [ J.Obj [ ("wall_s", J.Float 0.125) ] ]);
        ];
    ];
  (match J.of_string (J.to_string_pretty (J.Obj [ ("k", J.Int 1) ])) with
  | Ok (J.Obj [ ("k", J.Int 1) ]) -> ()
  | Ok v -> Alcotest.failf "pretty reparse: wrong value %s" (J.to_string v)
  | Error m -> Alcotest.failf "pretty reparse: %s" m);
  (match J.of_string {|"a\u00e9b"|} with
  | Ok (J.String "a\xc3\xa9b") -> ()
  | Ok v -> Alcotest.failf "unicode escape: wrong value %s" (J.to_string v)
  | Error m -> Alcotest.failf "unicode escape: %s" m);
  List.iter
    (fun bad ->
      match J.of_string bad with
      | Ok _ -> Alcotest.failf "%S: expected a parse error" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated" ];
  Alcotest.(check bool)
    "member" true
    (J.member "a" (J.Obj [ ("a", J.Int 7) ]) = Some (J.Int 7)
    && J.member "b" (J.Obj [ ("a", J.Int 7) ]) = None
    && J.member "a" (J.Int 3) = None)

(* ------------------------------------------------------------------ *)
(* Determinism: parallel registry analyses are byte-identical to       *)
(* sequential ones, for all five kernels.                              *)

let render a = Format.asprintf "%a" Report.pp_analysis a

let test_parallel_analyses_deterministic () =
  let parallel = Report.analyze_all ~jobs:4 () in
  Alcotest.(check int) "covers the registry"
    (List.length Report.registry)
    (List.length parallel);
  List.iter2
    (fun entry a ->
      Alcotest.(check string)
        (entry.Report.display ^ " identical to a fresh sequential analysis")
        (render (Report.analyze entry))
        (render a))
    Report.registry parallel

let suite =
  [
    Alcotest.test_case "pool: order preserved" `Quick test_pool_order;
    Alcotest.test_case "pool: edge cases" `Quick test_pool_edge_cases;
    Alcotest.test_case "pool: jobs=1 is sequential" `Quick
      test_pool_jobs1_is_sequential;
    Alcotest.test_case "pool: earliest exception wins" `Quick
      test_pool_exception;
    Alcotest.test_case "pool: shared budget cap" `Quick test_pool_shared_budget;
    Alcotest.test_case "interner: round-trip" `Quick test_interner_roundtrip;
    Alcotest.test_case "budget: strided deadline still fails" `Quick
      test_budget_deadline_strided;
    Alcotest.test_case "budget: check_deadline unstrided" `Quick
      test_budget_check_deadline_unstrided;
    Alcotest.test_case "budget: step cap exact" `Quick test_budget_steps_exact;
    Alcotest.test_case "json emitter" `Quick test_json;
    Alcotest.test_case "json parser round-trip" `Quick test_json_parser;
    Alcotest.test_case "parallel analyses deterministic" `Quick
      test_parallel_analyses_deterministic;
  ]
