test/main.mli:
