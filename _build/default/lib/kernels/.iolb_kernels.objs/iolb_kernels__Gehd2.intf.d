lib/kernels/gehd2.mli: Iolb_ir Matrix
