(* Whole-pipeline fuzz on random affine programs: random loop nests with
   random coordinate accesses must satisfy, at concrete sizes:
   - symbolic cardinality = concrete instance count,
   - CDAG compute count = instance count, and program order topological,
   - pebble game with a huge memory = compulsory loads (#inputs),
   - any derived classical bound <= measured pebble-game loads,
   - trace footprint = distinct cells touched. *)

module Program = Iolb_ir.Program
module Access = Iolb_ir.Access
module Affine = Iolb_poly.Affine
module Cdag = Iolb_cdag.Cdag
module Game = Iolb_pebble.Game
module P = Iolb_symbolic.Polynomial

(* A compact description of a random program, kept first-order so qcheck
   can print counterexamples. *)
type rand_spec = {
  depth : int;  (** 1..3 nested loops *)
  sizes : int list;  (** per-level upper bounds, 2..4 *)
  triangular : bool list;  (** level i starts at outer var instead of 0 *)
  write_arity : int;  (** 1 or 2 dims selected for the written array *)
  read_shifts : int list;  (** offsets of extra reads of array "X" *)
  self_read : bool;
}

let pp_spec s =
  Printf.sprintf "depth=%d sizes=%s tri=%s arity=%d shifts=%s self=%b" s.depth
    (String.concat "," (List.map string_of_int s.sizes))
    (String.concat "," (List.map string_of_bool s.triangular))
    s.write_arity
    (String.concat "," (List.map string_of_int s.read_shifts))
    s.self_read

let gen_spec =
  let open QCheck2.Gen in
  let* depth = int_range 1 3 in
  let* sizes = list_size (return depth) (int_range 2 4) in
  let* triangular = list_size (return depth) bool in
  let* write_arity = int_range 1 (min 2 depth) in
  let* read_shifts = list_size (int_range 1 2) (int_range (-1) 1) in
  let* self_read = bool in
  return { depth; sizes; triangular; write_arity; read_shifts; self_read }

let dims_of depth = List.init depth (fun i -> Printf.sprintf "d%d" i)

let build spec =
  (* Program.cardinal requires non-negative trip counts everywhere: a
     triangular level starting at the outer variable must extend at least
     as far as the outer level reaches. *)
  let sizes =
    List.fold_left
      (fun acc (size, tri) ->
        match acc with
        | prev :: _ when tri -> max size (prev - 1) :: acc
        | _ -> size :: acc)
      []
      (List.combine spec.sizes spec.triangular)
    |> List.rev
  in
  let spec = { spec with sizes } in
  let dims = dims_of spec.depth in
  let write_dims = List.filteri (fun i _ -> i < spec.write_arity) dims in
  let write = Access.make "A" (List.map Affine.var write_dims) in
  let reads =
    (if spec.self_read then [ write ] else [])
    @ List.mapi
        (fun idx shift ->
          (* Read array X indexed by the innermost dims, shifted. *)
          let d = List.nth dims (min (spec.depth - 1) idx) in
          Access.make "X"
            [ Affine.add (Affine.var d) (Affine.const shift) ])
        spec.read_shifts
  in
  let stmt = Program.stmt "S" ~writes:[ write ] ~reads in
  (* A consumer statement reading what S wrote exercises the dependence,
     version-pinning and CDAG-edge machinery. *)
  let consumer =
    Program.stmt "S2"
      ~writes:[ Access.make "B" (List.map Affine.var write_dims) ]
      ~reads:[ write ]
  in
  let rec nest i =
    if i = spec.depth then [ stmt; consumer ]
    else
      let lo =
        if i > 0 && List.nth spec.triangular i then
          Affine.var (Printf.sprintf "d%d" (i - 1))
        else Affine.const 0
      in
      [
        Program.loop
          (Printf.sprintf "d%d" i)
          lo
          (Affine.const (List.nth spec.sizes i))
          (nest (i + 1));
      ]
  in
  Program.make ~name:"fuzz" ~params:[] ~assumptions:[] (nest 0)

let pipeline_ok spec =
  let prog = build spec in
  let params = [] in
  let concrete = Program.count_instances ~params prog in
  let concrete_s =
    let n = ref 0 in
    Program.iter_instances ~params prog (fun inst ->
        if inst.stmt_name = "S" then incr n);
    !n
  in
  let info = Program.find_stmt prog "S" in
  let symbolic =
    P.eval_int params (Program.cardinal info) |> Iolb_util.Rat.to_int
  in
  let cdag = Cdag.of_program ~params prog in
  let schedule = Game.program_schedule cdag in
  let trace = Iolb_pebble.Trace.of_program ~params prog in
  let cells = Iolb_pebble.Trace.footprint trace in
  let distinct_cells =
    let seen = Hashtbl.create 64 in
    Program.iter_instances ~params prog (fun inst ->
        List.iter (fun c -> Hashtbl.replace seen c ()) inst.loads;
        List.iter (fun c -> Hashtbl.replace seen c ()) inst.stores);
    Hashtbl.length seen
  in
  let big = Game.run cdag ~s:10_000 ~schedule in
  let ok_card = symbolic = concrete_s in
  let ok_cdag =
    Cdag.n_computes cdag = concrete && Game.is_topological cdag schedule
  in
  let ok_cold = big.Game.loads = Cdag.n_inputs cdag in
  let ok_cells = cells = distinct_cells in
  (* If the engine produces a classical bound, it must sit below the pebble
     measurement at any feasible S (check a small one). *)
  let ok_bound =
    match Iolb.Derive.classical prog ~stmt:"S" with
    | None -> true
    | Some b -> (
        let s = 8 in
        match Game.run cdag ~s ~schedule with
        | measured ->
            Iolb.Derive.eval b ~params ~s
            <= float_of_int measured.Game.loads +. 1e-9
        | exception Game.Infeasible _ -> true)
  in
  (* Projection derivation must return well-formed projections (non-empty,
     within the statement's dimensions) for every statement. *)
  let ok_phi =
    List.for_all
      (fun (i : Program.stmt_info) ->
        List.for_all
          (fun (p : Iolb.Phi.t) ->
            p.dims <> [] && List.for_all (fun d -> List.mem d i.dims) p.dims)
          (Iolb.Phi.of_statement prog i))
      (Program.statements prog)
  in
  ok_card && ok_cdag && ok_cold && ok_cells && ok_bound && ok_phi

let fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random programs keep pipeline invariants"
       ~count:200 ~print:pp_spec gen_spec pipeline_ok)

let suite = [ fuzz ]
