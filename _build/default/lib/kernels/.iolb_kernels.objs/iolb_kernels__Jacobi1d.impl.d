lib/kernels/jacobi1d.ml: Array Constr Program Shorthand
