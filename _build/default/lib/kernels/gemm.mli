(** Dense matrix multiplication [C = A * B], the classical baseline: its
    K-partition bound (Theta(MNK / sqrt(S))) has no hourglass improvement,
    which exercises the classical derivation path of the engine. *)

(** The polyhedral program over [M], [N], [K]:
    [C(i,j) = sum_k A(i,k) * B(k,j)]. *)
val spec : Iolb_ir.Program.t

(** [run a b] computes the product with the spec's loop order. *)
val run : Matrix.t -> Matrix.t -> Matrix.t

(** [tiled_spec ~m ~n ~k ~b] is the classic cubic-blocked ordering as a
    concrete program for trace generation (all of [b] must divide the
    corresponding sizes).  With [3 b^2 <= S] its I/O is
    [~ 2 m n k / b + m n], matching the classical lower bound's
    [Theta(m n k / sqrt S)] shape. *)
val tiled_spec : m:int -> n:int -> k:int -> b:int -> Iolb_ir.Program.t
