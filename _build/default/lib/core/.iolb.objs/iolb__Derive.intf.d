lib/core/derive.mli: Format Hourglass Iolb_ir Iolb_symbolic
