lib/core/asymptotic.ml: Float Iolb_symbolic List
