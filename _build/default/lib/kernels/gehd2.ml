open Shorthand

(* The Figure 7 loop body, parameterised by a statement-name suffix so that
   the split variant can instantiate it twice with distinct names. *)
let body ~suffix =
  let n = v "N" in
  let j1 = v "j" +! c 1 in
  let j2 = v "j" +! c 2 in
  let s name = name ^ suffix in
  [
    stmt (s "Hn0") ~writes:[ sc "norma2" ] ~reads:[];
    loop_lt "i" j2 n
      [
        stmt (s "Hn2") ~writes:[ sc "norma2" ]
          ~reads:[ sc "norma2"; a2 "A" (v "i") (v "j") ];
      ];
    stmt (s "Hnrm") ~writes:[ sc "norma" ] ~reads:[ a2 "A" j1 (v "j"); sc "norma2" ];
    stmt (s "Hp1")
      ~writes:[ a2 "A" j1 (v "j") ]
      ~reads:[ a2 "A" j1 (v "j"); sc "norma" ];
    stmt (s "Htau") ~writes:[ sc "tau" ] ~reads:[ sc "norma2"; a2 "A" j1 (v "j") ];
    loop_lt "i" j2 n
      [
        stmt (s "Hdiv")
          ~writes:[ a2 "A" (v "i") (v "j") ]
          ~reads:[ a2 "A" (v "i") (v "j"); a2 "A" j1 (v "j") ];
      ];
    stmt (s "Hp2")
      ~writes:[ a2 "A" j1 (v "j") ]
      ~reads:[ a2 "A" j1 (v "j"); sc "norma" ];
    (* Left update: A := H A on rows j+1.., i.e. tmp = v^T A then rank-1. *)
    loop_lt "i" j1 n
      [
        stmt (s "Ht1") ~writes:[ a1 "tmp" (v "i") ] ~reads:[ a2 "A" j1 (v "i") ];
        loop_lt "k" j2 n
          [
            stmt (s "SR1")
              ~writes:[ a1 "tmp" (v "i") ]
              ~reads:
                [ a1 "tmp" (v "i"); a2 "A" (v "k") (v "j"); a2 "A" (v "k") (v "i") ];
          ];
      ];
    loop_lt "i" j1 n
      [
        stmt (s "Hs1") ~writes:[ a1 "tmp" (v "i") ]
          ~reads:[ a1 "tmp" (v "i"); sc "tau" ];
      ];
    loop_lt "i" j1 n
      [
        stmt (s "Hu1")
          ~writes:[ a2 "A" j1 (v "i") ]
          ~reads:[ a2 "A" j1 (v "i"); a1 "tmp" (v "i") ];
      ];
    loop_lt "i" j2 n
      [
        loop_lt "k" j1 n
          [
            stmt (s "SU1")
              ~writes:[ a2 "A" (v "i") (v "k") ]
              ~reads:
                [ a2 "A" (v "i") (v "k"); a2 "A" (v "i") (v "j"); a1 "tmp" (v "k") ];
          ];
      ];
    (* Right update: A := A H on all rows. *)
    loop_lt "i" (c 0) n
      [
        stmt (s "Ht2") ~writes:[ a1 "tmp" (v "i") ] ~reads:[ a2 "A" (v "i") j1 ];
        loop_lt "k" j2 n
          [
            stmt (s "SR2")
              ~writes:[ a1 "tmp" (v "i") ]
              ~reads:
                [ a1 "tmp" (v "i"); a2 "A" (v "i") (v "k"); a2 "A" (v "k") (v "j") ];
          ];
      ];
    loop_lt "i" (c 0) n
      [
        stmt (s "Hs2") ~writes:[ a1 "tmp" (v "i") ]
          ~reads:[ a1 "tmp" (v "i"); sc "tau" ];
      ];
    loop_lt "i" (c 0) n
      [
        stmt (s "Hu2")
          ~writes:[ a2 "A" (v "i") j1 ]
          ~reads:[ a2 "A" (v "i") j1; a1 "tmp" (v "i") ];
      ];
    loop_lt "i" (c 0) n
      [
        loop_lt "k" j2 n
          [
            stmt (s "SU2")
              ~writes:[ a2 "A" (v "i") (v "k") ]
              ~reads:
                [ a2 "A" (v "i") (v "k"); a1 "tmp" (v "i"); a2 "A" (v "k") (v "j") ];
          ];
      ];
  ]

let spec =
  Program.make ~name:"gehd2" ~params:[ "N" ]
    ~assumptions:[ Constr.ge_of (v "N") (c 3) ]
    [ loop_lt "j" (c 0) (v "N" -! c 2) (body ~suffix:"") ]

let split_spec =
  Program.make ~name:"gehd2_split" ~params:[ "N"; "M" ]
    ~assumptions:
      [
        Constr.ge_of (v "N") (c 3);
        Constr.ge_of (v "M") (c 1);
        Constr.ge_of (v "N" -! c 2) (v "M");
      ]
    [
      loop_lt "j" (c 0) (v "M") (body ~suffix:"a");
      loop_lt "j" (v "M") (v "N" -! c 2) (body ~suffix:"b");
    ]

type result = { a : Matrix.t; taus : float array }

let reduce a0 =
  let n, n' = Matrix.dims a0 in
  if n <> n' then invalid_arg "Gehd2.reduce: need a square matrix";
  let a = Matrix.copy a0 in
  let taus = Array.make (max 0 (n - 2)) 0. in
  for j = 0 to n - 3 do
    let norma2 = ref 0. in
    for i = j + 2 to n - 1 do
      norma2 := !norma2 +. (Matrix.get a i j *. Matrix.get a i j)
    done;
    let piv = Matrix.get a (j + 1) j in
    let norma = sqrt ((piv *. piv) +. !norma2) in
    let w = if piv > 0. then piv +. norma else piv -. norma in
    Matrix.set a (j + 1) j w;
    let tau = if norma = 0. then 0. else 2. /. (1. +. (!norma2 /. (w *. w))) in
    taus.(j) <- tau;
    for i = j + 2 to n - 1 do
      Matrix.set a i j (Matrix.get a i j /. w)
    done;
    Matrix.set a (j + 1) j (if w > 0. then -.norma else norma);
    let tmp = Array.make n 0. in
    (* Left update on columns j+1..n-1. *)
    for i = j + 1 to n - 1 do
      tmp.(i) <- Matrix.get a (j + 1) i;
      for k = j + 2 to n - 1 do
        tmp.(i) <- tmp.(i) +. (Matrix.get a k j *. Matrix.get a k i)
      done;
      tmp.(i) <- tmp.(i) *. tau
    done;
    for i = j + 1 to n - 1 do
      Matrix.set a (j + 1) i (Matrix.get a (j + 1) i -. tmp.(i))
    done;
    for i = j + 2 to n - 1 do
      for k = j + 1 to n - 1 do
        Matrix.set a i k (Matrix.get a i k -. (Matrix.get a i j *. tmp.(k)))
      done
    done;
    (* Right update on all rows. *)
    for i = 0 to n - 1 do
      tmp.(i) <- Matrix.get a i (j + 1);
      for k = j + 2 to n - 1 do
        tmp.(i) <- tmp.(i) +. (Matrix.get a i k *. Matrix.get a k j)
      done;
      tmp.(i) <- tmp.(i) *. tau
    done;
    for i = 0 to n - 1 do
      Matrix.set a i (j + 1) (Matrix.get a i (j + 1) -. tmp.(i))
    done;
    for i = 0 to n - 1 do
      for k = j + 2 to n - 1 do
        Matrix.set a i k (Matrix.get a i k -. (tmp.(i) *. Matrix.get a k j))
      done
    done
  done;
  { a; taus }

let hessenberg_of r =
  let n, _ = Matrix.dims r.a in
  Matrix.init n n (fun i j -> if i <= j + 1 then Matrix.get r.a i j else 0.)

let q_of r =
  let n, _ = Matrix.dims r.a in
  let q = Matrix.identity n in
  (* Q = H_0 H_1 ... H_{n-3}; each H_j has its reflector tail stored in
     column j, rows j+2.., with an implicit unit at row j+1. *)
  for j = n - 3 downto 0 do
    for col = 0 to n - 1 do
      let t = ref (Matrix.get q (j + 1) col) in
      for i = j + 2 to n - 1 do
        t := !t +. (Matrix.get r.a i j *. Matrix.get q i col)
      done;
      let t = r.taus.(j) *. !t in
      Matrix.set q (j + 1) col (Matrix.get q (j + 1) col -. t);
      for i = j + 2 to n - 1 do
        Matrix.set q i col (Matrix.get q i col -. (Matrix.get r.a i j *. t))
      done
    done
  done;
  q
