examples/quickstart.mli:
