(* Explore the hourglass structure on small concrete CDAGs: show the
   reduction/broadcast chains of Section 3, the forced shape of convex
   K-bounded sets (Lemma 3), and the inset blow-up that powers the bound.
   Optionally writes a Graphviz rendering with the forced closure
   highlighted.

   Run with:  dune exec examples/hourglass_explorer.exe -- [kernel] [out.dot] *)

module Cdag = Iolb_cdag.Cdag
module Program = Iolb_ir.Program
module H = Iolb.Hourglass

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "mgs" in
  let entry = Iolb.Report.find name in
  let prog = entry.Iolb.Report.program in
  let params = entry.Iolb.Report.verify_params in
  Printf.printf "Kernel: %s at %s\n" entry.Iolb.Report.display
    (String.concat ", "
       (List.map (fun (p, v) -> Printf.sprintf "%s=%d" p v) params));
  let cdag = Cdag.of_program ~params prog in
  Format.printf "CDAG: %a@." Cdag.pp_stats cdag;
  let patterns = H.detect_verified ~params prog in
  List.iter
    (fun (h : H.t) ->
      Format.printf "@.%a@." H.pp h;
      let info = Program.find_stmt prog h.update_stmt in
      let dim_index d =
        Option.get (List.find_index (String.equal d) info.Program.dims)
      in
      (* Take two instances at the same neutral coordinates, consecutive
         temporal coordinates, and display the convex closure forced
         between them: Lemma 3 in action. *)
      let nodes = Cdag.nodes_of_stmt cdag h.update_stmt in
      let vec_of id =
        match Cdag.kind cdag id with
        | Cdag.Compute (_, v) -> v
        | Cdag.Input _ -> assert false
      in
      let t_idx = List.map dim_index h.temporal in
      let n_idx = List.map dim_index h.neutral in
      let key idxs v = List.map (fun i -> v.(i)) idxs in
      let found = ref None in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if !found = None then begin
                let va = vec_of a and vb = vec_of b in
                if
                  key n_idx va = key n_idx vb
                  && key t_idx vb > key t_idx va
                  && Cdag.is_reachable cdag a b
                then found := Some (a, b)
              end)
            nodes)
        nodes;
      match !found with
      | None -> Format.printf "  (no spanning pair at these sizes)@."
      | Some (a, b) ->
          let show id =
            match Cdag.kind cdag id with
            | Cdag.Compute (s, v) ->
                Printf.sprintf "%s[%s]" s
                  (String.concat ","
                     (List.map string_of_int (Array.to_list v)))
            | Cdag.Input (arr, v) ->
                Printf.sprintf "in:%s[%s]" arr
                  (String.concat ","
                     (List.map string_of_int (Array.to_list v)))
          in
          Format.printf "  spanning pair: %s -> %s@." (show a) (show b);
          let closure = Cdag.convex_closure cdag [ a; b ] in
          Format.printf
            "  convex closure: %d nodes (any convex set containing both must \
             include them all)@."
            (List.length closure);
          (* Count how many distinct update-statement reduction rows the
             closure spans: the width of the forced neck. *)
          let reduction_nodes =
            List.filter
              (fun id ->
                match Cdag.kind cdag id with
                | Cdag.Compute (s, _) -> s = h.reduction_stmt
                | Cdag.Input _ -> false)
              closure
          in
          Format.printf "  reduction (%s) nodes inside: %d@." h.reduction_stmt
            (List.length reduction_nodes);
          Format.printf "  inset of the closure: %d values@."
            (Cdag.inset cdag closure);
          Format.printf
            "  => a K-bounded set spanning two temporal steps needs K >= %d@."
            (Cdag.inset cdag closure);
          if Array.length Sys.argv > 2 then begin
            let path = Sys.argv.(2) in
            Iolb_cdag.Dot.to_file ~highlight:closure path cdag;
            Format.printf "  wrote %s (closure highlighted)@." path
          end)
    patterns
