lib/lp/simplex.ml: Array Format Iolb_util List
