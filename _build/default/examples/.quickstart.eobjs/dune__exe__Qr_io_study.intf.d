examples/qr_io_study.mli:
