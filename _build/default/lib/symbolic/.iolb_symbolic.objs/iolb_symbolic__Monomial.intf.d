lib/symbolic/monomial.mli: Format Iolb_util
