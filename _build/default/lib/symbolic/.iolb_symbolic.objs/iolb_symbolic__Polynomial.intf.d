lib/symbolic/polynomial.mli: Format Iolb_util Monomial
