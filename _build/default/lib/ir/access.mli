(** Affine array accesses.

    An access names an array and gives one affine index expression per array
    dimension; scalars are zero-dimensional arrays.  The index expressions
    range over the enclosing loop variables and the program parameters. *)

type t = { array : string; index : Iolb_poly.Affine.t list }

(** [make array index] builds an access. *)
val make : string -> Iolb_poly.Affine.t list -> t

(** [scalar x] is the access to the scalar variable [x]. *)
val scalar : string -> t

(** [eval env a] is the concrete cell [(array, indices)] accessed under the
    (total) environment [env]. *)
val eval : (string -> int) -> t -> string * int array

(** [dims_used a] is the sorted list of variables occurring in the index
    expressions. *)
val dims_used : t -> string list

(** [selected_dims ~dims a] is [Some sel] when every index expression of [a]
    is of the form [x + c] for a loop variable [x] (each used at most once)
    or a constant/parameter-only expression; [sel] then lists the loop
    variables selected, in index order.  This identifies accesses that act
    as coordinate projections of the iteration vector - the only shape the
    Brascamp-Lieb step of the derivation consumes. *)
val selected_dims : dims:string list -> t -> string list option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
