(* Entries are packed as (pos, payload) pairs in two parallel arrays.

   The sift loops below use [Array.unsafe_get]/[unsafe_set] and move a
   "hole" instead of swapping: every index involved is provably inside
   [0, len), and [len <= Array.length pos] is maintained by [push]'s
   growth check.  Hole-based sifting produces the exact same final array
   layout as the textbook swap-based version (each swap with the parent /
   largest child is just a delayed store of the moving element), so pop
   order - which callers rely on for byte-stable output - is unchanged. *)
type t = {
  mutable pos : int array;
  mutable payload : int array;
  mutable len : int;
  mutable peak : int;
}

let create () =
  { pos = Array.make 1024 0; payload = Array.make 1024 0; len = 0; peak = 0 }

let is_empty h = h.len = 0
let length h = h.len
let peak h = h.peak
let clear h = h.len <- 0

let push h ~pos ~payload =
  if h.len = Array.length h.pos then begin
    let np = Array.make (2 * h.len) 0 and nl = Array.make (2 * h.len) 0 in
    Array.blit h.pos 0 np 0 h.len;
    Array.blit h.payload 0 nl 0 h.len;
    h.pos <- np;
    h.payload <- nl
  end;
  let hp = h.pos and hl = h.payload in
  let i = ref h.len in
  h.len <- h.len + 1;
  if h.len > h.peak then h.peak <- h.len;
  (* Sift the hole up while the parent is smaller, then store once. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pp = Array.unsafe_get hp parent in
    if pp < pos then begin
      Array.unsafe_set hp !i pp;
      Array.unsafe_set hl !i (Array.unsafe_get hl parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set hp !i pos;
  Array.unsafe_set hl !i payload

let sift_down h i =
  let hp = h.pos and hl = h.payload and len = h.len in
  let pos = Array.unsafe_get hp i and payload = Array.unsafe_get hl i in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let largest = ref !i and lpos = ref pos in
    if l < len && Array.unsafe_get hp l > !lpos then begin
      largest := l;
      lpos := Array.unsafe_get hp l
    end;
    if r < len && Array.unsafe_get hp r > !lpos then begin
      largest := r;
      lpos := Array.unsafe_get hp r
    end;
    if !largest <> !i then begin
      Array.unsafe_set hp !i !lpos;
      Array.unsafe_set hl !i (Array.unsafe_get hl !largest);
      i := !largest
    end
    else continue := false
  done;
  Array.unsafe_set hp !i pos;
  Array.unsafe_set hl !i payload

let compact h ~keep =
  (* Filter in place, then restore the heap property bottom-up: O(len). *)
  let w = ref 0 in
  for r = 0 to h.len - 1 do
    if keep ~pos:h.pos.(r) ~payload:h.payload.(r) then begin
      h.pos.(!w) <- h.pos.(r);
      h.payload.(!w) <- h.payload.(r);
      incr w
    end
  done;
  h.len <- !w;
  for i = (h.len / 2) - 1 downto 0 do
    sift_down h i
  done

let pop h =
  if h.len = 0 then raise Not_found;
  let top = (h.pos.(0), h.payload.(0)) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.pos.(0) <- h.pos.(h.len);
    h.payload.(0) <- h.payload.(h.len);
    sift_down h 0
  end;
  top
