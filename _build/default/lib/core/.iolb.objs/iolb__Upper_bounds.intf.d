lib/core/upper_bounds.mli: Iolb_symbolic
