module Affine = Iolb_poly.Affine
module Iset = Iolb_poly.Iset
module Constr = Iolb_poly.Constr
module P = Iolb_symbolic.Polynomial

type stmt = { name : string; writes : Access.t list; reads : Access.t list }

type node =
  | Loop of {
      var : string;
      lo : Affine.t;
      hi : Affine.t;
      rev : bool;
      body : node list;
    }
  | Stmt of stmt

type t = {
  name : string;
  params : string list;
  assumptions : Constr.t list;
  body : node list;
}

let loop var lo hi body = Loop { var; lo; hi; rev = false; body }

let loop_lt var lo hi_excl body =
  Loop { var; lo; hi = Affine.sub hi_excl (Affine.const 1); rev = false; body }

let loop_rev var lo hi body = Loop { var; lo; hi; rev = true; body }

let stmt name ~writes ~reads = Stmt { name; writes; reads }

let rec check_node params path seen_names = function
  | Stmt s ->
      if List.mem s.name !seen_names then
        invalid_arg (Printf.sprintf "Program.make: duplicate statement %s" s.name);
      seen_names := s.name :: !seen_names;
      let visible = path @ params in
      let check_access a =
        List.iter
          (fun x ->
            if not (List.mem x visible) then
              invalid_arg
                (Printf.sprintf
                   "Program.make: access %s in statement %s uses unbound %s"
                   (Format.asprintf "%a" Access.pp a)
                   s.name x))
          (Access.dims_used a)
      in
      List.iter check_access s.writes;
      List.iter check_access s.reads
  | Loop { var; lo; hi; rev = _; body } ->
      if List.mem var path then
        invalid_arg (Printf.sprintf "Program.make: loop variable %s shadows" var);
      let visible = path @ params in
      List.iter
        (fun e ->
          List.iter
            (fun x ->
              if not (List.mem x visible) then
                invalid_arg
                  (Printf.sprintf "Program.make: loop bound uses unbound %s" x))
            (Affine.vars e))
        [ lo; hi ];
      List.iter (check_node params (var :: path) seen_names) body

let make ~name ~params ~assumptions body =
  let seen = ref [] in
  List.iter (check_node params [] seen) body;
  { name; params; assumptions; body }

(* Structural equality.  Polymorphic compare is unsound here: [Affine.t]
   is a balanced map whose internal shape can differ between equal
   expressions, so every affine leaf goes through [Affine.equal]. *)
let stmt_equal (a : stmt) (b : stmt) =
  String.equal a.name b.name
  && List.equal Access.equal a.writes b.writes
  && List.equal Access.equal a.reads b.reads

let rec node_equal a b =
  match (a, b) with
  | Stmt sa, Stmt sb -> stmt_equal sa sb
  | ( Loop { var = v1; lo = lo1; hi = hi1; rev = r1; body = b1 },
      Loop { var = v2; lo = lo2; hi = hi2; rev = r2; body = b2 } ) ->
      String.equal v1 v2 && Affine.equal lo1 lo2 && Affine.equal hi1 hi2
      && r1 = r2
      && List.equal node_equal b1 b2
  | Stmt _, Loop _ | Loop _, Stmt _ -> false

let equal a b =
  String.equal a.name b.name
  && List.equal String.equal a.params b.params
  && List.equal Constr.equal a.assumptions b.assumptions
  && List.equal node_equal a.body b.body

type stmt_info = {
  def : stmt;
  dims : string list;
  bounds : (string * Affine.t * Affine.t) list;
  path : int list;
}

let statements p =
  let counter = ref 0 in
  let rec walk bounds path acc = function
    | Stmt def ->
        {
          def;
          dims = List.map (fun (v, _, _) -> v) (List.rev bounds);
          bounds = List.rev bounds;
          path = List.rev path;
        }
        :: acc
    | Loop { var; lo; hi; rev = _; body } ->
        let id = !counter in
        incr counter;
        List.fold_left (walk ((var, lo, hi) :: bounds) (id :: path)) acc body
  in
  List.rev (List.fold_left (fun acc n -> walk [] [] acc n) [] p.body)

let shared_loop_vars a b =
  let rec go vars pa pb =
    match (vars, pa, pb) with
    | v :: vars, ia :: pa, ib :: pb when ia = ib -> v :: go vars pa pb
    | _ -> []
  in
  go a.dims a.path b.path

let find_stmt p name =
  match List.find_opt (fun i -> i.def.name = name) (statements p) with
  | Some i -> i
  | None -> raise Not_found

let domain info =
  let cons =
    List.concat_map
      (fun (v, lo, hi) ->
        [ Constr.ge_of (Affine.var v) lo; Constr.le_of (Affine.var v) hi ])
      info.bounds
  in
  Iset.make ~dims:info.dims cons

let cardinal info =
  List.fold_left
    (fun inner (v, lo, hi) ->
      P.sum_over v ~lo:(Affine.to_polynomial lo) ~hi:(Affine.to_polynomial hi)
        inner)
    P.one (List.rev info.bounds)

let total_instances p =
  List.fold_left (fun acc i -> P.add acc (cardinal i)) P.zero (statements p)

(* Adversarial substitution of the outer dimensions into an affine
   expression: replaces each outer variable, innermost first, by whichever
   of its bounds drives the expression towards its minimum (for
   [extent_min]) or maximum (for [extent_max]). *)
let extremize ~minimize info expr =
  let rec go expr = function
    | [] -> expr
    | (v, lo, hi) :: outer_rest ->
        let c = Affine.coeff v expr in
        let expr =
          if c = 0 then expr
          else
            let bound =
              if (c > 0) = minimize then lo else hi
            in
            Affine.subst v bound expr
        in
        go expr outer_rest
  in
  (* bounds are listed outermost first; process innermost first. *)
  go expr (List.rev info.bounds)

let trip_count (_, lo, hi) =
  Affine.add (Affine.sub hi lo) (Affine.const 1)

let find_bound info x =
  match List.find_opt (fun (v, _, _) -> v = x) info.bounds with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Program: %s is not a dimension" x)

let extent_min info x = extremize ~minimize:true info (trip_count (find_bound info x))
let extent_max info x = extremize ~minimize:false info (trip_count (find_bound info x))

type instance = {
  stmt_name : string;
  vec : int array;
  loads : (string * int array) list;
  stores : (string * int array) list;
}

(* Compiled execution.  Instantiating a program is the hot path of trace
   and CDAG construction; evaluating every bound and index through string
   environments (an [Smap] fold per affine expression) dominates it.  We
   lower the loop tree once per [iter_*] call: each variable (parameter or
   loop var) gets a dense slot in a flat int environment, and every affine
   expression becomes parallel coefficient/slot arrays, so the
   per-iteration work is flat integer arithmetic. *)
type caffine = { cconst : int; ccoefs : int array; cslots : int array }

(* Unsafe indexing is in bounds by construction: [ccoefs] and [cslots]
   have the same length, and every slot is < nslots = length of [env]. *)
let ceval env a =
  let acc = ref a.cconst in
  for k = 0 to Array.length a.cslots - 1 do
    acc :=
      !acc
      + Array.unsafe_get a.ccoefs k
        * Array.unsafe_get env (Array.unsafe_get a.cslots k)
  done;
  !acc

type caccess = {
  carray : string;
  cindex : caffine array;
  cbuf : int array; (* reusable result buffer, one per compiled access *)
}

type cstmt = {
  cname : string;
  cvec : int array; (* slots of the enclosing loop vars, outermost first *)
  cvbuf : int array; (* reusable iteration-vector buffer, one per stmt *)
  creads : caccess array;
  cwrites : caccess array;
}

type cnode =
  | Cstmt of cstmt
  | Cloop of {
      cslot : int;
      clo : caffine;
      chi : caffine;
      crev : bool;
      cbody : cnode array;
    }

(* Raises [Not_found] on a variable bound neither by [params] nor by an
   enclosing loop, like the interpreted evaluator did. *)
let compile ~params p =
  let nslots = ref 0 in
  let scope = ref [] in
  let fresh v =
    let s = !nslots in
    incr nslots;
    scope := (v, s) :: !scope;
    s
  in
  let pinits = List.map (fun (x, v) -> (fresh x, v)) params in
  let slot_of x =
    match List.assoc_opt x !scope with Some s -> s | None -> raise Not_found
  in
  let caffine e =
    let ts = Affine.terms e in
    {
      cconst = Affine.constant e;
      ccoefs = Array.of_list (List.map fst ts);
      cslots = Array.of_list (List.map (fun (_, x) -> slot_of x) ts);
    }
  in
  let caccess (a : Access.t) =
    let cindex = Array.of_list (List.map caffine a.index) in
    { carray = a.array; cindex; cbuf = Array.make (Array.length cindex) 0 }
  in
  let rec cnode path = function
    | Stmt s ->
        let cvec = Array.of_list (List.rev path) in
        Cstmt
          {
            cname = s.name;
            cvec;
            cvbuf = Array.make (Array.length cvec) 0;
            creads = Array.of_list (List.map caccess s.reads);
            cwrites = Array.of_list (List.map caccess s.writes);
          }
    | Loop { var; lo; hi; rev; body } ->
        (* Bounds are evaluated in the enclosing scope: compile them before
           binding [var]. *)
        let clo = caffine lo and chi = caffine hi in
        let saved = !scope in
        let cslot = fresh var in
        let cbody = Array.of_list (List.map (cnode (cslot :: path)) body) in
        scope := saved;
        Cloop { cslot; clo; chi; crev = rev; cbody }
  in
  let cbody = Array.of_list (List.map (cnode []) p.body) in
  (cbody, !nslots, pinits)

let iter_compiled (cbody, nslots, pinits) fstmt =
  let env = Array.make (max nslots 1) 0 in
  List.iter (fun (s, v) -> env.(s) <- v) pinits;
  let rec exec = function
    | Cstmt s -> fstmt env s
    | Cloop l ->
        let lo = ceval env l.clo and hi = ceval env l.chi in
        if l.crev then
          for v = hi downto lo do
            env.(l.cslot) <- v;
            Array.iter exec l.cbody
          done
        else
          for v = lo to hi do
            env.(l.cslot) <- v;
            Array.iter exec l.cbody
          done
  in
  Array.iter exec cbody

let iter_instances ~params p f =
  iter_compiled (compile ~params p) (fun env s ->
      let eval_access a =
        (a.carray, Array.map (fun e -> ceval env e) a.cindex)
      in
      f
        {
          stmt_name = s.cname;
          vec = Array.map (fun slot -> env.(slot)) s.cvec;
          loads = Array.to_list (Array.map eval_access s.creads);
          stores = Array.to_list (Array.map eval_access s.cwrites);
        })

let iter_accesses ~params p ~on_instance ~on_access =
  iter_compiled (compile ~params p) (fun env s ->
      on_instance ();
      let emit is_write a =
        for d = 0 to Array.length a.cindex - 1 do
          a.cbuf.(d) <- ceval env a.cindex.(d)
        done;
        on_access a.carray a.cbuf is_write
      in
      Array.iter (emit false) s.creads;
      Array.iter (emit true) s.cwrites)

let iter_cells ~params p ~on_load ~on_stmt ~on_store =
  iter_compiled (compile ~params p) (fun env s ->
      (* manual loops: no per-instance closures, no per-instance arrays *)
      let reads = s.creads in
      for i = 0 to Array.length reads - 1 do
        let a = Array.unsafe_get reads i in
        for d = 0 to Array.length a.cindex - 1 do
          a.cbuf.(d) <- ceval env a.cindex.(d)
        done;
        on_load a.carray a.cbuf
      done;
      let vec = s.cvec in
      for d = 0 to Array.length vec - 1 do
        s.cvbuf.(d) <- Array.unsafe_get env (Array.unsafe_get vec d)
      done;
      on_stmt s.cname s.cvbuf;
      let writes = s.cwrites in
      for i = 0 to Array.length writes - 1 do
        let a = Array.unsafe_get writes i in
        for d = 0 to Array.length a.cindex - 1 do
          a.cbuf.(d) <- ceval env a.cindex.(d)
        done;
        on_store a.carray a.cbuf
      done)

let count_instances ~params p =
  let n = ref 0 in
  iter_instances ~params p (fun _ -> incr n);
  !n

(* Ranged access iteration: visit only the accesses whose global position
   (the index [iter_accesses] would assign) lies in [lo, hi).  The point is
   sharded trace consumption: a shard owning a contiguous position range
   must not pay full interning/simulation cost for the rest of the trace.
   Whole loop iterations strictly before [lo] are skipped by *counting*
   their accesses (the rectangular-collapse arithmetic of [n_accesses], so
   a skipped subtree costs its loop-iteration structure, not its access
   count), and iteration stops outright once [hi] is passed. *)
exception Past_range

let iter_accesses_range ~params p ~lo ~hi ~on_instance ~on_access =
  if lo < 0 then invalid_arg "Program.iter_accesses_range: lo < 0";
  if hi < lo then invalid_arg "Program.iter_accesses_range: hi < lo";
  let cbody, nslots, pinits = compile ~params p in
  let env = Array.make (max nslots 1) 0 in
  List.iter (fun (s, v) -> env.(s) <- v) pinits;
  let aff_uses slot a = Array.exists (fun s -> s = slot) a.cslots in
  let rec node_uses slot = function
    | Cstmt _ -> false
    | Cloop l ->
        aff_uses slot l.clo || aff_uses slot l.chi
        || Array.exists (node_uses slot) l.cbody
  in
  (* Access count of a subtree at the current [env] (same collapse as
     [n_accesses]); used only while still skipping toward [lo]. *)
  let rec count = function
    | Cstmt s -> Array.length s.creads + Array.length s.cwrites
    | Cloop l ->
        let lo_v = ceval env l.clo and hi_v = ceval env l.chi in
        if hi_v < lo_v then 0
        else if not (Array.exists (node_uses l.cslot) l.cbody) then begin
          env.(l.cslot) <- lo_v;
          (hi_v - lo_v + 1) * Array.fold_left (fun a c -> a + count c) 0 l.cbody
        end
        else begin
          let total = ref 0 in
          for v = lo_v to hi_v do
            env.(l.cslot) <- v;
            Array.iter (fun c -> total := !total + count c) l.cbody
          done;
          !total
        end
  in
  let pos = ref 0 in
  let rec exec = function
    | Cstmt s ->
        let na = Array.length s.creads + Array.length s.cwrites in
        if !pos >= hi then raise_notrace Past_range;
        if !pos + na <= lo then pos := !pos + na
        else begin
          on_instance ();
          let emit is_write a =
            let p = !pos in
            if p >= lo && p < hi then begin
              for d = 0 to Array.length a.cindex - 1 do
                a.cbuf.(d) <- ceval env a.cindex.(d)
              done;
              on_access p a.carray a.cbuf is_write
            end;
            pos := p + 1
          in
          Array.iter (emit false) s.creads;
          Array.iter (emit true) s.cwrites
        end
    | Cloop l ->
        let lo_v = ceval env l.clo and hi_v = ceval env l.chi in
        let body v =
          if !pos >= hi then raise_notrace Past_range;
          env.(l.cslot) <- v;
          if !pos < lo then begin
            (* Still left of the range: try to skip this whole iteration
               with one count; descend only when the range starts inside. *)
            let c = Array.fold_left (fun a n -> a + count n) 0 l.cbody in
            (* [count] mutates [env] slots below [l.cslot]; restore ours. *)
            env.(l.cslot) <- v;
            if !pos + c <= lo then pos := !pos + c
            else Array.iter exec l.cbody
          end
          else Array.iter exec l.cbody
        in
        if l.crev then
          for v = hi_v downto lo_v do
            body v
          done
        else
          for v = lo_v to hi_v do
            body v
          done
  in
  try Array.iter exec cbody with Past_range -> ()

(* --------------------------------------------------------------------- *)
(* Spatially-hashed sampled iteration (SHARDS-style).                     *)

(* All hashing is native-int (62-bit) so the hot loop never boxes: a
   mutable [Int64] field would allocate on every store.  [mix] is a
   splitmix-style finalizer with constants truncated to fit OCaml's int
   literals; the result is masked to 62 bits, i.e. uniform on [0, 2^62). *)
let hash_bits_mask = (1 lsl 62) - 1

let mix h =
  let h = h lxor (h lsr 30) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 27) in
  let h = h * 0x106689D45497FDB5 in
  (h lxor (h lsr 31)) land hash_bits_mask

(* The cell hash must be a pure function of (name, index) - every
   consumer (fast iterator, oracles, tests) has to agree on which cells a
   given seed selects - and linear in the index vector modulo the final
   [mix], so the sampled iterator can advance it along an innermost loop
   with one addition instead of a per-dimension dot product:
     h = mix (name_h + sum_d r_d * i_d)
   with per-dimension odd multipliers r_d derived from the seed. *)
let sample_dim_coef seed0 d = mix (seed0 + 0x9e37 + d) lor 1

let sample_seed0 seed = mix ((seed land hash_bits_mask) + 1)

let sample_name_hash seed0 name =
  let h = ref seed0 in
  String.iter (fun c -> h := mix (!h + Char.code c + 1)) name;
  !h

let sample_hash ~seed name idx =
  let seed0 = sample_seed0 seed in
  let s = ref (sample_name_hash seed0 name) in
  for d = 0 to Array.length idx - 1 do
    s := !s + (sample_dim_coef seed0 d * idx.(d))
  done;
  mix !s

(* Mirrored plan of the compiled tree with per-access hash state.  An
   innermost loop (body entirely statements) gets the fast path: per
   access, the linear part of the hash changes by a constant when the
   loop variable steps by one, so a rejected access costs one addition,
   one [mix] and one compare - no index evaluation, no interning. *)
type sacc = {
  xacc : caccess;
  xwrite : bool;
  xnh : int; (* name-hash part, constant per access site *)
  xrd : int array; (* r_d per index dimension *)
}

type snode =
  | Sstmt of sacc array
  | Sloop of {
      yslot : int;
      ylo : caffine;
      yhi : caffine;
      yrev : bool;
      ybody : snode array;
    }
  | Sfast of {
      fslot : int;
      flo : caffine;
      fhi : caffine;
      frev : bool;
      faccs : sacc array; (* flattened body accesses in program order *)
      fds : int array; (* per access: hash delta for one +1 step of fslot *)
      fcur : int array; (* per access: current linear hash part (scratch) *)
      frow : int; (* accesses per iteration *)
    }

(* Budget polling granularity of the fast path, in accesses: fine enough
   that a deadline is noticed in well under a millisecond, coarse enough
   that the indirect call vanishes from the per-access cost. *)
let tick_stride = 65_536

let iter_accesses_sampled ~params p ~seed ~thresh ~on_tick ~on_access =
  let cbody, nslots, pinits = compile ~params p in
  let env = Array.make (max nslots 1) 0 in
  List.iter (fun (s, v) -> env.(s) <- v) pinits;
  let seed0 = sample_seed0 seed in
  let sacc is_write (a : caccess) =
    {
      xacc = a;
      xwrite = is_write;
      xnh = sample_name_hash seed0 a.carray;
      xrd = Array.init (Array.length a.cindex) (sample_dim_coef seed0);
    }
  in
  let stmt_accs (s : cstmt) =
    Array.append (Array.map (sacc false) s.creads) (Array.map (sacc true) s.cwrites)
  in
  (* coefficient of [slot] in the affine form, 0 if absent *)
  let coef_of (a : caffine) slot =
    let c = ref 0 in
    Array.iteri (fun k s -> if s = slot then c := !c + a.ccoefs.(k)) a.cslots;
    !c
  in
  let rec plan = function
    | Cstmt s -> Sstmt (stmt_accs s)
    | Cloop l ->
        let innermost =
          Array.for_all (function Cstmt _ -> true | Cloop _ -> false) l.cbody
        in
        if not innermost then
          Sloop
            {
              yslot = l.cslot;
              ylo = l.clo;
              yhi = l.chi;
              yrev = l.crev;
              ybody = Array.map plan l.cbody;
            }
        else begin
          let faccs =
            Array.concat
              (Array.to_list
                 (Array.map
                    (function Cstmt s -> stmt_accs s | Cloop _ -> assert false)
                    l.cbody))
          in
          let fds =
            Array.map
              (fun x ->
                let d = ref 0 in
                Array.iteri
                  (fun k aff -> d := !d + (x.xrd.(k) * coef_of aff l.cslot))
                  x.xacc.cindex;
                !d)
              faccs
          in
          Sfast
            {
              fslot = l.cslot;
              flo = l.clo;
              fhi = l.chi;
              frev = l.crev;
              faccs;
              fds;
              fcur = Array.make (Array.length faccs) 0;
              frow = Array.length faccs;
            }
        end
  in
  let splan = Array.map plan cbody in
  (* linear hash part of access [x] at the current [env] *)
  let linear x =
    let s = ref x.xnh in
    Array.iteri (fun k aff -> s := !s + (x.xrd.(k) * ceval env aff)) x.xacc.cindex;
    !s
  in
  let emit x h =
    let a = x.xacc in
    for d = 0 to Array.length a.cindex - 1 do
      a.cbuf.(d) <- ceval env a.cindex.(d)
    done;
    on_access h a.carray a.cbuf x.xwrite
  in
  let pending = ref 0 in
  let tick n =
    pending := !pending + n;
    if !pending >= tick_stride then begin
      on_tick !pending;
      pending := 0
    end
  in
  let rec exec = function
    | Sstmt accs ->
        tick (Array.length accs);
        Array.iter
          (fun x ->
            let h = mix (linear x) in
            if h < thresh then emit x h)
          accs
    | Sloop l ->
        let lo = ceval env l.ylo and hi = ceval env l.yhi in
        if l.yrev then
          for v = hi downto lo do
            env.(l.yslot) <- v;
            Array.iter exec l.ybody
          done
        else
          for v = lo to hi do
            env.(l.yslot) <- v;
            Array.iter exec l.ybody
          done
    | Sfast f ->
        let lo = ceval env f.flo and hi = ceval env f.fhi in
        if hi >= lo then begin
          let na = Array.length f.faccs in
          let faccs = f.faccs and fds = f.fds and fcur = f.fcur in
          let slot = f.fslot in
          let first = if f.frev then hi else lo in
          env.(slot) <- first;
          for k = 0 to na - 1 do
            Array.unsafe_set fcur k (linear (Array.unsafe_get faccs k))
          done;
          (* [env.(slot)] is refreshed lazily, only when an access is
             kept: [emit] is the sole reader and rejected iterations -
             the overwhelming majority - never touch it.  Ticks are
             hoisted out of the iteration and charged per block, so the
             per-access cost is one add, one [mix] and one compare. *)
          let step v =
            for k = 0 to na - 1 do
              let h = mix (Array.unsafe_get fcur k) in
              if h < thresh then begin
                env.(slot) <- v;
                emit (Array.unsafe_get faccs k) h
              end
            done
          in
          let dir = if f.frev then -1 else 1 in
          let left = ref (hi - lo) in
          let v = ref first in
          step first;
          while !left > 0 do
            let block = min !left (1 + (tick_stride / max 1 na)) in
            if dir > 0 then
              for w = !v + 1 to !v + block do
                for k = 0 to na - 1 do
                  Array.unsafe_set fcur k
                    (Array.unsafe_get fcur k + Array.unsafe_get fds k)
                done;
                step w
              done
            else
              for w = !v - 1 downto !v - block do
                for k = 0 to na - 1 do
                  Array.unsafe_set fcur k
                    (Array.unsafe_get fcur k - Array.unsafe_get fds k)
                done;
                step w
              done;
            v := !v + (dir * block);
            left := !left - block;
            tick (block * f.frow)
          done;
          tick f.frow
        end
  in
  Array.iter exec splan;
  if !pending > 0 then on_tick !pending

(* Exact access count without enumerating instances: a loop whose body's
   count does not depend on its variable contributes extent * body-count,
   so rectangular sub-nests collapse to multiplications and only the
   variables that genuinely shape inner bounds (triangular nests) are
   enumerated.  Lets trace builders allocate exactly once. *)
let n_accesses ~params p =
  let cbody, nslots, pinits = compile ~params p in
  let env = Array.make (max nslots 1) 0 in
  List.iter (fun (s, v) -> env.(s) <- v) pinits;
  let aff_uses slot a = Array.exists (fun s -> s = slot) a.cslots in
  let rec node_uses slot = function
    | Cstmt _ -> false (* access indices never affect the count *)
    | Cloop l ->
        aff_uses slot l.clo || aff_uses slot l.chi
        || Array.exists (node_uses slot) l.cbody
  in
  let rec count = function
    | Cstmt s -> Array.length s.creads + Array.length s.cwrites
    | Cloop l ->
        let lo = ceval env l.clo and hi = ceval env l.chi in
        if hi < lo then 0
        else if not (Array.exists (node_uses l.cslot) l.cbody) then begin
          env.(l.cslot) <- lo;
          (hi - lo + 1) * Array.fold_left (fun a c -> a + count c) 0 l.cbody
        end
        else begin
          let total = ref 0 in
          for v = lo to hi do
            env.(l.cslot) <- v;
            Array.iter (fun c -> total := !total + count c) l.cbody
          done;
          !total
        end
  in
  Array.fold_left (fun a c -> a + count c) 0 cbody

let input_arrays ~params p =
  let written = Hashtbl.create 16 in
  let inputs = ref [] in
  iter_instances ~params p (fun inst ->
      List.iter
        (fun (a, cell) ->
          if (not (Hashtbl.mem written (a, cell))) && not (List.mem a !inputs)
          then inputs := a :: !inputs)
        inst.loads;
      List.iter (fun (a, cell) -> Hashtbl.replace written (a, cell) ()) inst.stores);
  List.rev !inputs

let pp fmt p =
  let rec pp_node indent fmt = function
    | Stmt s ->
        Format.fprintf fmt "%s%s: %a = f(%a)\n" indent s.name
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
             Access.pp)
          s.writes
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
             Access.pp)
          s.reads
    | Loop { var; lo; hi; rev; body } ->
        if rev then
          Format.fprintf fmt "%sfor %s = %a downto %a:\n" indent var Affine.pp
            hi Affine.pp lo
        else
          Format.fprintf fmt "%sfor %s = %a .. %a:\n" indent var Affine.pp lo
            Affine.pp hi;
        List.iter (pp_node (indent ^ "  ") fmt) body
  in
  Format.fprintf fmt "program %s(%s):\n" p.name (String.concat ", " p.params);
  List.iter (pp_node "  " fmt) p.body
