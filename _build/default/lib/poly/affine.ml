module Smap = Map.Make (String)
module P = Iolb_symbolic.Polynomial

(* Invariant: no zero coefficient is stored in [coeffs]. *)
type t = { coeffs : int Smap.t; const : int }

let zero = { coeffs = Smap.empty; const = 0 }
let const c = { coeffs = Smap.empty; const = c }

let term c x =
  if c = 0 then zero else { coeffs = Smap.singleton x c; const = 0 }

let var x = term 1 x

let add a b =
  {
    coeffs =
      Smap.union
        (fun _ ca cb -> if ca + cb = 0 then None else Some (ca + cb))
        a.coeffs b.coeffs;
    const = a.const + b.const;
  }

let neg e = { coeffs = Smap.map (fun c -> -c) e.coeffs; const = -e.const }
let sub a b = add a (neg b)

let scale k e =
  if k = 0 then zero
  else { coeffs = Smap.map (fun c -> k * c) e.coeffs; const = k * e.const }

let coeff x e = try Smap.find x e.coeffs with Not_found -> 0
let constant e = e.const
let vars e = List.map fst (Smap.bindings e.coeffs)

let is_constant e = if Smap.is_empty e.coeffs then Some e.const else None

let equal a b = a.const = b.const && Smap.equal Int.equal a.coeffs b.coeffs

let compare a b =
  match Int.compare a.const b.const with
  | 0 -> Smap.compare Int.compare a.coeffs b.coeffs
  | c -> c

let eval env e =
  Smap.fold (fun x c acc -> acc + (c * env x)) e.coeffs e.const

let eval_partial env e =
  Smap.fold
    (fun x c acc ->
      match env x with
      | Some v -> add acc (const (c * v))
      | None -> add acc (term c x))
    e.coeffs (const e.const)

let subst x e' e =
  let c = coeff x e in
  if c = 0 then e
  else
    let without = { e with coeffs = Smap.remove x e.coeffs } in
    add without (scale c e')

let to_polynomial e =
  Smap.fold
    (fun x c acc -> P.add acc (P.scale (Iolb_util.Rat.of_int c) (P.var x)))
    e.coeffs
    (P.of_int e.const)

let of_terms terms const_ =
  List.fold_left (fun acc (c, x) -> add acc (term c x)) (const const_) terms

let terms e = List.map (fun (x, c) -> (c, x)) (Smap.bindings e.coeffs)

let pp fmt e =
  let ts = terms e in
  if ts = [] then Format.fprintf fmt "%d" e.const
  else begin
    List.iteri
      (fun i (c, x) ->
        let prefix =
          if i = 0 then if c < 0 then "-" else ""
          else if c < 0 then " - "
          else " + "
        in
        let mag = abs c in
        if mag = 1 then Format.fprintf fmt "%s%s" prefix x
        else Format.fprintf fmt "%s%d%s" prefix mag x)
      ts;
    if e.const > 0 then Format.fprintf fmt " + %d" e.const
    else if e.const < 0 then Format.fprintf fmt " - %d" (-e.const)
  end

let to_string e = Format.asprintf "%a" pp e
