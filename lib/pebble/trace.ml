type cell = string * int array

type event = Read of cell | Write of cell

let of_program ?(budget = Iolb_util.Budget.unlimited) ~params p =
  let events = ref [] in
  let n = ref 0 in
  Iolb_ir.Program.iter_instances ~params p (fun inst ->
      Iolb_util.Budget.checkpoint budget Iolb_util.Budget.Cdag_build;
      incr n;
      Iolb_util.Budget.check_node_cap budget Iolb_util.Budget.Cdag_build !n;
      List.iter (fun c -> events := Read c :: !events) inst.loads;
      List.iter (fun c -> events := Write c :: !events) inst.stores);
  List.rev !events

let footprint events =
  let seen = Hashtbl.create 256 in
  List.iter
    (fun e ->
      let c = match e with Read c | Write c -> c in
      Hashtbl.replace seen c ())
    events;
  Hashtbl.length seen

let length = List.length

let pp_event fmt e =
  let pp_cell fmt (a, idx) =
    Format.fprintf fmt "%s(%s)" a
      (String.concat "," (List.map string_of_int (Array.to_list idx)))
  in
  match e with
  | Read c -> Format.fprintf fmt "R %a" pp_cell c
  | Write c -> Format.fprintf fmt "W %a" pp_cell c
