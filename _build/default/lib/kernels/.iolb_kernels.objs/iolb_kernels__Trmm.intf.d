lib/kernels/trmm.mli: Iolb_ir Matrix
