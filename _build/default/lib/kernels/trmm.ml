open Shorthand

let spec =
  Program.make ~name:"trmm" ~params:[ "M"; "N" ]
    ~assumptions:[ Constr.ge_of (v "M") (c 1); Constr.ge_of (v "N") (c 1) ]
    [
      loop_lt "i" (c 0) (v "M")
        [
          loop_lt "j" (c 0) (v "N")
            [
              loop_lt "k" (v "i" +! c 1) (v "M")
                [
                  stmt "SB"
                    ~writes:[ a2 "B" (v "i") (v "j") ]
                    ~reads:
                      [
                        a2 "B" (v "i") (v "j");
                        a2 "A" (v "k") (v "i");
                        a2 "B" (v "k") (v "j");
                      ];
                ];
            ];
        ];
    ]

let run a b =
  let m, _ = Matrix.dims a in
  let _, n = Matrix.dims b in
  let out = Matrix.copy b in
  (* Rows processed upward-dependency-free: row i only reads rows k > i of
     the original B, which the i-ascending order leaves... rows k > i are
     updated after row i, so reading [out] is reading original values. *)
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      for k = i + 1 to m - 1 do
        Matrix.set out i j (Matrix.get out i j +. (Matrix.get a k i *. Matrix.get out k j))
      done
    done
  done;
  out
