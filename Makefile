.PHONY: all build test test-quick check bench examples coverage clean

all: build

build:
	dune build @all

test:
	dune runtest

# Only the `Quick-tagged Alcotest cases (skips the deep fuzz sweeps).
test-quick:
	ALCOTEST_QUICK_TESTS=1 dune runtest --force

# The soundness certifier at the PR-smoke scale (exit 1 on counterexample).
check:
	dune exec bin/iolb_cli.exe -- check --count 200 --seed 42

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/bound_gallery.exe
	dune exec examples/mgs_tiling.exe
	dune exec examples/qr_io_study.exe
	dune exec examples/hourglass_explorer.exe

# Needs bisect_ppx installed (`opam install bisect_ppx`); the build is not
# instrumented otherwise.
coverage:
	mkdir -p _coverage
	BISECT_FILE=$(CURDIR)/_coverage/bisect \
	  dune runtest --force --instrument-with bisect_ppx
	bisect-ppx-report summary --per-file --coverage-path _coverage

clean:
	dune clean
	rm -rf _coverage
