(** Symbolic (may-)dependence relations between statements.

    For a writer statement [w] and reader statement [r] touching the same
    array, the relation is the integer set of pairs (writer instance,
    reader instance) whose accesses address the same cell:

    [{ (src, dst) | w_index(src) = r_index(dst), src in D_w, dst in D_r }]

    over the concatenated dimension spaces (writer dimensions renamed with
    a [w$] prefix to avoid capture).  This is a {e may}-dependence: it does
    not apply last-writer killing, so it over-approximates the exact flow
    dependences of the CDAG - and must contain every CDAG edge, which the
    test suite checks.  The hourglass detector uses its emptiness/shape
    questions; the exact dataflow lives in {!Iolb_cdag.Cdag}. *)

type t = {
  writer : string;
  reader : string;
  array : string;
  (* The relation set: dimensions are the writer's (renamed [w$x]) followed
     by the reader's. *)
  relation : Iolb_poly.Iset.t;
  writer_dims : string list;  (** renamed writer dimensions, in order *)
  reader_dims : string list;
}

(** The renaming applied to writer dimensions. *)
val rename_writer_dim : string -> string

(** [relations p] enumerates all (writer access, reader access) pairs of
    distinct or equal statements on a common array and builds their
    relations.  Scalar (0-dimensional) arrays relate all instances, with an
    unconstrained relation. *)
val relations : Program.t -> t list

(** [between p ~writer ~reader] is the sublist of {!relations} with those
    statement names, built directly for the requested pair (no relation is
    constructed for any other pair). *)
val between : Program.t -> writer:string -> reader:string -> t list

(** [may_depend ~params d] tests non-emptiness at concrete parameters. *)
val may_depend : params:(string * int) list -> t -> bool

(** [instance_pairs ~params d] enumerates the concrete (writer vec, reader
    vec) pairs of the relation. *)
val instance_pairs :
  params:(string * int) list -> t -> (int array * int array) list

val pp : Format.formatter -> t -> unit
