(* Command-line interface to the lower-bound engine.

   iolb list                          enumerate the built-in kernels
   iolb analyze mgs                   full derivation report for one kernel
   iolb bounds --all                  formulas for every kernel
   iolb bounds --file prog.iolb       same, for a DSL source file
   iolb print mgs                     emit a built-in kernel as DSL source
   iolb check --parse prog.iolb       parse/elaborate a DSL source only
   iolb eval mgs -m 128 -n 64 -s 256  numeric bounds at a concrete point
   iolb simulate mgs -m 12 -n 8 -s 16 pebble-game I/O vs the bounds
   iolb simulate mgs --sizes 8,16,32  cache sweep: every S from one pass
   iolb tile mgs -m 48 -n 16 -s 400   tiled-ordering cache simulation
   iolb check --count 200 --seed 42   certify the pipeline on random programs
   iolb serve --socket /tmp/iolb.sock the crash-tolerant bound service
   iolb client --socket ... analyze mgs  query a running service

   Exit codes: 0 success, 1 counterexample found (check), 2 invalid input,
   3 budget exhausted, 4 unsupported, 5 internal error, 6 server
   overloaded (client only; 124/125 are cmdliner's own). *)

open Cmdliner

module Report = Iolb.Report
module D = Iolb.Derive
module Budget = Iolb_util.Budget
module Engine_error = Iolb_util.Engine_error
module Cdag = Iolb_cdag.Cdag
module Game = Iolb_pebble.Game
module Cache = Iolb_pebble.Cache
module Sweep = Iolb_pebble.Sweep
module Trace = Iolb_pebble.Trace
module K = Iolb_kernels
module Front = Iolb_front.Front
module Driver = Iolb_front.Driver

let ( let* ) = Result.bind

let kernel_arg =
  let doc = "Kernel name: mgs, qr_hh_a2v, qr_hh_v2q, gebd2, gehd2." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let m_arg = Arg.(value & opt int 64 & info [ "m" ] ~docv:"M" ~doc:"Rows M.")
let n_arg = Arg.(value & opt int 32 & info [ "n" ] ~docv:"N" ~doc:"Columns N.")

let s_arg =
  Arg.(value & opt int 256 & info [ "s" ] ~docv:"S" ~doc:"Fast memory size S.")

(* Resource-budget flags, shared by every analysing command. *)
let budget_args =
  let timeout_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget in milliseconds.  A passed deadline always \
             fails the command with exit code 3.")
  in
  let max_steps_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Cap on total engine work steps.  Analyses degrade to weaker \
             bounds when a derivation rung exceeds it.")
  in
  let max_nodes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:
            "Cap on the size of any built structure (CDAG nodes, trace \
             events, enumerated points).")
  in
  let tuple t s n = (t, s, n) in
  Term.(const tuple $ timeout_arg $ max_steps_arg $ max_nodes_arg)

let make_budget (timeout_ms, max_steps, max_nodes) =
  Engine_error.guard (fun () ->
      Budget.make ?timeout_ms ?max_steps ?max_nodes ())

(* Error boundary for command bodies: print one clean line on stderr and
   map the typed error to its exit code. *)
let run_checked f =
  match f () with
  | Ok () -> 0
  | Error e ->
      Format.eprintf "iolb: error: %a@." Engine_error.pp e;
      Engine_error.exit_code e

let engine_exits =
  Cmd.Exit.info 2 ~doc:"on invalid input (unknown kernel, bad sizes)."
  :: Cmd.Exit.info 3
       ~doc:"on budget exhaustion ($(b,--timeout-ms)/$(b,--max-steps)/$(b,--max-nodes))."
  :: Cmd.Exit.info 4 ~doc:"on well-formed but unsupported requests."
  :: Cmd.Exit.info 5 ~doc:"on internal errors."
  :: Cmd.Exit.defaults

let list_cmd =
  let run () =
    Printf.printf "paper kernels:\n";
    List.iter
      (fun (e : Report.entry) ->
        Printf.printf "  %-12s %s\n"
          (Iolb.Paper_formulas.kernel_name e.kernel)
          e.display)
      Report.registry;
    Printf.printf "baselines (classical path / negative controls):\n";
    List.iter
      (fun (name, _, _) -> Printf.printf "  %s\n" name)
      Report.baselines;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in kernels")
    Term.(const run $ const ())

let analyze_cmd =
  (* Rendering lives in [Iolb_front.Driver]: the same bytes answer
     [analyze NAME], [bounds --file], and the differential tests. *)
  let run name budget_spec =
    run_checked @@ fun () ->
    let* budget = make_budget budget_spec in
    let* report = Driver.render_kernel ~budget ~logs:true name in
    Ok (print_string report)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Derivation report for one kernel"
       ~exits:engine_exits)
    Term.(const run $ kernel_arg $ budget_args)

let jobs_arg =
  let doc =
    "Number of worker domains for the per-kernel analyses.  Defaults to \
     $(b,IOLB_JOBS) or the recommended domain count; 1 disables parallelism. \
     Output is identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let file_arg =
  let doc =
    "Analyse the affine program in $(i,FILE) (DSL source, see the README \
     grammar) instead of a built-in kernel.  Repeatable.  A source that is \
     structurally identical to a built-in kernel gets that kernel's full \
     paper report; anything else gets the graceful-degradation ladder."
  in
  Arg.(value & opt_all string [] & info [ "file" ] ~docv:"FILE" ~doc)

let bounds_cmd =
  let run jobs files budget_spec =
    run_checked @@ fun () ->
    let* () =
      match jobs with
      | Some j when j < 1 ->
          Error
            (Engine_error.Invalid_input
               (Printf.sprintf "--jobs must be >= 1, got %d" j))
      | _ -> Ok ()
    in
    let* budget = make_budget budget_spec in
    (* The budget's counters are atomic, so one instance is shared soundly
       across the fan-out; reports print sequentially in registry (or
       command-line file) order, up to the first failed entry. *)
    let results =
      match files with
      | [] ->
          Iolb_util.Pool.map ?jobs
            (fun entry ->
              let* a = Report.analyze_checked ~budget entry in
              Ok (Driver.render_analysis ~logs:false a))
            Report.registry
      | files ->
          Iolb_util.Pool.map ?jobs
            (Driver.render_file ~budget ~logs:false)
            files
    in
    List.fold_left
      (fun acc result ->
        let* () = acc in
        let* report = result in
        Ok (print_string report))
      (Ok ()) results
  in
  Cmd.v
    (Cmd.info "bounds"
       ~doc:
         "Derived bound formulas for every kernel (or for $(b,--file) \
          sources)"
       ~exits:engine_exits)
    Term.(const run $ jobs_arg $ file_arg $ budget_args)

let eval_cmd =
  let run name m n s budget_spec =
    run_checked @@ fun () ->
    let* budget = make_budget budget_spec in
    let* entry = Report.find_checked name in
    let* a = Report.analyze_checked ~budget entry in
    Printf.printf "%s at m=%d n=%d s=%d:\n" entry.display m n s;
    (match a.degradation with
    | Some why -> Printf.printf "  degraded: %s\n" why
    | None -> ());
    List.iter
      (fun tech ->
        let label =
          match tech with
          | `Classical -> "classical"
          | `Hourglass -> "hourglass"
        in
        match Report.eval_best a ~technique:tech ~m ~n ~s with
        | Some v -> Printf.printf "  %-10s Q >= %.1f\n" label v
        | None -> Printf.printf "  %-10s (no bound)\n" label)
      [ `Classical; `Hourglass ];
    Printf.printf "  %-10s %s\n" "paper"
      (Printf.sprintf "Q >= %.1f (theorem formula)"
         (Iolb.Paper_formulas.eval_at
            (Iolb.Paper_formulas.theorem_main entry.kernel)
            ~m ~n ~s));
    Ok ()
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate the bounds at a concrete point"
       ~exits:engine_exits)
    Term.(const run $ kernel_arg $ m_arg $ n_arg $ s_arg $ budget_args)

let simulate_cmd =
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random schedule seed.")
  in
  let sizes_arg =
    let doc =
      "Cache sizes to sweep: a comma list $(b,a,b,c) or a range \
       $(b,lo:hi:step).  Every size is answered from a single \
       reuse-distance pass over the program trace (LRU) plus one shared \
       OPT plan, instead of playing the single-$(b,-s) pebble game."
    in
    Arg.(value & opt (some string) None & info [ "sizes" ] ~docv:"SIZES" ~doc)
  in
  let sample_rate_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "sample-rate" ] ~docv:"RATE"
          ~doc:
            "Spatially-sampled sweep: keep each cell iff its seeded hash \
             falls below $(docv), a value in (0, 1], and report confidence \
             intervals instead of exact counts.  Makes billion-access \
             traces sweepable.  Requires $(b,--sizes).")
  in
  let sample_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "sample-seed" ] ~docv:"SEED"
          ~doc:
            "Hash seed for $(b,--sample-rate); the kept cell set is a pure \
             function of (seed, cell).")
  in
  let chunk_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chunk-size" ] ~docv:"N"
          ~doc:
            "Stream the trace through reusable buffers of $(docv) accesses \
             instead of materializing it; memory then follows the \
             footprint, not the trace length.  Requires $(b,--sizes).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Shard the sweep across $(docv) domains.  The merge is \
             deterministic: output is identical at every width.  Requires \
             $(b,--sizes).")
  in
  let parse_spec spec =
    match Sweep.parse_sizes spec with
    | Ok sizes -> Ok sizes
    | Error msg -> Error (Engine_error.Invalid_input ("--sizes: " ^ msg))
  in
  (* One sweep answers every size: exact LRU stats from the reuse-distance
     pass, exact OPT loads from per-size forward runs over a shared plan.
     The helpers take the program, its concrete sizes and a lower-bound
     evaluator, so built-in kernels and parsed --file sources share them. *)
  let run_sweep ~program ~params ~budget ~lb spec =
    let* sizes = parse_spec spec in
    let* trace =
      Engine_error.guard (fun () -> Trace.of_program ~budget ~params program)
    in
    let* sweep = Sweep.run_checked ~budget trace in
    let* plan = Engine_error.guard (fun () -> Cache.opt_plan ~budget trace) in
    Printf.printf
      "cache sweep over %d events, footprint %d cells (program order):\n"
      (Trace.length trace) (Trace.footprint trace);
    Printf.printf "  %8s | %9s %9s %9s | %9s | %10s\n" "S" "lru loads" "hits"
      "stores" "opt loads" "lower bnd";
    Engine_error.guard (fun () ->
        List.iter
          (fun s ->
            let lru = Sweep.stats sweep ~size:s in
            let opt = Cache.opt_run ~budget ~size:s plan in
            Printf.printf "  %8d | %9d %9d %9d | %9d | %10.1f\n" s
              lru.Cache.loads lru.Cache.read_hits lru.Cache.stores
              opt.Cache.loads (lb ~s))
          sizes)
  in
  (* Streaming / sharded variant: the trace is never materialized, so the
     shared OPT plan (which needs the whole trace) is unavailable and its
     column is dropped.  The LRU columns are exact and byte-identical at
     every jobs width. *)
  let run_sweep_streamed ~program ~params ~budget ~jobs ~chunk_size ~lb spec =
    let* sizes = parse_spec spec in
    let* sweep =
      Sweep.run_program_checked ~budget ?jobs ?chunk_size ~params program
    in
    Printf.printf
      "streamed cache sweep over %d events, footprint %d cells (no OPT \
       column: the trace is never materialized):\n"
      (Sweep.accesses sweep) (Sweep.footprint sweep);
    Engine_error.guard (fun () ->
        Printf.printf "  %8s | %9s %9s %9s | %10s\n" "S" "lru loads" "hits"
          "stores" "lower bnd";
        List.iter
          (fun s ->
            let lru = Sweep.stats sweep ~size:s in
            Printf.printf "  %8d | %9d %9d %9d | %10.1f\n" s lru.Cache.loads
              lru.Cache.read_hits lru.Cache.stores (lb ~s))
          sizes)
  in
  (* Sampled variant: every column is an estimate with an interval. *)
  let run_sweep_sampled ~program ~params ~budget ~rate ~seed ~lb spec =
    let* sizes = parse_spec spec in
    let* sampled =
      Sweep.run_sampled_checked ~budget ~rate ~seed ~params program
    in
    Printf.printf
      "sampled cache sweep: kept %d of %d accesses (rate %g, seed %d), \
       sampled footprint %d cells%s:\n"
      (Sweep.sampled_kept_accesses sampled)
      (Sweep.sampled_total_accesses sampled)
      rate seed
      (Sweep.footprint (Sweep.sampled_union sampled))
      (if Sweep.sampled_degenerate sampled then
         "; sample too thin for error bars"
       else "");
    Engine_error.guard (fun () ->
        Printf.printf "  %8s | %12s [%12s,%12s] | %9s %9s | %10s\n" "S"
          "lru loads" "CI lo" "CI hi" "hits" "stores" "lower bnd";
        List.iter
          (fun s ->
            let loads, hits, stores =
              Sweep.sampled_stats sampled ~size:s
            in
            Printf.printf
              "  %8d | %12.4g [%12.4g,%12.4g] | %9.4g %9.4g | %10.1f\n" s
              loads.Sweep.est loads.Sweep.lo loads.Sweep.hi hits.Sweep.est
              stores.Sweep.est (lb ~s))
          sizes)
  in
  let parse_param spec =
    match String.index_opt spec '=' with
    | Some i -> (
        let name = String.sub spec 0 i in
        let v = String.sub spec (i + 1) (String.length spec - i - 1) in
        match int_of_string_opt v with
        | Some v when name <> "" -> Ok (name, v)
        | _ ->
            Error
              (Engine_error.Invalid_input
                 (Printf.sprintf "--param expects NAME=INT, got %S" spec)))
    | None ->
        Error
          (Engine_error.Invalid_input
             (Printf.sprintf "--param expects NAME=INT, got %S" spec))
  in
  let run name file param_overrides m n s seed sizes sample_rate sample_seed
      chunk_size jobs budget_spec =
    run_checked @@ fun () ->
    let* () =
      match sample_rate with
      | Some r when not (r > 0. && r <= 1.) ->
          Error
            (Engine_error.Invalid_input "--sample-rate must be in (0, 1]")
      | _ -> Ok ()
    in
    let* () =
      match (jobs, chunk_size) with
      | Some j, _ when j < 1 ->
          Error (Engine_error.Invalid_input "--jobs must be at least 1")
      | _, Some c when c < 1 ->
          Error (Engine_error.Invalid_input "--chunk-size must be at least 1")
      | _ -> Ok ()
    in
    let* () =
      if
        sizes = None
        && (sample_rate <> None || chunk_size <> None || jobs <> None)
      then
        Error
          (Engine_error.Invalid_input
             "--sample-rate/--chunk-size/--jobs apply to the cache sweep: \
              pass --sizes")
      else Ok ()
    in
    let* budget = make_budget budget_spec in
    (* Resolve the subject: a built-in kernel evaluated at -m/-n, or a
       parsed --file source at its verify sizes (overridable per parameter
       with --param).  Both produce the program, its concrete sizes, a
       degradation notice, and labelled lower bounds at a given S. *)
    let* program, params, degradation, pebble_lines =
      match (name, file) with
      | Some _, Some _ ->
          Error
            (Engine_error.Invalid_input
               "KERNEL and --file are exclusive: simulate one subject")
      | None, None ->
          Error
            (Engine_error.Invalid_input
               "need a KERNEL name or --file PROG.iolb")
      | Some name, None ->
          let* () =
            if param_overrides <> [] then
              Error
                (Engine_error.Invalid_input
                   "--param applies to --file sources; built-in kernels \
                    take -m/-n")
            else Ok ()
          in
          let* entry = Report.find_checked name in
          let* params = Report.concrete_params entry ~m ~n in
          let* a = Report.analyze_checked ~budget entry in
          let pebble_lines ~s =
            List.filter_map
              (fun tech ->
                Report.eval_best a ~technique:tech ~m ~n ~s
                |> Option.map (fun v ->
                       ( (match tech with
                         | `Classical -> "classical"
                         | `Hourglass -> "hourglass"),
                         v )))
              [ `Classical; `Hourglass ]
          in
          Ok (entry.Report.program, params, a.Report.degradation, pebble_lines)
      | None, Some path ->
          let* src = Front.parse_file path in
          let* overrides =
            List.fold_left
              (fun acc spec ->
                let* acc = acc in
                let* (name, v) = parse_param spec in
                if List.mem_assoc name src.Front.verify then
                  Ok ((name, v) :: acc)
                else
                  Error
                    (Engine_error.Invalid_input
                       (Printf.sprintf
                          "--param %s=%d: %s is not a parameter of kernel %s"
                          name v name
                          src.Front.program.Iolb_ir.Program.name)))
              (Ok []) param_overrides
          in
          let params =
            List.map
              (fun (p, v) ->
                (p, Option.value ~default:v (List.assoc_opt p overrides)))
              src.Front.verify
          in
          let* (o : D.outcome) =
            D.analyze_ladder ~budget ~verify_params:params src.Front.program
          in
          let pebble_lines ~s =
            match D.best ~params ~s o.D.bounds with
            | Some b -> [ ("derived", D.eval b ~params ~s) ]
            | None -> []
          in
          Ok (src.Front.program, params, o.D.degradation, pebble_lines)
    in
    let show_degradation () =
      match degradation with
      | Some why -> Printf.printf "degraded: %s\n" why
      | None -> ()
    in
    let lb ~s =
      List.fold_left
        (fun acc (_, v) -> Float.max acc v)
        0. (pebble_lines ~s)
    in
    match sizes with
    | Some spec -> (
        show_degradation ();
        match sample_rate with
        | Some rate ->
            run_sweep_sampled ~program ~params ~budget ~rate
              ~seed:sample_seed ~lb spec
        | None when jobs <> None || chunk_size <> None ->
            run_sweep_streamed ~program ~params ~budget ~jobs ~chunk_size
              ~lb spec
        | None -> run_sweep ~program ~params ~budget ~lb spec)
    | None ->
        let* cdag = Cdag.of_program_checked ~budget ~params program in
        Format.printf "%a@." Cdag.pp_stats cdag;
        show_degradation ();
        let* prog_run =
          Game.run_checked ~budget cdag ~s
            ~schedule:(Game.program_schedule cdag)
        in
        let* random =
          Game.run_checked ~budget cdag ~s
            ~schedule:(Game.random_topological ~seed cdag)
        in
        Printf.printf "pebble game at S=%d:\n" s;
        Printf.printf "  program order : %d loads (peak red %d)\n"
          prog_run.Game.loads prog_run.Game.peak_red;
        Printf.printf "  random order  : %d loads (peak red %d)\n"
          random.Game.loads random.Game.peak_red;
        List.iter
          (fun (label, v) ->
            Printf.printf "  lower bound (%s): %.1f\n" label v)
          (pebble_lines ~s);
        Ok ()
  in
  let sim_kernel_arg =
    let doc =
      "Kernel name: mgs, qr_hh_a2v, qr_hh_v2q, gebd2, gehd2 (omit with \
       $(b,--file))."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)
  in
  let sim_file_arg =
    let doc =
      "Simulate the affine program in $(i,FILE) (DSL source) at its \
       $(b,verify) sizes; $(b,-m)/$(b,-n) are ignored in this mode."
    in
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE" ~doc)
  in
  let sim_param_arg =
    let doc =
      "With $(b,--file): override one verify binding, e.g. $(b,--param \
       N=16).  Repeatable."
    in
    Arg.(value & opt_all string [] & info [ "param" ] ~docv:"NAME=V" ~doc)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Play the red-white pebble game (or, with $(b,--sizes), sweep the \
          cache simulators over many sizes at once) and compare with the \
          bounds"
       ~exits:engine_exits)
    Term.(
      const run $ sim_kernel_arg $ sim_file_arg $ sim_param_arg $ m_arg
      $ n_arg $ s_arg $ seed_arg $ sizes_arg $ sample_rate_arg
      $ sample_seed_arg $ chunk_arg $ jobs_arg $ budget_args)

let tile_cmd =
  let b_arg =
    Arg.(value & opt int 0 & info [ "b" ] ~doc:"Block size (0 = paper choice).")
  in
  let run name m n s b budget_spec =
    run_checked @@ fun () ->
    let* budget = make_budget budget_spec in
    let* () =
      if m < 1 || n < 1 || s < 1 then
        Error
          (Engine_error.Invalid_input
             (Printf.sprintf "need m, n, s >= 1, got m=%d n=%d s=%d" m n s))
      else Ok ()
    in
    (* Block size: an explicit -b must divide n (no silent fallback); the
       paper's automatic choice degrades to b=1 with a warning when it does
       not divide. *)
    let* b =
      if b > 0 then
        if n mod b = 0 then Ok b
        else
          Error
            (Engine_error.Invalid_input
               (Printf.sprintf
                  "block size b=%d does not divide n=%d (pick b with n mod b \
                   = 0)"
                  b n))
      else
        let auto = max 1 ((s / m) - 1) in
        if n mod auto = 0 then Ok auto
        else (
          Printf.eprintf
            "iolb: warning: paper block size b=%d does not divide n=%d; \
             falling back to b=1 (untiled)\n"
            auto n;
          Ok 1)
    in
    let simulate label spec predicted =
      let* trace =
        Engine_error.guard (fun () -> Trace.of_program ~budget ~params:[] spec)
      in
      let* opt = Cache.opt_checked ~budget ~size:s trace in
      let* lru = Cache.lru_checked ~budget ~size:s trace in
      Printf.printf "tiled %s m=%d n=%d s=%d b=%d: opt=%d lru=%d%s\n" label m n
        s b opt.Cache.loads lru.Cache.loads
        (match predicted with
        | Some p -> Printf.sprintf " predicted=%.0f" p
        | None -> "");
      Ok ()
    in
    match name with
    | "mgs" ->
        simulate "MGS"
          (K.Mgs.tiled_spec ~m ~n ~b)
          (Some
             ((0.5 *. float_of_int (m * n * n) /. float_of_int b)
             +. float_of_int (m * n)))
    | "qr_hh_a2v" | "a2v" ->
        simulate "A2V" (K.Householder.tiled_spec ~m ~n ~b) None
    | other ->
        Error
          (Engine_error.Unsupported
             (Printf.sprintf "no tiled ordering for %S (mgs, a2v)" other))
  in
  Cmd.v
    (Cmd.info "tile" ~doc:"Cache-simulate a tiled ordering (Appendix A)"
       ~exits:engine_exits)
    Term.(const run $ kernel_arg $ m_arg $ n_arg $ s_arg $ b_arg $ budget_args)

let check_cmd =
  let count_arg =
    Arg.(
      value
      & opt int 100
      & info [ "count" ] ~docv:"N"
          ~doc:"Number of random program specs to certify.")
  in
  let seed_arg =
    Arg.(
      value
      & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Base seed.  Spec $(i,k) of the run is derived from $(i,SEED+k) \
             alone, so any failure replays with $(b,--seed) $(i,failing-seed) \
             $(b,--count 1).")
  in
  let props_arg =
    Arg.(
      value
      & opt string "default"
      & info [ "props" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated property names to run ($(b,default) = the full \
             registry).  $(b,demo-broken) is a deliberately failing oracle \
             for exercising the counterexample path.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the machine-readable report (counterexamples included) to \
             $(i,FILE); $(b,-) writes it to stdout.")
  in
  let max_failures_arg =
    Arg.(
      value
      & opt int 5
      & info [ "max-failures" ] ~docv:"N"
          ~doc:"Keep (and shrink) at most $(i,N) counterexamples.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Suppress the human-readable summary.")
  in
  let parse_arg =
    Arg.(
      value & opt_all string []
      & info [ "parse" ] ~docv:"FILE"
          ~doc:
            "Parse and elaborate the DSL source in $(i,FILE) and print a \
             one-line structural summary instead of running the random \
             certification; a diagnostic exits with code 2.  Repeatable.")
  in
  let run count seed props json max_failures quiet parse_files budget_spec =
    if parse_files <> [] then
      run_checked @@ fun () ->
      List.fold_left
        (fun acc file ->
          let* () = acc in
          let* src = Front.parse_file file in
          Ok (Printf.printf "%s: %s\n" file (Driver.describe src)))
        (Ok ()) parse_files
    else
    let code = ref 0 in
    let rc =
      run_checked @@ fun () ->
      let* () =
        if count < 1 then
          Error
            (Engine_error.Invalid_input
               (Printf.sprintf "--count must be >= 1, got %d" count))
        else Ok ()
      in
      let* props =
        match Iolb_check.Oracle.find props with
        | Ok ps -> Ok ps
        | Error msg -> Error (Engine_error.Invalid_input msg)
      in
      (* Validate the budget flags once, then mint a fresh budget per
         (spec, property) evaluation: budgets are stateful counters, and
         per-evaluation minting is what makes a budget kill degrade one
         check instead of aborting the whole run. *)
      let* _validated = make_budget budget_spec in
      let timeout_ms, max_steps, max_nodes = budget_spec in
      let budget () = Budget.make ?timeout_ms ?max_steps ?max_nodes () in
      let report =
        Iolb_check.Check.run ~budget ~max_failures ~count ~seed ~props ()
      in
      if not quiet then Format.printf "%a@." Iolb_check.Check.pp report;
      (match json with
      | Some "-" ->
          print_string
            (Iolb_util.Json.to_string_pretty (Iolb_check.Check.to_json report))
      | Some file ->
          let oc = open_out file in
          output_string oc
            (Iolb_util.Json.to_string_pretty (Iolb_check.Check.to_json report));
          close_out oc;
          if not quiet then Printf.printf "wrote %s\n" file
      | None -> ());
      if not (Iolb_check.Check.ok report) then code := 1;
      Ok ()
    in
    if rc <> 0 then rc else !code
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"when a property found a counterexample."
    :: engine_exits
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Certify the derivation pipeline on random programs (differential \
          and metamorphic oracles, with shrinking)"
       ~exits)
    Term.(
      const run $ count_arg $ seed_arg $ props_arg $ json_arg
      $ max_failures_arg $ quiet_arg $ parse_arg $ budget_args)

let print_cmd =
  let run name =
    run_checked @@ fun () ->
    (* Emitting then re-parsing a built-in is the round-trip identity the
       shipped examples/kernels/*.iolb files are generated from. *)
    match Report.find_checked name with
    | Ok entry ->
        Ok
          (print_string
             (Front.print ~verify:entry.Report.verify_params
                entry.Report.program))
    | Error e -> (
        match List.find_opt (fun (n, _, _) -> n = name) Report.baselines with
        | Some (_, program, verify) ->
            Ok (print_string (Front.print ~verify program))
        | None -> Error e)
  in
  Cmd.v
    (Cmd.info "print"
       ~doc:
         "Emit the DSL source of a built-in kernel (re-parses to the \
          identical program)"
       ~exits:engine_exits)
    Term.(const run $ kernel_arg)

(* ------------------------------------------------------------------ *)
(* Bound service: `iolb serve` and its line client.                    *)

module Server = Iolb_serve.Server
module Sclient = Iolb_serve.Client
module Protocol = Iolb_serve.Protocol
module Json = Iolb_util.Json

let address_args =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Serve on (or connect to) a Unix-domain socket at $(i,PATH).")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Serve on (or connect to) a TCP endpoint.")
  in
  let pair s t = (s, t) in
  Term.(const pair $ socket_arg $ tcp_arg)

let parse_address (socket, tcp) =
  match (socket, tcp) with
  | Some path, None -> Ok (Server.Unix_sock path)
  | None, Some spec -> (
      match String.rindex_opt spec ':' with
      | Some i -> (
          let host = String.sub spec 0 i in
          let port = String.sub spec (i + 1) (String.length spec - i - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && host <> "" -> Ok (Server.Tcp (host, p))
          | _ ->
              Error
                (Engine_error.Invalid_input
                   (Printf.sprintf "--tcp expects HOST:PORT, got %S" spec)))
      | None ->
          Error
            (Engine_error.Invalid_input
               (Printf.sprintf "--tcp expects HOST:PORT, got %S" spec)))
  | Some _, Some _ ->
      Error (Engine_error.Invalid_input "--socket and --tcp are exclusive")
  | None, None ->
      Error (Engine_error.Invalid_input "need --socket PATH or --tcp HOST:PORT")

let serve_cmd =
  let pos_int_opt name default doc =
    Arg.(value & opt int default & info [ name ] ~docv:"N" ~doc)
  in
  let queue_cap_arg =
    pos_int_opt "queue-cap" 64
      "Bounded request-queue capacity: beyond it the server sheds load with \
       a typed $(b,overloaded) response instead of queueing without limit."
  in
  let cache_cap_arg =
    pos_int_opt "cache-cap" 128
      "Content-addressed LRU response-cache entries (0 disables caching)."
  in
  let max_conns_arg =
    pos_int_opt "max-conns" 32
      "Concurrent connections admitted; excess peers get one \
       $(b,overloaded) line and are closed."
  in
  let retry_after_arg =
    pos_int_opt "retry-after-ms" 100
      "Back-off hint carried by $(b,overloaded) responses."
  in
  let default_timeout_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "default-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock deadline applied to requests that do not carry \
             their own $(b,timeout_ms).")
  in
  let allow_crash_arg =
    Arg.(
      value & flag
      & info [ "allow-crash" ]
          ~doc:
            "Honour the $(b,crash) op (kills and respawns a worker domain); \
             for fault-injection testing only.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the stderr log.")
  in
  let run addr_spec jobs queue_cap cache_cap max_conns retry_after
      default_timeout_ms allow_crash quiet =
    run_checked @@ fun () ->
    let* address = parse_address addr_spec in
    let* () =
      match jobs with
      | Some j when j < 1 ->
          Error
            (Engine_error.Invalid_input
               (Printf.sprintf "--jobs must be >= 1, got %d" j))
      | _ -> Ok ()
    in
    let* () =
      if queue_cap < 1 || cache_cap < 0 || max_conns < 1 || retry_after < 0
      then
        Error
          (Engine_error.Invalid_input
             "need --queue-cap >= 1, --cache-cap >= 0, --max-conns >= 1, \
              --retry-after-ms >= 0")
      else Ok ()
    in
    let jobs =
      match jobs with Some j -> j | None -> Iolb_util.Pool.default_jobs ()
    in
    let config =
      {
        Server.address;
        jobs;
        queue_capacity = queue_cap;
        cache_capacity = cache_cap;
        max_connections = max_conns;
        retry_after_ms = retry_after;
        default_timeout_ms;
        allow_crash;
        log =
          (if quiet then ignore
           else fun msg -> Printf.eprintf "iolb-serve: %s\n%!" msg);
      }
    in
    Engine_error.guard @@ fun () ->
    let t = Server.start config in
    let stop_on_signal _ = Server.stop t in
    (try
       Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on_signal);
       Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on_signal)
     with Invalid_argument _ -> ());
    Server.join t
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the bound service: a crash-tolerant daemon answering \
          newline-delimited JSON derivation requests over a socket"
       ~exits:engine_exits)
    Term.(
      const run $ address_args $ jobs_arg $ queue_cap_arg $ cache_cap_arg
      $ max_conns_arg $ retry_after_arg $ default_timeout_arg
      $ allow_crash_arg $ quiet_arg)

let client_cmd =
  let op_arg =
    let doc =
      "Operation: $(b,ping), $(b,list), $(b,stats), $(b,shutdown), \
       $(b,analyze), $(b,eval), $(b,source) (analyse the DSL file named by \
       $(i,ARG)), $(b,crash), or $(b,raw) (send $(i,ARG) as a verbatim \
       request line)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP" ~doc)
  in
  let arg_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"ARG"
          ~doc:
            "Kernel name (analyze/eval), DSL file path (source), or raw \
             request line (raw).")
  in
  let fault_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"STAGE:K"
          ~doc:
            "Budget fault-injection hook forwarded with the request, e.g. \
             $(b,derivation:2) (stages: poly_projection, cdag_build, \
             pebble_game, cache_sim, derivation).")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 50
      & info [ "connect-retries" ] ~docv:"N"
          ~doc:
            "Connection attempts (100 ms apart) before giving up; covers \
             daemons still binding their socket.")
  in
  let budget_fields (timeout_ms, max_steps, max_nodes) fault =
    let opt name v =
      match v with Some i -> [ (name, Json.Int i) ] | None -> []
    in
    let fault_field =
      match fault with
      | None -> []
      | Some (stage, k) ->
          [
            ( "fault",
              Json.Obj
                [
                  ("stage", Json.String (Protocol.wire_of_stage stage));
                  ("k", Json.Int k);
                ] );
          ]
    in
    opt "timeout_ms" timeout_ms
    @ opt "max_steps" max_steps
    @ opt "max_nodes" max_nodes
    @ fault_field
  in
  let parse_fault = function
    | None -> Ok None
    | Some spec -> (
        match String.index_opt spec ':' with
        | Some i -> (
            let stage = String.sub spec 0 i in
            let k = String.sub spec (i + 1) (String.length spec - i - 1) in
            match (Protocol.stage_of_wire stage, int_of_string_opt k) with
            | Some stage, Some k when k >= 1 -> Ok (Some (stage, k))
            | _ ->
                Error
                  (Engine_error.Invalid_input
                     (Printf.sprintf "--fault expects STAGE:K, got %S" spec)))
        | None ->
            Error
              (Engine_error.Invalid_input
                 (Printf.sprintf "--fault expects STAGE:K, got %S" spec)))
  in
  let run addr_spec op arg m n s budget_spec fault retries =
    let code = ref 0 in
    let rc =
      run_checked @@ fun () ->
      let* address = parse_address addr_spec in
      let* fault = parse_fault fault in
      let* line =
        let fields = budget_fields budget_spec fault in
        let kernel_fields () =
          match arg with
          | Some k -> Ok (("kernel", Json.String k) :: fields)
          | None ->
              Error
                (Engine_error.Invalid_input
                   (Printf.sprintf "%s needs a kernel argument" op))
        in
        let simple name =
          Ok
            (Json.to_string
               (Json.Obj [ ("id", Json.Null); ("op", Json.String name) ]))
        in
        match op with
        | "ping" | "list" | "stats" | "shutdown" | "crash" -> simple op
        | "analyze" ->
            let* fs = kernel_fields () in
            Ok
              (Json.to_string
                 (Json.Obj
                    (("id", Json.Null) :: ("op", Json.String "analyze") :: fs)))
        | "eval" ->
            let* fs = kernel_fields () in
            Ok
              (Json.to_string
                 (Json.Obj
                    (("id", Json.Null)
                    :: ("op", Json.String "eval")
                    :: ("m", Json.Int m) :: ("n", Json.Int n)
                    :: ("s", Json.Int s) :: fs)))
        | "source" -> (
            (* The file is read client-side; the service never touches the
               filesystem.  Json.escape keeps the multi-line source on one
               wire line. *)
            match arg with
            | None ->
                Error
                  (Engine_error.Invalid_input "source needs a DSL file path")
            | Some path -> (
                match
                  let ic = open_in_bin path in
                  Fun.protect
                    ~finally:(fun () -> close_in_noerr ic)
                    (fun () ->
                      really_input_string ic (in_channel_length ic))
                with
                | exception Sys_error msg ->
                    Error
                      (Engine_error.Invalid_input
                         (Printf.sprintf "cannot read %s: %s" path msg))
                | src ->
                    Ok
                      (Json.to_string
                         (Json.Obj
                            (("id", Json.Null)
                            :: ("op", Json.String "source")
                            :: ("src", Json.String src)
                            :: fields)))))
        | "raw" -> (
            match arg with
            | Some l -> Ok l
            | None ->
                Error
                  (Engine_error.Invalid_input "raw needs the request line"))
        | other ->
            Error
              (Engine_error.Invalid_input
                 (Printf.sprintf
                    "unknown client op %S (ping, list, stats, shutdown, \
                     analyze, eval, source, crash, raw)"
                    other))
      in
      let* client =
        Engine_error.guard (fun () ->
            Sclient.connect ~attempts:(max 1 retries) ~delay_s:0.1 address)
      in
      Fun.protect
        ~finally:(fun () -> Sclient.close client)
        (fun () ->
          Sclient.send_line client line;
          match Sclient.recv_line client with
          | None ->
              Error
                (Engine_error.Internal
                   "connection closed before a response arrived")
          | Some response -> (
              print_endline response;
              match Protocol.parse_response response with
              | Ok r ->
                  code := r.Protocol.exit_code;
                  Ok ()
              | Error msg -> Error (Engine_error.Internal msg)))
    in
    if rc <> 0 then rc else !code
  in
  let exits =
    Cmd.Exit.info 6 ~doc:"when the server shed the request (overloaded)."
    :: engine_exits
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running bound service and print the \
          response line (exit code mirrors the wire error code)"
       ~exits)
    Term.(
      const run $ address_args $ op_arg $ arg_arg $ m_arg $ n_arg $ s_arg
      $ budget_args $ fault_arg $ retries_arg)

let dot_cmd =
  let out_arg =
    Arg.(
      value
      & opt string "cdag.dot"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output DOT file.")
  in
  let run name m n out =
    run_checked @@ fun () ->
    let* entry = Report.find_checked name in
    let* params = Report.concrete_params entry ~m ~n in
    let* cdag = Cdag.of_program_checked ~params entry.Report.program in
    Iolb_cdag.Dot.to_file out cdag;
    Printf.printf "wrote %s (%d nodes)\n" out (Cdag.n_nodes cdag);
    Ok ()
  in
  let small_m = Arg.(value & opt int 6 & info [ "m" ] ~docv:"M" ~doc:"Rows M.") in
  let small_n =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Columns N.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a small concrete CDAG to Graphviz"
       ~exits:engine_exits)
    Term.(const run $ kernel_arg $ small_m $ small_n $ out_arg)

let () =
  let doc = "Automatic I/O lower bounds via the hourglass dependency pattern" in
  let info = Cmd.info "iolb" ~version:"1.0.0" ~doc ~exits:engine_exits in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            analyze_cmd;
            bounds_cmd;
            print_cmd;
            eval_cmd;
            simulate_cmd;
            tile_cmd;
            check_cmd;
            serve_cmd;
            client_cmd;
            dot_cmd;
          ]))
