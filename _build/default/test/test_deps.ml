(* Symbolic may-dependence relations, cross-validated against the exact
   CDAG dataflow: every CDAG edge must belong to some may-relation of the
   corresponding (writer, reader, array) triple. *)

module Deps = Iolb_ir.Deps
module Program = Iolb_ir.Program
module Cdag = Iolb_cdag.Cdag
module K = Iolb_kernels

let test_mgs_su_sr_relation () =
  (* SU[k,j,i] writes A[i][j]; SR[k',j',i'] reads A[i'][j']: the relation
     pins i' = i, j' = j and leaves k, k' free within their domains. *)
  let rels = Deps.between K.Mgs.spec ~writer:"SU" ~reader:"SR" in
  Alcotest.(check int) "one A-relation" 1 (List.length rels);
  let d = List.hd rels in
  let params = [ ("M", 3); ("N", 3) ] in
  Alcotest.(check bool) "non-empty" true (Deps.may_depend ~params d);
  List.iter
    (fun (src, dst) ->
      (* src = (k, j, i) renamed; dst = (k', j', i'); same cell. *)
      Alcotest.(check int) "same i" src.(2) dst.(2);
      Alcotest.(check int) "same j" src.(1) dst.(1))
    (Deps.instance_pairs ~params d)

let test_relations_cover_cdag_edges () =
  List.iter
    (fun (prog, params) ->
      let cdag = Cdag.of_program ~params prog in
      let rels = Deps.relations prog in
      (* Index the concrete relation pairs per (writer, reader). *)
      let table = Hashtbl.create 64 in
      List.iter
        (fun (d : Deps.t) ->
          List.iter
            (fun (src, dst) ->
              Hashtbl.replace table (d.writer, src, d.reader, dst) ())
            (Deps.instance_pairs ~params d))
        rels;
      (* Every compute-to-compute CDAG edge must be a may-dependence. *)
      let missing = ref 0 and total = ref 0 in
      for id = 0 to Cdag.n_nodes cdag - 1 do
        match Cdag.kind cdag id with
        | Cdag.Compute (rname, rvec) ->
            Array.iter
              (fun p ->
                match Cdag.kind cdag p with
                | Cdag.Compute (wname, wvec) ->
                    incr total;
                    if not (Hashtbl.mem table (wname, wvec, rname, rvec)) then
                      incr missing
                | Cdag.Input _ -> ())
              (Cdag.preds cdag id)
        | Cdag.Input _ -> ()
      done;
      Alcotest.(check int)
        (Printf.sprintf "%s: all %d edges covered" prog.Program.name !total)
        0 !missing)
    [
      (K.Mgs.spec, [ ("M", 4); ("N", 3) ]);
      (K.Householder.a2v_spec, [ ("M", 5); ("N", 3) ]);
      (K.Lu.spec, [ ("N", 4) ]);
      (K.Gemm.spec, [ ("M", 2); ("N", 3); ("K", 2) ]);
    ]

let test_no_spurious_array_pairs () =
  (* Statements that touch no common array have no relation. *)
  Alcotest.(check int) "Sq never writes what Snrm reads... (R vs nrm)" 0
    (List.length (Deps.between K.Mgs.spec ~writer:"Sq" ~reader:"Snrm"))

let suite =
  [
    Alcotest.test_case "mgs SU->SR relation" `Quick test_mgs_su_sr_relation;
    Alcotest.test_case "relations cover all CDAG edges" `Quick
      test_relations_cover_cdag_edges;
    Alcotest.test_case "no spurious pairs" `Quick test_no_spurious_array_pairs;
  ]
