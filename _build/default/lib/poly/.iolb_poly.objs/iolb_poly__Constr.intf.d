lib/poly/constr.mli: Affine Format
