(* One-step structural reductions, per family.  Every move shrinks one
   field towards its floor; [Spec.normalize] then re-establishes the
   cross-field invariants (list lengths, arity caps, triangular/neutral
   coupling), and moves that did not actually reduce [Spec.size] are
   filtered out, which is what guarantees termination of the greedy
   descent. *)

let nest_moves (n : Spec.nest) =
  let set_size i v = List.mapi (fun j s -> if i = j then v else s) n.sizes in
  let set_tri i = List.mapi (fun j t -> if i = j then false else t) n.triangular in
  List.concat
    [
      (if n.depth > 1 then [ Spec.Nest { n with depth = n.depth - 1 } ] else []);
      List.concat
        (List.mapi
           (fun i s -> if s > 1 then [ Spec.Nest { n with sizes = set_size i (s - 1) } ] else [])
           n.sizes);
      List.concat
        (List.mapi
           (fun i t -> if t then [ Spec.Nest { n with triangular = set_tri i } ] else [])
           n.triangular);
      (match n.param_n with
      | None -> []
      | Some 1 -> [ Spec.Nest { n with param_n = None } ]
      | Some v ->
          [
            Spec.Nest { n with param_n = None };
            Spec.Nest { n with param_n = Some (v - 1) };
          ]);
      (if n.n_stmts > 1 then [ Spec.Nest { n with n_stmts = n.n_stmts - 1 } ] else []);
      (if n.write_arity > 1 then
         [ Spec.Nest { n with write_arity = n.write_arity - 1 } ]
       else []);
      (match n.read_shifts with
      | [] -> []
      | _ :: tl -> [ Spec.Nest { n with read_shifts = tl } ]);
      List.concat
        (List.mapi
           (fun i s ->
             if s = 0 then []
             else
               [
                 Spec.Nest
                   {
                     n with
                     read_shifts =
                       List.mapi
                         (fun j x -> if i = j then 0 else x)
                         n.read_shifts;
                   };
               ])
           n.read_shifts);
      (if n.self_read then [ Spec.Nest { n with self_read = false } ] else []);
      (if n.consumer then [ Spec.Nest { n with consumer = false } ] else []);
      (if n.shallow then [ Spec.Nest { n with shallow = false } ] else []);
    ]

let hourglass_moves (h : Spec.hourglass) =
  List.concat
    [
      (if h.m > 2 then [ Spec.Hourglass { h with m = h.m - 1 } ] else []);
      (if h.temporal_trip > 2 then
         [ Spec.Hourglass { h with temporal_trip = h.temporal_trip - 1 } ]
       else []);
      (if h.neutral then [ Spec.Hourglass { h with neutral = false } ] else []);
      (if h.neutral && h.neutral_trip > 1 then
         [ Spec.Hourglass { h with neutral_trip = h.neutral_trip - 1 } ]
       else []);
      (if h.triangular then [ Spec.Hourglass { h with triangular = false } ]
       else []);
      (if h.q_read then [ Spec.Hourglass { h with q_read = false } ] else []);
      (if h.flat_reads > 0 then
         [ Spec.Hourglass { h with flat_reads = h.flat_reads - 1 } ]
       else []);
      (if h.init_stmt then [ Spec.Hourglass { h with init_stmt = false } ]
       else []);
    ]

let candidates spec =
  let spec = Spec.normalize spec in
  let raw =
    match spec with
    | Spec.Nest n -> nest_moves n
    | Spec.Hourglass h -> hourglass_moves h
  in
  let smaller =
    List.filter
      (fun c -> Spec.size c < Spec.size spec)
      (List.map Spec.normalize raw)
  in
  List.fold_left
    (fun acc c -> if List.exists (Spec.equal c) acc then acc else c :: acc)
    [] smaller
  |> List.rev

let minimize ?(max_steps = 200) ~fails spec =
  let rec go spec steps =
    if steps >= max_steps then (spec, steps)
    else
      match List.find_opt fails (candidates spec) with
      | None -> (spec, steps)
      | Some smaller -> go smaller (steps + 1)
  in
  go (Spec.normalize spec) 0
