test/test_lemma_empirical.ml: Alcotest Array Iolb Iolb_cdag Iolb_symbolic Iolb_util List Printf Random
