lib/pebble/game.ml: Array Hashtbl Iolb_cdag Iolb_util List Printf Random
