module Budget = Iolb_util.Budget

type t = { dims : string list; cons : Constr.t list }

let make ~dims cons = { dims; cons }
let dims s = s.dims
let constraints s = s.cons

let intersect a b =
  if a.dims <> b.dims then invalid_arg "Iset.intersect: dimension mismatch";
  { a with cons = a.cons @ b.cons }

let add_constraints cs s = { s with cons = cs @ s.cons }

let specialize params s =
  let env x = if List.mem x s.dims then None else List.assoc_opt x params in
  { s with cons = List.map (Constr.specialize env) s.cons }

let mem ~params s point =
  let env x =
    match List.assoc_opt x params with
    | Some v -> v
    | None -> (
        match List.find_index (String.equal x) s.dims with
        | Some i -> point.(i)
        | None -> raise Not_found)
  in
  List.for_all (Constr.satisfied env) s.cons

(* Fourier-Motzkin elimination of [x].  Equalities with a unit coefficient
   on [x] are used as substitutions; other equalities are split into two
   inequalities first. *)
let fm_eliminate ?(budget = Budget.unlimited) x cons =
  let cons =
    List.concat_map
      (fun (c : Constr.t) ->
        match c.kind with
        | Constr.Ge -> [ c ]
        | Constr.Eq ->
            let cx = Affine.coeff x c.expr in
            if cx = 1 || cx = -1 then [ c ]
            else [ Constr.ge c.expr; Constr.ge (Affine.neg c.expr) ])
      cons
  in
  (* Prefer an exact substitution when an equality pins [x]. *)
  let subst_eq =
    List.find_opt
      (fun (c : Constr.t) ->
        c.kind = Constr.Eq && abs (Affine.coeff x c.expr) = 1)
      cons
  in
  match subst_eq with
  | Some c ->
      (* c.expr = 0 with coeff +-1 on x gives x = value. *)
      let cx = Affine.coeff x c.expr in
      let rest = Affine.sub c.expr (Affine.term cx x) in
      let value = Affine.scale (-cx) rest in
      List.filter_map
        (fun (c' : Constr.t) ->
          if c' == c then None
          else
            let e = Affine.subst x value c'.expr in
            match Constr.is_trivial { c' with expr = e } with
            | Some true -> None
            | _ -> Some { c' with expr = e })
        cons
  | None ->
      let lowers, uppers, rest =
        List.fold_left
          (fun (lo, up, rest) (c : Constr.t) ->
            let cx = Affine.coeff x c.expr in
            if cx > 0 then (c :: lo, up, rest)
            else if cx < 0 then (lo, c :: up, rest)
            else (lo, up, c :: rest))
          ([], [], []) cons
      in
      let combined =
        List.concat_map
          (fun (l : Constr.t) ->
            let cl = Affine.coeff x l.expr in
            List.filter_map
              (fun (u : Constr.t) ->
                Budget.checkpoint budget Budget.Poly_projection;
                let cu = Affine.coeff x u.expr in
                (* cl > 0 > cu: (-cu) * l + cl * u eliminates x. *)
                let e =
                  Affine.add (Affine.scale (-cu) l.expr) (Affine.scale cl u.expr)
                in
                match Constr.is_trivial (Constr.ge e) with
                | Some true -> None
                | _ -> Some (Constr.ge e))
              uppers)
          lowers
      in
      List.sort_uniq Constr.compare (combined @ List.rev rest)

let project ?(budget = Budget.unlimited) ~onto s =
  let to_remove = List.filter (fun d -> not (List.mem d onto)) s.dims in
  let cons =
    List.fold_left (fun cs d -> fm_eliminate ~budget d cs) s.cons to_remove
  in
  { dims = onto; cons }

(* Integer bounds of variable [x] in a constraint system where all other
   dimensions have been eliminated or fixed: scan for lower/upper bounds. *)
let var_bounds x cons =
  (* Treat e = 0 as e >= 0 and -e >= 0. *)
  let ineqs =
    List.concat_map
      (fun (c : Constr.t) ->
        match c.kind with
        | Constr.Ge -> [ c.expr ]
        | Constr.Eq -> [ c.expr; Affine.neg c.expr ])
      cons
  in
  let ceil_div q d = if q >= 0 then (q + d - 1) / d else -(-q / d) in
  let floor_div q d = if q >= 0 then q / d else -(ceil_div (-q) d) in
  List.fold_left
    (fun (lo, up) e ->
      let cx = Affine.coeff x e in
      if cx = 0 then (lo, up)
      else
        let rest = Affine.sub e (Affine.term cx x) in
        match Affine.is_constant rest with
        | None -> (lo, up) (* still involves symbols: ignore, checked later *)
        | Some r ->
            if cx > 0 then
              (* cx * x + r >= 0  =>  x >= ceil(-r / cx) *)
              let b = ceil_div (-r) cx in
              ((match lo with None -> Some b | Some l -> Some (max l b)), up)
            else
              (* cx * x + r >= 0, cx < 0  =>  x <= floor(r / -cx) *)
              let b = floor_div r (-cx) in
              (lo, match up with None -> Some b | Some u -> Some (min u b)))
    (None, None) ineqs

let enumerate ?(budget = Budget.unlimited) ~params s =
  let s = specialize params s in
  let n = List.length s.dims in
  let dims = Array.of_list s.dims in
  (* levels.(k) = constraints implied by s.cons involving only dims 0..k. *)
  let levels = Array.make n s.cons in
  let rec eliminate k cons =
    if k < 0 then ()
    else begin
      levels.(k) <- cons;
      if k > 0 then eliminate (k - 1) (fm_eliminate ~budget dims.(k) cons)
    end
  in
  if n > 0 then eliminate (n - 1) s.cons;
  let out = ref [] in
  let count = ref 0 in
  let point = Array.make n 0 in
  let rec fill k =
    if k = n then begin
      Budget.checkpoint budget Budget.Poly_projection;
      if mem ~params s point then begin
        incr count;
        Budget.check_node_cap budget Budget.Poly_projection !count;
        out := Array.copy point :: !out
      end
    end
    else begin
      let env x =
        match List.find_index (String.equal x) s.dims with
        | Some i when i < k -> Some point.(i)
        | _ -> None
      in
      let cons_k = List.map (Constr.specialize env) levels.(k) in
      match var_bounds dims.(k) cons_k with
      | Some lo, Some up ->
          for v = lo to up do
            point.(k) <- v;
            fill (k + 1)
          done
      | _ ->
          invalid_arg
            (Printf.sprintf "Iset.enumerate: dimension %s is unbounded"
               dims.(k))
    end
  in
  if n = 0 then (if mem ~params s [||] then [ [||] ] else [])
  else begin
    (match
       List.find_map
         (fun (c : Constr.t) ->
           match Constr.is_trivial c with Some false -> Some () | _ -> None)
         levels.(0)
     with
    | Some () -> ()
    | None -> fill 0);
    List.rev !out
  end

let cardinal ?budget ~params s = List.length (enumerate ?budget ~params s)
let is_empty ?budget ~params s = enumerate ?budget ~params s = []

let bounds_of_dim ?(budget = Budget.unlimited) ~params s x =
  let s = specialize params s in
  let others = List.filter (fun d -> d <> x) s.dims in
  let cons =
    List.fold_left (fun cs d -> fm_eliminate ~budget d cs) s.cons others
  in
  var_bounds x cons

let pp fmt s =
  Format.fprintf fmt "{ [%a] : %a }"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Format.pp_print_string)
    s.dims
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " and ")
       Constr.pp)
    s.cons
