(** Exact rational linear programming by the two-phase simplex method.

    Variables are indexed [0 .. nvars-1] and implicitly constrained to be
    non-negative.  Bland's anti-cycling rule guarantees termination.  All
    arithmetic is exact ({!Iolb_util.Rat}), which matters here: the
    Brascamp-Lieb exponents are small rationals (like 1/2 or 1/3) and the
    derived I/O bounds change qualitatively if they are off by any epsilon. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : Iolb_util.Rat.t array;  (** length [nvars] *)
  rel : relation;
  rhs : Iolb_util.Rat.t;
}

type objective = Minimize | Maximize

type outcome =
  | Optimal of { value : Iolb_util.Rat.t; solution : Iolb_util.Rat.t array }
  | Unbounded
  | Infeasible

(** The underlying dense exact-rational tableau, exposed so other solvers
    over the same machinery ({!Psimplex}'s parametric-objective sweep) can
    reuse setup, pivoting, and pricing instead of duplicating them.  All
    operations may raise {!Iolb_util.Rat.Overflow}. *)
module Tableau : sig
  type t = private {
    m : int;  (** number of rows *)
    ncols : int;  (** structural + slack + artificial columns *)
    nvars : int;  (** structural columns *)
    art_start : int;  (** first artificial column *)
    tn : int array;
    td : int array;  (** entry (i,j) = tn/td at [i * ncols + j] *)
    rhsn : int array;
    rhsd : int array;
    objn : int array;
    objd : int array;  (** reduced-cost row *)
    mutable ovn : int;
    mutable ovd : int;  (** negated objective value, canonical *)
    basis : int array;  (** basis.(i) = column basic in row i *)
  }

  (** Build the tableau for [constraints] over [nvars] non-negative
      structural variables: slack/artificial columns added, rows
      normalised to non-negative rhs, and the phase-1 objective (sum of
      artificials) installed and priced out.
      @raise Invalid_argument on inconsistent dimensions. *)
  val setup : nvars:int -> constr list -> t

  (** Run phase 1 to optimality.  [false] means the constraints are
      infeasible.  On success, basic artificials are driven out where
      possible; phase-2 callers must keep artificials from re-entering by
      restricting entering columns to [j < art_start]. *)
  val phase1_feasible : t -> bool

  (** Install [cost] (length [nvars]) as the tableau objective, reduced
      with respect to the current basis. *)
  val install_cost : t -> cost:Iolb_util.Rat.t array -> unit

  (** The reduced-cost row of [cost] w.r.t. the current basis, as
      canonical num/den arrays of length [ncols], plus the matching
      (negated) objective-value pair.  Does not modify the tableau. *)
  val reduce_cost_row :
    t -> cost:Iolb_util.Rat.t array -> int array * int array * (int * int)

  (** Pivot on (row, col): normalise the pivot row, eliminate the column
      from all other rows, the objective row, and the rhs; update the
      basis. *)
  val pivot : t -> row:int -> col:int -> unit

  (** After [pivot t ~row ~col], eliminate the pivot column from a
      caller-held auxiliary cost row [an]/[ad] (length [ncols]) with
      value pair [(vn, vd)], exactly as [pivot] did for the built-in
      objective row; returns the updated value pair. *)
  val eliminate :
    t -> row:int -> col:int -> int array -> int array -> int -> int ->
    int * int

  (** Lexicographic min-ratio test for entering column [col]: the row
      with the smallest rhs/entry ratio among positive entries, ties
      broken towards the lowest basic index.  [None] = unbounded ray. *)
  val choose_leaving : t -> col:int -> int option

  (** Bland's rule to optimality over the columns satisfying [allowed]. *)
  val optimise : t -> allowed:(int -> bool) -> (unit, [ `Unbounded ]) result

  (** Objective value to be minimised (negates the stored pair). *)
  val value : t -> Iolb_util.Rat.t

  (** Structural-variable values under the current basis. *)
  val solution : t -> Iolb_util.Rat.t array
end

(** [solve ~objective ~cost constraints] optimises [cost . x] over
    [{ x >= 0 | every constraint holds }].
    @raise Invalid_argument on inconsistent dimensions. *)
val solve :
  objective:objective -> cost:Iolb_util.Rat.t array -> constr list -> outcome

(** Convenience: [minimize ~cost constraints] = [solve ~objective:Minimize]. *)
val minimize : cost:Iolb_util.Rat.t array -> constr list -> outcome

val maximize : cost:Iolb_util.Rat.t array -> constr list -> outcome

(** [constr coeffs rel rhs] with integer data, for readable call sites. *)
val constr : int list -> relation -> int -> constr

val pp_outcome : Format.formatter -> outcome -> unit
