(* Exact simplex: hand-checked LPs, infeasibility/unboundedness detection,
   and optimality cross-checked against brute-force vertex enumeration on
   random small instances. *)

module S = Iolb_lp.Simplex
module Rat = Iolb_util.Rat

let check_optimal name expected outcome =
  match outcome with
  | S.Optimal { value; _ } ->
      Alcotest.(check string) name (Rat.to_string expected) (Rat.to_string value)
  | S.Infeasible -> Alcotest.failf "%s: unexpectedly infeasible" name
  | S.Unbounded -> Alcotest.failf "%s: unexpectedly unbounded" name

let test_basic_max () =
  (* max 3x + 2y st x + y <= 4, x + 3y <= 6 -> x=4, y=0, value 12. *)
  let outcome =
    S.maximize
      ~cost:[| Rat.of_int 3; Rat.of_int 2 |]
      [ S.constr [ 1; 1 ] S.Le 4; S.constr [ 1; 3 ] S.Le 6 ]
  in
  check_optimal "max 12" (Rat.of_int 12) outcome

let test_basic_min_with_ge () =
  (* min x + y st x + 2y >= 4, 3x + y >= 6 -> intersection (8/5, 6/5), 14/5. *)
  let outcome =
    S.minimize
      ~cost:[| Rat.one; Rat.one |]
      [ S.constr [ 1; 2 ] S.Ge 4; S.constr [ 3; 1 ] S.Ge 6 ]
  in
  check_optimal "min 14/5" (Rat.make 14 5) outcome

let test_equality () =
  (* min 2x + y st x + y = 3, x <= 1 -> x=0, y=3, value 3. *)
  let outcome =
    S.minimize
      ~cost:[| Rat.of_int 2; Rat.one |]
      [ S.constr [ 1; 1 ] S.Eq 3; S.constr [ 1; 0 ] S.Le 1 ]
  in
  check_optimal "min 3" (Rat.of_int 3) outcome;
  (* max 2x + y under the same constraints -> x=1, y=2, value 4. *)
  let outcome =
    S.maximize
      ~cost:[| Rat.of_int 2; Rat.one |]
      [ S.constr [ 1; 1 ] S.Eq 3; S.constr [ 1; 0 ] S.Le 1 ]
  in
  check_optimal "max 4" (Rat.of_int 4) outcome

let test_infeasible () =
  let outcome =
    S.minimize ~cost:[| Rat.one |]
      [ S.constr [ 1 ] S.Le 1; S.constr [ 1 ] S.Ge 2 ]
  in
  Alcotest.(check bool) "infeasible" true (outcome = S.Infeasible)

let test_unbounded () =
  let outcome = S.maximize ~cost:[| Rat.one |] [ S.constr [ -1 ] S.Le 1 ] in
  Alcotest.(check bool) "unbounded" true (outcome = S.Unbounded)

let test_degenerate () =
  (* Degenerate vertex (multiple constraints active); Bland's rule must not
     cycle.  min -x - y st x <= 1, y <= 1, x + y <= 2. *)
  let outcome =
    S.minimize
      ~cost:[| Rat.minus_one; Rat.minus_one |]
      [ S.constr [ 1; 0 ] S.Le 1; S.constr [ 0; 1 ] S.Le 1; S.constr [ 1; 1 ] S.Le 2 ]
  in
  check_optimal "min -2" (Rat.of_int (-2)) outcome

let test_beale_cycling () =
  (* Beale's classic cycling example: under Dantzig's most-negative rule
     with naive tie-breaking the tableau cycles; Bland's rule must reach
     the optimum -1/20 at x = (1/25, 0, 1, 0). *)
  let c a b = Rat.make a b in
  let outcome =
    S.minimize
      ~cost:[| c (-3) 4; Rat.of_int 150; c (-1) 50; Rat.of_int 6 |]
      [
        S.{ coeffs = [| c 1 4; Rat.of_int (-60); c (-1) 25; Rat.of_int 9 |];
            rel = Le; rhs = Rat.zero };
        S.{ coeffs = [| c 1 2; Rat.of_int (-90); c (-1) 50; Rat.of_int 3 |];
            rel = Le; rhs = Rat.zero };
        S.{ coeffs = [| Rat.zero; Rat.zero; Rat.one; Rat.zero |];
            rel = Le; rhs = Rat.one };
      ]
  in
  (match outcome with
  | S.Optimal { value; solution } ->
      Alcotest.(check string) "Beale optimum" "-1/20" (Rat.to_string value);
      Alcotest.(check string) "x6 at its cap" "1" (Rat.to_string solution.(2))
  | S.Infeasible | S.Unbounded ->
      Alcotest.fail "Beale LP must have a finite optimum");
  (* And the same tableau is fine under maximization (value 0 at the
     origin: all profitable directions are blocked by the <= 0 rows). *)
  match
    S.maximize
      ~cost:[| c (-3) 4; Rat.of_int 150; c (-1) 50; Rat.of_int 6 |]
      [
        S.{ coeffs = [| c 1 4; Rat.of_int (-60); c (-1) 25; Rat.of_int 9 |];
            rel = Le; rhs = Rat.zero };
        S.{ coeffs = [| Rat.zero; Rat.zero; Rat.one; Rat.zero |];
            rel = Le; rhs = Rat.one };
      ]
  with
  | S.Optimal _ | S.Unbounded -> ()
  | S.Infeasible -> Alcotest.fail "origin is feasible"

let test_pp_outcome () =
  let show o = Format.asprintf "%a" S.pp_outcome o in
  Alcotest.(check string) "unbounded" "unbounded" (show S.Unbounded);
  Alcotest.(check string) "infeasible" "infeasible" (show S.Infeasible);
  Alcotest.(check string) "optimal" "optimal 3/2 at (1/2, 1)"
    (show
       (S.Optimal
          {
            value = Rat.make 3 2;
            solution = [| Rat.make 1 2; Rat.one |];
          }))

let test_mgs_bl_lp () =
  (* The Brascamp-Lieb LP for a 3D statement with the three 2D canonical
     projections: min s1+s2+s3 with every dim covered twice -> 3/2. *)
  let cost = [| Rat.one; Rat.one; Rat.one |] in
  let cons =
    [
      (* dim i in {ij}, {ik} *)
      S.constr [ 1; 1; 0 ] S.Ge 1;
      S.constr [ 1; 0; 1 ] S.Ge 1;
      S.constr [ 0; 1; 1 ] S.Ge 1;
      (* pairs *)
      S.constr [ 2; 1; 1 ] S.Ge 2;
      S.constr [ 1; 2; 1 ] S.Ge 2;
      S.constr [ 1; 1; 2 ] S.Ge 2;
      (* full space *)
      S.constr [ 2; 2; 2 ] S.Ge 3;
      S.constr [ 1; 0; 0 ] S.Le 1;
      S.constr [ 0; 1; 0 ] S.Le 1;
      S.constr [ 0; 0; 1 ] S.Le 1;
    ]
  in
  check_optimal "rho = 3/2" (Rat.make 3 2) (S.minimize ~cost cons)

(* Brute-force check on random 2-variable LPs with <=-constraints: the
   optimum over the polytope equals the best over all candidate vertices
   (constraint-pair intersections and axis intersections). *)
let random_lp_test =
  let gen =
    let open QCheck2.Gen in
    let constr = triple (int_range (-4) 4) (int_range (-4) 4) (int_range 0 8) in
    pair
      (pair (int_range (-5) 5) (int_range (-5) 5))
      (list_size (int_range 1 5) constr)
  in
  let feasible cons (x, y) =
    Rat.sign x >= 0 && Rat.sign y >= 0
    && List.for_all
         (fun (a, b, c) ->
           Rat.compare
             (Rat.add (Rat.mul (Rat.of_int a) x) (Rat.mul (Rat.of_int b) y))
             (Rat.of_int c)
           <= 0)
         cons
  in
  let vertices cons =
    (* Pairwise intersections of boundary lines, including the axes. *)
    let lines =
      ((1, 0, 0) :: (0, 1, 0) :: List.map (fun (a, b, c) -> (a, b, c)) cons)
      |> List.map (fun (a, b, c) -> (Rat.of_int a, Rat.of_int b, Rat.of_int c))
    in
    let rec pairs = function
      | [] -> []
      | l :: tl -> List.map (fun l' -> (l, l')) tl @ pairs tl
    in
    List.filter_map
      (fun ((a1, b1, c1), (a2, b2, c2)) ->
        let det = Rat.sub (Rat.mul a1 b2) (Rat.mul a2 b1) in
        if Rat.is_zero det then None
        else
          let x = Rat.div (Rat.sub (Rat.mul c1 b2) (Rat.mul c2 b1)) det in
          let y = Rat.div (Rat.sub (Rat.mul a1 c2) (Rat.mul a2 c1)) det in
          Some (x, y))
      (pairs lines)
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"2D simplex matches vertex enumeration" ~count:300
       gen
       (fun ((cx, cy), cons_raw) ->
         let cons =
           List.map (fun (a, b, c) -> S.constr [ a; b ] S.Le c) cons_raw
         in
         let cost = [| Rat.of_int cx; Rat.of_int cy |] in
         match S.maximize ~cost cons with
         | S.Infeasible ->
             (* Origin is always feasible here (rhs >= 0), so never. *)
             false
         | S.Unbounded ->
             (* Accept: hard to cross-check cheaply; covered by other cases. *)
             true
         | S.Optimal { value; _ } ->
             let candidates =
               List.filter (feasible cons_raw) (vertices cons_raw)
             in
             let best =
               List.fold_left
                 (fun acc (x, y) ->
                   let v =
                     Rat.add
                       (Rat.mul (Rat.of_int cx) x)
                       (Rat.mul (Rat.of_int cy) y)
                   in
                   Rat.max acc v)
                 Rat.zero (* origin *) candidates
             in
             Rat.equal value best))

let suite =
  [
    Alcotest.test_case "max with slack" `Quick test_basic_max;
    Alcotest.test_case "min with surplus" `Quick test_basic_min_with_ge;
    Alcotest.test_case "equality constraint" `Quick test_equality;
    Alcotest.test_case "infeasible detected" `Quick test_infeasible;
    Alcotest.test_case "unbounded detected" `Quick test_unbounded;
    Alcotest.test_case "degenerate vertex (Bland)" `Quick test_degenerate;
    Alcotest.test_case "Beale cycling example terminates" `Quick
      test_beale_cycling;
    Alcotest.test_case "pp_outcome" `Quick test_pp_outcome;
    Alcotest.test_case "Brascamp-Lieb LP of a 3D kernel" `Quick test_mgs_bl_lp;
    random_lp_test;
  ]
