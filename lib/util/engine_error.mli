(** Typed errors for the engine's public entry points.

    Instead of leaking [Invalid_argument], [Not_found], or an uncaught
    [Budget.Exhausted] to callers, result-returning entry points
    ([Derive.analyze_ladder], [Report.analyze_checked], the [_checked]
    variants of the simulators, and the CLI) classify every failure into
    one of four constructors with a stable exit-code contract:

    - [Invalid_input]: the request itself is malformed (unknown kernel,
      incompatible sizes, block size not dividing the matrix, ...).
      Retrying without changing the input cannot succeed.  Exit code 2.
    - [Budget_exhausted]: the work or deadline budget ran out in the given
      stage.  Retrying with a larger budget may succeed.  Exit code 3.
    - [Unsupported]: the input is well-formed but outside the engine's
      scope (e.g. no derivable bound of the requested kind).  Exit code 4.
    - [Internal]: an invariant was violated; a bug.  Exit code 5. *)

type t =
  | Budget_exhausted of Budget.stage
  | Invalid_input of string
  | Unsupported of string
  | Internal of string

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Process exit code for the CLI: 2, 3, 4, 5 as documented above
    (0 is success; 124/125 are cmdliner's own CLI-parse errors). *)
val exit_code : t -> int

(** Exception carrier for the raising compatibility entry points; {!guard}
    and {!protect} unwrap it back into the typed error. *)
exception Error of t

val raise_error : t -> 'a

(** Classify an exception: [Budget.Exhausted] to [Budget_exhausted],
    [Invalid_argument]/[Not_found] to [Invalid_input], everything else
    (including [Stack_overflow] and [Out_of_memory]) to [Internal]. *)
val of_exn : exn -> t

(** [guard f] runs [f] and catches any exception into [Error (of_exn e)].
    The no-raise boundary for public entry points. *)
val guard : (unit -> 'a) -> ('a, t) result

(** [protect f] is [guard] for functions that already return a result
    (joins the two error layers). *)
val protect : (unit -> ('a, t) result) -> ('a, t) result
