lib/kernels/matrix.ml: Array Float Format Random
