(** Resource budgets for the derivation engine.

    The engine's hot paths (Fourier-Motzkin projection, CDAG instantiation,
    pebble-game and cache simulation, bound derivation) are potentially
    exponential or memory-hungry on adversarial inputs.  A [Budget.t] turns
    runaway work into a controlled outcome: the hot loops call {!checkpoint}
    at each unit of work, and the checkpoint raises {!Exhausted} once a step
    cap, a wall-clock deadline, or a node cap is hit.  Public entry points
    catch the exception and surface it as a typed {!Engine_error.t}; the
    derivation ladder uses it to fall back to cheaper (weaker) bounds.

    A budget is a mutable, single-use witness of one engine invocation.
    Share one budget across the stages of a pipeline so the caps apply to
    the whole run; create a fresh one per run.  Counters are atomic, so a
    budget may also be shared by the domains of a {!Pool} fan-out: the caps
    then bound the combined work of all workers, and the fault hook fires
    exactly once. *)

(** The instrumented engine stages, in pipeline order. *)
type stage =
  | Poly_projection  (** [Iset] Fourier-Motzkin elimination and enumeration *)
  | Cdag_build  (** [Cdag.of_program] / [Trace.of_program] instantiation *)
  | Pebble_game  (** [Game.run] *)
  | Cache_sim  (** [Cache.opt] / [Cache.lru] *)
  | Derivation  (** hourglass detection/verification and bound derivation *)

val stage_name : stage -> string
val pp_stage : Format.formatter -> stage -> unit

type t

(** Raised by {!checkpoint} (and friends) when the budget is exhausted.
    Reaches the user only as [Engine_error.Budget_exhausted]. *)
exception Exhausted of stage

(** A shared budget with no limits and no fault hook: checkpoints on it
    never raise.  Do not install faults on it. *)
val unlimited : t

(** [make ()] is a fresh budget.
    @param max_steps cap on the total number of checkpoints across stages.
    @param timeout_ms wall-clock deadline, measured from [make].
    @param max_nodes cap on the size of any single instantiated CDAG/trace.
    @param fault fault-injection hook: [(stage, k)] forces {!Exhausted} at
      the [k]-th checkpoint of [stage] (1-based), regardless of the caps.
      Later checkpoints of that stage are unaffected (one-shot), so
      degradation paths can be exercised deterministically. *)
val make :
  ?max_steps:int ->
  ?timeout_ms:int ->
  ?max_nodes:int ->
  ?fault:stage * int ->
  unit ->
  t

(** [checkpoint t stage] accounts one unit of work.  Raises {!Exhausted} if
    the step cap is exceeded, the deadline has passed, or the fault hook
    fires.  Step, node and fault caps are exact; the wall clock is only
    polled once every {!deadline_stride} steps (amortising the
    [gettimeofday] call out of the innermost loops), so deadline detection
    inside a hot loop lags by at most one stride.  Paths that must detect a
    deadline promptly regardless of step count (e.g. between ladder rungs)
    call {!check_deadline} directly.  O(1), safe in innermost loops. *)
val checkpoint : t -> stage -> unit

(** Steps between two wall-clock polls in {!checkpoint} (a power of two). *)
val deadline_stride : int

(** [check_deadline t stage] checks only the wall-clock deadline,
    unconditionally.  Used by last-resort fallback paths that must stay
    cheap but still honour a timeout, and between ladder rungs. *)
val check_deadline : t -> stage -> unit

(** [check_node_cap t stage count] raises {!Exhausted} when [count] exceeds
    the [max_nodes] cap.  [count] is the caller's local structure size (a
    per-structure cap, not a cumulative counter). *)
val check_node_cap : t -> stage -> int -> unit

(** Total checkpoints accounted so far (all stages). *)
val steps : t -> int

(** Checkpoints accounted for one stage (used by the fault-injection
    tests to prove a stage was actually exercised). *)
val stage_steps : t -> stage -> int

val is_unlimited : t -> bool
