lib/core/phi.mli: Format Iolb_ir
