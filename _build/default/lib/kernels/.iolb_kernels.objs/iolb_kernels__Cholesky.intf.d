lib/kernels/cholesky.mli: Iolb_ir Matrix
