(** Triangular solve with multiple right-hand sides: X = L^-1 B for a unit
    or non-unit lower-triangular [n x n] L and an [n x m] B, column by
    column.  Classical-path baseline. *)

val spec : Iolb_ir.Program.t

(** [solve l b] returns X with [l * x = b]; [l] must be lower triangular
    with non-zero diagonal. *)
val solve : Matrix.t -> Matrix.t -> Matrix.t
