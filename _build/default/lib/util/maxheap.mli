(** Binary max-heap of [(priority, payload)] integer pairs, used by the
    Belady-style eviction loops (cache simulator, pebble game) with lazy
    invalidation: callers push fresh entries and skip stale ones on pop. *)

type t

val create : unit -> t
val is_empty : t -> bool
val length : t -> int

(** [push h ~pos ~payload] inserts an entry with priority [pos]. *)
val push : t -> pos:int -> payload:int -> unit

(** [pop h] removes and returns the entry with the largest [pos].
    @raise Not_found on an empty heap. *)
val pop : t -> int * int
