lib/kernels/syr2k.mli: Iolb_ir Matrix
