(** Minimal JSON emission and parsing (no dependencies).

    Used by the benchmark harness to write machine-readable baselines
    ([bench --json]) and to read them back ([bench --compare]) without
    pulling a JSON library into the engine.  Serialisation is
    deterministic: object fields print in the order given, floats use a
    round-trippable ["%.12g"] rendering, and non-finite floats (not
    representable in JSON) serialise as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering. *)
val to_string : t -> string

(** Pretty rendering with two-space indentation and a trailing newline,
    suitable for committed baseline files and readable diffs. *)
val to_string_pretty : t -> string

(** [of_string s] parses a complete JSON document.  Numbers without a
    fractional part or exponent parse as [Int], others as [Float]; [\u]
    escapes decode to UTF-8. *)
val of_string : string -> (t, string) result

(** [member k v] is field [k] of object [v] ([None] on missing fields and
    non-objects). *)
val member : string -> t -> t option
