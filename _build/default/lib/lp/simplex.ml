module Rat = Iolb_util.Rat

type relation = Le | Ge | Eq

type constr = { coeffs : Rat.t array; rel : relation; rhs : Rat.t }
type objective = Minimize | Maximize

type outcome =
  | Optimal of { value : Rat.t; solution : Rat.t array }
  | Unbounded
  | Infeasible

let constr coeffs rel rhs =
  {
    coeffs = Array.of_list (List.map Rat.of_int coeffs);
    rel;
    rhs = Rat.of_int rhs;
  }

(* Dense tableau: [rows] constraint rows over [ncols] structural+slack+
   artificial columns, plus a right-hand side per row, plus an objective row
   of reduced costs.  [basis.(i)] is the column basic in row [i]. *)
type tableau = {
  rows : Rat.t array array; (* m x ncols *)
  rhs : Rat.t array; (* m *)
  obj : Rat.t array; (* ncols, reduced costs *)
  mutable objval : Rat.t; (* current objective value (to be minimised) *)
  basis : int array; (* m *)
}

let pivot t ~row ~col =
  let m = Array.length t.rows and n = Array.length t.obj in
  let piv = t.rows.(row).(col) in
  assert (not (Rat.is_zero piv));
  let inv = Rat.inv piv in
  for j = 0 to n - 1 do
    t.rows.(row).(j) <- Rat.mul t.rows.(row).(j) inv
  done;
  t.rhs.(row) <- Rat.mul t.rhs.(row) inv;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = t.rows.(i).(col) in
      if not (Rat.is_zero f) then begin
        for j = 0 to n - 1 do
          t.rows.(i).(j) <-
            Rat.sub t.rows.(i).(j) (Rat.mul f t.rows.(row).(j))
        done;
        t.rhs.(i) <- Rat.sub t.rhs.(i) (Rat.mul f t.rhs.(row))
      end
    end
  done;
  let f = t.obj.(col) in
  if not (Rat.is_zero f) then begin
    for j = 0 to n - 1 do
      t.obj.(j) <- Rat.sub t.obj.(j) (Rat.mul f t.rows.(row).(j))
    done;
    t.objval <- Rat.sub t.objval (Rat.mul f t.rhs.(row))
  end;
  t.basis.(row) <- col

(* Bland's rule: entering column = lowest-index negative reduced cost among
   allowed columns; leaving row = lexicographic min ratio with lowest basic
   index as tie-break.  Returns [Ok ()] at optimality, [Error `Unbounded]. *)
let optimise t ~allowed =
  let m = Array.length t.rows and n = Array.length t.obj in
  let rec loop () =
    let entering = ref (-1) in
    (let j = ref 0 in
     while !entering < 0 && !j < n do
       if allowed !j && Rat.sign t.obj.(!j) < 0 then entering := !j;
       incr j
     done);
    if !entering < 0 then Ok ()
    else begin
      let col = !entering in
      let leaving = ref (-1) in
      let best = ref Rat.zero in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if Rat.sign a > 0 then begin
          let ratio = Rat.div t.rhs.(i) a in
          if
            !leaving < 0
            || Rat.compare ratio !best < 0
            || (Rat.equal ratio !best && t.basis.(i) < t.basis.(!leaving))
          then begin
            leaving := i;
            best := ratio
          end
        end
      done;
      if !leaving < 0 then Error `Unbounded
      else begin
        pivot t ~row:!leaving ~col;
        loop ()
      end
    end
  in
  loop ()

let solve ~objective ~cost constraints =
  let nvars = Array.length cost in
  List.iter
    (fun c ->
      if Array.length c.coeffs <> nvars then
        invalid_arg "Simplex.solve: constraint dimension mismatch")
    constraints;
  let constraints = Array.of_list constraints in
  let m = Array.length constraints in
  (* Normalise rows to non-negative rhs so artificials start feasible. *)
  let constraints =
    Array.map
      (fun (c : constr) ->
        if Rat.sign c.rhs < 0 then
          {
            coeffs = Array.map Rat.neg c.coeffs;
            rhs = Rat.neg c.rhs;
            rel = (match c.rel with Le -> Ge | Ge -> Le | Eq -> Eq);
          }
        else c)
      constraints
  in
  let n_slack =
    Array.fold_left
      (fun acc c -> match c.rel with Le | Ge -> acc + 1 | Eq -> acc)
      0 constraints
  in
  (* Every Ge and Eq row needs an artificial; Le rows start basic in their
     slack. *)
  let n_art =
    Array.fold_left
      (fun acc c -> match c.rel with Ge | Eq -> acc + 1 | Le -> acc)
      0 constraints
  in
  let ncols = nvars + n_slack + n_art in
  let rows = Array.init m (fun _ -> Array.make ncols Rat.zero) in
  let rhs = Array.make m Rat.zero in
  let basis = Array.make m (-1) in
  let slack_idx = ref nvars in
  let art_idx = ref (nvars + n_slack) in
  Array.iteri
    (fun i c ->
      Array.blit c.coeffs 0 rows.(i) 0 nvars;
      rhs.(i) <- c.rhs;
      (match c.rel with
      | Le ->
          rows.(i).(!slack_idx) <- Rat.one;
          basis.(i) <- !slack_idx;
          incr slack_idx
      | Ge ->
          rows.(i).(!slack_idx) <- Rat.minus_one;
          incr slack_idx;
          rows.(i).(!art_idx) <- Rat.one;
          basis.(i) <- !art_idx;
          incr art_idx
      | Eq ->
          rows.(i).(!art_idx) <- Rat.one;
          basis.(i) <- !art_idx;
          incr art_idx))
    constraints;
  let art_start = nvars + n_slack in
  (* Phase 1: minimise the sum of artificials. *)
  let obj1 = Array.make ncols Rat.zero in
  for j = art_start to ncols - 1 do
    obj1.(j) <- Rat.one
  done;
  let t = { rows; rhs; obj = obj1; objval = Rat.zero; basis } in
  (* Price out the basic artificials from the phase-1 objective row. *)
  for i = 0 to m - 1 do
    if basis.(i) >= art_start then begin
      for j = 0 to ncols - 1 do
        t.obj.(j) <- Rat.sub t.obj.(j) t.rows.(i).(j)
      done;
      t.objval <- Rat.sub t.objval t.rhs.(i)
    end
  done;
  match optimise t ~allowed:(fun _ -> true) with
  | Error `Unbounded ->
      (* Phase-1 objective is bounded below by 0; unreachable. *)
      assert false
  | Ok () ->
      if Rat.sign (Rat.neg t.objval) > 0 then Infeasible
      else begin
        (* Drive any artificial still basic (at zero) out of the basis. *)
        for i = 0 to m - 1 do
          if t.basis.(i) >= art_start then begin
            let j = ref 0 in
            let found = ref false in
            while (not !found) && !j < art_start do
              if not (Rat.is_zero t.rows.(i).(!j)) then begin
                pivot t ~row:i ~col:!j;
                found := true
              end;
              incr j
            done
            (* If no pivot exists the row is all zeros: redundant, and the
               artificial stays basic at value 0, which is harmless as long
               as it is never allowed to re-enter. *)
          end
        done;
        (* Phase 2: install the real objective (reduced w.r.t. the basis). *)
        let sign_cost =
          match objective with Minimize -> cost | Maximize -> Array.map Rat.neg cost
        in
        let obj2 = Array.make ncols Rat.zero in
        Array.blit sign_cost 0 obj2 0 nvars;
        let objval = ref Rat.zero in
        for i = 0 to m - 1 do
          let b = t.basis.(i) in
          let cb = if b < nvars then sign_cost.(b) else Rat.zero in
          if not (Rat.is_zero cb) then begin
            for j = 0 to ncols - 1 do
              obj2.(j) <- Rat.sub obj2.(j) (Rat.mul cb t.rows.(i).(j))
            done;
            objval := Rat.sub !objval (Rat.mul cb t.rhs.(i))
          end
        done;
        let t2 = { t with obj = obj2; objval = !objval } in
        let allowed j = j < art_start in
        match optimise t2 ~allowed with
        | Error `Unbounded -> Unbounded
        | Ok () ->
            let solution = Array.make nvars Rat.zero in
            for i = 0 to m - 1 do
              if t2.basis.(i) < nvars then solution.(t2.basis.(i)) <- t2.rhs.(i)
            done;
            let value = Rat.neg t2.objval in
            let value =
              match objective with Minimize -> value | Maximize -> Rat.neg value
            in
            Optimal { value; solution }
      end

let minimize ~cost constraints = solve ~objective:Minimize ~cost constraints
let maximize ~cost constraints = solve ~objective:Maximize ~cost constraints

let pp_outcome fmt = function
  | Unbounded -> Format.pp_print_string fmt "unbounded"
  | Infeasible -> Format.pp_print_string fmt "infeasible"
  | Optimal { value; solution } ->
      Format.fprintf fmt "optimal %a at (%a)" Rat.pp value
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           Rat.pp)
        (Array.to_list solution)
