(* End-to-end Householder QR study: numeric correctness of GEQR2/ORG2R, the
   hourglass bounds of both passes, and the tiled A2V validation of
   Appendix A.2.

   Run with:  dune exec examples/qr_io_study.exe *)

module K = Iolb_kernels
module Matrix = Iolb_kernels.Matrix
module Report = Iolb.Report
module Cache = Iolb_pebble.Cache
module Sweep = Iolb_pebble.Sweep
module Trace = Iolb_pebble.Trace

let () =
  (* Numerics first: the kernels must actually factor. *)
  let m = 64 and n = 24 in
  let a = Matrix.random ~seed:5 m n in
  let q, r = K.Householder.qr a in
  Printf.printf "GEQR2+ORG2R on %dx%d:\n" m n;
  Printf.printf "  |A - QR| / |A|    = %.2e\n" (Matrix.rel_error a (Matrix.mul q r));
  Printf.printf "  |Q^T Q - I|       = %.2e\n" (Matrix.orthogonality_error q);
  let f_tiled = K.Householder.geqr2_tiled ~b:8 a in
  let f = K.Householder.geqr2 a in
  Printf.printf "  tiled vs untiled  = %.2e\n"
    (Matrix.rel_error f.K.Householder.vr f_tiled.K.Householder.vr);

  (* Lower bounds for both passes. *)
  Printf.printf "\nLower bounds (derived automatically):\n";
  List.iter
    (fun name ->
      let analysis = Report.analyze (Report.find name) in
      List.iter
        (fun b -> Format.printf "  %a@." Iolb.Derive.pp b)
        analysis.Report.bounds)
    [ "qr_hh_a2v"; "qr_hh_v2q" ];

  (* Appendix A.2: the tiled A2V measured I/O against the prediction. *)
  let m = 48 and n = 16 and s = 400 in
  Printf.printf "\nTiled A2V at m=%d n=%d S=%d:\n" m n s;
  Printf.printf "%6s | %10s %10s | %10s\n" "B" "opt loads" "lru loads" "predicted";
  List.iter
    (fun b ->
      if n mod b = 0 then begin
        let trace =
          Trace.of_program ~params:[] (K.Householder.tiled_spec ~m ~n ~b)
        in
        let opt = Cache.opt ~size:s trace in
        let lru = Cache.lru ~size:s trace in
        let predicted =
          (0.5
           *. (float_of_int (m * n * n) -. (float_of_int (n * n * n) /. 3.))
           /. float_of_int b)
          +. (2. *. float_of_int (m * n))
        in
        Printf.printf "%6d | %10d %10d | %10.0f\n" b opt.Cache.loads
          lru.Cache.loads predicted
      end)
    [ 1; 2; 4; 8 ];

  (* How the tiled trace behaves as the cache shrinks or grows: one
     reuse-distance pass answers every size (exact LRU loads/hits/stores),
     and one shared OPT plan feeds the per-size forward runs. *)
  let b = 4 in
  let trace = Trace.of_program ~params:[] (K.Householder.tiled_spec ~m ~n ~b) in
  let plan = Cache.opt_plan trace in
  Printf.printf
    "\nCache-size sweep of the tiled A2V trace (B=%d, one pass for all S):\n" b;
  Printf.printf "%8s | %10s %10s %10s | %10s\n" "S" "lru loads" "hits" "stores"
    "opt loads";
  List.iter
    (fun (sz, lru) ->
      let opt = Cache.opt_run ~size:sz plan in
      Printf.printf "%8d | %10d %10d %10d | %10d\n" sz lru.Cache.loads
        lru.Cache.read_hits lru.Cache.stores opt.Cache.loads)
    (Sweep.lru_stats trace ~sizes:[ 50; 100; 200; 400; 800; 1600 ])
