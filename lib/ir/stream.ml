module Budget = Iolb_util.Budget

(* Chunked streaming of a program's access trace.

   A materialized [Trace.t] holds one int per access; at billions of
   accesses that is gigabytes before any simulation starts.  This producer
   walks the program with [Program.iter_accesses_range] and hands the
   consumer fixed-size, REUSED chunk buffers of interned cell ids, so a
   streaming consumer (the sharded reuse-distance sweep) holds O(chunk)
   trace state plus whatever per-cell state it needs - never the trace.

   Interning happens here, against a caller-supplied (typically
   shard-local) interner, so the consumer's hot loop runs on dense int
   ids and flat arrays exactly as it would on a materialized trace.  An
   optional [keep] predicate filters cells BEFORE interning - the
   spatially-hashed sampling mode rejects most accesses with one hash and
   never pays interning or per-cell state for them.  Positions stay
   global (the index the full trace would assign) whether or not a filter
   or range restriction is active. *)

type chunk = {
  ids : int array;  (* interned cell id per kept access *)
  writes : bool array;  (* write flag per kept access *)
  pos : int array;  (* global trace position per kept access *)
  mutable len : int;  (* live prefix length of the three arrays *)
}

let default_chunk_size = 65_536

let iter_chunks ?(budget = Budget.unlimited) ?(chunk_size = default_chunk_size)
    ?(lo = 0) ?(hi = max_int) ?keep ~params ~interner p f =
  if chunk_size < 1 then invalid_arg "Stream.iter_chunks: chunk_size < 1";
  let ch =
    {
      ids = Array.make chunk_size 0;
      writes = Array.make chunk_size false;
      pos = Array.make chunk_size 0;
      len = 0;
    }
  in
  let flush () =
    if ch.len > 0 then begin
      f ch;
      ch.len <- 0
    end
  in
  let unlimited = Budget.is_unlimited budget in
  let n = ref 0 in
  let push p name idx is_write =
    if ch.len = chunk_size then flush ();
    let i = ch.len in
    ch.ids.(i) <- Interner.intern_view interner name idx;
    ch.writes.(i) <- is_write;
    ch.pos.(i) <- p;
    ch.len <- i + 1
  in
  let on_access =
    match keep with
    | None -> push
    | Some k -> fun p name idx is_write -> if k name idx then push p name idx is_write
  in
  Program.iter_accesses_range ~params p ~lo ~hi
    ~on_instance:(fun () ->
      (* Same budget semantics as [Trace.of_program]: one [Cdag_build]
         checkpoint and a node-cap probe per visited instance.  Both are
         no-ops on the unlimited budget, so the gate only skips dead
         calls. *)
      if not unlimited then begin
        Budget.checkpoint budget Budget.Cdag_build;
        incr n;
        Budget.check_node_cap budget Budget.Cdag_build !n
      end)
    ~on_access;
  flush ()
