(** Parametric integer sets: conjunctions of affine constraints over named
    dimensions, possibly involving symbolic parameters.

    This is the working substitute for ISL in this reproduction.  The
    operations that matter to the bound derivation are exact:

    - membership, enumeration and cardinality at {e concrete} parameter
      values (used to build CDAGs and validate the symbolic derivations);
    - Fourier-Motzkin elimination, used to compute per-dimension bounds for
      enumeration and rational projections.

    Internally every operation runs on a {e compiled} form of the set:
    variable names are resolved to integer columns once per set, constraints
    become dense [int array] rows, and Fourier-Motzkin works on arrays with
    GCD normalisation and duplicate/dominated-constraint pruning.
    Eliminations are memoised on the canonical (rows, column) form, and each
    set caches its per-parameter enumeration plans.

    Fourier-Motzkin computes the rational shadow of a projection; it is an
    over-approximation of the integer projection in general (per-constraint
    GCD tightening may narrow it towards the integer hull).  Enumeration
    remains exact because at the innermost level the bound rows are the full
    original system with every outer dimension fixed, so each per-dimension
    interval is exact. *)

type t

(** [make ~dims cons] is the set [{ x in Z^dims | cons }].  Constraint
    variables must be dimensions or parameters. *)
val make : dims:string list -> Constr.t list -> t

val dims : t -> string list
val constraints : t -> Constr.t list

(** [intersect a b] requires [dims a = dims b].
    @raise Invalid_argument naming both dimension lists otherwise. *)
val intersect : t -> t -> t

val add_constraints : Constr.t list -> t -> t

(** [specialize params s] substitutes concrete values for the parameters
    (any variables of the constraints that are not dimensions of [s]). *)
val specialize : (string * int) list -> t -> t

(** [mem ~params s point] tests membership; [point] follows [dims s]. *)
val mem : params:(string * int) list -> t -> int array -> bool

(** [enumerate ~params s] lists all integer points (each in [dims] order).
    Intended for validation-scale sets; cost is output-sensitive with a
    Fourier-Motzkin preprocessing pass.

    All the Fourier-Motzkin-backed operations below accept a [?budget];
    they account one [Poly_projection] checkpoint per constraint
    combination and per enumerated point (per innermost interval for
    [cardinal], which counts in closed form), and the budget's node cap
    is checked against the number of logical points produced.
    [is_empty] stops at the first feasible point.
    @raise Iolb_util.Budget.Exhausted when the budget runs out. *)
val enumerate :
  ?budget:Iolb_util.Budget.t -> params:(string * int) list -> t -> int array list

val cardinal : ?budget:Iolb_util.Budget.t -> params:(string * int) list -> t -> int
val is_empty : ?budget:Iolb_util.Budget.t -> params:(string * int) list -> t -> bool

(** [fm_eliminate x cons] removes variable [x] by Fourier-Motzkin; the
    result is implied by [cons] and involves neither [x] nor new variables. *)
val fm_eliminate :
  ?budget:Iolb_util.Budget.t -> string -> Constr.t list -> Constr.t list

(** [project ~onto s] is the rational (Fourier-Motzkin) projection onto the
    listed dimensions, in the given order. *)
val project : ?budget:Iolb_util.Budget.t -> onto:string list -> t -> t

(** [bounds_of_dim ~params s x] is the pair (lower, upper) of integer bounds
    of dimension [x] over the whole set, if the set is bounded in [x]. *)
val bounds_of_dim :
  ?budget:Iolb_util.Budget.t ->
  params:(string * int) list ->
  t ->
  string ->
  int option * int option

val pp : Format.formatter -> t -> unit
