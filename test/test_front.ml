(* Affine-program front-end: the DSL parser differential-tested against
   every built-in kernel.  Printing any built-in as DSL and re-parsing it
   must reproduce the program structurally; the shipped textual sources
   under examples/kernels/ must resolve to their built-ins and render
   byte-identical reports through [iolb bounds --file]; malformed sources
   must produce the exact pinned file:line:col diagnostics behind the
   exit-code-2 contract. *)

module Front = Iolb_front.Front
module Diag = Iolb_front.Diag
module Driver = Iolb_front.Driver
module Report = Iolb.Report
module Program = Iolb_ir.Program
module Budget = Iolb_util.Budget
module Pool = Iolb_util.Pool
module EE = Iolb_util.Engine_error

let verify_equal a b =
  let sort l = List.sort (fun (x, _) (y, _) -> String.compare x y) l in
  sort a = sort b

(* Built-in subjects: every registry entry and every baseline. *)
let builtins () =
  List.map
    (fun (e : Report.entry) -> (e.Report.display, e.Report.program, e.Report.verify_params))
    Report.registry
  @ List.map (fun (n, p, v) -> (n, p, v)) Report.baselines

(* print -> parse must be the identity (up to locations) on every
   built-in program, including its verify bindings. *)
let test_roundtrip_builtins () =
  List.iter
    (fun (name, program, verify) ->
      let printed = Front.print ~verify program in
      match Front.parse_string ~file:(name ^ ".iolb") printed with
      | Error d ->
          Alcotest.failf "%s: printed source does not parse: %s" name
            (Diag.to_string d)
      | Ok src ->
          Alcotest.(check bool)
            (name ^ " round-trips structurally")
            true
            (Program.equal src.Front.program program);
          Alcotest.(check bool)
            (name ^ " verify bindings survive")
            true
            (verify_equal src.Front.verify verify))
    (builtins ())

(* Registry programs must resolve back to their own entry; baselines are
   outside the registry and must stay unresolved (custom-program path). *)
let test_resolution () =
  List.iter
    (fun (e : Report.entry) ->
      let printed = Front.print ~verify:e.Report.verify_params e.Report.program in
      match Front.parse_string ~file:"<registry>" printed with
      | Error d -> Alcotest.failf "registry print: %s" (Diag.to_string d)
      | Ok src -> (
          match Driver.resolve src with
          | Some e' ->
              Alcotest.(check string) "resolves to itself" e.Report.display
                e'.Report.display
          | None ->
              Alcotest.failf "%s does not resolve to its own entry"
                e.Report.display))
    Report.registry;
  List.iter
    (fun (name, program, verify) ->
      match Front.parse_string ~file:"<baseline>" (Front.print ~verify program) with
      | Error d -> Alcotest.failf "baseline print: %s" (Diag.to_string d)
      | Ok src ->
          Alcotest.(check bool)
            (name ^ " is not a registry entry")
            true
            (Driver.resolve src = None))
    Report.baselines

(* Tests run with cwd = test/ under [dune runtest] but cwd = the project
   root under [dune exec test/main.exe]; resolve data paths under both. *)
let locate path =
  let stripped =
    if String.length path >= 3 && String.sub path 0 3 = "../" then
      String.sub path 3 (String.length path - 3)
    else Filename.concat "test" path
  in
  if Sys.file_exists path then path
  else if Sys.file_exists stripped then stripped
  else path

(* The shipped example sources: registry entry display -> file. *)
let example_files =
  List.map
    (fun (d, f) -> (d, locate ("../examples/kernels/" ^ f)))
    [
      ("MGS", "mgs.iolb");
      ("QR HH A2V", "qr_hh_a2v.iolb");
      ("QR HH V2Q", "qr_hh_v2q.iolb");
      ("GEBD2", "gebd2.iolb");
      ("GEHD2", "gehd2.iolb");
    ]

let baseline_files =
  List.map
    (fun (d, f) -> (d, locate ("../examples/kernels/" ^ f)))
    [
      ("gemm", "gemm.iolb");
      ("lu", "lu.iolb");
      ("cholesky", "cholesky.iolb");
    ]

let parse_file_ok path =
  match Front.parse_file path with
  | Ok src -> src
  | Error e -> Alcotest.failf "%s: %s" path (EE.to_string e)

let test_examples_resolve () =
  List.iter
    (fun (display, path) ->
      let src = parse_file_ok path in
      match Driver.resolve src with
      | Some e ->
          Alcotest.(check string) (path ^ " resolves") display e.Report.display
      | None -> Alcotest.failf "%s does not resolve to a built-in" path)
    example_files;
  List.iter
    (fun (name, path) ->
      let src = parse_file_ok path in
      let _, program, verify =
        List.find (fun (n, _, _) -> n = name) Report.baselines
      in
      Alcotest.(check bool)
        (path ^ " equals the built-in baseline")
        true
        (Program.equal src.Front.program program
        && verify_equal src.Front.verify verify))
    baseline_files

(* Byte-identity: the report rendered from the textual source must equal
   the report rendered from the built-in name, for both the bounds view
   (logs:false) and the analyze view (logs:true). *)
let test_reports_byte_identical () =
  let budget = Budget.unlimited in
  let subjects =
    example_files @ baseline_files
  in
  List.iter
    (fun (name, path) ->
      List.iter
        (fun logs ->
          let from_name =
            match Driver.render_kernel ~budget ~logs name with
            | Ok s -> s
            | Error e -> Alcotest.failf "%s: %s" name (EE.to_string e)
          in
          let from_file =
            match Driver.render_file ~budget ~logs path with
            | Ok s -> s
            | Error e -> Alcotest.failf "%s: %s" path (EE.to_string e)
          in
          Alcotest.(check string)
            (Printf.sprintf "%s logs:%b file = name" name logs)
            from_name from_file)
        [ false; true ])
    subjects

(* The worker fan-out behind [iolb bounds --jobs N --file ...] must be
   byte-deterministic: same concatenated report at every worker count. *)
let test_jobs_deterministic () =
  let budget = Budget.unlimited in
  let files = List.map snd (example_files @ baseline_files) in
  let render ~jobs =
    String.concat ""
      (Pool.map ~jobs
         (fun path ->
           match Driver.render_file ~budget ~logs:false path with
           | Ok s -> s
           | Error e -> "error: " ^ EE.to_string e)
         files)
  in
  let seq = render ~jobs:1 in
  Alcotest.(check string) "jobs 4 = jobs 1" seq (render ~jobs:4)

(* ------------------------------------------------------------------ *)
(* Golden diagnostics: the malformed corpus under test/data/ is pinned
   to exact file:line:col messages and the Invalid_input embedding the
   CLI renders (exit code 2, "iolb: error: " ^ message). *)

let malformed_corpus =
  (* file, located diagnostic with %s holding the resolved path (which
     differs between dune runtest and dune exec cwds) *)
  [
    ("data/bad_token.iolb", fun p ->
      Printf.sprintf "invalid input: %s:5:23: unexpected character '$'" p);
    ("data/non_affine.iolb", fun p ->
      Printf.sprintf
        "invalid input: %s:6:14: non-affine product i * j: one operand of \
         '*' must be constant (subscripts and bounds are affine in loop \
         variables and parameters)"
        p);
    ("data/unbound.iolb", fun p ->
      Printf.sprintf
        "invalid input: %s:5:20: unbound name k (visible here: i, N)" p);
    ("data/negative_bound.iolb", fun p ->
      Printf.sprintf
        "invalid input: %s:3:7: negative bound: i iterates 3 .. 1, a trip \
         count of -1 (bounds are inclusive)"
        p);
    ("data/dup_stmt.iolb", fun p ->
      Printf.sprintf
        "invalid input: %s:6:5: duplicate statement id S0 (first defined \
         at %s:5:5)"
        p p);
  ]

let test_malformed_corpus () =
  List.iter
    (fun (file, expected) ->
      let path = locate file in
      match Front.parse_file path with
      | Ok _ -> Alcotest.failf "%s unexpectedly parsed" path
      | Error e ->
          Alcotest.(check string) path (expected path) (EE.to_string e);
          Alcotest.(check int) (path ^ " exit code") 2 (EE.exit_code e))
    malformed_corpus

(* Inline golden diagnostics for failure modes the corpus files cannot
   carry (they live before the body). *)
let inline_diags =
  [
    ( "unbound parameter in verify",
      "kernel k(N)\nverify N = 4, M = 2\n{\n  S: a = f();\n}\n",
      "<inline>:2:15: verify binds M, which is not a parameter of kernel k" );
    ( "missing verify value",
      "kernel k(N)\n{\n  for i = 0 .. N - 1 {\n    S: A[i] = f();\n  }\n}\n",
      "<inline>:1:10: parameter N has no verify value (add 'verify N = \
       <size>' so patterns can be verified at concrete sizes)" );
    ( "duplicate parameter",
      "kernel k(N, N)\nverify N = 4\n{\n  S: a = f();\n}\n",
      "<inline>:1:13: duplicate parameter N" );
    ( "parse error",
      "kernel k()\n{\n  S: a = f()\n}\n",
      "<inline>:4:1: expected ';' terminating the statement, got '}'" );
  ]

let test_inline_diags () =
  List.iter
    (fun (what, src, expected) ->
      match Front.parse_string ~file:"<inline>" src with
      | Ok _ -> Alcotest.failf "%s: unexpectedly parsed" what
      | Error d -> Alcotest.(check string) what expected (Diag.to_string d))
    inline_diags

(* ------------------------------------------------------------------ *)
(* The unknown-kernel error must advertise both kernel families and the
   --file escape hatch (the regression this PR's small fix pinned). *)

let test_unknown_kernel_message () =
  match Report.find_checked "nope" with
  | Ok _ -> Alcotest.fail "find_checked accepted an unknown name"
  | Error e ->
      let msg = EE.to_string e in
      let mentions needle =
        Alcotest.(check bool)
          (Printf.sprintf "mentions %s" needle)
          true
          (let nl = String.length needle and ml = String.length msg in
           let rec scan i =
             i + nl <= ml && (String.sub msg i nl = needle || scan (i + 1))
           in
           scan 0)
      in
      List.iter mentions [ "mgs"; "gehd2"; "gemm"; "jacobi1d"; "--file" ]

(* A shrunk counterexample's source artifact must itself parse - the
   reproducer the certifier prints is always a valid .iolb file. *)
let test_shrunk_source_parses () =
  let props =
    match Iolb_check.Oracle.find "demo-broken" with
    | Ok ps -> ps
    | Error e -> Alcotest.fail e
  in
  let report = Iolb_check.Check.run ~count:2 ~seed:0 ~props () in
  Alcotest.(check bool) "demo-broken fails" false (Iolb_check.Check.ok report);
  List.iter
    (fun (f : Iolb_check.Check.failure) ->
      match Front.parse_string ~file:"<shrunk>" f.shrunk_source with
      | Ok _ -> ()
      | Error d ->
          Alcotest.failf "shrunk source does not parse: %s" (Diag.to_string d))
    report.Iolb_check.Check.failures

let suite =
  [
    Alcotest.test_case "roundtrip-builtins" `Quick test_roundtrip_builtins;
    Alcotest.test_case "resolution" `Quick test_resolution;
    Alcotest.test_case "examples-resolve" `Quick test_examples_resolve;
    Alcotest.test_case "reports-byte-identical" `Slow
      test_reports_byte_identical;
    Alcotest.test_case "jobs-deterministic" `Slow test_jobs_deterministic;
    Alcotest.test_case "malformed-corpus" `Quick test_malformed_corpus;
    Alcotest.test_case "inline-diagnostics" `Quick test_inline_diags;
    Alcotest.test_case "unknown-kernel-message" `Quick
      test_unknown_kernel_message;
    Alcotest.test_case "shrunk-source-parses" `Quick test_shrunk_source_parses;
  ]
